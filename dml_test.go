package recycledb

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"recycledb/internal/catalog"
	"recycledb/internal/vector"
)

func dmlEngine(mode Mode) *Engine {
	// Materialization looks free (huge CopyBytesPerSec) so store
	// decisions depend on reuse history alone, not on machine speed.
	e := New(Config{Mode: mode, CopyBytesPerSec: 1 << 40})
	ev := catalog.NewTable("ev", catalog.Schema{
		{Name: "id", Typ: vector.Int64},
		{Name: "grp", Typ: vector.String},
		{Name: "score", Typ: vector.Float64},
	})
	w := ev.BeginWrite()
	ap := w.Appender()
	groups := []string{"a", "b", "c"}
	for i := 0; i < 300; i++ {
		ap.Int64(0, int64(i))
		ap.String(1, groups[i%3])
		ap.Float64(2, float64(i%100))
		ap.FinishRow()
	}
	w.Commit()
	e.Catalog().AddTable(ev)
	return e
}

func countRows(t *testing.T, e *Engine, where string) int64 {
	t.Helper()
	q := "SELECT count(*) AS n FROM ev"
	if where != "" {
		q += " WHERE " + where
	}
	r, err := e.QueryCollect(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	return r.Batches[0].Vecs[0].I64[0]
}

func TestExecInsert(t *testing.T) {
	e := dmlEngine(Off)
	res, err := e.Exec(context.Background(),
		`INSERT INTO ev VALUES (1000, 'z', 1.5), (1001, 'z', 2.5)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	if n := countRows(t, e, "grp = 'z'"); n != 2 {
		t.Fatalf("inserted rows visible = %d", n)
	}
}

func TestExecInsertParamsPrepared(t *testing.T) {
	e := dmlEngine(Off)
	stmt, err := e.Prepare(`INSERT INTO ev (id, grp, score) VALUES (?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.IsQuery() || stmt.NumParams() != 3 {
		t.Fatalf("IsQuery=%v params=%d", stmt.IsQuery(), stmt.NumParams())
	}
	for i := 0; i < 5; i++ {
		res, err := stmt.Exec(context.Background(), 2000+i, "w", float64(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.RowsAffected != 1 {
			t.Fatalf("affected = %d", res.RowsAffected)
		}
	}
	if n := countRows(t, e, "grp = 'w'"); n != 5 {
		t.Fatalf("rows = %d", n)
	}
	// DML through the streaming query paths is a typed error.
	if _, err := stmt.Query(context.Background(), 1, "x", 2.0); !errors.Is(err, ErrNotQuery) {
		t.Fatalf("Query on INSERT: %v", err)
	}
	if _, err := e.Query(context.Background(), `DELETE FROM ev`); !errors.Is(err, ErrNotQuery) {
		t.Fatalf("Engine.Query on DELETE: %v", err)
	}
}

func TestExecDelete(t *testing.T) {
	e := dmlEngine(Off)
	res, err := e.Exec(context.Background(), `DELETE FROM ev WHERE score >= ?`, 50.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 150 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	if n := countRows(t, e, ""); n != 150 {
		t.Fatalf("remaining = %d", n)
	}
	if n := countRows(t, e, "score >= 50"); n != 0 {
		t.Fatalf("deleted rows still visible: %d", n)
	}
	// Deleting the same rows again affects nothing.
	res, err = e.Exec(context.Background(), `DELETE FROM ev WHERE score >= 50`)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 0 {
		t.Fatalf("double delete affected %d", res.RowsAffected)
	}
}

func TestExecCreateTable(t *testing.T) {
	e := New(Config{})
	if _, err := e.Exec(context.Background(),
		`CREATE TABLE m (host TEXT, cpu DOUBLE, day DATE)`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(context.Background(),
		`INSERT INTO m VALUES ('a', 0.5, DATE '2026-01-01')`); err != nil {
		t.Fatal(err)
	}
	r, err := e.QueryCollect(context.Background(), `SELECT host, cpu FROM m`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows() != 1 {
		t.Fatalf("rows = %d", r.Rows())
	}
	// Duplicate creation errors.
	if _, err := e.Exec(context.Background(), `CREATE TABLE m (x INT)`); err == nil {
		t.Fatal("duplicate CREATE TABLE accepted")
	}
}

// TestInvalidationNoStaleReads: a cached aggregate must never be replayed
// after a write to its base table, in any recycling mode.
func TestInvalidationNoStaleReads(t *testing.T) {
	for _, mode := range []Mode{Off, History, Speculative, Proactive} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			e := dmlEngine(mode)
			const q = `SELECT grp, count(*) AS n, sum(score) AS total FROM ev GROUP BY grp`
			// Warm the cache (history mode stores on re-execution).
			for i := 0; i < 3; i++ {
				if _, err := e.QueryCollect(context.Background(), q); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := e.Exec(context.Background(),
				`INSERT INTO ev VALUES (9000, 'a', 10)`); err != nil {
				t.Fatal(err)
			}
			if n := countRows(t, e, "grp = 'a'"); n != 101 {
				t.Fatalf("count after insert = %d", n)
			}
			r, err := e.QueryCollect(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < r.Batches[0].Len(); i++ {
				row := r.Batches[0].Row(i)
				if row[0].Str == "a" && row[1].I64 != 101 {
					t.Fatalf("stale aggregate after insert: %+v", row)
				}
			}
			// A delete epoch too.
			if _, err := e.Exec(context.Background(),
				`DELETE FROM ev WHERE grp = 'b'`); err != nil {
				t.Fatal(err)
			}
			r, err = e.QueryCollect(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < r.Batches[0].Len(); i++ {
				if row := r.Batches[0].Row(i); row[0].Str == "b" {
					t.Fatalf("deleted group still aggregated: %+v", row)
				}
			}
		})
	}
}

// TestDeltaExtensionMatchesRecompute is the delta-extension correctness
// property test: a cached selection/projection subtree extended over random
// append epochs must stay row-for-row equivalent to recomputation from
// scratch, across many random thresholds and batch sizes.
func TestDeltaExtensionMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := dmlEngine(History)
	off := NewWithCatalog(Config{Mode: Off}, e.Catalog())
	const q = `SELECT id, score FROM ev WHERE score > 42`

	canon := func(eng *Engine) map[string]int {
		r, err := eng.QueryCollect(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]int)
		for _, b := range r.Batches {
			for i := 0; i < b.Len(); i++ {
				row := b.Row(i)
				out[fmt.Sprintf("%d|%v", row[0].I64, row[1].F64)]++
			}
		}
		return out
	}

	// Warm until the selection result is cached.
	for i := 0; i < 3; i++ {
		canon(e)
	}
	if e.Recycler().Stats().CacheEntries == 0 {
		t.Fatal("selection result not cached; test needs a cached entry to extend")
	}

	extBefore := e.Recycler().Stats().DeltaExtended
	for epoch := 0; epoch < 10; epoch++ {
		n := 1 + rng.Intn(40)
		tbl, err := e.Catalog().Table("ev")
		if err != nil {
			t.Fatal(err)
		}
		w := tbl.BeginWrite()
		ap := w.Appender()
		base := w.Rows()
		for r := 0; r < n; r++ {
			ap.Int64(0, int64(10000+base+r))
			ap.String(1, "d")
			ap.Float64(2, float64(rng.Intn(200))-50)
			ap.FinishRow()
		}
		w.Commit()

		want := canon(off) // recompute from scratch, no recycling
		got := canon(e)    // replays the delta-extended entry
		if len(want) != len(got) {
			t.Fatalf("epoch %d: %d rows recomputed vs %d recycled", epoch, len(want), len(got))
		}
		for k, c := range want {
			if got[k] != c {
				t.Fatalf("epoch %d: key %s count %d vs %d", epoch, k, c, got[k])
			}
		}
	}
	st := e.Recycler().Stats()
	if st.DeltaExtended == extBefore {
		t.Fatal("no delta extensions happened; the property test exercised nothing")
	}
	if st.Reuses == 0 {
		t.Fatal("extended entries were never reused")
	}
}

// TestCacheAccountingUnderInvalidation checks the byte-accounting
// invariants while entries are admitted, delta-extended, and invalidated:
// used bytes never exceed the budget and never go negative.
func TestCacheAccountingUnderInvalidation(t *testing.T) {
	// A huge CopyBytesPerSec makes materialization look free, so the
	// store decision depends on reuse history alone — without it, the
	// cost-model gate flips with machine speed and the test goes flaky.
	e := New(Config{Mode: History, CacheBytes: 1 << 20, CopyBytesPerSec: 1 << 40})
	ev := catalog.NewTable("ev", catalog.Schema{
		{Name: "id", Typ: vector.Int64},
		{Name: "score", Typ: vector.Float64},
	})
	w := ev.BeginWrite()
	ap := w.Appender()
	for i := 0; i < 2000; i++ {
		ap.Int64(0, int64(i))
		ap.Float64(1, float64(i%500))
		ap.FinishRow()
	}
	w.Commit()
	e.Catalog().AddTable(ev)

	rng := rand.New(rand.NewSource(3))
	check := func(stage string) {
		st := e.Recycler().Stats()
		if st.CacheBytes < 0 {
			t.Fatalf("%s: negative cache bytes %d", stage, st.CacheBytes)
		}
		if st.CacheBytes > 1<<20 {
			t.Fatalf("%s: cache bytes %d exceed budget", stage, st.CacheBytes)
		}
		if st.CacheEntries == 0 && st.CacheBytes != 0 {
			t.Fatalf("%s: empty cache holds %d bytes", stage, st.CacheBytes)
		}
	}
	for round := 0; round < 30; round++ {
		for i := 0; i < 4; i++ {
			// Few distinct thresholds: repeats are frequent, so
			// history-mode stores fire early and reliably.
			q := fmt.Sprintf(`SELECT id, score FROM ev WHERE score > %d`, rng.Intn(8)*50)
			if _, err := e.QueryCollect(context.Background(), q); err != nil {
				t.Fatal(err)
			}
		}
		check("after queries")
		wr := ev.BeginWrite()
		wap := wr.Appender()
		for r := 0; r < 50; r++ {
			wap.Int64(0, int64(100000+round*50+r))
			wap.Float64(1, float64(rng.Intn(500)))
			wap.FinishRow()
		}
		if round%4 == 3 {
			wr.Delete(rng.Intn(2000))
		}
		wr.Commit()
		check("after commit")
	}
	st := e.Recycler().Stats()
	if st.DeltaExtended == 0 && st.Invalidated == 0 {
		t.Fatal("no invalidation activity; invariants untested")
	}
	e.FlushCache()
	if got := e.Recycler().Stats().CacheBytes; got != 0 {
		t.Fatalf("bytes after flush = %d", got)
	}
}

// TestConcurrentDMLConsistency is the engine-level readers-vs-writers race
// test: concurrent clients query while writers append and delete through
// Engine.Exec. Every query must observe an internally consistent snapshot:
// ev rows always satisfy score == float64(id%100), so sum(score) computed
// over any snapshot must equal the sum implied by its own count per group.
func TestConcurrentDMLConsistency(t *testing.T) {
	e := New(Config{Mode: Speculative})
	ev := catalog.NewTable("ev", catalog.Schema{
		{Name: "one", Typ: vector.Int64},
		{Name: "mirror", Typ: vector.Int64},
	})
	w := ev.BeginWrite()
	ap := w.Appender()
	for i := 0; i < 500; i++ {
		ap.Int64(0, 1)
		ap.Int64(1, 1)
		ap.FinishRow()
	}
	w.Commit()
	e.Catalog().AddTable(ev)

	const writers = 2
	const readersN = 4
	iters := 40
	if testing.Short() {
		iters = 10
	}
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})
	for wi := 0; wi < writers; wi++ {
		writeWG.Add(1)
		go func() {
			defer writeWG.Done()
			for i := 0; i < iters; i++ {
				if _, err := e.Exec(context.Background(),
					`INSERT INTO ev VALUES (1, 1), (1, 1), (1, 1)`); err != nil {
					t.Error(err)
					return
				}
				if i%4 == 3 {
					// Delete nothing-matching rows: still a full (non
					// append-only dedup) epoch when rows match; either
					// way the sum==count invariant must hold.
					if _, err := e.Exec(context.Background(),
						`DELETE FROM ev WHERE mirror > 1`); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	for ri := 0; ri < readersN; ri++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r, err := e.QueryCollect(context.Background(),
					`SELECT count(*) AS n, sum(one) AS s, sum(mirror) AS m FROM ev`)
				if err != nil {
					t.Error(err)
					return
				}
				row := r.Batches[0].Row(0)
				if row[0].I64 != row[1].I64 || row[0].I64 != row[2].I64 {
					t.Errorf("torn statement snapshot: count %d sum-one %d sum-mirror %d",
						row[0].I64, row[1].I64, row[2].I64)
					return
				}
			}
		}()
	}
	writeWG.Wait()
	close(stop)
	readWG.Wait()
}
