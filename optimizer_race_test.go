package recycledb_test

// Optimizer race stress: 8 client goroutines draw permuted-conjunct queries
// (fresh plan trees per draw, so the optimized-shape cache sees a live mix
// of hits and misses) against one shared engine while the optimizer toggle,
// cache flushes, and epoch-committing DML fire at random. Under -race this
// exercises the shape-cache LRU, the fingerprint-validated plan cache, the
// recycler probes inside optimization, and concurrent re-optimization of
// one shape all at once.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"recycledb"

	"recycledb/internal/harness"
)

func TestOptimizerRaceStress(t *testing.T) {
	cat := harness.MixedCatalog(0.002, 10000, 1)
	mix := harness.OptimizerMix(2, 1)

	eng := recycledb.NewWithCatalog(recycledb.Config{
		Mode:        recycledb.Speculative,
		CacheBytes:  8 << 20,
		VectorSize:  256,
		Parallelism: 8,
	}, cat)
	modes := []recycledb.Mode{
		recycledb.Off, recycledb.History, recycledb.Speculative, recycledb.Proactive,
	}
	appendLineitem := harness.SyntheticAppender(cat, "lineitem", 16)
	appendSky := harness.SyntheticAppender(cat, "PhotoPrimary", 12)

	duration := 2 * time.Second
	if testing.Short() {
		duration = 500 * time.Millisecond
	}
	deadline := time.Now().Add(duration)

	var wg sync.WaitGroup
	var queries, writes atomic.Int64
	errs := make(chan error, 16)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)*7919 + 11))
			for time.Now().Before(deadline) {
				switch r := rng.Float64(); {
				case r < 0.03:
					eng.SetOptimizerEnabled(rng.Intn(2) == 0)
				case r < 0.05:
					eng.SetMode(modes[rng.Intn(len(modes))])
				case r < 0.07:
					eng.FlushCache()
				case r < 0.17:
					var err error
					if rng.Intn(2) == 0 {
						err = appendLineitem(c, rng)
					} else {
						err = appendSky(c, rng)
					}
					if err != nil {
						errs <- fmt.Errorf("client %d write: %w", c, err)
						return
					}
					writes.Add(1)
				default:
					q := mix.Pick(rng)
					res, err := eng.ExecuteContext(context.Background(), q.Plan)
					if err != nil {
						errs <- fmt.Errorf("client %d %s: %w", c, q.Label, err)
						return
					}
					// Self-consistency: canonicalization walks every row,
					// so a plan mangled by a racing optimization (shared
					// subtree mutated, half-swapped cache entry) surfaces
					// as a panic or impossible shape.
					if res.Rows() < 0 {
						errs <- fmt.Errorf("client %d %s: negative row count", c, q.Label)
						return
					}
					_ = canonResult(res)
					queries.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	// The optimizer must have actually engaged: re-enable it and confirm a
	// fresh permuted draw plans through the shape cache without error.
	eng.SetOptimizerEnabled(true)
	q := mix.Pick(rand.New(rand.NewSource(1)))
	if _, err := eng.ExecuteContext(context.Background(), q.Plan); err != nil {
		t.Fatalf("post-stress query: %v", err)
	}
	t.Logf("stress: %d queries, %d writes", queries.Load(), writes.Load())
}
