package recycledb_test

// Golden equivalence for the type-specialized kernel layer: every TPC-H and
// SkyServer query must produce the same canonical result with kernels on
// and off, crossed with fused/unfused execution and Parallelism 1 and 4, in
// every recycling mode, cold and warm cache. Ground truth comes from the
// fully generic path — serial, unfused, kernels disabled — so the matrix
// proves the compiled predicate kernels, typed aggregate emission, and the
// int64 hash fast path reproduce the legacy interpreter exactly. The kernel
// toggle must also be invisible to the recycler: per-mode recycler stats
// and cold EXPLAIN output (plan shapes and cost estimates) are compared
// between otherwise-identical kernels-on and kernels-off engines.

import (
	"context"
	"fmt"
	"testing"

	"recycledb"

	"recycledb/internal/exec"
	"recycledb/internal/harness"
)

func TestGoldenEquivalenceKernels(t *testing.T) {
	// Small vectors shrink the morsel size so the parallel paths engage at
	// test scale (see TestGoldenEquivalenceAcrossParallelism).
	const vsz = 256
	cat := harness.MixedCatalog(0.002, 10000, 1)
	queries := goldenQueries()

	base := recycledb.NewWithCatalog(
		recycledb.Config{Mode: recycledb.Off, Parallelism: 1, VectorSize: vsz,
			DisableFusion: true, DisableKernels: true}, cat)
	want := make([]map[string]*canonRow, len(queries))
	for i, q := range queries {
		r, err := base.ExecuteContext(context.Background(), q.Plan)
		if err != nil {
			t.Fatalf("baseline %s: %v", q.Label, err)
		}
		want[i] = canonResult(r)
	}

	type cell struct {
		label   string
		kernels bool
		eng     *recycledb.Engine
	}
	var cells []cell
	for _, mode := range harness.Modes {
		for _, par := range []int{1, 4} {
			for _, fused := range []bool{true, false} {
				for _, kernels := range []bool{true, false} {
					cells = append(cells, cell{
						label:   fmt.Sprintf("%v/par=%d/fused=%v/kernels=%v", mode, par, fused, kernels),
						kernels: kernels,
						eng: recycledb.NewWithCatalog(
							recycledb.Config{Mode: mode, Parallelism: par, VectorSize: vsz,
								DisableFusion: !fused, DisableKernels: !kernels}, cat),
					})
				}
			}
		}
	}

	predBefore := exec.PredKernelsCompiled()
	emitBefore := exec.AggEmitKernelRuns()
	hashBefore := exec.FastHashEngaged()
	// Cold then warm pass per cell: the warm pass replays whatever the
	// first admitted (kernel-produced cache entries included) and must
	// still match the generic ground truth.
	for _, c := range cells {
		for pass := 0; pass < 2; pass++ {
			for i, q := range queries {
				r, err := c.eng.ExecuteContext(context.Background(), q.Plan)
				if err != nil {
					t.Fatalf("%s pass %d %s: %v", c.label, pass, q.Label, err)
				}
				if d := canonDiff(want[i], canonResult(r)); d != "" {
					t.Fatalf("%s pass %d %s: %s", c.label, pass, q.Label, d)
				}
			}
		}
	}

	// Sanity: the kernels-on cells really took the specialized paths — a
	// matrix where every shape fell back to the generic evaluator would be
	// vacuously green.
	if got := exec.PredKernelsCompiled() - predBefore; got == 0 {
		t.Fatal("no predicate kernels compiled; the equivalence matrix ran fully generic")
	}
	if got := exec.AggEmitKernelRuns() - emitBefore; got == 0 {
		t.Fatal("no typed aggregate emissions ran")
	}
	if got := exec.FastHashEngaged() - hashBefore; got == 0 {
		t.Fatal("the int64 hash fast path never engaged")
	}

	// The kernel toggle must not leak into recycling decisions: each
	// kernels-on engine must report the same recycler activity as its
	// kernels-off twin. Query counts are load-bearing and exact; reuse
	// counts tolerate the small timing dependence speculation carries.
	for i := 0; i < len(cells); i += 2 {
		on, off := cells[i], cells[i+1]
		if !on.kernels || off.kernels {
			t.Fatalf("cell pairing broke: %s / %s", on.label, off.label)
		}
		ss, ps := on.eng.Recycler().Stats(), off.eng.Recycler().Stats()
		if ss.Queries != ps.Queries {
			t.Fatalf("%s vs %s: recycler query counts diverged: %d vs %d",
				on.label, off.label, ss.Queries, ps.Queries)
		}
		tol := ss.Reuses / 10
		if tol < 8 {
			tol = 8
		}
		diff := ss.Reuses - ps.Reuses
		if diff < 0 {
			diff = -diff
		}
		if diff > tol {
			t.Errorf("%s vs %s: reuses diverged beyond tolerance: %d vs %d",
				on.label, off.label, ss.Reuses, ps.Reuses)
		}
	}
}

// TestExplainUnchangedByKernels pins the planner-visible surface: EXPLAIN
// output — plan shape, cardinalities, cost estimates — must be
// byte-identical with kernels on and off, because kernels attach at bind
// time underneath plan nodes and never alter signatures or costing.
func TestExplainUnchangedByKernels(t *testing.T) {
	queries := []string{
		`SELECT l_quantity, l_extendedprice FROM lineitem WHERE l_quantity < 25 AND l_extendedprice > 1000 AND l_tax < 1`,
		`SELECT l_returnflag, sum(l_quantity) AS q FROM lineitem WHERE l_shipdate <= date '1998-09-02' GROUP BY l_returnflag`,
	}
	mk := func(disable bool) *recycledb.Engine {
		return recycledb.NewWithCatalog(
			recycledb.Config{Mode: recycledb.History, DisableKernels: disable},
			harness.MixedCatalog(0.002, 4000, 1))
	}
	on, off := mk(false), mk(true)
	for _, q := range queries {
		eon, err := on.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		eoff, err := off.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		if eon != eoff {
			t.Fatalf("EXPLAIN differs under the kernel toggle:\n%s\n--- vs ---\n%s", eon, eoff)
		}
	}
}
