package recycledb_test

// Optimizer golden equivalence: the optimizer may change plan shapes —
// conjunct chain order, join order, projection placement — but never
// results. Every query in the golden set (plus permuted-conjunct
// near-variants, the shapes the optimizer exists to canonicalize) must
// produce the serial-unfused-unoptimized ground truth under the full
// execution matrix: optimizer on/off × every recycling mode × parallelism
// {1,4} × fused/unfused, cold cache and warm.

import (
	"context"
	"fmt"
	"math/rand"
	"regexp"
	"testing"

	"recycledb"

	"recycledb/internal/harness"
	"recycledb/internal/workload"
)

// optGoldenQueries is the golden set plus permuted-conjunct draws: the same
// filter parameters written in shuffled conjunct order, which only the
// optimizer collapses to one recycler shape.
func optGoldenQueries() []workload.Query {
	out := goldenQueries()
	rng := rand.New(rand.NewSource(99))
	for _, pat := range harness.PermutedMix(3, 5) {
		for d := 0; d < 3; d++ {
			out = append(out, workload.Query{
				Label: fmt.Sprintf("%s-%d", pat.Label, d),
				Plan:  pat.Make(rng),
			})
		}
	}
	return out
}

func TestGoldenEquivalenceOptimizer(t *testing.T) {
	cat := harness.MixedCatalog(0.002, 4000, 1)
	queries := optGoldenQueries()

	// Ground truth: serial, unfused, unoptimized, no recycling.
	base := recycledb.NewWithCatalog(recycledb.Config{
		Mode: recycledb.Off, DisableOptimizer: true, DisableFusion: true, Parallelism: 1,
	}, cat)
	want := make([]map[string]*canonRow, len(queries))
	for i, q := range queries {
		r, err := base.ExecuteContext(context.Background(), q.Plan)
		if err != nil {
			t.Fatalf("baseline %s: %v", q.Label, err)
		}
		want[i] = canonResult(r)
	}

	for _, disableOpt := range []bool{false, true} {
		for _, mode := range harness.Modes {
			for _, par := range []int{1, 4} {
				for _, noFuse := range []bool{false, true} {
					name := fmt.Sprintf("opt=%t/%v/par=%d/fused=%t", !disableOpt, mode, par, !noFuse)
					eng := recycledb.NewWithCatalog(recycledb.Config{
						Mode:             mode,
						DisableOptimizer: disableOpt,
						DisableFusion:    noFuse,
						Parallelism:      par,
					}, cat)
					// Round 0 exercises cold paths (materialization,
					// admission), round 1 warm reuse and subsumption under
					// the optimizer-chosen shapes.
					for round := 0; round < 2; round++ {
						for i, q := range queries {
							r, err := eng.ExecuteContext(context.Background(), q.Plan)
							if err != nil {
								t.Fatalf("%s round %d %s: %v", name, round, q.Label, err)
							}
							if d := canonDiff(want[i], canonResult(r)); d != "" {
								t.Fatalf("%s round %d %s: %s", name, round, q.Label, d)
							}
						}
					}
				}
			}
		}
	}
}

// measuredRE strips the [measured …] annotation, the only Explain element
// fed by wall-clock timings rather than deterministic state.
var measuredRE = regexp.MustCompile(`\s*\[measured [^\]]*\]`)

// TestOptimizerMemoDeterminism checks that optimizer enumeration is
// deterministic: two fresh engines render byte-identical plans (including
// cost estimates) for the same query, differently-written conjunct orders
// canonicalize to the same plan, and re-planning against warm state is
// stable across repeated runs.
func TestOptimizerMemoDeterminism(t *testing.T) {
	const qA = `SELECT l_quantity, l_extendedprice FROM lineitem WHERE l_quantity < 25 AND l_extendedprice > 1000 AND l_tax < 1`
	const qB = `SELECT l_quantity, l_extendedprice FROM lineitem WHERE l_tax < 1 AND l_quantity < 25 AND l_extendedprice > 1000`

	mk := func() *recycledb.Engine {
		return recycledb.NewWithCatalog(recycledb.Config{Mode: recycledb.History},
			harness.MixedCatalog(0.002, 4000, 1))
	}

	// Cold engines carry no timing-dependent state: full Explain output —
	// shapes, cardinalities, costs — must agree across engines.
	a, b := mk(), mk()
	ea, err := a.Explain(qA)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Explain(qA)
	if err != nil {
		t.Fatal(err)
	}
	if ea != eb {
		t.Fatalf("cold explain differs across engines:\n%s\n--- vs ---\n%s", ea, eb)
	}

	// Canonicalization: the same conjuncts written in a different order
	// must plan identically.
	eBOrder, err := a.Explain(qB)
	if err != nil {
		t.Fatal(err)
	}
	if ea != eBOrder {
		t.Fatalf("conjunct order changed the plan:\n%s\n--- vs ---\n%s", ea, eBOrder)
	}

	// Warm determinism: after executions mutate recycler state, repeated
	// re-planning of the same query is stable (measured-cost annotations
	// excepted — they report wall-clock times).
	for i := 0; i < 3; i++ {
		if _, err := a.Exec(context.Background(), qA); err != nil {
			t.Fatal(err)
		}
	}
	w1, err := a.Explain(qA)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := a.Explain(qB)
	if err != nil {
		t.Fatal(err)
	}
	if measuredRE.ReplaceAllString(w1, "") != measuredRE.ReplaceAllString(w2, "") {
		t.Fatalf("warm re-plan unstable:\n%s\n--- vs ---\n%s", w1, w2)
	}
}
