// SkyServer: the paper's real-world workload (Fig. 6) in miniature — 100
// astronomy queries dominated by one expensive cone-search pattern, run
// against the naive pipelined engine, the recycling pipelined engine, and
// the operator-at-a-time (MonetDB-style) baseline with its admit-all
// recycler.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"recycledb"
	"recycledb/internal/catalog"
	"recycledb/internal/monet"
	"recycledb/internal/skyserver"
)

func main() {
	cat := catalog.New()
	skyserver.Load(cat, 150000, 1)
	queries := skyserver.Workload(100, 1)

	// Pipelined engine, naive.
	naive := run("pipelined naive", func() error {
		eng := recycledb.NewWithCatalog(recycledb.Config{Mode: recycledb.Off}, cat)
		return execAll(eng, queries)
	})
	// Pipelined engine with the paper's recycler.
	recEng := recycledb.NewWithCatalog(recycledb.Config{Mode: recycledb.Speculative}, cat)
	rec := run("pipelined + recycler", func() error {
		return execAll(recEng, queries)
	})
	st := recEng.Recycler().Stats()
	fmt.Printf("  (reuses=%d materializations=%d cache=%dKB)\n",
		st.Reuses, st.Materializations, st.CacheBytes/1024)
	// Operator-at-a-time baseline with admit-all recycler.
	mon := run("operator-at-a-time + admit-all recycler", func() error {
		eng := monet.New(cat, monet.NewRecycler(0))
		for _, q := range queries {
			if _, err := eng.Execute(q.Plan); err != nil {
				return err
			}
		}
		return nil
	})

	fmt.Printf("\npipelined recycler: %.1f%% of naive\n", 100*float64(rec)/float64(naive))
	fmt.Printf("operator-at-a-time recycler: %.1f%% of naive\n", 100*float64(mon)/float64(naive))
}

func run(name string, f func() error) time.Duration {
	start := time.Now()
	if err := f(); err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	d := time.Since(start)
	fmt.Printf("%-42s %v\n", name, d.Round(time.Millisecond))
	return d
}

func execAll(eng *recycledb.Engine, queries []skyserver.Query) error {
	// Stream each query and drain it batch-by-batch: the engine never
	// materializes on the caller's behalf, only where the recycler's
	// benefit metric placed store operators.
	ctx := context.Background()
	for _, q := range queries {
		rows, err := eng.Stream(ctx, q.Plan)
		if err != nil {
			return err
		}
		for {
			b, err := rows.Next(ctx)
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
		}
	}
	return nil
}
