// Proactive: demonstrates §IV-B's proactive recycling rules. A TPC-H Q1
// style workload varies its date cutoff — exact results never repeat, so
// plain recycling cannot help. Cube caching with binning splits each query
// into a parameter-independent per-year cube (cached once, reused by every
// variant) plus a small residual range.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"recycledb"
	"recycledb/internal/tpch"
	"recycledb/internal/vector"
)

func main() {
	// Cutoffs all differ: final results are never reused.
	base := vector.MustParseDate("1998-12-01")
	var cutoffs []string
	for i := 0; i < 8; i++ {
		cutoffs = append(cutoffs, vector.DateString(base-int64(60+7*i)))
	}

	ctx := context.Background()
	for _, mode := range []recycledb.Mode{recycledb.Speculative, recycledb.Proactive} {
		eng := recycledb.New(recycledb.Config{Mode: mode})
		tpch.Generate(eng.Catalog(), 0.02, 3)
		fmt.Printf("=== mode %v ===\n", mode)
		var total time.Duration
		for i, c := range cutoffs {
			q := recycledb.Aggregate(
				recycledb.Select(
					recycledb.Scan("lineitem", "l_returnflag", "l_linestatus",
						"l_quantity", "l_extendedprice", "l_discount", "l_shipdate"),
					recycledb.Le(recycledb.Col("l_shipdate"), recycledb.Date(c))),
				recycledb.GroupBy("l_returnflag", "l_linestatus"),
				recycledb.Sum(recycledb.Col("l_quantity"), "sum_qty"),
				recycledb.Sum(recycledb.Mul(recycledb.Col("l_extendedprice"),
					recycledb.SubE(recycledb.Float(1), recycledb.Col("l_discount"))), "sum_disc_price"),
				recycledb.Avg(recycledb.Col("l_quantity"), "avg_qty"),
				recycledb.CountAll("count_order"),
			)
			res, err := eng.ExecuteContext(ctx, q)
			if err != nil {
				log.Fatal(err)
			}
			total += res.Stats.Total
			tag := ""
			if res.Stats.ProactiveApplied {
				tag = " [proactive]"
			}
			if res.Stats.Reused+res.Stats.SubsumptionReused > 0 {
				tag += " [cube reused]"
			}
			fmt.Printf("query %d (<= %s): %8v%s\n",
				i+1, c, res.Stats.Total.Round(100*time.Microsecond), tag)
		}
		fmt.Printf("total: %v\n\n", total.Round(time.Millisecond))
	}
}
