// Dashboard: the paper's motivating scenario — an interactive analytics
// session where successive queries refine the previous one's parameters
// (intro, §I: "successive queries are often based on the previous result by
// refining some of its parameters"). The widget is one prepared statement;
// the analyst only changes the binding, and the recycler turns the
// drill-down into cache hits without any DBA-defined materialized views.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"recycledb"
	"recycledb/internal/tpch"
)

func main() {
	for _, mode := range []recycledb.Mode{recycledb.Off, recycledb.Proactive} {
		fmt.Printf("=== mode %v ===\n", mode)
		session(mode)
		fmt.Println()
	}
}

// session simulates an analyst drilling into shipping volumes: same
// dashboard widget, refined date cutoffs (the paper's Q1-style roll-up).
func session(mode recycledb.Mode) {
	ctx := context.Background()
	eng := recycledb.New(recycledb.Config{Mode: mode})
	tpch.Generate(eng.Catalog(), 0.02, 7)

	widget, err := eng.Prepare(`
		SELECT l_returnflag, l_linestatus,
		       sum(l_quantity) AS sum_qty,
		       avg(l_extendedprice) AS avg_price,
		       count(*) AS orders
		FROM lineitem WHERE l_shipdate <= ?
		GROUP BY l_returnflag, l_linestatus`)
	if err != nil {
		log.Fatal(err)
	}

	// The analyst nudges the cutoff date around, then returns to an
	// earlier view - a classic dashboard interaction.
	cutoffs := []string{
		"1998-09-01", "1998-08-01", "1998-07-15",
		"1998-09-01", // back to the first view
		"1998-08-01",
	}
	var total time.Duration
	for step, c := range cutoffs {
		res, err := widget.Exec(ctx, recycledb.DateDatum(c))
		if err != nil {
			log.Fatal(err)
		}
		total += res.Stats.Total
		note := ""
		if res.Stats.Reused > 0 {
			note = " (cache hit)"
		} else if res.Stats.ProactiveApplied {
			note = " (proactive cube)"
		}
		fmt.Printf("step %d cutoff %s: %v%s\n",
			step+1, c, res.Stats.Total.Round(100*time.Microsecond), note)
	}
	fmt.Printf("session total: %v; recycler reuses: %d\n",
		total.Round(time.Millisecond), eng.Recycler().Stats().Reuses)
}
