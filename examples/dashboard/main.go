// Dashboard: the paper's motivating scenario — an interactive analytics
// session where successive queries refine the previous one's parameters
// (intro, §I: "successive queries are often based on the previous result by
// refining some of its parameters"). The recycler turns the drill-down into
// cache hits without any DBA-defined materialized views.
package main

import (
	"fmt"
	"log"
	"time"

	"recycledb"
	"recycledb/internal/tpch"
	"recycledb/internal/vector"
)

func main() {
	for _, mode := range []recycledb.Mode{recycledb.Off, recycledb.Proactive} {
		fmt.Printf("=== mode %v ===\n", mode)
		session(mode)
		fmt.Println()
	}
}

// session simulates an analyst drilling into shipping volumes: same
// dashboard widget, refined date cutoffs (the paper's Q1-style roll-up).
func session(mode recycledb.Mode) {
	eng := recycledb.New(recycledb.Config{Mode: mode})
	tpch.Generate(eng.Catalog(), 0.02, 7)

	widget := func(cutoff string) *recycledb.Plan {
		return recycledb.Aggregate(
			recycledb.Select(
				recycledb.Scan("lineitem", "l_returnflag", "l_linestatus",
					"l_quantity", "l_extendedprice", "l_shipdate"),
				recycledb.Le(recycledb.Col("l_shipdate"), recycledb.Date(cutoff))),
			recycledb.GroupBy("l_returnflag", "l_linestatus"),
			recycledb.Sum(recycledb.Col("l_quantity"), "sum_qty"),
			recycledb.Avg(recycledb.Col("l_extendedprice"), "avg_price"),
			recycledb.CountAll("orders"),
		)
	}

	// The analyst nudges the cutoff date around, then returns to an
	// earlier view - a classic dashboard interaction.
	cutoffs := []string{
		"1998-09-01", "1998-08-01", "1998-07-15",
		"1998-09-01", // back to the first view
		"1998-08-01",
	}
	var total time.Duration
	for step, c := range cutoffs {
		res, err := eng.Execute(widget(c))
		if err != nil {
			log.Fatal(err)
		}
		total += res.Stats.Total
		note := ""
		if res.Stats.Reused > 0 {
			note = " (cache hit)"
		} else if res.Stats.ProactiveApplied {
			note = " (proactive cube)"
		}
		fmt.Printf("step %d cutoff %s: %v%s\n",
			step+1, c, res.Stats.Total.Round(100*time.Microsecond), note)
	}
	fmt.Printf("session total: %v; recycler reuses: %d\n",
		total.Round(time.Millisecond), eng.Recycler().Stats().Reuses)
	_ = vector.DaysFromDate // keep the import for doc reference
}
