// Quickstart: build a table, run a parameterized SQL aggregation through
// the streaming API, and watch the recycler serve the repeat execution from
// its cache.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"recycledb"
	"recycledb/internal/catalog"
	"recycledb/internal/vector"
)

func main() {
	ctx := context.Background()

	// An engine with speculative recycling: new results that look
	// expensive and small (aggregates, final results) are materialized.
	eng := recycledb.New(recycledb.Config{Mode: recycledb.Speculative})

	// Load a sales table.
	sales := catalog.NewTable("sales", catalog.Schema{
		{Name: "region", Typ: vector.String},
		{Name: "amount", Typ: vector.Float64},
		{Name: "qty", Typ: vector.Int64},
	})
	rng := rand.New(rand.NewSource(1))
	regions := []string{"north", "south", "east", "west"}
	w := sales.BeginWrite()
	ap := w.Appender()
	for i := 0; i < 500000; i++ {
		ap.String(0, regions[rng.Intn(4)])
		ap.Float64(1, rng.Float64()*100)
		ap.Int64(2, int64(rng.Intn(10)+1))
		ap.FinishRow()
	}
	w.Commit()
	eng.Catalog().AddTable(sales)

	// Revenue per region over large sales, prepared once and executed
	// with a bound threshold. Identical bindings hit the recycler cache.
	stmt, err := eng.Prepare(`
		SELECT region, sum(amount * qty) AS revenue, count(*) AS orders
		FROM sales WHERE amount > ? GROUP BY region`)
	if err != nil {
		log.Fatal(err)
	}

	for run := 1; run <= 2; run++ {
		rows, err := stmt.Query(ctx, 50.0)
		if err != nil {
			log.Fatal(err)
		}
		// Stream the result: batches arrive as the pipeline produces
		// them; nothing is materialized on our behalf.
		groups := 0
		for b, err := range rows.All(ctx) {
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; i < b.Len(); i++ {
				row := b.Row(i)
				fmt.Printf("  %-6s revenue=%12.2f orders=%d\n",
					row[0].Str, row[1].F64, row[2].I64)
				groups++
			}
		}
		s := rows.Stats()
		fmt.Printf("run %d: %d groups in %v (reused=%d, materialized=%d)\n",
			run, groups, s.Total.Round(10e3), s.Reused, s.Materialized)
	}
}
