// Quickstart: build a table, run an aggregation twice, and watch the
// recycler serve the second execution from its cache.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"recycledb"
	"recycledb/internal/catalog"
	"recycledb/internal/vector"
)

func main() {
	// An engine with speculative recycling: new results that look
	// expensive and small (aggregates, final results) are materialized.
	eng := recycledb.New(recycledb.Config{Mode: recycledb.Speculative})

	// Load a sales table.
	sales := catalog.NewTable("sales", catalog.Schema{
		{Name: "region", Typ: vector.String},
		{Name: "amount", Typ: vector.Float64},
		{Name: "qty", Typ: vector.Int64},
	})
	rng := rand.New(rand.NewSource(1))
	regions := []string{"north", "south", "east", "west"}
	ap := sales.Appender()
	for i := 0; i < 500000; i++ {
		ap.String(0, regions[rng.Intn(4)])
		ap.Float64(1, rng.Float64()*100)
		ap.Int64(2, int64(rng.Intn(10)+1))
		ap.FinishRow()
	}
	eng.Catalog().AddTable(sales)

	// Revenue per region over large sales.
	query := recycledb.Aggregate(
		recycledb.Select(
			recycledb.Scan("sales", "region", "amount", "qty"),
			recycledb.Gt(recycledb.Col("amount"), recycledb.Float(50))),
		recycledb.GroupBy("region"),
		recycledb.Sum(recycledb.Mul(recycledb.Col("amount"), recycledb.Col("qty")), "revenue"),
		recycledb.CountAll("orders"),
	)

	for run := 1; run <= 2; run++ {
		res, err := eng.Execute(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %d: %d groups in %v (reused=%d, materialized=%d)\n",
			run, res.Rows(), res.Stats.Total.Round(10e3),
			res.Stats.Reused, res.Stats.Materialized)
		for _, b := range res.Batches {
			for i := 0; i < b.Len(); i++ {
				row := b.Row(i)
				fmt.Printf("  %-6s revenue=%12.2f orders=%d\n",
					row[0].Str, row[1].F64, row[2].I64)
			}
		}
	}
	fmt.Printf("\nrecycler: %+v\n", eng.Recycler().Stats())
}
