package recycledb_test

// Race-hardened stress tests for the concurrent query path: many client
// goroutines hammer one shared engine with a mixed TPC-H + SkyServer
// workload while control operations (SetMode, FlushCache) fire at random,
// and every single result is checked against a single-threaded ModeOff
// baseline. Run under -race this exercises the sharded cache, the striped
// statistics, graph matching under contention, and the in-flight
// producer/waiter handoff all at once.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"recycledb"

	"recycledb/internal/harness"
	"recycledb/internal/workload"
)

func TestConcurrentStress32Clients(t *testing.T) {
	cat := harness.MixedCatalog(0.002, 4000, 1)
	mix := harness.MixedMix(2, 1)

	// A fixed pool of query instances; concurrent clients re-issue the
	// same instances, which is what makes sharing (reuse, stalls,
	// handoff) actually happen.
	rng := rand.New(rand.NewSource(99))
	var instances []workload.Query
	for i := 0; i < 24; i++ {
		q := mix.Pick(rng)
		if q.Plan == nil {
			t.Fatal("mix produced an empty query")
		}
		instances = append(instances, q)
	}

	// Single-threaded ModeOff baselines.
	base := recycledb.NewWithCatalog(recycledb.Config{Mode: recycledb.Off}, cat)
	want := make([]map[string]*canonRow, len(instances))
	for i, q := range instances {
		r, err := base.ExecuteContext(context.Background(), q.Plan)
		if err != nil {
			t.Fatalf("baseline %s: %v", q.Label, err)
		}
		want[i] = canonResult(r)
	}

	eng := recycledb.NewWithCatalog(recycledb.Config{
		Mode:       recycledb.Speculative,
		CacheBytes: 8 << 20,
	}, cat)
	modes := []recycledb.Mode{
		recycledb.Off, recycledb.History, recycledb.Speculative, recycledb.Proactive,
	}

	const clients = 32
	iters := 25
	if testing.Short() {
		iters = 6
	}
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)*6151 + 7))
			for i := 0; i < iters; i++ {
				// Interleave control-plane churn with the queries.
				switch rng.Intn(10) {
				case 0:
					eng.SetMode(modes[rng.Intn(len(modes))])
				case 1:
					eng.FlushCache()
				}
				qi := rng.Intn(len(instances))
				q := instances[qi]
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				r, err := eng.ExecuteContext(ctx, q.Plan)
				cancel()
				if err != nil {
					errs <- fmt.Errorf("client %d iter %d %s: %w", c, i, q.Label, err)
					return
				}
				if d := canonDiff(want[qi], canonResult(r)); d != "" {
					errs <- fmt.Errorf("client %d iter %d %s (mode %v): %s",
						c, i, q.Label, eng.Mode(), d)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := eng.Recycler().Stats()
	if st.CacheBytes < 0 || (8<<20) < st.CacheBytes {
		t.Fatalf("cache accounting out of bounds after stress: %d", st.CacheBytes)
	}
	t.Logf("stress totals: %+v", st)
}

// TestConcurrentIdenticalQuerySharing drives K identical expensive queries
// simultaneously and checks the §V contract end to end: results all match
// the baseline, and the recycler shows sharing (reuses, stalls, or direct
// in-flight handoffs) rather than K independent computations.
func TestConcurrentIdenticalQuerySharing(t *testing.T) {
	cat := harness.MixedCatalog(0.004, 2000, 1)
	mix := harness.TPCHMix(1, 3)
	rng := rand.New(rand.NewSource(5))
	q := mix.Pick(rng)

	base := recycledb.NewWithCatalog(recycledb.Config{Mode: recycledb.Off}, cat)
	br, err := base.ExecuteContext(context.Background(), q.Plan)
	if err != nil {
		t.Fatal(err)
	}
	want := canonResult(br)

	eng := recycledb.NewWithCatalog(recycledb.Config{Mode: recycledb.Speculative}, cat)
	const k = 16
	var wg sync.WaitGroup
	errs := make(chan error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := eng.ExecuteContext(context.Background(), q.Plan)
			if err != nil {
				errs <- fmt.Errorf("worker %d: %w", i, err)
				return
			}
			if d := canonDiff(want, canonResult(r)); d != "" {
				errs <- fmt.Errorf("worker %d: %s", i, d)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := eng.Recycler().Stats()
	shared := st.Reuses + st.StallReuses + st.InflightShared
	if shared == 0 {
		t.Fatalf("no sharing among %d identical queries: %+v", k, st)
	}
}
