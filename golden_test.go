package recycledb_test

// Golden equivalence: every TPC-H and SkyServer query must produce the same
// result no matter how it is executed — without recycling, with recycling
// (cold and warm cache), streamed batch by batch, or issued by 8 concurrent
// goroutines against one shared engine. Results are compared in canonical
// form (order-insensitive, float-tolerant): keyed by the non-float columns,
// with per-key row counts and float-column sums, so hash-aggregation
// ordering and re-aggregation float noise do not produce false alarms.

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"recycledb"

	"recycledb/internal/catalog"
	"recycledb/internal/harness"
	"recycledb/internal/skyserver"
	"recycledb/internal/tpch"
	"recycledb/internal/vector"
	"recycledb/internal/workload"
)

// canonRow aggregates all result rows sharing one key: the row count and
// the element-wise sums of the float columns (order-insensitive and robust
// to float association noise).
type canonRow struct {
	count int
	sums  []float64
}

// canonBatches folds batches into canonical form under the given schema.
func canonBatches(schema catalog.Schema, batches []*vector.Batch) map[string]*canonRow {
	floatCols := make([]bool, len(schema))
	for i, c := range schema {
		floatCols[i] = c.Typ == vector.Float64
	}
	out := make(map[string]*canonRow)
	for _, b := range batches {
		for i := 0; i < b.Len(); i++ {
			row := b.Row(i)
			var key strings.Builder
			var sums []float64
			for c, d := range row {
				if floatCols[c] {
					sums = append(sums, d.F64)
				} else {
					key.WriteString(d.String())
					key.WriteByte('|')
				}
			}
			cr := out[key.String()]
			if cr == nil {
				cr = &canonRow{sums: make([]float64, len(sums))}
				out[key.String()] = cr
			}
			cr.count++
			for s, v := range sums {
				cr.sums[s] += v
			}
		}
	}
	return out
}

// canonDiff compares two canonical results with float tolerance and returns
// a description of the first difference, or "".
func canonDiff(want, got map[string]*canonRow) string {
	if len(want) != len(got) {
		return fmt.Sprintf("key counts differ: want %d, got %d", len(want), len(got))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			return fmt.Sprintf("key %q missing", k)
		}
		if w.count != g.count {
			return fmt.Sprintf("key %q: row count %d vs %d", k, w.count, g.count)
		}
		for i := range w.sums {
			d := math.Abs(w.sums[i] - g.sums[i])
			if d > 1e-6 && d > 1e-9*math.Abs(w.sums[i]) {
				return fmt.Sprintf("key %q float col %d: %v vs %v", k, i, w.sums[i], g.sums[i])
			}
		}
	}
	return ""
}

// canonResult canonicalizes a materialized result.
func canonResult(r *recycledb.Result) map[string]*canonRow {
	return canonBatches(r.Schema, r.Raw().Batches)
}

// goldenQueries builds the full query set: all 22 TPC-H patterns with fixed
// stream-0 parameters plus the SkyServer workload patterns.
func goldenQueries() []workload.Query {
	var out []workload.Query
	for _, p := range tpch.NewStream(0, 42).Queries {
		out = append(out, workload.Query{Label: fmt.Sprintf("Q%d", p.Q), Plan: tpch.Build(p)})
	}
	for i, q := range skyserver.Workload(12, 42) {
		out = append(out, workload.Query{Label: fmt.Sprintf("sky-%d-%s", i, q.Pattern), Plan: q.Plan})
	}
	return out
}

func TestGoldenEquivalence(t *testing.T) {
	cat := harness.MixedCatalog(0.002, 4000, 1)
	queries := goldenQueries()

	// Baseline: single-threaded, no recycling.
	base := recycledb.NewWithCatalog(recycledb.Config{Mode: recycledb.Off}, cat)
	want := make([]map[string]*canonRow, len(queries))
	for i, q := range queries {
		r, err := base.ExecuteContext(context.Background(), q.Plan)
		if err != nil {
			t.Fatalf("baseline %s: %v", q.Label, err)
		}
		want[i] = canonResult(r)
	}

	// Every recycling mode, two rounds each (cold cache, then warm cache
	// exercising reuse/subsumption/proactive substitution).
	for _, mode := range harness.Modes {
		eng := recycledb.NewWithCatalog(recycledb.Config{Mode: mode}, cat)
		for round := 0; round < 2; round++ {
			for i, q := range queries {
				r, err := eng.ExecuteContext(context.Background(), q.Plan)
				if err != nil {
					t.Fatalf("mode %v round %d %s: %v", mode, round, q.Label, err)
				}
				if d := canonDiff(want[i], canonResult(r)); d != "" {
					t.Fatalf("mode %v round %d %s: %s", mode, round, q.Label, d)
				}
			}
		}
	}

	// Streaming execution: batches consumed incrementally.
	eng := recycledb.NewWithCatalog(recycledb.Config{Mode: recycledb.Speculative}, cat)
	for i, q := range queries {
		rows, err := eng.Stream(context.Background(), q.Plan)
		if err != nil {
			t.Fatalf("stream %s: %v", q.Label, err)
		}
		got := make(map[string]*canonRow)
		for b, err := range rows.All(context.Background()) {
			if err != nil {
				t.Fatalf("stream %s: %v", q.Label, err)
			}
			for k, cr := range canonBatches(rows.Schema(), []*vector.Batch{b}) {
				if prev := got[k]; prev == nil {
					got[k] = cr
				} else {
					prev.count += cr.count
					for s := range cr.sums {
						prev.sums[s] += cr.sums[s]
					}
				}
			}
		}
		if d := canonDiff(want[i], got); d != "" {
			t.Fatalf("streaming %s: %s", q.Label, d)
		}
	}

	// 8-way concurrent execution against one shared recycling engine: the
	// same query runs in many goroutines at once, so reuse, in-flight
	// stalls, and direct handoff all fire — results must not change.
	conc := recycledb.NewWithCatalog(recycledb.Config{Mode: recycledb.Speculative}, cat)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, q := range queries {
				r, err := conc.ExecuteContext(context.Background(), q.Plan)
				if err != nil {
					errs <- fmt.Errorf("worker %d %s: %w", w, q.Label, err)
					return
				}
				if d := canonDiff(want[i], canonResult(r)); d != "" {
					errs <- fmt.Errorf("worker %d %s: %s", w, q.Label, d)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
