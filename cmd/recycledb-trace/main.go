// Command recycledb-trace renders the paper's Fig. 9: a timeline of 8
// concurrent TPC-H streams with per-query materialization/reuse/stall
// shading, on a freshly generated database.
package main

import (
	"flag"
	"fmt"
	"os"

	"recycledb/internal/harness"
)

func main() {
	var (
		sf      = flag.Float64("sf", 0.01, "TPC-H scale factor")
		streams = flag.Int("streams", 8, "number of concurrent streams")
		seed    = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	cfg := harness.DefaultFig9()
	cfg.SF = *sf
	cfg.Streams = *streams
	cfg.MaxConcurrent = *streams
	cfg.Seed = *seed
	res, err := harness.RunFig9(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "recycledb-trace:", err)
		os.Exit(1)
	}
	fmt.Print(res.String())
}
