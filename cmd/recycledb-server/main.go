// Command recycledb-server serves the recycling engine to real clients over
// the PostgreSQL wire protocol. Any libpq-compatible client connects with
// trust auth — psql, drivers, pgbench-style load generators:
//
//	recycledb-server -addr 127.0.0.1:5433 -sf 0.05 -mode spec
//	psql -h 127.0.0.1 -p 5433 -U anyone
//
// The server preloads a mixed TPC-H + SkyServer catalog (the paper's two
// workloads), so dashboards repeat Q1/Q3/Q6-shaped statements and cone
// searches immediately exercise recycling across connections. SET
// recycling_mode = 'off'|'hist'|'spec'|'pa' switches the recycler live; SET
// statement_timeout bounds statements per session.
//
// Operational knobs: -max-conns caps connections (beyond it clients get
// SQLSTATE 53300), -max-concurrent caps concurrently executing statements
// (admission control; queued statements wait FIFO without claiming engine
// workers), -statement-timeout sets the default per-statement deadline.
// SIGTERM / SIGINT begin a graceful drain: the listener closes, idle
// connections drop, in-flight statements get -drain-timeout to finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"recycledb"
	"recycledb/internal/envflag"
	"recycledb/internal/harness"
	"recycledb/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:5433", "listen address")
		mode    = flag.String("mode", "spec", "recycling mode: off, hist, spec, pa")
		sf      = flag.Float64("sf", 0.05, "TPC-H scale factor to preload")
		objects = flag.Int("objects", 20000, "SkyServer PhotoPrimary size to preload")
		seed    = flag.Int64("seed", 1, "data generation seed")
		par     = flag.Int("parallelism", 0, "intra-query worker budget (0 = GOMAXPROCS)")
		noFuse  = flag.Bool("disable-fusion", envflag.Bool(envflag.DisableFusion),
			"disable push-based loop fusion of pipeline interiors (also via RECYCLEDB_DISABLE_FUSION=1)")
		noOpt = flag.Bool("disable-optimizer", envflag.Bool(envflag.DisableOptimizer),
			"disable the recycler-aware plan optimizer (also via RECYCLEDB_DISABLE_OPTIMIZER=1)")
		noKern = flag.Bool("disable-kernels", envflag.Bool(envflag.DisableKernels),
			"disable type-specialized compute kernels (also via RECYCLEDB_DISABLE_KERNELS=1)")
		cacheMB     = flag.Int64("cache-mb", 0, "recycler cache budget in MiB (0 = default 256)")
		maxConns    = flag.Int("max-conns", 0, "connection cap (0 = unlimited)")
		maxConc     = flag.Int("max-concurrent", 0, "executing-statement cap (0 = 4x workers, -1 = unlimited)")
		stmtTimeout = flag.Duration("statement-timeout", 0, "default per-statement timeout (0 = none)")
		writeTO     = flag.Duration("write-timeout", 30*time.Second, "per-flush socket write bound (0 = none)")
		drainTO     = flag.Duration("drain-timeout", 5*time.Second, "grace for in-flight statements on shutdown")
	)
	flag.Parse()

	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.Printf("loading TPC-H sf=%g + SkyServer objects=%d ...", *sf, *objects)
	cat := harness.MixedCatalog(*sf, *objects, *seed)
	eng := recycledb.NewWithCatalog(recycledb.Config{
		Mode:             parseMode(*mode),
		Parallelism:      *par,
		CacheBytes:       *cacheMB << 20,
		DisableFusion:    *noFuse,
		DisableKernels:   *noKern,
		DisableOptimizer: *noOpt,
	}, cat)
	srv := server.New(eng, server.Config{
		MaxConns:         *maxConns,
		MaxConcurrent:    *maxConc,
		StatementTimeout: *stmtTimeout,
		WriteTimeout:     *writeTO,
		DrainTimeout:     *drainTO,
	})

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	onOff := func(off bool) string {
		if off {
			return "off"
		}
		return "on"
	}
	log.Printf("serving pgwire on %s (mode=%s, workers=%d, max-concurrent=%d, fusion=%s, kernels=%s, optimizer=%s)",
		lis.Addr(), eng.Mode(), eng.Workers(), srv.MaxConcurrent(), onOff(*noFuse), onOff(*noKern), onOff(*noOpt))
	log.Printf("connect with: psql -h %s -p %s -U recycle", hostOf(lis.Addr().String()), portOf(lis.Addr().String()))

	err = srv.Serve(ctx, lis)
	st := srv.Stats()
	log.Printf("drained: %d conns served, %d stmts rejected by admission, %d errors sent (%v)",
		st.ConnsAccepted, st.AdmissionDrops, st.ErrorsSent, err)
}

func parseMode(s string) recycledb.Mode {
	switch strings.ToLower(s) {
	case "hist", "history":
		return recycledb.History
	case "spec", "speculative":
		return recycledb.Speculative
	case "pa", "proactive":
		return recycledb.Proactive
	default:
		return recycledb.Off
	}
}

func hostOf(addr string) string {
	if h, _, err := net.SplitHostPort(addr); err == nil {
		return h
	}
	return addr
}

func portOf(addr string) string {
	if _, p, err := net.SplitHostPort(addr); err == nil {
		return p
	}
	return fmt.Sprint(5432)
}
