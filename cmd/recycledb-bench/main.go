// Command recycledb-bench runs the paper's experiments (Figs. 6-10 of
// "Recycling in Pipelined Query Evaluation", ICDE 2013) and prints the
// corresponding tables/series.
//
// Usage:
//
//	recycledb-bench -fig 6 [-objects 120000 -queries 100]
//	recycledb-bench -fig 7 [-sf 0.01 -streams 4,16,64,256]
//	recycledb-bench -fig 8 [-sf 0.01 -streams 4,16,64,256]
//	recycledb-bench -fig 9 [-sf 0.01]
//	recycledb-bench -fig 10 [-sf 0.01 -streams256 256]
//	recycledb-bench -fig all
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"recycledb/internal/harness"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to reproduce: 6, 7, 8, 9, 10 or all")
		sf       = flag.Float64("sf", 0.01, "TPC-H scale factor")
		streams  = flag.String("streams", "4,16,64,256", "stream counts for figs 7/8")
		nstreams = flag.Int("streams256", 256, "stream count for fig 10")
		objects  = flag.Int("objects", 120000, "SkyServer PhotoPrimary size for fig 6")
		queries  = flag.Int("queries", 100, "SkyServer workload length for fig 6")
		maxConc  = flag.Int("concurrent", 12, "query admission limit")
		seed     = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	counts, err := parseStreams(*streams)
	if err != nil {
		fatal(err)
	}
	run := func(name string, f func() error) {
		fmt.Printf("=== %s ===\n", name)
		if err := f(); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	want := func(n string) bool { return *fig == "all" || *fig == n }

	if want("6") {
		run("Fig. 6 (SkyServer)", func() error {
			cfg := harness.DefaultFig6()
			cfg.Objects = *objects
			cfg.Queries = *queries
			cfg.Seed = *seed
			res, err := harness.RunFig6(cfg)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return nil
		})
	}
	if want("7") || want("8") {
		run("Figs. 7+8 (TPC-H throughput)", func() error {
			cfg := harness.DefaultTPCH()
			cfg.SF = *sf
			cfg.Streams = counts
			cfg.MaxConcurrent = *maxConc
			cfg.Seed = *seed
			res, err := harness.RunThroughput(cfg)
			if err != nil {
				return err
			}
			if want("7") {
				fmt.Print(res.String())
			}
			if want("8") {
				fmt.Print(res.Fig8String())
			}
			return nil
		})
	}
	if want("9") {
		run("Fig. 9 (concurrent trace)", func() error {
			cfg := harness.DefaultFig9()
			cfg.SF = *sf
			cfg.Seed = *seed
			res, err := harness.RunFig9(cfg)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return nil
		})
	}
	if want("10") {
		run("Fig. 10 (matching cost)", func() error {
			cfg := harness.DefaultFig10()
			cfg.SF = *sf
			cfg.Streams = *nstreams
			cfg.MaxConcurrent = *maxConc
			cfg.Seed = *seed
			res, err := harness.RunFig10(cfg)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return nil
		})
	}
}

func parseStreams(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad stream count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "recycledb-bench:", err)
	os.Exit(1)
}
