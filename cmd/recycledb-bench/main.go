// Command recycledb-bench runs the paper's experiments (Figs. 6-10 of
// "Recycling in Pipelined Query Evaluation", ICDE 2013) and prints the
// corresponding tables/series.
//
// Usage:
//
//	recycledb-bench -fig 6 [-objects 120000 -queries 100]
//	recycledb-bench -fig 7 [-sf 0.01 -streams 4,16,64,256]
//	recycledb-bench -fig 8 [-sf 0.01 -streams 4,16,64,256]
//	recycledb-bench -fig 9 [-sf 0.01]
//	recycledb-bench -fig 10 [-sf 0.01 -streams256 256]
//	recycledb-bench -fig all
//
// The -json mode instead records the serving-tier perf trajectory: it drives
// the multi-client TPC-H mix against one engine per recycling mode and
// writes a machine-readable BENCH_<date>.json with queries/sec, latency
// percentiles, and allocations per query:
//
//	recycledb-bench -json [-out bench/BENCH_2026-07-30.json] \
//	        [-clients 8 -bqueries 2000 -sf 0.01 -seed 1]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"recycledb"

	"recycledb/internal/catalog"
	"recycledb/internal/envflag"
	"recycledb/internal/harness"
	"recycledb/internal/monet"
	"recycledb/internal/server"
	"recycledb/internal/workload"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to reproduce: 6, 7, 8, 9, 10 or all")
		sf       = flag.Float64("sf", 0.01, "TPC-H scale factor")
		streams  = flag.String("streams", "4,16,64,256", "stream counts for figs 7/8")
		nstreams = flag.Int("streams256", 256, "stream count for fig 10")
		objects  = flag.Int("objects", 120000, "SkyServer PhotoPrimary size for fig 6")
		queries  = flag.Int("queries", 100, "SkyServer workload length for fig 6")
		maxConc  = flag.Int("concurrent", 12, "query admission limit")
		seed     = flag.Int64("seed", 1, "generator seed")

		serverMode = flag.Bool("server", false, "benchmark the pgwire serving stack over TCP and write BENCH_<date>_server.json")
		serverAddr = flag.String("addr", "", "with -server: benchmark an already-running server at this address instead of in-process engines")
		skyObjects = flag.Int("sky-objects", 10000, "SkyServer PhotoPrimary size for -server")

		jsonMode  = flag.Bool("json", false, "run the multi-client benchmark and write BENCH_<date>.json")
		jsonOut   = flag.String("out", "", "output path for -json (default BENCH_<date>.json)")
		clients   = flag.Int("clients", 8, "client goroutines for -json")
		bqueries  = flag.Int64("bqueries", 2000, "query budget per mode for -json")
		writeFrac = flag.Float64("write-frac", 0.1, "write fraction of the -json churn section (0 disables it)")
		par       = flag.Int("parallelism", 0, "intra-query worker budget for -json (0 = GOMAXPROCS)")
		scaleOff  = flag.Bool("no-scaling", false, "skip the intra-query scaling sweep in -json")
		noFuse    = flag.Bool("disable-fusion", envflag.Bool(envflag.DisableFusion),
			"disable push-based loop fusion in benchmarked engines (also via RECYCLEDB_DISABLE_FUSION=1)")
		noKern = flag.Bool("disable-kernels", envflag.Bool(envflag.DisableKernels),
			"disable type-specialized compute kernels in benchmarked engines (also via RECYCLEDB_DISABLE_KERNELS=1)")
		fusionMode  = flag.Bool("fusion", false, "run the fused-vs-unfused comparison and write BENCH_<date>_fusion.json")
		kernelsMode = flag.Bool("kernels", false, "run the kernels-on-vs-off comparison and write BENCH_<date>_kernels.json")
		optMode     = flag.Bool("optimizer", false, "run the optimized-vs-unoptimized comparison and write BENCH_<date>_optimizer.json")
	)
	flag.Parse()

	if *optMode {
		if err := runOptimizerBench(*jsonOut, *clients, *bqueries, *sf, *skyObjects, *seed, *writeFrac); err != nil {
			fatal(err)
		}
		return
	}
	if *fusionMode {
		if err := runFusionBench(*jsonOut, *bqueries, *sf, *seed); err != nil {
			fatal(err)
		}
		return
	}
	if *kernelsMode {
		if err := runKernelsBench(*jsonOut, *bqueries, *sf, *seed); err != nil {
			fatal(err)
		}
		return
	}
	if *serverMode {
		if err := runServerBench(*jsonOut, *serverAddr, *clients, *bqueries, *sf, *skyObjects, *seed, *par, *noFuse, *noKern); err != nil {
			fatal(err)
		}
		return
	}
	if *jsonMode {
		if err := runJSON(*jsonOut, *clients, *bqueries, *sf, *seed, *writeFrac, *par, !*scaleOff, *noFuse, *noKern); err != nil {
			fatal(err)
		}
		return
	}

	counts, err := parseStreams(*streams)
	if err != nil {
		fatal(err)
	}
	run := func(name string, f func() error) {
		fmt.Printf("=== %s ===\n", name)
		if err := f(); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	want := func(n string) bool { return *fig == "all" || *fig == n }

	if want("6") {
		run("Fig. 6 (SkyServer)", func() error {
			cfg := harness.DefaultFig6()
			cfg.Objects = *objects
			cfg.Queries = *queries
			cfg.Seed = *seed
			res, err := harness.RunFig6(cfg)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return nil
		})
	}
	if want("7") || want("8") {
		run("Figs. 7+8 (TPC-H throughput)", func() error {
			cfg := harness.DefaultTPCH()
			cfg.SF = *sf
			cfg.Streams = counts
			cfg.MaxConcurrent = *maxConc
			cfg.Seed = *seed
			res, err := harness.RunThroughput(cfg)
			if err != nil {
				return err
			}
			if want("7") {
				fmt.Print(res.String())
			}
			if want("8") {
				fmt.Print(res.Fig8String())
			}
			return nil
		})
	}
	if want("9") {
		run("Fig. 9 (concurrent trace)", func() error {
			cfg := harness.DefaultFig9()
			cfg.SF = *sf
			cfg.Seed = *seed
			res, err := harness.RunFig9(cfg)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return nil
		})
	}
	if want("10") {
		run("Fig. 10 (matching cost)", func() error {
			cfg := harness.DefaultFig10()
			cfg.SF = *sf
			cfg.Streams = *nstreams
			cfg.MaxConcurrent = *maxConc
			cfg.Seed = *seed
			res, err := harness.RunFig10(cfg)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return nil
		})
	}
}

// benchMode is one mode's row in the JSON benchmark report.
type benchMode struct {
	Mode           string  `json:"mode"`
	Queries        int64   `json:"queries"`
	Errors         int64   `json:"errors"`
	QueriesPerSec  float64 `json:"queries_per_sec"`
	P50Micros      int64   `json:"p50_us"`
	P95Micros      int64   `json:"p95_us"`
	P99Micros      int64   `json:"p99_us"`
	AllocsPerQuery float64 `json:"allocs_per_query"`
	BytesPerQuery  float64 `json:"bytes_per_query"`
}

// churnMode is one engine's row in the churn section: a mixed read/write
// run at the configured write fraction, with the recycler's hit rate and
// how the cache coped with the write epochs.
type churnMode struct {
	Mode    string `json:"mode"`
	Queries int64  `json:"queries"`
	Writes  int64  `json:"writes"`
	// HitRate is cache reuses (exact + subsumption + in-flight shared)
	// per query; for the monet baseline, hits/(hits+misses).
	HitRate       float64 `json:"hit_rate"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	Invalidated   int64   `json:"invalidated"`
	DeltaExtended int64   `json:"delta_extended"`
	DeltaRows     int64   `json:"delta_extended_rows"`
}

// benchReport is the top-level BENCH_<date>.json document.
type benchReport struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	NumCPU     int         `json:"num_cpu"`
	Clients    int         `json:"clients"`
	Queries    int64       `json:"queries_per_mode"`
	SF         float64     `json:"sf"`
	Seed       int64       `json:"seed"`
	Modes      []benchMode `json:"modes"`
	// Parallelism is the intra-query worker budget of the modes runs
	// (0 = GOMAXPROCS).
	Parallelism int `json:"parallelism"`
	// DisableFusion records whether the runs bypassed the fused push loops.
	DisableFusion bool `json:"disable_fusion"`
	// DisableKernels records whether the runs bypassed the type-specialized
	// compute kernels.
	DisableKernels bool `json:"disable_kernels"`
	// Churn measures recycling under append-only updates: the pipelined
	// recycler's lineage-based invalidation with delta extension keeps a
	// nonzero hit rate, while the monet-style invalidate-all baseline
	// collapses. WriteFrac 0 omits the section.
	WriteFrac float64      `json:"write_frac,omitempty"`
	Churn     []*churnMode `json:"churn,omitempty"`
	// Scaling sweeps the intra-query worker budget for one client: the
	// morsel-parallel speedup of a single statement per recycling mode.
	Scaling []*scaleRow `json:"scaling,omitempty"`
}

// scaleRow is one (mode, workers) cell of the intra-query scaling sweep.
type scaleRow struct {
	Mode          string  `json:"mode"`
	Workers       int     `json:"workers"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	P95Micros     int64   `json:"p95_us"`
	// SpeedupVs1 is q/s relative to the same mode at Workers=1.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
}

// runJSON drives the TPC-H client mix against one engine per recycling mode
// and writes the machine-readable report. Allocations are measured as the
// runtime.MemStats delta across the timed run divided by completed queries,
// so the number covers the whole serving path (parse-free: plans come from
// the mix, so this isolates rewrite+execute).
func runJSON(out string, clients int, queries int64, sf float64, seed int64, writeFrac float64, parallelism int, scaling, noFuse, noKern bool) error {
	if out == "" {
		out = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
	}
	cfg := harness.DefaultTPCH()
	cfg.SF = sf
	cfg.Seed = seed
	cat := harness.LoadTPCH(cfg)
	rep := benchReport{
		Date:           time.Now().Format("2006-01-02"),
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		Clients:        clients,
		Queries:        queries,
		SF:             sf,
		Seed:           seed,
		Parallelism:    parallelism,
		DisableFusion:  noFuse,
		DisableKernels: noKern,
	}
	for _, mode := range harness.Modes {
		eng := harness.NewEngineKernels(cat, mode, cfg.CacheBytes, parallelism, noFuse, noKern)
		mix := harness.TPCHMix(4, 1)
		exec := harness.EngineExec(eng)
		// Warm plan pools and (in recycling modes) the cache so the timed
		// run measures the steady serving state.
		workload.RunClients(workload.ClientsConfig{
			Clients: clients, MaxQueries: int64(clients) * 16, Seed: seed + 7,
		}, mix, exec)
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		res := workload.RunClients(workload.ClientsConfig{
			Clients: clients, MaxQueries: queries, Seed: seed,
		}, mix, exec)
		runtime.ReadMemStats(&after)
		row := benchMode{
			Mode:          fmt.Sprintf("%v", mode),
			Queries:       res.Queries,
			Errors:        res.Errs,
			QueriesPerSec: res.QPS(),
			P50Micros:     res.Percentile(50).Microseconds(),
			P95Micros:     res.Percentile(95).Microseconds(),
			P99Micros:     res.Percentile(99).Microseconds(),
		}
		if res.Queries > 0 {
			row.AllocsPerQuery = float64(after.Mallocs-before.Mallocs) / float64(res.Queries)
			row.BytesPerQuery = float64(after.TotalAlloc-before.TotalAlloc) / float64(res.Queries)
		}
		rep.Modes = append(rep.Modes, row)
		fmt.Printf("%-12s %8.0f q/s  p95 %6dus  %8.0f allocs/q\n",
			row.Mode, row.QueriesPerSec, row.P95Micros, row.AllocsPerQuery)
	}
	if writeFrac > 0 {
		rep.WriteFrac = writeFrac
		if err := runChurn(&rep, clients, queries, cfg, writeFrac); err != nil {
			return err
		}
	}
	if scaling {
		runScaling(&rep, queries, cat, cfg.CacheBytes)
	}
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runChurn drives the mixed read/write mix: each recycling mode gets a
// fresh catalog (writes mutate it), as does the monet baseline, so the
// hit-rate comparison is apples to apples. Writes are append-only — the
// delta-extension showcase; the pipelined recycler keeps reusing extended
// entries while the monet recycler flushes everything on every commit.
func runChurn(rep *benchReport, clients int, queries int64, cfg harness.TPCHConfig, writeFrac float64) error {
	fmt.Printf("--- churn (write-frac %.2f, append-only) ---\n", writeFrac)
	for _, mode := range harness.Modes {
		cat := harness.LoadTPCH(cfg)
		eng := harness.NewEngine(cat, mode, cfg.CacheBytes)
		res := workload.RunClients(workload.ClientsConfig{
			Clients: clients, MaxQueries: queries, Seed: cfg.Seed,
			WriteFrac: writeFrac,
			Write:     harness.SyntheticAppender(cat, "lineitem", 8),
		}, harness.TPCHMix(4, 1), harness.EngineExec(eng))
		st := eng.Recycler().Stats()
		row := &churnMode{
			Mode:          fmt.Sprintf("%v", mode),
			Queries:       res.Queries,
			Writes:        res.Writes,
			QueriesPerSec: res.QPS(),
			Invalidated:   st.Invalidated,
			DeltaExtended: st.DeltaExtended,
			DeltaRows:     st.DeltaExtendRows,
		}
		if res.Queries > 0 {
			row.HitRate = float64(st.Reuses+st.SubsumptionReuse+st.InflightShared) / float64(res.Queries)
		}
		rep.Churn = append(rep.Churn, row)
		fmt.Printf("%-12s %8.0f q/s  hit-rate %.3f  invalidated %d  delta-extended %d\n",
			row.Mode, row.QueriesPerSec, row.HitRate, row.Invalidated, row.DeltaExtended)
	}
	// Monet-style baseline: admit-all recycler, invalidate-all on write.
	// The read-only row anchors the comparison — it shows how much hit
	// rate the flush-on-write protocol costs the baseline, next to the
	// lineage walk that keeps the pipelined recycler's rate intact.
	for _, frac := range []float64{0, writeFrac} {
		cat := harness.LoadTPCH(cfg)
		mrec := monet.NewRecycler(cfg.CacheBytes)
		meng := monet.New(cat, mrec)
		res := workload.RunClients(workload.ClientsConfig{
			Clients: 1, MaxQueries: queries / 4, Seed: cfg.Seed,
			WriteFrac: frac,
			Write:     harness.SyntheticAppender(cat, "lineitem", 8),
		}, harness.TPCHMix(4, 1), harness.MonetExec(meng))
		st := mrec.Stats()
		name := "monet"
		if frac == 0 {
			name = "monet-read-only"
		}
		row := &churnMode{
			Mode:          name,
			Queries:       res.Queries,
			Writes:        res.Writes,
			QueriesPerSec: res.QPS(),
			Invalidated:   st.Evicted,
		}
		if st.Hits+st.Misses > 0 {
			row.HitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
		}
		rep.Churn = append(rep.Churn, row)
		fmt.Printf("%-16s %8.0f q/s  hit-rate %.3f (flush-on-write)\n",
			row.Mode, row.QueriesPerSec, row.HitRate)
	}
	return nil
}

// serverBenchMode is one recycling mode's row of the serving-stack report:
// the same q/s + percentile shape as benchMode, measured through the whole
// pgwire path (translate, prepare, bind, admission, execute, encode, TCP),
// plus the server counters that describe how the load was absorbed.
type serverBenchMode struct {
	Mode           string  `json:"mode"`
	Queries        int64   `json:"queries"`
	Errors         int64   `json:"errors"`
	QueriesPerSec  float64 `json:"queries_per_sec"`
	P50Micros      int64   `json:"p50_us"`
	P95Micros      int64   `json:"p95_us"`
	P99Micros      int64   `json:"p99_us"`
	AdmissionWaits int64   `json:"admission_waits"`
	ErrorsSent     int64   `json:"errors_sent"`
}

// serverBenchReport is the BENCH_<date>_server.json document.
type serverBenchReport struct {
	Date           string            `json:"date"`
	GoVersion      string            `json:"go"`
	GOMAXPROCS     int               `json:"gomaxprocs"`
	NumCPU         int               `json:"num_cpu"`
	Clients        int               `json:"clients"`
	Queries        int64             `json:"queries_per_mode"`
	SF             float64           `json:"sf"`
	SkyObjects     int               `json:"sky_objects"`
	Seed           int64             `json:"seed"`
	Transport      string            `json:"transport"`
	DisableFusion  bool              `json:"disable_fusion"`
	DisableKernels bool              `json:"disable_kernels"`
	Modes          []serverBenchMode `json:"modes"`
}

// runServerBench measures the serving tier end to end: per recycling mode it
// starts an in-process pgwire server on a loopback port, drives the mixed
// TPC-H + SkyServer SQL mix through real TCP connections (one per client,
// prepared statements reused per connection), and records throughput and
// latency percentiles. With addr set it instead benchmarks an external
// server once — whatever mode that server is running.
func runServerBench(out, addr string, clients int, queries int64, sf float64, skyObjects int, seed int64, parallelism int, noFuse, noKern bool) error {
	if out == "" {
		out = fmt.Sprintf("BENCH_%s_server.json", time.Now().Format("2006-01-02"))
	}
	rep := serverBenchReport{
		Date:           time.Now().Format("2006-01-02"),
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		Clients:        clients,
		Queries:        queries,
		SF:             sf,
		SkyObjects:     skyObjects,
		Seed:           seed,
		Transport:      "pgwire/tcp",
		DisableFusion:  noFuse,
		DisableKernels: noKern,
	}
	mix := harness.MixedSQLMix(4, seed)
	measure := func(label, target string, stats func() server.Stats) error {
		dial := func(client int) (workload.SQLConn, error) {
			return harness.DialWire(context.Background(), target, "bench")
		}
		// Warm: prepared statements, plan cache, and (in recycling modes)
		// the result cache, so the timed run sees the steady state.
		if _, err := workload.RunSQLClients(workload.SQLClientsConfig{
			Clients: clients, MaxQueries: int64(clients) * 16, Seed: seed + 7,
		}, mix, dial); err != nil {
			return err
		}
		before := stats()
		res, err := workload.RunSQLClients(workload.SQLClientsConfig{
			Clients: clients, MaxQueries: queries, Seed: seed,
		}, mix, dial)
		if err != nil {
			return err
		}
		after := stats()
		row := serverBenchMode{
			Mode:           label,
			Queries:        res.Queries,
			Errors:         res.Errs,
			QueriesPerSec:  res.QPS(),
			P50Micros:      res.Percentile(50).Microseconds(),
			P95Micros:      res.Percentile(95).Microseconds(),
			P99Micros:      res.Percentile(99).Microseconds(),
			AdmissionWaits: after.AdmissionWaits - before.AdmissionWaits,
			ErrorsSent:     after.ErrorsSent - before.ErrorsSent,
		}
		rep.Modes = append(rep.Modes, row)
		fmt.Printf("%-12s %8.0f q/s  p50 %6dus  p95 %6dus  p99 %6dus  (%d admission waits)\n",
			row.Mode, row.QueriesPerSec, row.P50Micros, row.P95Micros, row.P99Micros, row.AdmissionWaits)
		return nil
	}

	if addr != "" {
		if err := measure("external", addr, func() server.Stats { return server.Stats{} }); err != nil {
			return err
		}
	} else {
		cat := harness.MixedCatalog(sf, skyObjects, seed)
		for _, mode := range harness.Modes {
			eng := harness.NewEngineKernels(cat, mode, 0, parallelism, noFuse, noKern)
			srv := server.New(eng, server.Config{})
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func() { defer close(done); _ = srv.Serve(ctx, lis) }()
			err = measure(fmt.Sprintf("%v", mode), lis.Addr().String(), srv.Stats)
			cancel()
			<-done
			if err != nil {
				return err
			}
		}
	}
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func parseStreams(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad stream count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "recycledb-bench:", err)
	os.Exit(1)
}

// fusionRow is one (workers, fused) cell of the loop-fusion comparison.
type fusionRow struct {
	Workers       int     `json:"workers"`
	Fused         bool    `json:"fused"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	P50Micros     int64   `json:"p50_us"`
	P95Micros     int64   `json:"p95_us"`
	// SpeedupVsUnfused is q/s relative to the unfused run at the same
	// worker count (set on fused rows).
	SpeedupVsUnfused float64 `json:"speedup_vs_unfused,omitempty"`
}

// fusionReport is the BENCH_<date>_fusion.json document.
type fusionReport struct {
	Date       string       `json:"date"`
	GoVersion  string       `json:"go"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Clients    int          `json:"clients"`
	Queries    int64        `json:"queries_per_cell"`
	SF         float64      `json:"sf"`
	Seed       int64        `json:"seed"`
	Mode       string       `json:"mode"`
	Rows       []*fusionRow `json:"fusion"`
}

// runFusionBench measures push-based loop fusion against the chained
// operator pipelines it replaced: recycling OFF (every query is a cache
// miss, so per-query latency is pure execution), one client (the statement
// owns the worker budget), at parallelism 1 (serial FusedPipeline/FusedAgg
// roots) and 8 (fused morsel workers under Exchange/ParallelAgg).
func runFusionBench(out string, queries int64, sf float64, seed int64) error {
	if out == "" {
		out = fmt.Sprintf("BENCH_%s_fusion.json", time.Now().Format("2006-01-02"))
	}
	cfg := harness.DefaultTPCH()
	cfg.SF = sf
	cfg.Seed = seed
	cat := harness.LoadTPCH(cfg)
	rep := fusionReport{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Clients:    1,
		Queries:    queries,
		SF:         sf,
		Seed:       seed,
		Mode:       "off",
	}
	fmt.Printf("--- loop fusion (mode off, 1 client) ---\n")
	for _, workers := range []int{1, 8} {
		base := 0.0
		for _, fused := range []bool{false, true} {
			eng := harness.NewEngineFusion(cat, recycledb.Off, cfg.CacheBytes, workers, !fused)
			mix := harness.TPCHMix(4, 1)
			exec := harness.EngineExec(eng)
			workload.RunClients(workload.ClientsConfig{
				Clients: 1, MaxQueries: 32, Seed: seed + 7,
			}, mix, exec) // warm plan pools and batch pools
			res := workload.RunClients(workload.ClientsConfig{
				Clients: 1, MaxQueries: queries, Seed: seed,
			}, mix, exec)
			row := &fusionRow{
				Workers:       workers,
				Fused:         fused,
				QueriesPerSec: res.QPS(),
				P50Micros:     res.Percentile(50).Microseconds(),
				P95Micros:     res.Percentile(95).Microseconds(),
			}
			if !fused {
				base = row.QueriesPerSec
			} else if base > 0 {
				row.SpeedupVsUnfused = row.QueriesPerSec / base
			}
			rep.Rows = append(rep.Rows, row)
			label := "unfused"
			if fused {
				label = "fused"
			}
			fmt.Printf("%2d workers %-8s %8.0f q/s  p50 %6dus  p95 %6dus  speedup %.2fx\n",
				workers, label, row.QueriesPerSec, row.P50Micros, row.P95Micros, row.SpeedupVsUnfused)
		}
	}
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// optRow is one (mode, optimized) cell of the optimizer comparison.
type optRow struct {
	Mode          string  `json:"mode"`
	Optimized     bool    `json:"optimized"`
	Queries       int64   `json:"queries"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	P50Micros     int64   `json:"p50_us"`
	P95Micros     int64   `json:"p95_us"`
	// HitRate is recycler reuses (exact + subsumption + in-flight shares)
	// per executed query in the measured window.
	HitRate float64 `json:"hit_rate"`
	// SpeedupVsUnopt is q/s relative to the unoptimized run of the same
	// mode (set on optimized rows), HitRateDelta the hit-rate gain.
	SpeedupVsUnopt float64 `json:"speedup_vs_unopt,omitempty"`
	HitRateDelta   float64 `json:"hit_rate_delta,omitempty"`
}

// optReport is the BENCH_<date>_optimizer.json document.
type optReport struct {
	Date       string    `json:"date"`
	GoVersion  string    `json:"go"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	NumCPU     int       `json:"num_cpu"`
	Clients    int       `json:"clients"`
	Queries    int64     `json:"queries_per_cell"`
	SF         float64   `json:"sf"`
	SkyObjects int       `json:"sky_objects"`
	Seed       int64     `json:"seed"`
	WriteFrac  float64   `json:"write_frac"`
	Mixed      []*optRow `json:"mixed"`
	Churn      []*optRow `json:"churn,omitempty"`
}

// runOptimizerBench measures the recycler-aware optimizer against verbatim
// written plans, per recycling mode, under the TPC-H + SkyServer serving
// mix extended with permuted near-variants (harness.OptimizerMix): the same
// filters written in rotated conjunct orders, as distinct dashboard authors
// would. Unoptimized engines see each rotation as a distinct recycler
// shape; the optimizer's canonical chains collapse them, so both the hit
// rate (reuses per query) and throughput should rise. A second section
// repeats the comparison under append churn (writeFrac of operations are
// epoch-committing appends to lineitem).
func runOptimizerBench(out string, clients int, queries int64, sf float64, skyObjects int, seed int64, writeFrac float64) error {
	if out == "" {
		out = fmt.Sprintf("BENCH_%s_optimizer.json", time.Now().Format("2006-01-02"))
	}
	cfg := harness.DefaultTPCH()
	cfg.SF = sf
	cfg.Seed = seed
	rep := optReport{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Clients:    clients,
		Queries:    queries,
		SF:         sf,
		SkyObjects: skyObjects,
		Seed:       seed,
		WriteFrac:  writeFrac,
	}

	cell := func(cat *catalog.Catalog, mode recycledb.Mode, optimized bool, frac float64) *optRow {
		eng := harness.NewEngineOpt(cat, mode, cfg.CacheBytes, 0, !optimized)
		mix := harness.OptimizerMix(4, 1)
		exec := harness.EngineExec(eng)
		var wr workload.WriteFunc
		if frac > 0 {
			wr = harness.SyntheticAppender(cat, "lineitem", 8)
		}
		workload.RunClients(workload.ClientsConfig{
			Clients: clients, MaxQueries: int64(clients) * 16, Seed: seed + 7,
		}, mix, exec) // warm plan pools and the cache
		before := eng.Recycler().Stats()
		res := workload.RunClients(workload.ClientsConfig{
			Clients: clients, MaxQueries: queries, Seed: seed,
			WriteFrac: frac, Write: wr,
		}, mix, exec)
		st := eng.Recycler().Stats()
		row := &optRow{
			Mode:          fmt.Sprintf("%v", mode),
			Optimized:     optimized,
			Queries:       res.Queries,
			QueriesPerSec: res.QPS(),
			P50Micros:     res.Percentile(50).Microseconds(),
			P95Micros:     res.Percentile(95).Microseconds(),
		}
		if res.Queries > 0 {
			hits := (st.Reuses - before.Reuses) +
				(st.SubsumptionReuse - before.SubsumptionReuse) +
				(st.InflightShared - before.InflightShared)
			row.HitRate = float64(hits) / float64(res.Queries)
		}
		return row
	}

	section := func(label string, frac float64, dst *[]*optRow) {
		fmt.Printf("--- optimizer comparison: %s ---\n", label)
		for _, mode := range harness.Modes {
			var base *optRow
			for _, optimized := range []bool{false, true} {
				// Writes mutate the catalog; every cell gets a fresh one so
				// the comparison is apples to apples.
				cat := harness.MixedCatalog(sf, skyObjects, seed)
				row := cell(cat, mode, optimized, frac)
				if !optimized {
					base = row
				} else if base != nil {
					if base.QueriesPerSec > 0 {
						row.SpeedupVsUnopt = row.QueriesPerSec / base.QueriesPerSec
					}
					row.HitRateDelta = row.HitRate - base.HitRate
				}
				*dst = append(*dst, row)
				label := "unoptimized"
				if optimized {
					label = "optimized"
				}
				fmt.Printf("%-12s %-12s %8.0f q/s  p95 %6dus  hit-rate %.3f  speedup %.2fx  hit-delta %+.3f\n",
					row.Mode, label, row.QueriesPerSec, row.P95Micros, row.HitRate,
					row.SpeedupVsUnopt, row.HitRateDelta)
			}
		}
	}

	section("read-only mixed workload", 0, &rep.Mixed)
	if writeFrac > 0 {
		section(fmt.Sprintf("append churn (write-frac %.2f)", writeFrac), writeFrac, &rep.Churn)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runScaling sweeps the intra-query worker budget with a single client per
// run, so each statement owns the whole budget: this is the morsel-driven
// speedup of one query, per recycling mode, on this machine. Speedups are
// relative to the same mode at one worker; on a box with W cores the
// scan-heavy TPC-H mix should approach min(W, workers) until merge and
// serial consumers dominate.
func runScaling(rep *benchReport, queries int64, cat *catalog.Catalog, cacheBytes int64) {
	fmt.Printf("--- intra-query scaling (1 client) ---\n")
	budget := queries / 4
	if budget < 100 {
		budget = 100
	}
	for _, mode := range harness.Modes {
		base := 0.0
		for _, workers := range []int{1, 2, 4, 8, 16} {
			eng := harness.NewEngineParallel(cat, mode, cacheBytes, workers)
			mix := harness.TPCHMix(4, 1)
			exec := harness.EngineExec(eng)
			workload.RunClients(workload.ClientsConfig{
				Clients: 1, MaxQueries: 32, Seed: 11,
			}, mix, exec) // warm
			res := workload.RunClients(workload.ClientsConfig{
				Clients: 1, MaxQueries: budget, Seed: 2,
			}, mix, exec)
			row := &scaleRow{
				Mode:          fmt.Sprintf("%v", mode),
				Workers:       workers,
				QueriesPerSec: res.QPS(),
				P95Micros:     res.Percentile(95).Microseconds(),
			}
			if workers == 1 {
				base = row.QueriesPerSec
			}
			if base > 0 {
				row.SpeedupVs1 = row.QueriesPerSec / base
			}
			rep.Scaling = append(rep.Scaling, row)
			fmt.Printf("%-12s %2d workers %8.0f q/s  p95 %6dus  speedup %.2fx\n",
				row.Mode, row.Workers, row.QueriesPerSec, row.P95Micros, row.SpeedupVs1)
		}
	}
}
