package main

// The -kernels comparison: the type-specialized compute kernels (compiled
// predicate kernels, typed aggregate emission, the int64 hash fast path)
// against the generic interpreted paths they specialize. Two sections:
//
//   - pipeline: the loop-fusion benchmark's workload (recycling OFF, one
//     client, pure cache-miss execution) crossed with kernels on/off, at
//     parallelism 1 and 8, fused and unfused — directly comparable to
//     BENCH_<date>_fusion.json cells;
//   - micro: per-kernel operator throughput (predicate filtering by type,
//     single-int64-key hash join, aggregate emission), kernels on vs off,
//     isolating each specialized loop from plan and workload noise.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"recycledb"

	"recycledb/internal/catalog"
	"recycledb/internal/exec"
	"recycledb/internal/expr"
	"recycledb/internal/harness"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
	"recycledb/internal/workload"
)

// kernelPipeRow is one (workers, fused, kernels) cell of the end-to-end
// comparison.
type kernelPipeRow struct {
	Workers       int     `json:"workers"`
	Fused         bool    `json:"fused"`
	Kernels       bool    `json:"kernels"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	P50Micros     int64   `json:"p50_us"`
	P95Micros     int64   `json:"p95_us"`
	// SpeedupVsGeneric is q/s relative to the kernels-off run of the same
	// (workers, fused) cell (set on kernels-on rows).
	SpeedupVsGeneric float64 `json:"speedup_vs_generic,omitempty"`
}

// kernelMicroRow is one (kernel, on/off) cell of the per-kernel section.
type kernelMicroRow struct {
	Name       string  `json:"name"`
	Kernels    bool    `json:"kernels"`
	RowsPerSec float64 `json:"rows_per_sec"`
	// SpeedupVsGeneric is rows/sec relative to the kernels-off run of the
	// same micro (set on kernels-on rows).
	SpeedupVsGeneric float64 `json:"speedup_vs_generic,omitempty"`
}

// kernelsReport is the BENCH_<date>_kernels.json document.
type kernelsReport struct {
	Date       string            `json:"date"`
	GoVersion  string            `json:"go"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	NumCPU     int               `json:"num_cpu"`
	Clients    int               `json:"clients"`
	Queries    int64             `json:"queries_per_cell"`
	SF         float64           `json:"sf"`
	Seed       int64             `json:"seed"`
	Mode       string            `json:"mode"`
	Pipeline   []*kernelPipeRow  `json:"pipeline"`
	Micro      []*kernelMicroRow `json:"micro"`
}

// runKernelsBench measures the kernel layer end to end and in isolation.
func runKernelsBench(out string, queries int64, sf float64, seed int64) error {
	if out == "" {
		out = fmt.Sprintf("BENCH_%s_kernels.json", time.Now().Format("2006-01-02"))
	}
	cfg := harness.DefaultTPCH()
	cfg.SF = sf
	cfg.Seed = seed
	cat := harness.LoadTPCH(cfg)
	rep := kernelsReport{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Clients:    1,
		Queries:    queries,
		SF:         sf,
		Seed:       seed,
		Mode:       "off",
	}

	fmt.Printf("--- kernels pipeline (mode off, 1 client) ---\n")
	for _, workers := range []int{1, 8} {
		for _, fused := range []bool{false, true} {
			base := 0.0
			for _, kernels := range []bool{false, true} {
				eng := harness.NewEngineKernels(cat, recycledb.Off, cfg.CacheBytes, workers, !fused, !kernels)
				mix := harness.TPCHMix(4, 1)
				ex := harness.EngineExec(eng)
				workload.RunClients(workload.ClientsConfig{
					Clients: 1, MaxQueries: 32, Seed: seed + 7,
				}, mix, ex) // warm plan pools and batch pools
				res := workload.RunClients(workload.ClientsConfig{
					Clients: 1, MaxQueries: queries, Seed: seed,
				}, mix, ex)
				row := &kernelPipeRow{
					Workers:       workers,
					Fused:         fused,
					Kernels:       kernels,
					QueriesPerSec: res.QPS(),
					P50Micros:     res.Percentile(50).Microseconds(),
					P95Micros:     res.Percentile(95).Microseconds(),
				}
				if !kernels {
					base = row.QueriesPerSec
				} else if base > 0 {
					row.SpeedupVsGeneric = row.QueriesPerSec / base
				}
				rep.Pipeline = append(rep.Pipeline, row)
				onOff := map[bool]string{true: "on", false: "off"}
				fmt.Printf("%2d workers fused=%-5v kernels=%-3s %8.0f q/s  p50 %6dus  p95 %6dus  speedup %.2fx\n",
					workers, fused, onOff[kernels], row.QueriesPerSec, row.P50Micros, row.P95Micros, row.SpeedupVsGeneric)
			}
		}
	}

	fmt.Printf("--- kernel micro (rows/sec through one operator) ---\n")
	rep.Micro = runKernelMicros()
	for _, m := range rep.Micro {
		fmt.Printf("%-18s kernels=%-5v %12.0f rows/sec  speedup %.2fx\n",
			m.Name, m.Kernels, m.RowsPerSec, m.SpeedupVsGeneric)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// microRows is the input size of each micro operator run.
const microRows = 1 << 18

// microTable builds the synthetic micro input: id int64 (unique), k int64
// (64 distinct), v float64, s string (8 distinct).
func microTable() *catalog.Table {
	t := catalog.NewTable("micro", catalog.Schema{
		{Name: "id", Typ: vector.Int64},
		{Name: "k", Typ: vector.Int64},
		{Name: "v", Typ: vector.Float64},
		{Name: "s", Typ: vector.String},
	})
	w := t.BeginWrite()
	app := w.Appender()
	for i := 0; i < microRows; i++ {
		app.Int64(0, int64(i))
		app.Int64(1, int64(i*2654435761)%64)
		app.Float64(2, float64((i*48271)%1000))
		app.String(3, fmt.Sprintf("tag-%d", i%8))
		app.FinishRow()
	}
	w.Commit()
	return t
}

// microScan builds a fresh all-column scan of t.
func microScan(t *catalog.Table) (*exec.TableScan, catalog.Schema) {
	cols := make([]int, len(t.Schema))
	for i := range cols {
		cols[i] = i
	}
	return exec.NewTableScan(t, cols, t.Schema), t.Schema
}

// microRate drains the operator mk builds repeatedly under the given kernel
// setting and returns the best input-rows/sec over the timed runs.
func microRate(disable bool, mk func() exec.Operator) float64 {
	ctx := exec.NewCtx(catalog.New())
	ctx.DisableKernels = disable
	drain := func() time.Duration {
		op := mk()
		start := time.Now()
		if _, err := exec.Drain(ctx, op); err != nil {
			fatal(err)
		}
		return time.Since(start)
	}
	drain() // warm the shared pool and operator scratch paths
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 5; i++ {
		if d := drain(); d < best {
			best = d
		}
	}
	return float64(microRows) / best.Seconds()
}

// runKernelMicros measures each specialized loop in isolation.
func runKernelMicros() []*kernelMicroRow {
	tab := microTable()
	micros := []struct {
		name string
		mk   func() exec.Operator
	}{
		{"filter-i64-range", func() exec.Operator {
			scan, schema := microScan(tab)
			pred := expr.Between(expr.C("id"), expr.Int(microRows/4), expr.Int(microRows/2))
			if _, err := pred.Bind(schema); err != nil {
				fatal(err)
			}
			return exec.NewFilter(scan, pred)
		}},
		{"filter-f64-cmp", func() exec.Operator {
			scan, schema := microScan(tab)
			pred := expr.Lt(expr.C("v"), expr.Flt(500))
			if _, err := pred.Bind(schema); err != nil {
				fatal(err)
			}
			return exec.NewFilter(scan, pred)
		}},
		{"filter-str-eq", func() exec.Operator {
			scan, schema := microScan(tab)
			pred := expr.Eq(expr.C("s"), expr.Str("tag-3"))
			if _, err := pred.Bind(schema); err != nil {
				fatal(err)
			}
			return exec.NewFilter(scan, pred)
		}},
		{"hash-join-i64", func() exec.Operator {
			left, ls := microScan(tab)
			right, rs := microScan(tab)
			out := append(append(catalog.Schema{}, ls...), rs...)
			return exec.NewHashJoin(plan.Inner, left, right, []int{0}, []int{0}, out)
		}},
		{"agg-emit", func() exec.Operator {
			scan, schema := microScan(tab)
			arg := expr.C("v")
			if _, err := arg.Bind(schema); err != nil {
				fatal(err)
			}
			// One group per row: runtime is emission-dominated.
			return exec.NewHashAgg(scan, []int{0}, []exec.AggExpr{
				{Func: plan.Count, Typ: vector.Int64},
				{Func: plan.Sum, Arg: arg, Typ: vector.Float64},
			}, catalog.Schema{
				{Name: "id", Typ: vector.Int64},
				{Name: "n", Typ: vector.Int64},
				{Name: "sv", Typ: vector.Float64},
			})
		}},
	}
	var out []*kernelMicroRow
	for _, m := range micros {
		off := &kernelMicroRow{Name: m.name, Kernels: false, RowsPerSec: microRate(true, m.mk)}
		on := &kernelMicroRow{Name: m.name, Kernels: true, RowsPerSec: microRate(false, m.mk)}
		if off.RowsPerSec > 0 {
			on.SpeedupVsGeneric = on.RowsPerSec / off.RowsPerSec
		}
		out = append(out, off, on)
	}
	return out
}
