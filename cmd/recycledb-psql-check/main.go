// Command recycledb-psql-check is a psql-equivalent smoke probe for CI: it
// connects to a running recycledb-server with the same wire conversation a
// psql one-liner would have (startup, trust auth, simple-protocol query),
// then repeats the query through the extended protocol (Parse/Bind/Execute)
// and fails unless both protocols return the same, plausible answer. Exit
// status 0 means a libpq client would work against this server.
//
//	recycledb-psql-check [-addr 127.0.0.1:5433] [-q "SELECT ..."]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"reflect"
	"time"

	"recycledb/internal/pgclient"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:5433", "server address")
		q    = flag.String("q", "SELECT r_name, count(*) AS n FROM region GROUP BY r_name ORDER BY r_name", "probe query")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	conn, err := pgclient.Dial(ctx, *addr, "psql-check")
	if err != nil {
		fail("dial: %v", err)
	}
	defer conn.Close()

	simple, err := conn.Query(*q)
	if err != nil {
		fail("simple protocol: %v", err)
	}
	if len(simple) != 1 || len(simple[0].Rows) == 0 {
		fail("simple protocol: no rows for %q", *q)
	}

	if err := conn.Prepare("probe", *q); err != nil {
		fail("extended Parse: %v", err)
	}
	ext, err := conn.Exec("probe")
	if err != nil {
		fail("extended Execute: %v", err)
	}
	if !reflect.DeepEqual(simple[0].Rows, ext.Rows) {
		fail("protocol mismatch:\nsimple:   %v\nextended: %v", simple[0].Rows, ext.Rows)
	}
	fmt.Printf("ok: %d rows, identical over simple and extended protocol\n", len(ext.Rows))
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "recycledb-psql-check: "+format+"\n", args...)
	os.Exit(1)
}
