package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"recycledb/internal/analysis"
)

// vetConfig mirrors the JSON configuration `go vet` writes for a vettool
// (the x/tools unitchecker protocol): one invocation per package, with
// pre-built export data for every import.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheckerMain handles one `go vet -vettool` package invocation.
func unitcheckerMain(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "recycledb-vet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "recycledb-vet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The go command requires the facts file to exist even though these
	// analyzers export none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "recycledb-vet:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	var needed []*analysis.Analyzer
	for _, a := range analyzers {
		if inScope(a, cfg.ImportPath) {
			needed = append(needed, a)
		}
	}
	// External _test packages and the generated test main are exempt, and
	// _test.go files are dropped from the in-package file set below: the
	// invariants bind library code; tests legitimately mint contexts and
	// read live snapshots.
	if len(needed) == 0 || strings.Contains(cfg.ID, " [") ||
		strings.HasSuffix(cfg.ImportPath, ".test") ||
		strings.HasSuffix(cfg.ImportPath, "_test") {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "recycledb-vet:", err)
			return 2
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := analysis.NewInfo()
	tconf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	var typeErr error
	tconf.Error = func(err error) {
		if typeErr == nil {
			typeErr = err
		}
	}
	tpkg, _ := tconf.Check(cfg.ImportPath, fset, files, info)
	if typeErr != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "recycledb-vet: %s: %v\n", cfg.ImportPath, typeErr)
		return 2
	}

	pkg := &analysis.Package{
		Path: cfg.ImportPath, Dir: cfg.Dir, Fset: fset,
		Files: files, Types: tpkg, Info: info,
	}
	findings := 0
	for _, a := range needed {
		diags, err := analysis.RunAnalyzer(a, pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "recycledb-vet:", err)
			return 2
		}
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			name := pos.Filename
			if rel, err := filepath.Rel(cfg.Dir, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", name, pos.Line, pos.Column, a.Name, d.Message)
			findings++
		}
	}
	if findings > 0 {
		return 2
	}
	return 0
}
