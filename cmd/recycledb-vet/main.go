// Command recycledb-vet machine-checks the engine's cross-cutting
// invariants — the conventions no compiler enforces and -race only
// catches probabilistically:
//
//	poolcheck     vector.Pool ownership: Open-acquired scratch released in
//	              Close; recycler-destined buffers hold deep clones
//	detcheck      no map-iteration order leaking into results, cache state
//	              or recycler statistics (serial-identical merges)
//	snapcheck     exec reads base tables only through the statement
//	              snapshot (Ctx.SnapFor), never catalog.Table directly
//	guardedcheck  `// guarded by mu` field annotations hold; sync/atomic
//	              fields are never copied as values
//	ctxcheck      no context.Background/TODO in library packages; operator
//	              Next observes cancellation at batch boundaries
//
// Usage:
//
//	recycledb-vet [-checks a,b] [packages]     # standalone, from repo root
//	go vet -vettool=$(which recycledb-vet) ./...   # as a vet tool
//
// The README's "Invariants & static analysis" section documents each
// invariant and the justification-annotation syntax.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"recycledb/internal/analysis"
	"recycledb/internal/analysis/ctxcheck"
	"recycledb/internal/analysis/detcheck"
	"recycledb/internal/analysis/guardedcheck"
	"recycledb/internal/analysis/poolcheck"
	"recycledb/internal/analysis/snapcheck"
)

var analyzers = []*analysis.Analyzer{
	poolcheck.Analyzer,
	detcheck.Analyzer,
	snapcheck.Analyzer,
	guardedcheck.Analyzer,
	ctxcheck.Analyzer,
}

const module = "recycledb"

// libraryPackages are the packages on the Engine's query path: the
// cancellation contract (ctxcheck) binds them. Harness, workload drivers,
// generators, examples and cmds mint their own root contexts legitimately.
// internal/server is included deliberately: connection handlers must derive
// every statement context from the session's context (so CancelRequest,
// statement_timeout and drain reach them), never mint context.Background.
var libraryPackages = map[string]bool{
	module:                       true,
	module + "/internal/catalog": true,
	module + "/internal/core":    true,
	module + "/internal/exec":    true,
	module + "/internal/expr":    true,
	module + "/internal/opt":     true,
	module + "/internal/plan":    true,
	module + "/internal/rewrite": true,
	module + "/internal/server":  true,
	module + "/internal/sql":     true,
	module + "/internal/vector":  true,
}

// resultPackages produce query results, plan shapes, cache state or
// recycler statistics: map-iteration order must not leak there (detcheck).
// internal/opt is included because optimizer enumeration must be
// deterministic — two plannings of one query against the same recycler
// state have to yield byte-identical plans. internal/vector is included
// because the gather/refine kernels build the batches results are made of:
// emission must follow explicit order slices (first-occurrence group
// order), never a map walk.
var resultPackages = map[string]bool{
	module + "/internal/exec":    true,
	module + "/internal/core":    true,
	module + "/internal/opt":     true,
	module + "/internal/plan":    true,
	module + "/internal/rewrite": true,
	module + "/internal/vector":  true,
}

// inScope decides which analyzers run on which import paths.
func inScope(a *analysis.Analyzer, importPath string) bool {
	if !strings.HasPrefix(importPath, module) {
		return false
	}
	switch a.Name {
	case "detcheck":
		return resultPackages[importPath]
	case "snapcheck":
		return importPath == module+"/internal/exec"
	case "ctxcheck":
		return libraryPackages[importPath]
	default: // poolcheck, guardedcheck: annotation/usage driven, module-wide
		return true
	}
}

func main() {
	// `go vet -vettool` probes the tool's identity with -V=full before
	// handing it package config files.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			// The go command derives the vettool's cache key from this
			// line; the content hash invalidates cached vet results
			// whenever the analyzers change.
			fmt.Printf("recycledb-vet version devel comments-go-here buildID=%s\n", selfID())
			return
		case "-flags", "--flags":
			// go vet asks for the tool's flag inventory as JSON; these
			// analyzers take no per-run flags.
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(unitcheckerMain(os.Args[1]))
	}

	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: recycledb-vet [-checks a,b] [packages]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-13s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}
	selected, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "recycledb-vet:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(standaloneMain(selected, patterns))
}

func selectAnalyzers(checks string) ([]*analysis.Analyzer, error) {
	if checks == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(checks, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// standaloneMain loads the matched packages from source and runs the
// selected analyzers, printing findings as file:line:col lines.
func standaloneMain(selected []*analysis.Analyzer, patterns []string) int {
	pkgs, err := listPackages(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "recycledb-vet:", err)
		return 2
	}
	loader := analysis.NewLoader()
	cwd, _ := os.Getwd()
	findings := 0
	for _, lp := range pkgs {
		needed := selected[:0:0]
		for _, a := range selected {
			if inScope(a, lp.ImportPath) {
				needed = append(needed, a)
			}
		}
		if len(needed) == 0 {
			continue
		}
		pkg, err := loader.LoadDir(lp.Dir, lp.ImportPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "recycledb-vet:", err)
			return 2
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "recycledb-vet: %s: type error: %v\n", lp.ImportPath, terr)
			return 2
		}
		for _, a := range needed {
			diags, err := analysis.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "recycledb-vet:", err)
				return 2
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				name := pos.Filename
				if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
					name = rel
				}
				fmt.Printf("%s:%d:%d: %s: %s\n", name, pos.Line, pos.Column, a.Name, d.Message)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "recycledb-vet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// selfID returns a content hash of the running executable, used as the
// tool's build ID for go vet's action cache.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x/%x/%x/%x", sum[:8], sum[8:16], sum[16:24], sum[24:])
}
