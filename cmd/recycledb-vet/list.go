package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
)

// listedPackage is the slice of `go list -json` output the standalone
// driver needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
}

// listPackages resolves package patterns with the go tool so ./... and
// friends behave exactly as they do for go build.
func listPackages(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v: %s", patterns, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
