// Command recycledb-shell is an interactive SQL shell over the recycling
// engine, loaded with a generated TPC-H database. It demonstrates recycling
// live: repeat a query (or a near-variant) and watch the recycler statistics
// line under each result. Results stream: rows print as the pipeline
// produces them, and Ctrl-C cancels the running statement (not the shell).
// DML works too — INSERT INTO ... VALUES, DELETE FROM ... [WHERE], CREATE
// TABLE — and prints affected-row counts; watch Invalidated/DeltaExtended
// move in \rstats as writes hit cached results.
//
// Shell commands: \mode off|hist|spec|pa, \stats (toggle per-query stats),
// \rstats (recycler totals), \opt on|off (toggle the plan optimizer),
// \flush, \tables, \q. EXPLAIN <query> prints the optimizer's chosen plan
// tree with per-node cost estimates and [cached] markers on subtrees the
// recycler can serve warm.
//
// With -clients N the shell runs non-interactively: N concurrent client
// goroutines issue a mixed TPC-H workload against the engine for -duration,
// then a throughput/latency report and the recycler totals print. This is
// the quickest way to see concurrent recycling (stalls, in-flight sharing,
// reuse) live; add -write-frac to interleave epoch-committing appends and
// watch recycling under churn.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"recycledb"
	"recycledb/internal/envflag"
	"recycledb/internal/harness"
	"recycledb/internal/tpch"
	"recycledb/internal/vector"
	"recycledb/internal/workload"
)

func main() {
	var (
		sf        = flag.Float64("sf", 0.01, "TPC-H scale factor to load")
		mode      = flag.String("mode", "spec", "recycling mode: off, hist, spec, pa")
		clients   = flag.Int("clients", 0, "run a non-interactive multi-client benchmark with this many concurrent clients")
		duration  = flag.Duration("duration", 5*time.Second, "duration of the -clients benchmark")
		writeFrac = flag.Float64("write-frac", 0, "fraction of -clients operations that are writes (appends to lineitem)")
		par       = flag.Int("parallelism", 0, "intra-query worker budget (0 = GOMAXPROCS, 1 = serial)")
		noOpt     = flag.Bool("disable-optimizer", envflag.Bool(envflag.DisableOptimizer),
			"disable the recycler-aware plan optimizer (also via RECYCLEDB_DISABLE_OPTIMIZER=1)")
		noFuse = flag.Bool("disable-fusion", envflag.Bool(envflag.DisableFusion),
			"disable push-based loop fusion of pipeline interiors (also via RECYCLEDB_DISABLE_FUSION=1)")
		noKern = flag.Bool("disable-kernels", envflag.Bool(envflag.DisableKernels),
			"disable type-specialized compute kernels (also via RECYCLEDB_DISABLE_KERNELS=1)")
	)
	flag.Parse()

	eng := recycledb.New(recycledb.Config{Mode: parseMode(*mode), Parallelism: *par,
		DisableOptimizer: *noOpt, DisableFusion: *noFuse, DisableKernels: *noKern})
	fmt.Printf("loading TPC-H sf=%g ...\n", *sf)
	tpch.Generate(eng.Catalog(), *sf, 1)
	if *clients > 0 {
		runClients(eng, *clients, *duration, *writeFrac)
		return
	}
	fmt.Printf("tables: %s\n", strings.Join(eng.Catalog().TableNames(), ", "))
	fmt.Println(`type SQL (EXPLAIN <query> shows the plan), or \mode, \opt, \stats, \rstats, \flush, \tables, \q (Ctrl-C cancels the running statement)`)

	showStats := false
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("recycledb> ")
		if !in.Scan() {
			return
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == `\q`:
			return
		case line == `\stats`:
			showStats = !showStats
			fmt.Printf("per-query stats: %v\n", map[bool]string{true: "on", false: "off"}[showStats])
			continue
		case line == `\rstats`:
			fmt.Printf("%+v\n", eng.Recycler().Stats())
			continue
		case line == `\flush`:
			eng.FlushCache()
			fmt.Println("cache flushed")
			continue
		case line == `\tables`:
			fmt.Println(strings.Join(eng.Catalog().TableNames(), ", "))
			continue
		case strings.HasPrefix(line, `\mode`):
			parts := strings.Fields(line)
			if len(parts) == 2 {
				eng.SetMode(parseMode(parts[1]))
				fmt.Println("mode:", eng.Mode())
			} else {
				fmt.Println("usage: \\mode off|hist|spec|pa")
			}
			continue
		case strings.HasPrefix(line, `\opt`):
			parts := strings.Fields(line)
			if len(parts) == 2 && (parts[1] == "on" || parts[1] == "off") {
				eng.SetOptimizerEnabled(parts[1] == "on")
			} else if len(parts) != 1 {
				fmt.Println("usage: \\opt [on|off]")
				continue
			}
			fmt.Printf("optimizer: %v\n", map[bool]string{true: "on", false: "off"}[eng.OptimizerEnabled()])
			continue
		}
		if rest, ok := explainArg(line); ok {
			out, err := eng.Explain(rest)
			if err != nil {
				printErr(err)
			} else {
				fmt.Print(out)
			}
			continue
		}
		runStatement(eng, line, showStats)
	}
}

// runClients drives the multi-client workload driver against the engine and
// prints the throughput report (the -clients flag). With -write-frac > 0 a
// fraction of operations are epoch-committing appends to lineitem, so the
// report shows recycling under churn (watch Invalidated vs DeltaExtended in
// the recycler totals).
func runClients(eng *recycledb.Engine, clients int, duration time.Duration, writeFrac float64) {
	fmt.Printf("running %d clients for %v in mode %v (write-frac %.2f) ...\n",
		clients, duration, eng.Mode(), writeFrac)
	res := workload.RunClients(workload.ClientsConfig{
		Clients:   clients,
		Duration:  duration,
		Seed:      1,
		WriteFrac: writeFrac,
		Write:     harness.SyntheticAppender(eng.Catalog(), "lineitem", 8),
	}, harness.TPCHMix(4, 1), harness.EngineExec(eng))
	fmt.Print(harness.ClientsReport(res))
	fmt.Printf("recycler: %+v\n", eng.Recycler().Stats())
}

// explainArg strips a leading EXPLAIN keyword, returning the query to
// explain and whether the line was an EXPLAIN at all.
func explainArg(line string) (string, bool) {
	f := strings.Fields(line)
	if len(f) < 2 || !strings.EqualFold(f[0], "explain") {
		return "", false
	}
	return strings.TrimSpace(line[len(f[0]):]), true
}

// isDML sniffs the statement verb: INSERT / DELETE / CREATE run through
// Engine.Exec rather than the streaming query path.
func isDML(line string) bool {
	f := strings.Fields(line)
	if len(f) == 0 {
		return false
	}
	switch strings.ToLower(f[0]) {
	case "insert", "delete", "create":
		return true
	}
	return false
}

// runStatement streams one query (or executes one DML statement); SIGINT
// cancels the statement and returns control to the prompt instead of
// killing the shell.
func runStatement(eng *recycledb.Engine, line string, showStats bool) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if isDML(line) {
		start := time.Now()
		res, err := eng.Exec(ctx, line)
		if err != nil {
			printErr(err)
			return
		}
		fmt.Printf("-- %d rows affected in %v\n", res.RowsAffected, time.Since(start).Round(10e3))
		if showStats {
			fmt.Printf("-- recycler: %+v\n", eng.Recycler().Stats())
		}
		return
	}

	rows, err := eng.Query(ctx, line)
	if err != nil {
		printErr(err)
		return
	}
	const max = 20
	names := make([]string, len(rows.Schema()))
	for i, c := range rows.Schema() {
		names[i] = c.Name
	}
	fmt.Println(strings.Join(names, " | "))
	printed, total := 0, 0
	for b, err := range rows.All(ctx) {
		if err != nil {
			printErr(err)
			return
		}
		total += b.Len()
		for i := 0; i < b.Len() && printed < max; i++ {
			cells := make([]string, b.Width())
			for c, v := range b.Row(i) {
				cells[c] = datumString(v)
			}
			fmt.Println(strings.Join(cells, " | "))
			printed++
		}
	}
	if total > max {
		fmt.Printf("... (%d more rows)\n", total-max)
	}
	s := rows.Stats()
	fmt.Printf("-- %d rows in %v (match %v, exec %v; reused=%d subsumed=%d stored=%d stalled=%d%s)\n",
		total, s.Total.Round(10e3), s.Matching.Round(10e3), s.Execution.Round(10e3),
		s.Reused, s.SubsumptionReused, s.Materialized, s.Waits,
		map[bool]string{true: ", proactive", false: ""}[s.ProactiveApplied])
	if showStats {
		fmt.Printf("-- %+v\n", s)
	}
}

func printErr(err error) {
	switch {
	case errors.Is(err, recycledb.ErrCanceled):
		fmt.Println("canceled")
	case errors.Is(err, recycledb.ErrParse):
		var pe *recycledb.ParseError
		if errors.As(err, &pe) {
			fmt.Printf("syntax error at offset %d: %s\n", pe.Pos, pe.Msg)
			return
		}
		fmt.Println("error:", err)
	case errors.Is(err, recycledb.ErrUnknownTable):
		fmt.Println("error:", err)
	default:
		fmt.Println("error:", err)
	}
}

func parseMode(s string) recycledb.Mode {
	switch strings.ToLower(s) {
	case "hist", "history":
		return recycledb.History
	case "spec", "speculative":
		return recycledb.Speculative
	case "pa", "proactive":
		return recycledb.Proactive
	default:
		return recycledb.Off
	}
}

func datumString(d vector.Datum) string {
	switch d.Typ {
	case vector.Date:
		return vector.DateString(d.I64)
	case vector.Float64:
		return fmt.Sprintf("%.2f", d.F64)
	case vector.String:
		return d.Str
	default:
		return strings.Trim(d.String(), `"`)
	}
}
