// Command recycledb-shell is an interactive SQL shell over the recycling
// engine, loaded with a generated TPC-H database. It demonstrates recycling
// live: repeat a query (or a near-variant) and watch the recycler statistics
// line under each result.
//
// Shell commands: \mode off|hist|spec|pa, \stats, \flush, \tables, \q.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"recycledb"
	"recycledb/internal/sql"
	"recycledb/internal/tpch"
	"recycledb/internal/vector"
)

func main() {
	var (
		sf   = flag.Float64("sf", 0.01, "TPC-H scale factor to load")
		mode = flag.String("mode", "spec", "recycling mode: off, hist, spec, pa")
	)
	flag.Parse()

	eng := recycledb.New(recycledb.Config{Mode: parseMode(*mode)})
	fmt.Printf("loading TPC-H sf=%g ...\n", *sf)
	tpch.Generate(eng.Catalog(), *sf, 1)
	fmt.Printf("tables: %s\n", strings.Join(eng.Catalog().TableNames(), ", "))
	fmt.Println(`type SQL, or \mode, \stats, \flush, \tables, \q`)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("recycledb> ")
		if !in.Scan() {
			return
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == `\q`:
			return
		case line == `\stats`:
			fmt.Printf("%+v\n", eng.Recycler().Stats())
			continue
		case line == `\flush`:
			eng.FlushCache()
			fmt.Println("cache flushed")
			continue
		case line == `\tables`:
			fmt.Println(strings.Join(eng.Catalog().TableNames(), ", "))
			continue
		case strings.HasPrefix(line, `\mode`):
			parts := strings.Fields(line)
			if len(parts) == 2 {
				eng.SetMode(parseMode(parts[1]))
				fmt.Println("mode:", eng.Mode())
			} else {
				fmt.Println("usage: \\mode off|hist|spec|pa")
			}
			continue
		}
		q, err := sql.Compile(line, eng.Catalog())
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		res, err := eng.Execute(q)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		printResult(res, 20)
		s := res.Stats
		fmt.Printf("-- %d rows in %v (match %v, exec %v; reused=%d subsumed=%d stored=%d stalled=%d%s)\n",
			res.Rows(), s.Total.Round(10e3), s.Matching.Round(10e3), s.Execution.Round(10e3),
			s.Reused, s.SubsumptionReused, s.Materialized, s.Waits,
			map[bool]string{true: ", proactive", false: ""}[s.ProactiveApplied])
	}
}

func parseMode(s string) recycledb.Mode {
	switch strings.ToLower(s) {
	case "hist", "history":
		return recycledb.History
	case "spec", "speculative":
		return recycledb.Speculative
	case "pa", "proactive":
		return recycledb.Proactive
	default:
		return recycledb.Off
	}
}

func printResult(res *recycledb.Result, max int) {
	names := make([]string, len(res.Schema))
	for i, c := range res.Schema {
		names[i] = c.Name
	}
	fmt.Println(strings.Join(names, " | "))
	printed := 0
	for _, b := range res.Batches {
		for i := 0; i < b.Len() && printed < max; i++ {
			cells := make([]string, b.Width())
			for c, v := range b.Row(i) {
				cells[c] = datumString(v)
			}
			fmt.Println(strings.Join(cells, " | "))
			printed++
		}
		if printed >= max {
			break
		}
	}
	if res.Rows() > max {
		fmt.Printf("... (%d more rows)\n", res.Rows()-max)
	}
}

func datumString(d vector.Datum) string {
	switch d.Typ {
	case vector.Date:
		return vector.DateString(d.I64)
	case vector.Float64:
		return fmt.Sprintf("%.2f", d.F64)
	case vector.String:
		return d.Str
	default:
		return strings.Trim(d.String(), `"`)
	}
}
