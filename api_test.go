package recycledb

import (
	"context"
	"errors"
	"testing"
	"time"

	"recycledb/internal/catalog"
	"recycledb/internal/sql"
	"recycledb/internal/vector"
)

// Streaming, context, prepared-statement, and typed-error coverage for the
// server-grade query API (Query / Prepare / Stream / Rows).

func TestQueryCancellationStopsScanEarly(t *testing.T) {
	e := New(Config{Mode: Off})
	loadSales(e, 2_000_000)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := e.Query(ctx, `SELECT region, amount FROM sales`)
	if err != nil {
		t.Fatal(err)
	}
	// Consume a few batches, then cancel mid-stream.
	consumed := 0
	for i := 0; i < 3; i++ {
		b, err := rows.Next(ctx)
		if err != nil || b == nil {
			t.Fatalf("batch %d: b=%v err=%v", i, b, err)
		}
		consumed += b.Len()
	}
	cancel()
	if _, err := rows.Next(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled after cancel, got %v", err)
	}
	// The context's own sentinel stays in the chain.
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("context.Canceled should remain matchable, got %v", err)
	}
	if consumed >= 2_000_000 {
		t.Fatalf("scan ran to completion (%d rows) despite cancellation", consumed)
	}
}

func TestQueryDeadlineExceeded(t *testing.T) {
	e := New(Config{Mode: Off})
	loadSales(e, 50_000)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	rows, err := e.Query(ctx, `SELECT region, amount FROM sales`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Next(ctx); !errors.Is(err, ErrCanceled) ||
		!errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrCanceled wrapping DeadlineExceeded, got %v", err)
	}
}

func TestCanceledBlockingOperatorAborts(t *testing.T) {
	e := New(Config{Mode: Off})
	loadSales(e, 100_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the sort's build phase runs
	rows, err := e.Query(ctx, `SELECT product, amount FROM sales ORDER BY amount DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Next(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled from blocking operator, got %v", err)
	}
}

const preparedQ = `SELECT region, sum(amount * qty) AS revenue, count(*) AS n
                   FROM sales WHERE amount > ? GROUP BY region`

func TestPreparedStatementRecyclesAcrossExecutions(t *testing.T) {
	e := New(Config{Mode: History})
	loadSales(e, 5000)
	ctx := context.Background()

	stmt, err := e.Prepare(preparedQ)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 1 {
		t.Fatalf("NumParams = %d, want 1", stmt.NumParams())
	}
	r1, err := stmt.Exec(ctx, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Reused != 0 || r1.Stats.Stores != 0 {
		t.Fatalf("first sight must neither store nor reuse: %+v", r1.Stats)
	}
	r2, err := stmt.Exec(ctx, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.Stores == 0 {
		t.Fatalf("second execution of the same binding should store: %+v", r2.Stats)
	}
	r3, err := stmt.Exec(ctx, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Stats.Reused < 1 {
		t.Fatalf("repeated prepared execution should reuse (Reused >= 1): %+v", r3.Stats)
	}
	sameResults(t, r1, r3)

	// A different binding is a different result: no reuse, fresh graph walk.
	r4, err := stmt.Exec(ctx, 95.0)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Stats.Reused != 0 {
		t.Fatalf("different binding must not reuse the old result: %+v", r4.Stats)
	}
	if r4.Rows() == r1.Rows() && r4.Raw().Bytes() == r1.Raw().Bytes() {
		// Not an assertion failure per se, but the bindings were chosen
		// to select differently; flag suspicious equality.
		t.Logf("warning: bindings 10 and 95 produced identical result shapes")
	}
}

func TestPreparedStatementViaEngineQuery(t *testing.T) {
	e := New(Config{Mode: Speculative})
	loadSales(e, 5000)
	ctx := context.Background()
	// Query goes through the same plan cache; identical text+binding
	// recycles on the second run (speculative stores on the first).
	r1, err := e.QueryCollect(ctx, preparedQ, 25.0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.QueryCollect(ctx, preparedQ, 25.0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.Reused == 0 {
		t.Fatalf("second Query of same text+binding should reuse: %+v", r2.Stats)
	}
	sameResults(t, r1, r2)
	if e.plans.len() != 1 {
		t.Fatalf("one distinct text should occupy one plan-cache slot, got %d", e.plans.len())
	}
}

func TestPlanCacheNormalization(t *testing.T) {
	e := New(Config{Mode: Off})
	loadSales(e, 100)
	ctx := context.Background()
	variants := []string{
		"SELECT region FROM sales LIMIT 1",
		"select   region\n from sales limit 1;",
		"Select region From sales Limit 1",
	}
	for _, q := range variants {
		if _, err := e.QueryCollect(ctx, q); err != nil {
			t.Fatalf("%q: %v", q, err)
		}
	}
	if n := e.plans.len(); n != 1 {
		t.Fatalf("whitespace/keyword-case variants should share one plan, cache holds %d", n)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	e := New(Config{Mode: Off, PlanCacheSize: 2})
	loadSales(e, 100)
	q1 := "SELECT region FROM sales LIMIT 1"
	q2 := "SELECT product FROM sales LIMIT 1"
	q3 := "SELECT qty FROM sales LIMIT 1"
	q4 := "SELECT amount FROM sales LIMIT 1"
	for _, q := range []string{q1, q2, q3} {
		if _, err := e.Prepare(q); err != nil {
			t.Fatal(err)
		}
	}
	if e.plans.len() != 2 {
		t.Fatalf("cache len = %d, want 2", e.plans.len())
	}
	if e.plans.contains(sql.Normalize(q1)) {
		t.Fatal("oldest entry should have been evicted")
	}
	if !e.plans.contains(sql.Normalize(q2)) || !e.plans.contains(sql.Normalize(q3)) {
		t.Fatal("newest entries should remain")
	}
	// Touch q2 so q3 becomes the LRU victim.
	if _, err := e.Prepare(q2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Prepare(q4); err != nil {
		t.Fatal(err)
	}
	if e.plans.contains(sql.Normalize(q3)) {
		t.Fatal("least-recently-used entry (q3) should have been evicted")
	}
	if !e.plans.contains(sql.Normalize(q2)) || !e.plans.contains(sql.Normalize(q4)) {
		t.Fatal("recently used entries should remain")
	}
}

// streamRows drains a stream into flat row tuples without Collect.
func streamRows(t *testing.T, rows *Rows, ctx context.Context) [][]vector.Datum {
	t.Helper()
	var out [][]vector.Datum
	for b, err := range rows.All(ctx) {
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < b.Len(); i++ {
			// Row returns a view; copy since the batch recycles.
			row := b.Row(i)
			cp := make([]vector.Datum, len(row))
			copy(cp, row)
			out = append(out, cp)
		}
	}
	return out
}

func TestStreamingMatchesCollect(t *testing.T) {
	const q = `SELECT region, sum(amount * qty) AS revenue, count(*) AS n
	           FROM sales WHERE amount > 20.0 GROUP BY region ORDER BY region`
	for _, mode := range []Mode{Off, History, Speculative} {
		e := New(Config{Mode: mode})
		loadSales(e, 8000)
		ctx := context.Background()
		// Several rounds so recycling engages (stores, then replays):
		// streamed and collected consumption must agree byte-for-byte in
		// every phase.
		for round := 0; round < 3; round++ {
			rows, err := e.Query(ctx, q)
			if err != nil {
				t.Fatalf("mode %v: %v", mode, err)
			}
			streamed := streamRows(t, rows, ctx)
			res, err := e.QueryCollect(ctx, q)
			if err != nil {
				t.Fatalf("mode %v: %v", mode, err)
			}
			var collected [][]vector.Datum
			for _, b := range res.Batches {
				for i := 0; i < b.Len(); i++ {
					row := b.Row(i)
					cp := make([]vector.Datum, len(row))
					copy(cp, row)
					collected = append(collected, cp)
				}
			}
			if len(streamed) != len(collected) {
				t.Fatalf("mode %v round %d: %d streamed vs %d collected rows",
					mode, round, len(streamed), len(collected))
			}
			for i := range streamed {
				for c := range streamed[i] {
					if !streamed[i][c].Equal(collected[i][c]) {
						t.Fatalf("mode %v round %d row %d col %d: %v vs %v",
							mode, round, i, c, streamed[i][c], collected[i][c])
					}
				}
			}
		}
	}
}

func TestRowsAllEarlyBreakCloses(t *testing.T) {
	e := New(Config{Mode: Off})
	loadSales(e, 100_000)
	ctx := context.Background()
	rows, err := e.Query(ctx, `SELECT region, amount FROM sales`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for b, err := range rows.All(ctx) {
		if err != nil {
			t.Fatal(err)
		}
		_ = b
		if n++; n == 2 {
			break // All must Close the query on early exit
		}
	}
	if b, err := rows.Next(ctx); b != nil || err != nil {
		t.Fatalf("Next after abandoned stream: b=%v err=%v, want nil,nil", b, err)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("Close must be idempotent: %v", err)
	}
}

func TestTypedErrors(t *testing.T) {
	e := New(Config{Mode: Off})
	loadSales(e, 100)
	ctx := context.Background()

	// Unknown table.
	if _, err := e.Query(ctx, `SELECT x FROM nosuch`); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("want ErrUnknownTable, got %v", err)
	}
	// Builder plans classify the same way.
	if _, err := e.ExecuteContext(ctx, Scan("nosuch")); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("want ErrUnknownTable from plan path, got %v", err)
	}
	// Syntax error with position.
	_, err := e.Query(ctx, `SELECT region FROM sales WHERE`)
	if !errors.Is(err, ErrParse) {
		t.Fatalf("want ErrParse, got %v", err)
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError in chain, got %v", err)
	}
	if pe.Pos <= 0 || pe.Pos > len(`SELECT region FROM sales WHERE`) {
		t.Fatalf("implausible error position %d", pe.Pos)
	}
	// Binding arity and type errors.
	stmt, err := e.Prepare(`SELECT region FROM sales WHERE amount > ?`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(ctx); err == nil {
		t.Fatal("missing binding should error")
	}
	if _, err := stmt.Query(ctx, 1.0, 2.0); err == nil {
		t.Fatal("excess bindings should error")
	}
	if _, err := stmt.Query(ctx, struct{}{}); err == nil {
		t.Fatal("unsupported binding type should error")
	}
	// Unparameterized front door rejects placeholders cleanly.
	if _, err := e.QueryCollect(ctx, `SELECT region FROM sales WHERE amount > ?`); err == nil {
		t.Fatal("Query without bindings for a parameterized statement should error")
	}
}

func TestDeprecatedExecuteShim(t *testing.T) {
	e := New(Config{Mode: Speculative})
	loadSales(e, 5000)
	r1, err := e.Execute(revenueByRegion(10))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Execute(revenueByRegion(10))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.Reused == 0 {
		t.Fatalf("shim must run the full recycling pipeline: %+v", r2.Stats)
	}
	sameResults(t, r1, r2)
}

func TestStreamStatsAvailableAfterDrain(t *testing.T) {
	e := New(Config{Mode: Speculative})
	loadSales(e, 5000)
	ctx := context.Background()
	rows, err := e.Stream(ctx, revenueByRegion(10))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for b, err := range rows.All(ctx) {
		if err != nil {
			t.Fatal(err)
		}
		total += b.Len()
	}
	s := rows.Stats()
	if s.Rows != total || s.Rows != 4 {
		t.Fatalf("stats rows = %d, streamed %d, want 4", s.Rows, total)
	}
	if s.Total <= 0 || s.Execution <= 0 {
		t.Fatalf("timings missing: %+v", s)
	}
	if s.Materialized == 0 {
		t.Fatalf("speculative first sight should materialize: %+v", s)
	}
}

func TestPlanCacheInvalidatedBySchemaChange(t *testing.T) {
	e := New(Config{Mode: Off})
	loadSales(e, 100)
	ctx := context.Background()
	const q = `SELECT * FROM sales LIMIT 1`
	r1, err := e.QueryCollect(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Schema) != 5 {
		t.Fatalf("seed sales schema width = %d, want 5", len(r1.Schema))
	}
	// Replace the table with a wider schema: the cached plan compiled
	// against the old snapshot must not be served.
	wider := catalog.NewTable("sales", catalog.Schema{
		{Name: "region", Typ: vector.String},
		{Name: "amount", Typ: vector.Float64},
		{Name: "bonus", Typ: vector.Float64},
	})
	ww := wider.BeginWrite()
	ap := ww.Appender()
	ap.String(0, "north")
	ap.Float64(1, 1)
	ap.Float64(2, 2)
	ap.FinishRow()
	ww.Commit()
	e.Catalog().AddTable(wider)
	r2, err := e.QueryCollect(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Schema) != 3 {
		t.Fatalf("stale plan served after AddTable: schema width %d, want 3", len(r2.Schema))
	}
}
