// Package vector provides the typed column vectors and row batches that flow
// between operators in the vector-at-a-time execution engine. A Batch is a
// small horizontal slice of a result set (at most the engine's vector size,
// typically 1024 rows) stored column-wise, mirroring the Vectorwise/X100
// execution model the paper targets.
package vector

import "fmt"

// Type identifies the physical type of a column vector.
type Type uint8

const (
	// Unknown is the zero Type; it is never valid in a schema.
	Unknown Type = iota
	// Int64 is a 64-bit signed integer column.
	Int64
	// Float64 is a 64-bit floating point column (used for decimals).
	Float64
	// String is a variable-width string column.
	String
	// Date is a day-granularity date stored as days since 1970-01-01
	// in the I64 payload.
	Date
	// Bool is a boolean column stored in the B payload.
	Bool
)

// String returns the lower-case name of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	case Date:
		return "date"
	case Bool:
		return "bool"
	default:
		return "unknown"
	}
}

// Fixed reports whether the type has a fixed-width in-memory representation.
func (t Type) Fixed() bool { return t != String }

// Width returns the per-row byte width used for size accounting. String
// vectors account their payload separately; Width returns the per-row
// header overhead for them.
func (t Type) Width() int64 {
	switch t {
	case Int64, Float64, Date:
		return 8
	case Bool:
		return 1
	case String:
		return 16 // string header; payload added per value
	default:
		return 0
	}
}

// Vector is a single typed column of up to the engine vector size rows.
// Exactly one payload slice is in use, selected by Typ (Date shares I64,
// Bool uses B).
type Vector struct {
	Typ Type
	I64 []int64
	F64 []float64
	Str []string
	B   []bool
}

// New returns an empty vector of type t with capacity cap.
func New(t Type, capacity int) *Vector {
	v := &Vector{Typ: t}
	switch t {
	case Int64, Date:
		v.I64 = make([]int64, 0, capacity)
	case Float64:
		v.F64 = make([]float64, 0, capacity)
	case String:
		v.Str = make([]string, 0, capacity)
	case Bool:
		v.B = make([]bool, 0, capacity)
	}
	return v
}

// Len returns the number of rows in the vector.
func (v *Vector) Len() int {
	switch v.Typ {
	case Int64, Date:
		return len(v.I64)
	case Float64:
		return len(v.F64)
	case String:
		return len(v.Str)
	case Bool:
		return len(v.B)
	default:
		return 0
	}
}

// Slice returns a value copy of the vector bounded to its first n rows.
// The copy aliases the underlying storage; rows below n are immutable by
// the storage layer's epoch contract, so the slice stays valid while
// writers append beyond it.
func (v *Vector) Slice(n int) Vector {
	s := Vector{Typ: v.Typ}
	switch v.Typ {
	case Int64, Date:
		s.I64 = v.I64[:n:n]
	case Float64:
		s.F64 = v.F64[:n:n]
	case String:
		s.Str = v.Str[:n:n]
	case Bool:
		s.B = v.B[:n:n]
	}
	return s
}

// Reset truncates the vector to zero rows, retaining capacity.
func (v *Vector) Reset() {
	v.I64 = v.I64[:0]
	v.F64 = v.F64[:0]
	v.Str = v.Str[:0]
	v.B = v.B[:0]
}

// AppendInt64 appends an int64 (or date) value.
func (v *Vector) AppendInt64(x int64) { v.I64 = append(v.I64, x) }

// AppendFloat64 appends a float64 value.
func (v *Vector) AppendFloat64(x float64) { v.F64 = append(v.F64, x) }

// AppendString appends a string value.
func (v *Vector) AppendString(x string) { v.Str = append(v.Str, x) }

// AppendBool appends a bool value.
func (v *Vector) AppendBool(x bool) { v.B = append(v.B, x) }

// AppendFrom appends row i of src to v. The vectors must have the same type.
func (v *Vector) AppendFrom(src *Vector, i int) {
	switch v.Typ {
	case Int64, Date:
		v.I64 = append(v.I64, src.I64[i])
	case Float64:
		v.F64 = append(v.F64, src.F64[i])
	case String:
		v.Str = append(v.Str, src.Str[i])
	case Bool:
		v.B = append(v.B, src.B[i])
	}
}

// AppendDatum appends a Datum, which must match the vector type.
func (v *Vector) AppendDatum(d Datum) {
	switch v.Typ {
	case Int64, Date:
		v.I64 = append(v.I64, d.I64)
	case Float64:
		v.F64 = append(v.F64, d.F64)
	case String:
		v.Str = append(v.Str, d.Str)
	case Bool:
		v.B = append(v.B, d.B)
	}
}

// Datum returns row i of the vector as a Datum.
func (v *Vector) Datum(i int) Datum {
	d := Datum{Typ: v.Typ}
	switch v.Typ {
	case Int64, Date:
		d.I64 = v.I64[i]
	case Float64:
		d.F64 = v.F64[i]
	case String:
		d.Str = v.Str[i]
	case Bool:
		d.B = v.B[i]
	}
	return d
}

// Bytes returns the approximate in-memory footprint of the vector, used for
// recycler cache accounting (size(R) in the paper's benefit metric).
func (v *Vector) Bytes() int64 {
	n := int64(v.Len())
	b := n * v.Typ.Width()
	if v.Typ == String {
		for _, s := range v.Str {
			b += int64(len(s))
		}
	}
	return b
}

// Clone returns a deep copy of the vector. Store operators clone batches
// they retain, because producers may reuse batch memory between Next calls.
func (v *Vector) Clone() *Vector {
	c := &Vector{Typ: v.Typ}
	switch v.Typ {
	case Int64, Date:
		c.I64 = append([]int64(nil), v.I64...)
	case Float64:
		c.F64 = append([]float64(nil), v.F64...)
	case String:
		c.Str = append([]string(nil), v.Str...)
	case Bool:
		c.B = append([]bool(nil), v.B...)
	}
	return c
}

// GrowI64 extends s by n zero rows and returns the grown slice. Reserving
// length up front lets gather kernels write by index instead of appending
// per element, which keeps the inner loops free of the len/cap checks that
// block auto-vectorization. The explicit in-capacity reslice (rather than
// relying on the compiler recognizing append(s, make(...)...)) keeps the
// steady-state path allocation-free even in instrumented builds (-race),
// where that optimization is disabled — the zero-alloc contracts run there.
func GrowI64(s []int64, n int) []int64 {
	if l := len(s); l+n <= cap(s) {
		s = s[:l+n]
		clear(s[l:])
		return s
	}
	return append(s, make([]int64, n)...)
}

// GrowF64 extends s by n zero rows (see GrowI64).
func GrowF64(s []float64, n int) []float64 {
	if l := len(s); l+n <= cap(s) {
		s = s[:l+n]
		clear(s[l:])
		return s
	}
	return append(s, make([]float64, n)...)
}

// GrowStr extends s by n empty rows (see GrowI64).
func GrowStr(s []string, n int) []string {
	if l := len(s); l+n <= cap(s) {
		s = s[:l+n]
		clear(s[l:])
		return s
	}
	return append(s, make([]string, n)...)
}

// GrowBool extends s by n false rows (see GrowI64).
func GrowBool(s []bool, n int) []bool {
	if l := len(s); l+n <= cap(s) {
		s = s[:l+n]
		clear(s[l:])
		return s
	}
	return append(s, make([]bool, n)...)
}

// Datum is a single typed value.
type Datum struct {
	Typ Type
	I64 int64
	F64 float64
	Str string
	B   bool
}

// NewInt64Datum returns an Int64 Datum.
func NewInt64Datum(x int64) Datum { return Datum{Typ: Int64, I64: x} }

// NewFloat64Datum returns a Float64 Datum.
func NewFloat64Datum(x float64) Datum { return Datum{Typ: Float64, F64: x} }

// NewStringDatum returns a String Datum.
func NewStringDatum(x string) Datum { return Datum{Typ: String, Str: x} }

// NewDateDatum returns a Date Datum holding days since the epoch.
func NewDateDatum(days int64) Datum { return Datum{Typ: Date, I64: days} }

// NewBoolDatum returns a Bool Datum.
func NewBoolDatum(x bool) Datum { return Datum{Typ: Bool, B: x} }

// Equal reports whether two datums have identical type and value.
func (d Datum) Equal(o Datum) bool {
	if d.Typ != o.Typ {
		return false
	}
	switch d.Typ {
	case Int64, Date:
		return d.I64 == o.I64
	case Float64:
		return d.F64 == o.F64
	case String:
		return d.Str == o.Str
	case Bool:
		return d.B == o.B
	}
	return true
}

// Compare returns -1, 0 or +1 ordering d relative to o. It panics on
// mismatched types; plans are type-checked before execution.
func (d Datum) Compare(o Datum) int {
	if d.Typ != o.Typ {
		panic(fmt.Sprintf("vector: comparing %v with %v", d.Typ, o.Typ))
	}
	switch d.Typ {
	case Int64, Date:
		switch {
		case d.I64 < o.I64:
			return -1
		case d.I64 > o.I64:
			return 1
		}
	case Float64:
		switch {
		case d.F64 < o.F64:
			return -1
		case d.F64 > o.F64:
			return 1
		}
	case String:
		switch {
		case d.Str < o.Str:
			return -1
		case d.Str > o.Str:
			return 1
		}
	case Bool:
		switch {
		case !d.B && o.B:
			return -1
		case d.B && !o.B:
			return 1
		}
	}
	return 0
}

// String renders the datum for debugging and canonical plan strings.
func (d Datum) String() string {
	switch d.Typ {
	case Int64:
		return fmt.Sprintf("%d", d.I64)
	case Date:
		return fmt.Sprintf("date(%d)", d.I64)
	case Float64:
		return fmt.Sprintf("%g", d.F64)
	case String:
		return fmt.Sprintf("%q", d.Str)
	case Bool:
		return fmt.Sprintf("%t", d.B)
	default:
		return "?"
	}
}
