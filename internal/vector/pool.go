package vector

import (
	"math/bits"
	"sync"
	"unsafe"
)

// Pool recycles vectors and batches across queries. It is sync.Pool-backed
// and bucketed by (type, capacity class), so a Get is satisfied by any
// previously returned vector of the same type with at least the requested
// capacity. Operators draw their scratch batches from the pool in Open (or
// lazily in Next) and return them in Close; steady-state Next calls then
// run without heap allocation.
//
// Ownership rules (see README "Performance"):
//
//   - Only the Get/GetBatch caller may Put a vector back, exactly once.
//   - Batches handed downstream by Next remain owned by the producing
//     operator; consumers must not Put them.
//   - Results retained beyond a Next call (recycler cache admissions,
//     materialized Results) are deep Clones that own fresh, unpooled
//     memory — the recycler never holds pooled storage, so cache
//     correctness and byte accounting are untouched by pooling.
//
// The zero Pool is ready to use and safe for concurrent use. It is also
// contention-free under intra-query parallelism: each bucket is a
// sync.Pool (internally sharded per P, so same-bucket Get/Put from
// concurrent pipeline workers stays lock-free on the fast path), and
// buckets are padded onto distinct cache lines so workers hammering
// adjacent (type, class) buckets do not false-share the pool headers.
// pool_test.go asserts throughput does not collapse when GOMAXPROCS
// workers share one pool.
type Pool struct {
	buckets [nTypes][poolMaxClass + 1]paddedPool
}

// paddedPool rounds each bucket up to its own cache lines (128 bytes
// covers the common 64B line and 128B prefetch pairs).
type paddedPool struct {
	sync.Pool
	_ [(128 - unsafe.Sizeof(sync.Pool{})%128) % 128]byte
}

const (
	nTypes = int(Bool) + 1
	// poolMinClass..poolMaxClass bound the pooled capacity classes
	// (2^5 = 32 .. 2^21 = 2Mi rows); outside the range vectors are
	// allocated and dropped normally.
	poolMinClass = 5
	poolMaxClass = 21
)

// sizeClass returns the bucket whose vectors hold at least capacity rows.
func sizeClass(capacity int) int {
	if capacity <= 1 {
		return poolMinClass
	}
	c := bits.Len(uint(capacity - 1)) // ceil(log2(capacity))
	if c < poolMinClass {
		c = poolMinClass
	}
	return c
}

// Get returns an empty vector of type t with capacity at least capacity,
// reusing a pooled one when available.
func (p *Pool) Get(t Type, capacity int) *Vector {
	c := sizeClass(capacity)
	if t == Unknown || c > poolMaxClass {
		return New(t, capacity)
	}
	if v, ok := p.buckets[t][c].Get().(*Vector); ok && v != nil {
		return v
	}
	return New(t, 1<<c)
}

// Put returns a vector obtained from Get to the pool. The vector must not
// be used afterwards. Vectors whose capacity falls outside the pooled
// classes are dropped. String payloads are cleared so a pooled vector never
// pins the strings it used to hold.
func (p *Pool) Put(v *Vector) {
	if v == nil || v.Typ == Unknown {
		return
	}
	capacity := v.payloadCap()
	// Floor class: every vector in bucket c has capacity >= 1<<c.
	c := bits.Len(uint(capacity)) - 1
	if capacity <= 0 || c < poolMinClass || c > poolMaxClass {
		return
	}
	v.Reset()
	// Drop payloads of other types: scratch vectors can be retyped
	// between Get and Put (EvalAsScratch), and a vector must enter its
	// current type's bucket carrying only that payload — otherwise
	// pooled vectors accumulate dead full-capacity slices.
	switch v.Typ {
	case Int64, Date:
		v.F64, v.Str, v.B = nil, nil, nil
	case Float64:
		v.I64, v.Str, v.B = nil, nil, nil
	case String:
		clear(v.Str[:cap(v.Str)])
		v.I64, v.F64, v.B = nil, nil, nil
	case Bool:
		v.I64, v.F64, v.Str = nil, nil, nil
	}
	p.buckets[v.Typ][c].Put(v)
}

// payloadCap returns the capacity of the active payload slice.
func (v *Vector) payloadCap() int {
	switch v.Typ {
	case Int64, Date:
		return cap(v.I64)
	case Float64:
		return cap(v.F64)
	case String:
		return cap(v.Str)
	case Bool:
		return cap(v.B)
	default:
		return 0
	}
}

// GetBatch returns an empty batch with one pooled vector per type.
func (p *Pool) GetBatch(types []Type, capacity int) *Batch {
	b := &Batch{Vecs: make([]*Vector, len(types))}
	for i, t := range types {
		b.Vecs[i] = p.Get(t, capacity) //recycledb:pool-ok GetBatch constructs the loan; the caller releases via PutBatch
	}
	return b
}

// PutBatch returns every vector of a batch obtained from GetBatch to the
// pool and neuters the batch.
func (p *Pool) PutBatch(b *Batch) {
	if b == nil {
		return
	}
	for i, v := range b.Vecs {
		p.Put(v)
		b.Vecs[i] = nil
	}
	b.Vecs = nil
	b.Sel = nil
}
