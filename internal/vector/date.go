package vector

import (
	"fmt"
	"time"
)

// DaysFromDate converts a calendar date to days since 1970-01-01, the
// physical representation of the Date type.
func DaysFromDate(year, month, day int) int64 {
	t := time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC)
	return t.Unix() / 86400
}

// MustParseDate converts "YYYY-MM-DD" to days since the epoch and panics on
// malformed input. It is intended for literals in query builders and tests.
func MustParseDate(s string) int64 {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		panic(fmt.Sprintf("vector: bad date literal %q: %v", s, err))
	}
	return t.Unix() / 86400
}

// DateString renders days since the epoch as "YYYY-MM-DD".
func DateString(days int64) string {
	return time.Unix(days*86400, 0).UTC().Format("2006-01-02")
}

// YearOf returns the calendar year of a Date value.
func YearOf(days int64) int64 {
	return int64(time.Unix(days*86400, 0).UTC().Year())
}

// MonthOf returns the calendar month (1-12) of a Date value.
func MonthOf(days int64) int64 {
	return int64(time.Unix(days*86400, 0).UTC().Month())
}
