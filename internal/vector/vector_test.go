package vector

import (
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		Int64: "int64", Float64: "float64", String: "string",
		Date: "date", Bool: "bool", Unknown: "unknown",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, got, want)
		}
	}
}

func TestVectorAppendLen(t *testing.T) {
	v := New(Int64, 4)
	if v.Len() != 0 {
		t.Fatalf("new vector len = %d, want 0", v.Len())
	}
	v.AppendInt64(1)
	v.AppendInt64(2)
	if v.Len() != 2 {
		t.Fatalf("len = %d, want 2", v.Len())
	}
	v.Reset()
	if v.Len() != 0 {
		t.Fatalf("len after reset = %d, want 0", v.Len())
	}
}

func TestVectorLenAllTypes(t *testing.T) {
	for _, typ := range []Type{Int64, Float64, String, Date, Bool} {
		v := New(typ, 2)
		switch typ {
		case Int64, Date:
			v.AppendInt64(7)
		case Float64:
			v.AppendFloat64(7)
		case String:
			v.AppendString("seven")
		case Bool:
			v.AppendBool(true)
		}
		if v.Len() != 1 {
			t.Errorf("%v vector len = %d, want 1", typ, v.Len())
		}
	}
}

func TestVectorAppendFrom(t *testing.T) {
	src := New(String, 2)
	src.AppendString("a")
	src.AppendString("b")
	dst := New(String, 2)
	dst.AppendFrom(src, 1)
	if dst.Len() != 1 || dst.Str[0] != "b" {
		t.Fatalf("AppendFrom: got %v", dst.Str)
	}
}

func TestVectorDatumRoundTrip(t *testing.T) {
	v := New(Float64, 1)
	v.AppendFloat64(3.5)
	d := v.Datum(0)
	if d.Typ != Float64 || d.F64 != 3.5 {
		t.Fatalf("Datum = %+v", d)
	}
	v2 := New(Float64, 1)
	v2.AppendDatum(d)
	if v2.F64[0] != 3.5 {
		t.Fatalf("AppendDatum stored %v", v2.F64[0])
	}
}

func TestVectorBytes(t *testing.T) {
	v := New(Int64, 3)
	for i := 0; i < 3; i++ {
		v.AppendInt64(int64(i))
	}
	if got := v.Bytes(); got != 24 {
		t.Fatalf("int64 Bytes = %d, want 24", got)
	}
	s := New(String, 2)
	s.AppendString("ab")
	s.AppendString("cde")
	// 2 headers of 16 bytes + 5 payload bytes.
	if got := s.Bytes(); got != 2*16+5 {
		t.Fatalf("string Bytes = %d, want %d", got, 2*16+5)
	}
}

func TestVectorCloneIsDeep(t *testing.T) {
	v := New(Int64, 2)
	v.AppendInt64(1)
	c := v.Clone()
	v.I64[0] = 99
	if c.I64[0] != 1 {
		t.Fatalf("clone shares storage: %v", c.I64)
	}
}

func TestDatumEqualCompare(t *testing.T) {
	a := NewInt64Datum(1)
	b := NewInt64Datum(2)
	if a.Equal(b) || !a.Equal(NewInt64Datum(1)) {
		t.Fatal("Equal misbehaves on int64")
	}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Fatal("Compare misbehaves on int64")
	}
	s1, s2 := NewStringDatum("a"), NewStringDatum("b")
	if s1.Compare(s2) != -1 || s2.Compare(s1) != 1 {
		t.Fatal("Compare misbehaves on string")
	}
	f1, f2 := NewFloat64Datum(1.5), NewFloat64Datum(2.5)
	if f1.Compare(f2) != -1 {
		t.Fatal("Compare misbehaves on float64")
	}
	bt, bf := NewBoolDatum(true), NewBoolDatum(false)
	if bf.Compare(bt) != -1 || bt.Compare(bf) != 1 {
		t.Fatal("Compare misbehaves on bool")
	}
	if NewInt64Datum(0).Equal(NewFloat64Datum(0)) {
		t.Fatal("datums of different types must not be equal")
	}
}

func TestDatumCompareMismatchedTypesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched Compare")
		}
	}()
	NewInt64Datum(1).Compare(NewStringDatum("x"))
}

func TestBatchAppendRow(t *testing.T) {
	src := NewBatch([]Type{Int64, String}, 2)
	src.Vecs[0].AppendInt64(10)
	src.Vecs[0].AppendInt64(20)
	src.Vecs[1].AppendString("x")
	src.Vecs[1].AppendString("y")
	dst := NewBatch([]Type{Int64, String}, 2)
	dst.AppendRow(src, 1)
	if dst.Len() != 1 || dst.Vecs[0].I64[0] != 20 || dst.Vecs[1].Str[0] != "y" {
		t.Fatalf("AppendRow: %+v", dst.Row(0))
	}
}

func TestBatchCloneTypesBytes(t *testing.T) {
	b := NewBatch([]Type{Int64, Float64}, 1)
	b.Vecs[0].AppendInt64(1)
	b.Vecs[1].AppendFloat64(2)
	c := b.Clone()
	b.Vecs[0].I64[0] = 42
	if c.Vecs[0].I64[0] != 1 {
		t.Fatal("batch clone shares storage")
	}
	ts := b.Types()
	if len(ts) != 2 || ts[0] != Int64 || ts[1] != Float64 {
		t.Fatalf("Types = %v", ts)
	}
	if b.Bytes() != 16 {
		t.Fatalf("Bytes = %d, want 16", b.Bytes())
	}
	if b.Width() != 2 {
		t.Fatalf("Width = %d, want 2", b.Width())
	}
}

func TestBatchReset(t *testing.T) {
	b := NewBatch([]Type{Int64}, 1)
	b.Vecs[0].AppendInt64(5)
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("len after reset = %d", b.Len())
	}
}

func TestDateRoundTrip(t *testing.T) {
	d := MustParseDate("1998-03-01")
	if DateString(d) != "1998-03-01" {
		t.Fatalf("round trip gave %s", DateString(d))
	}
	if YearOf(d) != 1998 || MonthOf(d) != 3 {
		t.Fatalf("YearOf=%d MonthOf=%d", YearOf(d), MonthOf(d))
	}
	if DaysFromDate(1970, 1, 1) != 0 {
		t.Fatalf("epoch is not day 0")
	}
	if DaysFromDate(1970, 1, 2) != 1 {
		t.Fatalf("day after epoch is not day 1")
	}
}

func TestMustParseDatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad date")
		}
	}()
	MustParseDate("not-a-date")
}

// Property: Datum round trip through a vector preserves equality.
func TestDatumVectorRoundTripProperty(t *testing.T) {
	f := func(x int64) bool {
		v := New(Int64, 1)
		v.AppendInt64(x)
		return v.Datum(0).Equal(NewInt64Datum(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(s string) bool {
		v := New(String, 1)
		v.AppendString(s)
		return v.Datum(0).Equal(NewStringDatum(s))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is antisymmetric and Equal iff Compare==0.
func TestDatumCompareProperty(t *testing.T) {
	f := func(a, b int64) bool {
		da, db := NewInt64Datum(a), NewInt64Datum(b)
		if da.Compare(db) != -db.Compare(da) {
			return false
		}
		return (da.Compare(db) == 0) == da.Equal(db)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: date string rendering of consecutive days is strictly increasing.
func TestDateOrderingProperty(t *testing.T) {
	f := func(d uint16) bool {
		day := int64(d)
		return DateString(day) < DateString(day+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
