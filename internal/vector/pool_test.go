package vector

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestPoolReusesByTypeAndClass(t *testing.T) {
	var p Pool
	v := p.Get(Int64, 1000)
	if cap(v.I64) < 1000 {
		t.Fatalf("capacity %d < requested 1000", cap(v.I64))
	}
	v.AppendInt64(7)
	p.Put(v)
	got := p.Get(Int64, 1000)
	if got != v {
		t.Skip("sync.Pool dropped the entry (GC or race mode); nothing to assert")
	}
	if got.Len() != 0 {
		t.Fatalf("pooled vector not reset: len=%d", got.Len())
	}
}

func TestPoolClearsStringPayloads(t *testing.T) {
	var p Pool
	v := p.Get(String, 64)
	v.AppendString("pinned")
	p.Put(v)
	// Whether or not the same vector comes back, the Put must have cleared
	// the backing array so old strings are unreachable.
	s := v.Str[:cap(v.Str)]
	for i, x := range s {
		if x != "" {
			t.Fatalf("string slot %d still pins %q after Put", i, x)
		}
	}
}

func TestPoolBatchRoundTrip(t *testing.T) {
	var p Pool
	types := []Type{Int64, Float64, String, Bool}
	b := p.GetBatch(types, 128)
	if b.Width() != 4 || b.Len() != 0 {
		t.Fatalf("fresh batch: width=%d len=%d", b.Width(), b.Len())
	}
	for i, typ := range types {
		if b.Vecs[i].Typ != typ {
			t.Fatalf("col %d type %v, want %v", i, b.Vecs[i].Typ, typ)
		}
	}
	b.Vecs[0].AppendInt64(1)
	b.Sel = []int32{0}
	p.PutBatch(b)
	if b.Vecs != nil || b.Sel != nil {
		t.Fatal("PutBatch must neuter the batch")
	}
}

func TestPoolOutOfClassSizes(t *testing.T) {
	var p Pool
	// Tiny and giant requests still work; giants are simply not pooled.
	small := p.Get(Bool, 1)
	p.Put(small)
	huge := p.Get(Int64, 1<<24)
	if cap(huge.I64) < 1<<24 {
		t.Fatalf("huge capacity %d", cap(huge.I64))
	}
	p.Put(huge) // dropped silently
}

func TestBatchSelectionSemantics(t *testing.T) {
	b := NewBatch([]Type{Int64, String}, 8)
	for i := 0; i < 6; i++ {
		b.Vecs[0].AppendInt64(int64(i * 10))
		b.Vecs[1].AppendString(fmt.Sprintf("r%d", i))
	}
	b.Sel = []int32{1, 3, 5}
	if b.Len() != 3 || b.PhysLen() != 6 {
		t.Fatalf("Len=%d PhysLen=%d", b.Len(), b.PhysLen())
	}
	if r := b.Row(1); r[0].I64 != 30 || r[1].Str != "r3" {
		t.Fatalf("Row(1) = %v", r)
	}
	// Bytes accounts logical rows only.
	if got, dense := b.Bytes(), b.Clone().Bytes(); got != dense {
		t.Fatalf("selective Bytes=%d, compacted clone Bytes=%d", got, dense)
	}
	c := b.Clone()
	if c.Sel != nil || c.Len() != 3 {
		t.Fatalf("clone: sel=%v len=%d", c.Sel, c.Len())
	}
	for i, want := range []int64{10, 30, 50} {
		if c.Vecs[0].I64[i] != want {
			t.Fatalf("clone row %d = %d, want %d", i, c.Vecs[0].I64[i], want)
		}
	}
	// AppendRow maps logical positions through the source selection.
	dst := NewBatch([]Type{Int64, String}, 4)
	dst.AppendRow(b, 2)
	if dst.Vecs[0].I64[0] != 50 || dst.Vecs[1].Str[0] != "r5" {
		t.Fatalf("AppendRow through selection: %v %v", dst.Vecs[0].I64, dst.Vecs[1].Str)
	}
	// Reset drops the selection.
	b.Reset()
	if b.Sel != nil || b.Len() != 0 {
		t.Fatal("Reset must clear the selection")
	}
}

func TestGatherKernels(t *testing.T) {
	src := NewBatch([]Type{Int64, Float64, String, Bool}, 8)
	for i := 0; i < 5; i++ {
		src.Vecs[0].AppendInt64(int64(i))
		src.Vecs[1].AppendFloat64(float64(i) / 2)
		src.Vecs[2].AppendString(fmt.Sprintf("v%d", i))
		src.Vecs[3].AppendBool(i%2 == 0)
	}
	// Dense AppendBatch.
	dst := NewBatch(src.Types(), 8)
	dst.AppendBatch(src)
	if dst.Len() != 5 {
		t.Fatalf("dense append: len=%d", dst.Len())
	}
	// Selective AppendBatch compacts.
	sel := &Batch{Vecs: src.Vecs, Sel: []int32{0, 2, 4}}
	dst.Reset()
	dst.AppendBatch(sel)
	if dst.Len() != 3 || dst.Vecs[0].I64[1] != 2 || dst.Vecs[2].Str[2] != "v4" {
		t.Fatalf("selective append: %v %v", dst.Vecs[0].I64, dst.Vecs[2].Str)
	}
	// Range over a selection.
	dst.Reset()
	dst.AppendBatchRange(sel, 1, 3)
	if dst.Len() != 2 || dst.Vecs[0].I64[0] != 2 || dst.Vecs[0].I64[1] != 4 {
		t.Fatalf("selective range: %v", dst.Vecs[0].I64)
	}
	// Index gather ([]int order arrays).
	dst.Reset()
	dst.AppendBatchIndex(src, []int{4, 0, 3})
	if dst.Vecs[0].I64[0] != 4 || dst.Vecs[0].I64[1] != 0 || dst.Vecs[0].I64[2] != 3 {
		t.Fatalf("index gather: %v", dst.Vecs[0].I64)
	}
	if dst.Vecs[3].B[0] != true || dst.Vecs[3].B[2] != false {
		t.Fatalf("index gather bools: %v", dst.Vecs[3].B)
	}
	// CopyFrom = reset + compact.
	dst.CopyFrom(sel)
	if dst.Len() != 3 || dst.Vecs[1].F64[2] != 2 {
		t.Fatalf("CopyFrom: len=%d %v", dst.Len(), dst.Vecs[1].F64)
	}
}

// poolChurn runs one worker's share of a get/put mix over the hot buckets
// a parallel pipeline hits: typed scratch vectors and whole batches.
func poolChurn(p *Pool, ops int) {
	types := []Type{Int64, Float64, String, Bool}
	batchTypes := []Type{Int64, Float64, String}
	for i := 0; i < ops; i++ {
		v := p.Get(types[i%len(types)], 1024)
		p.Put(v)
		if i%8 == 0 {
			b := p.GetBatch(batchTypes, 1024)
			p.PutBatch(b)
		}
	}
}

// TestPoolParallelNoContentionCollapse drives the same total operation
// count through one worker and through GOMAXPROCS workers sharing one
// pool. With the per-P sync.Pool buckets and cache-line padding the
// parallel wall time must not exceed the serial wall time by more than a
// small factor — a pool serializing on a mutex fails this by an order of
// magnitude under 8+ workers. The bound is deliberately loose (2x) to
// stay robust on noisy CI machines; the benchmark below is the precise
// instrument.
func TestPoolParallelNoContentionCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		t.Skip("needs >= 2 CPUs")
	}
	const totalOps = 400_000
	var p Pool
	poolChurn(&p, totalOps/4) // warm the buckets

	serial := time.Now()
	poolChurn(&p, totalOps)
	serialWall := time.Since(serial)

	var wg sync.WaitGroup
	parallel := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			poolChurn(&p, totalOps/workers)
		}()
	}
	wg.Wait()
	parallelWall := time.Since(parallel)

	if parallelWall > 2*serialWall+10*time.Millisecond {
		t.Fatalf("contention collapse: %d workers took %v for the work one worker does in %v",
			workers, parallelWall, serialWall)
	}
}

// BenchmarkPoolParallelGetPut measures shared-pool scratch churn under
// RunParallel; compare against BenchmarkPoolSerialGetPut with benchstat.
// ns/op staying flat as GOMAXPROCS grows is the no-contention property the
// per-worker pipelines rely on.
func BenchmarkPoolParallelGetPut(b *testing.B) {
	var p Pool
	poolChurn(&p, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v := p.Get(Float64, 1024)
			p.Put(v)
		}
	})
}

// BenchmarkPoolSerialGetPut is the single-goroutine baseline.
func BenchmarkPoolSerialGetPut(b *testing.B) {
	var p Pool
	poolChurn(&p, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := p.Get(Float64, 1024)
		p.Put(v)
	}
}
