package vector

// Batch is a horizontal slice of rows stored column-wise. All vectors in a
// batch have the same length.
//
// A batch may carry a selection vector (X100-style): when Sel is non-nil,
// the batch's logical rows are Sel[0], Sel[1], ... — ascending indexes into
// the physical vectors. Predicates produce selections instead of compacting
// survivors row by row, so a filter is near-zero-copy. Logical accessors
// (Len, Row, AppendRow, Bytes, Clone, the Append* batch kernels) all honour
// Sel; code that indexes Vecs directly must map logical positions through
// RowIdx or iterate the selection itself.
type Batch struct {
	Vecs []*Vector
	Sel  []int32
}

// NewBatch returns a batch with one empty vector per type in types.
func NewBatch(types []Type, capacity int) *Batch {
	b := &Batch{Vecs: make([]*Vector, len(types))}
	for i, t := range types {
		b.Vecs[i] = New(t, capacity)
	}
	return b
}

// Len returns the number of logical rows in the batch.
func (b *Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	if len(b.Vecs) == 0 {
		return 0
	}
	return b.Vecs[0].Len()
}

// PhysLen returns the number of physical rows backing the batch.
func (b *Batch) PhysLen() int {
	if len(b.Vecs) == 0 {
		return 0
	}
	return b.Vecs[0].Len()
}

// RowIdx maps a logical row position to its physical index.
func (b *Batch) RowIdx(i int) int {
	if b.Sel != nil {
		return int(b.Sel[i])
	}
	return i
}

// Width returns the number of columns.
func (b *Batch) Width() int { return len(b.Vecs) }

// Reset truncates all vectors to zero rows and drops the selection.
func (b *Batch) Reset() {
	for _, v := range b.Vecs {
		v.Reset()
	}
	b.Sel = nil
}

// AppendRow appends logical row i of src to b. Schemas must match.
func (b *Batch) AppendRow(src *Batch, i int) {
	i = src.RowIdx(i)
	for c, v := range b.Vecs {
		v.AppendFrom(src.Vecs[c], i)
	}
}

// Row returns logical row i as a slice of datums (for tests and result
// rendering).
func (b *Batch) Row(i int) []Datum {
	i = b.RowIdx(i)
	out := make([]Datum, len(b.Vecs))
	for c, v := range b.Vecs {
		out[c] = v.Datum(i)
	}
	return out
}

// Bytes returns the approximate memory footprint of the batch's logical
// rows (what a compacting Clone would occupy).
func (b *Batch) Bytes() int64 {
	if b.Sel == nil {
		var n int64
		for _, v := range b.Vecs {
			n += v.Bytes()
		}
		return n
	}
	rows := int64(len(b.Sel))
	var n int64
	for _, v := range b.Vecs {
		n += rows * v.Typ.Width()
		if v.Typ == String {
			for _, r := range b.Sel {
				n += int64(len(v.Str[r]))
			}
		}
	}
	return n
}

// Clone deep-copies the batch's logical rows. A selection is compacted
// away: the clone is always dense and owns all of its memory.
func (b *Batch) Clone() *Batch {
	if b.Sel == nil {
		c := &Batch{Vecs: make([]*Vector, len(b.Vecs))}
		for i, v := range b.Vecs {
			c.Vecs[i] = v.Clone()
		}
		return c
	}
	c := NewBatch(b.Types(), len(b.Sel))
	c.AppendBatch(b)
	return c
}

// Types returns the vector types of the batch columns.
func (b *Batch) Types() []Type {
	ts := make([]Type, len(b.Vecs))
	for i, v := range b.Vecs {
		ts[i] = v.Typ
	}
	return ts
}
