package vector

// Batch is a horizontal slice of rows stored column-wise. All vectors in a
// batch have the same length.
type Batch struct {
	Vecs []*Vector
}

// NewBatch returns a batch with one empty vector per type in types.
func NewBatch(types []Type, capacity int) *Batch {
	b := &Batch{Vecs: make([]*Vector, len(types))}
	for i, t := range types {
		b.Vecs[i] = New(t, capacity)
	}
	return b
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int {
	if len(b.Vecs) == 0 {
		return 0
	}
	return b.Vecs[0].Len()
}

// Width returns the number of columns.
func (b *Batch) Width() int { return len(b.Vecs) }

// Reset truncates all vectors to zero rows.
func (b *Batch) Reset() {
	for _, v := range b.Vecs {
		v.Reset()
	}
}

// AppendRow appends row i of src to b. Schemas must match.
func (b *Batch) AppendRow(src *Batch, i int) {
	for c, v := range b.Vecs {
		v.AppendFrom(src.Vecs[c], i)
	}
}

// Row returns row i as a slice of datums (for tests and result rendering).
func (b *Batch) Row(i int) []Datum {
	out := make([]Datum, len(b.Vecs))
	for c, v := range b.Vecs {
		out[c] = v.Datum(i)
	}
	return out
}

// Bytes returns the approximate memory footprint of the batch.
func (b *Batch) Bytes() int64 {
	var n int64
	for _, v := range b.Vecs {
		n += v.Bytes()
	}
	return n
}

// Clone deep-copies the batch.
func (b *Batch) Clone() *Batch {
	c := &Batch{Vecs: make([]*Vector, len(b.Vecs))}
	for i, v := range b.Vecs {
		c.Vecs[i] = v.Clone()
	}
	return c
}

// Types returns the vector types of the batch columns.
func (b *Batch) Types() []Type {
	ts := make([]Type, len(b.Vecs))
	for i, v := range b.Vecs {
		ts[i] = v.Typ
	}
	return ts
}
