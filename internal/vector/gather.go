package vector

// Vectorized copy kernels. These replace the engine's row-at-a-time
// AppendRow loops: the per-row type dispatch of AppendFrom is hoisted out so
// each column is copied (or gathered through a selection) in one tight typed
// loop. They are the compaction half of the selection-vector design —
// consumers that cannot iterate a selection gather it away column-wise.

// RefineSel compacts sel in place to the entries whose flag is set:
// flags[i] judges logical row i, the row sel[i] selects, so len(flags) must
// equal len(sel). The returned slice aliases sel's storage (survivors are
// written to its prefix, which is safe because the write index never passes
// the read index) — the caller must own sel. This is the fused-filter
// kernel: a chain of predicates refines one shared selection vector with no
// intermediate selection buffers.
func RefineSel(sel []int32, flags []bool) []int32 {
	if len(sel) == 0 {
		return sel
	}
	// Hoist the bounds relationship so the loop body carries no slice
	// checks: after this, flags[i] and sel[i] are both provably in range.
	flags = flags[:len(sel)]
	k := 0
	for i, s := range sel {
		// Branch-free compaction: unconditional store, conditional
		// advance. The write index never passes the read index, so the
		// in-place store is safe, and the loop body is a straight-line
		// cmov candidate instead of a mispredicted branch per row.
		sel[k] = s
		if flags[i] {
			k++
		}
	}
	return sel[:k]
}

// AppendAll bulk-appends every row of src to v. Types must match.
func (v *Vector) AppendAll(src *Vector) {
	switch v.Typ {
	case Int64, Date:
		v.I64 = append(v.I64, src.I64...)
	case Float64:
		v.F64 = append(v.F64, src.F64...)
	case String:
		v.Str = append(v.Str, src.Str...)
	case Bool:
		v.B = append(v.B, src.B...)
	}
}

// AppendRange bulk-appends physical rows [lo, hi) of src to v.
func (v *Vector) AppendRange(src *Vector, lo, hi int) {
	switch v.Typ {
	case Int64, Date:
		v.I64 = append(v.I64, src.I64[lo:hi]...)
	case Float64:
		v.F64 = append(v.F64, src.F64[lo:hi]...)
	case String:
		v.Str = append(v.Str, src.Str[lo:hi]...)
	case Bool:
		v.B = append(v.B, src.B[lo:hi]...)
	}
}

// AppendGather appends the physical src rows listed in sel to v. The grow is
// done once up front so the gather loop is a pure indexed store — no append
// bookkeeping or capacity branch per element.
func (v *Vector) AppendGather(src *Vector, sel []int32) {
	n := len(sel)
	if n == 0 {
		return
	}
	switch v.Typ {
	case Int64, Date:
		out := GrowI64(v.I64, n)
		dst, in := out[len(out)-n:], src.I64
		for i, r := range sel {
			dst[i] = in[r]
		}
		v.I64 = out
	case Float64:
		out := GrowF64(v.F64, n)
		dst, in := out[len(out)-n:], src.F64
		for i, r := range sel {
			dst[i] = in[r]
		}
		v.F64 = out
	case String:
		out := GrowStr(v.Str, n)
		dst, in := out[len(out)-n:], src.Str
		for i, r := range sel {
			dst[i] = in[r]
		}
		v.Str = out
	case Bool:
		out := GrowBool(v.B, n)
		dst, in := out[len(out)-n:], src.B
		for i, r := range sel {
			dst[i] = in[r]
		}
		v.B = out
	}
}

// AppendIndex appends the physical src rows listed in idx to v (the []int
// twin of AppendGather, used with sort order arrays).
func (v *Vector) AppendIndex(src *Vector, idx []int) {
	n := len(idx)
	if n == 0 {
		return
	}
	switch v.Typ {
	case Int64, Date:
		out := GrowI64(v.I64, n)
		dst, in := out[len(out)-n:], src.I64
		for i, r := range idx {
			dst[i] = in[r]
		}
		v.I64 = out
	case Float64:
		out := GrowF64(v.F64, n)
		dst, in := out[len(out)-n:], src.F64
		for i, r := range idx {
			dst[i] = in[r]
		}
		v.F64 = out
	case String:
		out := GrowStr(v.Str, n)
		dst, in := out[len(out)-n:], src.Str
		for i, r := range idx {
			dst[i] = in[r]
		}
		v.Str = out
	case Bool:
		out := GrowBool(v.B, n)
		dst, in := out[len(out)-n:], src.B
		for i, r := range idx {
			dst[i] = in[r]
		}
		v.B = out
	}
}

// AppendBatch appends all logical rows of src to b column-wise, compacting
// src's selection if it has one. Schemas must match.
func (b *Batch) AppendBatch(src *Batch) {
	if src.Sel == nil {
		for c, v := range b.Vecs {
			v.AppendAll(src.Vecs[c])
		}
		return
	}
	for c, v := range b.Vecs {
		v.AppendGather(src.Vecs[c], src.Sel)
	}
}

// AppendBatchRange appends logical rows [lo, hi) of src to b column-wise.
func (b *Batch) AppendBatchRange(src *Batch, lo, hi int) {
	if src.Sel == nil {
		for c, v := range b.Vecs {
			v.AppendRange(src.Vecs[c], lo, hi)
		}
		return
	}
	sel := src.Sel[lo:hi]
	for c, v := range b.Vecs {
		v.AppendGather(src.Vecs[c], sel)
	}
}

// AppendBatchIndex appends the logical src rows listed in idx to b
// column-wise. src must be dense (sort arenas always are).
func (b *Batch) AppendBatchIndex(src *Batch, idx []int) {
	for c, v := range b.Vecs {
		v.AppendIndex(src.Vecs[c], idx)
	}
}

// CopyFrom resets b and appends all logical rows of src: selection-aware
// columnar compaction into b's retained capacity.
func (b *Batch) CopyFrom(src *Batch) {
	b.Reset()
	b.AppendBatch(src)
}
