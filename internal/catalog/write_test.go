package catalog

import (
	"sync"
	"testing"

	"recycledb/internal/vector"
)

func writeSchema() Schema {
	return Schema{
		{Name: "id", Typ: vector.Int64},
		{Name: "v", Typ: vector.Float64},
	}
}

func loadN(t *Table, n int) {
	w := t.BeginWrite()
	ap := w.Appender()
	for i := 0; i < n; i++ {
		ap.Int64(0, int64(i))
		ap.Float64(1, float64(i))
		ap.FinishRow()
	}
	w.Commit()
}

func TestWriterCommitPublishesAtomically(t *testing.T) {
	tbl := NewTable("t", writeSchema())
	loadN(tbl, 10)
	if tbl.Rows() != 10 || tbl.DataVersion() != 1 {
		t.Fatalf("rows %d ver %d", tbl.Rows(), tbl.DataVersion())
	}
	snap := tbl.Snapshot()

	w := tbl.BeginWrite()
	if err := w.AppendRow(vector.NewInt64Datum(10), vector.NewFloat64Datum(10)); err != nil {
		t.Fatal(err)
	}
	// Not yet committed: old snapshot and fresh reads both see 10 rows.
	if tbl.Rows() != 10 || tbl.Snapshot().Rows != 10 {
		t.Fatal("uncommitted append visible")
	}
	info := w.Commit()
	if info.PrevRows != 10 || info.Rows != 11 || !info.AppendOnly || info.Appended != 1 {
		t.Fatalf("info = %+v", info)
	}
	if tbl.Rows() != 11 || snap.Rows != 10 {
		t.Fatalf("rows %d snapshot rows %d", tbl.Rows(), snap.Rows)
	}
	if got := tbl.Snapshot().Col(0).I64[10]; got != 10 {
		t.Fatalf("appended value = %d", got)
	}
}

func TestWriterAbortDiscards(t *testing.T) {
	tbl := NewTable("t", writeSchema())
	w := tbl.BeginWrite()
	w.AppendRow(vector.NewInt64Datum(1), vector.NewFloat64Datum(1))
	w.Delete(0)
	w.Abort()
	if tbl.Rows() != 0 || tbl.DataVersion() != 0 {
		t.Fatalf("abort leaked: rows %d ver %d", tbl.Rows(), tbl.DataVersion())
	}
	// The writer lock must be released: a second session proceeds.
	loadN(tbl, 1)
	if tbl.Rows() != 1 {
		t.Fatal("writer lock stuck after Abort")
	}
}

func TestWriterDelete(t *testing.T) {
	tbl := NewTable("t", writeSchema())
	loadN(tbl, 100)
	w := tbl.BeginWrite()
	w.Delete(3, 50, 97, 3 /* dup */, 1000 /* out of range */)
	info := w.Commit()
	if info.Deleted != 3 || info.AppendOnly {
		t.Fatalf("info = %+v", info)
	}
	if tbl.Rows() != 97 {
		t.Fatalf("live rows = %d", tbl.Rows())
	}
	snap := tbl.Snapshot()
	if snap.Live() != 97 || !snap.Deleted(3) || !snap.Deleted(50) || snap.Deleted(4) {
		t.Fatalf("delete bitmap wrong: live=%d", snap.Live())
	}
	if !snap.Del.AnyIn(0, 10) || snap.Del.AnyIn(4, 50) {
		t.Fatal("AnyIn wrong")
	}
	// Re-deleting already-deleted rows is a no-op epoch.
	w2 := tbl.BeginWrite()
	w2.Delete(3)
	info2 := w2.Commit()
	if info2.Deleted != 0 || !info2.AppendOnly {
		t.Fatalf("re-delete info = %+v", info2)
	}
}

func TestCommitListenerOrderingAndVersions(t *testing.T) {
	cat := New()
	tbl := NewTable("t", writeSchema())
	cat.AddTable(tbl)
	schemaVer := cat.Version()
	var got []CommitInfo
	cat.OnCommit(func(tb *Table, info CommitInfo) {
		if tb != tbl {
			t.Errorf("listener got table %q", tb.Name)
		}
		got = append(got, info)
	})
	loadN(tbl, 5)
	w := tbl.BeginWrite()
	w.Delete(0)
	w.Commit()
	if len(got) != 2 || got[0].Appended != 5 || got[1].Deleted != 1 {
		t.Fatalf("listener saw %+v", got)
	}
	if cat.Version() != schemaVer {
		t.Fatal("data commits must not move the schema version")
	}
	if cat.DataVersion() != 2 || tbl.DataVersion() != 2 {
		t.Fatalf("data versions: catalog %d table %d", cat.DataVersion(), tbl.DataVersion())
	}
}

// TestReadersVsWriters runs concurrent scans against a committing writer
// under -race: every snapshot must be internally consistent — it sees a
// committed prefix with the matching delete bitmap, never a torn epoch.
// Consistency check: rows carry v == float64(id); a snapshot must never
// observe a mismatch or a row count outside the committed watermarks.
func TestReadersVsWriters(t *testing.T) {
	tbl := NewTable("t", writeSchema())
	loadN(tbl, 1000)

	const writers = 2
	const readers = 4
	const epochs = 50
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for e := 0; e < epochs; e++ {
				w := tbl.BeginWrite()
				ap := w.Appender()
				base := w.Rows()
				for r := 0; r < 20; r++ {
					ap.Int64(0, int64(base+r))
					ap.Float64(1, float64(base+r))
					ap.FinishRow()
				}
				if e%5 == 4 {
					w.Delete(e * 3)
				}
				w.Commit()
			}
		}(wi)
	}
	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := tbl.Snapshot()
				ids := snap.Col(0)
				vs := snap.Col(1)
				if ids.Len() != snap.Rows || vs.Len() != snap.Rows {
					t.Errorf("torn snapshot: cols %d/%d rows %d", ids.Len(), vs.Len(), snap.Rows)
					return
				}
				live := 0
				for i := 0; i < snap.Rows; i++ {
					if snap.Deleted(i) {
						continue
					}
					live++
					if float64(ids.I64[i]) != vs.F64[i] {
						t.Errorf("row %d: id %d v %f", i, ids.I64[i], vs.F64[i])
						return
					}
				}
				if live != snap.Live() {
					t.Errorf("live count %d, bitmap says %d", live, snap.Live())
					return
				}
			}
		}()
	}
	// Writers finish, then readers are released.
	done := make(chan struct{})
	go func() { defer close(done); wg.Wait() }()
	go func() {
		// Stop readers once writers are done: detect by row count.
		for tbl.Snapshot().Rows < 1000+writers*epochs*20 {
		}
		close(stop)
	}()
	<-done
	if got, want := tbl.Snapshot().Rows, 1000+writers*epochs*20; got != want {
		t.Fatalf("final rows %d want %d", got, want)
	}
}
