// Package catalog implements the in-memory columnar storage layer: base
// tables, their schemas, and registered table functions (used by the
// SkyServer workload's fGetNearbyObjEq). Tables are writable through an
// epoch-versioned single-writer path (see Writer): appends publish a new
// row watermark and deletes publish a new immutable delete bitmap, both
// under a monotonically increasing per-table data version, so scans read a
// consistent per-statement snapshot (Snapshot) while writers proceed. The
// paper leaves update handling / view maintenance out of scope (§II); this
// layer goes beyond it so the recycler can stay correct — and, via append
// delta extension, profitable — under churn (cf. Dursun et al., "Revisiting
// Reuse in Main Memory Database Systems", SIGMOD 2017).
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"recycledb/internal/vector"
)

// Column describes one column of a table or intermediate result.
type Column struct {
	Name string
	Typ  vector.Type
}

// Schema is an ordered list of columns.
type Schema []Column

// ColIndex returns the position of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Types returns the vector types of the schema columns.
func (s Schema) Types() []vector.Type {
	ts := make([]vector.Type, len(s))
	for i, c := range s {
		ts[i] = c.Typ
	}
	return ts
}

// Names returns the column names.
func (s Schema) Names() []string {
	ns := make([]string, 0, len(s))
	for _, c := range s {
		ns = append(ns, c.Name)
	}
	return ns
}

// Table is a columnar table. Column data is stored in one contiguous typed
// slice per column; scans slice a Snapshot of it into batches.
//
// All mutation flows through the single-writer epoch path: BeginWrite
// serializes writers, buffered appends and deletes become visible atomically
// at Commit (new watermark, new delete bitmap, bumped data version), and
// concurrent snapshots keep reading the state they captured. There is no way
// to mutate a table ad hoc during execution — the unsynchronized append the
// seed engine allowed is a compile error now.
type Table struct {
	Name   string
	Schema Schema

	// writeMu serializes writers (one Writer session at a time).
	writeMu sync.Mutex
	// mu guards the column slice headers, rows, and notify against the
	// brief critical section in which Commit publishes a new epoch.
	mu   sync.RWMutex
	cols []*vector.Vector // guarded by mu
	rows int              // committed row watermark (mirrored in watermark); guarded by mu

	watermark atomic.Int64
	dels      atomic.Pointer[DeleteSet]
	dataVer   atomic.Int64

	notify func(*Table, CommitInfo) // guarded by mu

	distinctMu sync.Mutex
	distinct   map[int]int64 // guarded by distinctMu
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema Schema) *Table {
	t := &Table{Name: name, Schema: schema}
	t.cols = make([]*vector.Vector, len(schema))
	for i, c := range schema {
		t.cols[i] = vector.New(c.Typ, 0)
	}
	return t
}

// Rows returns the number of live rows (committed watermark minus deletes).
func (t *Table) Rows() int {
	n := int(t.watermark.Load())
	if d := t.dels.Load(); d != nil {
		n -= d.Count()
	}
	return n
}

// DataVersion returns the table's data version: it advances on every
// committed write epoch (append and/or delete). The recycler tags cached
// results with it and rejects entries computed at another version.
func (t *Table) DataVersion() int64 { return t.dataVer.Load() }

// Snapshot captures a consistent read view of the table: the committed row
// watermark, the column storage up to it, the delete bitmap, and the data
// version, all published atomically by the last Commit. Snapshots stay
// valid — and keep showing exactly their epoch — while writers commit new
// ones.
type Snapshot struct {
	Schema Schema
	// Rows is the physical row watermark (deleted rows included).
	Rows int
	// Ver is the table data version the snapshot captured.
	Ver  int64
	Del  *DeleteSet
	cols []vector.Vector
}

// Snapshot returns the table's current committed snapshot.
func (t *Table) Snapshot() *Snapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := &Snapshot{
		Schema: t.Schema,
		Rows:   t.rows,
		Ver:    t.dataVer.Load(),
		Del:    t.dels.Load(),
		cols:   make([]vector.Vector, len(t.cols)),
	}
	for i, c := range t.cols {
		s.cols[i] = c.Slice(t.rows)
	}
	return s
}

// Col returns the snapshot's column i, bounded to the snapshot watermark.
// Callers must not modify it.
func (s *Snapshot) Col(i int) *vector.Vector { return &s.cols[i] }

// Live returns the number of live (non-deleted) rows in the snapshot.
func (s *Snapshot) Live() int {
	if s.Del == nil {
		return s.Rows
	}
	return s.Rows - s.Del.Count()
}

// Deleted reports whether physical row i is deleted in this snapshot.
func (s *Snapshot) Deleted(i int) bool { return s.Del.Has(i) }

// Bytes returns the approximate footprint of the snapshot's storage.
func (s *Snapshot) Bytes() int64 {
	var n int64
	for i := range s.cols {
		n += s.cols[i].Bytes()
	}
	return n
}

// DeleteSet is an immutable bitmap of deleted physical row positions.
// Writers publish a fresh DeleteSet per epoch; readers never see it change.
type DeleteSet struct {
	bits  []uint64
	count int
}

// Has reports whether row i is deleted. A nil DeleteSet has no deletions.
func (d *DeleteSet) Has(i int) bool {
	if d == nil {
		return false
	}
	w := i >> 6
	if w < 0 || w >= len(d.bits) {
		return false
	}
	return d.bits[w]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of deleted rows.
func (d *DeleteSet) Count() int {
	if d == nil {
		return 0
	}
	return d.count
}

// AnyIn reports whether any row in [lo, hi) is deleted.
func (d *DeleteSet) AnyIn(lo, hi int) bool {
	if d == nil || lo >= hi {
		return false
	}
	if lo < 0 {
		lo = 0
	}
	for w := lo >> 6; w <= (hi-1)>>6 && w < len(d.bits); w++ {
		word := d.bits[w]
		if word == 0 {
			continue
		}
		base := w << 6
		from, to := 0, 64
		if base < lo {
			from = lo - base
		}
		if base+64 > hi {
			to = hi - base
		}
		for b := from; b < to; b++ {
			if word&(1<<uint(b)) != 0 {
				return true
			}
		}
	}
	return false
}

// with returns a new DeleteSet with rows added (already-deleted rows are
// skipped); n bounds the bitmap size in rows.
func (d *DeleteSet) with(rows []int, n int) (*DeleteSet, int) {
	nd := &DeleteSet{bits: make([]uint64, (n+63)/64)}
	if d != nil {
		copy(nd.bits, d.bits)
		nd.count = d.count
	}
	added := 0
	for _, r := range rows {
		if r < 0 || r >= n {
			continue
		}
		w, b := r>>6, uint(r)&63
		if nd.bits[w]&(1<<b) != 0 {
			continue
		}
		nd.bits[w] |= 1 << b
		nd.count++
		added++
	}
	return nd, added
}

// CommitInfo describes one committed write epoch.
type CommitInfo struct {
	// Table is the written table's name.
	Table string
	// PrevRows and Rows are the row watermarks before and after the
	// commit; appended rows occupy [PrevRows, Rows).
	PrevRows, Rows int64
	// Appended and Deleted count the rows this epoch added and removed.
	Appended, Deleted int64
	// AppendOnly reports that the epoch removed nothing — the case the
	// recycler delta-extends cached results for instead of evicting them.
	AppendOnly bool
	// Ver is the table data version after the commit.
	Ver int64
}

// Writer is a single-writer epoch session on one table. Appends and deletes
// buffer inside the session and become visible — all of them, atomically —
// at Commit. Concurrent snapshots (and therefore scans) are never blocked
// for longer than the commit's slice-header publication.
//
// A Writer must be finished with exactly one Commit or Abort; it holds the
// table's writer lock in between.
type Writer struct {
	t        *Table
	pend     []*vector.Vector
	pendRows int
	dels     []int
	done     bool
}

// BeginWrite starts a write epoch, blocking while another writer has one
// open.
func (t *Table) BeginWrite() *Writer {
	t.writeMu.Lock()
	w := &Writer{t: t, pend: make([]*vector.Vector, len(t.Schema))}
	for i, c := range t.Schema {
		w.pend[i] = vector.New(c.Typ, 0)
	}
	return w
}

// AppendRow buffers one row given as datums in schema order.
func (w *Writer) AppendRow(vals ...vector.Datum) error {
	if len(vals) != len(w.t.Schema) {
		return fmt.Errorf("catalog: table %s expects %d values, got %d",
			w.t.Name, len(w.t.Schema), len(vals))
	}
	for i, d := range vals {
		want := w.t.Schema[i].Typ
		got := d.Typ
		if want != got && !(want == vector.Date && got == vector.Int64) {
			return fmt.Errorf("catalog: table %s column %s expects %v, got %v",
				w.t.Name, w.t.Schema[i].Name, want, got)
		}
		w.pend[i].AppendDatum(d)
	}
	w.pendRows++
	return nil
}

// Appender returns the fast columnar appender over this write session. The
// generator packages use it to avoid per-row interface churn.
func (w *Writer) Appender() *Appender { return &Appender{w: w} }

// Delete buffers physical row positions (relative to the committed
// watermark) for deletion. Rows already deleted or out of range are ignored
// at commit; the returned count is the rows newly buffered here.
func (w *Writer) Delete(rows ...int) int {
	w.dels = append(w.dels, rows...)
	return len(rows)
}

// Rows returns the committed row watermark the session started from plus
// the rows buffered so far.
func (w *Writer) Rows() int { return int(w.t.watermark.Load()) + w.pendRows }

// Commit publishes the epoch: buffered rows are bulk-appended to column
// storage, buffered deletes become a fresh delete bitmap, the watermark and
// data version advance, and registered commit listeners run (still under
// the writer lock, so invalidation is ordered with respect to the next
// write). Commit panics if the columnar appender left ragged columns.
func (w *Writer) Commit() CommitInfo {
	if w.done {
		panic("catalog: Commit on a finished Writer")
	}
	w.done = true
	t := w.t
	for i, p := range w.pend {
		if p.Len() != w.pendRows {
			panic(fmt.Sprintf("catalog: table %s column %s has %d pending values for %d rows",
				t.Name, t.Schema[i].Name, p.Len(), w.pendRows))
		}
	}
	t.mu.Lock()
	prev := t.rows
	for i, p := range w.pend {
		if p.Len() > 0 {
			t.cols[i].AppendAll(p)
		}
	}
	t.rows += w.pendRows
	deleted := 0
	if len(w.dels) > 0 {
		nd, added := t.dels.Load().with(w.dels, t.rows)
		if added > 0 {
			t.dels.Store(nd)
			deleted = added
		}
	}
	t.watermark.Store(int64(t.rows))
	ver := t.dataVer.Add(1)
	notify := t.notify
	t.mu.Unlock()
	t.distinctMu.Lock()
	t.distinct = nil // cached distinct counts are stale now
	t.distinctMu.Unlock()
	info := CommitInfo{
		Table:      t.Name,
		PrevRows:   int64(prev),
		Rows:       int64(t.rows),
		Appended:   int64(w.pendRows),
		Deleted:    int64(deleted),
		AppendOnly: deleted == 0,
		Ver:        ver,
	}
	if notify != nil {
		notify(t, info)
	}
	t.writeMu.Unlock()
	return info
}

// Abort discards the session's buffered appends and deletes.
func (w *Writer) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.t.writeMu.Unlock()
}

// AppendRows appends the given rows in a single committed epoch — the
// convenience path for loaders and tests. Concurrent scans observe either
// none or all of the rows.
func (t *Table) AppendRows(rows ...[]vector.Datum) error {
	w := t.BeginWrite()
	for _, r := range rows {
		if err := w.AppendRow(r...); err != nil {
			w.Abort()
			return err
		}
	}
	w.Commit()
	return nil
}

// Appender is the columnar bulk-load interface of a write session: one
// typed append per column, then FinishRow. Values become visible at the
// session's Commit.
type Appender struct {
	w *Writer
}

// Int64 appends v to column c (Int64 or Date typed).
func (a *Appender) Int64(c int, v int64) { a.w.pend[c].AppendInt64(v) }

// Float64 appends v to column c.
func (a *Appender) Float64(c int, v float64) { a.w.pend[c].AppendFloat64(v) }

// String appends v to column c.
func (a *Appender) String(c int, v string) { a.w.pend[c].AppendString(v) }

// Bool appends v to column c.
func (a *Appender) Bool(c int, v bool) { a.w.pend[c].AppendBool(v) }

// FinishRow marks one complete row appended; callers must have appended
// exactly one value to every column since the last call.
func (a *Appender) FinishRow() { a.w.pendRows++ }

// DistinctCount returns the number of distinct values in the named column,
// computed lazily over the current snapshot and cached until the next
// commit. The proactive cube-caching heuristic uses it (§IV-B: only extend
// GROUP BY with low-cardinality columns). Deleted rows still count; the
// heuristic needs magnitudes, not exactness.
func (t *Table) DistinctCount(col string) int64 {
	i := t.Schema.ColIndex(col)
	if i < 0 {
		return -1
	}
	t.distinctMu.Lock()
	defer t.distinctMu.Unlock()
	if t.distinct == nil {
		t.distinct = make(map[int]int64)
	}
	if d, ok := t.distinct[i]; ok {
		return d
	}
	v := t.Snapshot().Col(i)
	var d int64
	switch v.Typ {
	case vector.Int64, vector.Date:
		set := make(map[int64]struct{})
		for _, x := range v.I64 {
			set[x] = struct{}{}
		}
		d = int64(len(set))
	case vector.Float64:
		set := make(map[float64]struct{})
		for _, x := range v.F64 {
			set[x] = struct{}{}
		}
		d = int64(len(set))
	case vector.String:
		set := make(map[string]struct{})
		for _, x := range v.Str {
			set[x] = struct{}{}
		}
		d = int64(len(set))
	case vector.Bool:
		d = 2
	}
	t.distinct[i] = d
	return d
}

// Bytes returns the approximate footprint of the table.
func (t *Table) Bytes() int64 {
	return t.Snapshot().Bytes()
}

// TableFunc is a parameterized table-producing function (a leaf in query
// plans, like SkyServer's fGetNearbyObjEq). Invoke must be deterministic for
// identical arguments and table contents: the recycler caches its results.
type TableFunc struct {
	Name   string
	Schema Schema
	// Tables names the base tables Invoke reads, so the recycler can
	// invalidate cached results when they change. Empty means unknown:
	// results are then invalidated on every committed write to any table.
	Tables []string
	// Invoke computes the full function result. The catalog is passed so
	// functions can read base tables (through Table.Snapshot).
	Invoke func(cat *Catalog, args []vector.Datum) (*Result, error)
}

// Result is a fully materialized row set (used by table functions and by the
// operator-at-a-time baseline engine).
type Result struct {
	Schema  Schema
	Batches []*vector.Batch
}

// Rows returns the total number of rows in the result.
func (r *Result) Rows() int {
	n := 0
	for _, b := range r.Batches {
		n += b.Len()
	}
	return n
}

// Bytes returns the approximate footprint of the result.
func (r *Result) Bytes() int64 {
	var n int64
	for _, b := range r.Batches {
		n += b.Bytes()
	}
	return n
}

// Catalog is a named collection of tables and table functions. It is safe
// for concurrent readers; registration is expected at load time.
type Catalog struct {
	mu        sync.RWMutex
	tables    map[string]*Table     // guarded by mu
	funcs     map[string]*TableFunc // guarded by mu
	version   atomic.Int64
	dataVer   atomic.Int64
	listeners []func(*Table, CommitInfo) // guarded by mu
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: make(map[string]*Table),
		funcs:  make(map[string]*TableFunc),
	}
}

// Version counts schema changes only: tables or functions added or
// replaced. Compiled-plan caches compare it to reject plans built against
// an older schema snapshot. Data changes (committed write epochs) advance
// the per-table DataVersion of the written table and the catalog-wide
// DataVersion instead.
func (c *Catalog) Version() int64 { return c.version.Load() }

// DataVersion counts committed write epochs across all registered tables.
// Cached results whose exact base tables are unknown (table functions
// without lineage) are tagged with it and invalidated whenever it moves.
func (c *Catalog) DataVersion() int64 { return c.dataVer.Load() }

// OnCommit registers a listener invoked after every committed write epoch
// on any registered table, while the committing table's writer lock is
// still held (so invalidation is ordered before the next write). The
// recycler's invalidation walk hangs off this.
func (c *Catalog) OnCommit(f func(*Table, CommitInfo)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.listeners = append(c.listeners, f)
}

// dispatchCommit bumps the catalog data version and fans a commit out to
// the registered listeners.
func (c *Catalog) dispatchCommit(t *Table, info CommitInfo) {
	c.dataVer.Add(1)
	c.mu.RLock()
	ls := c.listeners
	c.mu.RUnlock()
	for _, f := range ls {
		f(t, info)
	}
}

// AddTable registers a table, replacing any previous table of the same name.
func (c *Catalog) AddTable(t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[t.Name] = t
	c.version.Add(1)
	cat := c
	t.mu.Lock()
	t.notify = cat.dispatchCommit
	t.mu.Unlock()
}

// CreateTable registers a new table, failing if the name is taken. The
// check and the registration share one critical section, so two concurrent
// CREATE TABLE of the same name cannot both succeed.
func (c *Catalog) CreateTable(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[t.Name]; dup {
		return fmt.Errorf("catalog: table %q already exists", t.Name)
	}
	c.tables[t.Name] = t
	c.version.Add(1)
	t.mu.Lock()
	t.notify = c.dispatchCommit
	t.mu.Unlock()
	return nil
}

// ErrUnknownTable is wrapped by lookups of tables (and table functions)
// that do not exist, for errors.Is matching at the API boundary.
var ErrUnknownTable = errors.New("catalog: unknown table")

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownTable, name)
	}
	return t, nil
}

// TableNames returns the sorted names of all tables.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AddFunc registers a table function.
func (c *Catalog) AddFunc(f *TableFunc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.funcs[f.Name] = f
	c.version.Add(1)
}

// Func returns the named table function.
func (c *Catalog) Func(name string) (*TableFunc, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.funcs[name]
	if !ok {
		return nil, fmt.Errorf("%w function %q", ErrUnknownTable, name)
	}
	return f, nil
}
