// Package catalog implements the in-memory columnar storage layer: base
// tables, their schemas, and registered table functions (used by the
// SkyServer workload's fGetNearbyObjEq). Tables are append-only; the paper
// leaves update handling / view maintenance out of scope (§II) and so do we.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"recycledb/internal/vector"
)

// Column describes one column of a table or intermediate result.
type Column struct {
	Name string
	Typ  vector.Type
}

// Schema is an ordered list of columns.
type Schema []Column

// ColIndex returns the position of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Types returns the vector types of the schema columns.
func (s Schema) Types() []vector.Type {
	ts := make([]vector.Type, len(s))
	for i, c := range s {
		ts[i] = c.Typ
	}
	return ts
}

// Names returns the column names.
func (s Schema) Names() []string {
	ns := make([]string, len(s))
	for i, c := range s {
		ns[i] = c.Name
	}
	return ns
}

// Table is an append-only columnar table. Column data is stored in one
// contiguous typed slice per column; scans slice it into batches.
type Table struct {
	Name   string
	Schema Schema
	cols   []*vector.Vector
	rows   int

	distinctMu sync.Mutex
	distinct   map[int]int64
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema Schema) *Table {
	t := &Table{Name: name, Schema: schema}
	t.cols = make([]*vector.Vector, len(schema))
	for i, c := range schema {
		t.cols[i] = vector.New(c.Typ, 0)
	}
	return t
}

// Rows returns the number of rows in the table.
func (t *Table) Rows() int { return t.rows }

// Col returns the full column vector at position i. Callers must not
// modify it.
func (t *Table) Col(i int) *vector.Vector { return t.cols[i] }

// AppendRow appends one row given as datums in schema order.
func (t *Table) AppendRow(vals ...vector.Datum) error {
	if len(vals) != len(t.Schema) {
		return fmt.Errorf("catalog: table %s expects %d values, got %d",
			t.Name, len(t.Schema), len(vals))
	}
	for i, d := range vals {
		want := t.Schema[i].Typ
		got := d.Typ
		if want != got && !(want == vector.Date && got == vector.Int64) {
			return fmt.Errorf("catalog: table %s column %s expects %v, got %v",
				t.Name, t.Schema[i].Name, want, got)
		}
		t.cols[i].AppendDatum(d)
	}
	t.rows++
	return nil
}

// Appender returns a fast columnar appender for bulk loads. The generator
// packages use it to avoid per-row interface churn.
type Appender struct {
	t *Table
}

// Appender returns a bulk appender for the table.
func (t *Table) Appender() *Appender { return &Appender{t: t} }

// Int64 appends v to column c (Int64 or Date typed).
func (a *Appender) Int64(c int, v int64) { a.t.cols[c].AppendInt64(v) }

// Float64 appends v to column c.
func (a *Appender) Float64(c int, v float64) { a.t.cols[c].AppendFloat64(v) }

// String appends v to column c.
func (a *Appender) String(c int, v string) { a.t.cols[c].AppendString(v) }

// Bool appends v to column c.
func (a *Appender) Bool(c int, v bool) { a.t.cols[c].AppendBool(v) }

// FinishRow marks one complete row appended; callers must have appended
// exactly one value to every column since the last call.
func (a *Appender) FinishRow() { a.t.rows++ }

// DistinctCount returns the number of distinct values in the named column,
// computed lazily and cached. The proactive cube-caching heuristic uses it
// (§IV-B: only extend GROUP BY with low-cardinality columns).
func (t *Table) DistinctCount(col string) int64 {
	i := t.Schema.ColIndex(col)
	if i < 0 {
		return -1
	}
	t.distinctMu.Lock()
	defer t.distinctMu.Unlock()
	if t.distinct == nil {
		t.distinct = make(map[int]int64)
	}
	if d, ok := t.distinct[i]; ok {
		return d
	}
	v := t.cols[i]
	var d int64
	switch v.Typ {
	case vector.Int64, vector.Date:
		set := make(map[int64]struct{})
		for _, x := range v.I64 {
			set[x] = struct{}{}
		}
		d = int64(len(set))
	case vector.Float64:
		set := make(map[float64]struct{})
		for _, x := range v.F64 {
			set[x] = struct{}{}
		}
		d = int64(len(set))
	case vector.String:
		set := make(map[string]struct{})
		for _, x := range v.Str {
			set[x] = struct{}{}
		}
		d = int64(len(set))
	case vector.Bool:
		d = 2
	}
	t.distinct[i] = d
	return d
}

// Bytes returns the approximate footprint of the table.
func (t *Table) Bytes() int64 {
	var n int64
	for _, c := range t.cols {
		n += c.Bytes()
	}
	return n
}

// TableFunc is a parameterized table-producing function (a leaf in query
// plans, like SkyServer's fGetNearbyObjEq). Invoke must be deterministic for
// identical arguments: the recycler caches its results.
type TableFunc struct {
	Name   string
	Schema Schema
	// Invoke computes the full function result. The catalog is passed so
	// functions can read base tables.
	Invoke func(cat *Catalog, args []vector.Datum) (*Result, error)
}

// Result is a fully materialized row set (used by table functions and by the
// operator-at-a-time baseline engine).
type Result struct {
	Schema  Schema
	Batches []*vector.Batch
}

// Rows returns the total number of rows in the result.
func (r *Result) Rows() int {
	n := 0
	for _, b := range r.Batches {
		n += b.Len()
	}
	return n
}

// Bytes returns the approximate footprint of the result.
func (r *Result) Bytes() int64 {
	var n int64
	for _, b := range r.Batches {
		n += b.Bytes()
	}
	return n
}

// Catalog is a named collection of tables and table functions. It is safe
// for concurrent readers; registration is expected at load time.
type Catalog struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	funcs   map[string]*TableFunc
	version atomic.Int64
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: make(map[string]*Table),
		funcs:  make(map[string]*TableFunc),
	}
}

// Version counts schema changes (tables or functions added/replaced).
// Compiled-plan caches compare it to reject plans built against an older
// schema snapshot.
func (c *Catalog) Version() int64 { return c.version.Load() }

// AddTable registers a table, replacing any previous table of the same name.
func (c *Catalog) AddTable(t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[t.Name] = t
	c.version.Add(1)
}

// ErrUnknownTable is wrapped by lookups of tables (and table functions)
// that do not exist, for errors.Is matching at the API boundary.
var ErrUnknownTable = errors.New("catalog: unknown table")

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownTable, name)
	}
	return t, nil
}

// TableNames returns the sorted names of all tables.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AddFunc registers a table function.
func (c *Catalog) AddFunc(f *TableFunc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.funcs[f.Name] = f
	c.version.Add(1)
}

// Func returns the named table function.
func (c *Catalog) Func(name string) (*TableFunc, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.funcs[name]
	if !ok {
		return nil, fmt.Errorf("%w function %q", ErrUnknownTable, name)
	}
	return f, nil
}
