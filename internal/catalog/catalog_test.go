package catalog

import (
	"testing"

	"recycledb/internal/vector"
)

func testSchema() Schema {
	return Schema{
		{Name: "id", Typ: vector.Int64},
		{Name: "name", Typ: vector.String},
		{Name: "score", Typ: vector.Float64},
	}
}

func TestSchemaColIndex(t *testing.T) {
	s := testSchema()
	if s.ColIndex("name") != 1 {
		t.Fatalf("ColIndex(name) = %d", s.ColIndex("name"))
	}
	if s.ColIndex("missing") != -1 {
		t.Fatalf("ColIndex(missing) = %d", s.ColIndex("missing"))
	}
}

func TestSchemaTypesNames(t *testing.T) {
	s := testSchema()
	ts := s.Types()
	if len(ts) != 3 || ts[0] != vector.Int64 || ts[2] != vector.Float64 {
		t.Fatalf("Types = %v", ts)
	}
	ns := s.Names()
	if ns[0] != "id" || ns[1] != "name" || ns[2] != "score" {
		t.Fatalf("Names = %v", ns)
	}
}

func TestTableAppendRow(t *testing.T) {
	tbl := NewTable("t", testSchema())
	err := tbl.AppendRows([]vector.Datum{
		vector.NewInt64Datum(1),
		vector.NewStringDatum("a"),
		vector.NewFloat64Datum(0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 1 {
		t.Fatalf("Rows = %d", tbl.Rows())
	}
	if tbl.Snapshot().Col(1).Str[0] != "a" {
		t.Fatalf("col 1 = %v", tbl.Snapshot().Col(1).Str)
	}
}

func TestTableAppendRowArityError(t *testing.T) {
	tbl := NewTable("t", testSchema())
	if err := tbl.AppendRows([]vector.Datum{vector.NewInt64Datum(1)}); err == nil {
		t.Fatal("expected arity error")
	}
	if tbl.Rows() != 0 {
		t.Fatalf("aborted write left %d rows", tbl.Rows())
	}
}

func TestTableAppendRowTypeError(t *testing.T) {
	tbl := NewTable("t", testSchema())
	err := tbl.AppendRows([]vector.Datum{
		vector.NewStringDatum("oops"),
		vector.NewStringDatum("a"),
		vector.NewFloat64Datum(0.5),
	})
	if err == nil {
		t.Fatal("expected type error")
	}
}

func TestTableAppendRowDateAcceptsInt64(t *testing.T) {
	tbl := NewTable("d", Schema{{Name: "day", Typ: vector.Date}})
	if err := tbl.AppendRows([]vector.Datum{vector.NewInt64Datum(10)}); err != nil {
		t.Fatalf("date column should accept int64 datum: %v", err)
	}
	if tbl.Snapshot().Col(0).I64[0] != 10 {
		t.Fatal("stored value mismatch")
	}
}

func TestAppenderBulkLoad(t *testing.T) {
	tbl := NewTable("t", testSchema())
	w := tbl.BeginWrite()
	ap := w.Appender()
	for i := 0; i < 100; i++ {
		ap.Int64(0, int64(i))
		ap.String(1, "row")
		ap.Float64(2, float64(i)/2)
		ap.FinishRow()
	}
	if tbl.Rows() != 0 {
		t.Fatalf("uncommitted rows visible: Rows = %d", tbl.Rows())
	}
	w.Commit()
	if tbl.Rows() != 100 {
		t.Fatalf("Rows = %d", tbl.Rows())
	}
	if tbl.Snapshot().Col(0).I64[99] != 99 {
		t.Fatalf("last id = %d", tbl.Snapshot().Col(0).I64[99])
	}
	if tbl.Bytes() <= 0 {
		t.Fatal("Bytes should be positive")
	}
}

func TestCatalogTables(t *testing.T) {
	c := New()
	c.AddTable(NewTable("b", testSchema()))
	c.AddTable(NewTable("a", testSchema()))
	if _, err := c.Table("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("zzz"); err == nil {
		t.Fatal("expected unknown table error")
	}
	names := c.TableNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("TableNames = %v", names)
	}
}

func TestCatalogFuncs(t *testing.T) {
	c := New()
	f := &TableFunc{
		Name:   "f",
		Schema: Schema{{Name: "x", Typ: vector.Int64}},
		Invoke: func(cat *Catalog, args []vector.Datum) (*Result, error) {
			b := vector.NewBatch([]vector.Type{vector.Int64}, 1)
			b.Vecs[0].AppendInt64(args[0].I64 * 2)
			return &Result{
				Schema:  Schema{{Name: "x", Typ: vector.Int64}},
				Batches: []*vector.Batch{b},
			}, nil
		},
	}
	c.AddFunc(f)
	got, err := c.Func("f")
	if err != nil {
		t.Fatal(err)
	}
	res, err := got.Invoke(c, []vector.Datum{vector.NewInt64Datum(21)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 1 || res.Batches[0].Vecs[0].I64[0] != 42 {
		t.Fatalf("Invoke result = %+v", res)
	}
	if _, err := c.Func("nope"); err == nil {
		t.Fatal("expected unknown function error")
	}
}

func TestResultRowsBytes(t *testing.T) {
	b1 := vector.NewBatch([]vector.Type{vector.Int64}, 2)
	b1.Vecs[0].AppendInt64(1)
	b1.Vecs[0].AppendInt64(2)
	b2 := vector.NewBatch([]vector.Type{vector.Int64}, 1)
	b2.Vecs[0].AppendInt64(3)
	r := &Result{Batches: []*vector.Batch{b1, b2}}
	if r.Rows() != 3 {
		t.Fatalf("Rows = %d", r.Rows())
	}
	if r.Bytes() != 24 {
		t.Fatalf("Bytes = %d", r.Bytes())
	}
}
