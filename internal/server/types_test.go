package server

import (
	"encoding/binary"
	"math"
	"testing"

	"recycledb/internal/vector"
)

func TestDecodeTextParam(t *testing.T) {
	big := "9007199254740993" // 2^53+1: must stay an exact int64
	cases := []struct {
		name string
		oid  int32
		in   string
		want any
		err  bool
	}{
		{"int8", oidInt8, "42", int64(42), false},
		{"int8_big_exact", oidInt8, big, int64(9007199254740993), false},
		{"int8_garbage", oidInt8, "4x", nil, true},
		{"numeric_integer_stays_exact", oidNumeric, big, int64(9007199254740993), false},
		{"numeric_fraction", oidNumeric, "2.5", 2.5, false},
		{"float8_integer_stays_exact", oidFloat8, big, int64(9007199254740993), false},
		{"bool_t", oidBool, "t", true, false},
		{"bool_off", oidBool, "off", false, false},
		{"bool_bad", oidBool, "maybe", nil, true},
		{"date", oidDate, "1996-03-15", vector.NewDateDatum(vector.MustParseDate("1996-03-15")), false},
		{"date_bad", oidDate, "96-3-15", nil, true},
		{"text", oidText, "hello", "hello", false},
		{"unknown_int", oidUnknown, "17", int64(17), false},
		{"unknown_float", oidUnknown, "1.5", 1.5, false},
		{"unknown_date", oidUnknown, "1996-03-15", vector.NewDateDatum(vector.MustParseDate("1996-03-15")), false},
		{"unknown_text", oidUnknown, "kangaroo", "kangaroo", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := decodeTextParam(tc.oid, tc.in)
			if tc.err {
				if err == nil {
					t.Fatalf("want error, got %v", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if gd, ok := got.(vector.Datum); ok {
				if !gd.Equal(tc.want.(vector.Datum)) {
					t.Fatalf("got %v, want %v", got, tc.want)
				}
				return
			}
			if got != tc.want {
				t.Fatalf("got %#v, want %#v", got, tc.want)
			}
		})
	}
}

func TestDecodeBinaryParam(t *testing.T) {
	be32 := func(v uint32) []byte { b := make([]byte, 4); binary.BigEndian.PutUint32(b, v); return b }
	be64 := func(v uint64) []byte { b := make([]byte, 8); binary.BigEndian.PutUint64(b, v); return b }

	if got, err := decodeBinaryParam(oidInt4, be32(uint32(0xFFFFFFFF))); err != nil || got.(int64) != -1 {
		t.Fatalf("int4: got %v, %v", got, err)
	}
	if got, err := decodeBinaryParam(oidInt8, be64(uint64(1)<<53+1)); err != nil || got.(int64) != int64(1)<<53+1 {
		t.Fatalf("int8: got %v, %v", got, err)
	}
	// float4 binaries arrive as the float32 they are; the engine widens
	// exactly, never through the shorter decimal rendering.
	f32 := float32(0.1)
	got, err := decodeBinaryParam(oidFloat4, be32(math.Float32bits(f32)))
	if err != nil {
		t.Fatal(err)
	}
	if got.(float32) != f32 {
		t.Fatalf("float4: got %v", got)
	}
	if got, err := decodeBinaryParam(oidFloat8, be64(math.Float64bits(2.5))); err != nil || got.(float64) != 2.5 {
		t.Fatalf("float8: got %v, %v", got, err)
	}
	// Binary DATE is days since 2000-01-01; the engine speaks days since
	// 1970-01-01.
	gd, err := decodeBinaryParam(oidDate, be32(0))
	if err != nil {
		t.Fatal(err)
	}
	if d := gd.(vector.Datum); d.I64 != vector.MustParseDate("2000-01-01") {
		t.Fatalf("date epoch: got %d, want %d", d.I64, vector.MustParseDate("2000-01-01"))
	}
	if _, err := decodeBinaryParam(oidInt4, []byte{1, 2}); err == nil {
		t.Fatal("want length error")
	}
	if _, err := decodeBinaryParam(oidNumeric, be64(0)); err == nil {
		t.Fatal("want unsupported-binary error for numeric")
	}
}

func TestAppendDatumText(t *testing.T) {
	iv := vector.New(vector.Int64, 1)
	iv.AppendInt64(math.MaxInt64)
	if got := string(appendDatumText(nil, iv, 0)); got != "9223372036854775807" {
		t.Fatalf("int: %q", got)
	}
	fv := vector.New(vector.Float64, 3)
	fv.AppendFloat64(2.5)
	fv.AppendFloat64(math.Inf(-1))
	fv.AppendFloat64(math.NaN())
	if got := string(appendDatumText(nil, fv, 0)); got != "2.5" {
		t.Fatalf("float: %q", got)
	}
	if got := string(appendDatumText(nil, fv, 1)); got != "-Infinity" {
		t.Fatalf("inf: %q", got)
	}
	if got := string(appendDatumText(nil, fv, 2)); got != "NaN" {
		t.Fatalf("nan: %q", got)
	}
	dv := vector.New(vector.Date, 1)
	dv.AppendInt64(vector.MustParseDate("1998-12-01"))
	if got := string(appendDatumText(nil, dv, 0)); got != "1998-12-01" {
		t.Fatalf("date: %q", got)
	}
	bv := vector.New(vector.Bool, 2)
	bv.AppendBool(true)
	bv.AppendBool(false)
	if got := string(appendDatumText(nil, bv, 0)); got != "t" {
		t.Fatalf("bool: %q", got)
	}
	if got := string(appendDatumText(nil, bv, 1)); got != "f" {
		t.Fatalf("bool: %q", got)
	}
}

func TestParseTimeoutValue(t *testing.T) {
	cases := map[string]int64{
		"250":   250,
		"0":     0,
		"1s":    1000,
		"50ms":  50,
		"2min":  120000,
		"500us": 0, // rounds below 1ms but parses
	}
	for in, wantMS := range cases {
		d, err := parseTimeoutValue(in)
		if err != nil {
			t.Errorf("%q: %v", in, err)
			continue
		}
		if in == "500us" {
			if d.Microseconds() != 500 {
				t.Errorf("%q: got %v", in, d)
			}
			continue
		}
		if d.Milliseconds() != wantMS {
			t.Errorf("%q: got %v, want %dms", in, d, wantMS)
		}
	}
	for _, bad := range []string{"-1", "abc", "1fortnight"} {
		if _, err := parseTimeoutValue(bad); err == nil {
			t.Errorf("%q: want error", bad)
		}
	}
}
