package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"recycledb"
	"recycledb/internal/catalog"
	"recycledb/internal/pgclient"
	"recycledb/internal/vector"
)

// loadBig populates a "big" table with rows synthetic rows.
func loadBig(e *recycledb.Engine, rows int) {
	t := catalog.NewTable("big", catalog.Schema{
		{Name: "region", Typ: vector.String},
		{Name: "product", Typ: vector.Int64},
		{Name: "amount", Typ: vector.Float64},
		{Name: "qty", Typ: vector.Int64},
		{Name: "day", Typ: vector.Date},
	})
	rng := rand.New(rand.NewSource(7))
	regions := []string{"north", "south", "east", "west"}
	base := vector.MustParseDate("1996-01-01")
	w := t.BeginWrite()
	ap := w.Appender()
	for i := 0; i < rows; i++ {
		ap.String(0, regions[rng.Intn(len(regions))])
		ap.Int64(1, int64(rng.Intn(20)))
		ap.Float64(2, float64(rng.Intn(10000))/100)
		ap.Int64(3, int64(1+rng.Intn(50)))
		ap.Int64(4, base+int64(rng.Intn(1095)))
		ap.FinishRow()
	}
	w.Commit()
	e.Catalog().AddTable(t)
}

// loadProbe populates "probe", a join partner for big with query-unique
// column names (the dialect resolves unqualified columns across the whole
// query). Joining big with probe on product = product2 multiplies out to
// rows*probeRows/20 intermediate rows — the reliably-slow statement the
// timeout, cancel, and admission tests need.
func loadProbe(e *recycledb.Engine, rows int) {
	t := catalog.NewTable("probe", catalog.Schema{
		{Name: "product2", Typ: vector.Int64},
		{Name: "weight", Typ: vector.Float64},
	})
	rng := rand.New(rand.NewSource(11))
	w := t.BeginWrite()
	ap := w.Appender()
	for i := 0; i < rows; i++ {
		ap.Int64(0, int64(rng.Intn(20)))
		ap.Float64(1, float64(rng.Intn(1000))/10)
		ap.FinishRow()
	}
	w.Commit()
	e.Catalog().AddTable(t)
}

// slowJoin is the statement the interruption tests run: far too slow to
// finish before a 30ms timeout or a 100ms cancel on any hardware.
const slowJoin = `SELECT count(*) AS n FROM big, probe WHERE product = product2`

// startServer spins up a server on a loopback listener and returns its
// address plus an idempotent stop that drains it.
func startServer(t *testing.T, eng *recycledb.Engine, cfg Config) (string, *Server, func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 3 * time.Second
	}
	srv := New(eng, cfg)
	ctx, cancel := context.WithCancel(t.Context())
	done := make(chan struct{})
	go func() {
		_ = srv.Serve(ctx, lis)
		close(done)
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
	t.Cleanup(stop)
	return lis.Addr().String(), srv, stop
}

func dial(t *testing.T, addr string) *pgclient.Conn {
	t.Helper()
	c, err := pgclient.Dial(t.Context(), addr, "tester")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestSimpleExtendedEquivalence runs the same query through the simple and
// extended protocols and requires identical results, including schema.
func TestSimpleExtendedEquivalence(t *testing.T) {
	eng := recycledb.New(recycledb.Config{})
	loadBig(eng, 20000)
	addr, _, _ := startServer(t, eng, Config{})
	c := dial(t, addr)

	simple, err := c.Query(`SELECT region, sum(amount) AS total, count(*) AS n FROM big WHERE qty > 25 GROUP BY region ORDER BY region`)
	if err != nil {
		t.Fatal(err)
	}
	if len(simple) != 1 || len(simple[0].Rows) != 4 {
		t.Fatalf("simple: got %+v", simple)
	}
	if simple[0].Tag != "SELECT 4" {
		t.Fatalf("simple tag: %q", simple[0].Tag)
	}

	if err := c.Prepare("q1", `SELECT region, sum(amount) AS total, count(*) AS n FROM big WHERE qty > $1 GROUP BY region ORDER BY region`); err != nil {
		t.Fatal(err)
	}
	ext, err := c.Exec("q1", "25")
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.Rows) != len(simple[0].Rows) {
		t.Fatalf("row count: simple %d, extended %d", len(simple[0].Rows), len(ext.Rows))
	}
	if len(ext.Columns) != 3 || ext.Columns[0] != "region" || ext.Columns[1] != "total" || ext.Columns[2] != "n" {
		t.Fatalf("extended columns: %v", ext.Columns)
	}
	for i := range ext.Rows {
		for j := range ext.Rows[i] {
			if ext.Rows[i][j] != simple[0].Rows[i][j] {
				t.Fatalf("row %d col %d: simple %q, extended %q",
					i, j, simple[0].Rows[i][j], ext.Rows[i][j])
			}
		}
	}
}

// TestWireDMLAndMultiStatement covers DDL + DML tags and multi-statement
// simple queries.
func TestWireDMLAndMultiStatement(t *testing.T) {
	eng := recycledb.New(recycledb.Config{})
	addr, _, _ := startServer(t, eng, Config{})
	c := dial(t, addr)

	res, err := c.Query(`CREATE TABLE kv (k int, v string)`)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Tag != "CREATE TABLE" {
		t.Fatalf("tag: %q", res[0].Tag)
	}
	res, err = c.Query(`INSERT INTO kv (k, v) VALUES (1, 'a'), (2, 'b'); SELECT k, v FROM kv ORDER BY k; DELETE FROM kv WHERE k = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("want 3 results, got %d: %+v", len(res), res)
	}
	if res[0].Tag != "INSERT 0 2" || res[2].Tag != "DELETE 1" {
		t.Fatalf("tags: %q %q", res[0].Tag, res[2].Tag)
	}
	if len(res[1].Rows) != 2 || res[1].Rows[0][1] != "a" {
		t.Fatalf("select result: %+v", res[1])
	}

	// Extended-protocol DML with parameters.
	if err := c.Prepare("ins", `INSERT INTO kv (k, v) VALUES ($1, $2)`); err != nil {
		t.Fatal(err)
	}
	r, err := c.Exec("ins", "7", "seven")
	if err != nil {
		t.Fatal(err)
	}
	if r.Tag != "INSERT 0 1" {
		t.Fatalf("tag: %q", r.Tag)
	}
}

// TestErrorsAndRecovery checks SQLSTATE mapping and that a session keeps
// working after errors in both protocols.
func TestErrorsAndRecovery(t *testing.T) {
	eng := recycledb.New(recycledb.Config{})
	loadBig(eng, 100)
	addr, _, _ := startServer(t, eng, Config{})
	c := dial(t, addr)

	_, err := c.Query(`SELEC wrong`)
	var se *pgclient.ServerError
	if !errors.As(err, &se) || se.Code != "42601" {
		t.Fatalf("want 42601 syntax error, got %v", err)
	}
	_, err = c.Query(`SELECT x FROM nosuch`)
	if !errors.As(err, &se) || se.Code != "42P01" {
		t.Fatalf("want 42P01 undefined table, got %v", err)
	}
	// Extended: error arms ignore-till-sync; Sync resyncs and the session
	// keeps serving.
	if err := c.Prepare("bad", `SELECT * FROM nowhere`); !errors.As(err, &se) || se.Code != "42P01" {
		t.Fatalf("want 42P01 from Parse, got %v", err)
	}
	res, err := c.Query(`SELECT count(*) AS n FROM big`)
	if err != nil || res[0].Rows[0][0] != "100" {
		t.Fatalf("session broken after errors: %v %+v", err, res)
	}
}

// TestUtilityStatements covers SET/SHOW/BEGIN and the live recycling_mode
// knob.
func TestUtilityStatements(t *testing.T) {
	eng := recycledb.New(recycledb.Config{})
	addr, _, _ := startServer(t, eng, Config{})
	c := dial(t, addr)

	res, err := c.Query(`BEGIN; COMMIT; SET statement_timeout = 5000; SHOW statement_timeout`)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Tag != "BEGIN" || res[1].Tag != "COMMIT" || res[2].Tag != "SET" {
		t.Fatalf("tags: %+v", res)
	}
	if res[3].Rows[0][0] != "5000ms" {
		t.Fatalf("statement_timeout: %+v", res[3])
	}
	if _, err := c.Query(`SET recycling_mode = 'speculative'`); err != nil {
		t.Fatal(err)
	}
	if eng.Mode() != recycledb.Speculative {
		t.Fatalf("recycling_mode knob did not reach the engine: %v", eng.Mode())
	}
	res, err = c.Query(`SHOW recycling_mode`)
	if err != nil || res[0].Rows[0][0] != "speculative" {
		t.Fatalf("show recycling_mode: %v %+v", err, res)
	}
}

// TestStatementTimeout sets a tiny timeout over a long-running join and
// expects SQLSTATE 57014, with the session alive afterwards.
func TestStatementTimeout(t *testing.T) {
	eng := recycledb.New(recycledb.Config{})
	loadBig(eng, 20000)
	loadProbe(eng, 20000)
	addr, _, _ := startServer(t, eng, Config{})
	c := dial(t, addr)

	if _, err := c.Query(`SET statement_timeout = 30`); err != nil {
		t.Fatal(err)
	}
	// ~20M intermediate join rows: far beyond 30ms on any hardware.
	_, err := c.Query(slowJoin)
	var se *pgclient.ServerError
	if !errors.As(err, &se) || se.Code != "57014" {
		t.Fatalf("want 57014 query_canceled, got %v", err)
	}
	if _, err := c.Query(`SET statement_timeout = 0`); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(`SELECT count(*) AS n FROM big`)
	if err != nil || res[0].Rows[0][0] != "20000" {
		t.Fatalf("session broken after timeout: %v %+v", err, res)
	}
}

// TestCancelRequest cancels a long statement through the out-of-band wire
// protocol and expects 57014 on the victim connection.
func TestCancelRequest(t *testing.T) {
	eng := recycledb.New(recycledb.Config{})
	loadBig(eng, 20000)
	loadProbe(eng, 20000)
	addr, _, _ := startServer(t, eng, Config{})
	c := dial(t, addr)

	errc := make(chan error, 1)
	go func() {
		_, err := c.Query(slowJoin)
		errc <- err
	}()
	time.Sleep(100 * time.Millisecond)
	if err := c.Cancel(t.Context()); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		var se *pgclient.ServerError
		if !errors.As(err, &se) || se.Code != "57014" {
			t.Fatalf("want 57014 after CancelRequest, got %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("cancel did not interrupt the statement")
	}
}

// TestPortalSuspension fetches a result in row-limited Execute chunks and
// verifies no row is lost or duplicated across suspensions — including
// limits that split a batch mid-way.
func TestPortalSuspension(t *testing.T) {
	eng := recycledb.New(recycledb.Config{})
	loadBig(eng, 5000)
	addr, _, _ := startServer(t, eng, Config{})
	c := dial(t, addr)

	if err := c.Prepare("scan", `SELECT product, qty FROM big WHERE qty > $1`); err != nil {
		t.Fatal(err)
	}
	full, err := c.Exec("scan", "10")
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rows) == 0 {
		t.Fatal("empty full result")
	}
	if err := c.Bind("p1", "scan", "10"); err != nil {
		t.Fatal(err)
	}
	var chunked [][]string
	for i := 0; ; i++ {
		res, suspended, err := c.ExecutePortal("p1", 700) // not a batch multiple
		if err != nil {
			t.Fatal(err)
		}
		chunked = append(chunked, res.Rows...)
		if !suspended {
			break
		}
		if i > len(full.Rows) {
			t.Fatal("portal never completed")
		}
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(chunked) != len(full.Rows) {
		t.Fatalf("chunked fetch lost rows: %d vs %d", len(chunked), len(full.Rows))
	}
	for i := range chunked {
		if chunked[i][0] != full.Rows[i][0] || chunked[i][1] != full.Rows[i][1] {
			t.Fatalf("row %d differs: %v vs %v", i, chunked[i], full.Rows[i])
		}
	}
}

// TestAdmissionFairness caps execution at 1, parks a heavy statement on
// the slot, and verifies that queued statements (a) wait rather than run
// concurrently, (b) complete once the slot frees, and (c) hold no engine
// worker budget while queued.
func TestAdmissionFairness(t *testing.T) {
	eng := recycledb.New(recycledb.Config{})
	loadBig(eng, 20000)
	loadProbe(eng, 200000) // ~200M intermediate join rows: outlives the 1.5s timeout
	addr, srv, _ := startServer(t, eng, Config{MaxConcurrent: 1})

	hog := dial(t, addr)
	if _, err := hog.Query(`SET statement_timeout = 1500`); err != nil {
		t.Fatal(err)
	}
	hogDone := make(chan error, 1)
	go func() {
		_, err := hog.Query(slowJoin) // holds the slot until the 1.5s timeout
		hogDone <- err
	}()
	time.Sleep(150 * time.Millisecond)

	// While the slot is held, queued statements must not execute (the
	// engine sees exactly one active statement) yet must not be rejected.
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(t.Context(), 60*time.Second)
			defer cancel()
			c, err := pgclient.Dial(ctx, addr, "waiter")
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			res, err := c.Query(`SELECT region, sum(amount) AS total FROM big GROUP BY region`)
			if err != nil {
				errs <- err
				return
			}
			if len(res[0].Rows) != 4 {
				errs <- fmt.Errorf("bad result: %+v", res)
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	if n := eng.ActiveStatements(); n > 1 {
		t.Errorf("admission leak: %d statements executing with a 1-slot gate", n)
	}
	if st := srv.Stats(); st.StmtsQueued == 0 {
		t.Error("no statements queued while the slot was held")
	}

	var se *pgclient.ServerError
	if err := <-hogDone; !errors.As(err, &se) || se.Code != "57014" {
		t.Fatalf("hog statement: want 57014 timeout, got %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.AdmissionWaits == 0 {
		t.Fatal("statements through a held 1-slot gate never counted a wait")
	}
	if st.StmtsExecuting != 0 || st.StmtsQueued != 0 {
		t.Fatalf("admission counters leaked: %+v", st)
	}
}

// TestStalePreparedCrossSession prepares on one connection, runs DDL on
// another, and executes the prepared statement on the first — the
// transparent-recompile path, over the wire.
func TestStalePreparedCrossSession(t *testing.T) {
	eng := recycledb.New(recycledb.Config{})
	loadBig(eng, 1000)
	addr, _, _ := startServer(t, eng, Config{})
	a := dial(t, addr)
	b := dial(t, addr)

	if err := a.Prepare("q", `SELECT count(*) AS n FROM big WHERE qty > $1`); err != nil {
		t.Fatal(err)
	}
	before, err := a.Exec("q", "25")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Query(`CREATE TABLE newcomer (id int)`); err != nil {
		t.Fatal(err)
	}
	after, err := a.Exec("q", "25")
	if err != nil {
		t.Fatalf("prepared statement died after another session's DDL: %v", err)
	}
	if before.Rows[0][0] != after.Rows[0][0] {
		t.Fatalf("recompile changed the answer: %v vs %v", before.Rows, after.Rows)
	}
}

// TestMidStreamDisconnect kills connections that are mid-result and
// verifies every statement slot drains back and the server keeps serving.
// This is the wire-level companion of TestRowsConcurrentCloseRace.
func TestMidStreamDisconnect(t *testing.T) {
	eng := recycledb.New(recycledb.Config{})
	loadBig(eng, 100000)
	addr, _, _ := startServer(t, eng, Config{WriteTimeout: 2 * time.Second})

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				ctx, cancel := context.WithTimeout(t.Context(), 30*time.Second)
				c, err := pgclient.Dial(ctx, addr, "killer")
				if err != nil {
					cancel()
					t.Error(err)
					return
				}
				done := make(chan struct{})
				go func() {
					_, _ = c.Query(`SELECT region, product, amount, qty FROM big WHERE qty > 1`)
					close(done)
				}()
				time.Sleep(time.Duration((i+j)%5) * time.Millisecond)
				_ = c.KillRaw()
				<-done
				cancel()
			}
		}(i)
	}
	wg.Wait()

	// Slots drain asynchronously as connection goroutines unwind.
	deadline := time.Now().Add(5 * time.Second)
	for eng.ActiveStatements() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d statement slots still held after disconnect storm", eng.ActiveStatements())
		}
		time.Sleep(10 * time.Millisecond)
	}
	c := dial(t, addr)
	res, err := c.Query(`SELECT count(*) AS n FROM big`)
	if err != nil || res[0].Rows[0][0] != "100000" {
		t.Fatalf("server broken after disconnect storm: %v %+v", err, res)
	}
}

// TestGracefulDrain cancels Serve while a statement runs: the in-flight
// statement completes and delivers its result; afterwards the listener is
// closed and existing idle sessions are gone.
func TestGracefulDrain(t *testing.T) {
	eng := recycledb.New(recycledb.Config{})
	loadBig(eng, 200000)
	addr, _, stop := startServer(t, eng, Config{DrainTimeout: 10 * time.Second})
	busy := dial(t, addr)
	idle := dial(t, addr)

	type outcome struct {
		res []pgclient.Result
		err error
	}
	out := make(chan outcome, 1)
	go func() {
		res, err := busy.Query(`SELECT region, sum(amount) AS total, count(*) AS n FROM big GROUP BY region`)
		out <- outcome{res, err}
	}()
	time.Sleep(20 * time.Millisecond)
	stop() // cancel Serve's ctx; returns after drain

	o := <-out
	if o.err != nil {
		t.Fatalf("in-flight statement did not survive drain: %v", o.err)
	}
	if len(o.res) != 1 || len(o.res[0].Rows) != 4 {
		t.Fatalf("drained statement returned %+v", o.res)
	}
	if _, err := idle.Query(`SELECT 1`); err == nil {
		t.Fatal("idle connection survived drain")
	}
	ctx, cancel := context.WithTimeout(t.Context(), time.Second)
	defer cancel()
	if _, err := pgclient.Dial(ctx, addr, "late"); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

// TestConnectionCap rejects over-cap connections with FATAL 53300.
func TestConnectionCap(t *testing.T) {
	eng := recycledb.New(recycledb.Config{})
	addr, _, _ := startServer(t, eng, Config{MaxConns: 1})
	_ = dial(t, addr)
	time.Sleep(20 * time.Millisecond) // let the first session register
	ctx, cancel := context.WithTimeout(t.Context(), 5*time.Second)
	defer cancel()
	_, err := pgclient.Dial(ctx, addr, "overflow")
	var se *pgclient.ServerError
	if !errors.As(err, &se) || se.Code != "53300" {
		t.Fatalf("want 53300 too_many_connections, got %v", err)
	}
}

// TestManyConnectionsSmoke is the in-tree slice of the pgbench-style load:
// 64 concurrent connections, a few queries each, zero errors.
func TestManyConnectionsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke skipped in -short")
	}
	eng := recycledb.New(recycledb.Config{})
	loadBig(eng, 20000)
	addr, srv, _ := startServer(t, eng, Config{})

	const conns = 64
	var wg sync.WaitGroup
	var failures sync.Map
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(t.Context(), 120*time.Second)
			defer cancel()
			c, err := pgclient.Dial(ctx, addr, "smoke"+strconv.Itoa(i))
			if err != nil {
				failures.Store(i, err)
				return
			}
			defer c.Close()
			if err := c.Prepare("q", `SELECT region, sum(amount) AS total FROM big WHERE qty > $1 GROUP BY region`); err != nil {
				failures.Store(i, err)
				return
			}
			for j := 0; j < 5; j++ {
				if _, err := c.Exec("q", pgclient.Itoa(int64(j%40))); err != nil {
					failures.Store(i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	failures.Range(func(k, v any) bool {
		t.Errorf("conn %v: %v", k, v)
		return true
	})
	if st := srv.Stats(); st.ConnsAccepted < conns {
		t.Fatalf("accepted %d connections, want %d", st.ConnsAccepted, conns)
	}
}
