// Package server is recycledb's network front end: a PostgreSQL wire
// protocol (v3) server over the engine's streaming Query/Prepare/Rows API.
//
// The protocol subset is what real clients need day to day: startup with
// trust auth, the simple query protocol ('Q'), the extended protocol
// (Parse/Bind/Describe/Execute/Close/Flush/Sync), text-format results,
// CancelRequest, and a handful of utility statements (SET / SHOW /
// BEGIN / COMMIT no-ops) so stock drivers and psql connect cleanly.
//
// Architecturally each connection is one goroutine running a
// read-decode-execute-write loop. Query results are never materialized
// server-side: each Rows batch is encoded into the outgoing buffer as
// DataRow messages and the buffer flushes through the kernel socket — a
// slow client blocks the write, which stalls Rows.Next, which stalls the
// pipeline at a batch boundary. Backpressure is the transport, exactly the
// evaluate-into-consumer push-pipe idiom: the socket is the consumer the
// pipeline evaluates into.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frontend (client → server) message type bytes.
const (
	msgQuery     = 'Q'
	msgParse     = 'P'
	msgBind      = 'B'
	msgDescribe  = 'D'
	msgExecute   = 'E'
	msgClose     = 'C'
	msgFlush     = 'H'
	msgSync      = 'S'
	msgTerminate = 'X'
	msgPassword  = 'p'
)

// Backend (server → client) message type bytes.
const (
	msgAuth             = 'R'
	msgParameterStatus  = 'S'
	msgBackendKeyData   = 'K'
	msgReadyForQuery    = 'Z'
	msgRowDescription   = 'T'
	msgDataRow          = 'D'
	msgCommandComplete  = 'C'
	msgEmptyQuery       = 'I'
	msgErrorResponse    = 'E'
	msgNoticeResponse   = 'N'
	msgParseComplete    = '1'
	msgBindComplete     = '2'
	msgCloseComplete    = '3'
	msgNoData           = 'n'
	msgParamDescription = 't'
	msgPortalSuspended  = 's'
)

// Startup-phase request codes (no leading type byte).
const (
	protocolVersion3 = 196608 // 3.0
	sslRequestCode   = 80877103
	gssEncReqCode    = 80877104
	cancelReqCode    = 80877102
)

// maxStartupLen bounds the startup packet; maxMsgLen bounds any typed
// message. Both guard against a garbage length word making the server
// allocate gigabytes for one frame.
const (
	maxStartupLen = 16 * 1024
	maxMsgLen     = 64 * 1024 * 1024
)

var errMsgTooLong = errors.New("pgwire: message exceeds maximum length")

// readN reads exactly n bytes.
func readN(r io.Reader, n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// readStartup reads one startup-phase packet: a length-prefixed frame with
// no type byte. It returns the packet body (after the length word).
func readStartup(r io.Reader) ([]byte, error) {
	hdr, err := readN(r, 4)
	if err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr))
	if n < 4 || n > maxStartupLen {
		return nil, fmt.Errorf("pgwire: bad startup packet length %d", n)
	}
	return readN(r, n-4)
}

// readTyped reads one typed message: a type byte, a length word (including
// itself), and the body.
func readTyped(r io.Reader) (byte, []byte, error) {
	hdr, err := readN(r, 5)
	if err != nil {
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[1:]))
	if n < 4 || n > maxMsgLen {
		return 0, nil, fmt.Errorf("pgwire: bad message length %d", n)
	}
	body, err := readN(r, n-4)
	if err != nil {
		return 0, nil, err
	}
	return hdr[0], body, nil
}

// readBuf is a cursor over a received message body.
type readBuf struct {
	b   []byte
	pos int
}

func (r *readBuf) int32() (int32, error) {
	if r.pos+4 > len(r.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := int32(binary.BigEndian.Uint32(r.b[r.pos:]))
	r.pos += 4
	return v, nil
}

func (r *readBuf) int16() (int16, error) {
	if r.pos+2 > len(r.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := int16(binary.BigEndian.Uint16(r.b[r.pos:]))
	r.pos += 2
	return v, nil
}

func (r *readBuf) byte() (byte, error) {
	if r.pos >= len(r.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := r.b[r.pos]
	r.pos++
	return v, nil
}

// cstring reads a NUL-terminated string.
func (r *readBuf) cstring() (string, error) {
	for i := r.pos; i < len(r.b); i++ {
		if r.b[i] == 0 {
			s := string(r.b[r.pos:i])
			r.pos = i + 1
			return s, nil
		}
	}
	return "", io.ErrUnexpectedEOF
}

// bytes reads n raw bytes.
func (r *readBuf) bytes(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.b) {
		return nil, io.ErrUnexpectedEOF
	}
	v := r.b[r.pos : r.pos+n]
	r.pos += n
	return v, nil
}

// writeBuf accumulates outgoing messages. Messages are framed locally
// (beginMsg/endMsg patch the length word) and the whole buffer is handed to
// the connection's buffered writer; the socket write is where backpressure
// from slow clients materializes.
type writeBuf struct {
	buf    []byte
	msgize int // offset of the current message's length word
}

func (w *writeBuf) beginMsg(typ byte) {
	w.buf = append(w.buf, typ, 0, 0, 0, 0)
	w.msgize = len(w.buf) - 4
}

func (w *writeBuf) endMsg() {
	binary.BigEndian.PutUint32(w.buf[w.msgize:], uint32(len(w.buf)-w.msgize))
}

func (w *writeBuf) int32(v int32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, uint32(v))
}

func (w *writeBuf) int16(v int16) {
	w.buf = binary.BigEndian.AppendUint16(w.buf, uint16(v))
}

func (w *writeBuf) byte(v byte) { w.buf = append(w.buf, v) }

func (w *writeBuf) string(s string) {
	w.buf = append(w.buf, s...)
	w.buf = append(w.buf, 0)
}

func (w *writeBuf) bytes(b []byte) { w.buf = append(w.buf, b...) }

// reset drops buffered output (after it has been written out).
func (w *writeBuf) reset() { w.buf = w.buf[:0] }

// SQLSTATE codes the server emits.
const (
	codeSyntaxError         = "42601"
	codeUndefinedTable      = "42P01"
	codeUndefinedColumn     = "42703"
	codeQueryCanceled       = "57014"
	codeTooManyConns        = "53300"
	codeAdmissionRejected   = "53400"
	codeProtocolViolation   = "08P01"
	codeFeatureNotSupported = "0A000"
	codeInvalidSQLStateStmt = "26000" // invalid_sql_statement_name
	codeInvalidCursorName   = "34000"
	codeAdminShutdown       = "57P01"
	codeInternalError       = "XX000"
)
