package server

import (
	"context"
	"sync/atomic"
)

// admission caps the number of concurrently *executing* statements across
// all sessions. Statements beyond the cap queue FIFO on the semaphore
// channel (Go parks channel senders in arrival order) and crucially do NOT
// hold engine resources while queued: Engine.beginStatement — the
// parallelism division across in-flight statements — only runs once a slot
// is acquired, so a hundred queued statements don't shrink the worker
// budget of the ones actually executing.
type admission struct {
	sem     chan struct{}
	queued  atomic.Int64
	active  atomic.Int64
	waits   atomic.Int64 // acquisitions that had to queue
	rejects atomic.Int64 // acquisitions abandoned (ctx expired while queued)
}

// newAdmission builds a controller admitting up to limit concurrent
// statements; limit <= 0 means unlimited (acquire never blocks).
func newAdmission(limit int) *admission {
	a := &admission{}
	if limit > 0 {
		a.sem = make(chan struct{}, limit)
	}
	return a
}

// acquire blocks until a statement slot is free or ctx expires. The
// caller's statement timeout covers queueing: a statement that waited its
// whole budget in the queue fails as canceled without ever executing.
func (a *admission) acquire(ctx context.Context) error {
	if a.sem == nil {
		a.active.Add(1)
		return nil
	}
	select {
	case a.sem <- struct{}{}:
		a.active.Add(1)
		return nil
	default:
	}
	a.waits.Add(1)
	a.queued.Add(1)
	defer a.queued.Add(-1)
	select {
	case a.sem <- struct{}{}:
		a.active.Add(1)
		return nil
	case <-ctx.Done():
		a.rejects.Add(1)
		return ctx.Err()
	}
}

// release returns a slot.
func (a *admission) release() {
	a.active.Add(-1)
	if a.sem != nil {
		<-a.sem
	}
}
