package server

import (
	"reflect"
	"strings"
	"testing"
)

func TestTranslateParams(t *testing.T) {
	cases := []struct {
		in      string
		want    string
		order   []int
		nparams int
		errSub  string
	}{
		{in: `SELECT 1`, want: `SELECT 1`, order: nil, nparams: 0},
		{in: `SELECT a FROM t WHERE b > $1`, want: `SELECT a FROM t WHERE b > ?`,
			order: []int{0}, nparams: 1},
		{in: `SELECT a FROM t WHERE b > $2 AND c < $1`, want: `SELECT a FROM t WHERE b > ? AND c < ?`,
			order: []int{1, 0}, nparams: 2},
		{in: `SELECT a FROM t WHERE b = $1 OR c = $1`, want: `SELECT a FROM t WHERE b = ? OR c = ?`,
			order: []int{0, 0}, nparams: 1},
		{in: `SELECT '$1' FROM t WHERE b = $1`, want: `SELECT '$1' FROM t WHERE b = ?`,
			order: []int{0}, nparams: 1},
		{in: `SELECT 'it''s $2' FROM t`, want: `SELECT 'it''s $2' FROM t`, order: nil, nparams: 0},
		{in: `SELECT "$1" FROM t`, want: `SELECT "$1" FROM t`, order: nil, nparams: 0},
		{in: "SELECT a -- $1\nFROM t WHERE b = $1", want: "SELECT a -- $1\nFROM t WHERE b = ?",
			order: []int{0}, nparams: 1},
		{in: `SELECT a /* $1 /* $2 */ */ FROM t`, want: `SELECT a /* $1 /* $2 */ */ FROM t`,
			order: nil, nparams: 0},
		{in: `SELECT $$body$$`, errSub: "dollar-quoted"},
		{in: `SELECT $0`, errSub: "bad parameter number"},
	}
	for _, tc := range cases {
		got, order, n, err := translateParams(tc.in)
		if tc.errSub != "" {
			if err == nil || !strings.Contains(err.Error(), tc.errSub) {
				t.Errorf("%q: want error containing %q, got %v", tc.in, tc.errSub, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%q: translated to %q, want %q", tc.in, got, tc.want)
		}
		if !reflect.DeepEqual(order, tc.order) {
			t.Errorf("%q: order %v, want %v", tc.in, order, tc.order)
		}
		if n != tc.nparams {
			t.Errorf("%q: nparams %d, want %d", tc.in, n, tc.nparams)
		}
	}
}

func TestReorderArgs(t *testing.T) {
	got, err := reorderArgs([]int{1, 0, 1}, []any{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []any{"b", "a", "b"}) {
		t.Fatalf("got %v", got)
	}
	if _, err := reorderArgs([]int{2}, []any{"a"}); err == nil {
		t.Fatal("want error for missing parameter")
	}
}

func TestSplitStatements(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"SELECT 1", []string{"SELECT 1"}},
		{"SELECT 1; SELECT 2", []string{"SELECT 1", "SELECT 2"}},
		{"SELECT 1;;  ;", []string{"SELECT 1"}},
		{"SELECT 'a;b'; SELECT 2", []string{"SELECT 'a;b'", "SELECT 2"}},
		{`SELECT ";" FROM "t;u"`, []string{`SELECT ";" FROM "t;u"`}},
		{"SELECT 1 -- tail; not a split\n; SELECT 2", []string{"SELECT 1 -- tail; not a split", "SELECT 2"}},
		{"/* x;y */ SELECT 1", []string{"/* x;y */ SELECT 1"}},
		{"", nil},
		{"   ", nil},
	}
	for _, tc := range cases {
		got := splitStatements(tc.in)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%q: got %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestUtilityKeyword(t *testing.T) {
	cases := map[string]string{
		"SET statement_timeout = 100": "set",
		"  show server_version ;":     "show",
		"BEGIN":                       "begin",
		"START TRANSACTION":           "start",
		"start work":                  "",
		"COMMIT;":                     "commit",
		"SELECT 1":                    "",
		"settle the question":         "",
	}
	for in, want := range cases {
		if got := utilityKeyword(in); got != want {
			t.Errorf("%q: got %q, want %q", in, got, want)
		}
	}
}
