package server

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/binary"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"recycledb"
)

// Config tunes a Server. The zero value serves with sensible defaults:
// unlimited connections, admission capped at 4x the engine's worker count,
// no statement timeout, 5s drain.
type Config struct {
	// MaxConns caps concurrent connections; beyond it new connections get
	// a FATAL 53300 and close. 0 = unlimited.
	MaxConns int
	// MaxConcurrent caps concurrently *executing* statements (admission
	// control). Queued statements wait FIFO without holding engine
	// resources. 0 = DefaultMaxConcurrent(engine); negative = unlimited.
	MaxConcurrent int
	// StatementTimeout is the default per-statement deadline, covering
	// admission queueing and execution. Sessions override it with SET
	// statement_timeout. 0 = none.
	StatementTimeout time.Duration
	// WriteTimeout bounds each socket flush, so a wedged client (not
	// reading, TCP window full) cannot pin a connection goroutine and its
	// stalled pipeline forever. 0 = no bound.
	WriteTimeout time.Duration
	// DrainTimeout is how long Serve waits for in-flight statements after
	// its context is canceled before force-closing connections.
	DrainTimeout time.Duration
	// ServerVersion is reported in the server_version parameter.
	ServerVersion string
}

// DefaultMaxConcurrent is the admission cap used when Config.MaxConcurrent
// is 0: four statements per engine worker — enough concurrency to keep
// workers busy across think-time gaps, bounded enough that the engine's
// per-statement parallelism division retains meaningful budgets.
func DefaultMaxConcurrent(workers int) int {
	if workers < 1 {
		workers = 1
	}
	return 4 * workers
}

// Stats is a snapshot of server counters.
type Stats struct {
	ConnsAccepted  int64
	ConnsRejected  int64
	ConnsActive    int64
	StmtsExecuting int64
	StmtsQueued    int64
	AdmissionWaits int64
	AdmissionDrops int64
	CancelRequests int64
	ErrorsSent     int64
}

// Server serves the PostgreSQL wire protocol over a recycledb engine. One
// Server multiplexes any number of client sessions onto the shared engine;
// the engine's own concurrency rules (snapshot scans, epoch-atomic writes,
// worker division across in-flight statements) are the isolation story, the
// server adds connection lifecycle, admission, and timeouts on top.
type Server struct {
	eng *recycledb.Engine
	cfg Config
	adm *admission

	mu       sync.Mutex
	sessions map[int32]*sessionEntry // guarded by mu
	nextPID  int32                   // guarded by mu
	draining bool                    // guarded by mu

	connsAccepted  atomic.Int64
	connsRejected  atomic.Int64
	connsActive    atomic.Int64
	cancelRequests atomic.Int64
	errorsSent     atomic.Int64
}

// sessionEntry is the server's handle on one live session: the cancel key,
// the connection (for force-close), and the statement cancel hook that
// CancelRequest and drain poke.
type sessionEntry struct {
	sess   *session
	secret int32

	mu         sync.Mutex
	busy       bool               // guarded by mu — inside dispatch
	stmtCancel context.CancelFunc // guarded by mu — cancels the executing statement
}

// New builds a server over eng.
func New(eng *recycledb.Engine, cfg Config) *Server {
	if cfg.MaxConcurrent == 0 {
		cfg.MaxConcurrent = DefaultMaxConcurrent(eng.Workers())
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.ServerVersion == "" {
		cfg.ServerVersion = "13.0 (recycledb)"
	}
	return &Server{
		eng:      eng,
		cfg:      cfg,
		adm:      newAdmission(cfg.MaxConcurrent),
		sessions: make(map[int32]*sessionEntry),
	}
}

// Serve accepts connections on lis until ctx is canceled, then drains:
// stops accepting, lets in-flight statements finish (up to DrainTimeout),
// closes idle connections immediately, and force-cancels whatever remains.
// It returns after all connection goroutines exit.
func (s *Server) Serve(ctx context.Context, lis net.Listener) error {
	var wg sync.WaitGroup
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			s.beginDrain()
			lis.Close()
		case <-done:
		}
	}()
	for {
		conn, err := lis.Accept()
		if err != nil {
			close(done)
			break
		}
		if s.cfg.MaxConns > 0 && s.connsActive.Load() >= int64(s.cfg.MaxConns) {
			s.connsRejected.Add(1)
			rejectConn(conn)
			continue
		}
		s.connsAccepted.Add(1)
		s.connsActive.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.connsActive.Add(-1)
			s.handleConn(ctx, conn)
		}()
	}
	// Drain: connections notice draining before their next command; those
	// blocked reading an idle socket are closed outright; executing
	// statements get DrainTimeout before their contexts are canceled.
	s.closeIdleSessions()
	finished := make(chan struct{})
	go func() {
		wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(s.cfg.DrainTimeout):
		s.forceCloseSessions()
		<-finished
	}
	return ctx.Err()
}

func (s *Server) handleConn(ctx context.Context, conn net.Conn) {
	// Detach from Serve's cancellation: canceling Serve begins the drain,
	// it must not instantly kill every in-flight statement. Sessions die
	// when their client disconnects, or when the drain window expires and
	// forceCloseSessions cancels them explicitly.
	sctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	defer cancel()
	sess := &session{
		srv:         s,
		conn:        conn,
		br:          bufio.NewReaderSize(conn, 8*1024),
		bw:          bufio.NewWriterSize(conn, 8*1024),
		ctx:         sctx,
		cancel:      cancel,
		params:      make(map[string]string),
		stmts:       make(map[string]*preparedStmt),
		portals:     make(map[string]*portal),
		stmtTimeout: s.cfg.StatementTimeout,
	}
	sess.pid, sess.secret = s.register(sess)
	defer s.deregister(sess.pid)
	defer conn.Close()
	_ = sess.serve()
}

// register assigns a backend PID and cancel secret.
func (s *Server) register(sess *session) (pid, secret int32) {
	var b [4]byte
	_, _ = rand.Read(b[:])
	secret = int32(binary.BigEndian.Uint32(b[:]))
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextPID++
	pid = s.nextPID
	s.sessions[pid] = &sessionEntry{sess: sess, secret: secret}
	return pid, secret
}

func (s *Server) deregister(pid int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.sessions, pid)
}

// cancelBackend services a wire CancelRequest: find the session by PID,
// verify the secret, cancel whatever statement it is executing. Unknown
// keys are ignored silently, per protocol.
func (s *Server) cancelBackend(pid, secret int32) {
	s.mu.Lock()
	e := s.sessions[pid]
	s.mu.Unlock()
	if e == nil || e.secret != secret {
		return
	}
	s.cancelRequests.Add(1)
	e.mu.Lock()
	cancel := e.stmtCancel
	e.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// setStatementCancel installs (or clears, with nil) the executing
// statement's cancel func for CancelRequest delivery.
func (s *Server) setStatementCancel(pid int32, cancel context.CancelFunc) {
	s.mu.Lock()
	e := s.sessions[pid]
	s.mu.Unlock()
	if e == nil {
		return
	}
	e.mu.Lock()
	e.stmtCancel = cancel
	e.mu.Unlock()
}

// markBusy flags whether a session is inside dispatch (executing) versus
// blocked reading the socket; drain treats the two differently.
func (s *Server) markBusy(sess *session, busy bool) {
	s.mu.Lock()
	e := s.sessions[sess.pid]
	s.mu.Unlock()
	if e == nil {
		return
	}
	e.mu.Lock()
	e.busy = busy
	e.mu.Unlock()
}

func (s *Server) beginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// closeIdleSessions closes connections that are between commands — their
// blocked reads fail and the goroutines exit. Sessions mid-statement are
// left to finish within the drain window. The busy check races with
// dispatch entry by nature; a connection closed just as a command arrives
// fails that command's write, which is the same outcome a crashed client
// gets — the session teardown path handles it.
func (s *Server) closeIdleSessions() {
	s.mu.Lock()
	entries := make([]*sessionEntry, 0, len(s.sessions))
	for _, e := range s.sessions {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	for _, e := range entries {
		e.mu.Lock()
		idle := !e.busy
		e.mu.Unlock()
		if idle {
			e.sess.conn.Close()
		}
	}
}

// forceCloseSessions cancels every session context and closes every
// connection; the drain window is over.
func (s *Server) forceCloseSessions() {
	s.mu.Lock()
	entries := make([]*sessionEntry, 0, len(s.sessions))
	for _, e := range s.sessions {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	for _, e := range entries {
		e.sess.cancel()
		e.sess.conn.Close()
	}
}

// rejectConn answers a startup attempt over the connection cap with a
// FATAL and closes. The startup packet is consumed first so the client
// reads the error rather than a reset.
func rejectConn(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	for i := 0; i < 2; i++ { // allow one SSLRequest round before startup
		body, err := readStartup(conn)
		if err != nil {
			return
		}
		rb := readBuf{b: body}
		code, err := rb.int32()
		if err != nil {
			return
		}
		if code == sslRequestCode || code == gssEncReqCode {
			if _, err := conn.Write([]byte{'N'}); err != nil {
				return
			}
			continue
		}
		break
	}
	var wb writeBuf
	writeErrorResponse(&wb, "FATAL", codeTooManyConns, "sorry, too many clients already")
	_, _ = conn.Write(wb.buf)
}

// MaxConcurrent reports the resolved admission cap (negative = unlimited).
func (s *Server) MaxConcurrent() int { return s.cfg.MaxConcurrent }

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		ConnsAccepted:  s.connsAccepted.Load(),
		ConnsRejected:  s.connsRejected.Load(),
		ConnsActive:    s.connsActive.Load(),
		StmtsExecuting: s.adm.active.Load(),
		StmtsQueued:    s.adm.queued.Load(),
		AdmissionWaits: s.adm.waits.Load(),
		AdmissionDrops: s.adm.rejects.Load(),
		CancelRequests: s.cancelRequests.Load(),
		ErrorsSent:     s.errorsSent.Load(),
	}
}
