package server

import (
	"fmt"
	"strings"
)

// translateParams rewrites PostgreSQL-style $N placeholders into the
// engine's positional ?, returning the rewritten SQL, the order slice
// (order[i] = the 0-based client parameter that the i-th ? binds), and the
// number of distinct client parameters (max N). $N may repeat and appear
// out of order — the per-execution bind reorders and duplicates the
// client's values to match.
//
// The scanner is quote- and comment-aware: $N inside single-quoted strings
// (” escapes), double-quoted identifiers, line comments (--) and block
// comments (/* */, nested) is left alone. Dollar-quoted strings ($$ / $tag$)
// are not supported and surface as a translation error rather than a
// silently misparsed statement.
func translateParams(sql string) (string, []int, int, error) {
	var out strings.Builder
	out.Grow(len(sql))
	var order []int
	maxParam := 0
	i := 0
	n := len(sql)
	for i < n {
		c := sql[i]
		switch {
		case c == '\'':
			j := i + 1
			for j < n {
				if sql[j] == '\'' {
					if j+1 < n && sql[j+1] == '\'' {
						j += 2
						continue
					}
					j++
					break
				}
				j++
			}
			out.WriteString(sql[i:j])
			i = j
		case c == '"':
			j := i + 1
			for j < n && sql[j] != '"' {
				j++
			}
			if j < n {
				j++
			}
			out.WriteString(sql[i:j])
			i = j
		case c == '-' && i+1 < n && sql[i+1] == '-':
			j := i
			for j < n && sql[j] != '\n' {
				j++
			}
			out.WriteString(sql[i:j])
			i = j
		case c == '/' && i+1 < n && sql[i+1] == '*':
			depth := 1
			j := i + 2
			for j < n && depth > 0 {
				if j+1 < n && sql[j] == '*' && sql[j+1] == '/' {
					depth--
					j += 2
				} else if j+1 < n && sql[j] == '/' && sql[j+1] == '*' {
					depth++
					j += 2
				} else {
					j++
				}
			}
			out.WriteString(sql[i:j])
			i = j
		case c == '$':
			j := i + 1
			for j < n && sql[j] >= '0' && sql[j] <= '9' {
				j++
			}
			if j == i+1 {
				return "", nil, 0, fmt.Errorf("dollar-quoted strings are not supported (at byte %d)", i)
			}
			num := 0
			for _, d := range sql[i+1 : j] {
				num = num*10 + int(d-'0')
			}
			if num < 1 || num > 65535 {
				return "", nil, 0, fmt.Errorf("bad parameter number $%d", num)
			}
			order = append(order, num-1)
			if num > maxParam {
				maxParam = num
			}
			out.WriteByte('?')
			i = j
		default:
			out.WriteByte(c)
			i++
		}
	}
	return out.String(), order, maxParam, nil
}

// reorderArgs maps the client's positional parameters (by $N) onto the
// engine's ?-appearance order.
func reorderArgs(order []int, args []any) ([]any, error) {
	out := make([]any, len(order))
	for i, src := range order {
		if src >= len(args) {
			return nil, fmt.Errorf("statement references $%d but only %d parameters were bound", src+1, len(args))
		}
		out[i] = args[src]
	}
	return out, nil
}
