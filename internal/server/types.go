package server

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"

	"recycledb/internal/catalog"
	"recycledb/internal/vector"
)

// PostgreSQL type OIDs for the engine's five physical types, plus the wire
// types clients commonly bind parameters with.
const (
	oidBool    = 16
	oidBytea   = 17
	oidInt8    = 20
	oidInt2    = 21
	oidInt4    = 23
	oidText    = 25
	oidFloat4  = 700
	oidFloat8  = 701
	oidVarchar = 1043
	oidDate    = 1082
	oidNumeric = 1700
	oidUnknown = 0
)

// pgDateEpochDays is 2000-01-01 (the binary DATE epoch) in days since
// 1970-01-01 (the engine's Date epoch).
const pgDateEpochDays = 10957

// typeOID maps an engine column type to the OID advertised in
// RowDescription.
func typeOID(t vector.Type) int32 {
	switch t {
	case vector.Int64:
		return oidInt8
	case vector.Float64:
		return oidFloat8
	case vector.String:
		return oidText
	case vector.Date:
		return oidDate
	case vector.Bool:
		return oidBool
	default:
		return oidText
	}
}

// typeSize returns the RowDescription type length (-1 = variable).
func typeSize(t vector.Type) int16 {
	switch t {
	case vector.Int64, vector.Float64:
		return 8
	case vector.Date:
		return 4
	case vector.Bool:
		return 1
	default:
		return -1
	}
}

// writeRowDescription emits a RowDescription for schema (text format).
func writeRowDescription(w *writeBuf, schema catalog.Schema) {
	w.beginMsg(msgRowDescription)
	w.int16(int16(len(schema)))
	for _, col := range schema {
		w.string(col.Name)
		w.int32(0) // table OID
		w.int16(0) // attribute number
		w.int32(typeOID(col.Typ))
		w.int16(typeSize(col.Typ))
		w.int32(-1) // type modifier
		w.int16(0)  // text format
	}
	w.endMsg()
}

// appendDatumText renders one value of a column vector in PostgreSQL text
// format, appending to dst. Floats use the shortest round-trip form, bools
// the single-letter form, dates ISO.
func appendDatumText(dst []byte, v *vector.Vector, row int) []byte {
	switch v.Typ {
	case vector.Int64:
		return strconv.AppendInt(dst, v.I64[row], 10)
	case vector.Float64:
		return appendFloatText(dst, v.F64[row])
	case vector.String:
		return append(dst, v.Str[row]...)
	case vector.Date:
		return append(dst, vector.DateString(v.I64[row])...)
	case vector.Bool:
		if v.B[row] {
			return append(dst, 't')
		}
		return append(dst, 'f')
	}
	return dst
}

// appendFloatText renders a float in PostgreSQL text form: shortest
// round-trip decimal, with Infinity/NaN spelled the way libpq expects.
func appendFloatText(dst []byte, f float64) []byte {
	switch {
	case math.IsInf(f, 1):
		return append(dst, "Infinity"...)
	case math.IsInf(f, -1):
		return append(dst, "-Infinity"...)
	case math.IsNaN(f):
		return append(dst, "NaN"...)
	}
	return strconv.AppendFloat(dst, f, 'g', -1, 64)
}

var dateRE = regexp.MustCompile(`^\d{4}-\d{2}-\d{2}$`)

// decodeParam converts one Bind parameter to a Go value for the engine's
// parameter binding (Stmt.Query / toDatums). Conversions are
// exactness-preserving: integer text parses as int64 before any float
// fallback (the canonical-numeric rule — 2^53+1 must survive), float4
// binaries stay the float32 value they carried, and unknown-typed text
// infers only numbers and ISO dates, leaving everything else a string.
func decodeParam(oid int32, format int16, data []byte) (any, error) {
	switch format {
	case 0:
		return decodeTextParam(oid, string(data))
	case 1:
		return decodeBinaryParam(oid, data)
	default:
		return nil, fmt.Errorf("unknown parameter format code %d", format)
	}
}

func decodeTextParam(oid int32, s string) (any, error) {
	switch oid {
	case oidInt2, oidInt4, oidInt8:
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid integer parameter %q", s)
		}
		return v, nil
	case oidFloat4, oidFloat8, oidNumeric:
		// Exact-integer numerics stay integers: the engine widens int64 to
		// float64 where a float is needed, but a float64 round trip would
		// corrupt integers above 2^53.
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v, nil
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid numeric parameter %q", s)
		}
		return v, nil
	case oidBool:
		switch strings.ToLower(s) {
		case "t", "true", "1", "yes", "on", "y":
			return true, nil
		case "f", "false", "0", "no", "off", "n":
			return false, nil
		}
		return nil, fmt.Errorf("invalid boolean parameter %q", s)
	case oidDate:
		days, err := parseDate(s)
		if err != nil {
			return nil, err
		}
		return vector.NewDateDatum(days), nil
	case oidText, oidVarchar, oidBytea:
		return s, nil
	case oidUnknown:
		// Untyped text parameter: infer numerics and ISO dates — the forms
		// the engine's implicit coercions understand — and keep everything
		// else as the string the client sent.
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v, nil
		}
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			return v, nil
		}
		if dateRE.MatchString(s) {
			if days, err := parseDate(s); err == nil {
				return vector.NewDateDatum(days), nil
			}
		}
		return s, nil
	default:
		// Unrecognized OID in text format: hand the raw text through.
		return s, nil
	}
}

func decodeBinaryParam(oid int32, data []byte) (any, error) {
	want := func(n int) error {
		if len(data) != n {
			return fmt.Errorf("binary parameter for oid %d has %d bytes, want %d", oid, len(data), n)
		}
		return nil
	}
	switch oid {
	case oidInt2:
		if err := want(2); err != nil {
			return nil, err
		}
		return int64(int16(uint16(data[0])<<8 | uint16(data[1]))), nil
	case oidInt4:
		if err := want(4); err != nil {
			return nil, err
		}
		return int64(int32(beUint32(data))), nil
	case oidInt8:
		if err := want(8); err != nil {
			return nil, err
		}
		return int64(beUint64(data)), nil
	case oidFloat4:
		if err := want(4); err != nil {
			return nil, err
		}
		return math.Float32frombits(beUint32(data)), nil
	case oidFloat8:
		if err := want(8); err != nil {
			return nil, err
		}
		return math.Float64frombits(beUint64(data)), nil
	case oidBool:
		if err := want(1); err != nil {
			return nil, err
		}
		return data[0] != 0, nil
	case oidDate:
		if err := want(4); err != nil {
			return nil, err
		}
		return vector.NewDateDatum(int64(int32(beUint32(data))) + pgDateEpochDays), nil
	case oidText, oidVarchar, oidBytea, oidUnknown:
		return append([]byte(nil), data...), nil
	default:
		return nil, fmt.Errorf("binary format not supported for parameter oid %d", oid)
	}
}

func beUint32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func beUint64(b []byte) uint64 {
	return uint64(beUint32(b))<<32 | uint64(beUint32(b[4:]))
}

// parseDate converts "YYYY-MM-DD" to engine epoch days.
func parseDate(s string) (int64, error) {
	if !dateRE.MatchString(s) {
		return 0, fmt.Errorf("invalid date parameter %q", s)
	}
	y, _ := strconv.Atoi(s[0:4])
	m, _ := strconv.Atoi(s[5:7])
	d, _ := strconv.Atoi(s[8:10])
	if m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, fmt.Errorf("invalid date parameter %q", s)
	}
	return vector.DaysFromDate(y, m, d), nil
}
