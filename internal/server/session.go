package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"recycledb"
	"recycledb/internal/catalog"
	"recycledb/internal/vector"
)

// flushThreshold is the buffered-output size past which the session pushes
// to the socket mid-result. Combined with the bufio layer this makes the
// socket the pipeline's consumer: when the client stops reading, the write
// blocks, Rows.Next is never called again, and the pipeline stalls at a
// batch boundary instead of materializing the result server-side.
const flushThreshold = 32 * 1024

// preparedStmt is a session-level prepared statement: the engine handle
// (shared compiled form via the plan LRU) plus the wire-level bookkeeping
// that belongs to the protocol, not the engine — $N ordering and the
// client's declared parameter OIDs.
type preparedStmt struct {
	name      string
	sql       string // original client text (post $N translation for engine kinds)
	stmt      *recycledb.Stmt
	argOrder  []int   // ?-position -> client parameter index
	numParams int     // distinct client parameters (max $N)
	paramOIDs []int32 // declared OIDs, padded with oidUnknown
	utility   string  // non-empty: SET/SHOW/etc. handled by the session
	empty     bool    // statement was all whitespace
}

// portal is a bound (and possibly partially executed) statement. rows is
// non-nil only while the portal is suspended between Execute messages with
// a row limit; pending holds the tail of the batch the limit split.
type portal struct {
	name       string
	ps         *preparedStmt
	args       []any // decoded client parameters, $N order
	rows       *recycledb.Rows
	pending    *recycledb.Batch // cloned remainder of a limit-split batch
	pendingOff int
	sent       int64 // rows sent across all Executes of this portal
}

// session is one client connection: the read-decode-execute-write loop plus
// the per-session prepared statement and portal tables.
type session struct {
	srv  *Server
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	wb   writeBuf

	ctx    context.Context // session lifetime; derived from Serve's ctx
	cancel context.CancelFunc

	pid    int32
	secret int32

	params  map[string]string // startup + SET parameters
	stmts   map[string]*preparedStmt
	portals map[string]*portal

	stmtTimeout time.Duration // 0 = none; SET statement_timeout overrides
	lastSent    int64         // rows sent by the last portal-less SELECT

	// ignoreTillSync: an extended-protocol message errored; skip everything
	// until the next Sync, per protocol.
	ignoreTillSync bool
}

func (sess *session) serve() error {
	if err := sess.startup(); err != nil {
		return err
	}
	defer sess.closeAllPortals()
	for {
		if sess.srv.isDraining() {
			sess.fatalError(codeAdminShutdown, "terminating connection: server is shutting down")
			return nil
		}
		typ, body, err := readTyped(sess.br)
		if err != nil {
			return err // disconnect (io.EOF) or framing error
		}
		sess.srv.markBusy(sess, true)
		err = sess.dispatch(typ, body)
		sess.srv.markBusy(sess, false)
		if err != nil {
			if errors.Is(err, errTerminate) {
				return nil
			}
			return err
		}
	}
}

var errTerminate = errors.New("pgwire: client terminated")

// startup negotiates the connection: SSL/GSS declines, CancelRequest
// short-circuits, then the startup packet's parameters, trust auth, and the
// initial parameter/key/ready volley.
func (sess *session) startup() error {
	for {
		body, err := readStartup(sess.br)
		if err != nil {
			return err
		}
		rb := readBuf{b: body}
		code, err := rb.int32()
		if err != nil {
			return err
		}
		switch code {
		case sslRequestCode, gssEncReqCode:
			// Declined: plaintext only.
			if _, err := sess.conn.Write([]byte{'N'}); err != nil {
				return err
			}
			continue
		case cancelReqCode:
			pid, err1 := rb.int32()
			secret, err2 := rb.int32()
			if err1 == nil && err2 == nil {
				sess.srv.cancelBackend(pid, secret)
			}
			return errTerminate // cancel connections close immediately
		case protocolVersion3:
			for {
				k, err := rb.cstring()
				if err != nil || k == "" {
					break
				}
				v, err := rb.cstring()
				if err != nil {
					break
				}
				sess.params[k] = v
			}
			return sess.finishStartup()
		default:
			return fmt.Errorf("pgwire: unsupported protocol version %d", code)
		}
	}
}

func (sess *session) finishStartup() error {
	// Trust auth: everyone is welcome; this is a research engine, not a
	// bank. AuthenticationOk, server parameters, cancel key, ready.
	sess.wb.beginMsg(msgAuth)
	sess.wb.int32(0)
	sess.wb.endMsg()
	status := [][2]string{
		{"server_version", sess.srv.cfg.ServerVersion},
		{"server_encoding", "UTF8"},
		{"client_encoding", "UTF8"},
		{"DateStyle", "ISO, MDY"},
		{"integer_datetimes", "on"},
		{"standard_conforming_strings", "on"},
		{"TimeZone", "UTC"},
		{"is_superuser", "on"},
		{"session_authorization", sess.params["user"]},
	}
	for _, kv := range status {
		sess.wb.beginMsg(msgParameterStatus)
		sess.wb.string(kv[0])
		sess.wb.string(kv[1])
		sess.wb.endMsg()
	}
	sess.wb.beginMsg(msgBackendKeyData)
	sess.wb.int32(sess.pid)
	sess.wb.int32(sess.secret)
	sess.wb.endMsg()
	sess.readyForQuery()
	return sess.flush()
}

func (sess *session) dispatch(typ byte, body []byte) error {
	if sess.ignoreTillSync && typ != msgSync && typ != msgTerminate {
		return nil
	}
	rb := readBuf{b: body}
	switch typ {
	case msgQuery:
		return sess.handleQuery(&rb)
	case msgParse:
		return sess.extended(sess.handleParse(&rb))
	case msgBind:
		return sess.extended(sess.handleBind(&rb))
	case msgDescribe:
		return sess.extended(sess.handleDescribe(&rb))
	case msgExecute:
		return sess.extended(sess.handleExecute(&rb))
	case msgClose:
		return sess.extended(sess.handleClose(&rb))
	case msgFlush:
		return sess.flush()
	case msgSync:
		sess.ignoreTillSync = false
		sess.closeAllPortals()
		sess.readyForQuery()
		return sess.flush()
	case msgTerminate:
		return errTerminate
	case msgPassword:
		return nil // trust auth never asks, but tolerate a stray reply
	default:
		sess.errorResponse(codeProtocolViolation, fmt.Sprintf("unknown message type %q", typ))
		sess.ignoreTillSync = true
		return sess.flush()
	}
}

// extended wraps an extended-protocol handler result: a protocol-level
// error (not an io error) becomes an ErrorResponse and arms
// ignoreTillSync.
func (sess *session) extended(err error) error {
	if err == nil {
		return nil
	}
	var ioErr *ioError
	if errors.As(err, &ioErr) {
		return ioErr.err
	}
	code, msg := sqlstateFor(err)
	sess.errorResponse(code, msg)
	sess.ignoreTillSync = true
	return sess.flush()
}

// ioError marks a transport failure that must tear the connection down
// rather than turn into an ErrorResponse.
type ioError struct{ err error }

func (e *ioError) Error() string { return e.err.Error() }

// ── simple query protocol ────────────────────────────────────────────────

func (sess *session) handleQuery(rb *readBuf) error {
	sql, err := rb.cstring()
	if err != nil {
		return err
	}
	stmts := splitStatements(sql)
	if len(stmts) == 0 {
		sess.wb.beginMsg(msgEmptyQuery)
		sess.wb.endMsg()
		sess.readyForQuery()
		return sess.flush()
	}
	for _, one := range stmts {
		if err := sess.runSimple(one); err != nil {
			var ioErr *ioError
			if errors.As(err, &ioErr) {
				return ioErr.err
			}
			code, msg := sqlstateFor(err)
			sess.errorResponse(code, msg)
			break // error aborts the rest of a multi-statement string
		}
	}
	sess.readyForQuery()
	return sess.flush()
}

// runSimple executes one statement of a simple-protocol query string:
// utility statements in the session, everything else through the engine
// with RowDescription + full streaming for SELECTs.
func (sess *session) runSimple(one string) error {
	if tag, handled, err := sess.runUtility(one); handled {
		if err != nil {
			return err
		}
		sess.commandComplete(tag)
		return nil
	}
	translated, _, numParams, err := translateParams(one)
	if err != nil {
		return err
	}
	if numParams > 0 {
		return fmt.Errorf("there is no parameter $1: the simple query protocol cannot bind parameters")
	}
	stmt, err := sess.srv.eng.Prepare(translated)
	if err != nil {
		return err
	}
	if !stmt.IsQuery() {
		return sess.runDML(stmt, nil)
	}
	return sess.runSelect(stmt, nil, true, 0, nil)
}

// ── extended query protocol ──────────────────────────────────────────────

func (sess *session) handleParse(rb *readBuf) error {
	name, err := rb.cstring()
	if err != nil {
		return err
	}
	query, err := rb.cstring()
	if err != nil {
		return err
	}
	nOids, err := rb.int16()
	if err != nil {
		return err
	}
	oids := make([]int32, nOids)
	for i := range oids {
		if oids[i], err = rb.int32(); err != nil {
			return err
		}
	}
	if name != "" {
		if _, exists := sess.stmts[name]; exists {
			return fmt.Errorf("prepared statement %q already exists", name)
		}
	}
	ps, err := sess.parseStatement(name, query, oids)
	if err != nil {
		return err
	}
	sess.stmts[name] = ps
	sess.wb.beginMsg(msgParseComplete)
	sess.wb.endMsg()
	return nil
}

func (sess *session) parseStatement(name, query string, oids []int32) (*preparedStmt, error) {
	if strings.TrimSpace(query) == "" {
		return &preparedStmt{name: name, empty: true, paramOIDs: oids}, nil
	}
	if util := utilityKeyword(query); util != "" {
		return &preparedStmt{name: name, sql: query, utility: util, paramOIDs: oids}, nil
	}
	translated, order, numParams, err := translateParams(query)
	if err != nil {
		return nil, err
	}
	stmt, err := sess.srv.eng.Prepare(translated)
	if err != nil {
		return nil, err
	}
	padded := make([]int32, numParams)
	copy(padded, oids)
	return &preparedStmt{
		name:      name,
		sql:       translated,
		stmt:      stmt,
		argOrder:  order,
		numParams: numParams,
		paramOIDs: padded,
	}, nil
}

func (sess *session) handleBind(rb *readBuf) error {
	portalName, err := rb.cstring()
	if err != nil {
		return err
	}
	stmtName, err := rb.cstring()
	if err != nil {
		return err
	}
	ps, ok := sess.stmts[stmtName]
	if !ok {
		return &namedError{code: codeInvalidSQLStateStmt,
			msg: fmt.Sprintf("prepared statement %q does not exist", stmtName)}
	}
	nFmt, err := rb.int16()
	if err != nil {
		return err
	}
	fmts := make([]int16, nFmt)
	for i := range fmts {
		if fmts[i], err = rb.int16(); err != nil {
			return err
		}
	}
	nParams, err := rb.int16()
	if err != nil {
		return err
	}
	args := make([]any, nParams)
	for i := range args {
		n, err := rb.int32()
		if err != nil {
			return err
		}
		if n == -1 {
			return fmt.Errorf("parameter $%d is NULL; the engine has no NULL values", i+1)
		}
		data, err := rb.bytes(int(n))
		if err != nil {
			return err
		}
		format := int16(0)
		if len(fmts) == 1 {
			format = fmts[0]
		} else if i < len(fmts) {
			format = fmts[i]
		}
		oid := int32(oidUnknown)
		if i < len(ps.paramOIDs) {
			oid = ps.paramOIDs[i]
		}
		args[i], err = decodeParam(oid, format, data)
		if err != nil {
			return fmt.Errorf("parameter $%d: %w", i+1, err)
		}
	}
	if int(nParams) != ps.numParams {
		return fmt.Errorf("bind message supplies %d parameters, but prepared statement %q requires %d",
			nParams, stmtName, ps.numParams)
	}
	nResFmt, err := rb.int16()
	if err != nil {
		return err
	}
	for i := int16(0); i < nResFmt; i++ {
		f, err := rb.int16()
		if err != nil {
			return err
		}
		if f != 0 {
			return &namedError{code: codeFeatureNotSupported,
				msg: "binary result format is not supported; request text format"}
		}
	}
	if portalName != "" {
		if _, exists := sess.portals[portalName]; exists {
			return fmt.Errorf("portal %q already exists", portalName)
		}
	} else if old := sess.portals[""]; old != nil {
		sess.destroyPortal(old)
	}
	sess.portals[portalName] = &portal{name: portalName, ps: ps, args: args}
	sess.wb.beginMsg(msgBindComplete)
	sess.wb.endMsg()
	return nil
}

func (sess *session) handleDescribe(rb *readBuf) error {
	typ, err := rb.byte()
	if err != nil {
		return err
	}
	name, err := rb.cstring()
	if err != nil {
		return err
	}
	switch typ {
	case 'S':
		ps, ok := sess.stmts[name]
		if !ok {
			return &namedError{code: codeInvalidSQLStateStmt,
				msg: fmt.Sprintf("prepared statement %q does not exist", name)}
		}
		sess.wb.beginMsg(msgParamDescription)
		sess.wb.int16(int16(ps.numParams))
		for i := 0; i < ps.numParams; i++ {
			oid := int32(oidUnknown)
			if i < len(ps.paramOIDs) {
				oid = ps.paramOIDs[i]
			}
			sess.wb.int32(oid)
		}
		sess.wb.endMsg()
		sess.describeResult(ps, nil)
		return nil
	case 'P':
		p, ok := sess.portals[name]
		if !ok {
			return &namedError{code: codeInvalidCursorName,
				msg: fmt.Sprintf("portal %q does not exist", name)}
		}
		sess.describeResult(p.ps, p.args)
		return nil
	default:
		return fmt.Errorf("invalid Describe kind %q", typ)
	}
}

// describeResult emits RowDescription for a SELECT whose schema can be
// resolved (a bound portal, or an unbound statement via dummy bindings
// synthesized from the declared parameter OIDs), NoData otherwise.
func (sess *session) describeResult(ps *preparedStmt, args []any) {
	if ps.empty || ps.utility != "" || ps.stmt == nil || !ps.stmt.IsQuery() {
		sess.wb.beginMsg(msgNoData)
		sess.wb.endMsg()
		return
	}
	if args == nil {
		args = dummyArgs(ps)
	}
	engineArgs, err := reorderArgs(ps.argOrder, args)
	if err == nil {
		var schema catalog.Schema
		schema, err = ps.stmt.ResultSchema(engineArgs...)
		if err == nil {
			writeRowDescription(&sess.wb, schema)
			return
		}
	}
	// Unresolvable pre-execution (untyped parameters in positions the dummy
	// guess got wrong): NoData. Execution will resolve with real values or
	// report the real error.
	sess.wb.beginMsg(msgNoData)
	sess.wb.endMsg()
}

// dummyArgs synthesizes one zero value per declared parameter OID, for
// resolving a statement's result schema before any Bind.
func dummyArgs(ps *preparedStmt) []any {
	args := make([]any, ps.numParams)
	for i := range args {
		oid := int32(oidUnknown)
		if i < len(ps.paramOIDs) {
			oid = ps.paramOIDs[i]
		}
		switch oid {
		case oidFloat4, oidFloat8, oidNumeric:
			args[i] = float64(0)
		case oidText, oidVarchar, oidBytea:
			args[i] = ""
		case oidBool:
			args[i] = false
		case oidDate:
			args[i] = vector.NewDateDatum(0)
		default:
			// Unknown and integer OIDs: int64 coerces widely (to float,
			// to date) so it is the guess most likely to resolve.
			args[i] = int64(0)
		}
	}
	return args
}

func (sess *session) handleExecute(rb *readBuf) error {
	name, err := rb.cstring()
	if err != nil {
		return err
	}
	maxRows, err := rb.int32()
	if err != nil {
		return err
	}
	p, ok := sess.portals[name]
	if !ok {
		return &namedError{code: codeInvalidCursorName,
			msg: fmt.Sprintf("portal %q does not exist", name)}
	}
	if p.rows != nil || p.pending != nil {
		return sess.resumePortal(p, int(maxRows))
	}
	ps := p.ps
	switch {
	case ps.empty:
		sess.wb.beginMsg(msgEmptyQuery)
		sess.wb.endMsg()
		return nil
	case ps.utility != "":
		tag, _, err := sess.runUtility(ps.sql)
		if err != nil {
			return err
		}
		sess.commandComplete(tag)
		return nil
	}
	engineArgs, err := reorderArgs(ps.argOrder, p.args)
	if err != nil {
		return err
	}
	if !ps.stmt.IsQuery() {
		return sess.runDML(ps.stmt, engineArgs)
	}
	return sess.runSelect(ps.stmt, engineArgs, false, int(maxRows), p)
}

func (sess *session) handleClose(rb *readBuf) error {
	typ, err := rb.byte()
	if err != nil {
		return err
	}
	name, err := rb.cstring()
	if err != nil {
		return err
	}
	switch typ {
	case 'S':
		delete(sess.stmts, name) // closing a nonexistent statement is not an error
	case 'P':
		if p, ok := sess.portals[name]; ok {
			sess.destroyPortal(p)
		}
	default:
		return fmt.Errorf("invalid Close kind %q", typ)
	}
	sess.wb.beginMsg(msgCloseComplete)
	sess.wb.endMsg()
	return nil
}

// ── statement execution ──────────────────────────────────────────────────

// statementCtx derives the per-statement context: session lifetime, the
// statement timeout if set, and registration for wire CancelRequest.
func (sess *session) statementCtx() (context.Context, context.CancelFunc) {
	ctx := sess.ctx
	var cancel context.CancelFunc
	if sess.stmtTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, sess.stmtTimeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	sess.srv.setStatementCancel(sess.pid, cancel)
	return ctx, func() {
		sess.srv.setStatementCancel(sess.pid, nil)
		cancel()
	}
}

func (sess *session) runDML(stmt *recycledb.Stmt, args []any) error {
	ctx, done := sess.statementCtx()
	defer done()
	if err := sess.srv.adm.acquire(ctx); err != nil {
		return admissionErr(err)
	}
	defer sess.srv.adm.release()
	res, err := stmt.Exec(ctx, args...)
	if err != nil {
		return err
	}
	sess.commandComplete(commandTag(stmt, res.RowsAffected))
	return nil
}

// runSelect streams a SELECT to the wire. describeFirst (simple protocol)
// emits RowDescription before the rows; maxRows > 0 (extended protocol)
// suspends the portal at the limit.
func (sess *session) runSelect(stmt *recycledb.Stmt, args []any, describeFirst bool, maxRows int, p *portal) error {
	ctx, done := sess.statementCtx()
	defer done()
	if err := sess.srv.adm.acquire(ctx); err != nil {
		return admissionErr(err)
	}
	defer sess.srv.adm.release()
	rows, err := stmt.Query(ctx, args...)
	if err != nil {
		return err
	}
	if describeFirst {
		writeRowDescription(&sess.wb, rows.Schema())
	}
	suspended, err := sess.streamRows(ctx, rows, maxRows, p)
	if err != nil {
		rows.Close()
		return err
	}
	if suspended {
		p.rows = rows
		sess.wb.beginMsg(msgPortalSuspended)
		sess.wb.endMsg()
		return nil
	}
	if err := rows.Close(); err != nil {
		return err
	}
	var sent int64
	if p != nil {
		sent = p.sent
	} else {
		sent = sess.lastSent
	}
	sess.commandComplete(fmt.Sprintf("SELECT %d", sent))
	return nil
}

// resumePortal continues a suspended portal: drain the limit-split batch
// remainder first, then the stream, under a fresh statement timeout and a
// fresh admission slot (the slot was released at suspension so parked
// portals cannot starve the server).
func (sess *session) resumePortal(p *portal, maxRows int) error {
	ctx, done := sess.statementCtx()
	defer done()
	if err := sess.srv.adm.acquire(ctx); err != nil {
		return admissionErr(err)
	}
	defer sess.srv.adm.release()
	suspended, err := sess.streamRows(ctx, p.rows, maxRows, p)
	if err != nil {
		sess.destroyPortal(p)
		return err
	}
	if suspended {
		sess.wb.beginMsg(msgPortalSuspended)
		sess.wb.endMsg()
		return nil
	}
	if p.rows != nil {
		err = p.rows.Close()
		p.rows = nil
	}
	if err != nil {
		return err
	}
	sess.commandComplete(fmt.Sprintf("SELECT %d", p.sent))
	return nil
}

// streamRows encodes batches as DataRow messages, flushing through the
// socket at flushThreshold — the backpressure edge. With maxRows > 0 it
// stops at the limit, stashing any batch remainder in the portal, and
// reports suspended=true.
func (sess *session) streamRows(ctx context.Context, rows *recycledb.Rows, maxRows int, p *portal) (bool, error) {
	sent := 0
	emit := func(b *recycledb.Batch, from int) (int, error) {
		n := b.Len()
		for i := from; i < n; i++ {
			if maxRows > 0 && sent >= maxRows {
				return i, nil
			}
			sess.encodeDataRow(b, i)
			sent++
			if len(sess.wb.buf) >= flushThreshold {
				if err := sess.flush(); err != nil {
					return i, &ioError{err: err}
				}
			}
		}
		return n, nil
	}
	if p != nil && p.pending != nil {
		stop, err := emit(p.pending, p.pendingOff)
		if err != nil {
			return false, err
		}
		if stop < p.pending.Len() {
			p.pendingOff = stop
			p.sent += int64(sent)
			return true, nil
		}
		p.pending = nil
		p.pendingOff = 0
	}
	for {
		if maxRows > 0 && sent >= maxRows {
			// Limit landed exactly on a batch boundary.
			if p != nil {
				p.sent += int64(sent)
			}
			return true, nil
		}
		b, err := rows.Next(ctx)
		if err != nil {
			return false, err
		}
		if b == nil {
			break
		}
		stop, err := emit(b, 0)
		if err != nil {
			return false, err
		}
		if stop < b.Len() {
			// Limit split this batch: the next Next invalidates it, so the
			// remainder is cloned into the portal.
			p.pending = b.Clone()
			p.pendingOff = stop
			p.sent += int64(sent)
			return true, nil
		}
	}
	if p != nil {
		p.sent += int64(sent)
	} else {
		sess.lastSent = int64(sent)
	}
	return false, nil
}

// encodeDataRow appends one DataRow message for logical row i of batch b.
func (sess *session) encodeDataRow(b *recycledb.Batch, i int) {
	w := &sess.wb
	w.beginMsg(msgDataRow)
	w.int16(int16(len(b.Vecs)))
	phys := b.RowIdx(i)
	for _, v := range b.Vecs {
		lenAt := len(w.buf)
		w.int32(0) // patched below
		w.buf = appendDatumText(w.buf, v, phys)
		putInt32(w.buf[lenAt:], int32(len(w.buf)-lenAt-4))
	}
	w.endMsg()
}

// ── utility statements ───────────────────────────────────────────────────

// utilityKeyword classifies statements the session handles without the
// engine: SET, SHOW, and the transaction-control no-ops (the engine's
// writes are epoch-atomic per statement; BEGIN/COMMIT exist so client
// libraries that always open a transaction still work).
func utilityKeyword(q string) string {
	fields := strings.Fields(strings.ToLower(strings.TrimRight(strings.TrimSpace(q), ";")))
	if len(fields) == 0 {
		return ""
	}
	switch fields[0] {
	case "set", "show", "begin", "commit", "rollback", "end", "discard", "reset":
		return fields[0]
	case "start":
		if len(fields) > 1 && fields[1] == "transaction" {
			return "start"
		}
	}
	return ""
}

// runUtility executes a utility statement, returning its command tag and
// whether the statement was in fact a utility.
func (sess *session) runUtility(q string) (tag string, handled bool, err error) {
	kw := utilityKeyword(q)
	if kw == "" {
		return "", false, nil
	}
	body := strings.TrimRight(strings.TrimSpace(q), ";")
	switch kw {
	case "begin", "start":
		return "BEGIN", true, nil
	case "commit", "end":
		return "COMMIT", true, nil
	case "rollback":
		return "ROLLBACK", true, nil
	case "discard":
		sess.closeAllPortals()
		sess.stmts = make(map[string]*preparedStmt)
		return "DISCARD ALL", true, nil
	case "set":
		err := sess.runSet(body)
		return "SET", true, err
	case "reset":
		name := strings.ToLower(strings.TrimSpace(body[len("reset"):]))
		if name == "statement_timeout" || name == "all" {
			sess.stmtTimeout = sess.srv.cfg.StatementTimeout
		}
		return "RESET", true, nil
	case "show":
		err := sess.runShow(strings.TrimSpace(body[len("show"):]))
		return "SHOW", true, err
	}
	return "", false, nil
}

// runSet handles SET name = value / SET name TO value. statement_timeout
// and recycling_mode are live knobs; everything else is recorded and
// acknowledged so client libraries' session setup does not error out.
func (sess *session) runSet(body string) error {
	rest := strings.TrimSpace(body[len("set"):])
	low := strings.ToLower(rest)
	for _, scope := range []string{"session ", "local "} {
		if strings.HasPrefix(low, scope) {
			rest = strings.TrimSpace(rest[len(scope):])
			low = strings.ToLower(rest)
			break
		}
	}
	var name, value string
	if i := strings.IndexAny(rest, "=\t "); i >= 0 {
		name = strings.ToLower(strings.TrimSpace(rest[:i]))
		value = strings.TrimSpace(rest[i:])
		value = strings.TrimSpace(strings.TrimPrefix(value, "="))
		if lowv := strings.ToLower(value); strings.HasPrefix(lowv, "to ") || lowv == "to" {
			value = strings.TrimSpace(value[2:])
		}
	} else {
		return fmt.Errorf("syntax error in SET: %q", body)
	}
	value = strings.Trim(value, "'\"")
	switch name {
	case "statement_timeout":
		d, err := parseTimeoutValue(value)
		if err != nil {
			return err
		}
		sess.stmtTimeout = d
	case "recycling_mode":
		mode, err := parseMode(value)
		if err != nil {
			return err
		}
		sess.srv.eng.SetMode(mode)
	default:
		sess.params[name] = value
	}
	return nil
}

// runShow answers SHOW name with a one-column, one-row text result.
func (sess *session) runShow(name string) error {
	name = strings.ToLower(strings.Trim(strings.Trim(name, "'\""), ";"))
	var value string
	switch name {
	case "statement_timeout":
		value = formatTimeout(sess.stmtTimeout)
	case "recycling_mode":
		value = modeName(sess.srv.eng.Mode())
	case "server_version":
		value = sess.srv.cfg.ServerVersion
	case "transaction_isolation":
		value = "snapshot"
	default:
		if v, ok := sess.params[name]; ok {
			value = v
		} else {
			return fmt.Errorf("unrecognized configuration parameter %q", name)
		}
	}
	writeRowDescription(&sess.wb, catalog.Schema{{Name: name, Typ: vector.String}})
	sess.wb.beginMsg(msgDataRow)
	sess.wb.int16(1)
	sess.wb.int32(int32(len(value)))
	sess.wb.bytes([]byte(value))
	sess.wb.endMsg()
	return nil
}

// parseTimeoutValue parses a statement_timeout setting: a bare integer is
// milliseconds (PostgreSQL convention), or a value with a unit suffix.
func parseTimeoutValue(v string) (time.Duration, error) {
	if ms, err := strconv.ParseInt(v, 10, 64); err == nil {
		if ms < 0 {
			return 0, fmt.Errorf("statement_timeout cannot be negative")
		}
		return time.Duration(ms) * time.Millisecond, nil
	}
	for _, u := range []struct {
		suffix string
		unit   time.Duration
	}{{"ms", time.Millisecond}, {"us", time.Microsecond}, {"min", time.Minute}, {"s", time.Second}, {"h", time.Hour}} {
		if n, ok := strings.CutSuffix(v, u.suffix); ok {
			ms, err := strconv.ParseInt(strings.TrimSpace(n), 10, 64)
			if err == nil && ms >= 0 {
				return time.Duration(ms) * u.unit, nil
			}
		}
	}
	return 0, fmt.Errorf("invalid statement_timeout value %q", v)
}

func formatTimeout(d time.Duration) string {
	return strconv.FormatInt(d.Milliseconds(), 10) + "ms"
}

func modeName(m recycledb.Mode) string {
	switch m {
	case recycledb.History:
		return "history"
	case recycledb.Speculative:
		return "speculative"
	case recycledb.Proactive:
		return "proactive"
	default:
		return "off"
	}
}

func parseMode(v string) (recycledb.Mode, error) {
	switch strings.ToLower(v) {
	case "off":
		return recycledb.Off, nil
	case "history":
		return recycledb.History, nil
	case "speculative":
		return recycledb.Speculative, nil
	case "proactive":
		return recycledb.Proactive, nil
	}
	return 0, fmt.Errorf("invalid recycling_mode %q (off, history, speculative, proactive)", v)
}

// ── response plumbing ────────────────────────────────────────────────────

func (sess *session) commandComplete(tag string) {
	sess.wb.beginMsg(msgCommandComplete)
	sess.wb.string(tag)
	sess.wb.endMsg()
}

func (sess *session) readyForQuery() {
	sess.wb.beginMsg(msgReadyForQuery)
	sess.wb.byte('I') // always idle: no multi-statement transactions
	sess.wb.endMsg()
}

func (sess *session) errorResponse(code, msg string) {
	writeErrorResponse(&sess.wb, "ERROR", code, msg)
	sess.srv.errorsSent.Add(1)
}

// fatalError sends a FATAL and flushes; used on the teardown path where the
// connection closes right after.
func (sess *session) fatalError(code, msg string) {
	writeErrorResponse(&sess.wb, "FATAL", code, msg)
	_ = sess.flush()
}

func writeErrorResponse(w *writeBuf, severity, code, msg string) {
	w.beginMsg(msgErrorResponse)
	w.byte('S')
	w.string(severity)
	w.byte('V')
	w.string(severity)
	w.byte('C')
	w.string(code)
	w.byte('M')
	w.string(msg)
	w.byte(0)
	w.endMsg()
}

// flush pushes buffered messages through the socket. The write deadline
// bounds how long a wedged client (not reading, window full) can pin a
// connection goroutine and its pipeline.
func (sess *session) flush() error {
	if len(sess.wb.buf) > 0 {
		if sess.srv.cfg.WriteTimeout > 0 {
			_ = sess.conn.SetWriteDeadline(time.Now().Add(sess.srv.cfg.WriteTimeout))
		}
		if _, err := sess.bw.Write(sess.wb.buf); err != nil {
			return err
		}
		sess.wb.reset()
	}
	return sess.bw.Flush()
}

func (sess *session) destroyPortal(p *portal) {
	if p.rows != nil {
		p.rows.Close()
		p.rows = nil
	}
	p.pending = nil
	delete(sess.portals, p.name)
}

func (sess *session) closeAllPortals() {
	for _, p := range sess.portals {
		sess.destroyPortal(p)
	}
}

// ── error → SQLSTATE mapping ─────────────────────────────────────────────

// namedError carries an explicit SQLSTATE.
type namedError struct {
	code string
	msg  string
}

func (e *namedError) Error() string { return e.msg }

var errAdmission = errors.New("too many concurrent statements")

func admissionErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return fmt.Errorf("%w: canceling statement while waiting for an execution slot: %w", errAdmission, err)
	}
	return err
}

// sqlstateFor maps engine and protocol errors to the SQLSTATE the client
// sees.
func sqlstateFor(err error) (code, msg string) {
	var ne *namedError
	if errors.As(err, &ne) {
		return ne.code, ne.msg
	}
	switch {
	case errors.Is(err, errAdmission):
		return codeAdmissionRejected, err.Error()
	case errors.Is(err, recycledb.ErrParse):
		return codeSyntaxError, err.Error()
	case errors.Is(err, recycledb.ErrUnknownTable):
		return codeUndefinedTable, err.Error()
	case errors.Is(err, recycledb.ErrStaleStmt):
		return codeUndefinedTable, err.Error()
	case errors.Is(err, context.DeadlineExceeded):
		return codeQueryCanceled, "canceling statement due to statement timeout"
	case errors.Is(err, recycledb.ErrCanceled), errors.Is(err, context.Canceled):
		return codeQueryCanceled, "canceling statement due to user request"
	case errors.Is(err, recycledb.ErrNotQuery):
		return codeFeatureNotSupported, err.Error()
	case strings.Contains(err.Error(), "unknown column"):
		return codeUndefinedColumn, err.Error()
	default:
		return codeInternalError, err.Error()
	}
}

// commandTag renders the CommandComplete tag for a DML statement.
func commandTag(stmt *recycledb.Stmt, affected int64) string {
	switch stmt.Verb() {
	case "INSERT":
		return fmt.Sprintf("INSERT 0 %d", affected)
	case "DELETE":
		return fmt.Sprintf("DELETE %d", affected)
	case "CREATE":
		return "CREATE TABLE"
	default:
		return fmt.Sprintf("SELECT %d", affected)
	}
}

// splitStatements splits a simple-protocol query string on top-level
// semicolons, honouring quotes and comments, and drops empty statements.
func splitStatements(q string) []string {
	var out []string
	start := 0
	i := 0
	n := len(q)
	emit := func(end int) {
		s := strings.TrimSpace(q[start:end])
		if s != "" {
			out = append(out, s)
		}
	}
	for i < n {
		switch c := q[i]; {
		case c == '\'':
			j := i + 1
			for j < n {
				if q[j] == '\'' {
					if j+1 < n && q[j+1] == '\'' {
						j += 2
						continue
					}
					j++
					break
				}
				j++
			}
			i = j
		case c == '"':
			j := i + 1
			for j < n && q[j] != '"' {
				j++
			}
			if j < n {
				j++
			}
			i = j
		case c == '-' && i+1 < n && q[i+1] == '-':
			for i < n && q[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && q[i+1] == '*':
			depth := 1
			i += 2
			for i < n && depth > 0 {
				if i+1 < n && q[i] == '*' && q[i+1] == '/' {
					depth--
					i += 2
				} else if i+1 < n && q[i] == '/' && q[i+1] == '*' {
					depth++
					i += 2
				} else {
					i++
				}
			}
		case c == ';':
			emit(i)
			i++
			start = i
		default:
			i++
		}
	}
	emit(n)
	return out
}

func putInt32(b []byte, v int32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}
