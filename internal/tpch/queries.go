package tpch

import (
	"fmt"
	"time"

	"recycledb/internal/expr"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// All 22 TPC-H query patterns as optimized plan trees over the engine's
// operator algebra. Correlated subqueries are decorrelated into aggregate +
// join shapes and scalar subqueries become singleton cross joins, i.e. the
// trees the recycler would receive from an optimizer. COUNT(DISTINCT x) is
// expressed as a two-level aggregation.

// Build returns the plan for parameter set p.
func Build(p Params) *plan.Node {
	switch p.Q {
	case 1:
		return Q1(p)
	case 2:
		return Q2(p)
	case 3:
		return Q3(p)
	case 4:
		return Q4(p)
	case 5:
		return Q5(p)
	case 6:
		return Q6(p)
	case 7:
		return Q7(p)
	case 8:
		return Q8(p)
	case 9:
		return Q9(p)
	case 10:
		return Q10(p)
	case 11:
		return Q11(p)
	case 12:
		return Q12(p)
	case 13:
		return Q13(p)
	case 14:
		return Q14(p)
	case 15:
		return Q15(p)
	case 16:
		return Q16(p)
	case 17:
		return Q17(p)
	case 18:
		return Q18(p)
	case 19:
		return Q19(p)
	case 20:
		return Q20(p)
	case 21:
		return Q21(p)
	case 22:
		return Q22(p)
	}
	panic(fmt.Sprintf("tpch: unknown query %d", p.Q))
}

// BuildPA returns the plan variant used in proactive mode: Q16 uses the
// manually hoisted selection shape (the paper simulated the proactive rules
// by manually altering the plans of Q1, Q16 and Q19; Q1 and Q19 already
// expose the aggregate-over-selection pattern the automatic rules fire on).
func BuildPA(p Params) *plan.Node {
	if p.Q == 16 {
		return Q16PA(p)
	}
	return Build(p)
}

func revenue() expr.Expr {
	return expr.Mul(expr.C("l_extendedprice"), expr.Sub(expr.Flt(1), expr.C("l_discount")))
}

func addMonths(days int64, months int) int64 {
	t := time.Unix(days*86400, 0).UTC().AddDate(0, months, 0)
	return t.Unix() / 86400
}

func addYears(days int64, years int) int64 {
	t := time.Unix(days*86400, 0).UTC().AddDate(years, 0, 0)
	return t.Unix() / 86400
}

// AddYears shifts a day-epoch date by whole years (for harness mixes that
// rebuild query windows from Params).
func AddYears(days int64, years int) int64 { return addYears(days, years) }

func dd(days int64) *expr.Lit { return expr.DateDays(days) }

// Q1: pricing summary report.
func Q1(p Params) *plan.Node {
	sel := plan.NewSelect(
		plan.NewScan("lineitem", "l_returnflag", "l_linestatus", "l_quantity",
			"l_extendedprice", "l_discount", "l_tax", "l_shipdate"),
		expr.Le(expr.C("l_shipdate"), dd(p.Date)))
	agg := plan.NewAggregate(sel, []string{"l_returnflag", "l_linestatus"},
		plan.A(plan.Sum, expr.C("l_quantity"), "sum_qty"),
		plan.A(plan.Sum, expr.C("l_extendedprice"), "sum_base_price"),
		plan.A(plan.Sum, revenue(), "sum_disc_price"),
		plan.A(plan.Sum, expr.Mul(revenue(), expr.Add(expr.Flt(1), expr.C("l_tax"))), "sum_charge"),
		plan.A(plan.Avg, expr.C("l_quantity"), "avg_qty"),
		plan.A(plan.Avg, expr.C("l_extendedprice"), "avg_price"),
		plan.A(plan.Avg, expr.C("l_discount"), "avg_disc"),
		plan.A(plan.Count, nil, "count_order"),
	)
	return plan.NewSort(agg, plan.SortKey{Col: "l_returnflag"}, plan.SortKey{Col: "l_linestatus"})
}

// suppliersInRegion joins supplier with the nations of one region.
func suppliersInRegion(region string) *plan.Node {
	nat := plan.NewJoin(plan.Inner,
		plan.NewScan("nation", "n_nationkey", "n_name", "n_regionkey"),
		plan.NewSelect(plan.NewScan("region", "r_regionkey", "r_name"),
			expr.Eq(expr.C("r_name"), expr.Str(region))),
		[]string{"n_regionkey"}, []string{"r_regionkey"})
	natP := plan.NewProject(nat,
		plan.P(expr.C("n_nationkey"), "n_nationkey"),
		plan.P(expr.C("n_name"), "n_name"))
	return plan.NewJoin(plan.Inner,
		plan.NewScan("supplier", "s_suppkey", "s_name", "s_nationkey", "s_acctbal"),
		natP, []string{"s_nationkey"}, []string{"n_nationkey"})
}

// Q2: minimum cost supplier.
func Q2(p Params) *plan.Node {
	parts := plan.NewSelect(
		plan.NewScan("part", "p_partkey", "p_size", "p_type"),
		expr.AndOf(
			expr.Eq(expr.C("p_size"), expr.Int(p.Int1)),
			expr.LikeOf(expr.C("p_type"), "%"+p.Str1)))
	ps := plan.NewJoin(plan.Inner,
		plan.NewScan("partsupp", "ps_partkey", "ps_suppkey", "ps_supplycost"),
		suppliersInRegion(p.Str2),
		[]string{"ps_suppkey"}, []string{"s_suppkey"})
	minc := plan.NewProject(
		plan.NewAggregate(ps.Clone(), []string{"ps_partkey"},
			plan.A(plan.Min, expr.C("ps_supplycost"), "min_cost")),
		plan.P(expr.C("ps_partkey"), "mc_partkey"),
		plan.P(expr.C("min_cost"), "min_cost"))
	j1 := plan.NewJoin(plan.Inner, ps, parts,
		[]string{"ps_partkey"}, []string{"p_partkey"})
	j2 := plan.NewJoin(plan.Inner, j1, minc,
		[]string{"ps_partkey", "ps_supplycost"}, []string{"mc_partkey", "min_cost"})
	top := plan.NewTopN(j2, []plan.SortKey{
		{Col: "s_acctbal", Desc: true}, {Col: "n_name"}, {Col: "s_name"}, {Col: "p_partkey"},
	}, 100)
	return plan.NewProject(top,
		plan.P(expr.C("s_acctbal"), "s_acctbal"),
		plan.P(expr.C("s_name"), "s_name"),
		plan.P(expr.C("n_name"), "n_name"),
		plan.P(expr.C("p_partkey"), "p_partkey"))
}

// Q3: shipping priority.
func Q3(p Params) *plan.Node {
	cust := plan.NewSelect(plan.NewScan("customer", "c_custkey", "c_mktsegment"),
		expr.Eq(expr.C("c_mktsegment"), expr.Str(p.Str1)))
	ord := plan.NewSelect(
		plan.NewScan("orders", "o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"),
		expr.Lt(expr.C("o_orderdate"), dd(p.Date)))
	li := plan.NewSelect(
		plan.NewScan("lineitem", "l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"),
		expr.Gt(expr.C("l_shipdate"), dd(p.Date)))
	j := plan.NewJoin(plan.Inner, li,
		plan.NewJoin(plan.Inner, ord, cust, []string{"o_custkey"}, []string{"c_custkey"}),
		[]string{"l_orderkey"}, []string{"o_orderkey"})
	agg := plan.NewAggregate(j, []string{"l_orderkey", "o_orderdate", "o_shippriority"},
		plan.A(plan.Sum, revenue(), "revenue"))
	return plan.NewTopN(agg, []plan.SortKey{
		{Col: "revenue", Desc: true}, {Col: "o_orderdate"},
	}, 10)
}

// Q4: order priority checking.
func Q4(p Params) *plan.Node {
	ord := plan.NewSelect(
		plan.NewScan("orders", "o_orderkey", "o_orderdate", "o_orderpriority"),
		expr.AndOf(
			expr.Ge(expr.C("o_orderdate"), dd(p.Date)),
			expr.Lt(expr.C("o_orderdate"), dd(addMonths(p.Date, 3)))))
	li := plan.NewSelect(
		plan.NewScan("lineitem", "l_orderkey", "l_commitdate", "l_receiptdate"),
		expr.Lt(expr.C("l_commitdate"), expr.C("l_receiptdate")))
	semi := plan.NewJoin(plan.LeftSemi, ord, li,
		[]string{"o_orderkey"}, []string{"l_orderkey"})
	agg := plan.NewAggregate(semi, []string{"o_orderpriority"},
		plan.A(plan.Count, nil, "order_count"))
	return plan.NewSort(agg, plan.SortKey{Col: "o_orderpriority"})
}

// Q5: local supplier volume.
func Q5(p Params) *plan.Node {
	li := plan.NewJoin(plan.Inner,
		plan.NewScan("lineitem", "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"),
		suppliersInRegion(p.Str1),
		[]string{"l_suppkey"}, []string{"s_suppkey"})
	ord := plan.NewSelect(
		plan.NewScan("orders", "o_orderkey", "o_custkey", "o_orderdate"),
		expr.AndOf(
			expr.Ge(expr.C("o_orderdate"), dd(p.Date)),
			expr.Lt(expr.C("o_orderdate"), dd(addYears(p.Date, 1)))))
	j := plan.NewJoin(plan.Inner, li, ord, []string{"l_orderkey"}, []string{"o_orderkey"})
	jc := plan.NewJoin(plan.Inner, j,
		plan.NewScan("customer", "c_custkey", "c_nationkey"),
		[]string{"o_custkey"}, []string{"c_custkey"})
	fil := plan.NewSelect(jc, expr.Eq(expr.C("c_nationkey"), expr.C("s_nationkey")))
	proj := plan.NewProject(fil,
		plan.P(expr.C("n_name"), "n_name"),
		plan.P(revenue(), "volume"))
	agg := plan.NewAggregate(proj, []string{"n_name"},
		plan.A(plan.Sum, expr.C("volume"), "revenue"))
	return plan.NewSort(agg, plan.SortKey{Col: "revenue", Desc: true})
}

// Q6: forecasting revenue change.
func Q6(p Params) *plan.Node {
	sel := plan.NewSelect(
		plan.NewScan("lineitem", "l_quantity", "l_extendedprice", "l_discount", "l_shipdate"),
		expr.AndOf(
			expr.Ge(expr.C("l_shipdate"), dd(p.Date)),
			expr.Lt(expr.C("l_shipdate"), dd(addYears(p.Date, 1))),
			expr.Ge(expr.C("l_discount"), expr.Flt(p.Float1-0.011)),
			expr.Le(expr.C("l_discount"), expr.Flt(p.Float1+0.011)),
			expr.Lt(expr.C("l_quantity"), expr.Int(p.Int1))))
	return plan.NewAggregate(sel, nil,
		plan.A(plan.Sum, expr.Mul(expr.C("l_extendedprice"), expr.C("l_discount")), "revenue"))
}

// Q7: volume shipping.
func Q7(p Params) *plan.Node {
	n1 := plan.NewProject(plan.NewScan("nation", "n_nationkey", "n_name"),
		plan.P(expr.C("n_nationkey"), "n1_key"),
		plan.P(expr.C("n_name"), "supp_nation"))
	n2 := plan.NewProject(plan.NewScan("nation", "n_nationkey", "n_name"),
		plan.P(expr.C("n_nationkey"), "n2_key"),
		plan.P(expr.C("n_name"), "cust_nation"))
	sup := plan.NewJoin(plan.Inner,
		plan.NewScan("supplier", "s_suppkey", "s_nationkey"), n1,
		[]string{"s_nationkey"}, []string{"n1_key"})
	li := plan.NewSelect(
		plan.NewScan("lineitem", "l_orderkey", "l_suppkey", "l_extendedprice",
			"l_discount", "l_shipdate"),
		expr.Between(expr.C("l_shipdate"),
			expr.DateLit("1995-01-01"), expr.DateLit("1996-12-31")))
	j1 := plan.NewJoin(plan.Inner, li, sup, []string{"l_suppkey"}, []string{"s_suppkey"})
	cust := plan.NewJoin(plan.Inner,
		plan.NewScan("customer", "c_custkey", "c_nationkey"), n2,
		[]string{"c_nationkey"}, []string{"n2_key"})
	ord := plan.NewJoin(plan.Inner,
		plan.NewScan("orders", "o_orderkey", "o_custkey"), cust,
		[]string{"o_custkey"}, []string{"c_custkey"})
	j2 := plan.NewJoin(plan.Inner, j1, ord, []string{"l_orderkey"}, []string{"o_orderkey"})
	fil := plan.NewSelect(j2, expr.OrOf(
		expr.AndOf(
			expr.Eq(expr.C("supp_nation"), expr.Str(p.Str1)),
			expr.Eq(expr.C("cust_nation"), expr.Str(p.Str2))),
		expr.AndOf(
			expr.Eq(expr.C("supp_nation"), expr.Str(p.Str2)),
			expr.Eq(expr.C("cust_nation"), expr.Str(p.Str1)))))
	proj := plan.NewProject(fil,
		plan.P(expr.C("supp_nation"), "supp_nation"),
		plan.P(expr.C("cust_nation"), "cust_nation"),
		plan.P(expr.YearOf(expr.C("l_shipdate")), "l_year"),
		plan.P(revenue(), "volume"))
	agg := plan.NewAggregate(proj, []string{"supp_nation", "cust_nation", "l_year"},
		plan.A(plan.Sum, expr.C("volume"), "revenue"))
	return plan.NewSort(agg,
		plan.SortKey{Col: "supp_nation"}, plan.SortKey{Col: "cust_nation"},
		plan.SortKey{Col: "l_year"})
}

// Q8: national market share.
func Q8(p Params) *plan.Node {
	parts := plan.NewSelect(plan.NewScan("part", "p_partkey", "p_type"),
		expr.Eq(expr.C("p_type"), expr.Str(p.Str3)))
	li := plan.NewJoin(plan.Inner,
		plan.NewScan("lineitem", "l_orderkey", "l_partkey", "l_suppkey",
			"l_extendedprice", "l_discount"),
		parts, []string{"l_partkey"}, []string{"p_partkey"})
	n2 := plan.NewProject(plan.NewScan("nation", "n_nationkey", "n_name"),
		plan.P(expr.C("n_nationkey"), "n2_key"),
		plan.P(expr.C("n_name"), "nation2"))
	sup := plan.NewJoin(plan.Inner,
		plan.NewScan("supplier", "s_suppkey", "s_nationkey"), n2,
		[]string{"s_nationkey"}, []string{"n2_key"})
	j1 := plan.NewJoin(plan.Inner, li, sup, []string{"l_suppkey"}, []string{"s_suppkey"})
	ord := plan.NewSelect(plan.NewScan("orders", "o_orderkey", "o_custkey", "o_orderdate"),
		expr.Between(expr.C("o_orderdate"),
			expr.DateLit("1995-01-01"), expr.DateLit("1996-12-31")))
	j2 := plan.NewJoin(plan.Inner, j1, ord, []string{"l_orderkey"}, []string{"o_orderkey"})
	// Customers restricted to the region.
	natr := plan.NewJoin(plan.Inner,
		plan.NewScan("nation", "n_nationkey", "n_regionkey"),
		plan.NewSelect(plan.NewScan("region", "r_regionkey", "r_name"),
			expr.Eq(expr.C("r_name"), expr.Str(p.Str2))),
		[]string{"n_regionkey"}, []string{"r_regionkey"})
	natrP := plan.NewProject(natr, plan.P(expr.C("n_nationkey"), "nr_key"))
	cust := plan.NewJoin(plan.Inner,
		plan.NewScan("customer", "c_custkey", "c_nationkey"), natrP,
		[]string{"c_nationkey"}, []string{"nr_key"})
	j3 := plan.NewJoin(plan.Inner, j2, cust, []string{"o_custkey"}, []string{"c_custkey"})
	proj := plan.NewProject(j3,
		plan.P(expr.YearOf(expr.C("o_orderdate")), "o_year"),
		plan.P(revenue(), "volume"),
		plan.P(expr.C("nation2"), "nation2"))
	agg := plan.NewAggregate(proj, []string{"o_year"},
		plan.A(plan.Sum, expr.CaseWhen(
			expr.Eq(expr.C("nation2"), expr.Str(p.Str1)),
			expr.C("volume"), expr.Flt(0)), "mkt"),
		plan.A(plan.Sum, expr.C("volume"), "total"))
	share := plan.NewProject(agg,
		plan.P(expr.C("o_year"), "o_year"),
		plan.P(expr.Div(expr.C("mkt"), expr.C("total")), "mkt_share"))
	return plan.NewSort(share, plan.SortKey{Col: "o_year"})
}

// Q9: product type profit measure.
func Q9(p Params) *plan.Node {
	parts := plan.NewSelect(plan.NewScan("part", "p_partkey", "p_name"),
		expr.LikeOf(expr.C("p_name"), "%"+p.Str1+"%"))
	li := plan.NewJoin(plan.Inner,
		plan.NewScan("lineitem", "l_orderkey", "l_partkey", "l_suppkey",
			"l_quantity", "l_extendedprice", "l_discount"),
		parts, []string{"l_partkey"}, []string{"p_partkey"})
	sup := plan.NewJoin(plan.Inner,
		plan.NewScan("supplier", "s_suppkey", "s_nationkey"),
		plan.NewScan("nation", "n_nationkey", "n_name"),
		[]string{"s_nationkey"}, []string{"n_nationkey"})
	j1 := plan.NewJoin(plan.Inner, li, sup, []string{"l_suppkey"}, []string{"s_suppkey"})
	j2 := plan.NewJoin(plan.Inner, j1,
		plan.NewScan("partsupp", "ps_partkey", "ps_suppkey", "ps_supplycost"),
		[]string{"l_partkey", "l_suppkey"}, []string{"ps_partkey", "ps_suppkey"})
	j3 := plan.NewJoin(plan.Inner, j2,
		plan.NewScan("orders", "o_orderkey", "o_orderdate"),
		[]string{"l_orderkey"}, []string{"o_orderkey"})
	proj := plan.NewProject(j3,
		plan.P(expr.C("n_name"), "nation"),
		plan.P(expr.YearOf(expr.C("o_orderdate")), "o_year"),
		plan.P(expr.Sub(revenue(),
			expr.Mul(expr.C("ps_supplycost"), expr.C("l_quantity"))), "amount"))
	agg := plan.NewAggregate(proj, []string{"nation", "o_year"},
		plan.A(plan.Sum, expr.C("amount"), "sum_profit"))
	return plan.NewSort(agg,
		plan.SortKey{Col: "nation"}, plan.SortKey{Col: "o_year", Desc: true})
}

// Q10: returned item reporting.
func Q10(p Params) *plan.Node {
	ord := plan.NewSelect(
		plan.NewScan("orders", "o_orderkey", "o_custkey", "o_orderdate"),
		expr.AndOf(
			expr.Ge(expr.C("o_orderdate"), dd(p.Date)),
			expr.Lt(expr.C("o_orderdate"), dd(addMonths(p.Date, 3)))))
	li := plan.NewSelect(
		plan.NewScan("lineitem", "l_orderkey", "l_extendedprice", "l_discount", "l_returnflag"),
		expr.Eq(expr.C("l_returnflag"), expr.Str("R")))
	j1 := plan.NewJoin(plan.Inner, li, ord, []string{"l_orderkey"}, []string{"o_orderkey"})
	j2 := plan.NewJoin(plan.Inner, j1,
		plan.NewScan("customer", "c_custkey", "c_name", "c_acctbal", "c_phone", "c_nationkey"),
		[]string{"o_custkey"}, []string{"c_custkey"})
	j3 := plan.NewJoin(plan.Inner, j2,
		plan.NewScan("nation", "n_nationkey", "n_name"),
		[]string{"c_nationkey"}, []string{"n_nationkey"})
	agg := plan.NewAggregate(j3,
		[]string{"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name"},
		plan.A(plan.Sum, revenue(), "revenue"))
	return plan.NewTopN(agg, []plan.SortKey{{Col: "revenue", Desc: true}}, 20)
}

// Q11: important stock identification.
func Q11(p Params) *plan.Node {
	base := plan.NewProject(
		plan.NewJoin(plan.Inner,
			plan.NewScan("partsupp", "ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"),
			plan.NewJoin(plan.Inner,
				plan.NewScan("supplier", "s_suppkey", "s_nationkey"),
				plan.NewSelect(plan.NewScan("nation", "n_nationkey", "n_name"),
					expr.Eq(expr.C("n_name"), expr.Str(p.Str1))),
				[]string{"s_nationkey"}, []string{"n_nationkey"}),
			[]string{"ps_suppkey"}, []string{"s_suppkey"}),
		plan.P(expr.C("ps_partkey"), "ps_partkey"),
		plan.P(expr.Mul(expr.C("ps_supplycost"), expr.C("ps_availqty")), "value"))
	grp := plan.NewAggregate(base, []string{"ps_partkey"},
		plan.A(plan.Sum, expr.C("value"), "value"))
	tot := plan.NewProject(
		plan.NewAggregate(base.Clone(), nil, plan.A(plan.Sum, expr.C("value"), "total")),
		plan.P(expr.Mul(expr.C("total"), expr.Flt(p.Float1)), "threshold"))
	cross := plan.NewJoin(plan.Inner, grp, tot, nil, nil)
	fil := plan.NewSelect(cross, expr.Gt(expr.C("value"), expr.C("threshold")))
	proj := plan.NewProject(fil,
		plan.P(expr.C("ps_partkey"), "ps_partkey"),
		plan.P(expr.C("value"), "value"))
	return plan.NewSort(proj, plan.SortKey{Col: "value", Desc: true})
}

// Q12: shipping modes and order priority.
func Q12(p Params) *plan.Node {
	li := plan.NewSelect(
		plan.NewScan("lineitem", "l_orderkey", "l_shipmode", "l_shipdate",
			"l_commitdate", "l_receiptdate"),
		expr.AndOf(
			expr.InStrings(expr.C("l_shipmode"), p.Strs...),
			expr.Lt(expr.C("l_commitdate"), expr.C("l_receiptdate")),
			expr.Lt(expr.C("l_shipdate"), expr.C("l_commitdate")),
			expr.Ge(expr.C("l_receiptdate"), dd(p.Date)),
			expr.Lt(expr.C("l_receiptdate"), dd(addYears(p.Date, 1)))))
	j := plan.NewJoin(plan.Inner, li,
		plan.NewScan("orders", "o_orderkey", "o_orderpriority"),
		[]string{"l_orderkey"}, []string{"o_orderkey"})
	isHigh := expr.InStrings(expr.C("o_orderpriority"), "1-URGENT", "2-HIGH")
	agg := plan.NewAggregate(j, []string{"l_shipmode"},
		plan.A(plan.Sum, expr.CaseWhen(isHigh, expr.Int(1), expr.Int(0)), "high_line_count"),
		plan.A(plan.Sum, expr.CaseWhen(isHigh.Clone(), expr.Int(0), expr.Int(1)), "low_line_count"))
	return plan.NewSort(agg, plan.SortKey{Col: "l_shipmode"})
}

// Q13: customer distribution.
func Q13(p Params) *plan.Node {
	ord := plan.NewSelect(plan.NewScan("orders", "o_orderkey", "o_custkey", "o_comment"),
		expr.NotLikeOf(expr.C("o_comment"), "%"+p.Str1+"%"+p.Str2+"%"))
	oj := plan.NewJoin(plan.LeftOuter,
		plan.NewScan("customer", "c_custkey"), ord,
		[]string{"c_custkey"}, []string{"o_custkey"})
	perCust := plan.NewAggregate(oj, []string{"c_custkey"},
		plan.A(plan.Sum, expr.C(plan.MatchCol), "c_count"))
	dist := plan.NewAggregate(perCust, []string{"c_count"},
		plan.A(plan.Count, nil, "custdist"))
	return plan.NewSort(dist,
		plan.SortKey{Col: "custdist", Desc: true}, plan.SortKey{Col: "c_count", Desc: true})
}

// Q14: promotion effect.
func Q14(p Params) *plan.Node {
	li := plan.NewSelect(
		plan.NewScan("lineitem", "l_partkey", "l_extendedprice", "l_discount", "l_shipdate"),
		expr.AndOf(
			expr.Ge(expr.C("l_shipdate"), dd(p.Date)),
			expr.Lt(expr.C("l_shipdate"), dd(addMonths(p.Date, 1)))))
	j := plan.NewJoin(plan.Inner, li,
		plan.NewScan("part", "p_partkey", "p_type"),
		[]string{"l_partkey"}, []string{"p_partkey"})
	agg := plan.NewAggregate(j, nil,
		plan.A(plan.Sum, expr.CaseWhen(
			expr.LikeOf(expr.C("p_type"), "PROMO%"),
			revenue(), expr.Flt(0)), "promo"),
		plan.A(plan.Sum, revenue(), "total"))
	return plan.NewProject(agg,
		plan.P(expr.Div(expr.Mul(expr.Flt(100), expr.C("promo")), expr.C("total")),
			"promo_revenue"))
}

// Q15: top supplier (the revenue view appears twice; the recycler unifies
// the shared subtree, exercising intra-query sharing).
func Q15(p Params) *plan.Node {
	rev := plan.NewAggregate(
		plan.NewSelect(
			plan.NewScan("lineitem", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"),
			expr.AndOf(
				expr.Ge(expr.C("l_shipdate"), dd(p.Date)),
				expr.Lt(expr.C("l_shipdate"), dd(addMonths(p.Date, 3))))),
		[]string{"l_suppkey"},
		plan.A(plan.Sum, revenue(), "total_revenue"))
	maxr := plan.NewProject(
		plan.NewAggregate(rev.Clone(), nil,
			plan.A(plan.Max, expr.C("total_revenue"), "max_rev")),
		plan.P(expr.C("max_rev"), "max_rev"))
	cross := plan.NewJoin(plan.Inner, rev, maxr, nil, nil)
	fil := plan.NewSelect(cross, expr.Eq(expr.C("total_revenue"), expr.C("max_rev")))
	j := plan.NewJoin(plan.Inner, fil,
		plan.NewScan("supplier", "s_suppkey", "s_name"),
		[]string{"l_suppkey"}, []string{"s_suppkey"})
	proj := plan.NewProject(j,
		plan.P(expr.C("s_suppkey"), "s_suppkey"),
		plan.P(expr.C("s_name"), "s_name"),
		plan.P(expr.C("total_revenue"), "total_revenue"))
	return plan.NewSort(proj, plan.SortKey{Col: "s_suppkey"})
}

// q16Pred is the Q16 part filter.
func q16Pred(p Params) expr.Expr {
	sizes := make([]vector.Datum, len(p.Ints))
	for i, s := range p.Ints {
		sizes[i] = vector.NewInt64Datum(s)
	}
	return expr.AndOf(
		expr.Ne(expr.C("p_brand"), expr.Str(p.Str1)),
		expr.NotLikeOf(expr.C("p_type"), p.Str2+"%"),
		expr.In(expr.C("p_size"), sizes...))
}

// q16Dedup is the shared Q16 core: distinct (brand, type, size, suppkey)
// combinations from non-complaint suppliers.
func q16Dedup() *plan.Node {
	ps := plan.NewJoin(plan.Inner,
		plan.NewScan("partsupp", "ps_partkey", "ps_suppkey"),
		plan.NewScan("part", "p_partkey", "p_brand", "p_type", "p_size"),
		[]string{"ps_partkey"}, []string{"p_partkey"})
	good := plan.NewJoin(plan.LeftAnti, ps,
		plan.NewSelect(plan.NewScan("supplier", "s_suppkey", "s_comment"),
			expr.LikeOf(expr.C("s_comment"), "%Customer%Complaints%")),
		[]string{"ps_suppkey"}, []string{"s_suppkey"})
	return plan.NewAggregate(good,
		[]string{"p_brand", "p_type", "p_size", "ps_suppkey"},
		plan.A(plan.Count, nil, "dup"))
}

// Q16: parts/supplier relationship (selection pushed below the distinct
// aggregation, the conventional optimized shape).
func Q16(p Params) *plan.Node {
	ps := plan.NewJoin(plan.Inner,
		plan.NewScan("partsupp", "ps_partkey", "ps_suppkey"),
		plan.NewSelect(
			plan.NewScan("part", "p_partkey", "p_brand", "p_type", "p_size"),
			q16Pred(p)),
		[]string{"ps_partkey"}, []string{"p_partkey"})
	good := plan.NewJoin(plan.LeftAnti, ps,
		plan.NewSelect(plan.NewScan("supplier", "s_suppkey", "s_comment"),
			expr.LikeOf(expr.C("s_comment"), "%Customer%Complaints%")),
		[]string{"ps_suppkey"}, []string{"s_suppkey"})
	dedup := plan.NewAggregate(good,
		[]string{"p_brand", "p_type", "p_size", "ps_suppkey"},
		plan.A(plan.Count, nil, "dup"))
	agg := plan.NewAggregate(dedup, []string{"p_brand", "p_type", "p_size"},
		plan.A(plan.Count, nil, "supplier_cnt"))
	return plan.NewSort(agg,
		plan.SortKey{Col: "supplier_cnt", Desc: true},
		plan.SortKey{Col: "p_brand"}, plan.SortKey{Col: "p_type"}, plan.SortKey{Col: "p_size"})
}

// Q16PA: the manually altered proactive variant (§V: "we simulate their
// benefit by manually altering query plans"): the part filter is hoisted
// above the parameter-independent dedup aggregation so the cube-caching rule
// fires on the aggregate-over-selection pattern.
func Q16PA(p Params) *plan.Node {
	sel := plan.NewSelect(q16Dedup(), q16Pred(p))
	agg := plan.NewAggregate(sel, []string{"p_brand", "p_type", "p_size"},
		plan.A(plan.Count, nil, "supplier_cnt"))
	return plan.NewSort(agg,
		plan.SortKey{Col: "supplier_cnt", Desc: true},
		plan.SortKey{Col: "p_brand"}, plan.SortKey{Col: "p_type"}, plan.SortKey{Col: "p_size"})
}

// Q17: small-quantity-order revenue.
func Q17(p Params) *plan.Node {
	parts := plan.NewSelect(
		plan.NewScan("part", "p_partkey", "p_brand", "p_container"),
		expr.AndOf(
			expr.Eq(expr.C("p_brand"), expr.Str(p.Str1)),
			expr.Eq(expr.C("p_container"), expr.Str(p.Str2))))
	avgq := plan.NewProject(
		plan.NewAggregate(
			plan.NewScan("lineitem", "l_partkey", "l_quantity"),
			[]string{"l_partkey"},
			plan.A(plan.Avg, expr.C("l_quantity"), "avg_qty")),
		plan.P(expr.C("l_partkey"), "aq_partkey"),
		plan.P(expr.Mul(expr.Flt(0.2), expr.C("avg_qty")), "qty_limit"))
	li := plan.NewJoin(plan.Inner,
		plan.NewScan("lineitem", "l_partkey", "l_quantity", "l_extendedprice"),
		parts, []string{"l_partkey"}, []string{"p_partkey"})
	j := plan.NewJoin(plan.Inner, li, avgq, []string{"l_partkey"}, []string{"aq_partkey"})
	fil := plan.NewSelect(j, expr.Lt(expr.C("l_quantity"), expr.C("qty_limit")))
	agg := plan.NewAggregate(fil, nil,
		plan.A(plan.Sum, expr.C("l_extendedprice"), "total"))
	return plan.NewProject(agg,
		plan.P(expr.Div(expr.C("total"), expr.Flt(7)), "avg_yearly"))
}

// Q18: large volume customers.
func Q18(p Params) *plan.Node {
	big := plan.NewSelect(
		plan.NewAggregate(
			plan.NewScan("lineitem", "l_orderkey", "l_quantity"),
			[]string{"l_orderkey"},
			plan.A(plan.Sum, expr.C("l_quantity"), "total_qty")),
		expr.Gt(expr.C("total_qty"), expr.Int(p.Int1)))
	j1 := plan.NewJoin(plan.Inner, big,
		plan.NewScan("orders", "o_orderkey", "o_custkey", "o_totalprice", "o_orderdate"),
		[]string{"l_orderkey"}, []string{"o_orderkey"})
	j2 := plan.NewJoin(plan.Inner, j1,
		plan.NewScan("customer", "c_custkey", "c_name"),
		[]string{"o_custkey"}, []string{"c_custkey"})
	top := plan.NewTopN(j2, []plan.SortKey{
		{Col: "o_totalprice", Desc: true}, {Col: "o_orderdate"},
	}, 100)
	return plan.NewProject(top,
		plan.P(expr.C("c_name"), "c_name"),
		plan.P(expr.C("c_custkey"), "c_custkey"),
		plan.P(expr.C("o_orderkey"), "o_orderkey"),
		plan.P(expr.C("o_orderdate"), "o_orderdate"),
		plan.P(expr.C("o_totalprice"), "o_totalprice"),
		plan.P(expr.C("total_qty"), "total_qty"))
}

// Q19: discounted revenue (disjunctive predicate over lineitem x part).
func Q19(p Params) *plan.Node {
	li := plan.NewSelect(
		plan.NewScan("lineitem", "l_partkey", "l_quantity", "l_extendedprice",
			"l_discount", "l_shipinstruct", "l_shipmode"),
		expr.AndOf(
			expr.InStrings(expr.C("l_shipmode"), "AIR", "AIR REG"),
			expr.Eq(expr.C("l_shipinstruct"), expr.Str("DELIVER IN PERSON"))))
	j := plan.NewJoin(plan.Inner, li,
		plan.NewScan("part", "p_partkey", "p_brand", "p_container", "p_size"),
		[]string{"l_partkey"}, []string{"p_partkey"})
	arm := func(brand string, containers []string, qlo int64, sizeHi int64) expr.Expr {
		cs := make([]vector.Datum, len(containers))
		for i, c := range containers {
			cs[i] = vector.NewStringDatum(c)
		}
		return expr.AndOf(
			expr.Eq(expr.C("p_brand"), expr.Str(brand)),
			expr.In(expr.C("p_container"), cs...),
			expr.Ge(expr.C("l_quantity"), expr.Int(qlo)),
			expr.Le(expr.C("l_quantity"), expr.Int(qlo+10)),
			expr.Between(expr.C("p_size"), expr.Int(1), expr.Int(sizeHi)))
	}
	sel := plan.NewSelect(j, expr.OrOf(
		arm(p.Brands[0], []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, p.Quants[0], 5),
		arm(p.Brands[1], []string{"MED BAG", "MED BOX", "MED PKG", "MED PACK"}, p.Quants[1], 10),
		arm(p.Brands[2], []string{"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, p.Quants[2], 15)))
	return plan.NewAggregate(sel, nil, plan.A(plan.Sum, revenue(), "revenue"))
}

// Q20: potential part promotion.
func Q20(p Params) *plan.Node {
	qty := plan.NewAggregate(
		plan.NewSelect(
			plan.NewScan("lineitem", "l_partkey", "l_suppkey", "l_quantity", "l_shipdate"),
			expr.AndOf(
				expr.Ge(expr.C("l_shipdate"), dd(p.Date)),
				expr.Lt(expr.C("l_shipdate"), dd(addYears(p.Date, 1))))),
		[]string{"l_partkey", "l_suppkey"},
		plan.A(plan.Sum, expr.C("l_quantity"), "sq"))
	ps := plan.NewJoin(plan.Inner,
		plan.NewScan("partsupp", "ps_partkey", "ps_suppkey", "ps_availqty"),
		qty, []string{"ps_partkey", "ps_suppkey"}, []string{"l_partkey", "l_suppkey"})
	fil := plan.NewSelect(ps,
		expr.Gt(expr.C("ps_availqty"), expr.Mul(expr.Flt(0.5), expr.C("sq"))))
	parts := plan.NewSelect(plan.NewScan("part", "p_partkey", "p_name"),
		expr.LikeOf(expr.C("p_name"), p.Str1+"%"))
	fil2 := plan.NewJoin(plan.LeftSemi, fil, parts,
		[]string{"ps_partkey"}, []string{"p_partkey"})
	sup := plan.NewJoin(plan.Inner,
		plan.NewScan("supplier", "s_suppkey", "s_name", "s_nationkey"),
		plan.NewSelect(plan.NewScan("nation", "n_nationkey", "n_name"),
			expr.Eq(expr.C("n_name"), expr.Str(p.Str2))),
		[]string{"s_nationkey"}, []string{"n_nationkey"})
	res := plan.NewJoin(plan.LeftSemi, sup, fil2,
		[]string{"s_suppkey"}, []string{"ps_suppkey"})
	proj := plan.NewProject(res, plan.P(expr.C("s_name"), "s_name"))
	return plan.NewSort(proj, plan.SortKey{Col: "s_name"})
}

// Q21: suppliers who kept orders waiting. EXISTS / NOT EXISTS over "another
// supplier on the same order" decorrelate into per-order supplier counts.
func Q21(p Params) *plan.Node {
	sup := plan.NewJoin(plan.Inner,
		plan.NewScan("supplier", "s_suppkey", "s_name", "s_nationkey"),
		plan.NewSelect(plan.NewScan("nation", "n_nationkey", "n_name"),
			expr.Eq(expr.C("n_name"), expr.Str(p.Str1))),
		[]string{"s_nationkey"}, []string{"n_nationkey"})
	l1 := plan.NewSelect(
		plan.NewScan("lineitem", "l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate"),
		expr.Gt(expr.C("l_receiptdate"), expr.C("l_commitdate")))
	j1 := plan.NewJoin(plan.Inner, l1, sup, []string{"l_suppkey"}, []string{"s_suppkey"})
	ordF := plan.NewSelect(plan.NewScan("orders", "o_orderkey", "o_orderstatus"),
		expr.Eq(expr.C("o_orderstatus"), expr.Str("F")))
	j2 := plan.NewJoin(plan.Inner, j1, ordF, []string{"l_orderkey"}, []string{"o_orderkey"})
	// Orders served by at least two distinct suppliers.
	multi := plan.NewSelect(
		plan.NewAggregate(
			plan.NewAggregate(
				plan.NewScan("lineitem", "l_orderkey", "l_suppkey"),
				[]string{"l_orderkey", "l_suppkey"},
				plan.A(plan.Count, nil, "dup")),
			[]string{"l_orderkey"},
			plan.A(plan.Count, nil, "nsupp")),
		expr.Ge(expr.C("nsupp"), expr.Int(2)))
	j3 := plan.NewJoin(plan.LeftSemi, j2, multi,
		[]string{"l_orderkey"}, []string{"l_orderkey"})
	// Orders where exactly one supplier was late.
	lateOne := plan.NewSelect(
		plan.NewAggregate(
			plan.NewAggregate(
				plan.NewSelect(
					plan.NewScan("lineitem", "l_orderkey", "l_suppkey",
						"l_receiptdate", "l_commitdate"),
					expr.Gt(expr.C("l_receiptdate"), expr.C("l_commitdate"))),
				[]string{"l_orderkey", "l_suppkey"},
				plan.A(plan.Count, nil, "dup")),
			[]string{"l_orderkey"},
			plan.A(plan.Count, nil, "nlate")),
		expr.Eq(expr.C("nlate"), expr.Int(1)))
	j4 := plan.NewJoin(plan.LeftSemi, j3, lateOne,
		[]string{"l_orderkey"}, []string{"l_orderkey"})
	agg := plan.NewAggregate(j4, []string{"s_name"},
		plan.A(plan.Count, nil, "numwait"))
	return plan.NewTopN(agg, []plan.SortKey{
		{Col: "numwait", Desc: true}, {Col: "s_name"},
	}, 100)
}

// Q22: global sales opportunity.
func Q22(p Params) *plan.Node {
	cust := plan.NewProject(
		plan.NewScan("customer", "c_custkey", "c_phone", "c_acctbal"),
		plan.P(expr.C("c_custkey"), "c_custkey"),
		plan.P(expr.SubstrOf(expr.C("c_phone"), 1, 2), "cntrycode"),
		plan.P(expr.C("c_acctbal"), "c_acctbal"))
	inCodes := plan.NewSelect(cust, expr.InStrings(expr.C("cntrycode"), p.Strs...))
	avgBal := plan.NewProject(
		plan.NewAggregate(
			plan.NewSelect(inCodes.Clone(), expr.Gt(expr.C("c_acctbal"), expr.Flt(0))),
			nil, plan.A(plan.Avg, expr.C("c_acctbal"), "ab")),
		plan.P(expr.C("ab"), "avg_bal"))
	cross := plan.NewJoin(plan.Inner, inCodes, avgBal, nil, nil)
	fil := plan.NewSelect(cross, expr.Gt(expr.C("c_acctbal"), expr.C("avg_bal")))
	noOrd := plan.NewJoin(plan.LeftAnti, fil,
		plan.NewScan("orders", "o_custkey"),
		[]string{"c_custkey"}, []string{"o_custkey"})
	agg := plan.NewAggregate(noOrd, []string{"cntrycode"},
		plan.A(plan.Count, nil, "numcust"),
		plan.A(plan.Sum, expr.C("c_acctbal"), "totacctbal"))
	return plan.NewSort(agg, plan.SortKey{Col: "cntrycode"})
}
