package tpch

import (
	"fmt"
	"math/rand"

	"recycledb/internal/vector"
)

// Params holds the substitution parameters of one query instance. Fields are
// reused across query patterns; only the ones a pattern reads are set. The
// deliberately small parameter domains (per the TPC-H specification) are
// what creates sharing potential across streams (§V).
type Params struct {
	Q int // query pattern 1..22

	Date   int64 // a date parameter (days since epoch)
	Date2  int64
	Int1   int64
	Int2   int64
	Float1 float64
	Str1   string
	Str2   string
	Str3   string
	Strs   []string
	Ints   []int64
	Floats []float64
	Quants []int64
	Brands []string
}

// String renders a compact description, useful in traces.
func (p Params) String() string {
	return fmt.Sprintf("Q%d(%s)", p.Q, p.key())
}

func (p Params) key() string {
	return fmt.Sprintf("%d|%d|%d|%d|%.3f|%s|%s|%s|%v|%v|%v|%v|%v",
		p.Date, p.Date2, p.Int1, p.Int2, p.Float1, p.Str1, p.Str2, p.Str3,
		p.Strs, p.Ints, p.Floats, p.Quants, p.Brands)
}

// NewParams draws parameters for query pattern q from the spec's domains.
func NewParams(q int, rng *rand.Rand) Params {
	p := Params{Q: q}
	switch q {
	case 1:
		// DELTA in [60, 120] days before 1998-12-01.
		p.Date = vector.MustParseDate("1998-12-01") - int64(60+rng.Intn(61))
	case 2:
		p.Int1 = int64(rng.Intn(50) + 1)           // SIZE
		p.Str1 = TypeSyl3[rng.Intn(len(TypeSyl3))] // TYPE suffix
		p.Str2 = Regions[rng.Intn(len(Regions))]   // REGION
	case 3:
		p.Str1 = Segments[rng.Intn(len(Segments))]
		p.Date = vector.MustParseDate("1995-03-01") + int64(rng.Intn(31))
	case 4:
		// First day of a month between 1993-01 and 1997-10.
		y := 1993 + rng.Intn(5)
		m := 1 + rng.Intn(12)
		if y == 1997 && m > 10 {
			m = 10
		}
		p.Date = vector.DaysFromDate(y, m, 1)
	case 5:
		p.Str1 = Regions[rng.Intn(len(Regions))]
		p.Date = vector.DaysFromDate(1993+rng.Intn(5), 1, 1)
	case 6:
		p.Date = vector.DaysFromDate(1993+rng.Intn(5), 1, 1)
		p.Float1 = float64(2+rng.Intn(8)) / 100 // DISCOUNT
		p.Int1 = int64(24 + rng.Intn(2))        // QUANTITY
	case 7, 8:
		i := rng.Intn(len(Nations))
		j := rng.Intn(len(Nations))
		for j == i {
			j = rng.Intn(len(Nations))
		}
		p.Str1 = Nations[i].Name
		p.Str2 = Nations[j].Name
		if q == 8 {
			p.Str2 = Regions[Nations[i].Region]
			p.Str3 = TypeSyl1[rng.Intn(6)] + " " + TypeSyl2[rng.Intn(5)] + " " + TypeSyl3[rng.Intn(5)]
		}
	case 9:
		p.Str1 = Colors[rng.Intn(len(Colors))]
	case 10:
		y := 1993 + rng.Intn(2)
		m := 1 + rng.Intn(12)
		if y == 1993 && m == 1 {
			m = 2
		}
		p.Date = vector.DaysFromDate(y, m, 1)
	case 11:
		p.Str1 = Nations[rng.Intn(len(Nations))].Name
		p.Float1 = 0.0001
	case 12:
		i := rng.Intn(len(ShipModes))
		j := rng.Intn(len(ShipModes))
		for j == i {
			j = rng.Intn(len(ShipModes))
		}
		p.Strs = []string{ShipModes[i], ShipModes[j]}
		p.Date = vector.DaysFromDate(1993+rng.Intn(5), 1, 1)
	case 13:
		p.Str1 = CommentWords1[rng.Intn(len(CommentWords1))]
		p.Str2 = CommentWords2[rng.Intn(len(CommentWords2))]
	case 14:
		y := 1993 + rng.Intn(5)
		m := 1 + rng.Intn(12)
		p.Date = vector.DaysFromDate(y, m, 1)
	case 15:
		y := 1993 + rng.Intn(5)
		m := 1 + rng.Intn(10)
		p.Date = vector.DaysFromDate(y, m, 1)
	case 16:
		p.Str1 = fmt.Sprintf("Brand#%d%d", rng.Intn(5)+1, rng.Intn(5)+1)
		p.Str2 = TypeSyl1[rng.Intn(6)] + " " + TypeSyl2[rng.Intn(5)]
		sizes := rng.Perm(50)[:8]
		p.Ints = make([]int64, 8)
		for i, s := range sizes {
			p.Ints[i] = int64(s + 1)
		}
	case 17:
		p.Str1 = fmt.Sprintf("Brand#%d%d", rng.Intn(5)+1, rng.Intn(5)+1)
		p.Str2 = ContainerSyl1[rng.Intn(5)] + " " + ContainerSyl2[rng.Intn(8)]
	case 18:
		p.Int1 = int64(312 + rng.Intn(4))
	case 19:
		p.Quants = []int64{int64(1 + rng.Intn(10)), int64(10 + rng.Intn(11)), int64(20 + rng.Intn(11))}
		p.Brands = []string{
			fmt.Sprintf("Brand#%d%d", rng.Intn(5)+1, rng.Intn(5)+1),
			fmt.Sprintf("Brand#%d%d", rng.Intn(5)+1, rng.Intn(5)+1),
			fmt.Sprintf("Brand#%d%d", rng.Intn(5)+1, rng.Intn(5)+1),
		}
	case 20:
		p.Str1 = Colors[rng.Intn(len(Colors))]
		p.Date = vector.DaysFromDate(1993+rng.Intn(5), 1, 1)
		p.Str2 = Nations[rng.Intn(len(Nations))].Name
	case 21:
		p.Str1 = Nations[rng.Intn(len(Nations))].Name
	case 22:
		codes := rng.Perm(25)[:7]
		p.Strs = make([]string, 7)
		for i, c := range codes {
			p.Strs[i] = fmt.Sprintf("%d", c+10)
		}
	}
	return p
}

// Stream is one TPC-H throughput stream: the 22 patterns in a per-stream
// order with per-instance parameters, as produced by QGEN.
type Stream struct {
	ID      int
	Queries []Params
}

// NewStream builds stream id: a seeded permutation of the 22 patterns with
// parameters drawn from the shared parameter RNG domains.
func NewStream(id int, seed int64) Stream {
	rng := rand.New(rand.NewSource(seed + int64(id)*7919))
	perm := rng.Perm(22)
	s := Stream{ID: id}
	for _, qi := range perm {
		s.Queries = append(s.Queries, NewParams(qi+1, rng))
	}
	return s
}

// Streams builds n streams.
func Streams(n int, seed int64) []Stream {
	out := make([]Stream, n)
	for i := range out {
		out[i] = NewStream(i, seed)
	}
	return out
}
