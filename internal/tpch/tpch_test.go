package tpch

import (
	"fmt"
	"math/rand"
	"testing"

	"recycledb/internal/catalog"
	"recycledb/internal/exec"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// testDB generates a tiny database once for the package tests.
var testDB = func() *catalog.Catalog {
	cat := catalog.New()
	Generate(cat, 0.002, 1)
	return cat
}()

func TestGenerateRowCounts(t *testing.T) {
	for _, tc := range []struct {
		table string
		min   int
	}{
		{"region", 5}, {"nation", 25}, {"supplier", 8}, {"customer", 100},
		{"part", 100}, {"partsupp", 400}, {"orders", 1000}, {"lineitem", 1000},
	} {
		tbl, err := testDB.Table(tc.table)
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Rows() < tc.min {
			t.Errorf("%s has %d rows, want >= %d", tc.table, tbl.Rows(), tc.min)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c1 := catalog.New()
	Generate(c1, 0.001, 7)
	c2 := catalog.New()
	Generate(c2, 0.001, 7)
	t1, _ := c1.Table("lineitem")
	t2, _ := c2.Table("lineitem")
	if t1.Rows() != t2.Rows() {
		t.Fatalf("row counts differ: %d vs %d", t1.Rows(), t2.Rows())
	}
	s1, s2 := t1.Snapshot(), t2.Snapshot()
	for i := 0; i < t1.Rows(); i += 97 {
		if s1.Col(4).I64[i] != s2.Col(4).I64[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestGenerateKeyIntegrity(t *testing.T) {
	li, _ := testDB.Table("lineitem")
	ord, _ := testDB.Table("orders")
	ps, _ := testDB.Table("partsupp")

	lis, ords, pss := li.Snapshot(), ord.Snapshot(), ps.Snapshot()
	// Every l_orderkey exists in orders.
	okeys := make(map[int64]struct{})
	for _, k := range ords.Col(0).I64 {
		okeys[k] = struct{}{}
	}
	for _, k := range lis.Col(0).I64 {
		if _, ok := okeys[k]; !ok {
			t.Fatalf("lineitem references missing order %d", k)
		}
	}
	// Every (l_partkey, l_suppkey) exists in partsupp.
	pskeys := make(map[[2]int64]struct{})
	for i := 0; i < ps.Rows(); i++ {
		pskeys[[2]int64{pss.Col(0).I64[i], pss.Col(1).I64[i]}] = struct{}{}
	}
	for i := 0; i < li.Rows(); i++ {
		k := [2]int64{lis.Col(1).I64[i], lis.Col(2).I64[i]}
		if _, ok := pskeys[k]; !ok {
			t.Fatalf("lineitem row %d references missing partsupp %v", i, k)
		}
	}
	// partsupp pairs are unique.
	if len(pskeys) != ps.Rows() {
		t.Fatalf("partsupp has duplicate pairs: %d distinct of %d", len(pskeys), ps.Rows())
	}
}

func TestGenerateDomains(t *testing.T) {
	part, _ := testDB.Table("part")
	if d := part.DistinctCount("p_brand"); d > 25 {
		t.Errorf("p_brand distinct = %d, want <= 25", d)
	}
	if d := part.DistinctCount("p_type"); d > 150 {
		t.Errorf("p_type distinct = %d, want <= 150", d)
	}
	if d := part.DistinctCount("p_container"); d > 40 {
		t.Errorf("p_container distinct = %d, want <= 40", d)
	}
	li, _ := testDB.Table("lineitem")
	if d := li.DistinctCount("l_quantity"); d > 50 {
		t.Errorf("l_quantity distinct = %d, want <= 50", d)
	}
	if d := li.DistinctCount("l_shipmode"); d != 7 {
		t.Errorf("l_shipmode distinct = %d, want 7", d)
	}
	for _, s := range li.Snapshot().Col(8).Str { // l_returnflag (one snapshot; range evaluates once)
		if s != "R" && s != "A" && s != "N" {
			t.Fatalf("bad returnflag %q", s)
		}
	}
}

func TestAllQueriesResolveAndRun(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ctx := exec.NewCtx(testDB)
	for q := 1; q <= 22; q++ {
		p := NewParams(q, rng)
		n := Build(p)
		if err := n.Resolve(testDB); err != nil {
			t.Fatalf("Q%d resolve: %v", q, err)
		}
		op, err := exec.Build(ctx, n, nil, nil)
		if err != nil {
			t.Fatalf("Q%d build: %v", q, err)
		}
		res, err := exec.Run(ctx, op)
		if err != nil {
			t.Fatalf("Q%d run: %v", q, err)
		}
		_ = res
	}
}

func TestQ1Shape(t *testing.T) {
	p := Params{Q: 1, Date: vector.MustParseDate("1998-09-02")}
	n := Q1(p)
	if err := n.Resolve(testDB); err != nil {
		t.Fatal(err)
	}
	ctx := exec.NewCtx(testDB)
	op, _ := exec.Build(ctx, n, nil, nil)
	res, err := exec.Run(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	// At most 4 groups (R/F, A/F, N/F, N/O) and at least 3.
	if res.Rows() < 3 || res.Rows() > 4 {
		t.Fatalf("Q1 groups = %d", res.Rows())
	}
	b := res.Batches[0]
	// count_order is the last column; sums must be positive.
	last := len(b.Vecs) - 1
	for i := 0; i < b.Len(); i++ {
		if b.Vecs[last].I64[i] <= 0 {
			t.Fatalf("empty group emitted")
		}
		// avg_qty between 1 and 50 by construction.
		avg := b.Vecs[6].F64[i]
		if avg < 1 || avg > 50 {
			t.Fatalf("avg_qty = %v", avg)
		}
	}
}

func TestQ6ManualCheck(t *testing.T) {
	p := Params{Q: 6, Date: vector.DaysFromDate(1994, 1, 1), Float1: 0.06, Int1: 24}
	n := Q6(p)
	if err := n.Resolve(testDB); err != nil {
		t.Fatal(err)
	}
	ctx := exec.NewCtx(testDB)
	op, _ := exec.Build(ctx, n, nil, nil)
	res, err := exec.Run(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Batches[0].Vecs[0].F64[0]
	// Manual recomputation over raw storage.
	li, _ := testDB.Table("lineitem")
	lo, hi := vector.DaysFromDate(1994, 1, 1), vector.DaysFromDate(1995, 1, 1)
	var want float64
	lis := li.Snapshot()
	for i := 0; i < li.Rows(); i++ {
		ship := lis.Col(10).I64[i]
		disc := lis.Col(6).F64[i]
		qty := lis.Col(4).I64[i]
		if ship >= lo && ship < hi && disc >= 0.049 && disc <= 0.071 && qty < 24 {
			want += lis.Col(5).F64[i] * disc
		}
	}
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("Q6 = %v, manual = %v", got, want)
	}
}

func TestQ13CountsAllCustomers(t *testing.T) {
	p := Params{Q: 13, Str1: "special", Str2: "requests"}
	n := Q13(p)
	if err := n.Resolve(testDB); err != nil {
		t.Fatal(err)
	}
	ctx := exec.NewCtx(testDB)
	op, _ := exec.Build(ctx, n, nil, nil)
	res, err := exec.Run(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	cust, _ := testDB.Table("customer")
	var totalCust int64
	for _, b := range res.Batches {
		for i := 0; i < b.Len(); i++ {
			totalCust += b.Vecs[1].I64[i] // custdist
		}
	}
	if totalCust != int64(cust.Rows()) {
		t.Fatalf("distribution covers %d customers, want %d", totalCust, cust.Rows())
	}
}

func TestQ16PAMatchesQ16(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := NewParams(16, rng)
	run := func(n *plan.Node) map[string]int64 {
		if err := n.Resolve(testDB); err != nil {
			t.Fatal(err)
		}
		ctx := exec.NewCtx(testDB)
		op, _ := exec.Build(ctx, n, nil, nil)
		res, err := exec.Run(ctx, op)
		if err != nil {
			t.Fatal(err)
		}
		// Schema: p_brand, p_type, p_size, supplier_cnt.
		out := make(map[string]int64)
		for _, b := range res.Batches {
			for i := 0; i < b.Len(); i++ {
				key := fmt.Sprintf("%s|%s|%d",
					b.Vecs[0].Str[i], b.Vecs[1].Str[i], b.Vecs[2].I64[i])
				out[key] = b.Vecs[3].I64[i]
			}
		}
		return out
	}
	a := run(Q16(p))
	b := run(Q16PA(p))
	if len(a) != len(b) {
		t.Fatalf("group counts differ: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("group %s: %d vs %d", k, v, b[k])
		}
	}
}

func TestStreamsDeterministicAndComplete(t *testing.T) {
	s1 := NewStream(3, 42)
	s2 := NewStream(3, 42)
	if len(s1.Queries) != 22 {
		t.Fatalf("stream has %d queries", len(s1.Queries))
	}
	seen := make(map[int]bool)
	for i, q := range s1.Queries {
		if q.Q != s2.Queries[i].Q || q.key() != s2.Queries[i].key() {
			t.Fatal("streams not deterministic")
		}
		if seen[q.Q] {
			t.Fatalf("pattern Q%d repeated", q.Q)
		}
		seen[q.Q] = true
	}
	if len(seen) != 22 {
		t.Fatalf("stream covers %d patterns", len(seen))
	}
	// Different stream ids get different orders (almost surely).
	s3 := NewStream(4, 42)
	same := true
	for i := range s1.Queries {
		if s1.Queries[i].Q != s3.Queries[i].Q {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different streams have identical permutations")
	}
}

func TestParamsShareValues(t *testing.T) {
	// With limited domains, 64 draws of Q6 parameters must collide.
	rng := rand.New(rand.NewSource(1))
	seen := make(map[string]int)
	for i := 0; i < 64; i++ {
		p := NewParams(6, rng)
		seen[p.key()]++
	}
	max := 0
	for _, c := range seen {
		if c > max {
			max = c
		}
	}
	if max < 2 {
		t.Fatal("no parameter collisions in 64 draws; sharing potential is broken")
	}
}

func TestBuildPAUsesVariantOnlyForQ16(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p16 := NewParams(16, rng)
	if BuildPA(p16).String() == Build(p16).String() {
		t.Fatal("Q16 PA variant should differ")
	}
	p3 := NewParams(3, rng)
	if BuildPA(p3).String() != Build(p3).String() {
		t.Fatal("non-PA queries must be unchanged")
	}
}
