// Package tpch provides a scaled-down TPC-H substrate: a dbgen-style data
// generator with the spec's key relationships and value domains (so that
// query parameter selectivities behave like the benchmark's), plan builders
// for all 22 query patterns, and a qgen-style stream/parameter generator.
// The paper's throughput experiments (Figs. 7-10) run on it.
package tpch

import (
	"fmt"
	"math/rand"

	"recycledb/internal/catalog"
	"recycledb/internal/vector"
)

// Value domains from the TPC-H specification (abbreviated comments; the
// domains drive parameter sharing, which drives recycling potential).
var (
	Regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

	// Nations with their region index, in nationkey order.
	Nations = []struct {
		Name   string
		Region int
	}{
		{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
		{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
		{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
		{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
		{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
		{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
		{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
	}

	Segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	Priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	ShipModes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	Instructs  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}

	TypeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	TypeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	TypeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

	ContainerSyl1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	ContainerSyl2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}

	Colors = []string{
		"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
		"blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
		"chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
		"dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
		"frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
		"hot", "hotpink", "indian", "ivory", "khaki", "lace", "lavender", "lawn",
		"lemon", "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
		"midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange",
		"orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder",
		"puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
		"sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring",
		"steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white",
		"yellow",
	}

	CommentWords1 = []string{"special", "pending", "unusual", "express"}
	CommentWords2 = []string{"packages", "requests", "accounts", "deposits"}
)

// Row-count bases at scale factor 1, per the specification.
const (
	baseSupplier = 10000
	baseCustomer = 150000
	basePart     = 200000
	baseOrders   = 1500000
)

// Dates used throughout the generator (days since epoch).
var (
	startDate = vector.MustParseDate("1992-01-01")
	endDate   = vector.MustParseDate("1998-08-02") // last o_orderdate
	// CurrentDate is the spec's 1995-06-17 used for l_linestatus.
	currentDate = vector.MustParseDate("1995-06-17")
)

// Generate populates cat with a TPC-H database at the given scale factor
// (1.0 = the spec's 1 GB shape; 0.01 is plenty for shape reproduction).
// Generation is deterministic for a given (sf, seed).
func Generate(cat *catalog.Catalog, sf float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	nSupp := scaled(baseSupplier, sf)
	nCust := scaled(baseCustomer, sf)
	nPart := scaled(basePart, sf)
	nOrd := scaled(baseOrders, sf)

	genRegion(cat)
	genNation(cat)
	genSupplier(cat, rng, nSupp)
	genCustomer(cat, rng, nCust)
	genPart(cat, rng, nPart)
	genPartsupp(cat, rng, nPart, nSupp)
	genOrdersAndLineitem(cat, rng, nOrd, nCust, nPart, nSupp)
}

func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 8 {
		n = 8
	}
	return n
}

func genRegion(cat *catalog.Catalog) {
	t := catalog.NewTable("region", catalog.Schema{
		{Name: "r_regionkey", Typ: vector.Int64},
		{Name: "r_name", Typ: vector.String},
	})
	w := t.BeginWrite()
	ap := w.Appender()
	for i, r := range Regions {
		ap.Int64(0, int64(i))
		ap.String(1, r)
		ap.FinishRow()
	}
	w.Commit()
	cat.AddTable(t)
}

func genNation(cat *catalog.Catalog) {
	t := catalog.NewTable("nation", catalog.Schema{
		{Name: "n_nationkey", Typ: vector.Int64},
		{Name: "n_name", Typ: vector.String},
		{Name: "n_regionkey", Typ: vector.Int64},
	})
	w := t.BeginWrite()
	ap := w.Appender()
	for i, n := range Nations {
		ap.Int64(0, int64(i))
		ap.String(1, n.Name)
		ap.Int64(2, int64(n.Region))
		ap.FinishRow()
	}
	w.Commit()
	cat.AddTable(t)
}

func genSupplier(cat *catalog.Catalog, rng *rand.Rand, n int) {
	t := catalog.NewTable("supplier", catalog.Schema{
		{Name: "s_suppkey", Typ: vector.Int64},
		{Name: "s_name", Typ: vector.String},
		{Name: "s_nationkey", Typ: vector.Int64},
		{Name: "s_acctbal", Typ: vector.Float64},
		{Name: "s_comment", Typ: vector.String},
	})
	w := t.BeginWrite()
	ap := w.Appender()
	for i := 1; i <= n; i++ {
		ap.Int64(0, int64(i))
		ap.String(1, fmt.Sprintf("Supplier#%09d", i))
		ap.Int64(2, int64(rng.Intn(len(Nations))))
		ap.Float64(3, float64(rng.Intn(1099801)-99999)/100) // [-999.99, 9999.99]
		// ~0.05% of suppliers carry the Q16 complaint marker (5 per
		// 10k at SF1 per spec).
		comment := "carefully packed deposits"
		if rng.Intn(2000) == 0 {
			comment = "slow Customer some Complaints haggle"
		}
		ap.String(4, comment)
		ap.FinishRow()
	}
	w.Commit()
	cat.AddTable(t)
}

func genCustomer(cat *catalog.Catalog, rng *rand.Rand, n int) {
	t := catalog.NewTable("customer", catalog.Schema{
		{Name: "c_custkey", Typ: vector.Int64},
		{Name: "c_name", Typ: vector.String},
		{Name: "c_nationkey", Typ: vector.Int64},
		{Name: "c_phone", Typ: vector.String},
		{Name: "c_acctbal", Typ: vector.Float64},
		{Name: "c_mktsegment", Typ: vector.String},
	})
	w := t.BeginWrite()
	ap := w.Appender()
	for i := 1; i <= n; i++ {
		nat := rng.Intn(len(Nations))
		ap.Int64(0, int64(i))
		ap.String(1, fmt.Sprintf("Customer#%09d", i))
		ap.Int64(2, int64(nat))
		// Phone country code = nationkey + 10, per the specification.
		ap.String(3, fmt.Sprintf("%d-%03d-%03d-%04d", nat+10,
			rng.Intn(900)+100, rng.Intn(900)+100, rng.Intn(9000)+1000))
		ap.Float64(4, float64(rng.Intn(1099801)-99999)/100)
		ap.String(5, Segments[rng.Intn(len(Segments))])
		ap.FinishRow()
	}
	w.Commit()
	cat.AddTable(t)
}

func genPart(cat *catalog.Catalog, rng *rand.Rand, n int) {
	t := catalog.NewTable("part", catalog.Schema{
		{Name: "p_partkey", Typ: vector.Int64},
		{Name: "p_name", Typ: vector.String},
		{Name: "p_brand", Typ: vector.String},
		{Name: "p_type", Typ: vector.String},
		{Name: "p_size", Typ: vector.Int64},
		{Name: "p_container", Typ: vector.String},
		{Name: "p_retailprice", Typ: vector.Float64},
	})
	w := t.BeginWrite()
	ap := w.Appender()
	for i := 1; i <= n; i++ {
		ap.Int64(0, int64(i))
		// p_name: five color words; Q9/Q20 filter on LIKE '%color%'.
		name := Colors[rng.Intn(len(Colors))]
		for w := 0; w < 4; w++ {
			name += " " + Colors[rng.Intn(len(Colors))]
		}
		ap.String(1, name)
		ap.String(2, fmt.Sprintf("Brand#%d%d", rng.Intn(5)+1, rng.Intn(5)+1))
		ap.String(3, TypeSyl1[rng.Intn(6)]+" "+TypeSyl2[rng.Intn(5)]+" "+TypeSyl3[rng.Intn(5)])
		ap.Int64(4, int64(rng.Intn(50)+1))
		ap.String(5, ContainerSyl1[rng.Intn(5)]+" "+ContainerSyl2[rng.Intn(8)])
		ap.Float64(6, float64(90000+((i/10)%20001)+100*(i%1000))/100)
		ap.FinishRow()
	}
	w.Commit()
	cat.AddTable(t)
}

func genPartsupp(cat *catalog.Catalog, rng *rand.Rand, nPart, nSupp int) {
	t := catalog.NewTable("partsupp", catalog.Schema{
		{Name: "ps_partkey", Typ: vector.Int64},
		{Name: "ps_suppkey", Typ: vector.Int64},
		{Name: "ps_availqty", Typ: vector.Int64},
		{Name: "ps_supplycost", Typ: vector.Float64},
	})
	w := t.BeginWrite()
	ap := w.Appender()
	for p := 1; p <= nPart; p++ {
		for s := 0; s < 4; s++ {
			supp := psSupplier(p, s, nSupp)
			ap.Int64(0, int64(p))
			ap.Int64(1, int64(supp))
			ap.Int64(2, int64(rng.Intn(9999)+1))
			ap.Float64(3, float64(rng.Intn(100000)+100)/100)
			ap.FinishRow()
		}
	}
	w.Commit()
	cat.AddTable(t)
}

// psSupplier maps (part, slot) to one of the part's four suppliers, in the
// spirit of the spec's distribution formula but collision-free at tiny scale
// factors: the four slots are spread a quarter of the supplier space apart,
// with a per-part rotation.
func psSupplier(p, s, nSupp int) int {
	quarter := nSupp / 4
	if quarter == 0 {
		quarter = 1
	}
	return (p+s*quarter+(p-1)/nSupp)%nSupp + 1
}

func genOrdersAndLineitem(cat *catalog.Catalog, rng *rand.Rand, nOrd, nCust, nPart, nSupp int) {
	orders := catalog.NewTable("orders", catalog.Schema{
		{Name: "o_orderkey", Typ: vector.Int64},
		{Name: "o_custkey", Typ: vector.Int64},
		{Name: "o_orderstatus", Typ: vector.String},
		{Name: "o_totalprice", Typ: vector.Float64},
		{Name: "o_orderdate", Typ: vector.Date},
		{Name: "o_orderpriority", Typ: vector.String},
		{Name: "o_shippriority", Typ: vector.Int64},
		{Name: "o_comment", Typ: vector.String},
	})
	lineitem := catalog.NewTable("lineitem", catalog.Schema{
		{Name: "l_orderkey", Typ: vector.Int64},
		{Name: "l_partkey", Typ: vector.Int64},
		{Name: "l_suppkey", Typ: vector.Int64},
		{Name: "l_linenumber", Typ: vector.Int64},
		{Name: "l_quantity", Typ: vector.Int64},
		{Name: "l_extendedprice", Typ: vector.Float64},
		{Name: "l_discount", Typ: vector.Float64},
		{Name: "l_tax", Typ: vector.Float64},
		{Name: "l_returnflag", Typ: vector.String},
		{Name: "l_linestatus", Typ: vector.String},
		{Name: "l_shipdate", Typ: vector.Date},
		{Name: "l_commitdate", Typ: vector.Date},
		{Name: "l_receiptdate", Typ: vector.Date},
		{Name: "l_shipinstruct", Typ: vector.String},
		{Name: "l_shipmode", Typ: vector.String},
	})
	ow := orders.BeginWrite()
	lw := lineitem.BeginWrite()
	oap := ow.Appender()
	lap := lw.Appender()
	dateRange := int(endDate - startDate)
	for o := 1; o <= nOrd; o++ {
		odate := startDate + int64(rng.Intn(dateRange+1))
		lines := rng.Intn(7) + 1
		var total float64
		status := map[bool]string{true: "F", false: "O"}
		allShipped, anyShipped := true, false
		comment := "quick final deposits"
		if rng.Intn(100) == 0 {
			comment = "blithely special packed requests integrate"
		}
		for l := 1; l <= lines; l++ {
			qty := rng.Intn(50) + 1
			part := rng.Intn(nPart) + 1
			// One of the part's four suppliers.
			supp := psSupplier(part, rng.Intn(4), nSupp)
			price := float64(90000+((part/10)%20001)+100*(part%1000)) / 100 * float64(qty)
			disc := float64(rng.Intn(11)) / 100
			tax := float64(rng.Intn(9)) / 100
			ship := odate + int64(rng.Intn(121)+1)
			commit := odate + int64(rng.Intn(61)+30)
			receipt := ship + int64(rng.Intn(30)+1)
			rf := "N"
			if receipt <= currentDate {
				if rng.Intn(2) == 0 {
					rf = "R"
				} else {
					rf = "A"
				}
			}
			ls := "O"
			if ship <= currentDate {
				ls = "F"
			}
			if ls == "F" {
				anyShipped = true
			} else {
				allShipped = false
			}
			total += price * (1 - disc) * (1 + tax)
			lap.Int64(0, int64(o))
			lap.Int64(1, int64(part))
			lap.Int64(2, int64(supp))
			lap.Int64(3, int64(l))
			lap.Int64(4, int64(qty))
			lap.Float64(5, price)
			lap.Float64(6, disc)
			lap.Float64(7, tax)
			lap.String(8, rf)
			lap.String(9, ls)
			lap.Int64(10, ship)
			lap.Int64(11, commit)
			lap.Int64(12, receipt)
			lap.String(13, Instructs[rng.Intn(len(Instructs))])
			lap.String(14, ShipModes[rng.Intn(len(ShipModes))])
			lap.FinishRow()
		}
		st := status[allShipped]
		if anyShipped && !allShipped {
			st = "P"
		}
		oap.Int64(0, int64(o))
		oap.Int64(1, int64(rng.Intn(nCust)+1))
		oap.String(2, st)
		oap.Float64(3, total)
		oap.Int64(4, odate)
		oap.String(5, Priorities[rng.Intn(len(Priorities))])
		oap.Int64(6, 0)
		oap.String(7, comment)
		oap.FinishRow()
	}
	ow.Commit()
	lw.Commit()
	cat.AddTable(orders)
	cat.AddTable(lineitem)
}
