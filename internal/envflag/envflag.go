// Package envflag centralizes the engine's boolean environment knobs so
// every front end (shell, server, bench) parses them identically. Each
// knob mirrors a Config escape hatch and exists for bisecting regressions
// without rebuilding: results are byte-identical with any combination of
// knobs set. The README's "Environment knobs" table documents them.
package envflag

import (
	"os"
	"strings"
)

// Knob names. Command-line flags take the environment value as their
// default, so `-disable-fusion=false` overrides an exported knob.
const (
	// DisableFusion reverts pipeline interiors to chained operator Next
	// calls (Config.DisableFusion).
	DisableFusion = "RECYCLEDB_DISABLE_FUSION"
	// DisableOptimizer turns off the recycler-aware plan optimizer
	// (Config.DisableOptimizer).
	DisableOptimizer = "RECYCLEDB_DISABLE_OPTIMIZER"
	// DisableKernels turns off the type-specialized compute kernels
	// (Config.DisableKernels).
	DisableKernels = "RECYCLEDB_DISABLE_KERNELS"
)

// Bool reads a boolean environment override: "1", "true", "yes" — any
// non-empty value except "0"/"false"/"no" — enables the knob.
func Bool(name string) bool {
	switch strings.ToLower(os.Getenv(name)) {
	case "", "0", "false", "no":
		return false
	}
	return true
}
