package envflag

import "testing"

func TestBool(t *testing.T) {
	cases := []struct {
		val  string
		want bool
	}{
		{"", false},
		{"0", false},
		{"false", false},
		{"no", false},
		{"1", true},
		{"true", true},
		{"yes", true},
		{"anything", true},
	}
	for _, c := range cases {
		t.Setenv(DisableKernels, c.val)
		if got := Bool(DisableKernels); got != c.want {
			t.Errorf("Bool(%q=%q) = %v, want %v", DisableKernels, c.val, got, c.want)
		}
	}
}

func TestBoolUnset(t *testing.T) {
	if Bool("RECYCLEDB_ENVFLAG_TEST_UNSET") {
		t.Error("unset variable should read false")
	}
}
