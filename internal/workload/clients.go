package workload

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"recycledb/internal/plan"
)

// This file implements the multi-client driver: unlike Run, which replays
// fixed per-stream query lists (the paper's throughput protocol), RunClients
// models an online serving tier — N client goroutines issue queries drawn
// from a weighted mix as fast as the engine answers them, for a fixed
// duration or query budget. It is the measurement harness for concurrent
// scaling (BenchmarkConcurrentClients, the shell's -clients mode, and the
// race-hardened stress tests).

// MixEntry is one weighted query pattern of a client mix. Make returns the
// plan for one query instance, drawing any parameters only from the
// supplied RNG so runs are reproducible. The driver and the engine treat
// returned plans as read-only (execution clones before resolving), so Make
// may hand out the same plan instance repeatedly — that sharing is what
// lets concurrent clients collide on identical queries.
type MixEntry struct {
	Label  string
	Weight int
	Make   func(rng *rand.Rand) *plan.Node
}

// Mix is a weighted set of query patterns (e.g. TPC-H refresh dashboards
// mixed with SkyServer cone searches).
type Mix []MixEntry

// Pick draws one query from the mix.
func (m Mix) Pick(rng *rand.Rand) Query {
	total := 0
	for _, e := range m {
		total += e.Weight
	}
	if total <= 0 {
		return Query{}
	}
	v := rng.Intn(total)
	for _, e := range m {
		if v < e.Weight {
			return Query{Label: e.Label, Plan: e.Make(rng)}
		}
		v -= e.Weight
	}
	return Query{}
}

// WriteFunc performs one write operation (an epoch-committing insert or
// delete) on behalf of a client. Writes drawn only from rng stay
// reproducible per client.
type WriteFunc func(client int, rng *rand.Rand) error

// ClientsConfig configures a multi-client run.
type ClientsConfig struct {
	// Clients is the number of concurrent client goroutines.
	Clients int
	// Duration bounds the run in wall time (0 = no time bound).
	Duration time.Duration
	// MaxQueries bounds the total operations issued across all clients
	// (0 = no bound). At least one bound must be set.
	MaxQueries int64
	// Seed makes the per-client query sequences reproducible.
	Seed int64
	// WriteFrac is the probability in [0, 1] that a client issues a
	// write (via Write) instead of a query on each step — the churn knob
	// for measuring recycling under updates.
	WriteFrac float64
	// Write performs one write; required when WriteFrac > 0.
	Write WriteFunc
}

// ClientsResult aggregates a multi-client run.
type ClientsResult struct {
	Clients   int
	Elapsed   time.Duration
	Queries   int64
	Errs      int64
	Writes    int64
	WriteErrs int64
	PerClient []int64
	PerLabel  map[string]int64
	// Latencies of successful queries, sorted ascending.
	Latencies []time.Duration
	// WriteLatencies of successful writes, sorted ascending.
	WriteLatencies []time.Duration
}

// QPS returns the aggregate throughput in queries per second.
func (r *ClientsResult) QPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Queries) / r.Elapsed.Seconds()
}

// Percentile returns the p-th latency percentile (p in [0,100]).
func (r *ClientsResult) Percentile(p float64) time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	i := int(p / 100 * float64(len(r.Latencies)-1))
	return r.Latencies[i]
}

// RunClients drives cfg.Clients goroutines, each issuing queries drawn from
// mix through exec, until the duration elapses or the query budget is
// spent. Latency bookkeeping is accumulated client-locally and merged after
// the run, so the driver adds no shared-lock contention to the measurement.
func RunClients(cfg ClientsConfig, mix Mix, exec ExecFunc) *ClientsResult {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Duration <= 0 && cfg.MaxQueries <= 0 {
		cfg.Duration = time.Second
	}
	var deadline time.Time
	if cfg.Duration > 0 {
		deadline = time.Now().Add(cfg.Duration)
	}
	var issued atomic.Int64
	var errs atomic.Int64

	var writes, writeErrs atomic.Int64

	type clientTally struct {
		queries    int64
		perLabel   map[string]int64
		latencies  []time.Duration
		wlatencies []time.Duration
	}
	tallies := make([]clientTally, cfg.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < cfg.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(ci)*104729))
			tally := &tallies[ci]
			tally.perLabel = make(map[string]int64)
			for {
				if cfg.MaxQueries > 0 && issued.Add(1) > cfg.MaxQueries {
					return
				}
				if !deadline.IsZero() && !time.Now().Before(deadline) {
					return
				}
				if cfg.WriteFrac > 0 && cfg.Write != nil && rng.Float64() < cfg.WriteFrac {
					ws := time.Now()
					if err := cfg.Write(ci, rng); err != nil {
						writeErrs.Add(1)
					} else {
						tally.wlatencies = append(tally.wlatencies, time.Since(ws))
					}
					writes.Add(1)
					continue
				}
				q := mix.Pick(rng)
				if q.Plan == nil {
					return
				}
				qs := time.Now()
				_, err := exec(ci, q)
				if err != nil {
					errs.Add(1)
				} else {
					tally.latencies = append(tally.latencies, time.Since(qs))
					tally.perLabel[q.Label]++
				}
				tally.queries++
			}
		}(ci)
	}
	wg.Wait()
	res := &ClientsResult{
		Clients:   cfg.Clients,
		Elapsed:   time.Since(start),
		Errs:      errs.Load(),
		Writes:    writes.Load(),
		WriteErrs: writeErrs.Load(),
		PerClient: make([]int64, cfg.Clients),
		PerLabel:  make(map[string]int64),
	}
	for ci := range tallies {
		res.PerClient[ci] = tallies[ci].queries
		res.Queries += tallies[ci].queries
		for l, n := range tallies[ci].perLabel {
			res.PerLabel[l] += n
		}
		res.Latencies = append(res.Latencies, tallies[ci].latencies...)
		res.WriteLatencies = append(res.WriteLatencies, tallies[ci].wlatencies...)
	}
	sort.Slice(res.Latencies, func(a, b int) bool { return res.Latencies[a] < res.Latencies[b] })
	sort.Slice(res.WriteLatencies, func(a, b int) bool { return res.WriteLatencies[a] < res.WriteLatencies[b] })
	return res
}
