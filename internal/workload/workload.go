// Package workload drives concurrent query streams against an engine the
// way the paper's throughput experiments do (§V): each stream issues its
// queries sequentially, streams run concurrently, and a global admission
// limit (12 in the paper) bounds simultaneously executing queries. The
// driver records a per-query event trace (reuse / materialization / stall)
// from which Fig. 9's timeline and Figs. 7-8's aggregates are derived.
package workload

import (
	"sync"
	"time"

	"recycledb/internal/plan"
)

// Query is one workload query instance.
type Query struct {
	// Label identifies the pattern (e.g. "Q1", "cone-join-dominant").
	Label string
	// Plan is the query tree. The driver hands it to Exec untouched.
	Plan *plan.Node
}

// Outcome describes what the engine did for one query.
type Outcome struct {
	Reused       bool
	Materialized bool
	Stalled      bool
	MatchTime    time.Duration
	ExecTime     time.Duration
}

// ExecFunc runs one query and reports its outcome.
type ExecFunc func(stream int, q Query) (Outcome, error)

// Event is one executed query in the trace.
type Event struct {
	Stream int
	Label  string
	// Start and End are offsets from the run start. Start is when the
	// query was issued (queueing included); Begin is when it started
	// executing.
	Start, Begin, End time.Duration
	Outcome           Outcome
	Err               error
}

// Result aggregates a run.
type Result struct {
	// StreamTimes is the paper's per-stream metric: first query issued to
	// last result received.
	StreamTimes []time.Duration
	// Events in issue order per stream (across streams unordered).
	Events []Event
	// PerLabel collects execution times (queueing excluded) per pattern.
	PerLabel map[string][]time.Duration
	// Total is the wall time of the whole run.
	Total time.Duration
	// Errs counts failed queries.
	Errs int
}

// Run executes the streams with at most maxConcurrent queries in flight.
func Run(streams [][]Query, maxConcurrent int, exec ExecFunc) *Result {
	if maxConcurrent <= 0 {
		maxConcurrent = 12
	}
	sem := make(chan struct{}, maxConcurrent)
	start := time.Now()
	res := &Result{
		StreamTimes: make([]time.Duration, len(streams)),
		PerLabel:    make(map[string][]time.Duration),
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for si, queries := range streams {
		wg.Add(1)
		go func(si int, queries []Query) {
			defer wg.Done()
			streamStart := time.Now()
			for _, q := range queries {
				issued := time.Since(start)
				sem <- struct{}{}
				begin := time.Since(start)
				out, err := exec(si, q)
				end := time.Since(start)
				<-sem
				mu.Lock()
				res.Events = append(res.Events, Event{
					Stream: si, Label: q.Label,
					Start: issued, Begin: begin, End: end,
					Outcome: out, Err: err,
				})
				if err != nil {
					res.Errs++
				} else {
					res.PerLabel[q.Label] = append(res.PerLabel[q.Label], end-begin)
				}
				mu.Unlock()
			}
			res.StreamTimes[si] = time.Since(streamStart)
		}(si, queries)
	}
	wg.Wait()
	res.Total = time.Since(start)
	return res
}

// AvgStreamTime returns the mean per-stream evaluation time (Fig. 7's
// y-axis).
func (r *Result) AvgStreamTime() time.Duration {
	if len(r.StreamTimes) == 0 {
		return 0
	}
	var sum time.Duration
	for _, t := range r.StreamTimes {
		sum += t
	}
	return sum / time.Duration(len(r.StreamTimes))
}

// AvgLabelTime returns the mean execution time of one pattern (Fig. 8's
// y-axis input).
func (r *Result) AvgLabelTime(label string) time.Duration {
	ts := r.PerLabel[label]
	if len(ts) == 0 {
		return 0
	}
	var sum time.Duration
	for _, t := range ts {
		sum += t
	}
	return sum / time.Duration(len(ts))
}

// TotalExecTime sums all query execution times.
func (r *Result) TotalExecTime() time.Duration {
	var sum time.Duration
	for _, ts := range r.PerLabel {
		for _, t := range ts {
			sum += t
		}
	}
	return sum
}
