package workload

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"recycledb/internal/plan"
)

func testMix() Mix {
	mk := func(rng *rand.Rand) *plan.Node { return plan.NewScan("t", "a") }
	return Mix{
		{Label: "hot", Weight: 3, Make: mk},
		{Label: "cold", Weight: 1, Make: mk},
	}
}

func TestRunClientsQueryBudget(t *testing.T) {
	var count int64
	res := RunClients(ClientsConfig{Clients: 4, MaxQueries: 100, Seed: 1}, testMix(),
		func(client int, q Query) (Outcome, error) {
			atomic.AddInt64(&count, 1)
			return Outcome{}, nil
		})
	if count != 100 || res.Queries != 100 {
		t.Fatalf("executed %d (reported %d), want exactly 100", count, res.Queries)
	}
	if got := res.PerLabel["hot"] + res.PerLabel["cold"]; got != 100 {
		t.Fatalf("per-label totals = %d, want 100", got)
	}
	if res.PerLabel["hot"] <= res.PerLabel["cold"] {
		t.Fatalf("weights ignored: hot=%d cold=%d", res.PerLabel["hot"], res.PerLabel["cold"])
	}
	var perClient int64
	for _, n := range res.PerClient {
		perClient += n
	}
	if perClient != 100 {
		t.Fatalf("per-client totals = %d, want 100", perClient)
	}
	if len(res.Latencies) != 100 {
		t.Fatalf("latencies = %d, want 100", len(res.Latencies))
	}
	if res.QPS() <= 0 {
		t.Fatal("throughput not reported")
	}
	if res.Percentile(0) > res.Percentile(100) {
		t.Fatal("latencies not sorted")
	}
}

func TestRunClientsDeadline(t *testing.T) {
	start := time.Now()
	res := RunClients(ClientsConfig{Clients: 2, Duration: 50 * time.Millisecond, Seed: 1},
		testMix(), func(client int, q Query) (Outcome, error) {
			time.Sleep(time.Millisecond)
			return Outcome{}, nil
		})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("run overshot its deadline wildly: %v", elapsed)
	}
	if res.Queries == 0 {
		t.Fatal("no queries completed within the window")
	}
}

func TestRunClientsCountsErrors(t *testing.T) {
	boom := errors.New("boom")
	res := RunClients(ClientsConfig{Clients: 3, MaxQueries: 60, Seed: 1}, testMix(),
		func(client int, q Query) (Outcome, error) {
			if q.Label == "cold" {
				return Outcome{}, boom
			}
			return Outcome{}, nil
		})
	if res.Errs == 0 {
		t.Fatal("errors not counted")
	}
	// Latencies cover successful queries only.
	if int64(len(res.Latencies))+res.Errs != res.Queries {
		t.Fatalf("latencies %d + errs %d != queries %d",
			len(res.Latencies), res.Errs, res.Queries)
	}
}
