package workload

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesAllQueries(t *testing.T) {
	streams := [][]Query{
		{{Label: "a"}, {Label: "b"}},
		{{Label: "a"}, {Label: "c"}},
		{{Label: "b"}},
	}
	var count int64
	res := Run(streams, 2, func(stream int, q Query) (Outcome, error) {
		atomic.AddInt64(&count, 1)
		return Outcome{ExecTime: time.Millisecond}, nil
	})
	if count != 5 {
		t.Fatalf("executed %d queries, want 5", count)
	}
	if len(res.Events) != 5 {
		t.Fatalf("events = %d", len(res.Events))
	}
	if len(res.PerLabel["a"]) != 2 || len(res.PerLabel["b"]) != 2 || len(res.PerLabel["c"]) != 1 {
		t.Fatalf("PerLabel = %v", res.PerLabel)
	}
	if res.Errs != 0 {
		t.Fatalf("errs = %d", res.Errs)
	}
}

func TestRunRespectsConcurrencyLimit(t *testing.T) {
	streams := make([][]Query, 8)
	for i := range streams {
		streams[i] = []Query{{Label: "q"}, {Label: "q"}}
	}
	var inFlight, maxSeen int64
	Run(streams, 3, func(stream int, q Query) (Outcome, error) {
		cur := atomic.AddInt64(&inFlight, 1)
		for {
			m := atomic.LoadInt64(&maxSeen)
			if cur <= m || atomic.CompareAndSwapInt64(&maxSeen, m, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		atomic.AddInt64(&inFlight, -1)
		return Outcome{}, nil
	})
	if maxSeen > 3 {
		t.Fatalf("max concurrency %d exceeded limit 3", maxSeen)
	}
	if maxSeen < 2 {
		t.Fatalf("parallelism never reached 2 (max %d)", maxSeen)
	}
}

func TestRunStreamOrderPreserved(t *testing.T) {
	streams := [][]Query{{{Label: "x1"}, {Label: "x2"}, {Label: "x3"}}}
	var order []string
	Run(streams, 4, func(stream int, q Query) (Outcome, error) {
		order = append(order, q.Label)
		return Outcome{}, nil
	})
	if order[0] != "x1" || order[1] != "x2" || order[2] != "x3" {
		t.Fatalf("stream order violated: %v", order)
	}
}

func TestRunCountsErrors(t *testing.T) {
	streams := [][]Query{{{Label: "bad"}, {Label: "good"}}}
	res := Run(streams, 1, func(stream int, q Query) (Outcome, error) {
		if q.Label == "bad" {
			return Outcome{}, errors.New("boom")
		}
		return Outcome{}, nil
	})
	if res.Errs != 1 {
		t.Fatalf("errs = %d", res.Errs)
	}
	if len(res.PerLabel["bad"]) != 0 || len(res.PerLabel["good"]) != 1 {
		t.Fatalf("PerLabel = %v", res.PerLabel)
	}
}

func TestAverages(t *testing.T) {
	streams := [][]Query{{{Label: "a"}}, {{Label: "a"}}}
	res := Run(streams, 2, func(stream int, q Query) (Outcome, error) {
		time.Sleep(time.Millisecond)
		return Outcome{}, nil
	})
	if res.AvgStreamTime() <= 0 {
		t.Fatal("AvgStreamTime not positive")
	}
	if res.AvgLabelTime("a") <= 0 {
		t.Fatal("AvgLabelTime not positive")
	}
	if res.AvgLabelTime("zzz") != 0 {
		t.Fatal("unknown label should average 0")
	}
	if res.TotalExecTime() <= 0 {
		t.Fatal("TotalExecTime not positive")
	}
	if res.Total <= 0 {
		t.Fatal("Total not positive")
	}
}

func TestEventTimesOrdered(t *testing.T) {
	streams := [][]Query{{{Label: "a"}, {Label: "b"}}}
	res := Run(streams, 1, func(stream int, q Query) (Outcome, error) {
		time.Sleep(time.Millisecond)
		return Outcome{}, nil
	})
	for _, e := range res.Events {
		if e.Start > e.Begin || e.Begin > e.End {
			t.Fatalf("event times out of order: %+v", e)
		}
	}
}
