package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the SQL-text twin of the plan-level multi-client driver:
// RunSQLClients drives N connections issuing queries expressed as SQL
// strings with $N parameters, through a caller-supplied transport. The
// transport is deliberately abstract — the bench wires it to a Postgres
// wire-protocol client talking to recycledb-server over TCP, tests can wire
// it straight to Engine.Query — so the same mix measures both the engine
// proper and the full serving stack (parse, admission, encode, socket).

// SQLQuery is one query instance as it would cross the wire: SQL text with
// $1..$N placeholders and text-format parameter values in order.
type SQLQuery struct {
	Label string
	SQL   string
	Args  []string
}

// SQLMixEntry is one weighted pattern of a SQL client mix. Make draws any
// parameters only from the supplied RNG so runs are reproducible. Patterns
// should reuse a small pool of SQL texts and argument variants: identical
// statements from many clients are what give the recycler (and the server's
// prepared-statement cache) sharing potential.
type SQLMixEntry struct {
	Label  string
	Weight int
	Make   func(rng *rand.Rand) SQLQuery
}

// SQLMix is a weighted set of SQL query patterns.
type SQLMix []SQLMixEntry

// Pick draws one query from the mix.
func (m SQLMix) Pick(rng *rand.Rand) SQLQuery {
	total := 0
	for _, e := range m {
		total += e.Weight
	}
	if total <= 0 {
		return SQLQuery{}
	}
	v := rng.Intn(total)
	for _, e := range m {
		if v < e.Weight {
			q := e.Make(rng)
			if q.Label == "" {
				q.Label = e.Label
			}
			return q
		}
		v -= e.Weight
	}
	return SQLQuery{}
}

// SQLConn executes SQL queries on behalf of one client. Implementations are
// used by a single goroutine; Run returns the number of result rows
// consumed. A transport backed by prepared statements should key them by
// q.SQL — the mixes repeat a small set of texts precisely so that
// preparation cost amortizes away, as it would for a real client.
type SQLConn interface {
	Run(q SQLQuery) (rows int, err error)
	Close() error
}

// DialFunc opens the connection for one client (0-based index).
type DialFunc func(client int) (SQLConn, error)

// SQLClientsConfig configures a SQL multi-client run.
type SQLClientsConfig struct {
	// Clients is the number of concurrent connections.
	Clients int
	// Duration bounds the run in wall time (0 = no time bound).
	Duration time.Duration
	// MaxQueries bounds total queries across all clients (0 = no bound).
	// At least one bound must be set.
	MaxQueries int64
	// Seed makes the per-client query sequences reproducible.
	Seed int64
}

// RunSQLClients dials one connection per client, then drives all clients
// concurrently until the duration elapses or the query budget is spent.
// Connections are established before the clock starts, so setup cost stays
// out of the measurement; any dial failure aborts the run. Latency
// bookkeeping is client-local and merged afterwards, exactly like
// RunClients, so the driver adds no shared-lock contention.
func RunSQLClients(cfg SQLClientsConfig, mix SQLMix, dial DialFunc) (*ClientsResult, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Duration <= 0 && cfg.MaxQueries <= 0 {
		cfg.Duration = time.Second
	}
	conns := make([]SQLConn, cfg.Clients)
	for ci := range conns {
		c, err := dial(ci)
		if err != nil {
			for _, open := range conns[:ci] {
				open.Close()
			}
			return nil, fmt.Errorf("dial client %d: %w", ci, err)
		}
		conns[ci] = c
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	var deadline time.Time
	if cfg.Duration > 0 {
		deadline = time.Now().Add(cfg.Duration)
	}
	var issued atomic.Int64
	var errs atomic.Int64

	type clientTally struct {
		queries   int64
		perLabel  map[string]int64
		latencies []time.Duration
	}
	tallies := make([]clientTally, cfg.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < cfg.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(ci)*104729))
			tally := &tallies[ci]
			tally.perLabel = make(map[string]int64)
			for {
				if cfg.MaxQueries > 0 && issued.Add(1) > cfg.MaxQueries {
					return
				}
				if !deadline.IsZero() && !time.Now().Before(deadline) {
					return
				}
				q := mix.Pick(rng)
				if q.SQL == "" {
					return
				}
				qs := time.Now()
				_, err := conns[ci].Run(q)
				if err != nil {
					errs.Add(1)
				} else {
					tally.latencies = append(tally.latencies, time.Since(qs))
					tally.perLabel[q.Label]++
				}
				tally.queries++
			}
		}(ci)
	}
	wg.Wait()
	res := &ClientsResult{
		Clients:   cfg.Clients,
		Elapsed:   time.Since(start),
		Errs:      errs.Load(),
		PerClient: make([]int64, cfg.Clients),
		PerLabel:  make(map[string]int64),
	}
	for ci := range tallies {
		res.PerClient[ci] = tallies[ci].queries
		res.Queries += tallies[ci].queries
		for l, n := range tallies[ci].perLabel {
			res.PerLabel[l] += n
		}
		res.Latencies = append(res.Latencies, tallies[ci].latencies...)
	}
	sort.Slice(res.Latencies, func(a, b int) bool { return res.Latencies[a] < res.Latencies[b] })
	return res, nil
}
