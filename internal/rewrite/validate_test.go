package rewrite

import (
	"testing"
	"time"

	"recycledb/internal/core"
	"recycledb/internal/expr"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// admitSnap admits a tagged one-row result for plan p's root graph node.
func admitSnap(t *testing.T, rw *Rewriter, p *plan.Node, snap map[string]core.TableSnap) *core.Node {
	t.Helper()
	g := rw.Rec.MatchInsert(p).ByNode[p].G
	b := vector.NewBatch([]vector.Type{vector.Int64}, 1)
	b.Vecs[0].AppendInt64(1)
	if !rw.Rec.AdmitMat(g, core.Materialization{
		Batches: []*vector.Batch{b}, Rows: 1, Size: 24,
		Cost: time.Millisecond, HROverride: 1, Snap: snap,
	}) {
		t.Fatal("admission failed")
	}
	return g
}

// TestCachedValidKeepsFresherEntry: a statement that captured an older
// epoch must skip — but not evict — an entry tagged with a newer epoch
// (e.g. one a concurrent commit delta-extended); only entries older than
// the statement's epoch are lazily invalidated.
func TestCachedValidKeepsFresherEntry(t *testing.T) {
	rw, cat := fixture(t, History)
	p := plan.NewSelect(plan.NewScan("t", "k", "v"), expr.Gt(expr.C("v"), expr.Flt(10)))
	if err := p.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	g := admitSnap(t, rw, p, map[string]core.TableSnap{"t": {Ver: 5, Rows: 5000}})

	// Statement captured epoch 4: the entry is fresher, not stale.
	rw.SnapVers = map[string]core.TableSnap{"t": {Ver: 4, Rows: 4990}}
	if e := rw.cachedValid(g); e != nil {
		t.Fatal("fresher entry substituted into an older-epoch statement")
	}
	if rw.Rec.Cached(g) == nil {
		t.Fatal("fresher entry evicted by an older-epoch statement")
	}
	rw.Rec.Release(rw.Rec.Cached(g))

	// Statement captured epoch 6: now the entry is stale and must go.
	rw.SnapVers = map[string]core.TableSnap{"t": {Ver: 6, Rows: 5100}}
	if e := rw.cachedValid(g); e != nil {
		t.Fatal("stale entry substituted")
	}
	if rw.Rec.Cached(g) != nil {
		t.Fatal("stale entry not lazily evicted")
	}
	if rw.Rec.Stats().Invalidated == 0 {
		t.Fatal("lazy eviction not counted as invalidation")
	}
}

// TestCachedValidMatchingEpoch: a tag equal to the captured epoch is
// substituted normally.
func TestCachedValidMatchingEpoch(t *testing.T) {
	rw, cat := fixture(t, History)
	p := plan.NewSelect(plan.NewScan("t", "k", "v"), expr.Gt(expr.C("v"), expr.Flt(20)))
	if err := p.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	g := admitSnap(t, rw, p, map[string]core.TableSnap{"t": {Ver: 1, Rows: 5000}})
	rw.SnapVers = map[string]core.TableSnap{"t": {Ver: 1, Rows: 5000}}
	e := rw.cachedValid(g)
	if e == nil {
		t.Fatal("matching-epoch entry not substituted")
	}
	rw.Rec.Release(e)
}
