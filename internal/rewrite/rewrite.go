// Package rewrite implements the paper's rewriter rules (Fig. 1):
//
//  1. a bottom-up rule matches the optimized query tree against the recycler
//     graph, inserting unmatched nodes (delegated to core.MatchInsert);
//  2. a top-down rule substitutes cached results (exact matches first, then
//     subsumption derivations, §IV-A) and plans stalls on results being
//     materialized by concurrent queries;
//  3. a final rule injects store operators: pre-decided for results seen
//     before whose benefit warrants materialization (history mode), and
//     speculative stores over expensive-looking, small-looking new results
//     (final result, aggregations, top-N; §III-D);
//
// plus the proactive rules of §IV-B (see proactive.go).
package rewrite

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"recycledb/internal/catalog"
	"recycledb/internal/core"
	"recycledb/internal/exec"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// Mode selects the recycler's execution mode (§V).
type Mode int

// Execution modes, in increasing capability order.
const (
	// Off disables recycling entirely (the naive baseline).
	Off Mode = iota
	// History materializes only results seen before (no buffering).
	History
	// Speculative adds run-time speculation on new results.
	Speculative
	// Proactive adds the proactive query rewrites (top-N widening, cube
	// caching with selections and with binning).
	Proactive
)

// String returns the mode name as used in the paper's figures.
func (m Mode) String() string {
	return [...]string{"OFF", "HIST", "SPEC", "PA"}[m]
}

// Rewriter applies the recycling rules for one engine.
type Rewriter struct {
	Rec  *core.Recycler
	Cat  *catalog.Catalog
	Mode Mode
	// MaxHistoryStores caps pre-decided stores per query.
	MaxHistoryStores int
	// MinHistoryHR is the minimum (aged) importance factor for a
	// history-mode store decision; results must have been seen before.
	MinHistoryHR float64
	// ProactiveDistinctLimit is the GROUP BY extension threshold of the
	// cube-caching heuristic.
	ProactiveDistinctLimit int64

	// SnapVers holds the statement's captured per-table data epochs (the
	// epochs its scans will read). Cached results are substituted only if
	// their snapshot tag matches — stale entries are dropped, fresher
	// entries (extended mid-statement) are recomputed instead of mixing
	// epochs. nil disables validation (plans built outside the engine).
	SnapVers map[string]core.TableSnap
	// GlobalVer is the catalog-wide data version captured with SnapVers;
	// entries over unknown-lineage table functions are tagged with it.
	GlobalVer int64
}

// NewRewriter returns a rewriter with the defaults used in the evaluation.
func NewRewriter(rec *core.Recycler, cat *catalog.Catalog, mode Mode) *Rewriter {
	return &Rewriter{
		Rec:                    rec,
		Cat:                    cat,
		Mode:                   mode,
		MaxHistoryStores:       4,
		MinHistoryHR:           0.5,
		ProactiveDistinctLimit: 64,
	}
}

// Result carries everything the engine needs to execute and then annotate a
// rewritten query.
type Result struct {
	// Exec is the tree to execute: the original tree, possibly with
	// subsumption-derived or proactive replacements.
	Exec  *plan.Node
	Decor exec.Decorations
	Match *core.MatchResult

	// subst maps a decorated node to the graph node whose cached result
	// replaced that subtree (bcost accounting for Eq. 2 consistency).
	subst map[*plan.Node]*core.Node
	// waitReused records the runtime outcome of Wait decorations. The
	// outcomes are written from OnOutcome callbacks, which with parallel
	// pipelines may fire on a fragment worker goroutine (a wait inside a
	// join build side), so they are atomics: every counter or flag a
	// store/wait callback touches must be safe to update off the query's
	// own goroutine.
	waitReused map[*plan.Node]*atomic.Bool
	// producing is the set of graph nodes this query registered as the
	// in-flight producer of. A second occurrence of the same subtree in
	// the same query (intra-query sharing, e.g. TPC-H Q15) must not
	// stall on it: within one pipeline that wait can deadlock against
	// its own store.
	producing map[*core.Node]bool
	// committed counts store operators that actually admitted a result
	// during execution (speculation may cancel; admission may reject).
	committed int32

	// Reuses counts exact cache hits planned; SubsumptionReuses counts
	// derived hits; Stores counts history stores; SpecStores speculative
	// ones; Waits planned stalls. ProactiveApplied marks a §IV-B rewrite.
	Reuses            int
	SubsumptionReuses int
	Stores            int
	SpecStores        int
	Waits             int
	ProactiveApplied  bool
}

// Rewrite runs the full pipeline on a resolved query tree and returns the
// execution decorations. In Off mode it returns the tree untouched.
func (rw *Rewriter) Rewrite(root *plan.Node) (*Result, error) {
	res := &Result{
		Exec:       root,
		Decor:      make(exec.Decorations),
		subst:      make(map[*plan.Node]*core.Node),
		waitReused: make(map[*plan.Node]*atomic.Bool),
		producing:  make(map[*core.Node]bool),
	}
	if rw.Mode == Off {
		return res, nil
	}
	rw.Rec.BeginQuery()
	if rw.Mode >= Proactive {
		if pa, err := rw.applyProactive(root); err != nil {
			return nil, err
		} else if pa != nil {
			res.Exec = pa
			res.ProactiveApplied = true
		}
	}
	res.Match = rw.Rec.MatchInsert(res.Exec)
	rw.Rec.AddRefs(res.Exec, res.Match)
	rw.substitute(res.Exec, res)
	rw.injectStores(res.Exec, res, false)
	rw.dropStoresUnderWaits(res.Exec, res, false)
	return res, nil
}

// dropStoresUnderWaits removes store decorations that ended up inside a wait
// fallback (a wait planned for an ancestor after the store was attached):
// if the wait succeeds the fallback never runs, so such a store would leave
// its in-flight registration dangling and force concurrent queries into the
// stall timeout.
func (rw *Rewriter) dropStoresUnderWaits(n *plan.Node, res *Result, underWait bool) {
	d := res.Decor[n]
	if d != nil {
		if underWait && d.Store != nil {
			if g := nodeGraph(res, n); g != nil {
				rw.Rec.FinishInflight(g)
			}
			if d.Store.Speculative {
				res.SpecStores--
			} else {
				res.Stores--
			}
			d.Store = nil
			if d.Reuse == nil && d.Wait == nil {
				delete(res.Decor, n)
			}
		}
		if d.Reuse != nil {
			return
		}
		if d.Wait != nil {
			underWait = true
		}
	}
	for _, c := range n.Children {
		rw.dropStoresUnderWaits(c, res, underWait)
	}
}

// entryValid reports whether a cached entry's snapshot tag matches the
// statement's captured data epochs, and — when it does not — whether the
// entry is stale (tagged older than the epoch the catalog has moved to).
// Untagged entries are version-agnostic; tags over tables outside the
// statement's capture (subsumption across differently-shaped plans) fall
// back to the live table version. The predicate itself is shared with the
// optimizer's cached-access-path probing (core.EntrySnapValid), so the
// rewriter substitutes exactly the entries the optimizer steered toward.
func (rw *Rewriter) entryValid(e *core.Entry) (valid, stale bool) {
	return core.EntrySnapValid(e, rw.SnapVers, rw.GlobalVer, func(t string) (int64, bool) {
		tbl, err := rw.Cat.Table(t)
		if err != nil {
			return 0, false
		}
		return tbl.DataVersion(), true
	})
}

// cachedValid is Cached plus snapshot validation. Entries tagged older
// than the statement's epoch are dropped from the cache (lazy invalidation
// of results admitted after the commit walk) and reported as a miss.
// Entries tagged *newer* — a concurrent commit delta-extended them after
// this statement captured its snapshot — are left cached for the queries
// already at the new epoch; this statement just recomputes from its own
// snapshot.
func (rw *Rewriter) cachedValid(g *core.Node) *core.Entry {
	e := rw.Rec.Cached(g)
	if e == nil {
		return nil
	}
	valid, stale := rw.entryValid(e)
	if valid {
		return e
	}
	rw.Rec.Release(e)
	if stale {
		rw.Rec.EvictEntry(g, e)
	}
	return nil
}

// substitute is the top-down reuse rule.
func (rw *Rewriter) substitute(n *plan.Node, res *Result) {
	nm := res.Match.ByNode[n]
	if nm != nil {
		// Exact cached result.
		if e := rw.cachedValid(nm.G); e != nil {
			res.Decor[n] = &exec.Decor{Reuse: rw.reuseSpec(e, identityIdx(len(nm.G.OutCols)))}
			res.subst[n] = nm.G
			res.Reuses++
			return
		}
		// In-flight materialization by a concurrent query: stall.
		if nm.Existed && rw.Rec.Inflight(nm.G) {
			g := nm.G
			reused := new(atomic.Bool)
			res.waitReused[n] = reused
			res.subst[n] = g
			res.Decor[n] = &exec.Decor{Wait: &exec.WaitSpec{
				Timeout: rw.Rec.StallTimeoutFor(g),
				Wait: func(ctx context.Context, timeout time.Duration) ([]*vector.Batch, []int, func(), bool) {
					e, ok := rw.Rec.WaitInflightCtx(ctx, g, timeout)
					if !ok {
						return nil, nil, nil, false
					}
					if ok, _ := rw.entryValid(e); !ok {
						// The producer ran at another data epoch
						// (a write committed in between); recompute.
						rw.Rec.Release(e)
						return nil, nil, nil, false
					}
					entry := e
					return e.Batches, identityIdx(len(g.OutCols)),
						func() { rw.Rec.Release(entry) }, true
				},
				OnOutcome: func(ok bool, stalled time.Duration) {
					reused.Store(ok)
					rw.Rec.CountStall(ok)
				},
			}}
			res.Waits++
			// The fallback subtree may still reuse deeper results.
			for _, c := range n.Children {
				rw.substitute(c, res)
			}
			return
		}
		// Subsumption: a cached result that subsumes this node (§IV-A).
		// This applies in particular to nodes with no exact match in
		// the graph (freshly inserted), exactly the case the paper
		// motivates subsumption with.
		if rw.Rec.Config().Subsumption {
			for _, s := range rw.Rec.Subsumers(nm.G) {
				if e := rw.cachedValid(s); e != nil {
					if rw.applySubsumption(n, nm, s, e, res) {
						res.SubsumptionReuses++
						rw.Rec.CountSubsumptionReuse()
						return
					}
					rw.Rec.Release(e)
				}
			}
		}
	}
	for _, c := range n.Children {
		rw.substitute(c, res)
	}
}

// reuseSpec wraps a pinned cache entry for the executor.
func (rw *Rewriter) reuseSpec(e *core.Entry, outIdx []int) *exec.ReuseSpec {
	return &exec.ReuseSpec{
		Batches: e.Batches,
		OutIdx:  outIdx,
		Release: func() { rw.Rec.Release(e) },
	}
}

func identityIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// injectStores is the final rewriting rule: store operators over results
// worth materializing.
func (rw *Rewriter) injectStores(root *plan.Node, res *Result, insideWait bool) {
	type candidate struct {
		n       *plan.Node
		g       *core.Node
		benefit float64
		size    int64
	}
	var hist []candidate
	var spec []*struct {
		n *plan.Node
		g *core.Node
	}
	var walk func(n *plan.Node, inWait bool)
	walk = func(n *plan.Node, inWait bool) {
		d := res.Decor[n]
		if d != nil && d.Reuse != nil {
			return // replayed subtrees compute nothing to store
		}
		if d != nil && d.Wait != nil {
			// Stores inside a wait fallback would register in-flight
			// producers that never run if the wait succeeds; skip the
			// whole fallback (see DESIGN.md).
			return
		}
		nm := res.Match.ByNode[n]
		if nm != nil && !inWait && rw.storable(n) {
			g := nm.G
			_, known, card, estBytes := rw.Rec.NodeStats(g)
			if nm.Existed && known {
				hr := rw.Rec.HR(g)
				if hr >= rw.MinHistoryHR {
					size := estBytes
					if size <= 0 {
						size = core.EstimateResultBytes(g, card)
					}
					// Expected savings (references x true cost) must
					// beat the one-time materialization cost.
					if size > 0 {
						saved := time.Duration(hr * float64(rw.Rec.TrueCost(g)))
						if saved > rw.Rec.Config().CopyCost(size) {
							b := rw.Rec.Benefit(g)
							hist = append(hist, candidate{n: n, g: g, benefit: b, size: size})
						}
					}
				}
			} else if rw.Mode >= Speculative && rw.speculative(n, root) {
				spec = append(spec, &struct {
					n *plan.Node
					g *core.Node
				}{n, g})
			}
		}
		for _, c := range n.Children {
			walk(c, inWait)
		}
	}
	walk(root, insideWait)

	// History stores: highest benefit first, capped, admission-checked.
	// Registration runs in ascending graph-node-ID order: a deterministic
	// global order makes crossed in-flight ownership between concurrent
	// queries (the stall-deadlock precondition) much rarer.
	sort.SliceStable(hist, func(a, b int) bool { return hist[a].benefit > hist[b].benefit })
	var selected []candidate
	for _, c := range hist {
		if len(selected) >= rw.MaxHistoryStores {
			break
		}
		if !rw.Rec.WouldAdmit(c.g, c.benefit, c.size) {
			continue
		}
		selected = append(selected, c)
	}
	sort.SliceStable(selected, func(a, b int) bool { return selected[a].g.ID < selected[b].g.ID })
	for _, c := range selected {
		if !rw.Rec.BeginInflight(c.g) {
			// Stall — unless this query itself is the producer (an
			// intra-query duplicate subtree): waiting on ourselves
			// would deadlock, so the duplicate just recomputes.
			if !res.producing[c.g] {
				rw.planWait(c.n, c.g, res)
			}
			continue
		}
		rw.attachStore(c.n, c.g, res, false)
		res.producing[c.g] = true
	}
	// Speculative stores on new expensive-looking results.
	for _, s := range spec {
		if d := res.Decor[s.n]; d != nil {
			continue // already decided above
		}
		if !rw.Rec.BeginInflight(s.g) {
			if !res.producing[s.g] {
				rw.planWait(s.n, s.g, res)
			}
			continue
		}
		rw.attachStore(s.n, s.g, res, true)
		res.producing[s.g] = true
	}
}

// storable excludes operators whose materialization can never pay off.
func (rw *Rewriter) storable(n *plan.Node) bool {
	switch n.Op {
	case plan.Scan, plan.Cached:
		// Replaying a base-table scan costs as much as the scan.
		return false
	}
	return true
}

// speculative reports whether a never-seen node warrants a speculative
// store: the final result of the query, aggregations and top-Ns — operators
// expected to be computationally expensive with small results (§III-D).
func (rw *Rewriter) speculative(n, root *plan.Node) bool {
	if n == root {
		return true
	}
	switch n.Op {
	case plan.Aggregate, plan.TopN:
		return true
	}
	return false
}

// planWait decorates node n to stall on g's in-flight materialization.
func (rw *Rewriter) planWait(n *plan.Node, g *core.Node, res *Result) {
	if d := res.Decor[n]; d != nil {
		return
	}
	reused := new(atomic.Bool)
	res.waitReused[n] = reused
	res.subst[n] = g
	res.Decor[n] = &exec.Decor{Wait: &exec.WaitSpec{
		Timeout: rw.Rec.StallTimeoutFor(g),
		Wait: func(ctx context.Context, timeout time.Duration) ([]*vector.Batch, []int, func(), bool) {
			e, ok := rw.Rec.WaitInflightCtx(ctx, g, timeout)
			if !ok {
				return nil, nil, nil, false
			}
			if ok, _ := rw.entryValid(e); !ok {
				rw.Rec.Release(e)
				return nil, nil, nil, false
			}
			return e.Batches, identityIdx(len(g.OutCols)),
				func() { rw.Rec.Release(e) }, true
		},
		OnOutcome: func(ok bool, stalled time.Duration) {
			reused.Store(ok)
			rw.Rec.CountStall(ok)
		},
	}}
	res.Waits++
}

// entrySnap builds the snapshot tag for a result of graph node g from the
// statement's captured epochs: one TableSnap per lineage table, the global
// data version for unknown lineage. nil when the engine captured nothing.
func (rw *Rewriter) entrySnap(g *core.Node) map[string]core.TableSnap {
	if rw.SnapVers == nil {
		return nil
	}
	snap := make(map[string]core.TableSnap, len(g.Tables))
	for _, t := range g.Tables {
		if t == plan.LineageAll {
			snap[plan.LineageAll] = core.TableSnap{Ver: rw.GlobalVer}
			continue
		}
		if v, ok := rw.SnapVers[t]; ok {
			snap[t] = v
			continue
		}
		// Not pre-captured (shouldn't happen for resolved plans); tag
		// with the live version so validation stays sound.
		if tbl, err := rw.Cat.Table(t); err == nil {
			snap[t] = core.TableSnap{Ver: tbl.DataVersion(), Rows: int64(tbl.Snapshot().Rows)}
		}
	}
	return snap
}

// appendExtendable reports whether subtree n qualifies for append delta
// extension: a row-local chain (scan/select/project) over exactly one base
// table, so running it over just the appended rows yields exactly the
// cached result's delta.
func appendExtendable(n *plan.Node) bool {
	lin := n.Lineage()
	if len(lin) != 1 || lin[0] == plan.LineageAll {
		return false
	}
	ok := true
	n.Walk(func(x *plan.Node) {
		switch x.Op {
		case plan.Scan, plan.Select, plan.Project:
		default:
			ok = false
		}
	})
	return ok
}

// attachStore decorates node n with a store operator for graph node g.
func (rw *Rewriter) attachStore(n *plan.Node, g *core.Node, res *Result, speculativeStore bool) {
	cfg := rw.Rec.Config()
	snap := rw.entrySnap(g)
	extendable := snap != nil && appendExtendable(n)
	var subplan *plan.Node
	if extendable {
		subplan = n.Clone()
	}
	specSpec := exec.StoreSpec{
		Speculative: speculativeStore,
		OnComplete: func(batches []*vector.Batch, rows, bytes int64, elapsed time.Duration) {
			hrOverride := -1.0
			if speculativeStore {
				hrOverride = cfg.SpeculationHR
			}
			ok := rw.Rec.AdmitMat(g, core.Materialization{
				Batches: batches, Rows: rows, Size: bytes, Cost: elapsed,
				HROverride: hrOverride,
				Snap:       snap, Plan: subplan, Extendable: extendable,
			})
			if ok {
				atomic.AddInt32(&res.committed, 1)
				if speculativeStore {
					rw.Rec.CountSpecCommit()
				}
			}
			// Hand the batches to concurrent waiters directly, whether
			// or not admission kept them: their demand is already here.
			rw.Rec.FinishInflightShared(g, batches, rows, bytes, snap)
		},
		OnCancel: func() {
			if speculativeStore {
				rw.Rec.CountSpecCancel()
			}
			rw.Rec.FinishInflight(g)
		},
	}
	if speculativeStore {
		specSpec.OnBatch = func(progress float64, elapsed time.Duration, buffered int64) bool {
			if cfg.MaxSpeculateBytes > 0 && buffered > cfg.MaxSpeculateBytes {
				return false
			}
			if progress < cfg.MinProgress {
				return true // not enough information yet; keep buffering
			}
			estCost := time.Duration(float64(elapsed) / progress)
			estSize := int64(float64(buffered) / progress)
			// "Computationally expensive and likely small" (§III-D),
			// quantified: the result must cost more to recompute than
			// to materialize, or speculation is a net loss.
			if estCost < cfg.CopyCost(estSize) {
				return false
			}
			b := core.BenefitValue(estCost, cfg.SpeculationHR, estSize)
			return rw.Rec.WouldAdmit(g, b, estSize)
		}
		res.SpecStores++
	} else {
		res.Stores++
	}
	if d := res.Decor[n]; d != nil {
		d.Store = &specSpec
	} else {
		res.Decor[n] = &exec.Decor{Store: &specSpec}
	}
}

// Annotate walks the executed tree after completion and writes measured
// statistics back to the recycler graph: each node's base cost is its
// operator's inclusive wall time plus the stored base costs of any reused
// (substituted) subtrees below it, keeping Eq. 2 consistent (§III-C).
func (rw *Rewriter) Annotate(res *Result, opmap map[*plan.Node]exec.Operator) {
	if res.Match == nil {
		return
	}
	var walk func(n *plan.Node) time.Duration
	walk = func(n *plan.Node) time.Duration {
		d := res.Decor[n]
		if d != nil && d.Reuse != nil {
			if g := res.subst[n]; g != nil {
				cost, _, _, _ := rw.Rec.NodeStats(g)
				return cost
			}
			return 0
		}
		if d != nil && d.Wait != nil {
			if r := res.waitReused[n]; r != nil && r.Load() {
				if g := res.subst[n]; g != nil {
					cost, _, _, _ := rw.Rec.NodeStats(g)
					return cost
				}
				return 0
			}
			// Fallback executed: annotate the real subtree below.
		}
		var childSubst time.Duration
		for _, c := range n.Children {
			childSubst += walk(c)
		}
		nm := res.Match.ByNode[n]
		op := opmap[n]
		if nm != nil && op != nil {
			bcost := op.Cost() + childSubst
			rows := op.RowsOut()
			rw.Rec.UpdateStats(nm.G, bcost, rows, core.EstimateResultBytes(nm.G, rows))
		}
		return childSubst
	}
	walk(res.Exec)
}

// Committed returns the number of results this query actually materialized
// into the cache (valid after execution completes).
func (r *Result) Committed() int { return int(atomic.LoadInt32(&r.committed)) }

// Abort releases any in-flight registrations this rewrite created, for error
// paths where the operators never ran (build failures).
func (rw *Rewriter) Abort(res *Result) {
	//recycledb:nondet-ok — per-node FinishInflight is independent and idempotent
	for n, d := range res.Decor {
		if d.Store != nil {
			if g := nodeGraph(res, n); g != nil {
				rw.Rec.FinishInflight(g)
			}
		}
	}
}

func nodeGraph(res *Result, n *plan.Node) *core.Node {
	if res.Match == nil {
		return nil
	}
	if nm := res.Match.ByNode[n]; nm != nil {
		return nm.G
	}
	return nil
}
