package rewrite

import (
	"testing"

	"recycledb/internal/exec"
	"recycledb/internal/expr"
	"recycledb/internal/plan"
)

// These tests target the derivation machinery of subsume.go directly:
// replaying a subsuming cached result through a re-applied operator,
// projection, or re-aggregation.

func TestSelectChildReplaySubsumption(t *testing.T) {
	rw, cat := fixture(t, Speculative)
	wide := func() *plan.Node {
		q := plan.NewSelect(plan.NewScan("t", "k", "grp", "v"),
			expr.Lt(expr.C("v"), expr.Flt(80)))
		if err := q.Resolve(cat); err != nil {
			t.Fatal(err)
		}
		return q
	}
	r1, _ := rw.Rewrite(wide())
	run(t, rw, r1)
	if r1.Committed() == 0 {
		t.Fatalf("wide selection not cached: %+v", r1)
	}
	// Narrower selection: derive by re-filtering the cached superset.
	narrow := plan.NewSelect(plan.NewScan("t", "k", "grp", "v"),
		expr.Lt(expr.C("v"), expr.Flt(40)))
	if err := narrow.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	r3, _ := rw.Rewrite(narrow)
	if r3.SubsumptionReuses != 1 {
		t.Fatalf("expected child-replay subsumption: %+v", r3)
	}
	// The child (scan) carries the reuse decoration; the select re-runs.
	if d := r3.Decor[narrow.Children[0]]; d == nil || d.Reuse == nil {
		t.Fatal("scan child should replay the cached superset")
	}
	rows := run(t, rw, r3)
	// v < 40 over values 0..96 cycling: 40/97 of 5000 rows ~ 2061.
	if rows == 0 || rows >= 5000 {
		t.Fatalf("implausible derived row count %d", rows)
	}
	// Correctness against a fresh engine.
	rwOff, catOff := fixture(t, Off)
	narrow2 := plan.NewSelect(plan.NewScan("t", "k", "grp", "v"),
		expr.Lt(expr.C("v"), expr.Flt(40)))
	if err := narrow2.Resolve(catOff); err != nil {
		t.Fatal(err)
	}
	r4, _ := rwOff.Rewrite(narrow2)
	if want := run(t, rwOff, r4); want != rows {
		t.Fatalf("derived %d rows, want %d", rows, want)
	}
}

func TestAggColumnSubsumptionProjection(t *testing.T) {
	rw, cat := fixture(t, Speculative)
	wide := func() *plan.Node {
		q := plan.NewAggregate(plan.NewScan("t", "grp", "v"), []string{"grp"},
			plan.A(plan.Sum, expr.C("v"), "s"),
			plan.A(plan.Min, expr.C("v"), "lo"),
			plan.A(plan.Max, expr.C("v"), "hi"))
		if err := q.Resolve(cat); err != nil {
			t.Fatal(err)
		}
		return q
	}
	r1, _ := rw.Rewrite(wide())
	run(t, rw, r1)
	if r1.Committed() == 0 {
		t.Fatal("wide aggregate not cached")
	}
	// A subset of the aggregates over the same grouping: pure projection.
	narrow := plan.NewAggregate(plan.NewScan("t", "grp", "v"), []string{"grp"},
		plan.A(plan.Max, expr.C("v"), "top"))
	if err := narrow.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	r2, _ := rw.Rewrite(narrow)
	if r2.SubsumptionReuses != 1 {
		t.Fatalf("expected column subsumption: %+v", r2)
	}
	// The aggregate itself is replaced by a replay (no recomputation).
	if d := r2.Decor[narrow]; d == nil || d.Reuse == nil {
		t.Fatal("aggregate should be served by projection of the cached cube")
	}
	if rows := run(t, rw, r2); rows != 3 {
		t.Fatalf("rows = %d", rows)
	}
}

func TestAggTupleSubsumptionReaggregation(t *testing.T) {
	rw, cat := fixture(t, Speculative)
	fine := func() *plan.Node {
		q := plan.NewAggregate(plan.NewScan("t", "grp", "k", "v"),
			[]string{"grp", "k"},
			plan.A(plan.Sum, expr.C("v"), "s"),
			plan.A(plan.Count, nil, "c"))
		if err := q.Resolve(cat); err != nil {
			t.Fatal(err)
		}
		return q
	}
	r1, _ := rw.Rewrite(fine())
	run(t, rw, r1)
	if r1.Committed() == 0 {
		t.Fatal("fine aggregate not cached")
	}
	coarse := plan.NewAggregate(plan.NewScan("t", "grp", "k", "v"),
		[]string{"grp"},
		plan.A(plan.Sum, expr.C("v"), "s"),
		plan.A(plan.Count, nil, "c"))
	if err := coarse.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	r2, _ := rw.Rewrite(coarse)
	if r2.SubsumptionReuses != 1 {
		t.Fatalf("expected tuple subsumption: %+v", r2)
	}
	// The executed tree re-aggregates a Cached leaf.
	if r2.Exec.Op != plan.Aggregate || r2.Exec.Children[0].Op != plan.Cached {
		t.Fatalf("unexpected derivation shape:\n%s", r2.Exec)
	}
	rows := run(t, rw, r2)
	if rows != 3 {
		t.Fatalf("rows = %d", rows)
	}
	// count must re-aggregate as a sum of counts: total 5000.
	ctx := exec.NewCtx(cat)
	op, err := exec.Build(ctx, r2.Exec, r2.Decor, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, b := range res.Batches {
		ci := res.Schema.ColIndex("c")
		for i := 0; i < b.Len(); i++ {
			total += b.Vecs[ci].I64[i]
		}
	}
	if total != 5000 {
		t.Fatalf("re-aggregated count = %d, want 5000", total)
	}
}

func TestTopNPrefixSubsumption(t *testing.T) {
	rw, cat := fixture(t, Speculative)
	big := func() *plan.Node {
		q := plan.NewTopN(plan.NewScan("t", "k", "v"),
			[]plan.SortKey{{Col: "v", Desc: true}, {Col: "k"}}, 200)
		if err := q.Resolve(cat); err != nil {
			t.Fatal(err)
		}
		return q
	}
	r1, _ := rw.Rewrite(big())
	run(t, rw, r1)
	if r1.Committed() == 0 {
		t.Fatal("top-200 not cached")
	}
	small := plan.NewTopN(plan.NewScan("t", "k", "v"),
		[]plan.SortKey{{Col: "v", Desc: true}, {Col: "k"}}, 10)
	if err := small.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	r2, _ := rw.Rewrite(small)
	if r2.SubsumptionReuses != 1 {
		t.Fatalf("expected top-N subsumption: %+v", r2)
	}
	if rows := run(t, rw, r2); rows != 10 {
		t.Fatalf("rows = %d", rows)
	}
}

func TestProactiveCubeSelectionsDerivesCorrectly(t *testing.T) {
	rw, cat := fixture(t, Proactive)
	q := func(g string) *plan.Node {
		qq := plan.NewAggregate(
			plan.NewSelect(plan.NewScan("t", "grp", "k", "v"),
				expr.Eq(expr.C("grp"), expr.Str(g))),
			nil,
			plan.A(plan.Sum, expr.C("v"), "total"),
			plan.A(plan.Count, nil, "n"))
		if err := qq.Resolve(cat); err != nil {
			t.Fatal(err)
		}
		return qq
	}
	// Reference answer from OFF mode.
	rwOff, catOff := fixture(t, Off)
	ref := plan.NewAggregate(
		plan.NewSelect(plan.NewScan("t", "grp", "k", "v"),
			expr.Eq(expr.C("grp"), expr.Str("b"))),
		nil,
		plan.A(plan.Sum, expr.C("v"), "total"),
		plan.A(plan.Count, nil, "n"))
	if err := ref.Resolve(catOff); err != nil {
		t.Fatal(err)
	}
	rOff, _ := rwOff.Rewrite(ref)
	ctxOff := exec.NewCtx(catOff)
	opOff, _ := exec.Build(ctxOff, rOff.Exec, rOff.Decor, nil)
	resOff, err := exec.Run(ctxOff, opOff)
	if err != nil {
		t.Fatal(err)
	}
	wantN := resOff.Batches[0].Vecs[1].I64[0]

	// Trigger the rule until the cube variant executes, then check the
	// derived answer for a *different* parameter.
	for i := 0; i < 3; i++ {
		r, err := rw.Rewrite(q("a"))
		if err != nil {
			t.Fatal(err)
		}
		run(t, rw, r)
	}
	r, err := rw.Rewrite(q("b"))
	if err != nil {
		t.Fatal(err)
	}
	if !r.ProactiveApplied {
		t.Fatalf("cube variant should be chosen by now: %+v", r)
	}
	ctx := exec.NewCtx(cat)
	op, _ := exec.Build(ctx, r.Exec, r.Decor, nil)
	res, err := exec.Run(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Batches[0].Vecs[1].I64[0]; got != wantN {
		t.Fatalf("cube-derived count = %d, want %d", got, wantN)
	}
}

func TestProactiveDisabledBelowPA(t *testing.T) {
	rw, cat := fixture(t, Speculative)
	q := plan.NewTopN(plan.NewScan("t", "k", "v"),
		[]plan.SortKey{{Col: "v", Desc: true}}, 10)
	if err := q.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	r, _ := rw.Rewrite(q)
	if r.ProactiveApplied {
		t.Fatal("SPEC mode must not apply proactive rules")
	}
}
