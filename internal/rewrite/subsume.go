package rewrite

import (
	"recycledb/internal/catalog"
	"recycledb/internal/core"
	"recycledb/internal/exec"
	"recycledb/internal/expr"
	"recycledb/internal/plan"
)

// applySubsumption derives node n's result from the cached result of
// subsumer s (§IV-A). It returns true on success with the entry e consumed
// (released via the replay operator); on false the caller releases e.
//
// Derivations:
//   - Select:  replay s (a looser selection over the same child) in place
//     of n's child and re-apply n's predicate (tuple subsumption);
//   - TopN:    replay s (a larger top-N) in place of n's child and re-apply
//     the smaller top-N (prefix subsumption);
//   - Aggregate, same grouping:   project n's aggregates out of s (column
//     subsumption);
//   - Aggregate, coarser grouping: re-aggregate s's finer groups with the
//     decomposed aggregate functions (tuple subsumption).
func (rw *Rewriter) applySubsumption(n *plan.Node, nm *core.NodeMatch, s *core.Node, e *core.Entry, res *Result) bool {
	switch n.Op {
	case plan.Select, plan.TopN:
		return rw.childReplaySubsumption(n, s, e, res)
	case plan.Aggregate:
		sameGrouping := equalSorted(nm.G.Meta(), s.Meta())
		if sameGrouping {
			return rw.columnSubsumption(n, nm, s, e, res)
		}
		return rw.tupleSubsumption(n, nm, s, e, res)
	}
	return false
}

func equalSorted(a, b *core.SubMeta) bool {
	if a == nil || b == nil || len(a.GroupBy) != len(b.GroupBy) {
		return false
	}
	for i := range a.GroupBy {
		if a.GroupBy[i] != b.GroupBy[i] {
			return false
		}
	}
	return true
}

// childReplaySubsumption replaces n's child subtree with a replay of s's
// cached result; n's own operator re-derives the exact answer on top.
func (rw *Rewriter) childReplaySubsumption(n *plan.Node, s *core.Node, e *core.Entry, res *Result) bool {
	child := n.Children[0]
	cm := res.Match.ByNode[child]
	if cm == nil {
		return false
	}
	// Select and TopN pass their child's columns through, so s's output
	// columns are the child's columns in the graph namespace. Map each
	// query-side child column to its position in s's cached result.
	outIdx := make([]int, len(child.Schema()))
	for i, name := range child.Schema().Names() {
		gname, ok := cm.OutMap[name]
		if !ok {
			return false
		}
		j := indexOf(s.OutCols, gname)
		if j < 0 {
			return false
		}
		outIdx[i] = j
	}
	res.Decor[child] = &exec.Decor{Reuse: rw.reuseSpec(e, outIdx)}
	res.subst[child] = cm.G
	return true
}

// columnSubsumption replays s directly as n's result, projecting n's subset
// of aggregate columns.
func (rw *Rewriter) columnSubsumption(n *plan.Node, nm *core.NodeMatch, s *core.Node, e *core.Entry, res *Result) bool {
	nMeta, sMeta := nm.G.Meta(), s.Meta()
	if nMeta == nil || sMeta == nil {
		return false
	}
	nG := len(n.GroupBy)
	sG := len(sMeta.GroupBy)
	outIdx := make([]int, len(nm.G.OutCols))
	for i := range outIdx {
		if i < nG {
			j := indexOf(s.OutCols, nm.G.OutCols[i])
			if j < 0 {
				return false
			}
			outIdx[i] = j
			continue
		}
		sig := nMeta.AggSigs[i-nG]
		k := indexOfStr(sMeta.AggSigs, sig)
		if k < 0 {
			return false
		}
		outIdx[i] = sG + k
	}
	res.Decor[n] = &exec.Decor{Reuse: rw.reuseSpec(e, outIdx)}
	res.subst[n] = nm.G
	return true
}

// tupleSubsumption rewrites n in place into a re-aggregation of s's cached,
// finer-grained result: γ_g F_upper(Cached(s)) (§IV-A example: deriving
// age F sum(slry) from age,dno F sum(slry)).
func (rw *Rewriter) tupleSubsumption(n *plan.Node, nm *core.NodeMatch, s *core.Node, e *core.Entry, res *Result) bool {
	nMeta, sMeta := nm.G.Meta(), s.Meta()
	if nMeta == nil || sMeta == nil || !nMeta.Decompose {
		return false
	}
	cm := res.Match.ByNode[n.Children[0]]
	if cm == nil {
		return false
	}
	// Reverse name mapping graph->query for the child's columns, so the
	// replayed schema exposes the query-side names the re-aggregation's
	// group-by refers to.
	rev := make(map[string]string, len(cm.OutMap))
	//recycledb:nondet-ok — map inversion; OutMap is a bijection
	for q, g := range cm.OutMap {
		rev[g] = q
	}
	sG := len(sMeta.GroupBy)
	cachedSchema := make(catalog.Schema, len(s.OutCols))
	seen := make(map[string]struct{}, len(s.OutCols))
	for i, gname := range s.OutCols {
		name := gname
		if q, ok := rev[gname]; ok {
			name = q
		}
		if _, dup := seen[name]; dup {
			return false
		}
		seen[name] = struct{}{}
		cachedSchema[i] = catalog.Column{Name: name, Typ: s.OutTypes[i]}
	}
	// Upper aggregate specs: re-aggregate s's aggregate outputs under n's
	// original output names (count re-aggregates as sum).
	upper := make([]plan.AggSpec, len(n.Aggs))
	for i, a := range n.Aggs {
		sig := nMeta.AggSigs[i]
		k := indexOfStr(sMeta.AggSigs, sig)
		if k < 0 {
			return false
		}
		srcCol := cachedSchema[sG+k].Name
		f := a.Func
		if f == plan.Count {
			f = plan.Sum
		}
		upper[i] = plan.AggSpec{Func: f, Arg: expr.C(srcCol), As: a.As}
	}
	// Verify every group-by column of n is visible in the cached schema.
	for _, g := range n.GroupBy {
		if cachedSchema.ColIndex(g) < 0 {
			return false
		}
	}
	cached := plan.NewCached(cachedSchema)
	oldSchema := n.Schema()
	// Mutate n in place into the re-aggregation; the parent's bindings
	// stay valid because the output schema is unchanged.
	n.Children = []*plan.Node{cached}
	n.Aggs = upper
	if err := n.Resolve(rw.Cat); err != nil {
		return false
	}
	if !schemasEqual(oldSchema, n.Schema()) {
		return false
	}
	res.Decor[cached] = &exec.Decor{Reuse: rw.reuseSpec(e, identityIdx(len(s.OutCols)))}
	res.subst[cached] = cm.G
	return true
}

func indexOf(ss []string, s string) int {
	for i, v := range ss {
		if v == s {
			return i
		}
	}
	return -1
}

func indexOfStr(ss []string, s string) int { return indexOf(ss, s) }

func schemasEqual(a, b catalog.Schema) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
