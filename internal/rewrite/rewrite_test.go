package rewrite

import (
	"sync/atomic"
	"testing"
	"time"

	"recycledb/internal/catalog"
	"recycledb/internal/core"
	"recycledb/internal/exec"
	"recycledb/internal/expr"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// fixture builds a catalog with one table and a rewriter in the given mode.
func fixture(t *testing.T, mode Mode) (*Rewriter, *catalog.Catalog) {
	t.Helper()
	cat := catalog.New()
	tbl := catalog.NewTable("t", catalog.Schema{
		{Name: "k", Typ: vector.Int64},
		{Name: "grp", Typ: vector.String},
		{Name: "v", Typ: vector.Float64},
		{Name: "d", Typ: vector.Date},
	})
	w := tbl.BeginWrite()
	ap := w.Appender()
	groups := []string{"a", "b", "c"}
	base := vector.MustParseDate("1995-01-01")
	for i := 0; i < 5000; i++ {
		ap.Int64(0, int64(i))
		ap.String(1, groups[i%3])
		ap.Float64(2, float64(i%97))
		ap.Int64(3, base+int64(i%1400))
		ap.FinishRow()
	}
	w.Commit()
	cat.AddTable(tbl)
	cfg := core.DefaultConfig()
	cfg.Alpha = 1
	// Copying is modelled as free: these tests exercise the rewriting
	// machinery, not the materialization economics.
	cfg.CopyBytesPerSec = 1 << 50
	rec := core.New(cfg)
	return NewRewriter(rec, cat, mode), cat
}

// run executes a rewritten query and annotates the graph.
func run(t *testing.T, rw *Rewriter, res *Result) int64 {
	t.Helper()
	ctx := exec.NewCtx(rw.Cat)
	opmap := make(map[*plan.Node]exec.Operator)
	op, err := exec.Build(ctx, res.Exec, res.Decor, opmap)
	if err != nil {
		t.Fatal(err)
	}
	out, err := exec.Run(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	rw.Annotate(res, opmap)
	return int64(out.Rows())
}

func aggQuery(t *testing.T, cat *catalog.Catalog, hi float64) *plan.Node {
	t.Helper()
	q := plan.NewAggregate(
		plan.NewSelect(plan.NewScan("t", "grp", "v"),
			expr.Lt(expr.C("v"), expr.Flt(hi))),
		[]string{"grp"},
		plan.A(plan.Sum, expr.C("v"), "total"))
	if err := q.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	return q
}

func TestOffModeIsInert(t *testing.T) {
	rw, cat := fixture(t, Off)
	res, err := rw.Rewrite(aggQuery(t, cat, 50))
	if err != nil {
		t.Fatal(err)
	}
	if res.Match != nil || len(res.Decor) != 0 {
		t.Fatal("off mode must not touch the recycler")
	}
	if rw.Rec.Graph().Size() != 0 {
		t.Fatal("off mode must not grow the graph")
	}
}

func TestHistoryLifecycle(t *testing.T) {
	rw, cat := fixture(t, History)
	// 1st sight: no stores, no reuse.
	r1, _ := rw.Rewrite(aggQuery(t, cat, 50))
	if r1.Stores != 0 || r1.Reuses != 0 {
		t.Fatalf("first sight: %+v", r1)
	}
	run(t, rw, r1)
	// 2nd sight: history store injected.
	r2, _ := rw.Rewrite(aggQuery(t, cat, 50))
	if r2.Stores == 0 {
		t.Fatalf("second sight should store: %+v", r2)
	}
	run(t, rw, r2)
	if r2.Committed() == 0 {
		t.Fatal("store did not commit")
	}
	// 3rd sight: reuse.
	r3, _ := rw.Rewrite(aggQuery(t, cat, 50))
	if r3.Reuses == 0 {
		t.Fatalf("third sight should reuse: %+v", r3)
	}
	rows := run(t, rw, r3)
	if rows != 3 {
		t.Fatalf("rows = %d", rows)
	}
}

func TestHistoryNeverSpeculates(t *testing.T) {
	rw, cat := fixture(t, History)
	r, _ := rw.Rewrite(aggQuery(t, cat, 50))
	if r.SpecStores != 0 {
		t.Fatal("history mode must not speculate")
	}
}

func TestSpeculativeStoresFirstSight(t *testing.T) {
	rw, cat := fixture(t, Speculative)
	r1, _ := rw.Rewrite(aggQuery(t, cat, 50))
	if r1.SpecStores == 0 {
		t.Fatalf("speculation should target the aggregate: %+v", r1)
	}
	run(t, rw, r1)
	r2, _ := rw.Rewrite(aggQuery(t, cat, 50))
	if r2.Reuses == 0 {
		t.Fatal("second sight should reuse the speculated result")
	}
	run(t, rw, r2)
}

func TestSpeculationBufferCapCancels(t *testing.T) {
	rw, cat := fixture(t, Speculative)
	// A tiny speculation budget forces cancellation on a wide result.
	cfg := core.DefaultConfig()
	cfg.Alpha = 1
	cfg.MaxSpeculateBytes = 64
	rw.Rec = core.New(cfg)
	q := plan.NewSort(plan.NewScan("t"), plan.SortKey{Col: "v"}) // big result
	if err := q.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	r, _ := rw.Rewrite(q)
	run(t, rw, r)
	if r.Committed() != 0 {
		t.Fatal("oversized speculation must cancel")
	}
	if rw.Rec.Stats().SpecCancels == 0 {
		t.Fatal("cancel not recorded")
	}
}

func TestAnnotateRecordsCosts(t *testing.T) {
	rw, cat := fixture(t, Speculative)
	q := aggQuery(t, cat, 50)
	r, _ := rw.Rewrite(q)
	run(t, rw, r)
	nm := r.Match.ByNode[q]
	if nm == nil {
		t.Fatal("root not matched")
	}
	cost, known, card, bytes := rw.Rec.NodeStats(nm.G)
	if !known || cost <= 0 {
		t.Fatalf("cost not annotated: %v %v", cost, known)
	}
	if card != 3 || bytes <= 0 {
		t.Fatalf("card=%d bytes=%d", card, bytes)
	}
}

func TestAnnotateAddsReusedBaseCost(t *testing.T) {
	rw, cat := fixture(t, Speculative)
	// Execute & cache the select subtree via its parent query twice.
	sel := func() *plan.Node {
		q := plan.NewSelect(plan.NewScan("t", "grp", "v"),
			expr.Lt(expr.C("v"), expr.Flt(50)))
		if err := q.Resolve(cat); err != nil {
			t.Fatal(err)
		}
		return q
	}
	r1, _ := rw.Rewrite(sel())
	run(t, rw, r1)
	selCost, _, _, _ := rw.Rec.NodeStats(r1.Match.ByNode[r1.Exec].G)
	r2, _ := rw.Rewrite(sel())
	run(t, rw, r2)
	// Third run reuses; an aggregate above it must still account the
	// select's base cost in its own bcost (Eq. 2 bookkeeping).
	q := aggQuery(t, cat, 50)
	r3, _ := rw.Rewrite(q)
	if r3.Reuses == 0 {
		t.Fatalf("expected select reuse: %+v", r3)
	}
	run(t, rw, r3)
	aggCost, known, _, _ := rw.Rec.NodeStats(r3.Match.ByNode[q].G)
	if !known {
		t.Fatal("agg cost unknown")
	}
	if aggCost < selCost {
		t.Fatalf("agg bcost %v must include reused select bcost %v", aggCost, selCost)
	}
}

func TestStallPlansWaitWhenInflight(t *testing.T) {
	rw, cat := fixture(t, Speculative)
	q1 := aggQuery(t, cat, 50)
	r1, _ := rw.Rewrite(q1)
	run(t, rw, r1) // stats known now; the result was speculated into cache
	// Evict it and register an inflight producer by hand, as if another
	// query were materializing it right now.
	g := r1.Match.ByNode[q1].G
	rw.Rec.Evict(g)
	if !rw.Rec.BeginInflight(g) {
		t.Fatal("inflight registration failed")
	}
	r2, _ := rw.Rewrite(aggQuery(t, cat, 50))
	if r2.Waits == 0 {
		t.Fatalf("expected a planned stall: %+v", r2)
	}
	// Finish the materialization concurrently so the waiter reuses it.
	go func() {
		time.Sleep(5 * time.Millisecond)
		b := vector.NewBatch([]vector.Type{vector.String, vector.Float64}, 1)
		b.Vecs[0].AppendString("a")
		b.Vecs[1].AppendFloat64(1)
		rw.Rec.Admit(g, []*vector.Batch{b}, 1, 24, time.Millisecond, -1)
		rw.Rec.FinishInflight(g)
	}()
	rows := run(t, rw, r2)
	if rows != 1 {
		t.Fatalf("waiter should replay the 1-row result, got %d", rows)
	}
	if rw.Rec.Stats().StallReuses == 0 {
		t.Fatal("stall reuse not recorded")
	}
}

func TestStallTimeoutFallsBack(t *testing.T) {
	rw, cat := fixture(t, Speculative)
	cfg := core.DefaultConfig()
	cfg.Alpha = 1
	cfg.StallTimeout = 20 * time.Millisecond
	rw.Rec = core.New(cfg)
	q1 := aggQuery(t, cat, 50)
	r1, _ := rw.Rewrite(q1)
	run(t, rw, r1)
	g := r1.Match.ByNode[q1].G
	rw.Rec.Evict(g)
	rw.Rec.BeginInflight(g) // never finished
	r2, _ := rw.Rewrite(aggQuery(t, cat, 50))
	if r2.Waits == 0 {
		t.Fatal("expected a planned stall")
	}
	rows := run(t, rw, r2) // must fall back to recomputation
	if rows != 3 {
		t.Fatalf("fallback rows = %d", rows)
	}
	rw.Rec.FinishInflight(g)
}

func TestProactiveTopNWideningPlan(t *testing.T) {
	rw, cat := fixture(t, Proactive)
	q := plan.NewTopN(plan.NewScan("t", "k", "v"),
		[]plan.SortKey{{Col: "v", Desc: true}}, 10)
	if err := q.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	r, err := rw.Rewrite(q)
	if err != nil {
		t.Fatal(err)
	}
	if !r.ProactiveApplied {
		t.Fatal("top-N widening should apply")
	}
	// The executed tree is topN(10) over topN(WideTopN).
	if r.Exec.Op != plan.TopN || r.Exec.Children[0].Op != plan.TopN ||
		r.Exec.Children[0].N != WideTopN {
		t.Fatalf("unexpected shape:\n%s", r.Exec)
	}
	if rows := run(t, rw, r); rows != 10 {
		t.Fatalf("rows = %d", rows)
	}
}

func TestProactiveCubeGateNeedsEvidence(t *testing.T) {
	rw, cat := fixture(t, Proactive)
	q := func() *plan.Node {
		q := plan.NewAggregate(
			plan.NewSelect(plan.NewScan("t", "grp", "v"),
				expr.Eq(expr.C("grp"), expr.Str("a"))),
			nil,
			plan.A(plan.Sum, expr.C("v"), "total"))
		if err := q.Resolve(cat); err != nil {
			t.Fatal(err)
		}
		return q
	}
	// First trigger: not enough evidence, original plan executes.
	r1, _ := rw.Rewrite(q())
	if r1.ProactiveApplied {
		t.Fatal("cube must not execute on first trigger")
	}
	run(t, rw, r1)
	// Second trigger: the variant's references have accumulated.
	r2, _ := rw.Rewrite(q())
	if !r2.ProactiveApplied {
		t.Fatalf("cube should execute on second trigger: %+v", r2)
	}
	if rows := run(t, rw, r2); rows != 1 {
		t.Fatalf("rows = %d", rows)
	}
}

func TestDropStoresUnderWaits(t *testing.T) {
	rw, cat := fixture(t, Speculative)
	q := aggQuery(t, cat, 60)
	r1, _ := rw.Rewrite(q)
	run(t, rw, r1)
	// Force a wait at the root and a store below it, then verify cleanup.
	root := aggQuery(t, cat, 60)
	r2 := &Result{
		Exec:       root,
		Decor:      make(exec.Decorations),
		Match:      rw.Rec.MatchInsert(root),
		subst:      make(map[*plan.Node]*core.Node),
		waitReused: make(map[*plan.Node]*atomic.Bool),
	}
	g := r2.Match.ByNode[root].G
	sel := root.Children[0]
	gSel := r2.Match.ByNode[sel].G
	rw.planWait(root, g, r2)
	rw.Rec.BeginInflight(gSel)
	rw.attachStore(sel, gSel, r2, true)
	rw.dropStoresUnderWaits(root, r2, false)
	if d := r2.Decor[sel]; d != nil && d.Store != nil {
		t.Fatal("store under wait must be dropped")
	}
	if rw.Rec.Inflight(gSel) {
		t.Fatal("dropped store must release its registration")
	}
}
