package rewrite

import (
	"sort"

	"recycledb/internal/core"
	"recycledb/internal/expr"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// Proactive recycling (§IV-B): execute a slightly more expensive query whose
// intermediate result has high reuse potential.
//
//   - Top-N widening: topN(Q, n) is practically as cheap as topN(Q, 10000)
//     while the heap fits the cache, so the widened result is computed and
//     recycled; the requested prefix is re-derived by subsumption.
//   - Cube caching with selections: γg Fα(σp(c)(X)) becomes
//     γg Fα″(σp(c)(γg∪c Fα′(X))) when every selection column has few
//     distinct values; the inner cube is parameter-independent and caches.
//   - Cube caching with binning: a high-cardinality date range predicate is
//     split into contained year bins (answered from a cube extended with
//     year(c)) plus a residual range recomputed exactly (Fig. 5 right).
//
// The proactive variant is matched and inserted into the recycler graph on
// every trigger so its common parts accumulate references; it is executed
// once its cube is cached or has gathered enough references for a store
// decision, exactly as §IV-B prescribes.

// WideTopN is the widened top-N size (the paper's 10 000).
const WideTopN = 10000

// applyProactive returns a transformed tree to execute, or nil to keep the
// original. It may mutate root (the engine clones user plans first).
func (rw *Rewriter) applyProactive(root *plan.Node) (*plan.Node, error) {
	changed := widenTopN(root)
	out := root
	if pv, cubes := rw.buildCubeVariant(root); pv != nil {
		if err := pv.Resolve(rw.Cat); err == nil {
			mres := rw.Rec.MatchInsert(pv)
			execute := false
			for _, c := range cubes {
				nm := mres.ByNode[c]
				if nm == nil {
					continue
				}
				if e := rw.Rec.Cached(nm.G); e != nil {
					rw.Rec.Release(e)
					execute = true
					continue
				}
				// Once the cube has been executed and measured, only
				// keep paying the proactive overhead if the cube can
				// actually be cached profitably (its recompute cost
				// must exceed its materialization cost).
				cost, known, _, bytes := rw.Rec.NodeStats(nm.G)
				if known && bytes > 0 && cost < rw.Rec.Config().CopyCost(bytes) {
					continue
				}
				if rw.Rec.HR(nm.G) >= 1 || rw.Rec.Inflight(nm.G) {
					execute = true
				}
			}
			if execute {
				out = pv
				changed = true
			} else {
				// Not executed this time: the proactive variant still
				// accumulates references so a store decision can be
				// reached on a later trigger (§IV-B).
				for _, c := range cubes {
					if nm := mres.ByNode[c]; nm != nil {
						rw.Rec.AddRefTo(nm.G)
					}
				}
			}
		}
	}
	if !changed {
		return nil, nil
	}
	if err := out.Resolve(rw.Cat); err != nil {
		return nil, err
	}
	return out, nil
}

// widenTopN rewrites every topN(keys, n<WideTopN) into
// topN(keys, n) over topN(keys, WideTopN), in place.
func widenTopN(n *plan.Node) bool {
	changed := false
	var walk func(x *plan.Node)
	walk = func(x *plan.Node) {
		for _, c := range x.Children {
			walk(c)
		}
		if x.Op == plan.TopN && x.N < WideTopN {
			// Skip if the child is already a widened top-N.
			if len(x.Children) == 1 && x.Children[0].Op == plan.TopN {
				return
			}
			inner := plan.NewTopN(x.Children[0], append([]plan.SortKey(nil), x.Keys...), WideTopN)
			x.Children = []*plan.Node{inner}
			changed = true
		}
	}
	walk(n)
	return changed
}

// buildCubeVariant looks for aggregate-over-selection patterns and builds
// the proactive variant tree (a clone; root is untouched). It returns the
// variant and the cube aggregate nodes within it, or (nil, nil).
func (rw *Rewriter) buildCubeVariant(root *plan.Node) (*plan.Node, []*plan.Node) {
	pv := root.Clone()
	if err := pv.Resolve(rw.Cat); err != nil {
		return nil, nil
	}
	var cubes []*plan.Node
	var walk func(x *plan.Node)
	walk = func(x *plan.Node) {
		for _, c := range x.Children {
			walk(c)
		}
		if x.Op != plan.Aggregate || len(x.Children) != 1 || x.Children[0].Op != plan.Select {
			return
		}
		if cube := rw.rewriteCube(x); cube != nil {
			cubes = append(cubes, cube)
		}
	}
	walk(pv)
	if len(cubes) == 0 {
		return nil, nil
	}
	return pv, cubes
}

// rewriteCube rewrites one γg Fα(σp(X)) node in place per §IV-B and returns
// the cube aggregate node, or nil if no rule applies.
func (rw *Rewriter) rewriteCube(agg *plan.Node) *plan.Node {
	sel := agg.Children[0]
	x := sel.Children[0]
	predCols := expr.Cols(sel.Pred)
	if len(predCols) == 0 {
		return nil
	}
	// Classify predicate columns by distinct count in their base tables.
	var lowCard, highCard []string
	for _, c := range predCols {
		if x.Schema().ColIndex(c) < 0 {
			return nil // predicate over a computed column; no rule
		}
		d := rw.baseDistinct(x, c)
		if d > 0 && d <= rw.ProactiveDistinctLimit {
			lowCard = append(lowCard, c)
		} else {
			highCard = append(highCard, c)
		}
	}
	lower, upper, needProject, ok := plan.DecomposeAggs(agg.Aggs)
	if !ok {
		return nil
	}
	if len(highCard) == 0 {
		return rw.cubeWithSelections(agg, sel, x, lowCard, lower, upper, needProject)
	}
	if len(highCard) == 1 {
		return rw.cubeWithBinning(agg, sel, x, lowCard, highCard[0], lower, upper, needProject)
	}
	return nil
}

// baseDistinct finds the base table providing column col under x and returns
// its distinct count, or -1.
func (rw *Rewriter) baseDistinct(x *plan.Node, col string) int64 {
	var d int64 = -1
	x.Walk(func(n *plan.Node) {
		if d >= 0 || n.Op != plan.Scan {
			return
		}
		t, err := rw.Cat.Table(n.Table)
		if err != nil {
			return
		}
		if t.Schema.ColIndex(col) >= 0 {
			d = t.DistinctCount(col)
		}
	})
	return d
}

// cubeWithSelections pulls the selection above an extended-GROUP BY
// aggregation (Fig. 5 left). agg is mutated in place; the cube node is
// returned.
func (rw *Rewriter) cubeWithSelections(agg, sel, x *plan.Node, predCols []string, lower, upper []plan.AggSpec, needProject bool) *plan.Node {
	cubeGroup := unionCols(agg.GroupBy, predCols)
	cube := plan.NewAggregate(x, cubeGroup, lower...)
	sel2 := plan.NewSelect(cube, sel.Pred.Clone())
	outer := plan.NewAggregate(sel2, append([]string(nil), agg.GroupBy...), upper...)
	replaceNode(agg, outer, needProject, agg.GroupBy, agg.Aggs)
	return cube
}

// cubeWithBinning splits a single high-cardinality date range predicate into
// year bins plus a residual (Fig. 5 right). Only upper-bounded ranges
// (c <= hi / c < hi) are handled; other shapes keep the original plan.
func (rw *Rewriter) cubeWithBinning(agg, sel, x *plan.Node, lowCard []string, dateCol string, lower, upper []plan.AggSpec, needProject bool) *plan.Node {
	idx := x.Schema().ColIndex(dateCol)
	if idx < 0 || x.Schema()[idx].Typ != vector.Date {
		return nil
	}
	intervals, ok := core.AnalyzePred(sel.Pred, expr.Ident)
	if !ok {
		return nil
	}
	iv, ok := intervals[dateCol]
	if !ok || !iv.HasHi || iv.HasLo {
		return nil
	}
	// Every conjunct must reference either only low-cardinality columns
	// (re-applied on the cube) or only the date column (split into bins
	// plus residual); mixed conjuncts cannot be decomposed.
	if !conjunctsSeparable(sel.Pred, lowCard, dateCol) {
		return nil
	}
	hi := iv.Hi.I64
	hiYear := vector.YearOf(hi)
	binCol := "__bin_" + dateCol

	// Projection computing the bin column, passing through every column
	// the cube needs.
	need := unionCols(unionCols(agg.GroupBy, lowCard), aggArgCols(lower))
	need = unionCols(need, nil)
	var projs []plan.NamedExpr
	for _, c := range need {
		projs = append(projs, plan.P(expr.C(c), c))
	}
	projs = append(projs, plan.P(expr.YearOf(expr.C(dateCol)), binCol))
	proj := plan.NewProject(x, projs...)

	cubeGroup := unionCols(unionCols(agg.GroupBy, lowCard), []string{binCol})
	cube := plan.NewAggregate(proj, cubeGroup, cloneAggs(lower)...)

	// Contained side: whole years strictly below the bound, plus the
	// low-cardinality constraints re-applied on the cube.
	containedPred := expr.Expr(expr.Lt(expr.C(binCol), expr.Int(hiYear)))
	if lp := lowCardPred(sel.Pred, lowCard); lp != nil {
		containedPred = expr.AndOf(lp, containedPred)
	}
	ql := plan.NewAggregate(plan.NewSelect(cube, containedPred),
		append([]string(nil), agg.GroupBy...), cloneAggs(upper)...)

	// Residual side: the exact original predicate (which carries the hi
	// bound) restricted to the bound's year, recomputed from raw input.
	residPred := expr.AndOf(
		sel.Pred.Clone(),
		expr.Ge(expr.C(dateCol), expr.DateDays(vector.DaysFromDate(int(hiYear), 1, 1))),
	)
	qr := plan.NewAggregate(plan.NewSelect(x.Clone(), residPred),
		append([]string(nil), agg.GroupBy...), cloneAggs(lower)...)

	union := plan.NewUnion(ql, qr)
	outer := plan.NewAggregate(union, append([]string(nil), agg.GroupBy...), cloneAggs(upper)...)
	replaceNode(agg, outer, needProject, agg.GroupBy, agg.Aggs)
	return cube
}

// conjunctsSeparable reports whether every conjunct of p references either
// only lowCard columns or only the date column.
func conjunctsSeparable(p expr.Expr, lowCard []string, dateCol string) bool {
	set := make(map[string]struct{}, len(lowCard)+1)
	for _, c := range lowCard {
		set[c] = struct{}{}
	}
	pure := func(e expr.Expr) bool {
		cols := expr.Cols(e)
		onlyLow, onlyDate := true, true
		for _, c := range cols {
			if _, ok := set[c]; !ok {
				onlyLow = false
			}
			if c != dateCol {
				onlyDate = false
			}
		}
		return onlyLow || onlyDate
	}
	if and, ok := p.(*expr.And); ok {
		for _, e := range and.Es {
			if !pure(e) {
				return false
			}
		}
		return true
	}
	return pure(p)
}

// lowCardPred extracts the conjuncts of p that reference only lowCard
// columns, or nil.
func lowCardPred(p expr.Expr, lowCard []string) expr.Expr {
	set := make(map[string]struct{}, len(lowCard))
	for _, c := range lowCard {
		set[c] = struct{}{}
	}
	onlyLow := func(e expr.Expr) bool {
		for _, c := range expr.Cols(e) {
			if _, ok := set[c]; !ok {
				return false
			}
		}
		return true
	}
	if and, ok := p.(*expr.And); ok {
		var keep []expr.Expr
		for _, e := range and.Es {
			if onlyLow(e) {
				keep = append(keep, e.Clone())
			}
		}
		if len(keep) == 0 {
			return nil
		}
		return expr.AndOf(keep...)
	}
	if onlyLow(p) {
		return p.Clone()
	}
	return nil
}

// replaceNode overwrites dst with src's content, optionally wrapping with
// the avg-restoring projection.
func replaceNode(dst, src *plan.Node, needProject bool, groupBy []string, origAggs []plan.AggSpec) {
	if needProject {
		src = plan.NewProject(src, plan.FinalProjection(groupBy, origAggs)...)
	}
	*dst = *src
}

// unionCols merges column name lists preserving first-occurrence order.
func unionCols(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	seen := make(map[string]struct{}, len(a)+len(b))
	for _, s := range append(append([]string{}, a...), b...) {
		if _, ok := seen[s]; ok {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	return out
}

// aggArgCols collects the input columns referenced by aggregate arguments,
// sorted: the proactive cube's projection must have a deterministic column
// order or identical cubes would not unify in the recycler graph.
func aggArgCols(aggs []plan.AggSpec) []string {
	set := make(map[string]struct{})
	for _, a := range aggs {
		if a.Arg != nil {
			a.Arg.AddCols(set)
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func cloneAggs(aggs []plan.AggSpec) []plan.AggSpec {
	out := make([]plan.AggSpec, len(aggs))
	for i, a := range aggs {
		na := plan.AggSpec{Func: a.Func, As: a.As}
		if a.Arg != nil {
			na.Arg = a.Arg.Clone()
		}
		out[i] = na
	}
	return out
}
