// Package monet implements the comparison system of the paper's Fig. 6: an
// operator-at-a-time engine in the MonetDB mold, where every operator fully
// materializes its result before the parent runs, plus a recycler in the
// style of Ivanova et al. (SIGMOD 2009): since materialization is a free
// by-product of the execution paradigm, every intermediate is admitted to
// the cache, matching happens directly on cached results (one entry per
// operator instance, keyed by its full subtree), and eviction is
// benefit-ordered. Consequently it must keep all intermediates on the path
// to a result — the property that separates the two systems under a limited
// cache budget (§V).
package monet

import (
	"sort"
	"sync"
	"time"

	"recycledb/internal/catalog"
	"recycledb/internal/exec"
	"recycledb/internal/expr"
	"recycledb/internal/plan"
)

// Engine evaluates plans operator-at-a-time over a catalog, optionally with
// a Recycler attached.
type Engine struct {
	Cat *catalog.Catalog
	Rec *Recycler
}

// New returns an engine; rec may be nil (the naive baseline). Engines with
// a recycler attach invalidate-all-on-write semantics to the catalog: any
// committed write epoch, on any table, flushes the whole cache — the
// Ivanova-style recycler has no lineage, so this coarse protocol (the
// paper's Fig. 6 "update invalidation") is the best it can do. Contrast
// the pipelined recycler's lineage-based walk with append delta extension.
func New(cat *catalog.Catalog, rec *Recycler) *Engine {
	if rec != nil {
		cat.OnCommit(func(*catalog.Table, catalog.CommitInfo) { rec.Flush() })
	}
	return &Engine{Cat: cat, Rec: rec}
}

// Execute evaluates the plan bottom-up, materializing every intermediate.
func (e *Engine) Execute(p *plan.Node) (*catalog.Result, error) {
	q := p.Clone()
	if err := q.Resolve(e.Cat); err != nil {
		return nil, err
	}
	res, _, err := e.eval(q)
	return res, err
}

// eval returns the node's materialized result and its subtree key.
func (e *Engine) eval(n *plan.Node) (*catalog.Result, string, error) {
	key := subtreeKey(n)
	if e.Rec != nil {
		if r, ok := e.Rec.lookup(key); ok {
			return r, key, nil
		}
	}
	start := time.Now()
	childResults := make([]*catalog.Result, len(n.Children))
	for i, c := range n.Children {
		cr, _, err := e.eval(c)
		if err != nil {
			return nil, key, err
		}
		childResults[i] = cr
	}
	res, err := e.evalOne(n, childResults)
	if err != nil {
		return nil, key, err
	}
	// Inclusive cost: what recomputing this subtree would take given the
	// current cache contents (the benefit metric's cost input).
	cost := time.Since(start)
	if e.Rec != nil {
		e.Rec.admit(key, res, cost)
	}
	return res, key, nil
}

// evalOne runs a single operator over fully materialized inputs.
func (e *Engine) evalOne(n *plan.Node, inputs []*catalog.Result) (*catalog.Result, error) {
	shallow := n.Clone()
	dec := make(exec.Decorations, len(inputs))
	leaves := make([]*plan.Node, len(inputs))
	for i, in := range inputs {
		// The leaf replays the child's materialized batches under the
		// child plan's own output names: matching ignores assigned names
		// (two projections differing only in aliases share one cache
		// entry), so the cached result's names may belong to another
		// query-side alias of the same operation.
		leaf := plan.NewCached(n.Children[i].Schema())
		idx := make([]int, len(in.Schema))
		for j := range idx {
			idx[j] = j
		}
		dec[leaf] = &exec.Decor{Reuse: &exec.ReuseSpec{Batches: in.Batches, OutIdx: idx}}
		leaves[i] = leaf
	}
	shallow.Children = leaves
	if err := shallow.Resolve(e.Cat); err != nil {
		return nil, err
	}
	ctx := exec.NewCtx(e.Cat)
	op, err := exec.Build(ctx, shallow, dec, nil)
	if err != nil {
		return nil, err
	}
	return exec.Run(ctx, op)
}

// subtreeKey is the full-subtree fingerprint used for matching: the
// instruction plus its (materialized) argument fingerprints, like matching
// MAL instructions on their actual arguments.
func subtreeKey(n *plan.Node) string {
	s := n.Op.String() + "[" + n.ParamString(expr.Ident) + "]"
	if len(n.Children) > 0 {
		s += "("
		for i, c := range n.Children {
			if i > 0 {
				s += ","
			}
			s += subtreeKey(c)
		}
		s += ")"
	}
	return s
}

// entry is one cached intermediate.
type entry struct {
	key  string
	res  *catalog.Result
	size int64
	cost time.Duration
	refs int64
}

// Recycler is the admit-all, benefit-evicting cache.
type Recycler struct {
	mu       sync.Mutex
	capacity int64 // bytes; <= 0 unlimited
	used     int64
	entries  map[string]*entry

	hits, misses, admitted, evicted int64
}

// NewRecycler returns a recycler with the given capacity (<= 0: unlimited).
func NewRecycler(capacity int64) *Recycler {
	return &Recycler{capacity: capacity, entries: make(map[string]*entry)}
}

// Stats reports cache activity.
type Stats struct {
	Hits, Misses, Admitted, Evicted int64
	Used                            int64
	Entries                         int
}

// Stats returns a snapshot.
func (r *Recycler) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Hits: r.hits, Misses: r.misses, Admitted: r.admitted,
		Evicted: r.evicted, Used: r.used, Entries: len(r.entries),
	}
}

// Flush drops every cached result (update invalidation).
func (r *Recycler) Flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = make(map[string]*entry)
	r.used = 0
}

func (r *Recycler) lookup(key string) (*catalog.Result, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		e.refs++
		r.hits++
		return e.res, true
	}
	r.misses++
	return nil, false
}

// admit stores an intermediate unconditionally (materialization was free),
// evicting lowest-benefit entries if the budget requires.
func (r *Recycler) admit(key string, res *catalog.Result, cost time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[key]; dup {
		return
	}
	size := res.Bytes()
	if size <= 0 {
		size = 1
	}
	if r.capacity > 0 {
		if size > r.capacity {
			return
		}
		if r.used+size > r.capacity {
			r.evictFor(size)
		}
		if r.used+size > r.capacity {
			return
		}
	}
	r.entries[key] = &entry{key: key, res: res, size: size, cost: cost}
	r.used += size
	r.admitted++
}

// evictFor frees space in ascending benefit order (cost*refs/size).
func (r *Recycler) evictFor(need int64) {
	es := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		es = append(es, e)
	}
	sort.Slice(es, func(a, b int) bool {
		return benefit(es[a]) < benefit(es[b])
	})
	for _, e := range es {
		if r.capacity-r.used >= need {
			return
		}
		delete(r.entries, e.key)
		r.used -= e.size
		r.evicted++
	}
}

func benefit(e *entry) float64 {
	refs := float64(e.refs)
	if refs == 0 {
		refs = 0.5 // fresh entries get a grace weight
	}
	return e.cost.Seconds() * refs / float64(e.size)
}
