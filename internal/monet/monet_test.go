package monet

import (
	"testing"
	"time"

	"recycledb/internal/catalog"
	"recycledb/internal/exec"
	"recycledb/internal/expr"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

func testCatalog() *catalog.Catalog {
	cat := catalog.New()
	t := catalog.NewTable("t", catalog.Schema{
		{Name: "k", Typ: vector.Int64},
		{Name: "v", Typ: vector.Float64},
	})
	w := t.BeginWrite()
	ap := w.Appender()
	for i := 0; i < 2000; i++ {
		ap.Int64(0, int64(i%10))
		ap.Float64(1, float64(i))
		ap.FinishRow()
	}
	w.Commit()
	cat.AddTable(t)
	return cat
}

func testQuery() *plan.Node {
	return plan.NewAggregate(
		plan.NewSelect(plan.NewScan("t", "k", "v"),
			expr.Gt(expr.C("v"), expr.Flt(100))),
		[]string{"k"},
		plan.A(plan.Sum, expr.C("v"), "total"))
}

func TestExecuteMatchesPipelined(t *testing.T) {
	cat := testCatalog()
	e := New(cat, nil)
	got, err := e.Execute(testQuery())
	if err != nil {
		t.Fatal(err)
	}
	// Reference: pipelined engine.
	q := testQuery()
	if err := q.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	ctx := exec.NewCtx(cat)
	op, _ := exec.Build(ctx, q, nil, nil)
	want, err := exec.Run(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != want.Rows() {
		t.Fatalf("rows %d vs %d", got.Rows(), want.Rows())
	}
	sum := func(r *catalog.Result) float64 {
		var s float64
		for _, b := range r.Batches {
			for _, x := range b.Vecs[1].F64 {
				s += x
			}
		}
		return s
	}
	if d := sum(got) - sum(want); d > 1e-6 || d < -1e-6 {
		t.Fatalf("totals differ: %v vs %v", sum(got), sum(want))
	}
}

func TestRecyclerAdmitsAllAndHits(t *testing.T) {
	cat := testCatalog()
	rec := NewRecycler(0)
	e := New(cat, rec)
	if _, err := e.Execute(testQuery()); err != nil {
		t.Fatal(err)
	}
	st := rec.Stats()
	// Scan, select, aggregate: three intermediates admitted.
	if st.Admitted != 3 {
		t.Fatalf("admitted = %d, want 3", st.Admitted)
	}
	if _, err := e.Execute(testQuery()); err != nil {
		t.Fatal(err)
	}
	st = rec.Stats()
	if st.Hits == 0 {
		t.Fatal("second run should hit the cache")
	}
	// The root hit means no new admissions.
	if st.Admitted != 3 {
		t.Fatalf("admitted grew to %d", st.Admitted)
	}
}

func TestRecyclerKeepsAllIntermediates(t *testing.T) {
	// The defining property vs. the pipelined recycler: every node of the
	// query is cached, so cache usage approximates the sum of all
	// intermediate sizes (scan included).
	cat := testCatalog()
	rec := NewRecycler(0)
	e := New(cat, rec)
	e.Execute(testQuery())
	tbl, _ := cat.Table("t")
	if rec.Stats().Used < tbl.Bytes() {
		t.Fatalf("cache %d bytes < base table %d bytes; scan not kept?",
			rec.Stats().Used, tbl.Bytes())
	}
}

func TestRecyclerBudgetEviction(t *testing.T) {
	cat := testCatalog()
	rec := NewRecycler(1024) // tiny: the scan result cannot fit
	e := New(cat, rec)
	if _, err := e.Execute(testQuery()); err != nil {
		t.Fatal(err)
	}
	st := rec.Stats()
	if st.Used > 1024 {
		t.Fatalf("budget exceeded: %d", st.Used)
	}
}

func TestRecyclerFlush(t *testing.T) {
	cat := testCatalog()
	rec := NewRecycler(0)
	e := New(cat, rec)
	e.Execute(testQuery())
	rec.Flush()
	if rec.Stats().Entries != 0 || rec.Stats().Used != 0 {
		t.Fatal("flush did not clear the cache")
	}
	if _, err := e.Execute(testQuery()); err != nil {
		t.Fatal(err)
	}
	if rec.Stats().Admitted < 6 {
		t.Fatal("re-execution should re-admit intermediates")
	}
}

func TestRecyclerSpeedsUpRepeats(t *testing.T) {
	cat := testCatalog()
	rec := NewRecycler(0)
	e := New(cat, rec)
	t0 := time.Now()
	e.Execute(testQuery())
	cold := time.Since(t0)
	t0 = time.Now()
	e.Execute(testQuery())
	warm := time.Since(t0)
	if warm > cold*2 {
		t.Fatalf("warm run slower than cold: %v vs %v", warm, cold)
	}
}

func TestSubtreeKeyDistinguishes(t *testing.T) {
	a := testQuery()
	b := plan.NewAggregate(
		plan.NewSelect(plan.NewScan("t", "k", "v"),
			expr.Gt(expr.C("v"), expr.Flt(999))),
		[]string{"k"},
		plan.A(plan.Sum, expr.C("v"), "total"))
	if subtreeKey(a) == subtreeKey(b) {
		t.Fatal("different predicates must have different keys")
	}
	if subtreeKey(a) != subtreeKey(testQuery()) {
		t.Fatal("identical plans must have identical keys")
	}
}
