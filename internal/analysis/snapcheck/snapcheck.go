// Package snapcheck enforces the one-snapshot-per-statement read
// discipline in the execution engine: operators may not read base-table
// state through *catalog.Table accessors (Snapshot, Rows, Bytes,
// DistinctCount) directly — every read goes through the statement's
// captured snapshot, Ctx.SnapFor / Ctx.Snaps, so a statement observes one
// consistent epoch front to back even while writers commit.
//
// Ctx.SnapFor itself is the sanctioned capture point; other sites carry a
// //recycledb:snap-ok justification or are findings. Resolving a table
// handle by name (Catalog.Table) is not a data read and stays legal.
package snapcheck

import (
	"go/ast"

	"recycledb/internal/analysis"
)

// Analyzer is the snapcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "snapcheck",
	Doc: "forbid direct catalog.Table data reads in exec operators; " +
		"base-table reads go through the statement snapshot (Ctx.SnapFor)",
	Run: run,
}

const catalogPath = "recycledb/internal/catalog"

// dataReaders are the *catalog.Table methods that observe table data (as
// opposed to resolving handles or schema, which are epoch-independent).
var dataReaders = map[string]bool{
	"Snapshot":      true,
	"Rows":          true,
	"Bytes":         true,
	"DistinctCount": true,
	"DataVersion":   true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fn.Name.Name == "SnapFor" {
				continue // the sanctioned snapshot capture point
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !dataReaders[sel.Sel.Name] {
			return true
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok || !analysis.TypeIs(tv.Type, catalogPath, "Table") {
			return true
		}
		if pass.Annotated(call.Pos(), "snap-ok") {
			return true
		}
		pass.Reportf(call.Pos(), "direct catalog.Table.%s read in %s: operators read base tables "+
			"through the statement snapshot (Ctx.SnapFor); justify exceptions with //recycledb:snap-ok",
			sel.Sel.Name, fn.Name.Name)
		return true
	})
}
