package snap

import "recycledb/internal/catalog"

// scanOpen reads table state directly: findings.
func scanOpen(t *catalog.Table) int {
	s := t.Snapshot() // want `direct catalog.Table.Snapshot read in scanOpen`
	_ = s
	return t.Rows() // want `direct catalog.Table.Rows read in scanOpen`
}

// SnapFor is the sanctioned capture point: reads inside it are legal.
func SnapFor(t *catalog.Table) *catalog.Snapshot {
	return t.Snapshot()
}

// justified carries a snap-ok justification (e.g. a stats estimate that
// may legitimately observe the live epoch).
func justified(t *catalog.Table) int64 {
	//recycledb:snap-ok — live-epoch estimate, not a result read
	return t.DataVersion()
}

// resolve only obtains a handle; Catalog.Table is not a data read.
func resolve(c *catalog.Catalog, name string) (*catalog.Table, error) {
	return c.Table(name)
}

// snapshotReads read the already-captured snapshot: always legal.
func snapshotReads(s *catalog.Snapshot) int64 {
	return s.Bytes()
}
