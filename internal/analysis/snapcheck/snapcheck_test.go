package snapcheck_test

import (
	"testing"

	"recycledb/internal/analysis/analysistest"
	"recycledb/internal/analysis/snapcheck"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", snapcheck.Analyzer, "snap")
}
