package guarded

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu   sync.Mutex
	hits int // guarded by mu

	seen atomic.Int64
}

// addLocked follows the *Locked convention: the caller holds mu.
func (c *counter) addLocked(n int) {
	c.hits += n
}

// add takes the lock itself: sanctioned.
func (c *counter) add(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits += n
}

// sneak reads the guarded field without mu: a finding.
func (c *counter) sneak() int {
	return c.hits // want `counter.hits accessed without holding c.mu`
}

// fresh constructs a new object: no lock needed before publication.
func fresh() *counter {
	c := &counter{}
	c.hits = 1
	return c
}

// justified carries an explicit guarded-ok justification.
func (c *counter) justified() int {
	//recycledb:guarded-ok — single-threaded test helper
	return c.hits
}

// atomicMethods accesses the atomic through its methods: sanctioned.
func (c *counter) atomicMethods() int64 {
	c.seen.Add(1)
	return c.seen.Load()
}

// atomicCopy copies the atomic as a value: a finding.
func (c *counter) atomicCopy() atomic.Int64 {
	return c.seen // want `sync/atomic field c.seen used as a value`
}

type misannotated struct {
	lk sync.Mutex
	// guarded by lock
	state int // want `guarded-by annotation names "lock", which is not a sibling`
}
