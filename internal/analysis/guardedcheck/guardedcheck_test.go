package guardedcheck_test

import (
	"testing"

	"recycledb/internal/analysis/analysistest"
	"recycledb/internal/analysis/guardedcheck"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", guardedcheck.Analyzer, "guarded")
}
