// Package guardedcheck machine-checks annotation-driven mutex discipline.
// A struct field whose doc or trailing comment says
//
//	// guarded by mu
//
// (where mu is a sibling sync.Mutex/RWMutex field) may only be accessed
// in functions that visibly take that lock on the same object
// (x.mu.Lock / RLock / TryLock for an access to x.field), in functions
// following the repo's *Locked-suffix convention (caller holds the lock),
// on freshly constructed objects (x := &T{...} in the same function), or
// at sites justified with //recycledb:guarded-ok.
//
// Independently, fields of sync/atomic types (atomic.Int64,
// atomic.Pointer[T], …) must be accessed through their methods; reading
// or assigning the field as a value copies the atomic — a race and a
// torn-semantics bug — and is a finding.
package guardedcheck

import (
	"go/ast"
	"go/types"
	"regexp"

	"recycledb/internal/analysis"
)

// Analyzer is the guardedcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "guardedcheck",
	Doc: "enforce `// guarded by mu` field annotations and forbid value " +
		"copies of sync/atomic fields",
	Run: run,
}

var guardedRE = regexp.MustCompile(`guarded by ([A-Za-z_]\w*)\s*$`)

type guard struct {
	structName string
	fieldName  string
	guardName  string
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, guards)
		}
	}
	return nil
}

// collectGuards scans struct declarations for guarded-by field comments,
// validating that the named guard is a sibling mutex field.
func collectGuards(pass *analysis.Pass) map[types.Object]guard {
	guards := make(map[types.Object]guard)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			siblings := make(map[string]types.Type)
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						siblings[name.Name] = obj.Type()
					}
				}
			}
			for _, f := range st.Fields.List {
				g := guardAnnotation(f)
				if g == "" {
					continue
				}
				gt, ok := siblings[g]
				if !ok || !isMutex(gt) {
					pass.Reportf(f.Pos(), "guarded-by annotation names %q, which is not a sibling "+
						"sync.Mutex/RWMutex field of %s", g, ts.Name.Name)
					continue
				}
				for _, name := range f.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = guard{structName: ts.Name.Name, fieldName: name.Name, guardName: g}
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardAnnotation(f *ast.Field) string {
	for _, cg := range [2]*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := guardedRE.FindStringSubmatch(c.Text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

func isMutex(t types.Type) bool {
	return analysis.TypeIs(t, "sync", "Mutex") || analysis.TypeIs(t, "sync", "RWMutex")
}

func isAtomicType(t types.Type) bool {
	n := analysis.NamedOf(t)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, guards map[types.Object]guard) {
	lockBases := collectLockCalls(pass, fn)
	fresh := collectFreshObjects(fn)
	callerHoldsLock := len(fn.Name.Name) > len("Locked") &&
		fn.Name.Name[len(fn.Name.Name)-len("Locked"):] == "Locked"

	// Parent-tracked walk so atomic field selectors can see how they are
	// used (method call vs. value copy).
	var stack []ast.Node
	for _, stmt := range []ast.Stmt{fn.Body} {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := pass.TypesInfo.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			obj := selection.Obj()

			if g, guarded := guards[obj]; guarded {
				base := analysis.ExprString(sel.X)
				root := analysis.RootIdent(sel.X)
				switch {
				case callerHoldsLock:
				case lockBases[base+"."+g.guardName]:
				case root != nil && fresh[root.Name]:
				case pass.Annotated(sel.Pos(), "guarded-ok"):
				default:
					pass.Reportf(sel.Pos(), "%s.%s accessed without holding %s.%s (annotate the "+
						"call path, take the lock, or justify with //recycledb:guarded-ok)",
						g.structName, g.fieldName, base, g.guardName)
				}
			}

			if isAtomicType(obj.Type()) && !atomicUseOK(stack) {
				pass.Reportf(sel.Pos(), "sync/atomic field %s.%s used as a value: copying an "+
					"atomic races with its writers; call its methods or take its address",
					analysis.ExprString(sel.X), sel.Sel.Name)
			}
			return true
		})
	}
}

// atomicUseOK reports whether the selector at the top of the stack is used
// through a method (x.f.Load()) or by address (&x.f) rather than copied.
func atomicUseOK(stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.SelectorExpr:
		return true // x.f.Load, x.f.Store, ...
	case *ast.UnaryExpr:
		return parent.Op.String() == "&"
	}
	return false
}

// collectLockCalls gathers "base.mu" strings for every mutex
// Lock/RLock/TryLock/TryRLock call in the function body.
func collectLockCalls(pass *analysis.Pass, fn *ast.FuncDecl) map[string]bool {
	locks := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
		default:
			return true
		}
		if tv, ok := pass.TypesInfo.Types[sel.X]; !ok || !isMutex(tv.Type) {
			return true
		}
		locks[analysis.ExprString(sel.X)] = true
		return true
	})
	return locks
}

// collectFreshObjects gathers local identifiers bound to freshly
// constructed values (x := &T{...}, x := T{...}, x := new(T)): an object
// not yet published needs no lock.
func collectFreshObjects(fn *ast.FuncDecl) map[string]bool {
	fresh := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			if i >= len(assign.Lhs) {
				break
			}
			id, ok := assign.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			switch v := ast.Unparen(rhs).(type) {
			case *ast.CompositeLit:
				fresh[id.Name] = true
			case *ast.UnaryExpr:
				if v.Op.String() == "&" {
					if _, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
						fresh[id.Name] = true
					}
				}
			case *ast.CallExpr:
				if fnID, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && fnID.Name == "new" {
					fresh[id.Name] = true
				}
			}
		}
		return true
	})
	return fresh
}
