package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker complaints; analysis proceeds on a
	// best-effort basis when non-empty, mirroring go/analysis' behaviour
	// under RunDespiteErrors=false drivers that still surface the errors.
	TypeErrors []error
}

// Loader parses and type-checks packages from source. Imports — standard
// library and module-local alike — resolve through the compiler "source"
// importer, which needs no pre-built export data and therefore works in
// hermetic environments; module-local paths require the process working
// directory to be inside the module (true for `go test`, CI, and
// cmd/recycledb-vet run from the repo root).
type Loader struct {
	fset *token.FileSet
	imp  types.ImporterFrom
}

// NewLoader returns a loader with a fresh file set and a shared,
// memoizing source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// Fset returns the loader's file set (shared by all loaded packages).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadDir loads the single package in dir. importPath is the path the
// package is analyzed under; for testdata fixture packages any synthetic
// path works. Test files (_test.go) are excluded: the invariants under
// check govern library code, and fixtures are plain packages.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: list %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Info:  NewInfo(),
	}
	conf := types.Config{
		Importer: importerFrom{l.imp, dir},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(importPath, l.fset, files, pkg.Info)
	return pkg, nil
}

// NewInfo allocates the types.Info maps the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// importerFrom pins the source directory used for import resolution so
// relative (module-local) paths resolve against the package being
// type-checked rather than the process working directory.
type importerFrom struct {
	imp types.ImporterFrom
	dir string
}

func (i importerFrom) Import(path string) (*types.Package, error) {
	return i.imp.ImportFrom(path, i.dir, 0)
}

func (i importerFrom) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if dir == "" {
		dir = i.dir
	}
	return i.imp.ImportFrom(path, dir, mode)
}

// RunAnalyzer applies a to pkg and returns the diagnostics sorted by
// position.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
