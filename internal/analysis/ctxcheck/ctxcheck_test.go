package ctxcheck_test

import (
	"testing"

	"recycledb/internal/analysis/analysistest"
	"recycledb/internal/analysis/ctxcheck"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", ctxcheck.Analyzer, "ctx")
}
