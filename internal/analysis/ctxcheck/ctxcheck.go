// Package ctxcheck enforces the engine's cancellation contract:
//
//   - Library packages never mint their own context.Background() /
//     context.TODO() — the caller's context threads through everything, so
//     a statement's deadline and cancellation reach every operator. The
//     documented nil-context fallbacks and the deprecated Execute shim
//     carry //recycledb:ctx-ok justifications.
//   - Operator Next methods (any method Next(ctx *exec.Ctx)) observe
//     cancellation at batch boundaries: the body must consult
//     Ctx.Interrupted (or the raw context's Err/Done) so a canceled query
//     stops within one vector of work. The fused push drivers —
//     driveMorsel/step/Drive methods taking *exec.Ctx — are held to the
//     same contract: a fused loop replaces a whole chain of Next calls,
//     so missing the check there loses cancellation for the entire
//     fragment, not one operator.
package ctxcheck

import (
	"go/ast"

	"recycledb/internal/analysis"
)

// Analyzer is the ctxcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcheck",
	Doc: "forbid context.Background/TODO in library packages and require " +
		"operator Next methods to observe cancellation at batch boundaries",
	Run: run,
}

const execPath = "recycledb/internal/exec"

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkBackground(pass, fn)
			checkNextObservesCtx(pass, fn)
		}
	}
	return nil
}

// checkBackground flags context.Background() / context.TODO() calls.
func checkBackground(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(sel.Sel)
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
			return true
		}
		if pass.Annotated(call.Pos(), "ctx-ok") {
			return true
		}
		pass.Reportf(call.Pos(), "context.%s() in library code: thread the caller's context "+
			"through instead, or justify a documented fallback with //recycledb:ctx-ok",
			sel.Sel.Name)
		return true
	})
}

// driverNames are the batch-boundary methods bound to the cancellation
// contract: pull-operator Next, plus the fused push drivers (driveMorsel
// runs one morsel's scan batches through the consumer chain; step/Drive
// claim morsels themselves).
var driverNames = map[string]bool{
	"Next":        true,
	"driveMorsel": true,
	"step":        true,
	"Drive":       true,
}

// checkNextObservesCtx requires driver methods taking a *exec.Ctx first
// parameter to consult cancellation somewhere in their body.
func checkNextObservesCtx(pass *analysis.Pass, fn *ast.FuncDecl) {
	if !driverNames[fn.Name.Name] || fn.Recv == nil || fn.Type.Params == nil ||
		len(fn.Type.Params.List) == 0 {
		return
	}
	tv, ok := pass.TypesInfo.Types[fn.Type.Params.List[0].Type]
	if !ok || !analysis.TypeIs(tv.Type, execPath, "Ctx") {
		return
	}
	if pass.Annotated(fn.Pos(), "ctx-ok") {
		return
	}
	observed := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if observed {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			switch analysis.CalleeName(x) {
			case "Interrupted", "Err":
				observed = true
			}
		case *ast.SelectorExpr:
			if x.Sel.Name == "Done" {
				observed = true
			}
		}
		return true
	})
	if !observed {
		pass.Reportf(fn.Pos(), "operator %s.%s does not observe ctx cancellation: call "+
			"ctx.Interrupted() at the batch boundary (or justify with //recycledb:ctx-ok)",
			recvName(fn), fn.Name.Name)
	}
}

func recvName(fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		return analysis.ExprString(fn.Recv.List[0].Type)
	}
	return "?"
}
