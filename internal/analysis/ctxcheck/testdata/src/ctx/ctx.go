package ctx

import (
	"context"

	"recycledb/internal/exec"
)

type blindOp struct{}

// Next ignores cancellation: a finding.
func (o *blindOp) Next(ctx *exec.Ctx) error { // want `operator \*blindOp.Next does not observe ctx cancellation`
	return nil
}

type politeOp struct{}

// Next consults Interrupted at the batch boundary: sanctioned.
func (o *politeOp) Next(ctx *exec.Ctx) error {
	if err := ctx.Interrupted(); err != nil {
		return err
	}
	return nil
}

type statsOp struct{}

//recycledb:ctx-ok — stats-only stand-in, never driven as an operator
func (o *statsOp) Next(ctx *exec.Ctx) error {
	return nil
}

// mint creates a root context in library code: findings.
func mint() context.Context {
	_ = context.TODO()          // want `context.TODO\(\) in library code`
	return context.Background() // want `context.Background\(\) in library code`
}

// fallback is a documented, justified fallback.
func fallback(c context.Context) context.Context {
	if c == nil {
		c = context.Background() //recycledb:ctx-ok — documented nil-ctx fallback
	}
	return c
}
