package ctx

import (
	"context"

	"recycledb/internal/exec"
)

type blindOp struct{}

// Next ignores cancellation: a finding.
func (o *blindOp) Next(ctx *exec.Ctx) error { // want `operator \*blindOp.Next does not observe ctx cancellation`
	return nil
}

type politeOp struct{}

// Next consults Interrupted at the batch boundary: sanctioned.
func (o *politeOp) Next(ctx *exec.Ctx) error {
	if err := ctx.Interrupted(); err != nil {
		return err
	}
	return nil
}

type statsOp struct{}

//recycledb:ctx-ok — stats-only stand-in, never driven as an operator
func (o *statsOp) Next(ctx *exec.Ctx) error {
	return nil
}

// blindPipe mirrors a fused push driver that never checks cancellation:
// a finding — a fused loop replaces a whole chain of Next calls, so a
// missed check loses cancellation for the entire fragment.
type blindPipe struct{}

func (p *blindPipe) driveMorsel(ctx *exec.Ctx, m int) error { // want `operator \*blindPipe.driveMorsel does not observe ctx cancellation`
	return nil
}

func (p *blindPipe) step(ctx *exec.Ctx) (bool, error) { // want `operator \*blindPipe.step does not observe ctx cancellation`
	return true, nil
}

// politePipe checks Interrupted at morsel/claim boundaries: sanctioned.
type politePipe struct{}

func (p *politePipe) driveMorsel(ctx *exec.Ctx, m int) error {
	return ctx.Interrupted()
}

func (p *politePipe) step(ctx *exec.Ctx) (bool, error) {
	return true, ctx.Interrupted()
}

// mint creates a root context in library code: findings.
func mint() context.Context {
	_ = context.TODO()          // want `context.TODO\(\) in library code`
	return context.Background() // want `context.Background\(\) in library code`
}

// fallback is a documented, justified fallback.
func fallback(c context.Context) context.Context {
	if c == nil {
		c = context.Background() //recycledb:ctx-ok — documented nil-ctx fallback
	}
	return c
}
