package pool

import (
	"recycledb/internal/catalog"
	"recycledb/internal/vector"
)

// leakyOp draws scratch in Open and never releases it: a finding.
type leakyOp struct {
	p   *vector.Pool
	buf *vector.Batch
}

func (o *leakyOp) Open() {
	o.buf = o.p.GetBatch([]vector.Type{vector.Int64}, 16) // want `pooled GetBatch stored in leakyOp.buf is never released`
}

func (o *leakyOp) Close() {}

// tidyOp pairs its Open acquisition with a Close release: sanctioned.
type tidyOp struct {
	p     *vector.Pool
	buf   *vector.Batch
	flags *vector.Vector
}

func (o *tidyOp) Open() {
	o.buf = o.p.GetBatch([]vector.Type{vector.Int64}, 16)
	o.flags = o.p.Get(vector.Bool, 16)
}

func (o *tidyOp) Close() {
	o.p.PutBatch(o.buf)
	o.p.Put(o.flags)
}

// drainOp releases a slice of pooled vectors with the range idiom.
type drainOp struct {
	p    *vector.Pool
	vecs []*vector.Vector
}

func (o *drainOp) Open() {
	o.vecs[0] = o.p.Get(vector.Int64, 16)
}

func (o *drainOp) Close() {
	for _, v := range o.vecs {
		o.p.Put(v)
	}
}

// handoffOp transfers ownership elsewhere, with justification.
type handoffOp struct {
	p   *vector.Pool
	out *vector.Batch
}

func (o *handoffOp) Open() {
	//recycledb:pool-ok — ownership transfers to the consumer in Next
	o.out = o.p.GetBatch([]vector.Type{vector.Int64}, 16)
}

func (o *handoffOp) Close() {}

// stage mirrors the fused consumer chain: per-stage scratch lives on
// slice elements reached through element-pointer locals, not on the
// method receiver. Acquire/release pairing keys on the field's owning
// named type, so pipe.open's `s.flags = ...` pairs with pipe.close's
// `p.Put(s.flags)`.
type stage struct {
	flags *vector.Vector
	out   *vector.Batch
	leak  *vector.Vector
}

type pipe struct {
	p      *vector.Pool
	stages []stage
}

func (pp *pipe) open() {
	for i := range pp.stages {
		s := &pp.stages[i]
		s.flags = pp.p.Get(vector.Bool, 16)
		s.out = pp.p.GetBatch([]vector.Type{vector.Int64}, 16)
		s.leak = pp.p.Get(vector.Int64, 16) // want `pooled Get stored in stage.leak is never released`
	}
}

func (pp *pipe) close() {
	for i := range pp.stages {
		s := &pp.stages[i]
		pp.p.Put(s.flags)
		pp.p.PutBatch(s.out)
	}
}

// admitRaw stores a live operator batch into a recycler-destined result:
// a finding.
func admitRaw(res *catalog.Result, b *vector.Batch) {
	res.Batches = append(res.Batches, b) // want `non-clone appended to catalog.Result.Batches`
}

// admitClone deep-clones before admission: sanctioned.
func admitClone(res *catalog.Result, b *vector.Batch) {
	res.Batches = append(res.Batches, b.Clone())
}

// admitOwned appends memory it owns, with justification.
func admitOwned(res *catalog.Result) {
	b := vector.NewBatch([]vector.Type{vector.Int64}, 16)
	//recycledb:clone-ok — freshly allocated, never pooled
	res.Batches = append(res.Batches, b)
}

// emitOp mirrors the typed-emission aggregators: the pooled output batch
// the emission kernels grow into is acquired in Open and released in
// Close. Sanctioned.
type emitOp struct {
	p   *vector.Pool
	out *vector.Batch
}

func (o *emitOp) Open() {
	o.out = o.p.GetBatch([]vector.Type{vector.Int64, vector.Float64}, 16)
}

func (o *emitOp) Close() { o.p.PutBatch(o.out) }

// emitLeakOp acquires emission scratch in Open but its Close forgets the
// release: a finding.
type emitLeakOp struct {
	p   *vector.Pool
	out *vector.Batch
}

func (o *emitLeakOp) Open() {
	o.out = o.p.GetBatch([]vector.Type{vector.Int64}, 16) // want `pooled GetBatch stored in emitLeakOp.out is never released`
}

func (o *emitLeakOp) Close() {}
