// Package poolcheck machine-checks the vector.Pool ownership discipline
// (vector/pool.go "Ownership rules"):
//
//   - A pooled vector or batch stored into an operator's field — drawn via
//     Pool.Get/GetBatch in Open, or lazily in Next/build helpers — must be
//     returned to the pool in a Close (Pool.Put/PutBatch rooted at a field
//     of the same type). Acquire/release pairing is keyed by the field's
//     owning named type, not the enclosing method's receiver, so scratch
//     assigned through element-pointer locals — the fused consumer chain's
//     `s := &p.stages[i]; s.flags = pool.Get(...)` released by a matching
//     `pool.Put(s.flags)` in the pipe's close — is tracked the same way as
//     plain receiver fields. A missed release silently degrades the
//     steady-state zero-allocation contract; a double ownership silently
//     corrupts a future query, because cached results are long-lived.
//   - Batches destined for recycler-held results (Store.buf,
//     catalog.Result.Batches, core.Entry.Batches) must be deep Clones:
//     operator output batches are pooled or alias table storage and are
//     only valid until the next Next call.
//
// Sites where ownership provably transfers elsewhere carry a
// //recycledb:pool-ok or //recycledb:clone-ok justification.
package poolcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"recycledb/internal/analysis"
)

// Analyzer is the poolcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolcheck",
	Doc: "pooled batches stored in operator fields must be released in Close, " +
		"and recycler-destined result buffers must hold deep clones",
	Run: run,
}

const (
	vectorPath  = "recycledb/internal/vector"
	catalogPath = "recycledb/internal/catalog"
	corePath    = "recycledb/internal/core"
	execPath    = "recycledb/internal/exec"
)

// fieldKey names one pooled storage slot: a field of a named type. The
// key deliberately ignores which method touched the slot — an acquire in
// fusedPipe.open pairs with a release in fusedPipe.close even though the
// slot lives on a fusedStage reached through a slice-element pointer.
type fieldKey struct {
	typ   *types.Named
	field string
}

type acquire struct {
	key  fieldKey
	pos  token.Pos
	what string // Get or GetBatch
}

func run(pass *analysis.Pass) error {
	var acquires []acquire              // pooled slots assigned outside Close
	releases := make(map[fieldKey]bool) // slots released in some Close/close

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if analysis.ReceiverType(pass.TypesInfo, fn) != nil {
				switch fn.Name.Name {
				case "Close", "close":
					collectReleases(pass, fn, releases)
				default:
					collectAcquires(pass, fn, &acquires)
				}
			}
			checkCloneDiscipline(pass, fn)
		}
	}

	for _, a := range acquires {
		if releases[a.key] {
			continue
		}
		if pass.Annotated(a.pos, "pool-ok") {
			continue
		}
		pass.Reportf(a.pos, "pooled %s stored in %s.%s is never released: Close must "+
			"Put/PutBatch it back (or justify ownership transfer with //recycledb:pool-ok)",
			a.what, a.key.typ.Obj().Name(), a.key.field)
	}
	return nil
}

// poolMethod reports whether call invokes the named method on
// vector.Pool, e.g. ctx.pool().GetBatch(...) or p.Put(v).
func poolMethod(pass *analysis.Pass, call *ast.CallExpr, names ...string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
			break
		}
	}
	if !match {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !analysis.TypeIs(tv.Type, vectorPath, "Pool") {
		return "", false
	}
	return sel.Sel.Name, true
}

// fieldOf resolves the pooled slot an LHS/argument expression roots in:
// base.f or base.f[i], where base is any expression of a named struct type
// (or pointer to one) — the method receiver, a nested field chain, or an
// element-pointer local like `s := &p.stages[i]`. Returns the zero key
// when the expression is not a field selection on a named type.
func fieldOf(pass *analysis.Pass, e ast.Expr) (fieldKey, bool) {
	e = ast.Unparen(e)
	if idx, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(idx.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return fieldKey{}, false
	}
	// Only struct fields: a method value or package selector is not a slot.
	if _, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Var); !ok {
		return fieldKey{}, false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return fieldKey{}, false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return fieldKey{}, false
	}
	return fieldKey{typ: named, field: sel.Sel.Name}, true
}

// collectAcquires records fields of named types assigned pool-drawn values.
func collectAcquires(pass *analysis.Pass, fn *ast.FuncDecl, acquires *[]acquire) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			if i >= len(assign.Lhs) {
				break
			}
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			what, ok := poolMethod(pass, call, "Get", "GetBatch")
			if !ok {
				continue
			}
			if k, ok := fieldOf(pass, assign.Lhs[i]); ok {
				*acquires = append(*acquires, acquire{key: k, pos: assign.Pos(), what: what})
			}
		}
		return true
	})
}

// collectReleases records fields whose pooled contents a Close/close
// method returns: direct Put(x.f), indexed Put(x.f[i]), and the
// range-value idiom `for _, v := range x.f { pool.Put(v) }`.
func collectReleases(pass *analysis.Pass, fn *ast.FuncDecl, releases map[fieldKey]bool) {
	// rangeVals maps a range value variable to the field it iterates, for
	// the drain-a-slice-of-vectors idiom.
	rangeVals := make(map[types.Object]fieldKey)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			if k, ok := fieldOf(pass, x.X); ok && x.Value != nil {
				if id, ok := x.Value.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						rangeVals[obj] = k
					}
				}
			}
		case *ast.CallExpr:
			if _, ok := poolMethod(pass, x, "Put", "PutBatch"); !ok {
				return true
			}
			for _, arg := range x.Args {
				if k, ok := fieldOf(pass, arg); ok {
					releases[k] = true
					continue
				}
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						if k, ok := rangeVals[obj]; ok {
							releases[k] = true
						}
					}
				}
			}
		}
		return true
	})
}

// resultBuffer reports whether e denotes a recycler-destined long-lived
// batch buffer: Store.buf, catalog.Result.Batches, core.Entry.Batches.
func resultBuffer(pass *analysis.Pass, e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return "", false
	}
	switch {
	case sel.Sel.Name == "Batches" && analysis.TypeIs(tv.Type, catalogPath, "Result"):
		return "catalog.Result.Batches", true
	case sel.Sel.Name == "Batches" && analysis.TypeIs(tv.Type, corePath, "Entry"):
		return "core.Entry.Batches", true
	case sel.Sel.Name == "buf" && analysis.TypeIs(tv.Type, execPath, "Store"):
		return "Store.buf", true
	}
	return "", false
}

// checkCloneDiscipline flags appends of non-cloned batches into
// recycler-destined buffers.
func checkCloneDiscipline(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || analysis.CalleeName(call) != "append" || len(call.Args) < 2 {
			return true
		}
		buf, ok := resultBuffer(pass, call.Args[0])
		if !ok {
			return true
		}
		for _, arg := range call.Args[1:] {
			if c, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
				if name := analysis.CalleeName(c); name == "Clone" || name == "CloneBatch" {
					continue
				}
			}
			if pass.Annotated(arg.Pos(), "clone-ok") {
				continue
			}
			pass.Reportf(arg.Pos(), "non-clone appended to %s: operator batches are pooled or "+
				"alias table storage and outlive-Next storage corrupts future queries; append "+
				"a deep Clone() (or justify owned memory with //recycledb:clone-ok)", buf)
		}
		return true
	})
}
