// Package poolcheck machine-checks the vector.Pool ownership discipline
// (vector/pool.go "Ownership rules"):
//
//   - A pooled vector or batch stored into an operator's field — drawn via
//     Pool.Get/GetBatch in Open, or lazily in Next/build helpers — must be
//     returned to the pool in that type's Close (Pool.Put/PutBatch rooted
//     at the same field). A missed release silently degrades the
//     steady-state zero-allocation contract; a double ownership silently
//     corrupts a future query, because cached results are long-lived.
//   - Batches destined for recycler-held results (Store.buf,
//     catalog.Result.Batches, core.Entry.Batches) must be deep Clones:
//     operator output batches are pooled or alias table storage and are
//     only valid until the next Next call.
//
// Sites where ownership provably transfers elsewhere carry a
// //recycledb:pool-ok or //recycledb:clone-ok justification.
package poolcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"recycledb/internal/analysis"
)

// Analyzer is the poolcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolcheck",
	Doc: "pooled batches stored in operator fields must be released in Close, " +
		"and recycler-destined result buffers must hold deep clones",
	Run: run,
}

const (
	vectorPath  = "recycledb/internal/vector"
	catalogPath = "recycledb/internal/catalog"
	corePath    = "recycledb/internal/core"
	execPath    = "recycledb/internal/exec"
)

type acquire struct {
	field string
	pos   token.Pos
	what  string // Get or GetBatch
}

func run(pass *analysis.Pass) error {
	acquires := make(map[*types.Named][]acquire)       // type -> pooled fields
	releases := make(map[*types.Named]map[string]bool) // type -> fields released in Close

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			recv := analysis.ReceiverType(pass.TypesInfo, fn)
			if recv != nil {
				switch fn.Name.Name {
				case "Close", "close":
					collectReleases(pass, fn, recv, releases)
				default:
					collectAcquires(pass, fn, recv, acquires)
				}
			}
			checkCloneDiscipline(pass, fn)
		}
	}

	for typ, acqs := range acquires {
		rel := releases[typ]
		for _, a := range acqs {
			if rel[a.field] {
				continue
			}
			if pass.Annotated(a.pos, "pool-ok") {
				continue
			}
			pass.Reportf(a.pos, "pooled %s stored in %s.%s is never released: Close must "+
				"Put/PutBatch it back (or justify ownership transfer with //recycledb:pool-ok)",
				a.what, typ.Obj().Name(), a.field)
		}
	}
	return nil
}

// poolMethod reports whether call invokes the named method on
// vector.Pool, e.g. ctx.pool().GetBatch(...) or p.Put(v).
func poolMethod(pass *analysis.Pass, call *ast.CallExpr, names ...string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
			break
		}
	}
	if !match {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !analysis.TypeIs(tv.Type, vectorPath, "Pool") {
		return "", false
	}
	return sel.Sel.Name, true
}

// fieldOf extracts the receiver field a LHS/argument expression roots in:
// recv.f, recv.f[i] — returns f. Returns "" when the expression is not a
// field of recv.
func fieldOf(pass *analysis.Pass, recvObj types.Object, e ast.Expr) string {
	e = ast.Unparen(e)
	if idx, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(idx.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || recvObj == nil || pass.TypesInfo.ObjectOf(id) != recvObj {
		return ""
	}
	return sel.Sel.Name
}

func recvObject(pass *analysis.Pass, fn *ast.FuncDecl) types.Object {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.ObjectOf(fn.Recv.List[0].Names[0])
}

// collectAcquires records receiver fields assigned pool-drawn values.
func collectAcquires(pass *analysis.Pass, fn *ast.FuncDecl, recv *types.Named, acquires map[*types.Named][]acquire) {
	recvObj := recvObject(pass, fn)
	if recvObj == nil {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			if i >= len(assign.Lhs) {
				break
			}
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			what, ok := poolMethod(pass, call, "Get", "GetBatch")
			if !ok {
				continue
			}
			if f := fieldOf(pass, recvObj, assign.Lhs[i]); f != "" {
				acquires[recv] = append(acquires[recv], acquire{field: f, pos: assign.Pos(), what: what})
			}
		}
		return true
	})
}

// collectReleases records receiver fields whose pooled contents Close
// returns: direct Put(recv.f), indexed Put(recv.f[i]), and the
// range-value idiom `for _, v := range recv.f { pool.Put(v) }`.
func collectReleases(pass *analysis.Pass, fn *ast.FuncDecl, recv *types.Named, releases map[*types.Named]map[string]bool) {
	recvObj := recvObject(pass, fn)
	if recvObj == nil {
		return
	}
	rel := releases[recv]
	if rel == nil {
		rel = make(map[string]bool)
		releases[recv] = rel
	}
	// rangeVals maps a range value variable to the receiver field it
	// iterates, for the drain-a-slice-of-vectors idiom.
	rangeVals := make(map[types.Object]string)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			if f := fieldOf(pass, recvObj, x.X); f != "" && x.Value != nil {
				if id, ok := x.Value.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						rangeVals[obj] = f
					}
				}
			}
		case *ast.CallExpr:
			if _, ok := poolMethod(pass, x, "Put", "PutBatch"); !ok {
				return true
			}
			for _, arg := range x.Args {
				if f := fieldOf(pass, recvObj, arg); f != "" {
					rel[f] = true
					continue
				}
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						if f, ok := rangeVals[obj]; ok {
							rel[f] = true
						}
					}
				}
			}
		}
		return true
	})
}

// resultBuffer reports whether e denotes a recycler-destined long-lived
// batch buffer: Store.buf, catalog.Result.Batches, core.Entry.Batches.
func resultBuffer(pass *analysis.Pass, e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return "", false
	}
	switch {
	case sel.Sel.Name == "Batches" && analysis.TypeIs(tv.Type, catalogPath, "Result"):
		return "catalog.Result.Batches", true
	case sel.Sel.Name == "Batches" && analysis.TypeIs(tv.Type, corePath, "Entry"):
		return "core.Entry.Batches", true
	case sel.Sel.Name == "buf" && analysis.TypeIs(tv.Type, execPath, "Store"):
		return "Store.buf", true
	}
	return "", false
}

// checkCloneDiscipline flags appends of non-cloned batches into
// recycler-destined buffers.
func checkCloneDiscipline(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || analysis.CalleeName(call) != "append" || len(call.Args) < 2 {
			return true
		}
		buf, ok := resultBuffer(pass, call.Args[0])
		if !ok {
			return true
		}
		for _, arg := range call.Args[1:] {
			if c, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
				if name := analysis.CalleeName(c); name == "Clone" || name == "CloneBatch" {
					continue
				}
			}
			if pass.Annotated(arg.Pos(), "clone-ok") {
				continue
			}
			pass.Reportf(arg.Pos(), "non-clone appended to %s: operator batches are pooled or "+
				"alias table storage and outlive-Next storage corrupts future queries; append "+
				"a deep Clone() (or justify owned memory with //recycledb:clone-ok)", buf)
		}
		return true
	})
}
