package poolcheck_test

import (
	"testing"

	"recycledb/internal/analysis/analysistest"
	"recycledb/internal/analysis/poolcheck"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", poolcheck.Analyzer, "pool")
}
