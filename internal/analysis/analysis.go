// Package analysis is a self-contained, stdlib-only miniature of
// golang.org/x/tools/go/analysis: named analyzers run over type-checked
// packages and report position-tagged diagnostics. The engine's invariant
// checkers (poolcheck, detcheck, snapcheck, guardedcheck, ctxcheck) build
// on it, and cmd/recycledb-vet drives them over the module — standalone or
// as a `go vet -vettool` backend.
//
// The deliberate API mirror means the passes port to the real
// x/tools/go/analysis framework mechanically if the dependency ever
// becomes available; the subset implemented here (no facts, no modular
// result sharing) is exactly what the repo's checkers need.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -checks selections.
	Name string
	// Doc is a one-paragraph description: first line is a summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic.
	Report func(Diagnostic)

	ann *Annotations // lazily built annotation index
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Annotated reports whether the line holding pos — or the line above it,
// where justification comments conventionally sit — carries a
// //recycledb:<marker> annotation.
func (p *Pass) Annotated(pos token.Pos, marker string) bool {
	if p.ann == nil {
		p.ann = CollectAnnotations(p.Fset, p.Files)
	}
	return p.ann.At(p.Fset, pos, marker)
}

// Inspect walks every file of the pass in depth-first order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// Annotations indexes //recycledb:<marker> justification comments by file
// and line. A marker suppresses a finding on its own line or the line
// directly below (so it can sit above the flagged statement); trailing
// free text after the marker is the human justification and is required.
type Annotations struct {
	byFile map[string]map[int][]string // filename -> line -> markers
}

var annotationRE = regexp.MustCompile(`//recycledb:([a-z-]+)\b`)

// CollectAnnotations scans the files' comments for recycledb markers.
func CollectAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{byFile: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range annotationRE.FindAllStringSubmatch(c.Text, -1) {
					pos := fset.Position(c.Pos())
					lines := a.byFile[pos.Filename]
					if lines == nil {
						lines = make(map[int][]string)
						a.byFile[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], m[1])
				}
			}
		}
	}
	return a
}

// At reports whether marker is present on pos's line or the line above.
func (a *Annotations) At(fset *token.FileSet, pos token.Pos, marker string) bool {
	p := fset.Position(pos)
	lines := a.byFile[p.Filename]
	if lines == nil {
		return false
	}
	for _, l := range [2]int{p.Line, p.Line - 1} {
		for _, m := range lines[l] {
			if m == marker {
				return true
			}
		}
	}
	return false
}

// Deref strips pointers off t.
func Deref(t types.Type) types.Type {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			return t
		}
		t = ptr.Elem()
	}
}

// NamedOf returns the named type behind t (through pointers and aliases),
// or nil.
func NamedOf(t types.Type) *types.Named {
	n, _ := Deref(types.Unalias(t)).(*types.Named)
	return n
}

// TypeIs reports whether t (through pointers) is the named type
// pkgPath.name. An empty pkgPath matches any package.
func TypeIs(t types.Type, pkgPath, name string) bool {
	n := NamedOf(t)
	if n == nil || n.Obj().Name() != name {
		return false
	}
	if pkgPath == "" {
		return true
	}
	return n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == pkgPath
}

// ReceiverType resolves a method's receiver named type, or nil for
// functions.
func ReceiverType(info *types.Info, fn *ast.FuncDecl) *types.Named {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil
	}
	tv, ok := info.Types[fn.Recv.List[0].Type]
	if !ok {
		return nil
	}
	return NamedOf(tv.Type)
}

// CalleeName returns the bare name of a call's callee: the method or
// function identifier, with any package qualifier or receiver stripped.
func CalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// RootIdent digs the leftmost identifier out of selector/index/paren
// chains (x in x.a.b[i].c), or nil.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ExprString renders a (small) expression for diagnostics and syntactic
// comparison.
func ExprString(e ast.Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		b.WriteString(x.Name)
	case *ast.SelectorExpr:
		writeExpr(b, x.X)
		b.WriteByte('.')
		b.WriteString(x.Sel.Name)
	case *ast.IndexExpr:
		writeExpr(b, x.X)
		b.WriteString("[…]")
	case *ast.ParenExpr:
		writeExpr(b, x.X)
	case *ast.StarExpr:
		b.WriteByte('*')
		writeExpr(b, x.X)
	case *ast.UnaryExpr:
		b.WriteString(x.Op.String())
		writeExpr(b, x.X)
	case *ast.CallExpr:
		writeExpr(b, x.Fun)
		b.WriteString("(…)")
	default:
		b.WriteString("…")
	}
}
