// Package analysistest runs an analyzer over fixture packages under a
// testdata directory and checks its diagnostics against // want
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest on
// top of the repo's stdlib-only analysis framework.
//
// A fixture file marks expected findings with trailing comments:
//
//	for k := range m { // want `range over map`
//
// The quoted text is a regular expression matched against the diagnostic
// message reported on that line. Every diagnostic must be wanted and every
// want must fire, so fixtures encode the sanctioned (negative) patterns
// simply by carrying no want comment.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"testing"

	"recycledb/internal/analysis"
)

var wantRE = regexp.MustCompile("// want `([^`]*)`")

// Run loads testdata/src/<pkg> for each named fixture package, applies the
// analyzer, and reports mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := analysis.NewLoader()
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		p, err := loader.LoadDir(dir, pkg)
		if err != nil {
			t.Errorf("%s: load: %v", pkg, err)
			continue
		}
		for _, terr := range p.TypeErrors {
			t.Errorf("%s: type error: %v", pkg, terr)
		}
		diags, err := analysis.RunAnalyzer(a, p)
		if err != nil {
			t.Errorf("%s: run: %v", pkg, err)
			continue
		}
		checkWants(t, p, diags)
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func checkWants(t *testing.T, p *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", posOf(p.Fset, c.Pos()), m[1], err)
						continue
					}
					pos := p.Fset.Position(c.Pos())
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := p.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posOf(p.Fset, d.Pos), d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func posOf(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}
