// Package detcheck flags `range` over a map in the engine's
// result-producing packages. Map iteration order is randomized per run, so
// any map walk whose visit order can reach query output, cache state, or
// recycler statistics breaks the serial-identical merge contract the
// morsel-parallel executor (PR 5) and the golden-equivalence suites depend
// on.
//
// A map range is sanctioned when either
//
//   - the loop only accumulates into slices that are subsequently passed
//     to a sort call in the same function (the collect-then-sort idiom), or
//   - the site carries a //recycledb:nondet-ok justification comment
//     (order provably immaterial: pure set union, commutative folds, …).
package detcheck

import (
	"go/ast"
	"go/types"

	"recycledb/internal/analysis"
)

// Analyzer is the detcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "detcheck",
	Doc: "flag map iteration whose order can leak into results or stats; " +
		"sanction collect-then-sort or //recycledb:nondet-ok sites",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if pass.Annotated(rng.Pos(), "nondet-ok") {
			return true
		}
		if sortedAfter(pass, fn, rng) {
			return true
		}
		pass.Reportf(rng.Pos(), "range over map %s: iteration order is nondeterministic; "+
			"sort the collected output or justify with //recycledb:nondet-ok",
			analysis.ExprString(rng.X))
		return true
	})
}

// sortedAfter reports whether every slice the loop accumulates into is
// sorted later in the same function — the collect-then-sort idiom. A loop
// that accumulates into nothing (pure side-effect-free reads don't exist;
// a body that builds another map, counts, or mutates shared state) does
// not qualify.
func sortedAfter(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) bool {
	sinks := make(map[types.Object]bool)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || analysis.CalleeName(call) != "append" || i >= len(assign.Lhs) {
				continue
			}
			if id := analysis.RootIdent(assign.Lhs[i]); id != nil {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					sinks[obj] = true
				}
			}
		}
		return true
	})
	if len(sinks) == 0 {
		return false
	}
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if id := analysis.RootIdent(arg); id != nil {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil && sinks[obj] {
					delete(sinks, obj)
				}
			}
		}
		if len(sinks) == 0 {
			sorted = true
			return false
		}
		return true
	})
	return sorted
}

// isSortCall recognizes sort.* / slices.Sort* calls and method values like
// sort.Sort(x) by their defining package.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sort", "slices":
		return true
	}
	return false
}
