package det

import "sort"

// leakyKeys leaks map order into its result: a finding.
func leakyKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map m: iteration order is nondeterministic`
		out = append(out, k)
	}
	return out
}

// collectThenSort is the sanctioned idiom: the only sink is sorted later.
func collectThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// justifiedFold carries an explicit nondet-ok justification.
func justifiedFold(m map[string]int) int {
	total := 0
	//recycledb:nondet-ok — commutative sum
	for _, v := range m {
		total += v
	}
	return total
}

// halfSorted sorts one sink but leaks the other: still a finding.
func halfSorted(m map[string]int) ([]string, []int) {
	var ks []string
	var vs []int
	for k, v := range m { // want `range over map m`
		ks = append(ks, k)
		vs = append(vs, v)
	}
	sort.Strings(ks)
	return ks, vs
}

// sliceRange is not a map walk; never flagged.
func sliceRange(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

// emitGroupsLeaky emits aggregate groups by ranging the group-directory
// map, leaking iteration order into the emitted column — the failure mode
// the typed emission kernels must never reintroduce: a finding.
func emitGroupsLeaky(dir map[uint64]int, accs []int64) []int64 {
	var out []int64
	for _, slot := range dir { // want `range over map dir`
		out = append(out, accs[slot])
	}
	return out
}

// emitGroupsOrdered walks the first-occurrence order slice — the emission
// contract of the kernel layer. Not a map walk; never flagged.
func emitGroupsOrdered(order []int, accs []int64) []int64 {
	out := make([]int64, 0, len(order))
	for _, slot := range order {
		out = append(out, accs[slot])
	}
	return out
}
