package detcheck_test

import (
	"testing"

	"recycledb/internal/analysis/analysistest"
	"recycledb/internal/analysis/detcheck"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", detcheck.Analyzer, "det")
}
