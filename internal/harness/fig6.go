package harness

import (
	"context"
	"fmt"
	"time"

	"recycledb"
	"recycledb/internal/catalog"
	"recycledb/internal/monet"
	"recycledb/internal/skyserver"
)

// Fig. 6: "Impact of recycling on SkyServer queries". The 100-query
// workload runs under four systems — the operator-at-a-time engine with and
// without its admit-all recycler (the MonetDB comparison), and the pipelined
// engine with and without the paper's recycler — split into batches of
// 100/50/25 with a cache flush between batches (simulating update
// invalidation), each with a limited and an unlimited recycler cache.
// Reported: recycler runtime as % of the matching naive runtime.

// Fig6Config sizes the experiment.
type Fig6Config struct {
	// Objects is the PhotoPrimary cardinality (scales the 100 GB subset).
	Objects int
	// Queries is the workload length (paper: 100).
	Queries int
	// LimitedCacheBytes models the paper's 1 GB budget, scaled to data.
	LimitedCacheBytes int64
	Seed              int64
}

// DefaultFig6 returns a laptop-scale configuration.
func DefaultFig6() Fig6Config {
	return Fig6Config{
		Objects:           120000,
		Queries:           100,
		LimitedCacheBytes: 96 << 10, // forces the admit-all baseline to thrash
		Seed:              1,
	}
}

// Fig6Cell is one bar of the figure.
type Fig6Cell struct {
	System  string // "MonetDB" or "Recycler"
	Split   string // "1x100", "2x50", "4x25"
	Cache   string // "limited" or "unlimited"
	Naive   time.Duration
	Recycle time.Duration
}

// PctOfNaive is the figure's y-axis.
func (c Fig6Cell) PctOfNaive() float64 {
	if c.Naive == 0 {
		return 0
	}
	return 100 * float64(c.Recycle) / float64(c.Naive)
}

// Fig6Result is the full grid.
type Fig6Result struct {
	Cells []Fig6Cell
}

// RunFig6 executes the experiment.
func RunFig6(cfg Fig6Config) (*Fig6Result, error) {
	cat := catalog.New()
	skyserver.Load(cat, cfg.Objects, cfg.Seed)
	queries := skyserver.Workload(cfg.Queries, cfg.Seed)

	splits := []struct {
		name    string
		batches int
	}{{"1x100", 1}, {"2x50", 2}, {"4x25", 4}}
	caches := []struct {
		name  string
		bytes int64
	}{{"limited", cfg.LimitedCacheBytes}, {"unlimited", -1}}

	res := &Fig6Result{}
	// The naive baselines are split- and cache-independent; measure once.
	naiveP, err := runPipelined(cat, queries, recycledb.Off, -1, 1)
	if err != nil {
		return nil, err
	}
	naiveM, err := runMonet(cat, queries, nil, 1)
	if err != nil {
		return nil, err
	}
	for _, split := range splits {
		for _, cache := range caches {
			recP, err := runPipelined(cat, queries, recycledb.Speculative, cache.bytes, split.batches)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, Fig6Cell{
				System: "Recycler", Split: split.name, Cache: cache.name,
				Naive: naiveP, Recycle: recP,
			})
			var mrec *monet.Recycler
			if cache.bytes < 0 {
				mrec = monet.NewRecycler(0)
			} else {
				mrec = monet.NewRecycler(cache.bytes)
			}
			recM, err := runMonet(cat, queries, mrec, split.batches)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, Fig6Cell{
				System: "MonetDB", Split: split.name, Cache: cache.name,
				Naive: naiveM, Recycle: recM,
			})
		}
	}
	return res, nil
}

func runPipelined(cat *catalog.Catalog, queries []skyserver.Query, mode recycledb.Mode, cacheBytes int64, batches int) (time.Duration, error) {
	eng := NewEngine(cat, mode, cacheBytes)
	start := time.Now()
	per := (len(queries) + batches - 1) / batches
	for i, q := range queries {
		if i > 0 && i%per == 0 {
			eng.FlushCache()
		}
		if _, err := eng.ExecuteContext(context.Background(), q.Plan); err != nil {
			return 0, fmt.Errorf("query %d (%s): %w", i, q.Pattern, err)
		}
	}
	return time.Since(start), nil
}

func runMonet(cat *catalog.Catalog, queries []skyserver.Query, rec *monet.Recycler, batches int) (time.Duration, error) {
	eng := monet.New(cat, rec)
	start := time.Now()
	per := (len(queries) + batches - 1) / batches
	for i, q := range queries {
		if i > 0 && i%per == 0 && rec != nil {
			rec.Flush()
		}
		if _, err := eng.Execute(q.Plan); err != nil {
			return 0, fmt.Errorf("query %d (%s): %w", i, q.Pattern, err)
		}
	}
	return time.Since(start), nil
}

// String renders the figure as a table of %-of-naive values.
func (r *Fig6Result) String() string {
	header := []string{"split", "cache", "system", "naive", "recycler", "% of naive"}
	var rows [][]string
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.Split, c.Cache, c.System,
			fmtDur(c.Naive), fmtDur(c.Recycle),
			fmt.Sprintf("%.1f%%", c.PctOfNaive()),
		})
	}
	return "Fig. 6 - SkyServer: recycling runtime as % of naive\n" + table(header, rows)
}
