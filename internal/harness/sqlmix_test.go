package harness

import (
	"context"
	"math/rand"
	"net"
	"testing"

	"recycledb"
	"recycledb/internal/server"
	"recycledb/internal/workload"
)

// TestSQLMixOverWire proves every SQL-text mix pattern is accepted by the
// full serving stack: parse, prepare, bind with text params, execute,
// stream. It loads a small mixed catalog, serves it on loopback, and runs
// several instances of each pattern through the wire adapter.
func TestSQLMixOverWire(t *testing.T) {
	cat := MixedCatalog(0.01, 3000, 1)
	eng := recycledb.NewWithCatalog(recycledb.Config{Mode: recycledb.Speculative}, cat)
	srv := server.New(eng, server.Config{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(ctx, lis) }()
	t.Cleanup(func() { cancel(); <-done })

	conn, err := DialWire(t.Context(), lis.Addr().String(), "mixtest")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	rng := rand.New(rand.NewSource(7))
	rows := make(map[string]int)
	for _, entry := range MixedSQLMix(3, 7) {
		for i := 0; i < 4; i++ {
			q := entry.Make(rng)
			if q.Label == "" {
				q.Label = entry.Label
			}
			n, err := conn.Run(q)
			if err != nil {
				t.Fatalf("%s: %v\nSQL: %s\nargs: %v", entry.Label, err, q.SQL, q.Args)
			}
			rows[entry.Label] += n
		}
	}
	// Patterns that aggregate over the whole fact table always produce
	// rows; cone searches may legitimately come back empty on a tiny sky.
	for _, label := range []string{"Q1", "Q6", "Q12", "Q14"} {
		if rows[label] == 0 {
			t.Errorf("%s returned no rows across all variants", label)
		}
	}
}

// TestRunSQLClientsSmoke drives the SQL client driver end to end over the
// wire: a handful of clients, a bounded query budget, zero errors expected.
func TestRunSQLClientsSmoke(t *testing.T) {
	cat := MixedCatalog(0.01, 2000, 1)
	eng := recycledb.NewWithCatalog(recycledb.Config{Mode: recycledb.Speculative}, cat)
	srv := server.New(eng, server.Config{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(ctx, lis) }()
	t.Cleanup(func() { cancel(); <-done })

	res, err := workload.RunSQLClients(
		workload.SQLClientsConfig{Clients: 4, MaxQueries: 40, Seed: 3},
		MixedSQLMix(2, 3),
		func(client int) (workload.SQLConn, error) {
			return DialWire(t.Context(), lis.Addr().String(), "bench")
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errs != 0 {
		t.Fatalf("%d query errors", res.Errs)
	}
	if res.Queries == 0 {
		t.Fatal("no queries ran")
	}
	if len(res.Latencies) != int(res.Queries) {
		t.Fatalf("latencies %d != queries %d", len(res.Latencies), res.Queries)
	}
}
