package harness

import (
	"fmt"
	"sort"
	"time"

	"recycledb"
	"recycledb/internal/tpch"
	"recycledb/internal/workload"
)

// Fig. 10: "Matching cost for 256-stream throughput run": per-query
// recycler-graph matching+insertion cost over all 22*streams invocations,
// total and per query pattern. The paper's observation to reproduce: the
// cost grows moderately with graph size and stays orders of magnitude below
// query evaluation cost (max ~2 ms vs. 0.3-11 s there).

// Fig10Config sizes the run.
type Fig10Config struct {
	SF            float64
	Streams       int
	MaxConcurrent int
	Seed          int64
	// Windows is how many buckets the series is summarized into.
	Windows int
}

// DefaultFig10 mirrors the paper's 256-stream run at laptop scale.
func DefaultFig10() Fig10Config {
	return Fig10Config{SF: 0.01, Streams: 256, MaxConcurrent: 12, Seed: 1, Windows: 8}
}

// Fig10Result carries the series.
type Fig10Result struct {
	Cfg Fig10Config
	// MatchCosts in completion order (the figure's x-axis is query
	// number).
	MatchCosts []time.Duration
	// PerPattern collects match costs by pattern.
	PerPattern map[string][]time.Duration
	// ExecAvg is the average query execution time, for the
	// orders-of-magnitude comparison.
	ExecAvg    time.Duration
	GraphNodes int
}

// RunFig10 executes the run in speculative mode.
func RunFig10(cfg Fig10Config) (*Fig10Result, error) {
	cat := LoadTPCH(TPCHConfig{SF: cfg.SF, Seed: cfg.Seed})
	eng := NewEngine(cat, recycledb.Speculative, 256<<20)
	streams := TPCHStreams(tpch.Streams(cfg.Streams, cfg.Seed), recycledb.Speculative)
	run := workload.Run(streams, cfg.MaxConcurrent, EngineExec(eng))
	if run.Errs > 0 {
		return nil, fmt.Errorf("harness: %d queries failed", run.Errs)
	}
	events := append([]workload.Event(nil), run.Events...)
	sort.Slice(events, func(a, b int) bool { return events[a].End < events[b].End })
	res := &Fig10Result{Cfg: cfg, PerPattern: make(map[string][]time.Duration)}
	var execSum time.Duration
	for _, e := range events {
		res.MatchCosts = append(res.MatchCosts, e.Outcome.MatchTime)
		res.PerPattern[e.Label] = append(res.PerPattern[e.Label], e.Outcome.MatchTime)
		execSum += e.Outcome.ExecTime
	}
	if len(events) > 0 {
		res.ExecAvg = execSum / time.Duration(len(events))
	}
	res.GraphNodes = eng.Recycler().Stats().GraphNodes
	return res, nil
}

// Max returns the largest matching cost observed.
func (r *Fig10Result) Max() time.Duration {
	var m time.Duration
	for _, c := range r.MatchCosts {
		if c > m {
			m = c
		}
	}
	return m
}

// WindowAvgs summarizes the series into Cfg.Windows buckets.
func (r *Fig10Result) WindowAvgs() []time.Duration {
	w := r.Cfg.Windows
	if w <= 0 {
		w = 8
	}
	n := len(r.MatchCosts)
	if n == 0 {
		return nil
	}
	out := make([]time.Duration, 0, w)
	per := (n + w - 1) / w
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		var sum time.Duration
		for _, c := range r.MatchCosts[lo:hi] {
			sum += c
		}
		out = append(out, sum/time.Duration(hi-lo))
	}
	return out
}

// String renders the series summary and the per-pattern averages.
func (r *Fig10Result) String() string {
	s := fmt.Sprintf("Fig. 10 - matching cost over %d query invocations (%d graph nodes)\n",
		len(r.MatchCosts), r.GraphNodes)
	header := []string{"window", "avg match cost"}
	var rows [][]string
	for i, avg := range r.WindowAvgs() {
		rows = append(rows, []string{fmt.Sprintf("%d", i+1), fmt.Sprintf("%.1fµs", float64(avg.Nanoseconds())/1000)})
	}
	s += table(header, rows)
	labels := make([]string, 0, len(r.PerPattern))
	for l := range r.PerPattern {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(a, b int) bool { return patternNum(labels[a]) < patternNum(labels[b]) })
	header = []string{"pattern", "avg match cost", "max"}
	rows = rows[:0]
	for _, l := range labels {
		var sum, max time.Duration
		for _, c := range r.PerPattern[l] {
			sum += c
			if c > max {
				max = c
			}
		}
		avg := sum / time.Duration(len(r.PerPattern[l]))
		rows = append(rows, []string{l,
			fmt.Sprintf("%.1fµs", float64(avg.Nanoseconds())/1000),
			fmt.Sprintf("%.1fµs", float64(max.Nanoseconds())/1000)})
	}
	s += table(header, rows)
	var avgMatch time.Duration
	for _, c := range r.MatchCosts {
		avgMatch += c
	}
	if len(r.MatchCosts) > 0 {
		avgMatch /= time.Duration(len(r.MatchCosts))
	}
	s += fmt.Sprintf("avg match cost %.3fms, max %.2fms; avg query execution %s (avg exec / avg match = %.1fx)\n",
		float64(avgMatch.Nanoseconds())/1e6,
		float64(r.Max().Nanoseconds())/1e6, fmtDur(r.ExecAvg),
		float64(r.ExecAvg)/float64(max64(int64(avgMatch), 1)))
	return s
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
