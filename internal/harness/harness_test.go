package harness

import (
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"recycledb"
)

// Small-scale smoke runs of every figure. Shape assertions are deliberately
// loose (timing on CI machines is noisy at tiny scale); the full-scale runs
// happen in bench_test.go / cmd/recycledb-bench.

func TestRunFig6Small(t *testing.T) {
	cfg := Fig6Config{Objects: 8000, Queries: 24, LimitedCacheBytes: 32 << 10, Seed: 1}
	res, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 12 { // 3 splits x 2 caches x 2 systems
		t.Fatalf("cells = %d, want 12", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Naive <= 0 || c.Recycle <= 0 {
			t.Fatalf("degenerate cell %+v", c)
		}
	}
	// Recycling must beat naive on the unflushed, unlimited-cache run for
	// both systems (the workload repeats one dominant expensive pattern).
	for _, c := range res.Cells {
		if c.Split == "1x100" && c.Cache == "unlimited" && c.PctOfNaive() > 95 {
			t.Errorf("%s %s %s: %.1f%% of naive; recycling should win clearly",
				c.System, c.Split, c.Cache, c.PctOfNaive())
		}
	}
	if !strings.Contains(res.String(), "% of naive") {
		t.Fatal("rendering broken")
	}
}

func TestRunThroughputSmall(t *testing.T) {
	cfg := TPCHConfig{
		SF:            0.002,
		Streams:       []int{2, 6},
		MaxConcurrent: 4,
		CacheBytes:    64 << 20,
		Seed:          1,
	}
	res, err := RunThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 8 { // 2 stream counts x 4 modes
		t.Fatalf("cells = %d, want 8", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.AvgStream <= 0 {
			t.Fatalf("degenerate cell %+v", c)
		}
	}
	// Recycling must produce reuses at the higher stream count.
	for _, m := range []recycledb.Mode{recycledb.Speculative, recycledb.Proactive} {
		c := res.Cell(m, 6)
		if c.Reuses == 0 {
			t.Errorf("mode %v at 6 streams: no reuses", m)
		}
	}
	out := res.String()
	if !strings.Contains(out, "streams") {
		t.Fatal("Fig7 rendering broken")
	}
	out8 := res.Fig8String()
	if !strings.Contains(out8, "Q1") || !strings.Contains(out8, "Q22") {
		t.Fatalf("Fig8 rendering broken:\n%s", out8)
	}
}

func TestRunFig9Small(t *testing.T) {
	cfg := Fig9Config{SF: 0.002, Streams: 4, MaxConcurrent: 4, Seed: 1}
	res, err := RunFig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 4*6 {
		t.Fatalf("events = %d, want 24", len(res.Events))
	}
	// Speculation is on: every query either materializes or reuses
	// something (final results are always candidates); allow a small
	// number of exceptions for rejected admissions.
	neither := 0
	for _, e := range res.Events {
		if !e.Outcome.Reused && !e.Outcome.Materialized {
			neither++
		}
	}
	if neither > len(res.Events)/3 {
		t.Errorf("%d of %d events neither materialize nor reuse", neither, len(res.Events))
	}
	out := res.String()
	if !strings.Contains(out, "legend") || !strings.Contains(out, "summary") {
		t.Fatal("Fig9 rendering broken")
	}
}

func TestRunFig10Small(t *testing.T) {
	cfg := Fig10Config{SF: 0.002, Streams: 6, MaxConcurrent: 4, Seed: 1, Windows: 4}
	res, err := RunFig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MatchCosts) != 6*22 {
		t.Fatalf("match costs = %d, want 132", len(res.MatchCosts))
	}
	if res.GraphNodes == 0 {
		t.Fatal("graph did not grow")
	}
	// The paper's headline property: matching stays bounded (max ~2 ms
	// there) and far below the cost of evaluating a query from scratch.
	// With recycling on, the *average* execution time at toy scale can
	// approach matching cost (reused queries are nearly free), so the
	// bound is checked against an absolute ceiling here; the full-size
	// comparison lives in EXPERIMENTS.md. The ceiling measures wall time
	// inside MatchInsert, so it only holds when the concurrent queries
	// actually run in parallel — on fewer cores than MaxConcurrent a
	// matcher gets descheduled mid-measurement and the reading inflates
	// by whole query executions; instrumented (race) builds, short runs,
	// and shared CI runners skip it for the same reason.
	parallel := runtime.NumCPU() >= cfg.MaxConcurrent
	if !testing.Short() && !raceEnabled && parallel && os.Getenv("CI") == "" && res.Max() > 50*time.Millisecond {
		t.Errorf("max match cost %v is implausibly high", res.Max())
	}
	if res.ExecAvg <= 0 {
		t.Error("exec average missing")
	}
	if len(res.WindowAvgs()) == 0 {
		t.Fatal("no window averages")
	}
	if !strings.Contains(res.String(), "matching cost") {
		t.Fatal("Fig10 rendering broken")
	}
}
