package harness

import (
	"context"
	"fmt"

	"recycledb/internal/pgclient"
	"recycledb/internal/workload"
)

// wireConn adapts a Postgres wire-protocol connection to the SQL client
// driver's transport interface. Every statement runs through the extended
// protocol with a per-connection prepared-statement cache keyed by SQL text
// — the shape a real pooled client library settles into, and the one that
// exercises the server's prepared-statement table and the engine's plan
// cache rather than re-parsing each instance.
type wireConn struct {
	c     *pgclient.Conn
	names map[string]string // SQL text -> server-side statement name
}

// DialWire opens one wire connection for the SQL client driver.
func DialWire(ctx context.Context, addr, user string) (workload.SQLConn, error) {
	c, err := pgclient.Dial(ctx, addr, user)
	if err != nil {
		return nil, err
	}
	return &wireConn{c: c, names: make(map[string]string)}, nil
}

func (w *wireConn) Run(q workload.SQLQuery) (int, error) {
	name, ok := w.names[q.SQL]
	if !ok {
		name = fmt.Sprintf("s%d", len(w.names))
		if err := w.c.Prepare(name, q.SQL); err != nil {
			return 0, err
		}
		w.names[q.SQL] = name
	}
	res, err := w.c.Exec(name, q.Args...)
	if err != nil {
		return 0, err
	}
	return len(res.Rows), nil
}

func (w *wireConn) Close() error { return w.c.Close() }
