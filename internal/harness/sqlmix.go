package harness

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"recycledb/internal/tpch"
	"recycledb/internal/vector"
	"recycledb/internal/workload"
)

// This file mirrors clients.go for the wire: the same TPC-H dashboard and
// SkyServer cone-search mixes, but expressed as SQL text with $N parameters
// so they can be driven through recycledb-server's Postgres front end by
// workload.RunSQLClients. Patterns draw parameters from a small pool of
// fixed variants, like the plan-level mixes, so concurrent clients collide
// on identical statements — the sharing structure recycling feeds on.
//
// The SQL shapes stay inside the engine's dialect: comma joins with
// globally-unique column names, IN/LIKE over literals, $N parameters in
// comparison and BETWEEN positions, table functions with literal arguments.
// That keeps them compilable by sql.CompileTemplate while remaining
// recognizable as TPC-H Q1/Q3/Q6/Q12/Q14 and the paper's SkyServer log.

const (
	sqlQ1 = `SELECT l_returnflag, l_linestatus,
       sum(l_quantity) AS sum_qty,
       sum(l_extendedprice) AS sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       avg(l_quantity) AS avg_qty,
       avg(l_discount) AS avg_disc,
       count(*) AS count_order
FROM lineitem
WHERE l_shipdate <= $1
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus`

	sqlQ3 = `SELECT l_orderkey, o_orderdate, o_shippriority,
       sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem, orders, customer
WHERE c_mktsegment = $1 AND o_orderdate < $2 AND l_shipdate > $3
  AND l_orderkey = o_orderkey AND o_custkey = c_custkey
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC LIMIT 10`

	sqlQ6 = `SELECT sum(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= $1 AND l_shipdate < $2
  AND l_discount BETWEEN $3 AND $4 AND l_quantity < $5`

	// Q12's ship modes appear as literals (the dialect's IN lists take
	// literals only), so each variant is its own statement text.
	sqlQ12 = `SELECT l_shipmode,
       sum(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH') THEN 1 ELSE 0 END) AS high_line_count,
       sum(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH') THEN 0 ELSE 1 END) AS low_line_count
FROM lineitem, orders
WHERE l_shipmode IN ('%s', '%s')
  AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate
  AND l_receiptdate >= $1 AND l_receiptdate < $2
  AND l_orderkey = o_orderkey
GROUP BY l_shipmode
ORDER BY l_shipmode`

	sqlQ14 = `SELECT sum(CASE WHEN p_type LIKE 'PROMO%' THEN l_extendedprice * (1 - l_discount) ELSE 0.0 END) AS promo,
       sum(l_extendedprice * (1 - l_discount)) AS total
FROM lineitem, part
WHERE l_shipdate >= $1 AND l_shipdate < $2 AND l_partkey = p_partkey`
)

func sqlDate(days int64) string { return vector.DateString(days) }

func addDays(days int64, years, months int) int64 {
	t := time.Unix(days*86400, 0).UTC().AddDate(years, months, 0)
	return t.Unix() / 86400
}

// sqlForParams renders one TPC-H pattern instance as SQL text + args.
func sqlForParams(p tpch.Params) workload.SQLQuery {
	switch p.Q {
	case 1:
		return workload.SQLQuery{Label: "Q1", SQL: sqlQ1,
			Args: []string{sqlDate(p.Date)}}
	case 3:
		return workload.SQLQuery{Label: "Q3", SQL: sqlQ3,
			Args: []string{p.Str1, sqlDate(p.Date), sqlDate(p.Date)}}
	case 6:
		return workload.SQLQuery{Label: "Q6", SQL: sqlQ6,
			Args: []string{
				sqlDate(p.Date), sqlDate(addDays(p.Date, 1, 0)),
				strconv.FormatFloat(p.Float1-0.011, 'f', -1, 64),
				strconv.FormatFloat(p.Float1+0.011, 'f', -1, 64),
				strconv.FormatInt(p.Int1, 10)}}
	case 12:
		return workload.SQLQuery{Label: "Q12",
			SQL:  fmt.Sprintf(sqlQ12, p.Strs[0], p.Strs[1]),
			Args: []string{sqlDate(p.Date), sqlDate(addDays(p.Date, 1, 0))}}
	case 14:
		return workload.SQLQuery{Label: "Q14", SQL: sqlQ14,
			Args: []string{sqlDate(p.Date), sqlDate(addDays(p.Date, 0, 1))}}
	}
	panic(fmt.Sprintf("no SQL text for TPC-H Q%d", p.Q))
}

// TPCHSQLMix is the SQL-text twin of TPCHMix: the same patterns, weights,
// and per-pattern variant pools, as wire-ready statements.
func TPCHSQLMix(variants int, seed int64) workload.SQLMix {
	if variants <= 0 {
		variants = 4
	}
	rng := rand.New(rand.NewSource(seed))
	patterns := []struct {
		q      int
		weight int
	}{
		{1, 4}, {3, 3}, {6, 4}, {12, 2}, {14, 2},
	}
	var mix workload.SQLMix
	for _, pat := range patterns {
		pool := make([]workload.SQLQuery, variants)
		for i := range pool {
			pool[i] = sqlForParams(tpch.NewParams(pat.q, rng))
		}
		mix = append(mix, workload.SQLMixEntry{
			Label:  fmt.Sprintf("Q%d", pat.q),
			Weight: pat.weight,
			Make: func(rng *rand.Rand) workload.SQLQuery {
				return pool[rng.Intn(len(pool))]
			},
		})
	}
	return mix
}

// SkyServerSQLMix is the SQL-text twin of SkyServerMix: the dominant cone
// search verbatim, narrow projections and an aggregation over the same
// fGetNearbyObjEq(195, 2.5, 0.5) call, and a few other cones, weighted like
// the paper's log sample (6/2/1/1). Table-function arguments must be
// literals in the dialect, so every cone is its own statement text — which
// matches the observed workload: the same literal call repeated verbatim.
func SkyServerSQLMix(seed int64) workload.SQLMix {
	// Table-function arguments parse by literal shape: "195" would arrive
	// as an int64 datum and fGetNearbyObjEq reads float args, so every
	// coordinate is rendered with an explicit decimal point.
	flit := func(v float64) string {
		s := strconv.FormatFloat(v, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		return s
	}
	cone := func(ra, dec, r float64, cols string, limit int) string {
		return fmt.Sprintf(
			"SELECT %s FROM fGetNearbyObjEq(%s, %s, %s), PhotoPrimary WHERE nearby_objID = objID LIMIT %d",
			cols, flit(ra), flit(dec), flit(r), limit)
	}
	wide := `objID, run, rerun, camcol, field, obj, type`
	narrow := `objID, ra, dec, r_mag`
	dominant := cone(195, 2.5, 0.5, wide, 10)
	narrows := []string{
		cone(195, 2.5, 0.5, narrow, 10),
		cone(195, 2.5, 0.5, narrow, 15),
		cone(195, 2.5, 0.5, narrow, 20),
	}
	agg := `SELECT type, count(*) AS n, avg(r_mag) AS avg_r ` +
		`FROM fGetNearbyObjEq(195.0, 2.5, 0.5), PhotoPrimary WHERE nearby_objID = objID GROUP BY type`
	others := []string{
		cone(180, 0, 0.5, wide, 10),
		cone(210, 5, 0.5, wide, 10),
		cone(150, 30, 1.0, wide, 10),
	}
	return workload.SQLMix{
		{Label: "cone-join-dominant", Weight: 6, Make: func(rng *rand.Rand) workload.SQLQuery {
			return workload.SQLQuery{SQL: dominant}
		}},
		{Label: "cone-join-narrow", Weight: 2, Make: func(rng *rand.Rand) workload.SQLQuery {
			return workload.SQLQuery{SQL: narrows[rng.Intn(len(narrows))]}
		}},
		{Label: "cone-agg", Weight: 1, Make: func(rng *rand.Rand) workload.SQLQuery {
			return workload.SQLQuery{SQL: agg}
		}},
		{Label: "cone-join-other", Weight: 1, Make: func(rng *rand.Rand) workload.SQLQuery {
			return workload.SQLQuery{SQL: others[rng.Intn(len(others))]}
		}},
	}
}

// MixedSQLMix combines the TPC-H and SkyServer SQL mixes into one client
// workload over a MixedCatalog.
func MixedSQLMix(variants int, seed int64) workload.SQLMix {
	return append(TPCHSQLMix(variants, seed), SkyServerSQLMix(seed)...)
}
