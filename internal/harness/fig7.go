package harness

import (
	"fmt"
	"sort"
	"time"

	"recycledb"
	"recycledb/internal/tpch"
	"recycledb/internal/workload"
)

// Fig. 7: "Average time per TPC-H stream" for 4/16/64/256 streams under
// OFF/HIST/SPEC/PA, and Fig. 8: the per-query-pattern breakdown (relative to
// OFF) at the largest stream count. One sweep produces both.

// ThroughputCell is one (mode, streams) measurement.
type ThroughputCell struct {
	Mode       recycledb.Mode
	Streams    int
	AvgStream  time.Duration
	Total      time.Duration
	PerPattern map[string]time.Duration // avg execution time per pattern
	Stats      recycledb.QueryStats     // unused fields zero; summary only
	Reuses     int64
	Stores     int64
	Stalls     int64
}

// ThroughputResult is the full sweep.
type ThroughputResult struct {
	Cfg   TPCHConfig
	Cells []ThroughputCell
}

// RunThroughput executes the sweep: for each stream count and mode, a fresh
// engine over the shared catalog runs the same qgen streams.
func RunThroughput(cfg TPCHConfig) (*ThroughputResult, error) {
	cat := LoadTPCH(cfg)
	res := &ThroughputResult{Cfg: cfg}
	for _, n := range cfg.Streams {
		streams := tpch.Streams(n, cfg.Seed)
		for _, mode := range Modes {
			eng := NewEngine(cat, mode, cfg.CacheBytes)
			ws := TPCHStreams(streams, mode)
			run := workload.Run(ws, cfg.MaxConcurrent, EngineExec(eng))
			if run.Errs > 0 {
				return nil, fmt.Errorf("harness: %d queries failed (mode %v, %d streams)",
					run.Errs, mode, n)
			}
			cell := ThroughputCell{
				Mode: mode, Streams: n,
				AvgStream:  run.AvgStreamTime(),
				Total:      run.Total,
				PerPattern: make(map[string]time.Duration),
			}
			for label := range run.PerLabel {
				cell.PerPattern[label] = run.AvgLabelTime(label)
			}
			st := eng.Recycler().Stats()
			cell.Reuses = st.Reuses + st.SubsumptionReuse
			cell.Stores = st.Materializations
			cell.Stalls = st.Stalls
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// Cell returns the cell for (mode, streams), or nil.
func (r *ThroughputResult) Cell(mode recycledb.Mode, streams int) *ThroughputCell {
	for i := range r.Cells {
		if r.Cells[i].Mode == mode && r.Cells[i].Streams == streams {
			return &r.Cells[i]
		}
	}
	return nil
}

// Improvement returns 1 - mode/OFF for the given stream count (the paper's
// "10/24/55/79 % improvement" numbers use the best mode).
func (r *ThroughputResult) Improvement(mode recycledb.Mode, streams int) float64 {
	off := r.Cell(recycledb.Off, streams)
	c := r.Cell(mode, streams)
	if off == nil || c == nil || off.AvgStream == 0 {
		return 0
	}
	return 1 - float64(c.AvgStream)/float64(off.AvgStream)
}

// String renders Fig. 7's series.
func (r *ThroughputResult) String() string {
	header := []string{"streams"}
	for _, m := range Modes {
		header = append(header, m.String())
	}
	header = append(header, "best improvement")
	var rows [][]string
	for _, n := range r.Cfg.Streams {
		row := []string{fmt.Sprintf("%d", n)}
		best := 0.0
		for _, m := range Modes {
			c := r.Cell(m, n)
			if c == nil {
				row = append(row, "n/a")
				continue
			}
			row = append(row, fmtDur(c.AvgStream))
			if imp := r.Improvement(m, n); imp > best {
				best = imp
			}
		}
		row = append(row, fmt.Sprintf("%.0f%%", best*100))
		rows = append(rows, row)
	}
	return "Fig. 7 - TPC-H: average evaluation time per stream\n" + table(header, rows)
}

// Fig8String renders the per-pattern breakdown (relative to OFF) at the
// largest stream count.
func (r *ThroughputResult) Fig8String() string {
	n := r.Cfg.Streams[len(r.Cfg.Streams)-1]
	off := r.Cell(recycledb.Off, n)
	if off == nil {
		return "no data"
	}
	labels := make([]string, 0, len(off.PerPattern))
	for l := range off.PerPattern {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(a, b int) bool {
		return patternNum(labels[a]) < patternNum(labels[b])
	})
	header := []string{"query", "OFF"}
	for _, m := range Modes[1:] {
		header = append(header, m.String()+" (% of OFF)")
	}
	var rows [][]string
	for _, l := range labels {
		row := []string{l, fmtDur(off.PerPattern[l])}
		for _, m := range Modes[1:] {
			c := r.Cell(m, n)
			if c == nil || off.PerPattern[l] == 0 {
				row = append(row, "n/a")
				continue
			}
			row = append(row, pct(c.PerPattern[l], off.PerPattern[l]))
		}
		rows = append(rows, row)
	}
	return fmt.Sprintf("Fig. 8 - per-pattern breakdown at %d streams (execution time relative to OFF)\n", n) +
		table(header, rows)
}

func patternNum(label string) int {
	var n int
	fmt.Sscanf(label, "Q%d", &n)
	return n
}
