package harness

import (
	"fmt"
	"math/rand"
	"sort"

	"recycledb/internal/catalog"
	"recycledb/internal/expr"
	"recycledb/internal/plan"
	"recycledb/internal/skyserver"
	"recycledb/internal/tpch"
	"recycledb/internal/workload"
)

// This file builds query mixes for the multi-client driver
// (workload.RunClients): an online serving tier issuing TPC-H dashboard
// refreshes and SkyServer cone searches against one shared engine. Each
// pattern draws from a small pool of fixed parameter variants — exactly the
// repetition structure (identical and near-identical queries from many
// clients) that gives the recycler sharing potential.

// MixedCatalog loads TPC-H at the given scale factor and a synthetic
// SkyServer sky of skyObjects objects into one catalog.
func MixedCatalog(sf float64, skyObjects int, seed int64) *catalog.Catalog {
	cat := catalog.New()
	tpch.Generate(cat, sf, seed)
	skyserver.Load(cat, skyObjects, seed)
	return cat
}

// TPCHMix returns a weighted client mix over a subset of TPC-H patterns,
// each with a pool of `variants` fixed parameter draws. Small pools model
// the dashboard case: many clients asking the same few questions.
func TPCHMix(variants int, seed int64) workload.Mix {
	if variants <= 0 {
		variants = 4
	}
	rng := rand.New(rand.NewSource(seed))
	patterns := []struct {
		q      int
		weight int
	}{
		{1, 4}, {3, 3}, {6, 4}, {12, 2}, {14, 2},
	}
	var mix workload.Mix
	for _, pat := range patterns {
		pool := make([]tpch.Params, variants)
		for i := range pool {
			pool[i] = tpch.NewParams(pat.q, rng)
		}
		mix = append(mix, workload.MixEntry{
			Label:  fmt.Sprintf("Q%d", pat.q),
			Weight: pat.weight,
			Make: func(rng *rand.Rand) *plan.Node {
				return tpch.Build(pool[rng.Intn(len(pool))])
			},
		})
	}
	return mix
}

// SkyServerMix returns a client mix over the SkyServer workload patterns
// (dominant cone search, narrow projections, aggregations, other cones),
// weighted like the paper's log sample.
func SkyServerMix(seed int64) workload.Mix {
	pool := skyserver.Workload(64, seed)
	byPattern := make(map[string][]*plan.Node)
	var order []string
	for _, q := range pool {
		if _, ok := byPattern[q.Pattern]; !ok {
			order = append(order, q.Pattern)
		}
		byPattern[q.Pattern] = append(byPattern[q.Pattern], q.Plan)
	}
	var mix workload.Mix
	for _, pat := range order {
		plans := byPattern[pat]
		mix = append(mix, workload.MixEntry{
			Label:  pat,
			Weight: len(plans),
			Make: func(rng *rand.Rand) *plan.Node {
				return plans[rng.Intn(len(plans))]
			},
		})
	}
	return mix
}

// MixedMix combines the TPC-H and SkyServer mixes into one client workload.
func MixedMix(variants int, seed int64) workload.Mix {
	return append(TPCHMix(variants, seed), SkyServerMix(seed)...)
}

// PermutedMix returns near-variant patterns whose written conjunct order is
// shuffled per draw: the same parameters arrive as `a AND b AND c`,
// `b AND a AND c`, ... — the way different dashboard authors write the same
// filter. Without the optimizer each permutation is a distinct recycler
// shape (zero cross-permutation reuse, up to 5! shapes per parameter draw);
// the optimizer's canonical chain splitting collapses every permutation of
// one parameter draw to one shape. This is the workload slice where plan
// normalization, not caching alone, earns the hit rate.
func PermutedMix(variants int, seed int64) workload.Mix {
	if variants <= 0 {
		variants = 4
	}
	rng := rand.New(rand.NewSource(seed))

	// TPC-H Q6 revenue change: five rotatable conjuncts over lineitem.
	q6pool := make([]tpch.Params, variants)
	for i := range q6pool {
		q6pool[i] = tpch.NewParams(6, rng)
	}
	q6 := func(p tpch.Params, rng *rand.Rand) *plan.Node {
		conj := permute([]expr.Expr{
			expr.Ge(expr.C("l_shipdate"), expr.DateDays(p.Date)),
			expr.Lt(expr.C("l_shipdate"), expr.DateDays(tpch.AddYears(p.Date, 1))),
			expr.Ge(expr.C("l_discount"), expr.Flt(p.Float1-0.011)),
			expr.Le(expr.C("l_discount"), expr.Flt(p.Float1+0.011)),
			expr.Lt(expr.C("l_quantity"), expr.Int(p.Int1)),
		}, rng)
		sel := plan.NewSelect(
			plan.NewScan("lineitem", "l_quantity", "l_extendedprice", "l_discount", "l_shipdate"),
			expr.AndOf(conj...))
		return plan.NewAggregate(sel, nil,
			plan.A(plan.Sum, expr.Mul(expr.C("l_extendedprice"), expr.C("l_discount")), "revenue"))
	}

	// SkyServer box search: magnitude histogram over a sky rectangle, four
	// shuffled conjuncts over PhotoPrimary.
	type box struct{ ra, dec float64 }
	boxes := make([]box, variants)
	for i := range boxes {
		boxes[i] = box{ra: 150 + 15*float64(rng.Intn(5)), dec: -10 + 10*float64(rng.Intn(4))}
	}
	sky := func(b box, rng *rand.Rand) *plan.Node {
		conj := permute([]expr.Expr{
			expr.Ge(expr.C("ra"), expr.Flt(b.ra)),
			expr.Lt(expr.C("ra"), expr.Flt(b.ra+30)),
			expr.Ge(expr.C("dec"), expr.Flt(b.dec)),
			expr.Lt(expr.C("r_mag"), expr.Flt(21)),
		}, rng)
		sel := plan.NewSelect(
			plan.NewScan("PhotoPrimary", "objID", "ra", "dec", "type", "r_mag"),
			expr.AndOf(conj...))
		return plan.NewAggregate(sel, []string{"type"},
			plan.A(plan.Count, nil, "n"),
			plan.A(plan.Avg, expr.C("r_mag"), "avg_r"))
	}

	return workload.Mix{
		{
			Label:  "perm-Q6",
			Weight: 3,
			Make: func(rng *rand.Rand) *plan.Node {
				return q6(q6pool[rng.Intn(len(q6pool))], rng)
			},
		},
		{
			Label:  "perm-skybox",
			Weight: 2,
			Make: func(rng *rand.Rand) *plan.Node {
				return sky(boxes[rng.Intn(len(boxes))], rng)
			},
		},
	}
}

// OptimizerMix is the optimized-vs-unoptimized comparison workload: the
// standard TPC-H + SkyServer serving mix plus the permuted near-variants.
func OptimizerMix(variants int, seed int64) workload.Mix {
	return append(MixedMix(variants, seed), PermutedMix(variants, seed)...)
}

// permute returns es in a random order drawn from rng (a copy; es is
// untouched).
func permute(es []expr.Expr, rng *rand.Rand) []expr.Expr {
	out := make([]expr.Expr, len(es))
	for i, j := range rng.Perm(len(es)) {
		out[i] = es[j]
	}
	return out
}

// ClientsReport renders a multi-client run for terminals (the shell's
// -clients mode).
func ClientsReport(res *workload.ClientsResult) string {
	rows := [][]string{
		{"clients", fmt.Sprintf("%d", res.Clients)},
		{"elapsed", fmtDur(res.Elapsed)},
		{"queries", fmt.Sprintf("%d", res.Queries)},
		{"errors", fmt.Sprintf("%d", res.Errs)},
		{"throughput", fmt.Sprintf("%.0f queries/sec", res.QPS())},
		{"latency p50", fmtDur(res.Percentile(50))},
		{"latency p95", fmtDur(res.Percentile(95))},
		{"latency p99", fmtDur(res.Percentile(99))},
	}
	if res.Writes > 0 {
		rows = append(rows,
			[]string{"writes", fmt.Sprintf("%d", res.Writes)},
			[]string{"write errors", fmt.Sprintf("%d", res.WriteErrs)})
	}
	labels := make([]string, 0, len(res.PerLabel))
	for label := range res.PerLabel {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		rows = append(rows, []string{"  " + label, fmt.Sprintf("%d", res.PerLabel[label])})
	}
	return table([]string{"metric", "value"}, rows)
}
