package harness

import (
	"fmt"
	"math/rand"
	"sort"

	"recycledb/internal/catalog"
	"recycledb/internal/plan"
	"recycledb/internal/skyserver"
	"recycledb/internal/tpch"
	"recycledb/internal/workload"
)

// This file builds query mixes for the multi-client driver
// (workload.RunClients): an online serving tier issuing TPC-H dashboard
// refreshes and SkyServer cone searches against one shared engine. Each
// pattern draws from a small pool of fixed parameter variants — exactly the
// repetition structure (identical and near-identical queries from many
// clients) that gives the recycler sharing potential.

// MixedCatalog loads TPC-H at the given scale factor and a synthetic
// SkyServer sky of skyObjects objects into one catalog.
func MixedCatalog(sf float64, skyObjects int, seed int64) *catalog.Catalog {
	cat := catalog.New()
	tpch.Generate(cat, sf, seed)
	skyserver.Load(cat, skyObjects, seed)
	return cat
}

// TPCHMix returns a weighted client mix over a subset of TPC-H patterns,
// each with a pool of `variants` fixed parameter draws. Small pools model
// the dashboard case: many clients asking the same few questions.
func TPCHMix(variants int, seed int64) workload.Mix {
	if variants <= 0 {
		variants = 4
	}
	rng := rand.New(rand.NewSource(seed))
	patterns := []struct {
		q      int
		weight int
	}{
		{1, 4}, {3, 3}, {6, 4}, {12, 2}, {14, 2},
	}
	var mix workload.Mix
	for _, pat := range patterns {
		pool := make([]tpch.Params, variants)
		for i := range pool {
			pool[i] = tpch.NewParams(pat.q, rng)
		}
		mix = append(mix, workload.MixEntry{
			Label:  fmt.Sprintf("Q%d", pat.q),
			Weight: pat.weight,
			Make: func(rng *rand.Rand) *plan.Node {
				return tpch.Build(pool[rng.Intn(len(pool))])
			},
		})
	}
	return mix
}

// SkyServerMix returns a client mix over the SkyServer workload patterns
// (dominant cone search, narrow projections, aggregations, other cones),
// weighted like the paper's log sample.
func SkyServerMix(seed int64) workload.Mix {
	pool := skyserver.Workload(64, seed)
	byPattern := make(map[string][]*plan.Node)
	var order []string
	for _, q := range pool {
		if _, ok := byPattern[q.Pattern]; !ok {
			order = append(order, q.Pattern)
		}
		byPattern[q.Pattern] = append(byPattern[q.Pattern], q.Plan)
	}
	var mix workload.Mix
	for _, pat := range order {
		plans := byPattern[pat]
		mix = append(mix, workload.MixEntry{
			Label:  pat,
			Weight: len(plans),
			Make: func(rng *rand.Rand) *plan.Node {
				return plans[rng.Intn(len(plans))]
			},
		})
	}
	return mix
}

// MixedMix combines the TPC-H and SkyServer mixes into one client workload.
func MixedMix(variants int, seed int64) workload.Mix {
	return append(TPCHMix(variants, seed), SkyServerMix(seed)...)
}

// ClientsReport renders a multi-client run for terminals (the shell's
// -clients mode).
func ClientsReport(res *workload.ClientsResult) string {
	rows := [][]string{
		{"clients", fmt.Sprintf("%d", res.Clients)},
		{"elapsed", fmtDur(res.Elapsed)},
		{"queries", fmt.Sprintf("%d", res.Queries)},
		{"errors", fmt.Sprintf("%d", res.Errs)},
		{"throughput", fmt.Sprintf("%.0f queries/sec", res.QPS())},
		{"latency p50", fmtDur(res.Percentile(50))},
		{"latency p95", fmtDur(res.Percentile(95))},
		{"latency p99", fmtDur(res.Percentile(99))},
	}
	if res.Writes > 0 {
		rows = append(rows,
			[]string{"writes", fmt.Sprintf("%d", res.Writes)},
			[]string{"write errors", fmt.Sprintf("%d", res.WriteErrs)})
	}
	labels := make([]string, 0, len(res.PerLabel))
	for label := range res.PerLabel {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		rows = append(rows, []string{"  " + label, fmt.Sprintf("%d", res.PerLabel[label])})
	}
	return table([]string{"metric", "value"}, rows)
}
