package harness

import (
	"fmt"
	"math/rand"

	"recycledb/internal/catalog"
	"recycledb/internal/monet"
	"recycledb/internal/vector"
	"recycledb/internal/workload"
)

// Churn helpers: write generators for the multi-client driver's WriteFrac
// knob, and the monet-baseline execution adapter, so the benchmarks can
// compare how both recyclers' hit rates behave under updates (lineage-based
// invalidation with append delta extension vs invalidate-all-on-write).

// SyntheticAppender returns a WriteFunc that appends n plausible rows per
// call to the named table through the epoch write path, triggering the
// engines' commit-time invalidation like any other writer. Values are
// drawn per column type from ranges wide enough to land inside typical
// predicate windows.
func SyntheticAppender(cat *catalog.Catalog, table string, n int) workload.WriteFunc {
	base := vector.MustParseDate("1995-01-01")
	return func(client int, rng *rand.Rand) error {
		t, err := cat.Table(table)
		if err != nil {
			return err
		}
		w := t.BeginWrite()
		ap := w.Appender()
		for r := 0; r < n; r++ {
			for c, col := range t.Schema {
				switch col.Typ {
				case vector.Int64:
					ap.Int64(c, rng.Int63n(100000))
				case vector.Date:
					ap.Int64(c, base+int64(rng.Intn(2000)))
				case vector.Float64:
					ap.Float64(c, rng.Float64()*10000)
				case vector.String:
					ap.String(c, fmt.Sprintf("churn-%d", rng.Intn(1000)))
				case vector.Bool:
					ap.Bool(c, rng.Intn(2) == 0)
				}
			}
			ap.FinishRow()
		}
		w.Commit()
		return nil
	}
}

// SyntheticDeleter returns a WriteFunc that deletes up to n random live
// rows of the named table per call (a non-append epoch, which forces full
// invalidation of the table's dependents).
func SyntheticDeleter(cat *catalog.Catalog, table string, n int) workload.WriteFunc {
	return func(client int, rng *rand.Rand) error {
		t, err := cat.Table(table)
		if err != nil {
			return err
		}
		snap := t.Snapshot()
		if snap.Rows == 0 {
			return nil
		}
		w := t.BeginWrite()
		for i := 0; i < n; i++ {
			w.Delete(rng.Intn(snap.Rows))
		}
		w.Commit()
		return nil
	}
}

// MixedWriter interleaves appends with occasional deletes: deleteEvery = 0
// means appends only (the delta-extension showcase); k > 0 issues one
// delete call per k writes on average.
func MixedWriter(appendW, deleteW workload.WriteFunc, deleteEvery int) workload.WriteFunc {
	return func(client int, rng *rand.Rand) error {
		if deleteEvery > 0 && rng.Intn(deleteEvery) == 0 {
			return deleteW(client, rng)
		}
		return appendW(client, rng)
	}
}

// MonetExec adapts the operator-at-a-time baseline engine to the workload
// driver. Outcome flags stay zero; hit rates come from the engine's
// recycler statistics instead.
func MonetExec(m *monet.Engine) workload.ExecFunc {
	return func(stream int, q workload.Query) (workload.Outcome, error) {
		if _, err := m.Execute(q.Plan); err != nil {
			return workload.Outcome{}, err
		}
		return workload.Outcome{}, nil
	}
}
