//go:build !race

package harness

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
