package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"recycledb"
	"recycledb/internal/tpch"
	"recycledb/internal/workload"
)

// Fig. 9: "Detailed timeline of concurrent stream execution": 8 streams
// (one per core in the paper), 6 queries each (Q1, Q8, Q13, Q18, Q19, Q21)
// in per-stream shuffled order, with speculation on and the proactive
// variants for Q1 and Q19 (here: Proactive mode, which triggers the same
// rewrites). Every query either materializes or reuses its final result;
// queries sharing an in-flight materialization stall.

// Fig9Config sizes the trace run.
type Fig9Config struct {
	SF            float64
	Streams       int
	MaxConcurrent int
	Seed          int64
}

// DefaultFig9 mirrors the paper's 8 streams x 6 queries.
func DefaultFig9() Fig9Config {
	return Fig9Config{SF: 0.01, Streams: 8, MaxConcurrent: 8, Seed: 1}
}

// Fig9Result carries the trace.
type Fig9Result struct {
	Cfg    Fig9Config
	Events []workload.Event
	Total  time.Duration
}

// RunFig9 executes the trace run.
func RunFig9(cfg Fig9Config) (*Fig9Result, error) {
	cat := LoadTPCH(TPCHConfig{SF: cfg.SF, Seed: cfg.Seed})
	eng := NewEngine(cat, recycledb.Proactive, 256<<20)
	patterns := []int{1, 8, 13, 18, 19, 21}
	streams := make([][]workload.Query, cfg.Streams)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for s := range streams {
		order := rng.Perm(len(patterns))
		for _, pi := range order {
			q := patterns[pi]
			// All streams share parameters with positive probability:
			// draw from the pattern's domain with a stream-independent
			// rng so collisions occur, as in the throughput runs.
			p := tpch.NewParams(q, rng)
			streams[s] = append(streams[s], workload.Query{
				Label: fmt.Sprintf("Q%d", q),
				Plan:  tpch.BuildPA(p),
			})
		}
	}
	run := workload.Run(streams, cfg.MaxConcurrent, EngineExec(eng))
	if run.Errs > 0 {
		return nil, fmt.Errorf("harness: %d trace queries failed", run.Errs)
	}
	return &Fig9Result{Cfg: cfg, Events: run.Events, Total: run.Total}, nil
}

// String renders the timeline: one row per query event, ordered by start
// time, with a bar over the run's duration and the paper's shading encoded
// as M (materialized result), R (reused result), B (both), S (stalled),
// - (neither).
func (r *Fig9Result) String() string {
	events := append([]workload.Event(nil), r.Events...)
	sort.Slice(events, func(a, b int) bool {
		if events[a].Stream != events[b].Stream {
			return events[a].Stream < events[b].Stream
		}
		return events[a].Begin < events[b].Begin
	})
	const width = 72
	scale := func(d time.Duration) int {
		if r.Total == 0 {
			return 0
		}
		x := int(int64(d) * int64(width) / int64(r.Total))
		if x >= width {
			x = width - 1
		}
		return x
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9 - concurrent trace: %d streams, total %s\n", r.Cfg.Streams, r.Total)
	b.WriteString("legend: M materialized, R reused, B both, S stalled, . running\n")
	for _, e := range events {
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		lo, hi := scale(e.Begin), scale(e.End)
		if hi <= lo {
			hi = lo + 1
		}
		mark := byte('.')
		switch {
		case e.Outcome.Reused && e.Outcome.Materialized:
			mark = 'B'
		case e.Outcome.Reused:
			mark = 'R'
		case e.Outcome.Materialized:
			mark = 'M'
		}
		if e.Outcome.Stalled {
			mark = 'S'
		}
		for i := lo; i < hi && i < width; i++ {
			line[i] = mark
		}
		fmt.Fprintf(&b, "s%d %-4s |%s|\n", e.Stream+1, e.Label, string(line))
	}
	// Summary counts, mirroring the paper's narrative.
	var mat, reuse, both, stall int
	for _, e := range events {
		switch {
		case e.Outcome.Reused && e.Outcome.Materialized:
			both++
		case e.Outcome.Reused:
			reuse++
		case e.Outcome.Materialized:
			mat++
		}
		if e.Outcome.Stalled {
			stall++
		}
	}
	fmt.Fprintf(&b, "summary: %d materialized-only, %d reused-only, %d both, %d stalled, %d total\n",
		mat, reuse, both, stall, len(events))
	return b.String()
}
