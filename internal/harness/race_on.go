//go:build race

package harness

// raceEnabled reports that the race detector instruments this build; the
// wall-clock assertions in the smoke tests do not hold under its overhead.
const raceEnabled = true
