// Package harness reproduces the paper's evaluation (§V): one runner per
// figure, each regenerating the rows/series the paper reports. Absolute
// numbers differ from the paper's testbed; the shapes (who wins, by what
// factor, where crossovers fall) are the reproduction target (see
// EXPERIMENTS.md).
package harness

import (
	"context"
	"fmt"
	"strings"
	"time"

	"recycledb"
	"recycledb/internal/catalog"
	"recycledb/internal/tpch"
	"recycledb/internal/workload"
)

// TPCHConfig sizes the throughput experiments.
type TPCHConfig struct {
	// SF is the TPC-H scale factor (the paper used 30; 0.01-0.1 here).
	SF float64
	// Streams are the stream counts to sweep (paper: 4, 16, 64, 256).
	Streams []int
	// MaxConcurrent is the query admission limit (paper: 12).
	MaxConcurrent int
	// CacheBytes bounds the recycler cache.
	CacheBytes int64
	Seed       int64
}

// DefaultTPCH returns a laptop-scale configuration.
func DefaultTPCH() TPCHConfig {
	return TPCHConfig{
		SF:            0.01,
		Streams:       []int{4, 16, 64, 256},
		MaxConcurrent: 12,
		CacheBytes:    256 << 20,
		Seed:          1,
	}
}

// Modes under evaluation, in the paper's order.
var Modes = []recycledb.Mode{
	recycledb.Off, recycledb.History, recycledb.Speculative, recycledb.Proactive,
}

// LoadTPCH generates the TPC-H catalog once.
func LoadTPCH(cfg TPCHConfig) *catalog.Catalog {
	cat := catalog.New()
	tpch.Generate(cat, cfg.SF, cfg.Seed)
	return cat
}

// NewEngine builds an engine in the given mode over a shared catalog.
func NewEngine(cat *catalog.Catalog, mode recycledb.Mode, cacheBytes int64) *recycledb.Engine {
	return NewEngineParallel(cat, mode, cacheBytes, 0)
}

// NewEngineParallel is NewEngine with an explicit intra-query worker
// budget (0 = GOMAXPROCS, 1 = serial).
func NewEngineParallel(cat *catalog.Catalog, mode recycledb.Mode, cacheBytes int64, parallelism int) *recycledb.Engine {
	return NewEngineFusion(cat, mode, cacheBytes, parallelism, false)
}

// NewEngineFusion is NewEngineParallel with explicit control over loop
// fusion, for fused-vs-unfused comparisons.
func NewEngineFusion(cat *catalog.Catalog, mode recycledb.Mode, cacheBytes int64, parallelism int, disableFusion bool) *recycledb.Engine {
	return NewEngineKernels(cat, mode, cacheBytes, parallelism, disableFusion, false)
}

// NewEngineKernels is NewEngineFusion with explicit control over the
// type-specialized compute kernels, for kernels-on-vs-off comparisons.
func NewEngineKernels(cat *catalog.Catalog, mode recycledb.Mode, cacheBytes int64, parallelism int, disableFusion, disableKernels bool) *recycledb.Engine {
	return recycledb.NewWithCatalog(recycledb.Config{
		Mode:           mode,
		CacheBytes:     cacheBytes,
		Parallelism:    parallelism,
		DisableFusion:  disableFusion,
		DisableKernels: disableKernels,
	}, cat)
}

// NewEngineOpt is NewEngineParallel with explicit control over the plan
// optimizer, for optimized-vs-unoptimized comparisons.
func NewEngineOpt(cat *catalog.Catalog, mode recycledb.Mode, cacheBytes int64, parallelism int, disableOptimizer bool) *recycledb.Engine {
	return recycledb.NewWithCatalog(recycledb.Config{
		Mode:             mode,
		CacheBytes:       cacheBytes,
		Parallelism:      parallelism,
		DisableOptimizer: disableOptimizer,
	}, cat)
}

// EngineExec adapts an engine to the workload driver.
func EngineExec(e *recycledb.Engine) workload.ExecFunc {
	return func(stream int, q workload.Query) (workload.Outcome, error) {
		r, err := e.ExecuteContext(context.Background(), q.Plan)
		if err != nil {
			return workload.Outcome{}, err
		}
		return workload.Outcome{
			Reused:       r.Stats.Reused > 0 || r.Stats.SubsumptionReused > 0,
			Materialized: r.Stats.Materialized > 0,
			Stalled:      r.Stats.Waits > 0,
			MatchTime:    r.Stats.Matching,
			ExecTime:     r.Stats.Execution,
		}, nil
	}
}

// TPCHStreams turns qgen streams into workload streams. In Proactive mode
// the manually altered plan variants are used where the paper used them.
func TPCHStreams(streams []tpch.Stream, mode recycledb.Mode) [][]workload.Query {
	out := make([][]workload.Query, len(streams))
	for i, s := range streams {
		qs := make([]workload.Query, len(s.Queries))
		for j, p := range s.Queries {
			var pl = tpch.Build(p)
			if mode == recycledb.Proactive {
				pl = tpch.BuildPA(p)
			}
			qs[j] = workload.Query{Label: fmt.Sprintf("Q%d", p.Q), Plan: pl}
		}
		out[i] = qs
	}
	return out
}

// fmtDur renders a duration in ms with 2 decimals.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}

// pct renders a/b as a percentage.
func pct(a, b time.Duration) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(a)/float64(b))
}

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", width[i], c)
		}
		b.WriteString("\n")
	}
	line(header)
	for i := range header {
		header[i] = strings.Repeat("-", width[i])
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
