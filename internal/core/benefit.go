package core

import (
	"math"
	"time"
)

// This file implements §III-C: the benefit metric
//
//	B(R) = cost(R) * hR / size(R)                     (Eq. 1)
//	cost(R) = bcost(R) - Σ_{j in DMDs(R)} bcost(Rj)   (Eq. 2)
//
// importance-factor maintenance on materialization/eviction (Eq. 3-4,
// Algorithm 2) and lazy exponential aging (Eq. 5). All functions here assume
// the graph write lock is held.

// foldAge lazily applies aging to n up to the global sequence seq:
// h_t = h_{t-1} * alpha per query (Eq. 5), folded in one step.
func foldAge(n *Node, seq uint64, alpha float64) {
	if n.ageSeq >= seq || alpha >= 1 {
		n.ageSeq = seq
		return
	}
	n.hr *= math.Pow(alpha, float64(seq-n.ageSeq))
	n.ageSeq = seq
}

// addRef increments the node's importance factor by one reference.
func addRef(n *Node, seq uint64, alpha float64) {
	foldAge(n, seq, alpha)
	n.hr++
}

// HR returns the node's current (aged) importance factor.
func (n *Node) hrAt(seq uint64, alpha float64) float64 {
	foldAge(n, seq, alpha)
	if n.hr < 0 {
		return 0
	}
	return n.hr
}

// dmdBaseCost sums the base costs of the direct materialized descendants of
// n: materialized descendants with no materialized node in between (§III-C).
// The DAG may share subtrees; each DMD counts once.
func dmdBaseCost(n *Node) time.Duration {
	seen := make(map[*Node]struct{})
	var total time.Duration
	var walk func(m *Node)
	walk = func(m *Node) {
		if _, ok := seen[m]; ok {
			return
		}
		seen[m] = struct{}{}
		if m.cached != nil {
			total += m.baseCost
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	for _, c := range n.Children {
		walk(c)
	}
	return total
}

// trueCost computes Eq. 2. The true cost is recomputed on demand from the
// stored base costs rather than stored, as the paper prescribes (cheap, and
// avoids graph-wide updates when cache contents change).
func trueCost(n *Node) time.Duration {
	c := n.baseCost - dmdBaseCost(n)
	if c < 0 {
		c = 0
	}
	return c
}

// benefit computes Eq. 1 with an explicit hr (callers pass either the aged
// importance factor or the speculation constant) and size in bytes.
func benefitOf(cost time.Duration, hr float64, size int64) float64 {
	if size <= 0 {
		size = 1
	}
	return cost.Seconds() * hr / float64(size)
}

// BenefitValue exposes Eq. 1 for callers that estimate cost and size at
// run time (speculation, §III-D).
func BenefitValue(cost time.Duration, hr float64, size int64) float64 {
	return benefitOf(cost, hr, size)
}

// updateHROnAdd implements Algorithm 2 / Eq. 3: when node n's result is
// added to the cache, every DMD and potential DMD below it loses the
// references that will now be served by n.
func updateHROnAdd(n *Node, seq uint64, alpha float64) {
	foldAge(n, seq, alpha)
	delta := n.hr
	for _, c := range n.Children {
		updateHR(c, -delta, seq, alpha, make(map[*Node]struct{}))
	}
}

// updateHROnEvict implements Eq. 4: when node n's result is evicted, its
// DMDs and potential DMDs regain those references.
func updateHROnEvict(n *Node, seq uint64, alpha float64) {
	foldAge(n, seq, alpha)
	delta := n.hr
	for _, c := range n.Children {
		updateHR(c, delta, seq, alpha, make(map[*Node]struct{}))
	}
}

// updateHR adjusts hR by delta, stopping below materialized results
// (Algorithm 2, generalized to the shared DAG with a visited set).
func updateHR(m *Node, delta float64, seq uint64, alpha float64, seen map[*Node]struct{}) {
	if _, ok := seen[m]; ok {
		return
	}
	seen[m] = struct{}{}
	foldAge(m, seq, alpha)
	m.hr += delta
	if m.hr < 0 {
		m.hr = 0
	}
	if m.cached != nil {
		return
	}
	for _, c := range m.Children {
		updateHR(c, delta, seq, alpha, seen)
	}
}
