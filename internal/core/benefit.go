package core

import (
	"math"
	"time"
)

// This file implements §III-C: the benefit metric
//
//	B(R) = cost(R) * hR / size(R)                     (Eq. 1)
//	cost(R) = bcost(R) - Σ_{j in DMDs(R)} bcost(Rj)   (Eq. 2)
//
// importance-factor maintenance on materialization/eviction (Eq. 3-4,
// Algorithm 2) and lazy exponential aging (Eq. 5).
//
// Locking: the *Locked suffix means the caller holds the node's mutex; all
// other functions lock the node mutexes they touch, one node at a time
// (node mutexes are leaf locks, so the DAG walks here cannot deadlock, at
// the price of slight interleaving drift between concurrent walks — hR is
// a heuristic, not an invariant).

// foldAgeLocked lazily applies aging to n up to the global sequence seq:
// h_t = h_{t-1} * alpha per query (Eq. 5), folded in one step. n.mu held.
func foldAgeLocked(n *Node, seq uint64, alpha float64) {
	if n.ageSeq >= seq || alpha >= 1 {
		n.ageSeq = seq
		return
	}
	n.hr *= math.Pow(alpha, float64(seq-n.ageSeq))
	n.ageSeq = seq
}

// addRef increments the node's importance factor by one reference.
func addRef(n *Node, seq uint64, alpha float64) {
	n.mu.Lock()
	foldAgeLocked(n, seq, alpha)
	n.hr++
	n.mu.Unlock()
}

// hrAtLocked returns the node's current (aged) importance factor. n.mu held.
func (n *Node) hrAtLocked(seq uint64, alpha float64) float64 {
	foldAgeLocked(n, seq, alpha)
	if n.hr < 0 {
		return 0
	}
	return n.hr
}

// hrAt is hrAtLocked with internal locking.
func (n *Node) hrAt(seq uint64, alpha float64) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hrAtLocked(seq, alpha)
}

// dmdBaseCost sums the base costs of the direct materialized descendants of
// n: materialized descendants with no materialized node in between (§III-C).
// The DAG may share subtrees; each DMD counts once.
func dmdBaseCost(n *Node) time.Duration {
	seen := make(map[*Node]struct{})
	var total time.Duration
	var walk func(m *Node)
	walk = func(m *Node) {
		if _, ok := seen[m]; ok {
			return
		}
		seen[m] = struct{}{}
		if m.cached.Load() != nil {
			m.mu.Lock()
			total += m.baseCost
			m.mu.Unlock()
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	for _, c := range n.Children {
		walk(c)
	}
	return total
}

// trueCost computes Eq. 2. The true cost is recomputed on demand from the
// stored base costs rather than stored, as the paper prescribes (cheap, and
// avoids graph-wide updates when cache contents change).
func trueCost(n *Node) time.Duration {
	n.mu.Lock()
	bc := n.baseCost
	n.mu.Unlock()
	c := bc - dmdBaseCost(n)
	if c < 0 {
		c = 0
	}
	return c
}

// benefit computes Eq. 1 with an explicit hr (callers pass either the aged
// importance factor or the speculation constant) and size in bytes.
func benefitOf(cost time.Duration, hr float64, size int64) float64 {
	if size <= 0 {
		size = 1
	}
	return cost.Seconds() * hr / float64(size)
}

// BenefitValue exposes Eq. 1 for callers that estimate cost and size at
// run time (speculation, §III-D).
func BenefitValue(cost time.Duration, hr float64, size int64) float64 {
	return benefitOf(cost, hr, size)
}

// updateHROnAdd implements Algorithm 2 / Eq. 3: when node n's result is
// added to the cache, every DMD and potential DMD below it loses the
// references that will now be served by n.
func updateHROnAdd(n *Node, seq uint64, alpha float64) {
	n.mu.Lock()
	foldAgeLocked(n, seq, alpha)
	delta := n.hr
	n.mu.Unlock()
	for _, c := range n.Children {
		updateHR(c, -delta, seq, alpha, make(map[*Node]struct{}))
	}
}

// updateHROnEvict implements Eq. 4: when node n's result is evicted, its
// DMDs and potential DMDs regain those references.
func updateHROnEvict(n *Node, seq uint64, alpha float64) {
	n.mu.Lock()
	foldAgeLocked(n, seq, alpha)
	delta := n.hr
	n.mu.Unlock()
	for _, c := range n.Children {
		updateHR(c, delta, seq, alpha, make(map[*Node]struct{}))
	}
}

// updateHR adjusts hR by delta, stopping below materialized results
// (Algorithm 2, generalized to the shared DAG with a visited set).
func updateHR(m *Node, delta float64, seq uint64, alpha float64, seen map[*Node]struct{}) {
	if _, ok := seen[m]; ok {
		return
	}
	seen[m] = struct{}{}
	m.mu.Lock()
	foldAgeLocked(m, seq, alpha)
	m.hr += delta
	if m.hr < 0 {
		m.hr = 0
	}
	m.mu.Unlock()
	if m.cached.Load() != nil {
		return
	}
	for _, c := range m.Children {
		updateHR(c, delta, seq, alpha, seen)
	}
}
