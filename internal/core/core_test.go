package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"recycledb/internal/catalog"
	"recycledb/internal/expr"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

func testCatalog() *catalog.Catalog {
	cat := catalog.New()
	t := catalog.NewTable("t", catalog.Schema{
		{Name: "a", Typ: vector.Int64},
		{Name: "b", Typ: vector.Float64},
		{Name: "c", Typ: vector.String},
		{Name: "d", Typ: vector.Date},
	})
	for i := 0; i < 10; i++ {
		t.AppendRows([]vector.Datum{
			vector.NewInt64Datum(int64(i)),
			vector.NewFloat64Datum(float64(i)),
			vector.NewStringDatum("x"),
			vector.NewDateDatum(int64(i)),
		})
	}
	cat.AddTable(t)
	return cat
}

// mustResolve resolves a plan against the test catalog.
func mustResolve(t *testing.T, cat *catalog.Catalog, n *plan.Node) *plan.Node {
	t.Helper()
	if err := n.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	return n
}

// selPlan builds select(a < hi) over scan(t;a,b).
func selPlan(t *testing.T, cat *catalog.Catalog, hi int64) *plan.Node {
	p := plan.NewSelect(plan.NewScan("t", "a", "b"),
		expr.Lt(expr.C("a"), expr.Int(hi)))
	return mustResolve(t, cat, p)
}

func TestMatchInsertThenExactMatch(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	p1 := selPlan(t, cat, 5)
	res1 := r.MatchInsert(p1)
	if res1.Inserted != 2 || res1.Matched != 0 {
		t.Fatalf("first: inserted=%d matched=%d", res1.Inserted, res1.Matched)
	}
	p2 := selPlan(t, cat, 5)
	res2 := r.MatchInsert(p2)
	if res2.Inserted != 0 || res2.Matched != 2 {
		t.Fatalf("second: inserted=%d matched=%d", res2.Inserted, res2.Matched)
	}
	if r.Graph().Size() != 2 {
		t.Fatalf("graph size = %d", r.Graph().Size())
	}
	// Same graph nodes.
	if res1.ByNode[p1].G != res2.ByNode[p2].G {
		t.Fatal("roots not unified")
	}
}

func TestMatchDistinguishesParameters(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	r.MatchInsert(selPlan(t, cat, 5))
	res := r.MatchInsert(selPlan(t, cat, 6))
	if res.Inserted != 1 || res.Matched != 1 {
		t.Fatalf("inserted=%d matched=%d", res.Inserted, res.Matched)
	}
	if r.Graph().Size() != 3 {
		t.Fatalf("graph size = %d", r.Graph().Size())
	}
}

func TestMatchUnifiesAcrossOutputNames(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	agg1 := mustResolve(t, cat, plan.NewAggregate(plan.NewScan("t", "a", "b"),
		[]string{"a"}, plan.A(plan.Sum, expr.C("b"), "alpha")))
	agg2 := mustResolve(t, cat, plan.NewAggregate(plan.NewScan("t", "a", "b"),
		[]string{"a"}, plan.A(plan.Sum, expr.C("b"), "beta")))
	r.MatchInsert(agg1)
	res := r.MatchInsert(agg2)
	if res.Inserted != 0 {
		t.Fatalf("same aggregation with different alias must unify; inserted=%d", res.Inserted)
	}
	// The mapping must map beta to the graph name created for alpha.
	nm := res.ByNode[agg2]
	if nm.OutMap["beta"] == "" || nm.OutMap["beta"] == "beta" {
		t.Fatalf("OutMap = %v", nm.OutMap)
	}
}

func TestMatchMappingThroughRenamedColumns(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	// Project renames b to v1/v2; a select above references the renamed
	// column. The two query trees are the same operation.
	build := func(alias string) *plan.Node {
		pr := plan.NewProject(plan.NewScan("t", "a", "b"),
			plan.P(expr.C("a"), "k"),
			plan.P(expr.Mul(expr.C("b"), expr.Flt(2)), alias))
		sel := plan.NewSelect(pr, expr.Gt(expr.C(alias), expr.Flt(1)))
		return mustResolve(t, cat, sel)
	}
	r.MatchInsert(build("v1"))
	res := r.MatchInsert(build("v2"))
	if res.Inserted != 0 {
		t.Fatalf("renamed-column trees must unify; inserted=%d", res.Inserted)
	}
}

func TestSharedSubtreeUnified(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	r.MatchInsert(selPlan(t, cat, 5))
	// A different parent over the same select subtree.
	agg := mustResolve(t, cat, plan.NewAggregate(
		plan.NewSelect(plan.NewScan("t", "a", "b"), expr.Lt(expr.C("a"), expr.Int(5))),
		nil, plan.A(plan.Count, nil, "c")))
	res := r.MatchInsert(agg)
	if res.Matched != 2 || res.Inserted != 1 {
		t.Fatalf("matched=%d inserted=%d", res.Matched, res.Inserted)
	}
}

func TestAddRefsIncrementsExistedOnly(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	p1 := selPlan(t, cat, 5)
	r.BeginQuery()
	m1 := r.MatchInsert(p1)
	r.AddRefs(p1, m1)
	// Nothing existed before the first query: hr stays 0.
	if hr := r.HR(m1.ByNode[p1].G); hr != 0 {
		t.Fatalf("hr after first query = %v", hr)
	}
	p2 := selPlan(t, cat, 5)
	r.BeginQuery()
	m2 := r.MatchInsert(p2)
	r.AddRefs(p2, m2)
	if hr := r.HR(m2.ByNode[p2].G); hr < 0.9 {
		t.Fatalf("hr after second query = %v, want ~1", hr)
	}
}

func TestAddRefsSkipsBelowMaterialized(t *testing.T) {
	cat := testCatalog()
	cfg := DefaultConfig()
	cfg.Alpha = 1 // no aging, exact arithmetic
	r := New(cfg)
	p1 := selPlan(t, cat, 5)
	r.BeginQuery()
	m1 := r.MatchInsert(p1)
	r.AddRefs(p1, m1)
	sel := m1.ByNode[p1].G
	scan := m1.ByNode[p1.Children[0]].G

	// Materialize the select's result.
	b := vector.NewBatch([]vector.Type{vector.Int64, vector.Float64}, 1)
	b.Vecs[0].AppendInt64(1)
	b.Vecs[1].AppendFloat64(1)
	r.UpdateStats(sel, time.Millisecond, 1, 16)
	if !r.Admit(sel, []*vector.Batch{b}, 1, 16, time.Millisecond, -1) {
		t.Fatal("admit failed")
	}
	// Re-run the query: the select gets a ref, the scan must NOT (its
	// result would not be used; the cached select answers the query).
	p2 := selPlan(t, cat, 5)
	r.BeginQuery()
	m2 := r.MatchInsert(p2)
	r.AddRefs(p2, m2)
	if hr := r.HR(sel); hr != 1 {
		t.Fatalf("hr(sel) = %v, want 1", hr)
	}
	if hr := r.HR(scan); hr != 0 {
		t.Fatalf("hr(scan) = %v, want 0 (covered by materialized ancestor)", hr)
	}
}

// TestHRMaintenanceFig3 reproduces the paper's Fig. 3 walk-through: with
// sigma4 above sigma3, materializing sigma4 reduces h(sigma3) by h(sigma4);
// materializing pi5 (a parent of sigma4) then reduces h(sigma4) by h(pi5);
// h(sigma3) is unaffected by the second materialization.
func TestHRMaintenanceFig3(t *testing.T) {
	cat := testCatalog()
	cfg := DefaultConfig()
	cfg.Alpha = 1
	r := New(cfg)

	sigma3 := plan.NewSelect(plan.NewScan("t", "a", "b"), expr.Lt(expr.C("a"), expr.Int(100)))
	sigma4 := plan.NewSelect(sigma3, expr.Lt(expr.C("b"), expr.Flt(50)))
	pi5 := plan.NewProject(sigma4, plan.P(expr.C("a"), "a5"))
	root := mustResolve(t, cat, pi5)

	// Insert once, then reference the full tree 5 times and pi5 2 of
	// those times is implicit (single pattern here); set hr values
	// directly through repeated AddRefs of the same tree.
	r.BeginQuery()
	m := r.MatchInsert(root)
	r.AddRefs(root, m)
	for i := 0; i < 5; i++ {
		p := mustResolve(t, cat, plan.NewProject(
			plan.NewSelect(
				plan.NewSelect(plan.NewScan("t", "a", "b"), expr.Lt(expr.C("a"), expr.Int(100))),
				expr.Lt(expr.C("b"), expr.Flt(50))),
			plan.P(expr.C("a"), "a5")))
		r.BeginQuery()
		mm := r.MatchInsert(p)
		r.AddRefs(p, mm)
	}
	gSigma3 := m.ByNode[root.Children[0].Children[0]].G
	gSigma4 := m.ByNode[root.Children[0]].G
	gPi5 := m.ByNode[root].G
	h3, h4, h5 := r.HR(gSigma3), r.HR(gSigma4), r.HR(gPi5)
	if h3 != 5 || h4 != 5 || h5 != 5 {
		t.Fatalf("initial hr = %v %v %v, want 5 5 5", h3, h4, h5)
	}

	oneRow := func() []*vector.Batch {
		b := vector.NewBatch([]vector.Type{vector.Int64}, 1)
		b.Vecs[0].AppendInt64(1)
		return []*vector.Batch{b}
	}
	// Materialize sigma4: h(sigma3) -= h(sigma4) => 0.
	r.UpdateStats(gSigma4, time.Millisecond, 1, 8)
	if !r.Admit(gSigma4, oneRow(), 1, 8, time.Millisecond, -1) {
		t.Fatal("admit sigma4 failed")
	}
	if got := r.HR(gSigma3); got != 0 {
		t.Fatalf("h(sigma3) after sigma4 materialized = %v, want 0", got)
	}
	// Materialize pi5: h(sigma4) -= h(pi5) => 0; sigma3 unaffected.
	r.UpdateStats(gPi5, time.Millisecond, 1, 8)
	if !r.Admit(gPi5, oneRow(), 1, 8, time.Millisecond, -1) {
		t.Fatal("admit pi5 failed")
	}
	if got := r.HR(gSigma4); got != 0 {
		t.Fatalf("h(sigma4) after pi5 materialized = %v, want 0", got)
	}
	if got := r.HR(gSigma3); got != 0 {
		t.Fatalf("h(sigma3) must remain 0, got %v", got)
	}
	// Evict pi5: h(sigma4) += h(pi5) => 5 again; sigma3 still covered by
	// sigma4, stays 0.
	r.Evict(gPi5)
	if got := r.HR(gSigma4); got != 5 {
		t.Fatalf("h(sigma4) after pi5 evicted = %v, want 5", got)
	}
	if got := r.HR(gSigma3); got != 0 {
		t.Fatalf("h(sigma3) after pi5 evicted = %v, want 0", got)
	}
	// Evict sigma4: h(sigma3) += h(sigma4) => 5.
	r.Evict(gSigma4)
	if got := r.HR(gSigma3); got != 5 {
		t.Fatalf("h(sigma3) after sigma4 evicted = %v, want 5", got)
	}
}

func TestTrueCostSubtractsDMDs(t *testing.T) {
	cat := testCatalog()
	cfg := DefaultConfig()
	cfg.Alpha = 1
	r := New(cfg)
	root := selPlan(t, cat, 5)
	r.BeginQuery()
	m := r.MatchInsert(root)
	sel := m.ByNode[root].G
	scan := m.ByNode[root.Children[0]].G
	r.UpdateStats(scan, 40*time.Millisecond, 10, 80)
	r.UpdateStats(sel, 100*time.Millisecond, 5, 40)
	if got := r.TrueCost(sel); got != 100*time.Millisecond {
		t.Fatalf("true cost without DMDs = %v", got)
	}
	b := vector.NewBatch([]vector.Type{vector.Int64, vector.Float64}, 1)
	b.Vecs[0].AppendInt64(1)
	b.Vecs[1].AppendFloat64(1)
	if !r.Admit(scan, []*vector.Batch{b}, 10, 80, 40*time.Millisecond, 1) {
		t.Fatal("admit scan failed")
	}
	if got := r.TrueCost(sel); got != 60*time.Millisecond {
		t.Fatalf("true cost with scan cached = %v, want 60ms", got)
	}
}

func TestAging(t *testing.T) {
	cat := testCatalog()
	cfg := DefaultConfig()
	cfg.Alpha = 0.5
	r := New(cfg)
	p := selPlan(t, cat, 5)
	r.BeginQuery()
	m := r.MatchInsert(p)
	r.AddRefs(p, m)
	p2 := selPlan(t, cat, 5)
	r.BeginQuery()
	m2 := r.MatchInsert(p2)
	r.AddRefs(p2, m2)
	g := m2.ByNode[p2].G
	if hr := r.HR(g); hr != 1 {
		t.Fatalf("hr = %v, want 1", hr)
	}
	// Four queries later the reference decays by alpha^4.
	for i := 0; i < 4; i++ {
		r.BeginQuery()
	}
	if hr := r.HR(g); hr != 1.0/16 {
		t.Fatalf("aged hr = %v, want 1/16", hr)
	}
}

func TestBenefitFormula(t *testing.T) {
	cat := testCatalog()
	cfg := DefaultConfig()
	cfg.Alpha = 1
	r := New(cfg)
	p := selPlan(t, cat, 5)
	r.BeginQuery()
	m := r.MatchInsert(p)
	r.AddRefs(p, m)
	p2 := selPlan(t, cat, 5)
	r.BeginQuery()
	m2 := r.MatchInsert(p2)
	r.AddRefs(p2, m2) // hr = 1
	g := m2.ByNode[p2].G
	r.UpdateStats(g, 2*time.Second, 100, 1000)
	// B = cost * hr / size = 2 * 1 / 1000.
	if got := r.Benefit(g); got != 2.0/1000 {
		t.Fatalf("benefit = %v, want 0.002", got)
	}
}

func TestCacheReplacementPolicy(t *testing.T) {
	cat := testCatalog()
	cfg := DefaultConfig()
	cfg.Alpha = 1
	cfg.CacheBytes = 100
	r := New(cfg)

	mk := func(hi int64, cost time.Duration) *Node {
		p := selPlan(t, cat, hi)
		r.BeginQuery()
		m := r.MatchInsert(p)
		r.AddRefs(p, m)
		// Second occurrence earns a reference.
		p2 := selPlan(t, cat, hi)
		r.BeginQuery()
		m2 := r.MatchInsert(p2)
		r.AddRefs(p2, m2)
		g := m2.ByNode[p2].G
		r.UpdateStats(g, cost, 5, 40)
		return g
	}
	row := func() []*vector.Batch {
		b := vector.NewBatch([]vector.Type{vector.Int64}, 1)
		b.Vecs[0].AppendInt64(1)
		return []*vector.Batch{b}
	}
	cheap := mk(1, 10*time.Millisecond)
	costly := mk(2, 10*time.Second)
	if !r.Admit(cheap, row(), 5, 40, 10*time.Millisecond, -1) {
		t.Fatal("admit cheap failed")
	}
	if !r.Admit(costly, row(), 5, 40, 10*time.Second, -1) {
		// 40 + 40 <= 100: fits without eviction.
		t.Fatal("admit costly failed")
	}
	// Third entry of the same size group: must evict the cheap one.
	mid := mk(3, 1*time.Second)
	if !r.Admit(mid, row(), 5, 40, time.Second, -1) {
		t.Fatal("admit mid failed")
	}
	st := r.Stats()
	if st.CacheEntries != 2 {
		t.Fatalf("entries = %d, want 2", st.CacheEntries)
	}
	if r.Cached(cheap) != nil {
		t.Fatal("cheap entry should have been evicted")
	}
	e := r.Cached(costly)
	if e == nil {
		t.Fatal("costly entry should survive")
	}
	r.Release(e)
	// A low-benefit result must be rejected rather than evicting better.
	low := mk(4, time.Nanosecond)
	if r.Admit(low, row(), 5, 40, time.Nanosecond, -1) {
		t.Fatal("low-benefit result should be rejected")
	}
}

func TestCacheRejectsOversized(t *testing.T) {
	cat := testCatalog()
	cfg := DefaultConfig()
	cfg.CacheBytes = 10
	r := New(cfg)
	p := selPlan(t, cat, 5)
	r.BeginQuery()
	m := r.MatchInsert(p)
	g := m.ByNode[p].G
	r.UpdateStats(g, time.Second, 5, 40)
	if r.Admit(g, nil, 5, 40, time.Second, 1) {
		t.Fatal("oversized result must be rejected")
	}
}

func TestPinPreventsEviction(t *testing.T) {
	cat := testCatalog()
	cfg := DefaultConfig()
	cfg.Alpha = 1
	cfg.CacheBytes = 50
	r := New(cfg)
	p := selPlan(t, cat, 5)
	r.BeginQuery()
	m := r.MatchInsert(p)
	g := m.ByNode[p].G
	r.UpdateStats(g, time.Millisecond, 5, 40)
	if !r.Admit(g, nil, 5, 40, time.Millisecond, 1) {
		t.Fatal("admit failed")
	}
	e := r.Cached(g) // pins
	if e == nil {
		t.Fatal("no entry")
	}
	r.FlushCache()
	if r.Stats().CacheEntries != 1 {
		t.Fatal("pinned entry must survive flush")
	}
	r.Release(e)
	r.FlushCache()
	if r.Stats().CacheEntries != 0 {
		t.Fatal("flush after release must evict")
	}
}

func TestWouldAdmit(t *testing.T) {
	cat := testCatalog()
	cfg := DefaultConfig()
	cfg.CacheBytes = 100
	r := New(cfg)
	p := selPlan(t, cat, 5)
	g := r.MatchInsert(p).ByNode[p].G
	if !r.WouldAdmit(g, 0.5, 40) {
		t.Fatal("empty cache must admit")
	}
	if r.WouldAdmit(g, 0.5, 200) {
		t.Fatal("oversized must not admit")
	}
	if r.WouldAdmit(g, 0.5, 0) {
		t.Fatal("zero size is invalid")
	}
}

func TestConcurrentMatchInsertUnifies(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p := plan.NewSelect(plan.NewScan("t", "a", "b"),
					expr.Lt(expr.C("a"), expr.Int(int64(i%5))))
				if err := p.Resolve(cat); err != nil {
					t.Error(err)
					return
				}
				r.BeginQuery()
				m := r.MatchInsert(p)
				r.AddRefs(p, m)
			}
		}()
	}
	wg.Wait()
	// 1 scan + 5 distinct selects regardless of concurrency.
	if got := r.Graph().Size(); got != 6 {
		t.Fatalf("graph size = %d, want 6", got)
	}
}

func TestInflightProducerAndWaiter(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	p := selPlan(t, cat, 5)
	r.BeginQuery()
	m := r.MatchInsert(p)
	g := m.ByNode[p].G
	if !r.BeginInflight(g) {
		t.Fatal("first BeginInflight must win")
	}
	if r.BeginInflight(g) {
		t.Fatal("second BeginInflight must lose")
	}
	if !r.Inflight(g) {
		t.Fatal("Inflight should report true")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		e, ok := r.WaitInflight(g, time.Second)
		if !ok || e == nil {
			t.Error("waiter should obtain the result")
			return
		}
		r.Release(e)
	}()
	time.Sleep(10 * time.Millisecond)
	r.UpdateStats(g, time.Millisecond, 1, 8)
	b := vector.NewBatch([]vector.Type{vector.Int64, vector.Float64}, 1)
	b.Vecs[0].AppendInt64(1)
	b.Vecs[1].AppendFloat64(1)
	if !r.Admit(g, []*vector.Batch{b}, 1, 8, time.Millisecond, 1) {
		t.Fatal("admit failed")
	}
	r.FinishInflight(g)
	<-done
	if r.Inflight(g) {
		t.Fatal("inflight must be cleared")
	}
}

func TestInflightTimeout(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	p := selPlan(t, cat, 5)
	r.BeginQuery()
	m := r.MatchInsert(p)
	g := m.ByNode[p].G
	r.BeginInflight(g)
	start := time.Now()
	_, ok := r.WaitInflight(g, 20*time.Millisecond)
	if ok {
		t.Fatal("timeout wait must fail")
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("wait returned too early")
	}
	r.FinishInflight(g)
}

func TestInflightContextCancel(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	p := selPlan(t, cat, 5)
	r.BeginQuery()
	m := r.MatchInsert(p)
	g := m.ByNode[p].G
	r.BeginInflight(g)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, ok := r.WaitInflightCtx(ctx, g, time.Minute)
	if ok {
		t.Fatal("ctx-canceled wait must fail")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("cancellation did not cut the stall short")
	}
	r.FinishInflight(g)
}

func TestFinishInflightWithoutSuccess(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	p := selPlan(t, cat, 5)
	r.BeginQuery()
	m := r.MatchInsert(p)
	g := m.ByNode[p].G
	r.BeginInflight(g)
	go func() {
		time.Sleep(5 * time.Millisecond)
		r.FinishInflight(g)
	}()
	if _, ok := r.WaitInflight(g, time.Second); ok {
		t.Fatal("cancelled materialization must not be reusable")
	}
}

func TestEstimateResultBytes(t *testing.T) {
	n := &Node{OutTypes: []vector.Type{vector.Int64, vector.String}}
	got := EstimateResultBytes(n, 10)
	if got != 10*(8+16+16) {
		t.Fatalf("estimate = %d", got)
	}
	if EstimateResultBytes(n, -1) != -1 {
		t.Fatal("unknown cardinality must return -1")
	}
}

func TestStatsSnapshot(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	p := selPlan(t, cat, 5)
	r.BeginQuery()
	m := r.MatchInsert(p)
	r.AddRefs(p, m)
	s := r.Stats()
	if s.Queries != 1 || s.NodesInserted != 2 || s.GraphNodes != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MatchTime <= 0 {
		t.Fatal("match time not recorded")
	}
}

func TestTruncateRemovesStaleSubtrees(t *testing.T) {
	cat := testCatalog()
	cfg := DefaultConfig()
	cfg.Alpha = 1
	r := New(cfg)
	// Insert two distinct queries, then advance the clock and touch only
	// the second.
	p1 := selPlan(t, cat, 5)
	r.BeginQuery()
	m1 := r.MatchInsert(p1)
	r.AddRefs(p1, m1)
	p2 := selPlan(t, cat, 6)
	r.BeginQuery()
	m2 := r.MatchInsert(p2)
	r.AddRefs(p2, m2)
	for i := 0; i < 10; i++ {
		r.BeginQuery()
		pp := selPlan(t, cat, 6)
		mm := r.MatchInsert(pp)
		r.AddRefs(pp, mm)
	}
	before := r.Graph().Size() // scan + 2 selects
	if before != 3 {
		t.Fatalf("graph size = %d", before)
	}
	// Cut off everything not referenced in the last 5 queries: the stale
	// select (a<5) goes; the shared scan stays (touched via p2's AddRefs
	// ancestry? the scan is referenced by the live select, so it has a
	// surviving parent and must stay).
	removed := r.Graph().Truncate(r.curSeq() - 5)
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if r.Graph().Size() != 2 {
		t.Fatalf("graph size after truncate = %d", r.Graph().Size())
	}
	// The surviving query still matches without re-insertion.
	p3 := selPlan(t, cat, 6)
	r.BeginQuery()
	m3 := r.MatchInsert(p3)
	if m3.Inserted != 0 {
		t.Fatal("survivor was damaged by truncation")
	}
	// The removed query can be re-inserted cleanly.
	p4 := selPlan(t, cat, 5)
	r.BeginQuery()
	m4 := r.MatchInsert(p4)
	if m4.Inserted != 1 || m4.Matched != 1 {
		t.Fatalf("re-insert after truncate: %+v", m4)
	}
}

func TestTruncateSparesCachedNodes(t *testing.T) {
	cat := testCatalog()
	cfg := DefaultConfig()
	cfg.Alpha = 1
	r := New(cfg)
	p := selPlan(t, cat, 5)
	r.BeginQuery()
	m := r.MatchInsert(p)
	g := m.ByNode[p].G
	r.UpdateStats(g, time.Millisecond, 1, 8)
	b := vector.NewBatch([]vector.Type{vector.Int64, vector.Float64}, 1)
	b.Vecs[0].AppendInt64(1)
	b.Vecs[1].AppendFloat64(1)
	if !r.Admit(g, []*vector.Batch{b}, 1, 8, time.Millisecond, 1) {
		t.Fatal("admit failed")
	}
	for i := 0; i < 10; i++ {
		r.BeginQuery()
	}
	if removed := r.Graph().Truncate(r.curSeq()); removed != 0 {
		t.Fatalf("cached subtree must survive truncation, removed %d", removed)
	}
}
