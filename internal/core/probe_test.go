package core

import (
	"testing"
	"time"

	"recycledb/internal/vector"
)

func TestProbeMissOnUnseenShape(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	r.MatchInsert(selPlan(t, cat, 5))
	// A different parameter is a different shape: probe must miss without
	// inserting anything.
	before := r.Graph().Size()
	if _, ok := r.Probe(selPlan(t, cat, 6), nil); ok {
		t.Fatal("probe matched a never-seen shape")
	}
	if got := r.Graph().Size(); got != before {
		t.Fatalf("probe mutated the graph: %d -> %d nodes", before, got)
	}
}

func TestProbeReportsStatsCachedInflight(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	p := selPlan(t, cat, 5)
	res := r.MatchInsert(p)
	g := res.ByNode[p].G

	info, ok := r.Probe(selPlan(t, cat, 5), nil)
	if !ok || info.Node != g {
		t.Fatalf("probe missed the inserted shape (ok=%v)", ok)
	}
	if info.CostKnown || info.Cached || info.Inflight {
		t.Fatalf("fresh node reports state: %+v", info)
	}

	r.UpdateStats(g, 42*time.Millisecond, 7, 128)
	if !r.BeginInflight(g) {
		t.Fatal("BeginInflight refused")
	}
	info, _ = r.Probe(selPlan(t, cat, 5), nil)
	if !info.CostKnown || info.BaseCost != 42*time.Millisecond || info.Card != 7 {
		t.Fatalf("measured stats not reported: %+v", info)
	}
	if !info.Inflight {
		t.Fatal("in-flight producer not reported")
	}
	r.FinishInflight(g)

	b := vector.NewBatch([]vector.Type{vector.Int64, vector.Float64}, 1)
	if !r.Admit(g, []*vector.Batch{b}, 7, 128, 42*time.Millisecond, -1) {
		t.Fatal("admit refused")
	}
	reusesBefore := r.Stats().Reuses
	info, _ = r.Probe(selPlan(t, cat, 5), nil)
	if !info.Cached || info.CachedRows != 7 || info.CachedBytes != 128 {
		t.Fatalf("cached result not reported: %+v", info)
	}
	if info.Inflight {
		t.Fatal("cached entry also reported in-flight")
	}
	if got := r.Stats().Reuses; got != reusesBefore {
		t.Fatalf("probe bumped the reuse counter: %d -> %d", reusesBefore, got)
	}
	if e := g.cached.Load(); e == nil || e.Pins() != 0 {
		t.Fatalf("probe left the entry pinned")
	}

	// A validator that rejects the entry turns Cached off.
	info, _ = r.Probe(selPlan(t, cat, 5), func(*Entry) bool { return false })
	if info.Cached {
		t.Fatal("rejected entry still reported cached")
	}
}

func TestEntrySnapValid(t *testing.T) {
	e := &Entry{Snap: map[string]TableSnap{"t": {Ver: 3}}}
	live := func(string) (int64, bool) { return 0, false }

	if v, s := EntrySnapValid(&Entry{}, nil, 0, live); !v || s {
		t.Fatalf("untagged entry: valid=%v stale=%v", v, s)
	}
	if v, s := EntrySnapValid(e, map[string]TableSnap{"t": {Ver: 3}}, 0, live); !v || s {
		t.Fatalf("matching tag: valid=%v stale=%v", v, s)
	}
	if v, s := EntrySnapValid(e, map[string]TableSnap{"t": {Ver: 5}}, 0, live); v || !s {
		t.Fatalf("older tag: valid=%v stale=%v", v, s)
	}
	if v, s := EntrySnapValid(e, map[string]TableSnap{"t": {Ver: 2}}, 0, live); v || s {
		t.Fatalf("newer tag: valid=%v stale=%v (fresher entries are not stale)", v, s)
	}
	// Table outside the capture falls back to live; unknown tables are stale.
	if v, s := EntrySnapValid(e, map[string]TableSnap{"u": {Ver: 1}}, 0, live); v || !s {
		t.Fatalf("unknown live table: valid=%v stale=%v", v, s)
	}
	liveAt := func(ver int64) func(string) (int64, bool) {
		return func(string) (int64, bool) { return ver, true }
	}
	if v, _ := EntrySnapValid(e, map[string]TableSnap{"u": {Ver: 1}}, 0, liveAt(3)); !v {
		t.Fatal("live version match rejected")
	}
	if v, s := EntrySnapValid(e, map[string]TableSnap{"u": {Ver: 1}}, 0, liveAt(4)); v || !s {
		t.Fatalf("live version moved on: valid=%v stale=%v", v, s)
	}
}
