package core

import (
	"testing"
	"time"

	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// admitTagged admits a one-batch result for g tagged at the given epoch of
// table "t", optionally extendable with the producing subplan.
func admitTagged(t *testing.T, r *Recycler, g *Node, subplan *plan.Node, ver, rows int64) {
	t.Helper()
	ok := r.AdmitMat(g, Materialization{
		Batches: mkBatch(4), Rows: 4, Size: 64, Cost: time.Millisecond,
		HROverride: 1,
		Snap:       map[string]TableSnap{"t": {Ver: ver, Rows: rows}},
		Plan:       subplan,
		Extendable: subplan != nil,
	})
	if !ok {
		t.Fatal("admission failed")
	}
}

func TestInvalidateTableEvictsDependents(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	p := selPlan(t, cat, 5)
	g := r.MatchInsert(p).ByNode[p].G
	if len(g.Tables) != 1 || g.Tables[0] != "t" {
		t.Fatalf("lineage = %v", g.Tables)
	}
	admitTagged(t, r, g, nil, 1, 10)

	// A write to an unrelated table leaves the entry alone.
	if ev, ex := r.InvalidateTable("other", true, 1, 5, nil); ev != 0 || ex != 0 {
		t.Fatalf("unrelated write touched %d/%d entries", ev, ex)
	}
	if r.Cached(g) == nil {
		t.Fatal("entry gone after unrelated write")
	}
	r.Release(g.cached.Load())

	// A non-append epoch on t evicts (no extender offered).
	usedBefore := r.cache.Used()
	if ev, _ := r.InvalidateTable("t", false, 2, 10, nil); ev != 1 {
		t.Fatal("delete epoch did not evict the dependent")
	}
	if r.Cached(g) != nil {
		t.Fatal("stale entry still served")
	}
	if got := r.cache.Used(); got != usedBefore-64 {
		t.Fatalf("bytes not refunded: %d -> %d", usedBefore, got)
	}
	if r.Stats().Invalidated != 1 {
		t.Fatalf("Invalidated = %d", r.Stats().Invalidated)
	}
}

func TestInvalidateTableDeltaExtends(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	p := selPlan(t, cat, 5)
	g := r.MatchInsert(p).ByNode[p].G
	admitTagged(t, r, g, p.Clone(), 1, 10)

	var gotLo, gotHi int64
	extend := func(e *Entry, table string, lo, hi int64) ([]*vector.Batch, int64, int64, bool) {
		gotLo, gotHi = lo, hi
		return mkBatch(2), 2, 32, true
	}
	ev, ex := r.InvalidateTable("t", true, 2, 15, extend)
	if ev != 0 || ex != 1 {
		t.Fatalf("evicted=%d extended=%d", ev, ex)
	}
	if gotLo != 10 || gotHi != 15 {
		t.Fatalf("extension window [%d, %d)", gotLo, gotHi)
	}
	e := r.Cached(g)
	if e == nil {
		t.Fatal("extended entry missing")
	}
	defer r.Release(e)
	if e.Rows != 6 || e.Size != 96 || len(e.Batches) != 2 {
		t.Fatalf("extended entry rows=%d size=%d batches=%d", e.Rows, e.Size, len(e.Batches))
	}
	if e.Snap["t"] != (TableSnap{Ver: 2, Rows: 15}) {
		t.Fatalf("snapshot tag not advanced: %+v", e.Snap)
	}
	if got := r.cache.Used(); got != 96 {
		t.Fatalf("used = %d after extension", got)
	}
	st := r.Stats()
	if st.DeltaExtended != 1 || st.DeltaExtendRows != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInvalidateTableExtensionFailureEvicts(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	p := selPlan(t, cat, 5)
	g := r.MatchInsert(p).ByNode[p].G
	admitTagged(t, r, g, p.Clone(), 1, 10)
	extend := func(e *Entry, table string, lo, hi int64) ([]*vector.Batch, int64, int64, bool) {
		return nil, 0, 0, false
	}
	if ev, ex := r.InvalidateTable("t", true, 2, 15, extend); ev != 1 || ex != 0 {
		t.Fatalf("evicted=%d extended=%d", ev, ex)
	}
	if r.Cached(g) != nil {
		t.Fatal("failed extension left a stale entry")
	}
	if r.cache.Used() != 0 {
		t.Fatalf("used = %d", r.cache.Used())
	}
}

// TestInvalidateTableNoExtensionAcrossMissedEpochs: an entry whose tag is
// older than the immediately preceding epoch must be evicted, not extended
// — it may have been admitted around a delete epoch it never observed, and
// extending it would resurrect the deleted rows under a current tag.
func TestInvalidateTableNoExtensionAcrossMissedEpochs(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	p := selPlan(t, cat, 5)
	g := r.MatchInsert(p).ByNode[p].G
	// Entry tagged ver 1 while the table is already committing ver 3
	// (ver 2 — possibly a delete — happened without the entry cached).
	admitTagged(t, r, g, p.Clone(), 1, 10)
	extend := func(e *Entry, table string, lo, hi int64) ([]*vector.Batch, int64, int64, bool) {
		t.Error("extension ran across a missed epoch")
		return nil, 0, 0, false
	}
	if ev, ex := r.InvalidateTable("t", true, 3, 15, extend); ev != 1 || ex != 0 {
		t.Fatalf("evicted=%d extended=%d", ev, ex)
	}
	if r.Cached(g) != nil {
		t.Fatal("entry with a version gap survived an append epoch")
	}
}

func TestInvalidateTableUnknownLineage(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	p := selPlan(t, cat, 5)
	g := r.MatchInsert(p).ByNode[p].G
	// Simulate a table-function node with unknown reads.
	g.Tables = []string{plan.LineageAll}
	admitTagged(t, r, g, nil, 1, 10)
	if ev, _ := r.InvalidateTable("whatever", true, 1, 5, nil); ev != 1 {
		t.Fatal("unknown-lineage entry survived a write")
	}
}

func TestEvictEntryIgnoresReplacedEntry(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	p := selPlan(t, cat, 5)
	g := r.MatchInsert(p).ByNode[p].G
	admitTagged(t, r, g, p.Clone(), 1, 10)
	old := g.cached.Load()
	// Replace through the extension path.
	r.InvalidateTable("t", true, 2, 12, func(e *Entry, table string, lo, hi int64) ([]*vector.Batch, int64, int64, bool) {
		return nil, 0, 0, true
	})
	// The stale-handle eviction must be a no-op for the replaced pointer.
	r.EvictEntry(g, old)
	if r.Cached(g) == nil {
		t.Fatal("EvictEntry removed a newer entry via a stale handle")
	}
	r.Release(g.cached.Load())
}
