package core

import (
	"math/bits"
	"sort"

	"recycledb/internal/vector"
)

// Entry is a cached materialized result. Pins prevent eviction while a
// running query replays the result.
type Entry struct {
	Node    *Node
	Batches []*vector.Batch
	Size    int64
	Rows    int64
	pins    int
	// benefit as of the last policy evaluation. The paper re-positions
	// entries within their group whenever benefits change; we refresh
	// benefits lazily at policy-evaluation time, which visits the same
	// group scan order.
	benefit float64
}

// Pins returns the current pin count (for tests).
func (e *Entry) Pins() int { return e.pins }

// Cache is the recycler cache (§III-E): a finite in-memory store of
// materialized results managed as a knapsack via Dantzig's greedy algorithm,
// with results classified into logarithmic size groups and scanned in
// increasing benefit order. All methods assume the recycler/graph lock is
// held.
type Cache struct {
	capacity int64
	used     int64
	groups   map[int][]*Entry
	count    int

	admissions int64
	evictions  int64
	rejected   int64
}

// NewCache returns a cache bounded to capacity bytes; capacity <= 0 means
// unlimited.
func NewCache(capacity int64) *Cache {
	return &Cache{capacity: capacity, groups: make(map[int][]*Entry)}
}

// Used returns the bytes currently cached.
func (c *Cache) Used() int64 { return c.used }

// Count returns the number of cached results.
func (c *Cache) Count() int { return c.count }

// Capacity returns the configured capacity (0 = unlimited).
func (c *Cache) Capacity() int64 { return c.capacity }

// sizeGroup classifies a result by the logarithm of its size (§III-E).
func sizeGroup(size int64) int {
	if size <= 0 {
		return 0
	}
	return bits.Len64(uint64(size))
}

// refreshGroup recomputes benefits and re-sorts a group ascending.
func (c *Cache) refreshGroup(g int, benefit func(*Node) float64) {
	es := c.groups[g]
	for _, e := range es {
		e.benefit = benefit(e.Node)
	}
	sort.SliceStable(es, func(a, b int) bool { return es[a].benefit < es[b].benefit })
}

// wouldAdmit reports whether a result of the given size and benefit would be
// admitted right now, without mutating anything. It mirrors admit below and
// drives speculation decisions (§III-D).
func (c *Cache) wouldAdmit(benefit float64, size int64, benefitFn func(*Node) float64) bool {
	if size <= 0 {
		return false
	}
	if c.capacity <= 0 || c.used+size <= c.capacity {
		return true
	}
	if size > c.capacity {
		return false
	}
	g := sizeGroup(size)
	c.refreshGroup(g, benefitFn)
	free := c.capacity - c.used
	var sumSize int64
	var sumBenefit float64
	n := 0
	for _, e := range c.groups[g] {
		if e.pins > 0 {
			continue
		}
		if (sumBenefit+e.benefit)/float64(n+1) >= benefit {
			return false
		}
		sumBenefit += e.benefit
		sumSize += e.Size
		n++
		if free+sumSize >= size {
			return true
		}
	}
	return false
}

// admit inserts a result, evicting a lower-average-benefit set from the same
// size group if needed (§III-E). Returns the evicted entries (the caller
// updates hR per Eq. 4) and whether admission happened.
func (c *Cache) admit(e *Entry, benefitFn func(*Node) float64) (evicted []*Entry, ok bool) {
	if e.Size <= 0 {
		e.Size = 1
	}
	if c.capacity > 0 && e.Size > c.capacity {
		c.rejected++
		return nil, false
	}
	if c.capacity > 0 && c.used+e.Size > c.capacity {
		g := sizeGroup(e.Size)
		c.refreshGroup(g, benefitFn)
		free := c.capacity - c.used
		var sumSize int64
		var sumBenefit float64
		var set []*Entry
		for _, cand := range c.groups[g] {
			if cand.pins > 0 {
				continue
			}
			if (sumBenefit+cand.benefit)/float64(len(set)+1) >= e.benefit {
				break
			}
			sumBenefit += cand.benefit
			sumSize += cand.Size
			set = append(set, cand)
			if free+sumSize >= e.Size {
				break
			}
		}
		if free+sumSize < e.Size {
			c.rejected++
			return nil, false
		}
		for _, v := range set {
			c.remove(v)
			evicted = append(evicted, v)
		}
	}
	g := sizeGroup(e.Size)
	c.groups[g] = append(c.groups[g], e)
	c.used += e.Size
	c.count++
	c.admissions++
	return evicted, true
}

// remove unlinks an entry from its group.
func (c *Cache) remove(e *Entry) {
	g := sizeGroup(e.Size)
	es := c.groups[g]
	for i, v := range es {
		if v == e {
			c.groups[g] = append(es[:i], es[i+1:]...)
			break
		}
	}
	c.used -= e.Size
	c.count--
	c.evictions++
}

// evictAll removes every unpinned entry (cache flush between batches in the
// Fig. 6 protocol, simulating update invalidation). It returns the evicted
// entries so the caller can run Eq. 4 updates.
func (c *Cache) evictAll() []*Entry {
	var out []*Entry
	for g, es := range c.groups {
		keep := es[:0]
		for _, e := range es {
			if e.pins > 0 {
				keep = append(keep, e)
				continue
			}
			c.used -= e.Size
			c.count--
			c.evictions++
			out = append(out, e)
		}
		c.groups[g] = keep
	}
	return out
}

// entries returns all cached entries (for tests and introspection).
func (c *Cache) entries() []*Entry {
	var out []*Entry
	for _, es := range c.groups {
		out = append(out, es...)
	}
	return out
}
