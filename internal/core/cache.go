package core

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// Entry is a cached materialized result. Pins prevent policy eviction
// while a running query replays the result.
//
// Node, Batches, Size, Rows, Snap, Plan and Extendable are immutable: the
// append delta extension never mutates an entry in place, it swaps in a
// fresh Entry (so concurrent replays of the old epoch stay consistent).
// pins and benefit are guarded by the entry's home shard lock (the shard
// Entry.Node hashes to).
type Entry struct {
	Node    *Node
	Batches []*vector.Batch
	Size    int64
	Rows    int64

	// Snap tags the result with the per-table data versions (and row
	// watermarks) it was computed at; plan.LineageAll maps the catalog's
	// global data version. nil means version-agnostic (results admitted
	// outside the engine's snapshot machinery, e.g. unit tests).
	Snap map[string]TableSnap
	// Plan is a resolved clone of the producing subplan, kept only for
	// extendable entries so the delta extension can re-run it over newly
	// appended rows.
	Plan *plan.Node
	// Extendable marks entries whose subplan is a row-local chain
	// (scan/select/project over a single base table): a pure append to
	// that table extends the cached result instead of evicting it.
	Extendable bool

	pins int
	// benefit as of the last policy evaluation. The paper re-positions
	// entries within their group whenever benefits change; we refresh
	// benefits lazily at policy-evaluation time, which visits the same
	// group scan order.
	benefit float64
}

// TableSnap is one table's coordinates in a snapshot tag: the data version
// and the physical row watermark the result was computed at.
type TableSnap struct {
	Ver  int64
	Rows int64
}

// Pins returns the current pin count (for tests; callers must be
// single-threaded with respect to the cache).
func (e *Entry) Pins() int { return e.pins }

// DefaultCacheShards is the lock-stripe count used when Config.CacheShards
// is zero. Sixteen shards keep admission/eviction of unrelated results from
// serializing on one mutex up to fairly large client counts, while staying
// cheap to sweep for small caches.
const DefaultCacheShards = 16

// Cache is the recycler cache (§III-E): a finite in-memory store of
// materialized results managed as a knapsack via Dantzig's greedy algorithm,
// with results classified into logarithmic size groups and scanned in
// increasing benefit order.
//
// The cache is lock-striped: entries hash by their node's plan signature
// into one of N shards, each with its own mutex and size-group lists, so
// concurrent admission and eviction of unrelated results proceed in
// parallel. Byte accounting is global and atomic — the configured capacity
// bounds the sum over all shards, reserved with compare-and-swap before an
// entry is linked, so the total can never exceed capacity or go negative.
// Under capacity pressure the knapsack scan starts in the incoming entry's
// home shard and spills over to the other shards, so the policy still sees
// every unpinned candidate of the size group.
type Cache struct {
	capacity int64 // <= 0 means unlimited
	shards   []cacheShard
	mask     uint64

	used  atomic.Int64
	count atomic.Int64

	admissions atomic.Int64
	evictions  atomic.Int64
	rejected   atomic.Int64
}

// cacheShard is one lock stripe. The mutex guards groups plus the pins and
// benefit fields of every entry stored here. Padded to its own cache lines
// so neighbouring shard locks do not false-share.
type cacheShard struct {
	mu     sync.Mutex
	groups map[int][]*Entry // guarded by mu
	_      [104]byte
}

// NewCache returns a cache bounded to capacity bytes striped over the given
// number of shards; capacity <= 0 means unlimited, shards <= 0 uses
// DefaultCacheShards. The shard count is rounded up to a power of two.
func NewCache(capacity int64, shards int) *Cache {
	if shards <= 0 {
		shards = DefaultCacheShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Cache{capacity: capacity, shards: make([]cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].groups = make(map[int][]*Entry)
	}
	return c
}

// Used returns the bytes currently cached.
func (c *Cache) Used() int64 { return c.used.Load() }

// Count returns the number of cached results.
func (c *Cache) Count() int { return int(c.count.Load()) }

// Capacity returns the configured capacity (<= 0 = unlimited).
func (c *Cache) Capacity() int64 { return c.capacity }

// Shards returns the number of lock stripes.
func (c *Cache) Shards() int { return len(c.shards) }

// shardIndex maps a node to its home stripe by plan signature.
func (c *Cache) shardIndex(n *Node) uint64 {
	// Fibonacci scrambling: Sig values are already hashes, but cheap
	// avalanche keeps near-miss signatures from clustering in one stripe.
	return (n.Sig * 0x9E3779B97F4A7C15) >> 32 & c.mask
}

// shardOf returns the node's home stripe.
func (c *Cache) shardOf(n *Node) *cacheShard { return &c.shards[c.shardIndex(n)] }

// reserve atomically charges size bytes against the capacity. It fails —
// without over-charging — if the cache is bounded and full.
func (c *Cache) reserve(size int64) bool {
	if c.capacity <= 0 {
		c.used.Add(size)
		return true
	}
	for {
		cur := c.used.Load()
		if cur+size > c.capacity {
			return false
		}
		if c.used.CompareAndSwap(cur, cur+size) {
			return true
		}
	}
}

// release returns reserved bytes.
func (c *Cache) release(size int64) { c.used.Add(-size) }

// sizeGroup classifies a result by the logarithm of its size (§III-E).
func sizeGroup(size int64) int {
	if size <= 0 {
		return 0
	}
	return bits.Len64(uint64(size))
}

// refreshGroupLocked recomputes benefits and re-sorts shard s's group g
// ascending. s.mu held; benefit must not acquire any shard lock.
func refreshGroupLocked(s *cacheShard, g int, benefit func(*Node) float64) {
	es := s.groups[g]
	for _, e := range es {
		e.benefit = benefit(e.Node)
	}
	sort.SliceStable(es, func(a, b int) bool { return es[a].benefit < es[b].benefit })
}

// unlinkLocked removes e from its group in shard s (s.mu held) without
// touching the byte accounting: callers settle used themselves (plain
// eviction refunds the bytes; replacement transfers them straight into the
// incoming result's reservation).
func (c *Cache) unlinkLocked(s *cacheShard, e *Entry) {
	g := sizeGroup(e.Size)
	es := s.groups[g]
	for i, v := range es {
		if v == e {
			s.groups[g] = append(es[:i], es[i+1:]...)
			break
		}
	}
	c.count.Add(-1)
	c.evictions.Add(1)
}

// removeLocked unlinks e from its group in shard s (s.mu held) and returns
// its bytes to the pool.
func (c *Cache) removeLocked(s *cacheShard, e *Entry) {
	c.unlinkLocked(s, e)
	c.used.Add(-e.Size)
}

// swapLocked replaces old with e in shard s (s.mu held): old leaves its
// size group, e joins its own. The caller has already settled the byte
// delta (reserving e.Size - old.Size); neither admission nor eviction
// counters move — a delta extension is the same logical entry continuing.
func (c *Cache) swapLocked(s *cacheShard, old, e *Entry) {
	g := sizeGroup(old.Size)
	es := s.groups[g]
	for i, v := range es {
		if v == old {
			s.groups[g] = append(es[:i], es[i+1:]...)
			break
		}
	}
	ng := sizeGroup(e.Size)
	s.groups[ng] = append(s.groups[ng], e)
}

// insertLocked links e into shard s (s.mu held). The caller has already
// reserved e.Size bytes.
func (c *Cache) insertLocked(s *cacheShard, e *Entry) {
	g := sizeGroup(e.Size)
	s.groups[g] = append(s.groups[g], e)
	c.count.Add(1)
	c.admissions.Add(1)
}

// entries returns all cached entries (for tests and introspection), in
// deterministic size-group order within each shard.
func (c *Cache) entries() []*Entry {
	var out []*Entry
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, g := range sortedGroups(s.groups) {
			out = append(out, s.groups[g]...)
		}
		s.mu.Unlock()
	}
	return out
}

// sortedGroups returns a shard's size-group keys in ascending order, so
// walks over the groups map are deterministic. Callers hold the shard lock.
func sortedGroups(groups map[int][]*Entry) []int {
	keys := make([]int, 0, len(groups))
	for g := range groups {
		keys = append(keys, g)
	}
	sort.Ints(keys)
	return keys
}
