package core

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"
	"time"
)

// In-flight coordination: when multiple concurrently executing queries share
// a subtree whose result is being materialized, "the recycler stalls all but
// one until it has either finished materializing the result, or decides not
// to materialize" (§V). The wait is bounded (Config.StallTimeout) to break
// the cross-query deadlock the unbounded rule admits; on timeout the waiter
// recomputes (see DESIGN.md).

// inflight tracks one in-progress materialization.
type inflight struct {
	done    chan struct{}
	success bool
}

// BeginInflight registers the calling query as the producer of node n's
// materialization. It returns true if the caller is the producer, false if
// another query already is (the caller should stall-and-reuse instead).
func (r *Recycler) BeginInflight(n *Node) bool {
	var producer bool
	r.graph.Locked(func() {
		if n.inflight != nil {
			return
		}
		n.inflight = &inflight{done: make(chan struct{})}
		producer = true
		if DebugInflight {
			DebugBegin.Add(1)
		}
	})
	return producer
}

// Inflight reports whether node n currently has an in-flight producer.
func (r *Recycler) Inflight(n *Node) bool {
	var f bool
	r.graph.RLocked(func() { f = n.inflight != nil })
	return f
}

// FinishInflight marks the materialization finished (success = result is now
// in the cache) and wakes all waiters.
func (r *Recycler) FinishInflight(n *Node, success bool) {
	r.graph.Locked(func() {
		if n.inflight == nil {
			return
		}
		n.inflight.success = success
		close(n.inflight.done)
		n.inflight = nil
		if DebugInflight {
			DebugFinish.Add(1)
		}
	})
}

// WaitInflight blocks until n's in-flight materialization completes or the
// timeout elapses, then returns the (pinned) cache entry if the result is
// available. ok=false means the waiter should recompute.
func (r *Recycler) WaitInflight(n *Node, timeout time.Duration) (*Entry, bool) {
	return r.WaitInflightCtx(context.Background(), n, timeout)
}

// WaitInflightCtx is WaitInflight bounded additionally by ctx: a canceled
// or expired context wakes the stalled query immediately (ok=false; the
// caller's recompute fallback then aborts on the same context at its first
// batch boundary).
func (r *Recycler) WaitInflightCtx(ctx context.Context, n *Node, timeout time.Duration) (*Entry, bool) {
	var ch chan struct{}
	r.graph.RLocked(func() {
		if n.inflight != nil {
			ch = n.inflight.done
		}
	})
	if ch != nil {
		t := time.NewTimer(timeout)
		defer t.Stop()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, false
		case <-t.C:
			if DebugInflight {
				fmt.Fprintf(os.Stderr, "TIMEOUT waiting on %s\n", n.Describe())
			}
			return nil, false
		}
	}
	e := r.Cached(n)
	if e == nil {
		return nil, false
	}
	return e, true
}

// Debug instrumentation (used by development tests only).
var (
	// DebugInflight enables timeout diagnostics on stderr.
	DebugInflight bool
	// DebugBegin and DebugFinish count registrations and completions.
	DebugBegin, DebugFinish atomic.Int64
)
