package core

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"recycledb/internal/vector"
)

// In-flight coordination: when multiple concurrently executing queries share
// a subtree whose result is being materialized, "the recycler stalls all but
// one until it has either finished materializing the result, or decides not
// to materialize" (§V). The wait is bounded (Config.StallTimeout) to break
// the cross-query deadlock the unbounded rule admits; on timeout the waiter
// recomputes (see DESIGN.md).
//
// Beyond the paper, the producer hands its materialized batches to the
// waiters directly through the inflight record: when K identical queries
// arrive concurrently, one computes and K-1 replay the producer's result
// even if the cache declined to admit it (admission is a policy decision
// about the future; the waiters' demand already happened). The handoff is
// cancellation-safe: a canceled producer closes its pipeline, which fires
// the store's cancel callback, which wakes every waiter empty-handed so
// each falls back to recomputation (and one of them becomes the next
// producer).

// inflight tracks one in-progress materialization. The registration itself
// (Node.inflight) is guarded by the node mutex; the result fields are
// written before done is closed and read only after it closes.
type inflight struct {
	done chan struct{}
	// The produced result, for direct handoff to waiters. nil batches
	// means the producer finished without a shareable result (canceled,
	// speculation aborted, build failed).
	batches []*vector.Batch
	rows    int64
	size    int64
	// snap is the producer's snapshot tag, so waiters can reject a
	// handed-off result computed at another data epoch.
	snap map[string]TableSnap
}

// BeginInflight registers the calling query as the producer of node n's
// materialization. It returns true if the caller is the producer, false if
// another query already is (the caller should stall-and-reuse instead).
func (r *Recycler) BeginInflight(n *Node) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.inflight != nil {
		return false
	}
	n.inflight = &inflight{done: make(chan struct{})}
	if DebugInflight {
		DebugBegin.Add(1)
	}
	return true
}

// Inflight reports whether node n currently has an in-flight producer.
func (r *Recycler) Inflight(n *Node) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inflight != nil
}

// FinishInflight marks the materialization finished with no shareable
// result (canceled, speculation aborted, build failed) and wakes all
// waiters; each falls back to the cache lookup and then recomputation.
func (r *Recycler) FinishInflight(n *Node) {
	r.finishInflight(n, nil, 0, 0, nil)
}

// FinishInflightShared marks the materialization finished and hands the
// materialized batches to the waiters directly, whether or not the cache
// admitted them. The batches must not be mutated afterwards. snap tags the
// result's data epoch (nil = version-agnostic).
func (r *Recycler) FinishInflightShared(n *Node, batches []*vector.Batch, rows, size int64, snap map[string]TableSnap) {
	r.finishInflight(n, batches, rows, size, snap)
}

func (r *Recycler) finishInflight(n *Node, batches []*vector.Batch, rows, size int64, snap map[string]TableSnap) {
	n.mu.Lock()
	infl := n.inflight
	if infl == nil {
		n.mu.Unlock()
		return
	}
	infl.batches, infl.rows, infl.size, infl.snap = batches, rows, size, snap
	close(infl.done)
	n.inflight = nil
	if DebugInflight {
		DebugFinish.Add(1)
	}
	n.mu.Unlock()
}

// WaitInflight blocks until n's in-flight materialization completes or the
// timeout elapses, then returns the (pinned) cache entry if the result is
// available. ok=false means the waiter should recompute.
func (r *Recycler) WaitInflight(n *Node, timeout time.Duration) (*Entry, bool) {
	//recycledb:ctx-ok — compatibility wrapper; the timeout still bounds the wait
	return r.WaitInflightCtx(context.Background(), n, timeout)
}

// WaitInflightCtx is WaitInflight bounded additionally by ctx: a canceled
// or expired context wakes the stalled query immediately (ok=false; the
// caller's recompute fallback then aborts on the same context at its first
// batch boundary). If the producer's result did not reach the cache but was
// published through the direct handoff, the returned entry is an ephemeral
// (unpinned, uncached) wrapper around the shared batches; Release on it is
// a no-op.
func (r *Recycler) WaitInflightCtx(ctx context.Context, n *Node, timeout time.Duration) (*Entry, bool) {
	n.mu.Lock()
	infl := n.inflight
	n.mu.Unlock()
	if infl != nil {
		t := time.NewTimer(timeout)
		defer t.Stop()
		select {
		case <-infl.done:
		case <-ctx.Done():
			return nil, false
		case <-t.C:
			if DebugInflight {
				fmt.Fprintf(os.Stderr, "TIMEOUT waiting on %s\n", n.Describe())
			}
			return nil, false
		}
	}
	if e := r.Cached(n); e != nil {
		return e, true
	}
	if infl != nil && infl.batches != nil {
		r.stats.inflightShared.Add(1)
		return &Entry{Node: n, Batches: infl.batches, Size: infl.size,
			Rows: infl.rows, Snap: infl.snap}, true
	}
	return nil, false
}

// Debug instrumentation (used by development tests only).
var (
	// DebugInflight enables timeout diagnostics on stderr.
	DebugInflight bool
	// DebugBegin and DebugFinish count registrations and completions.
	DebugBegin, DebugFinish atomic.Int64
)
