package core

import (
	"time"

	"recycledb/internal/plan"
)

// This file is the recycler's read-only interface for the cost-based
// optimizer (internal/opt): the optimizer enumerates alternative plan
// shapes and, before costing each one, asks the recycler whether the
// shape's subtrees already exist in the graph, carry measured statistics,
// have a cached result valid under the statement's snapshot, or are being
// materialized right now by a concurrent query. Everything here is strictly
// non-mutating — probing an alternative must not insert graph nodes, bump
// reuse counters, or touch importance factors, or enumeration itself would
// perturb the statistics it reads (and two enumerations of the same query
// could yield different plans, breaking memo determinism).

// MatchOnly runs the bottom-up matching pass of MatchInsert without the
// insertion half: it returns the graph node an exact match of root unifies
// with, or nil when any node of the subtree is absent from the graph. The
// tree must be resolved (name mappings are built from output schemas).
func (g *Graph) MatchOnly(root *plan.Node) *NodeMatch {
	childMatches := make([]*NodeMatch, len(root.Children))
	for i, c := range root.Children {
		cm := g.MatchOnly(c)
		if cm == nil {
			return nil
		}
		childMatches[i] = cm
	}
	rename := renameFunc(childMatches)
	hk := root.HashKey()
	sig := root.Signature(rename)
	params := root.ParamString(rename)
	g.mu.RLock()
	cand := g.findExactLocked(root, hk, sig, params, childMatches)
	g.mu.RUnlock()
	if cand == nil {
		return nil
	}
	return &NodeMatch{G: cand, Existed: true, OutMap: outMap(root, cand)}
}

// ProbeInfo describes what the recycler knows about one plan shape.
type ProbeInfo struct {
	// Node is the matched graph node.
	Node *Node
	// CostKnown reports whether the node has measured statistics; BaseCost
	// and Card are the measurements (Eq. 2 base cost, output cardinality).
	CostKnown bool
	BaseCost  time.Duration
	Card      int64
	// Cached reports a cached result that passed the caller's validation;
	// CachedRows/CachedBytes are its exact measurements.
	Cached      bool
	CachedRows  int64
	CachedBytes int64
	// Inflight reports a concurrent query materializing this result now.
	Inflight bool
}

// Probe matches p against the recycler graph without inserting or counting
// anything and reports the node's statistics, cached-result state, and
// in-flight state. validate vets a candidate cached entry (snapshot-tag
// checks); nil accepts any entry. The second result is false when the shape
// has never been seen. The peeked entry is pinned only for the duration of
// the inspection — by the time Probe returns, a concurrent eviction may
// have removed it, so Cached is advisory: the rewriter re-validates at
// substitution time and recomputes on a miss (results never depend on it).
func (r *Recycler) Probe(p *plan.Node, validate func(*Entry) bool) (ProbeInfo, bool) {
	nm := r.graph.MatchOnly(p)
	if nm == nil {
		return ProbeInfo{}, false
	}
	info := ProbeInfo{Node: nm.G}
	info.BaseCost, info.CostKnown, info.Card, _ = r.NodeStats(nm.G)
	if e := r.peekCached(nm.G); e != nil {
		if validate == nil || validate(e) {
			info.Cached = true
			info.CachedRows = e.Rows
			info.CachedBytes = e.Size
		}
		r.Release(e)
	}
	if !info.Cached {
		info.Inflight = r.Inflight(nm.G)
	}
	return info, true
}

// peekCached returns the node's cache entry, pinned, without counting a
// reuse. Cached is the counting variant the rewriter's substitution rule
// uses; the optimizer may probe the same entry many times while costing
// alternatives and must not inflate the reuse statistics doing so.
func (r *Recycler) peekCached(n *Node) *Entry {
	if n.cached.Load() == nil {
		return nil // lock-free miss
	}
	s := r.cache.shardOf(n)
	s.mu.Lock()
	e := n.cached.Load()
	if e != nil {
		e.pins++
	}
	s.mu.Unlock()
	return e
}

// EntrySnapValid reports whether a cached entry's snapshot tag matches a
// statement's captured data epochs, and — when it does not — whether the
// entry is stale (tagged older than the epoch the catalog has moved to).
// Untagged entries are version-agnostic; tags over tables outside the
// statement's capture fall back to the live version via live (which reports
// false for unknown tables, treated as stale). Both the rewriter's
// substitution rule and the optimizer's cached-access-path costing validate
// through this one predicate, so they can never disagree about what "warm"
// means.
func EntrySnapValid(e *Entry, snapVers map[string]TableSnap, globalVer int64,
	live func(table string) (int64, bool)) (valid, stale bool) {
	if e.Snap == nil {
		return true, false
	}
	valid = true
	//recycledb:nondet-ok — commutative ∀-fold over the snapshot tags
	for t, ts := range e.Snap {
		if t == plan.LineageAll {
			if snapVers != nil && ts.Ver != globalVer {
				valid = false
				if ts.Ver < globalVer {
					stale = true
				}
			}
			continue
		}
		if v, ok := snapVers[t]; ok {
			if v.Ver != ts.Ver {
				valid = false
				if ts.Ver < v.Ver {
					stale = true
				}
			}
			continue
		}
		lv, ok := live(t)
		if !ok {
			return false, true
		}
		if lv != ts.Ver {
			valid = false
			if ts.Ver < lv {
				stale = true
			}
		}
	}
	return valid, stale
}
