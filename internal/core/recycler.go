package core

import (
	"sync"
	"sync/atomic"
	"time"

	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// Config tunes the recycler.
type Config struct {
	// CacheBytes bounds the recycler cache; <= 0 means unlimited.
	CacheBytes int64
	// Alpha is the per-query aging factor (Eq. 5); 1 disables aging.
	Alpha float64
	// SpeculationHR is the constant importance factor used when deciding
	// on never-before-seen results (the paper suggests 0.001, §III-D).
	SpeculationHR float64
	// MaxSpeculateBytes caps a speculative store's buffer; beyond it the
	// store cancels (buffering is not free in a pipelined engine).
	MaxSpeculateBytes int64
	// MinProgress is the minimum producer progress before speculation
	// extrapolates cost and size.
	MinProgress float64
	// StallTimeout bounds how long a query waits for a concurrent
	// query's in-flight materialization before recomputing.
	StallTimeout time.Duration
	// Subsumption enables subsumption edges and derived reuse (§IV-A).
	Subsumption bool
	// CopyBytesPerSec models the cost of materialization itself (the
	// deep copy a store operator performs). A result only qualifies for
	// materialization if its expected recompute savings exceed the copy
	// cost — the quantified form of the paper's "computationally
	// expensive and likely to have a small result size" criterion
	// (§III-D), which matters at in-memory scales where copying can be
	// as expensive as computing.
	CopyBytesPerSec int64
}

// CopyCost estimates the one-time materialization cost of a result.
func (c Config) CopyCost(size int64) time.Duration {
	bps := c.CopyBytesPerSec
	if bps <= 0 {
		bps = 32 << 20
	}
	return time.Duration(float64(size) / float64(bps) * float64(time.Second))
}

// DefaultConfig returns the configuration used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		CacheBytes:        256 << 20,
		Alpha:             0.995,
		SpeculationHR:     0.001,
		MaxSpeculateBytes: 64 << 20,
		MinProgress:       0.05,
		StallTimeout:      2 * time.Second,
		Subsumption:       true,
		CopyBytesPerSec:   32 << 20,
	}
}

// Stats aggregates recycler activity counters.
type Stats struct {
	Queries          int64
	NodesMatched     int64
	NodesInserted    int64
	Reuses           int64
	SubsumptionReuse int64
	Materializations int64
	SpecCancels      int64
	SpecCommits      int64
	Stalls           int64
	StallReuses      int64
	Admissions       int64
	Evictions        int64
	Rejected         int64
	GraphNodes       int
	CacheBytes       int64
	CacheEntries     int
	MatchTime        time.Duration
	InsertConflicts  int64
}

// Recycler combines the recycler graph and the recycler cache and implements
// the decision procedures the rewriter and the store operators consult.
type Recycler struct {
	cfg   Config
	graph *Graph
	cache *Cache

	seq uint64 // query sequence for aging (atomic)

	statMu sync.Mutex
	stats  Stats
}

// New returns a recycler with the given configuration.
func New(cfg Config) *Recycler {
	if cfg.Alpha <= 0 {
		cfg.Alpha = 1
	}
	if cfg.SpeculationHR <= 0 {
		cfg.SpeculationHR = 0.001
	}
	if cfg.MinProgress <= 0 {
		cfg.MinProgress = 0.05
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 2 * time.Second
	}
	return &Recycler{cfg: cfg, graph: NewGraph(), cache: NewCache(cfg.CacheBytes)}
}

// Config returns the active configuration.
func (r *Recycler) Config() Config { return r.cfg }

// Graph exposes the recycler graph (matching, tests, introspection).
func (r *Recycler) Graph() *Graph { return r.graph }

// BeginQuery advances the aging clock and returns the query sequence number.
func (r *Recycler) BeginQuery() uint64 {
	r.statMu.Lock()
	r.stats.Queries++
	r.statMu.Unlock()
	return atomic.AddUint64(&r.seq, 1)
}

func (r *Recycler) curSeq() uint64 { return atomic.LoadUint64(&r.seq) }

// MatchInsert matches the query tree against the recycler graph, inserting
// missing nodes, and records matching-cost statistics.
func (r *Recycler) MatchInsert(root *plan.Node) *MatchResult {
	res := r.graph.MatchInsert(root)
	r.statMu.Lock()
	r.stats.NodesMatched += int64(res.Matched)
	r.stats.NodesInserted += int64(res.Inserted)
	r.stats.MatchTime += res.Cost
	r.statMu.Unlock()
	return res
}

// AddRefs implements the importance-factor increment after a query finished
// matching/insertion (§III-C): every node whose result could have been used
// to answer the query — i.e. every exactly-matched node with no materialized
// matched ancestor — gains one reference.
func (r *Recycler) AddRefs(root *plan.Node, m *MatchResult) {
	seq := r.curSeq()
	r.graph.Locked(func() {
		var walk func(n *plan.Node, covered bool)
		walk = func(n *plan.Node, covered bool) {
			nm := m.ByNode[n]
			if nm == nil {
				return
			}
			if nm.Existed {
				if !covered {
					addRef(nm.G, seq, r.cfg.Alpha)
				}
				if nm.G.cached != nil {
					covered = true
				}
			}
			for _, c := range n.Children {
				walk(c, covered)
			}
		}
		walk(root, false)
	})
}

// AddRefTo bumps a single node's importance factor. The proactive rules use
// it: each time a rule triggers and matches the proactive variant, the
// common parts of the proactive plan obtain a higher benefit score (§IV-B).
func (r *Recycler) AddRefTo(n *Node) {
	seq := r.curSeq()
	r.graph.Locked(func() { addRef(n, seq, r.cfg.Alpha) })
}

// HR returns the node's aged importance factor.
func (r *Recycler) HR(n *Node) float64 {
	var h float64
	r.graph.Locked(func() { h = n.hrAt(r.curSeq(), r.cfg.Alpha) })
	return h
}

// Benefit computes Eq. 1 for a node from its recorded statistics.
func (r *Recycler) Benefit(n *Node) float64 {
	var b float64
	r.graph.Locked(func() { b = r.benefitLocked(n) })
	return b
}

func (r *Recycler) benefitLocked(n *Node) float64 {
	hr := n.hrAt(r.curSeq(), r.cfg.Alpha)
	return benefitOf(trueCost(n), hr, n.estBytes)
}

// NodeStats returns a consistent snapshot of a node's execution statistics.
func (r *Recycler) NodeStats(n *Node) (cost time.Duration, known bool, card, estBytes int64) {
	r.graph.RLocked(func() {
		cost, known, card, estBytes = n.baseCost, n.costKnown, n.card, n.estBytes
	})
	return
}

// StallTimeoutFor adapts the stall bound to the producer's expected cost: a
// waiter should not wait much longer than recomputing would take, while
// slow, valuable producers deserve the full configured bound.
func (r *Recycler) StallTimeoutFor(n *Node) time.Duration {
	max := r.cfg.StallTimeout
	cost, known, _, _ := r.NodeStats(n)
	var est time.Duration
	if known {
		est = 5 * cost
	} else {
		est = max / 8
	}
	if est < 10*time.Millisecond {
		est = 10 * time.Millisecond
	}
	if est > max {
		est = max
	}
	return est
}

// TrueCost returns Eq. 2 for the node.
func (r *Recycler) TrueCost(n *Node) time.Duration {
	var c time.Duration
	r.graph.Locked(func() { c = trueCost(n) })
	return c
}

// UpdateStats records post-execution measurements for a node: base cost
// (measured cost plus the base costs of reused descendants substituted in
// this plan), cardinality and result size estimate. The stored bcost is
// refreshed on every recomputation, as the paper prescribes.
func (r *Recycler) UpdateStats(n *Node, baseCost time.Duration, card, estBytes int64) {
	r.graph.Locked(func() {
		n.baseCost = baseCost
		n.costKnown = true
		n.execCount++
		if card >= 0 {
			n.card = card
		}
		if estBytes > 0 {
			n.estBytes = estBytes
		}
	})
}

// Cached returns the node's cache entry, pinned, or nil. The caller must
// Release the returned entry once done replaying it.
func (r *Recycler) Cached(n *Node) *Entry {
	var e *Entry
	r.graph.Locked(func() {
		if n.cached != nil {
			e = n.cached
			e.pins++
		}
	})
	if e != nil {
		r.statMu.Lock()
		r.stats.Reuses++
		r.statMu.Unlock()
	}
	return e
}

// Release unpins a cache entry.
func (r *Recycler) Release(e *Entry) {
	r.graph.Locked(func() {
		if e.pins > 0 {
			e.pins--
		}
	})
}

// WouldAdmit reports whether a result with the given benefit and size would
// currently be admitted (used by store-injection and speculation decisions).
func (r *Recycler) WouldAdmit(benefit float64, size int64) bool {
	var ok bool
	r.graph.Locked(func() {
		ok = r.cache.wouldAdmit(benefit, size, r.benefitLocked)
	})
	return ok
}

// Admit offers a fully materialized result for node n to the cache, running
// admission/replacement (§III-E) and the hR updates of Eq. 3/4. hrOverride
// < 0 means "use the node's aged hR"; speculation passes its constant.
func (r *Recycler) Admit(n *Node, batches []*vector.Batch, rows, size int64, cost time.Duration, hrOverride float64) bool {
	var admitted bool
	r.graph.Locked(func() {
		if n.cached != nil {
			admitted = true // already cached by a concurrent query
			return
		}
		hr := n.hrAt(r.curSeq(), r.cfg.Alpha)
		if hrOverride >= 0 && hr < hrOverride {
			hr = hrOverride
		}
		// Never-measured nodes (speculation) get their first base-cost
		// sample from the store operator's measurement.
		if !n.costKnown && cost > 0 {
			n.baseCost = cost
			n.costKnown = true
		}
		e := &Entry{Node: n, Batches: batches, Size: size, Rows: rows}
		e.benefit = benefitOf(trueCost(n), hr, size)
		evicted, ok := r.cache.admit(e, r.benefitLocked)
		if !ok {
			return
		}
		for _, ev := range evicted {
			ev.Node.cached = nil
			updateHROnEvict(ev.Node, r.curSeq(), r.cfg.Alpha)
		}
		n.cached = e
		n.estBytes = size
		n.card = rows
		updateHROnAdd(n, r.curSeq(), r.cfg.Alpha)
		admitted = true
	})
	r.statMu.Lock()
	if admitted {
		r.stats.Materializations++
		r.stats.Admissions++
	} else {
		r.stats.Rejected++
	}
	r.statMu.Unlock()
	return admitted
}

// Evict removes a node's cached result (if any), applying Eq. 4.
func (r *Recycler) Evict(n *Node) {
	r.graph.Locked(func() {
		if n.cached == nil {
			return
		}
		r.cache.remove(n.cached)
		n.cached = nil
		updateHROnEvict(n, r.curSeq(), r.cfg.Alpha)
	})
}

// FlushCache evicts every unpinned result (the Fig. 6 invalidation
// protocol).
func (r *Recycler) FlushCache() {
	r.graph.Locked(func() {
		for _, e := range r.cache.evictAll() {
			e.Node.cached = nil
			updateHROnEvict(e.Node, r.curSeq(), r.cfg.Alpha)
		}
	})
}

// Stats returns a snapshot of activity counters.
func (r *Recycler) Stats() Stats {
	r.statMu.Lock()
	s := r.stats
	r.statMu.Unlock()
	r.graph.RLocked(func() {
		s.CacheBytes = r.cache.used
		s.CacheEntries = r.cache.count
		s.Evictions = r.cache.evictions
	})
	s.GraphNodes = r.graph.Size()
	s.InsertConflicts = r.graph.Conflicts()
	return s
}

// CountSpecCancel bumps the speculation-cancel counter.
func (r *Recycler) CountSpecCancel() {
	r.statMu.Lock()
	r.stats.SpecCancels++
	r.statMu.Unlock()
}

// CountSpecCommit bumps the speculation-commit counter.
func (r *Recycler) CountSpecCommit() {
	r.statMu.Lock()
	r.stats.SpecCommits++
	r.statMu.Unlock()
}

// CountStall records a stall on an in-flight materialization.
func (r *Recycler) CountStall(reused bool) {
	r.statMu.Lock()
	r.stats.Stalls++
	if reused {
		r.stats.StallReuses++
	}
	r.statMu.Unlock()
}

// CountSubsumptionReuse records a reuse through a subsumption edge.
func (r *Recycler) CountSubsumptionReuse() {
	r.statMu.Lock()
	r.stats.SubsumptionReuse++
	r.statMu.Unlock()
}

// EstimateResultBytes estimates a node's result size from its measured
// cardinality and output types (used before a result was ever materialized;
// string widths use the paper's sampling idea, approximated by a fixed
// average width).
func EstimateResultBytes(n *Node, card int64) int64 {
	if card < 0 {
		return -1
	}
	var width int64
	for _, t := range n.OutTypes {
		w := t.Width()
		if t == vector.String {
			w += 16 // sampled average payload width
		}
		width += w
	}
	if width == 0 {
		width = 8
	}
	return card * width
}
