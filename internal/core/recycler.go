package core

import (
	"sync/atomic"
	"time"

	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// Config tunes the recycler.
type Config struct {
	// CacheBytes bounds the recycler cache; <= 0 means unlimited.
	CacheBytes int64
	// CacheShards is the number of lock stripes of the recycler cache
	// (rounded up to a power of two); <= 0 uses DefaultCacheShards.
	CacheShards int
	// Alpha is the per-query aging factor (Eq. 5); 1 disables aging.
	Alpha float64
	// SpeculationHR is the constant importance factor used when deciding
	// on never-before-seen results (the paper suggests 0.001, §III-D).
	SpeculationHR float64
	// MaxSpeculateBytes caps a speculative store's buffer; beyond it the
	// store cancels (buffering is not free in a pipelined engine).
	MaxSpeculateBytes int64
	// MinProgress is the minimum producer progress before speculation
	// extrapolates cost and size.
	MinProgress float64
	// StallTimeout bounds how long a query waits for a concurrent
	// query's in-flight materialization before recomputing.
	StallTimeout time.Duration
	// Subsumption enables subsumption edges and derived reuse (§IV-A).
	Subsumption bool
	// CopyBytesPerSec models the cost of materialization itself (the
	// deep copy a store operator performs). A result only qualifies for
	// materialization if its expected recompute savings exceed the copy
	// cost — the quantified form of the paper's "computationally
	// expensive and likely to have a small result size" criterion
	// (§III-D), which matters at in-memory scales where copying can be
	// as expensive as computing. The default tracks the engine's
	// vectorized clone path (columnar bulk slice copies run at memory
	// bandwidth; 256 MiB/s is a conservative floor that keeps the model
	// honest after the row-at-a-time copy loops were replaced).
	CopyBytesPerSec int64
}

// CopyCost estimates the one-time materialization cost of a result.
func (c Config) CopyCost(size int64) time.Duration {
	bps := c.CopyBytesPerSec
	if bps <= 0 {
		bps = 256 << 20
	}
	return time.Duration(float64(size) / float64(bps) * float64(time.Second))
}

// DefaultConfig returns the configuration used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		CacheBytes:        256 << 20,
		CacheShards:       DefaultCacheShards,
		Alpha:             0.995,
		SpeculationHR:     0.001,
		MaxSpeculateBytes: 64 << 20,
		MinProgress:       0.05,
		StallTimeout:      2 * time.Second,
		Subsumption:       true,
		CopyBytesPerSec:   256 << 20,
	}
}

// Stats aggregates recycler activity counters.
type Stats struct {
	Queries          int64
	NodesMatched     int64
	NodesInserted    int64
	Reuses           int64
	SubsumptionReuse int64
	Materializations int64
	SpecCancels      int64
	SpecCommits      int64
	Stalls           int64
	StallReuses      int64
	// InflightShared counts stalled queries that received the producer's
	// result through the direct in-flight handoff (including results the
	// cache declined to admit).
	InflightShared int64
	// Invalidated counts cached results dropped because a base table
	// committed a write epoch they depend on (commit-walk and lazy
	// stale-tag evictions); DeltaExtended counts append epochs absorbed
	// by extending a cached result in place instead, over a total of
	// DeltaExtendRows appended result rows.
	Invalidated     int64
	DeltaExtended   int64
	DeltaExtendRows int64
	Admissions      int64
	Evictions       int64
	Rejected        int64
	GraphNodes      int
	CacheBytes      int64
	CacheEntries    int
	MatchTime       time.Duration
	InsertConflicts int64
}

// recStats is the internal, contention-free form of Stats: independent
// atomic counters bumped on the query hot path without any shared lock.
type recStats struct {
	queries          atomic.Int64
	nodesMatched     atomic.Int64
	nodesInserted    atomic.Int64
	reuses           atomic.Int64
	subsumptionReuse atomic.Int64
	materializations atomic.Int64
	specCancels      atomic.Int64
	specCommits      atomic.Int64
	stalls           atomic.Int64
	stallReuses      atomic.Int64
	inflightShared   atomic.Int64
	matchNanos       atomic.Int64
	invalidated      atomic.Int64
	deltaExtended    atomic.Int64
	deltaRows        atomic.Int64
}

// Recycler combines the recycler graph and the recycler cache and implements
// the decision procedures the rewriter and the store operators consult. It
// is safe for concurrent use by any number of queries; see the package
// comment for the lock architecture.
type Recycler struct {
	cfg   Config
	graph *Graph
	cache *Cache

	seq   atomic.Uint64 // query sequence for aging
	stats recStats
}

// New returns a recycler with the given configuration.
func New(cfg Config) *Recycler {
	if cfg.Alpha <= 0 {
		cfg.Alpha = 1
	}
	if cfg.SpeculationHR <= 0 {
		cfg.SpeculationHR = 0.001
	}
	if cfg.MinProgress <= 0 {
		cfg.MinProgress = 0.05
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 2 * time.Second
	}
	return &Recycler{cfg: cfg, graph: NewGraph(), cache: NewCache(cfg.CacheBytes, cfg.CacheShards)}
}

// Config returns the active configuration.
func (r *Recycler) Config() Config { return r.cfg }

// Graph exposes the recycler graph (matching, tests, introspection).
func (r *Recycler) Graph() *Graph { return r.graph }

// BeginQuery advances the aging clock and returns the query sequence number.
func (r *Recycler) BeginQuery() uint64 {
	r.stats.queries.Add(1)
	return r.seq.Add(1)
}

func (r *Recycler) curSeq() uint64 { return r.seq.Load() }

// MatchInsert matches the query tree against the recycler graph, inserting
// missing nodes, and records matching-cost statistics.
func (r *Recycler) MatchInsert(root *plan.Node) *MatchResult {
	res := r.graph.MatchInsert(root)
	r.stats.nodesMatched.Add(int64(res.Matched))
	r.stats.nodesInserted.Add(int64(res.Inserted))
	r.stats.matchNanos.Add(res.Cost.Nanoseconds())
	return res
}

// AddRefs implements the importance-factor increment after a query finished
// matching/insertion (§III-C): every node whose result could have been used
// to answer the query — i.e. every exactly-matched node with no materialized
// matched ancestor — gains one reference.
func (r *Recycler) AddRefs(root *plan.Node, m *MatchResult) {
	seq := r.curSeq()
	var walk func(n *plan.Node, covered bool)
	walk = func(n *plan.Node, covered bool) {
		nm := m.ByNode[n]
		if nm == nil {
			return
		}
		if nm.Existed {
			if !covered {
				addRef(nm.G, seq, r.cfg.Alpha)
			}
			if nm.G.cached.Load() != nil {
				covered = true
			}
		}
		for _, c := range n.Children {
			walk(c, covered)
		}
	}
	walk(root, false)
}

// AddRefTo bumps a single node's importance factor. The proactive rules use
// it: each time a rule triggers and matches the proactive variant, the
// common parts of the proactive plan obtain a higher benefit score (§IV-B).
func (r *Recycler) AddRefTo(n *Node) {
	addRef(n, r.curSeq(), r.cfg.Alpha)
}

// HR returns the node's aged importance factor.
func (r *Recycler) HR(n *Node) float64 {
	return n.hrAt(r.curSeq(), r.cfg.Alpha)
}

// Benefit computes Eq. 1 for a node from its recorded statistics.
func (r *Recycler) Benefit(n *Node) float64 {
	seq := r.curSeq()
	n.mu.Lock()
	hr := n.hrAtLocked(seq, r.cfg.Alpha)
	est := n.estBytes
	n.mu.Unlock()
	return benefitOf(trueCost(n), hr, est)
}

// NodeStats returns a consistent snapshot of a node's execution statistics.
func (r *Recycler) NodeStats(n *Node) (cost time.Duration, known bool, card, estBytes int64) {
	n.mu.Lock()
	cost, known, card, estBytes = n.baseCost, n.costKnown, n.card, n.estBytes
	n.mu.Unlock()
	return
}

// Subsumers returns the nodes whose results subsume n's result, nearest
// first, as a snapshot taken under the graph lock (subsumption edges grow
// while concurrent queries insert siblings).
func (r *Recycler) Subsumers(n *Node) []*Node {
	var out []*Node
	r.graph.RLocked(func() { out = n.Subsumers() })
	return out
}

// StallTimeoutFor adapts the stall bound to the producer's expected cost: a
// waiter should not wait much longer than recomputing would take, while
// slow, valuable producers deserve the full configured bound.
func (r *Recycler) StallTimeoutFor(n *Node) time.Duration {
	max := r.cfg.StallTimeout
	cost, known, _, _ := r.NodeStats(n)
	var est time.Duration
	if known {
		est = 5 * cost
	} else {
		est = max / 8
	}
	if est < 10*time.Millisecond {
		est = 10 * time.Millisecond
	}
	if est > max {
		est = max
	}
	return est
}

// TrueCost returns Eq. 2 for the node.
func (r *Recycler) TrueCost(n *Node) time.Duration {
	return trueCost(n)
}

// UpdateStats records post-execution measurements for a node: base cost
// (measured cost plus the base costs of reused descendants substituted in
// this plan), cardinality and result size estimate. The stored bcost is
// refreshed on every recomputation, as the paper prescribes.
func (r *Recycler) UpdateStats(n *Node, baseCost time.Duration, card, estBytes int64) {
	n.mu.Lock()
	n.baseCost = baseCost
	n.costKnown = true
	n.execCount++
	if card >= 0 {
		n.card = card
	}
	if estBytes > 0 {
		n.estBytes = estBytes
	}
	n.mu.Unlock()
}

// Cached returns the node's cache entry, pinned, or nil. The caller must
// Release the returned entry once done replaying it.
func (r *Recycler) Cached(n *Node) *Entry {
	if n.cached.Load() == nil {
		return nil // lock-free miss
	}
	s := r.cache.shardOf(n)
	s.mu.Lock()
	e := n.cached.Load()
	if e != nil {
		e.pins++
	}
	s.mu.Unlock()
	if e != nil {
		r.stats.reuses.Add(1)
	}
	return e
}

// Release unpins a cache entry. It is a no-op for unpinned entries, so the
// ephemeral entries the in-flight handoff fabricates release safely too.
func (r *Recycler) Release(e *Entry) {
	s := r.cache.shardOf(e.Node)
	s.mu.Lock()
	if e.pins > 0 {
		e.pins--
	}
	s.mu.Unlock()
}

// benefitNow recomputes Eq. 1 for a cached node (policy refresh callback).
// It takes only node mutexes, so it is safe under any shard lock.
func (r *Recycler) benefitNow(n *Node) float64 {
	return r.Benefit(n)
}

// WouldAdmit reports whether a result for node n with the given benefit and
// size would currently be admitted (used by store-injection and speculation
// decisions). It mirrors Admit without mutating anything; under concurrency
// the answer is advisory — the authoritative decision happens at Admit.
func (r *Recycler) WouldAdmit(n *Node, benefit float64, size int64) bool {
	c := r.cache
	if size <= 0 {
		return false
	}
	if c.capacity <= 0 || c.used.Load()+size <= c.capacity {
		return true
	}
	if size > c.capacity {
		return false
	}
	return r.groupScan(c.shardIndex(n), benefit, size, r.curSeq(), false)
}

// Materialization describes a result offered to the cache: the batches and
// their measurements, plus the snapshot tag and delta-extension metadata
// the update path needs (see Entry).
type Materialization struct {
	Batches []*vector.Batch
	Rows    int64
	Size    int64
	Cost    time.Duration
	// HROverride < 0 means "use the node's aged hR"; speculation passes
	// its constant.
	HROverride float64
	Snap       map[string]TableSnap
	Plan       *plan.Node
	Extendable bool
}

// Admit offers a fully materialized result for node n to the cache with no
// snapshot tag (version-agnostic; the engine's store path uses AdmitMat).
func (r *Recycler) Admit(n *Node, batches []*vector.Batch, rows, size int64, cost time.Duration, hrOverride float64) bool {
	return r.AdmitMat(n, Materialization{
		Batches: batches, Rows: rows, Size: size, Cost: cost, HROverride: hrOverride,
	})
}

// AdmitMat offers a fully materialized result for node n to the cache,
// running admission/replacement (§III-E) and the hR updates of Eq. 3/4.
func (r *Recycler) AdmitMat(n *Node, m Materialization) bool {
	batches, rows, size, cost, hrOverride := m.Batches, m.Rows, m.Size, m.Cost, m.HROverride
	if size <= 0 {
		size = 1
	}
	if n.cached.Load() != nil {
		// Already cached by a concurrent query.
		r.stats.materializations.Add(1)
		return true
	}
	c := r.cache
	if c.capacity > 0 && size > c.capacity {
		c.rejected.Add(1)
		return false
	}
	seq := r.curSeq()
	n.mu.Lock()
	// Never-measured nodes (speculation) get their first base-cost
	// sample from the store operator's measurement.
	if !n.costKnown && cost > 0 {
		n.baseCost = cost
		n.costKnown = true
	}
	hr := n.hrAtLocked(seq, r.cfg.Alpha)
	n.mu.Unlock()
	if hrOverride >= 0 && hr < hrOverride {
		hr = hrOverride
	}
	e := &Entry{Node: n, Batches: batches, Size: size, Rows: rows,
		Snap: m.Snap, Plan: m.Plan, Extendable: m.Extendable}
	e.benefit = benefitOf(trueCost(n), hr, size)

	if !c.reserve(size) {
		// Replacement is all-or-nothing in the common case: a feasibility
		// pass (no mutation) first proves the knapsack scan can free
		// enough, then the evict pass commits it. A concurrent admission
		// can still consume the planned space between the passes; the
		// evict pass then stops short having removed only entries the
		// policy ranked below this result.
		home := c.shardIndex(n)
		if !r.groupScan(home, e.benefit, size, seq, false) ||
			!r.groupScan(home, e.benefit, size, seq, true) {
			c.rejected.Add(1)
			return false
		}
	}
	// Bytes reserved; link the entry into the home shard.
	s := c.shardOf(n)
	s.mu.Lock()
	if n.cached.Load() != nil {
		s.mu.Unlock()
		c.release(size)
		r.stats.materializations.Add(1)
		return true // a concurrent producer published first
	}
	c.insertLocked(s, e)
	n.cached.Store(e)
	s.mu.Unlock()
	n.mu.Lock()
	n.estBytes = size
	n.card = rows
	n.mu.Unlock()
	updateHROnAdd(n, seq, r.cfg.Alpha)
	r.stats.materializations.Add(1)
	return true
}

// groupScan runs the knapsack replacement scan (§III-E) for a result of
// the given size and benefit over its size group: candidates accumulate in
// ascending benefit order, per shard, while the selected set's average
// benefit stays below the incoming benefit. The scan starts at the home
// shard and spills to the others, one shard lock at a time.
//
// With evict=false it only answers feasibility (nothing is touched),
// refreshing and re-sorting each visited group's benefits. With evict=true
// it removes the selected victims as it goes — applying Eq. 4 — and
// transfers their bytes directly into the incoming result's reservation
// (never through the free pool, so a concurrent admission cannot steal
// replacement space); it returns once size bytes are reserved. The evict
// pass reuses the benefit ordering the immediately preceding feasibility
// pass computed rather than refreshing again under the shard lock.
func (r *Recycler) groupScan(home uint64, benefit float64, size int64, seq uint64, evict bool) bool {
	c := r.cache
	gi := sizeGroup(size)
	var sumBenefit float64
	var pending int64  // selected but not-yet-claimed bytes (this pass)
	var reserved int64 // bytes already claimed for the incoming result
	nv := 0
	for i := 0; i < len(c.shards); i++ {
		s := &c.shards[(home+uint64(i))&c.mask]
		s.mu.Lock()
		if !evict {
			refreshGroupLocked(s, gi, r.benefitNow)
		}
		var victims []*Entry
		enough := false
		for _, cand := range s.groups[gi] {
			if cand.pins > 0 {
				continue
			}
			if (sumBenefit+cand.benefit)/float64(nv+1) >= benefit {
				break // rest of this shard's group is at least as good
			}
			sumBenefit += cand.benefit
			pending += cand.Size
			nv++
			if evict {
				victims = append(victims, cand)
			}
			if c.capacity-c.used.Load()+pending+reserved >= size {
				enough = true
				break
			}
		}
		if evict {
			for _, v := range victims {
				c.unlinkLocked(s, v)
				v.Node.cached.Store(nil)
				updateHROnEvict(v.Node, seq, r.cfg.Alpha)
				transfer := v.Size
				if transfer > size-reserved {
					transfer = size - reserved
				}
				reserved += transfer
				if refund := v.Size - transfer; refund > 0 {
					c.used.Add(-refund)
				}
			}
			pending = 0
		}
		s.mu.Unlock()
		if evict {
			if reserved >= size {
				return true
			}
			if c.reserve(size - reserved) {
				return true
			}
		} else if enough {
			return true
		}
	}
	if reserved > 0 {
		c.release(reserved)
	}
	return false
}

// EvictEntry removes a specific cache entry if it is still the node's
// published one. The rewriter uses it to drop entries whose snapshot tag no
// longer matches the statement's epoch (lazy invalidation of results that
// were admitted by in-flight producers after the commit walk ran): the
// pointer comparison ensures a concurrently delta-extended replacement is
// not evicted by mistake.
func (r *Recycler) EvictEntry(n *Node, e *Entry) {
	s := r.cache.shardOf(n)
	s.mu.Lock()
	if n.cached.Load() != e {
		s.mu.Unlock()
		return
	}
	r.cache.removeLocked(s, e)
	n.cached.Store(nil)
	s.mu.Unlock()
	updateHROnEvict(n, r.curSeq(), r.cfg.Alpha)
	r.stats.invalidated.Add(1)
}

// Evict removes a node's cached result (if any), applying Eq. 4.
func (r *Recycler) Evict(n *Node) {
	s := r.cache.shardOf(n)
	s.mu.Lock()
	e := n.cached.Load()
	if e == nil {
		s.mu.Unlock()
		return
	}
	r.cache.removeLocked(s, e)
	n.cached.Store(nil)
	s.mu.Unlock()
	updateHROnEvict(n, r.curSeq(), r.cfg.Alpha)
}

// FlushCache evicts every unpinned result (the Fig. 6 invalidation
// protocol), one shard at a time.
func (r *Recycler) FlushCache() {
	seq := r.curSeq()
	c := r.cache
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		var flushed []*Entry
		for _, g := range sortedGroups(s.groups) {
			es := s.groups[g]
			keep := es[:0]
			for _, e := range es {
				if e.pins > 0 {
					keep = append(keep, e)
					continue
				}
				c.used.Add(-e.Size)
				c.count.Add(-1)
				c.evictions.Add(1)
				e.Node.cached.Store(nil)
				flushed = append(flushed, e)
			}
			s.groups[g] = keep
		}
		for _, e := range flushed {
			updateHROnEvict(e.Node, seq, r.cfg.Alpha)
		}
		s.mu.Unlock()
	}
}

// Stats returns a snapshot of activity counters. Counters are read
// individually without a global lock, so a snapshot taken while queries run
// is approximate (each counter is itself exact).
func (r *Recycler) Stats() Stats {
	s := Stats{
		Queries:          r.stats.queries.Load(),
		NodesMatched:     r.stats.nodesMatched.Load(),
		NodesInserted:    r.stats.nodesInserted.Load(),
		Reuses:           r.stats.reuses.Load(),
		SubsumptionReuse: r.stats.subsumptionReuse.Load(),
		Materializations: r.stats.materializations.Load(),
		SpecCancels:      r.stats.specCancels.Load(),
		SpecCommits:      r.stats.specCommits.Load(),
		Stalls:           r.stats.stalls.Load(),
		StallReuses:      r.stats.stallReuses.Load(),
		InflightShared:   r.stats.inflightShared.Load(),
		Invalidated:      r.stats.invalidated.Load(),
		DeltaExtended:    r.stats.deltaExtended.Load(),
		DeltaExtendRows:  r.stats.deltaRows.Load(),
		MatchTime:        time.Duration(r.stats.matchNanos.Load()),
		Admissions:       r.cache.admissions.Load(),
		Evictions:        r.cache.evictions.Load(),
		Rejected:         r.cache.rejected.Load(),
		CacheBytes:       r.cache.used.Load(),
		CacheEntries:     int(r.cache.count.Load()),
	}
	s.GraphNodes = r.graph.Size()
	s.InsertConflicts = r.graph.Conflicts()
	return s
}

// CountSpecCancel bumps the speculation-cancel counter.
func (r *Recycler) CountSpecCancel() { r.stats.specCancels.Add(1) }

// CountSpecCommit bumps the speculation-commit counter.
func (r *Recycler) CountSpecCommit() { r.stats.specCommits.Add(1) }

// CountStall records a stall on an in-flight materialization.
func (r *Recycler) CountStall(reused bool) {
	r.stats.stalls.Add(1)
	if reused {
		r.stats.stallReuses.Add(1)
	}
}

// CountSubsumptionReuse records a reuse through a subsumption edge.
func (r *Recycler) CountSubsumptionReuse() { r.stats.subsumptionReuse.Add(1) }

// EstimateResultBytes estimates a node's result size from its measured
// cardinality and output types (used before a result was ever materialized;
// string widths use the paper's sampling idea, approximated by a fixed
// average width).
func EstimateResultBytes(n *Node, card int64) int64 {
	if card < 0 {
		return -1
	}
	var width int64
	for _, t := range n.OutTypes {
		w := t.Width()
		if t == vector.String {
			w += 16 // sampled average payload width
		}
		width += w
	}
	if width == 0 {
		width = 8
	}
	return card * width
}
