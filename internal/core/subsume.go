package core

import (
	"sort"
	"strings"

	"recycledb/internal/expr"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// Subsumption (§IV-A): node a subsumes node b if b's result can be derived
// from a's result. The recycler graph records subsumption as specialized
// OR-edges consulted only after exact matching fails. Supported relations:
//
//   - selection subsumption: same child, predicate of b implies predicate
//     of a (range/equality analysis over conjunctions);
//   - column subsumption on aggregates: same child and group-by, b's
//     aggregates a subset of a's (derive by projection);
//   - tuple subsumption on aggregates: same child, b's group-by a subset of
//     a's, b's aggregates decomposable and present in a (derive by
//     re-aggregation);
//   - top-N subsumption: same child and sort keys, b.N <= a.N (derive by
//     prefix).

// SubMeta is the structured operator information retained for subsumption
// tests (graph-namespace column names).
type SubMeta struct {
	Intervals map[string]Interval // Select: conjunctive range constraints
	GroupBy   []string            // Aggregate: sorted group-by columns
	AggSigs   []string            // Aggregate: canonical agg signatures
	Decompose bool                // Aggregate: all aggs sum/count/min/max
	SortKeys  string              // TopN: canonical keys
	N         int                 // TopN: the N
	ok        bool
}

// Interval is a one-column range constraint with optional open bounds.
type Interval struct {
	Lo, Hi         vector.Datum
	HasLo, HasHi   bool
	LoOpen, HiOpen bool
}

// meta is attached lazily at insert time.
func buildMeta(n *plan.Node, rename func(string) string) *SubMeta {
	switch n.Op {
	case plan.Select:
		iv, ok := AnalyzePred(n.Pred, rename)
		if !ok {
			return nil
		}
		return &SubMeta{Intervals: iv, ok: true}
	case plan.Aggregate:
		m := &SubMeta{ok: true, Decompose: true}
		for _, g := range n.GroupBy {
			m.GroupBy = append(m.GroupBy, rename(g))
		}
		sort.Strings(m.GroupBy)
		for _, a := range n.Aggs {
			sig := a.Func.String() + "("
			if a.Arg != nil {
				sig += a.Arg.Canon(rename)
			} else {
				sig += "*"
			}
			sig += ")"
			m.AggSigs = append(m.AggSigs, sig)
			if a.Func == plan.Avg {
				m.Decompose = false
			}
		}
		return m
	case plan.TopN:
		keys := make([]string, len(n.Keys))
		for i, k := range n.Keys {
			dir := "a"
			if k.Desc {
				dir = "d"
			}
			keys[i] = rename(k.Col) + ":" + dir
		}
		return &SubMeta{SortKeys: strings.Join(keys, ","), N: n.N, ok: true}
	}
	return nil
}

// linkSubsumption inspects siblings (same-op parents of the same child) and
// records subsumption edges between gn and any related node. Called with the
// graph write lock held, right after insertion (§IV-A). The paper links each
// node only to its tightest subsumer; we keep direct edges to every detected
// subsumer/subsumee, which preserves reachability (transitive edges are
// redundant but harmless).
func (g *Graph) linkSubsumption(gn *Node, n *plan.Node, rename func(string) string) {
	meta := buildMeta(n, rename)
	if meta == nil {
		return
	}
	gn.meta = meta
	if len(gn.Children) != 1 {
		return
	}
	child := gn.Children[0]
	// Sort the parent-index keys so subsumption edges accumulate in the
	// same order on every run: rewrite walks subsumers in slice order, so
	// edge order must not inherit map randomization.
	keys := make([]uint64, 0, len(child.parents))
	for k := range child.parents {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		for _, sib := range child.parents[k] {
			if sib == gn || sib.Op != gn.Op || len(sib.Children) != 1 || sib.Children[0] != child {
				continue
			}
			sm := sib.meta
			if sm == nil {
				continue
			}
			if subsumes(sm, meta, gn.Op) {
				gn.subsumers = append(gn.subsumers, sib)
				sib.subsumees = append(sib.subsumees, gn)
			}
			if subsumes(meta, sm, gn.Op) {
				sib.subsumers = append(sib.subsumers, gn)
				gn.subsumees = append(gn.subsumees, sib)
			}
		}
	}
}

// Subsumers returns the nodes whose results subsume n's result, nearest
// first, following subsumption edges transitively.
func (n *Node) Subsumers() []*Node {
	var out []*Node
	seen := map[*Node]struct{}{n: {}}
	frontier := n.subsumers
	for len(frontier) > 0 {
		var next []*Node
		for _, s := range frontier {
			if _, ok := seen[s]; ok {
				continue
			}
			seen[s] = struct{}{}
			out = append(out, s)
			next = append(next, s.subsumers...)
		}
		frontier = next
	}
	return out
}

// Meta returns the node's subsumption metadata, if any.
func (n *Node) Meta() *SubMeta { return n.meta }

// subsumes reports whether a's result subsumes b's (b derivable from a).
func subsumes(a, b *SubMeta, op plan.Op) bool {
	if a == nil || b == nil || !a.ok || !b.ok {
		return false
	}
	switch op {
	case plan.Select:
		return impliesAll(b.Intervals, a.Intervals)
	case plan.Aggregate:
		if equalStrings(a.GroupBy, b.GroupBy) {
			// Column subsumption: project b's aggregates out of a.
			return subset(b.AggSigs, a.AggSigs)
		}
		// Tuple subsumption: re-aggregate a at b's coarser grouping.
		return b.Decompose && subset(b.GroupBy, a.GroupBy) && subset(b.AggSigs, a.AggSigs)
	case plan.TopN:
		return a.SortKeys == b.SortKeys && b.N <= a.N
	}
	return false
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func subset(sub, super []string) bool {
	set := make(map[string]struct{}, len(super))
	for _, s := range super {
		set[s] = struct{}{}
	}
	for _, s := range sub {
		if _, ok := set[s]; !ok {
			return false
		}
	}
	return true
}

// AnalyzePred extracts per-column range constraints from a conjunction of
// simple comparisons (col <op> literal). ok=false if the predicate contains
// anything beyond that (OR, LIKE, arithmetic over columns, ...).
func AnalyzePred(e expr.Expr, rename func(string) string) (map[string]Interval, bool) {
	out := make(map[string]Interval)
	if !collectConstraints(e, rename, out) {
		return nil, false
	}
	return out, true
}

func collectConstraints(e expr.Expr, rename func(string) string, out map[string]Interval) bool {
	switch x := e.(type) {
	case *expr.And:
		for _, sub := range x.Es {
			if !collectConstraints(sub, rename, out) {
				return false
			}
		}
		return true
	case *expr.Cmp:
		col, lit, op, ok := normalizeCmp(x)
		if !ok {
			return false
		}
		name := rename(col.Name)
		iv := out[name]
		switch op {
		case expr.EQ:
			iv = intersect(iv, Interval{Lo: lit, Hi: lit, HasLo: true, HasHi: true})
		case expr.LT:
			iv = intersect(iv, Interval{Hi: lit, HasHi: true, HiOpen: true})
		case expr.LE:
			iv = intersect(iv, Interval{Hi: lit, HasHi: true})
		case expr.GT:
			iv = intersect(iv, Interval{Lo: lit, HasLo: true, LoOpen: true})
		case expr.GE:
			iv = intersect(iv, Interval{Lo: lit, HasLo: true})
		default: // NE is not an interval
			return false
		}
		out[name] = iv
		return true
	}
	return false
}

// normalizeCmp extracts (column, literal, op) with the column on the left.
func normalizeCmp(c *expr.Cmp) (*expr.Col, vector.Datum, expr.CmpOp, bool) {
	if col, ok := c.L.(*expr.Col); ok {
		if lit, ok := c.R.(*expr.Lit); ok {
			return col, lit.D, c.Op, true
		}
	}
	if col, ok := c.R.(*expr.Col); ok {
		if lit, ok := c.L.(*expr.Lit); ok {
			return col, lit.D, flipCmp(c.Op), true
		}
	}
	return nil, vector.Datum{}, 0, false
}

func flipCmp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.LT:
		return expr.GT
	case expr.LE:
		return expr.GE
	case expr.GT:
		return expr.LT
	case expr.GE:
		return expr.LE
	}
	return op // EQ, NE symmetric
}

// intersect tightens a with b.
func intersect(a, b Interval) Interval {
	if b.HasLo {
		if !a.HasLo || cmpDatum(b.Lo, a.Lo) > 0 || (cmpDatum(b.Lo, a.Lo) == 0 && b.LoOpen) {
			a.Lo, a.HasLo, a.LoOpen = b.Lo, true, b.LoOpen
		}
	}
	if b.HasHi {
		if !a.HasHi || cmpDatum(b.Hi, a.Hi) < 0 || (cmpDatum(b.Hi, a.Hi) == 0 && b.HiOpen) {
			a.Hi, a.HasHi, a.HiOpen = b.Hi, true, b.HiOpen
		}
	}
	return a
}

// cmpDatum compares numerics across int/float/date; falls back to Datum.Compare.
func cmpDatum(a, b vector.Datum) int {
	num := func(t vector.Type) bool {
		return t == vector.Int64 || t == vector.Float64 || t == vector.Date
	}
	if a.Typ != b.Typ && num(a.Typ) && num(b.Typ) {
		af, bf := asF64(a), asF64(b)
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
	return a.Compare(b)
}

func asF64(d vector.Datum) float64 {
	if d.Typ == vector.Float64 {
		return d.F64
	}
	return float64(d.I64)
}

// impliesAll reports whether the strict constraint set implies the loose
// one: every column the loose set constrains must be constrained at least as
// tightly by the strict set.
func impliesAll(strict, loose map[string]Interval) bool {
	//recycledb:nondet-ok — pure ∀-reduction; order cannot affect the result
	for col, lv := range loose {
		sv, ok := strict[col]
		if !ok {
			return false
		}
		if !within(sv, lv) {
			return false
		}
	}
	return true
}

// within reports whether inner ⊆ outer.
func within(inner, outer Interval) bool {
	if outer.HasLo {
		if !inner.HasLo {
			return false
		}
		c := cmpDatum(inner.Lo, outer.Lo)
		if c < 0 || (c == 0 && outer.LoOpen && !inner.LoOpen) {
			return false
		}
	}
	if outer.HasHi {
		if !inner.HasHi {
			return false
		}
		c := cmpDatum(inner.Hi, outer.Hi)
		if c > 0 || (c == 0 && outer.HiOpen && !inner.HiOpen) {
			return false
		}
	}
	return true
}
