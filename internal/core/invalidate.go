package core

import (
	"maps"

	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// Lineage-based cache invalidation (beyond the paper, which assumes static
// tables; cf. Dursun et al., SIGMOD 2017): every cached entry is tagged
// with the snapshot it was computed at, and a committed write epoch walks
// the sharded cache touching only the dependents of the written table.
// Pure append commits do not evict entries over append-only subplans —
// selection/projection chains are *delta-extended* by running the cached
// subplan over just the appended rows and appending to the cached result,
// so hit rates survive insert-heavy workloads. Everything else (join/agg
// dependents, delete epochs, unknown-lineage table functions) is evicted.

// ExtendFunc runs an extendable entry's subplan over the appended row
// window [lo, hi) of table and returns the delta batches (deep-owned). ok
// reports success; on false the entry is evicted instead.
type ExtendFunc func(e *Entry, table string, lo, hi int64) (delta []*vector.Batch, rows, bytes int64, ok bool)

// InvalidateTable reacts to one committed write epoch on table (now at
// data version ver with row watermark rows): dependents of the table are
// delta-extended when the epoch was append-only and the entry allows it,
// and evicted otherwise. It returns the number of entries evicted and
// extended. The caller serializes invalidations of one table with its next
// write (the catalog runs commit listeners under the table's writer lock),
// so an extension never races a second epoch of the same table.
func (r *Recycler) InvalidateTable(table string, appendOnly bool, ver, rows int64, extend ExtendFunc) (evicted, extended int) {
	c := r.cache
	if c.count.Load() == 0 {
		return 0, 0
	}
	// The walk is O(cached entries) per commit: entries shard by plan
	// signature, so there is no per-table index to narrow the sweep. At
	// the cache sizes the policy sustains (hundreds of entries) this is
	// far cheaper than the eviction storm it replaces; a per-table
	// dependent index is the upgrade path if commit rates ever make the
	// sweep show up in profiles.
	seq := r.curSeq()
	for i := range c.shards {
		s := &c.shards[i]
		var toExtend []*Entry
		s.mu.Lock()
		var victims []*Entry
		for _, g := range sortedGroups(s.groups) {
			for _, e := range s.groups[g] {
				if !dependsOn(e.Node.Tables, table) {
					continue
				}
				// Extension requires version continuity: the entry must be
				// tagged with exactly the pre-commit epoch (ver-1). The
				// walk runs on every commit, so current entries always
				// are; an entry tagged older was admitted around a commit
				// it never saw — extending it could resurrect rows a
				// missed delete epoch removed, so it is evicted instead.
				snap, tagged := tableTag(e, table)
				if appendOnly && extend != nil && e.Extendable && tagged &&
					snap.Ver == ver-1 && snap.Rows <= rows {
					toExtend = append(toExtend, e)
					continue
				}
				victims = append(victims, e)
			}
		}
		for _, e := range victims {
			c.removeLocked(s, e)
			e.Node.cached.Store(nil)
			r.stats.invalidated.Add(1)
			evicted++
		}
		s.mu.Unlock()
		for _, e := range victims {
			updateHROnEvict(e.Node, seq, r.cfg.Alpha)
		}
		// Extensions execute the cached subplan, so they run outside the
		// shard lock; the swap re-validates that the entry is still
		// published (a concurrent policy eviction may have raced us).
		for _, e := range toExtend {
			if r.extendEntry(s, e, table, ver, rows, extend) {
				extended++
			} else {
				evicted++
			}
		}
	}
	return evicted, extended
}

// extendEntry grows one cached entry by the appended delta, swapping in a
// fresh Entry so concurrent replays of the old epoch stay untouched. On any
// failure (extension error, cache over capacity, lost race) the stale entry
// is evicted instead — correctness never depends on the extension.
func (r *Recycler) extendEntry(s *cacheShard, e *Entry, table string, ver, rows int64, extend ExtendFunc) bool {
	lo := e.Snap[table].Rows
	delta, drows, dbytes, ok := extend(e, table, lo, rows)
	c := r.cache
	s.mu.Lock()
	if e.Node.cached.Load() != e {
		s.mu.Unlock()
		return false // concurrently evicted or replaced; nothing to do
	}
	if !ok || (dbytes > 0 && !c.reserve(dbytes)) {
		c.removeLocked(s, e)
		e.Node.cached.Store(nil)
		r.stats.invalidated.Add(1)
		s.mu.Unlock()
		updateHROnEvict(e.Node, r.curSeq(), r.cfg.Alpha)
		return false
	}
	snap := maps.Clone(e.Snap)
	snap[table] = TableSnap{Ver: ver, Rows: rows}
	batches := e.Batches
	if len(delta) > 0 {
		batches = append(append([]*vector.Batch(nil), e.Batches...), delta...)
	}
	ne := &Entry{
		Node: e.Node, Batches: batches,
		Size: e.Size + dbytes, Rows: e.Rows + drows,
		Snap: snap, Plan: e.Plan, Extendable: true,
		benefit: e.benefit,
	}
	c.swapLocked(s, e, ne)
	e.Node.cached.Store(ne)
	s.mu.Unlock()
	r.stats.deltaExtended.Add(1)
	r.stats.deltaRows.Add(drows)
	return true
}

// dependsOn reports whether a lineage set contains table (or the unknown
// sentinel, which depends on everything).
func dependsOn(tables []string, table string) bool {
	for _, t := range tables {
		if t == table || t == plan.LineageAll {
			return true
		}
	}
	return false
}

// tableTag returns the entry's snapshot tag for table. Untagged entries
// (nil Snap, or lineage the tag does not cover) cannot be extended.
func tableTag(e *Entry, table string) (TableSnap, bool) {
	if e.Snap == nil {
		return TableSnap{}, false
	}
	ts, ok := e.Snap[table]
	return ts, ok
}
