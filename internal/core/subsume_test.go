package core

import (
	"testing"

	"recycledb/internal/expr"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

func TestAnalyzePredSimple(t *testing.T) {
	iv, ok := AnalyzePred(expr.Lt(expr.C("a"), expr.Int(10)), expr.Ident)
	if !ok {
		t.Fatal("simple comparison must analyze")
	}
	v := iv["a"]
	if !v.HasHi || v.Hi.I64 != 10 || !v.HiOpen || v.HasLo {
		t.Fatalf("interval = %+v", v)
	}
}

func TestAnalyzePredConjunction(t *testing.T) {
	p := expr.AndOf(
		expr.Ge(expr.C("a"), expr.Int(1)),
		expr.Le(expr.C("a"), expr.Int(5)),
		expr.Eq(expr.C("c"), expr.Str("x")),
	)
	iv, ok := AnalyzePred(p, expr.Ident)
	if !ok {
		t.Fatal("conjunction must analyze")
	}
	a := iv["a"]
	if !a.HasLo || !a.HasHi || a.Lo.I64 != 1 || a.Hi.I64 != 5 || a.LoOpen || a.HiOpen {
		t.Fatalf("a interval = %+v", a)
	}
	c := iv["c"]
	if !c.HasLo || !c.HasHi || c.Lo.Str != "x" {
		t.Fatalf("c interval = %+v", c)
	}
}

func TestAnalyzePredFlippedOperands(t *testing.T) {
	// 10 > a is a < 10.
	iv, ok := AnalyzePred(expr.Gt(expr.Int(10), expr.C("a")), expr.Ident)
	if !ok {
		t.Fatal("flipped comparison must analyze")
	}
	v := iv["a"]
	if !v.HasHi || v.Hi.I64 != 10 || !v.HiOpen {
		t.Fatalf("interval = %+v", v)
	}
}

func TestAnalyzePredRejectsComplex(t *testing.T) {
	for _, p := range []expr.Expr{
		expr.OrOf(expr.Lt(expr.C("a"), expr.Int(1)), expr.Gt(expr.C("a"), expr.Int(5))),
		expr.LikeOf(expr.C("c"), "%x%"),
		expr.Ne(expr.C("a"), expr.Int(3)),
		expr.Lt(expr.Add(expr.C("a"), expr.Int(1)), expr.Int(3)),
	} {
		if _, ok := AnalyzePred(p, expr.Ident); ok {
			t.Fatalf("%T should not analyze", p)
		}
	}
}

func TestIntervalWithin(t *testing.T) {
	i5 := Interval{Hi: vector.NewInt64Datum(5), HasHi: true, HiOpen: true}
	i10 := Interval{Hi: vector.NewInt64Datum(10), HasHi: true, HiOpen: true}
	if !within(i5, i10) {
		t.Fatal("a<5 within a<10")
	}
	if within(i10, i5) {
		t.Fatal("a<10 not within a<5")
	}
	// Open/closed at the same bound.
	le5 := Interval{Hi: vector.NewInt64Datum(5), HasHi: true}
	if !within(i5, le5) {
		t.Fatal("a<5 within a<=5")
	}
	if within(le5, i5) {
		t.Fatal("a<=5 not within a<5")
	}
	// Unbounded outer accepts anything.
	if !within(i5, Interval{}) {
		t.Fatal("anything within unconstrained")
	}
	if within(Interval{}, i5) {
		t.Fatal("unconstrained not within bounded")
	}
}

func TestSelectionSubsumptionEdges(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	wide := selPlan(t, cat, 10) // a < 10
	r.MatchInsert(wide)
	narrow := selPlan(t, cat, 5) // a < 5
	m := r.MatchInsert(narrow)
	gNarrow := m.ByNode[narrow].G
	subs := gNarrow.Subsumers()
	if len(subs) != 1 {
		t.Fatalf("subsumers = %d, want 1", len(subs))
	}
	if subs[0].Params == gNarrow.Params {
		t.Fatal("node subsumes itself?")
	}
}

func TestSelectionSubsumptionTransitive(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	r.MatchInsert(selPlan(t, cat, 100))
	r.MatchInsert(selPlan(t, cat, 10))
	m := r.MatchInsert(selPlan(t, cat, 5))
	g5 := m.ByNode[m5root(m)].G
	subs := g5.Subsumers()
	if len(subs) != 2 {
		t.Fatalf("transitive subsumers = %d, want 2", len(subs))
	}
}

// m5root extracts the single root plan node of a match result.
func m5root(m *MatchResult) *plan.Node {
	for n, nm := range m.ByNode {
		if nm.G.Op == plan.Select {
			// The only select in this result set is the root.
			if len(n.Children) == 1 && n.Children[0].Op == plan.Scan {
				return n
			}
		}
	}
	return nil
}

func TestAggregateTupleSubsumption(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	fine := mustResolve(t, cat, plan.NewAggregate(plan.NewScan("t", "a", "c", "b"),
		[]string{"a", "c"}, plan.A(plan.Sum, expr.C("b"), "s")))
	r.MatchInsert(fine)
	coarse := mustResolve(t, cat, plan.NewAggregate(plan.NewScan("t", "a", "c", "b"),
		[]string{"a"}, plan.A(plan.Sum, expr.C("b"), "s")))
	m := r.MatchInsert(coarse)
	g := m.ByNode[coarse].G
	if len(g.Subsumers()) != 1 {
		t.Fatalf("coarse agg should be subsumed by fine agg, got %d", len(g.Subsumers()))
	}
}

func TestAggregateAvgNotTupleSubsumable(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	fine := mustResolve(t, cat, plan.NewAggregate(plan.NewScan("t", "a", "c", "b"),
		[]string{"a", "c"}, plan.A(plan.Avg, expr.C("b"), "m")))
	r.MatchInsert(fine)
	coarse := mustResolve(t, cat, plan.NewAggregate(plan.NewScan("t", "a", "c", "b"),
		[]string{"a"}, plan.A(plan.Avg, expr.C("b"), "m")))
	m := r.MatchInsert(coarse)
	if len(m.ByNode[coarse].G.Subsumers()) != 0 {
		t.Fatal("avg cannot be re-aggregated; no tuple subsumption")
	}
}

func TestAggregateColumnSubsumption(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	wide := mustResolve(t, cat, plan.NewAggregate(plan.NewScan("t", "a", "b"),
		[]string{"a"},
		plan.A(plan.Sum, expr.C("b"), "s"),
		plan.A(plan.Min, expr.C("b"), "lo")))
	r.MatchInsert(wide)
	narrow := mustResolve(t, cat, plan.NewAggregate(plan.NewScan("t", "a", "b"),
		[]string{"a"}, plan.A(plan.Sum, expr.C("b"), "s")))
	m := r.MatchInsert(narrow)
	if len(m.ByNode[narrow].G.Subsumers()) != 1 {
		t.Fatal("narrow agg should be column-subsumed by wide agg")
	}
}

func TestTopNSubsumption(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	big := mustResolve(t, cat, plan.NewTopN(plan.NewScan("t", "a", "b"),
		[]plan.SortKey{{Col: "b", Desc: true}}, 10000))
	r.MatchInsert(big)
	small := mustResolve(t, cat, plan.NewTopN(plan.NewScan("t", "a", "b"),
		[]plan.SortKey{{Col: "b", Desc: true}}, 10))
	m := r.MatchInsert(small)
	if len(m.ByNode[small].G.Subsumers()) != 1 {
		t.Fatal("top-10 should be subsumed by top-10000")
	}
	// Different keys must not subsume.
	other := mustResolve(t, cat, plan.NewTopN(plan.NewScan("t", "a", "b"),
		[]plan.SortKey{{Col: "a"}}, 5))
	m2 := r.MatchInsert(other)
	if len(m2.ByNode[other].G.Subsumers()) != 0 {
		t.Fatal("different sort keys must not subsume")
	}
}

func TestSubsumptionRequiresSameChild(t *testing.T) {
	cat := testCatalog()
	r := New(DefaultConfig())
	// Same predicates but over different scans: no subsumption.
	p1 := mustResolve(t, cat, plan.NewSelect(plan.NewScan("t", "a"),
		expr.Lt(expr.C("a"), expr.Int(10))))
	r.MatchInsert(p1)
	p2 := mustResolve(t, cat, plan.NewSelect(plan.NewScan("t", "a", "b"),
		expr.Lt(expr.C("a"), expr.Int(5))))
	m := r.MatchInsert(p2)
	if len(m.ByNode[p2].G.Subsumers()) != 0 {
		t.Fatal("different children must not subsume")
	}
}

func TestSubsumesDirectly(t *testing.T) {
	loose := &SubMeta{Intervals: map[string]Interval{
		"a": {Hi: vector.NewInt64Datum(10), HasHi: true},
	}, ok: true}
	strict := &SubMeta{Intervals: map[string]Interval{
		"a": {Hi: vector.NewInt64Datum(5), HasHi: true},
		"b": {Lo: vector.NewInt64Datum(0), HasLo: true},
	}, ok: true}
	if !subsumes(loose, strict, plan.Select) {
		t.Fatal("loose must subsume strict")
	}
	if subsumes(strict, loose, plan.Select) {
		t.Fatal("strict must not subsume loose")
	}
	if subsumes(nil, strict, plan.Select) || subsumes(loose, nil, plan.Select) {
		t.Fatal("nil meta never subsumes")
	}
}

func TestCmpDatumMixedNumeric(t *testing.T) {
	if cmpDatum(vector.NewInt64Datum(5), vector.NewFloat64Datum(5.0)) != 0 {
		t.Fatal("5 == 5.0")
	}
	if cmpDatum(vector.NewInt64Datum(4), vector.NewFloat64Datum(4.5)) != -1 {
		t.Fatal("4 < 4.5")
	}
}
