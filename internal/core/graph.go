// Package core implements the paper's primary contribution: the recycler for
// pipelined query evaluation. It contains the recycler graph (an AND-DAG of
// relational operators indexing the past workload and all cached results,
// §II-III), the benefit metric with true-cost/DMD accounting, importance
// factors and aging (§III-C), the recycler cache with its knapsack-style
// admission and replacement policies (§III-E), speculation support (§III-D),
// and subsumption edges (§IV-A).
//
// # Concurrency
//
// The recycler serves many queries at once, so its state is split into
// independent lock domains instead of one global mutex:
//
//   - Graph.mu (RWMutex) guards graph *structure* only: the leaf hash
//     table, per-node parent indexes, child links, subsumption edges, and
//     node counts. Matching runs almost entirely under the read lock; the
//     write lock is taken only to insert genuinely new nodes (with
//     backwards validation against concurrent inserts of the same node).
//   - Node.mu (per node) guards that node's mutable statistics: importance
//     factor, aging clock, base cost, cardinality, size estimate, and the
//     in-flight registration. Node mutexes are leaf locks: code never
//     acquires a second node mutex, a shard lock, or the graph lock while
//     holding one, so statistic updates from concurrent queries interleave
//     freely without deadlock.
//   - Cache shard mutexes (see cache.go) guard cache membership: each node
//     hashes (by plan signature) to one shard, and that shard's lock
//     covers the node's cached-entry publication and pin counts. At most
//     one shard lock is held at a time.
//
// Lock order is strictly graph -> shard -> node (any prefix may be
// skipped); Node.cached is additionally an atomic pointer so heuristic
// readers (benefit accounting, reference propagation) need no lock at all.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// Node is a recycler graph node: one relational operator with its parameters
// in the graph's own column namespace. Exactly matching subtrees are unified,
// so a node can have many parents.
//
// Field guards: ID through Children and meta are immutable once the node is
// published by MatchInsert. parents and the subsumption edges are guarded by
// the owning Graph's lock. The statistics block is guarded by mu. cached is
// written only under the node's cache-shard lock and read atomically.
type Node struct {
	ID       uint64
	Op       plan.Op
	HashKey  uint64
	Sig      uint64
	Params   string
	OutCols  []string
	OutTypes []vector.Type
	// Tables is the subtree's base-table lineage (sorted; may contain
	// plan.LineageAll when a table function's reads are undeclared). The
	// invalidation walk keys on it.
	Tables   []string
	Children []*Node

	// parents is the per-node hash index used to find matching
	// candidates one level up (§III-A). Guarded by the graph lock.
	parents map[uint64][]*Node

	// subsumers are nodes whose result subsumes this node's result
	// (specialized OR-edges, §IV-A); subsumees is the inverse. Guarded by
	// the graph lock.
	subsumers []*Node
	subsumees []*Node
	meta      *SubMeta

	// mu guards the statistics below (§III-C) and the in-flight
	// registration. It is a leaf lock: never acquire any other lock while
	// holding it.
	mu        sync.Mutex
	hr        float64       // importance factor (aged lazily); guarded by mu
	ageSeq    uint64        // last aging fold; guarded by mu
	baseCost  time.Duration // guarded by mu
	costKnown bool          // guarded by mu
	card      int64         // guarded by mu
	estBytes  int64         // guarded by mu
	execCount int64         // guarded by mu
	inflight  *inflight     // guarded by mu

	// cached points to this node's recycler-cache entry, or nil. Written
	// only under the node's cache-shard lock; read lock-free.
	cached atomic.Pointer[Entry]
}

// BaseCost returns the node's last measured base cost (cost from base
// tables, Eq. 2).
func (n *Node) BaseCost() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.baseCost
}

// CostKnown reports whether the node has ever been executed and measured.
func (n *Node) CostKnown() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.costKnown
}

// Card returns the last measured output cardinality.
func (n *Node) Card() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.card
}

// EstBytes returns the last measured or estimated result size in bytes.
func (n *Node) EstBytes() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.estBytes
}

// Graph is the recycler graph. Matching runs under a read lock; insertion
// takes the write lock and re-validates its candidates first (backwards
// validation in the spirit of the paper's node-granularity optimistic
// concurrency control: a concurrent insert of the same node is detected and
// adopted instead of duplicated).
type Graph struct {
	mu     sync.RWMutex
	nextID uint64             // guarded by mu
	leaves map[uint64][]*Node // guarded by mu
	nodes  int                // guarded by mu
	// conflicts counts insert-time validation hits (another query
	// concurrently inserted the node we were about to add).
	conflicts int64 // guarded by mu
}

// NewGraph returns an empty recycler graph.
func NewGraph() *Graph {
	return &Graph{leaves: make(map[uint64][]*Node)}
}

// Size returns the number of nodes in the graph.
func (g *Graph) Size() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.nodes
}

// Conflicts returns the number of optimistic-insert conflicts observed.
func (g *Graph) Conflicts() int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.conflicts
}

// NodeMatch annotates one query-plan node with its recycler graph node, the
// name mapping from query column names to graph column names (for this
// node's output columns), and whether the node existed before this query.
type NodeMatch struct {
	G       *Node
	Existed bool
	OutMap  map[string]string
}

// MatchResult is the outcome of matching/inserting a whole query tree.
type MatchResult struct {
	ByNode   map[*plan.Node]*NodeMatch
	Inserted int
	Matched  int
	// Cost is the wall time spent matching and inserting (Fig. 10).
	Cost time.Duration
}

// MatchInsert runs the bottom-up matching pass of Algorithm 1 over the query
// tree, inserting nodes that have no exact match, and returns the per-node
// annotations. The tree must be resolved.
func (g *Graph) MatchInsert(root *plan.Node) *MatchResult {
	start := time.Now()
	res := &MatchResult{ByNode: make(map[*plan.Node]*NodeMatch, root.Count())}
	g.matchNode(root, res)
	res.Cost = time.Since(start)
	return res
}

// matchNode matches or inserts one node, post-order.
func (g *Graph) matchNode(n *plan.Node, res *MatchResult) *NodeMatch {
	childMatches := make([]*NodeMatch, len(n.Children))
	for i, c := range n.Children {
		childMatches[i] = g.matchNode(c, res)
	}
	rename := renameFunc(childMatches)
	hk := n.HashKey()
	sig := n.Signature(rename)
	params := n.ParamString(rename)

	// Fast path: find an exact match under the read lock.
	g.mu.RLock()
	cand := g.findExactLocked(n, hk, sig, params, childMatches)
	g.mu.RUnlock()
	if cand == nil {
		// Insert under the write lock, revalidating first (optimistic
		// concurrency control with backwards validation).
		g.mu.Lock()
		cand = g.findExactLocked(n, hk, sig, params, childMatches)
		if cand != nil {
			g.conflicts++
		} else {
			cand = g.insertLocked(n, hk, sig, params, rename, childMatches)
			g.mu.Unlock()
			nm := &NodeMatch{G: cand, Existed: false, OutMap: outMap(n, cand)}
			res.ByNode[n] = nm
			res.Inserted++
			return nm
		}
		g.mu.Unlock()
	}
	nm := &NodeMatch{G: cand, Existed: true, OutMap: outMap(n, cand)}
	res.ByNode[n] = nm
	res.Matched++
	return nm
}

// renameFunc builds the query-to-graph rename over the children's output
// mappings (the paper's name mapping M, §III-A).
func renameFunc(childMatches []*NodeMatch) func(string) string {
	if len(childMatches) == 0 {
		return func(s string) string { return s }
	}
	return func(s string) string {
		for _, cm := range childMatches {
			if gname, ok := cm.OutMap[s]; ok {
				return gname
			}
		}
		return s
	}
}

// outMap builds the positional output-name mapping query->graph for node n
// matched/inserted as graph node gn.
func outMap(n *plan.Node, gn *Node) map[string]string {
	names := n.Schema().Names()
	m := make(map[string]string, len(names))
	for i, qn := range names {
		m[qn] = gn.OutCols[i]
	}
	return m
}

// findExactLocked implements matching over the candidate lists: leaves come from
// the global leaf hash table, inner nodes from the matched child's parent
// index. Since exactly matching subtrees are unified there is at most one
// match (§III-A).
func (g *Graph) findExactLocked(n *plan.Node, hk, sig uint64, params string, childMatches []*NodeMatch) *Node {
	var cands []*Node
	if len(childMatches) == 0 {
		cands = g.leaves[hk]
	} else {
		cands = childMatches[0].G.parents[hk]
	}
	for _, c := range cands {
		if c.Sig != sig || c.Op != n.Op || c.Params != params {
			continue
		}
		if len(c.Children) != len(childMatches) {
			continue
		}
		ok := true
		for i, cm := range childMatches {
			if c.Children[i] != cm.G {
				ok = false
				break
			}
		}
		if ok {
			return c
		}
	}
	return nil
}

// insertLocked copies the query node into the graph; the caller holds the write lock.
func (g *Graph) insertLocked(n *plan.Node, hk, sig uint64, params string, rename func(string) string, childMatches []*NodeMatch) *Node {
	g.nextID++
	gn := &Node{
		ID:      g.nextID,
		Op:      n.Op,
		HashKey: hk,
		Sig:     sig,
		Params:  params,
		Tables:  append([]string(nil), n.Lineage()...),
		parents: make(map[uint64][]*Node),
	}
	// Output columns: pass-through names keep their (mapped) graph names,
	// newly assigned names are made graph-unique with the node id suffix
	// (the paper appends a query-specific identifier, §III-B).
	assigned := make(map[string]struct{})
	for _, a := range n.AssignedNames() {
		assigned[a] = struct{}{}
	}
	sch := n.Schema()
	gn.OutCols = make([]string, len(sch))
	gn.OutTypes = make([]vector.Type, len(sch))
	for i, c := range sch {
		gn.OutTypes[i] = c.Typ
		if _, isNew := assigned[c.Name]; isNew {
			gn.OutCols[i] = fmt.Sprintf("%s@%d", c.Name, gn.ID)
		} else {
			gn.OutCols[i] = rename(c.Name)
		}
	}
	gn.Children = make([]*Node, len(childMatches))
	for i, cm := range childMatches {
		gn.Children[i] = cm.G
		cm.G.parents[hk] = append(cm.G.parents[hk], gn)
	}
	if len(childMatches) == 0 {
		g.leaves[hk] = append(g.leaves[hk], gn)
	}
	g.nodes++
	g.linkSubsumption(gn, n, rename)
	return gn
}

// Truncate removes nodes that have not been referenced since cutoffSeq and
// have no cached result, no in-flight producer, and no surviving parents
// (§II: "the graph can, e.g., be truncated by periodically removing subtrees
// that have not been accessed for some time"). It returns the number of
// nodes removed. Removal proceeds top-down so shared subtrees survive while
// any referencing parent survives. Truncation of a node races benignly with
// a concurrent admission publishing a result for it: the entry stays
// replayable and is reclaimed by the next flush.
func (g *Graph) Truncate(cutoffSeq uint64) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	removed := 0
	for {
		victims := g.collectVictimsLocked(cutoffSeq)
		if len(victims) == 0 {
			return removed
		}
		for _, v := range victims {
			g.removeNodeLocked(v)
			removed++
		}
	}
}

// collectVictimsLocked finds currently removable nodes (no parents, stale, not
// cached, not in flight).
func (g *Graph) collectVictimsLocked(cutoffSeq uint64) []*Node {
	var out []*Node
	seen := make(map[*Node]struct{})
	var walk func(n *Node)
	walk = func(n *Node) {
		if _, ok := seen[n]; ok {
			return
		}
		seen[n] = struct{}{}
		parents := 0
		//recycledb:nondet-ok — commutative count over the parent index
		for _, ps := range n.parents {
			parents += len(ps)
		}
		n.mu.Lock()
		stale := n.ageSeq < cutoffSeq && n.inflight == nil
		n.mu.Unlock()
		if parents == 0 && stale && n.cached.Load() == nil {
			out = append(out, n)
		}
		//recycledb:nondet-ok — visit order erased by the ID sort below
		for _, p := range n.parents {
			for _, pp := range p {
				walk(pp)
			}
		}
	}
	//recycledb:nondet-ok — visit order erased by the ID sort below
	for _, leaves := range g.leaves {
		for _, l := range leaves {
			walk(l)
		}
	}
	// The walk reaches every removable node regardless of map order; sort
	// by insertion ID so eviction processes victims deterministically.
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// removeNodeLocked unlinks n from its children's parent indexes, the leaf table,
// and subsumption edges (write lock held).
func (g *Graph) removeNodeLocked(n *Node) {
	for _, c := range n.Children {
		ps := c.parents[n.HashKey]
		for i, p := range ps {
			if p == n {
				c.parents[n.HashKey] = append(ps[:i], ps[i+1:]...)
				break
			}
		}
	}
	if len(n.Children) == 0 {
		ls := g.leaves[n.HashKey]
		for i, l := range ls {
			if l == n {
				g.leaves[n.HashKey] = append(ls[:i], ls[i+1:]...)
				break
			}
		}
	}
	for _, s := range n.subsumers {
		s.subsumees = removeFrom(s.subsumees, n)
	}
	for _, s := range n.subsumees {
		s.subsumers = removeFrom(s.subsumers, n)
	}
	g.nodes--
}

func removeFrom(ns []*Node, x *Node) []*Node {
	for i, n := range ns {
		if n == x {
			return append(ns[:i], ns[i+1:]...)
		}
	}
	return ns
}

// RLocked runs f under the graph's read lock (structure snapshots:
// subsumption-edge traversal, introspection).
func (g *Graph) RLocked(f func()) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	f()
}

// Describe renders the node for debugging.
func (n *Node) Describe() string {
	return fmt.Sprintf("#%d %s[%s] out(%s)", n.ID, n.Op, n.Params, strings.Join(n.OutCols, ","))
}
