package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"recycledb/internal/expr"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// mkBatch builds a single-batch result of n rows.
func mkBatch(n int) []*vector.Batch {
	b := vector.NewBatch([]vector.Type{vector.Int64}, n)
	for i := 0; i < n; i++ {
		b.Vecs[0].AppendInt64(int64(i))
	}
	return []*vector.Batch{b}
}

// TestCacheInvariantsUnderRandomOps drives the recycler cache with a random
// admit/evict/flush/pin sequence and checks the structural invariants after
// every step: used == sum of entry sizes, used <= capacity, count == number
// of entries, and hR never negative.
func TestCacheInvariantsUnderRandomOps(t *testing.T) {
	cat := testCatalog()
	cfg := DefaultConfig()
	cfg.Alpha = 1
	cfg.CacheBytes = 4096
	r := New(cfg)

	// A pool of graph nodes from distinct selections.
	var nodes []*Node
	for i := 0; i < 12; i++ {
		p := selPlan(t, cat, int64(i))
		r.BeginQuery()
		m := r.MatchInsert(p)
		r.AddRefs(p, m)
		g := m.ByNode[p].G
		r.UpdateStats(g, time.Duration(1+i)*time.Millisecond, 10, int64(100+50*i))
		nodes = append(nodes, g)
	}
	rng := rand.New(rand.NewSource(99))
	var pinned []*Entry
	check := func(step int) {
		var used int64
		count := 0
		for _, e := range r.cache.entries() {
			used += e.Size
			count++
		}
		if used != r.cache.Used() {
			t.Fatalf("step %d: used %d != sum %d", step, r.cache.Used(), used)
		}
		if r.cache.Count() != count {
			t.Fatalf("step %d: count %d != entries %d", step, r.cache.Count(), count)
		}
		if r.cache.capacity > 0 && r.cache.Used() > r.cache.capacity {
			t.Fatalf("step %d: used %d exceeds capacity", step, r.cache.Used())
		}
		for _, n := range nodes {
			if hr := r.HR(n); hr < 0 {
				t.Fatalf("step %d: negative hr %v", step, hr)
			}
		}
	}
	for step := 0; step < 2000; step++ {
		n := nodes[rng.Intn(len(nodes))]
		switch rng.Intn(6) {
		case 0, 1: // admit
			size := int64(50 + rng.Intn(1000))
			r.Admit(n, mkBatch(4), 4, size, time.Duration(1+rng.Intn(5))*time.Millisecond, -1)
		case 2: // evict
			r.Evict(n)
		case 3: // pin / release
			if e := r.Cached(n); e != nil {
				if rng.Intn(2) == 0 {
					pinned = append(pinned, e)
				} else {
					r.Release(e)
				}
			}
		case 4: // flush
			if rng.Intn(10) == 0 {
				r.FlushCache()
			}
		case 5: // reference traffic
			p := selPlan(t, cat, int64(rng.Intn(12)))
			r.BeginQuery()
			m := r.MatchInsert(p)
			r.AddRefs(p, m)
		}
		check(step)
	}
	for _, e := range pinned {
		r.Release(e)
	}
	check(-1)
}

// TestHREvictAdmitSymmetry: admitting then evicting a result restores every
// descendant's importance factor (Eq. 3 and Eq. 4 are inverses when no
// references arrive in between).
func TestHREvictAdmitSymmetry(t *testing.T) {
	f := func(refs uint8) bool {
		cat := testCatalog()
		cfg := DefaultConfig()
		cfg.Alpha = 1
		r := New(cfg)
		p := selPlan(t, cat, 5)
		r.BeginQuery()
		m := r.MatchInsert(p)
		r.AddRefs(p, m)
		for i := 0; i < int(refs%16); i++ {
			pp := selPlan(t, cat, 5)
			r.BeginQuery()
			mm := r.MatchInsert(pp)
			r.AddRefs(pp, mm)
		}
		sel := m.ByNode[p].G
		scan := m.ByNode[p.Children[0]].G
		before := r.HR(scan)
		r.UpdateStats(sel, time.Millisecond, 4, 64)
		if !r.Admit(sel, mkBatch(4), 4, 64, time.Millisecond, 1) {
			return false
		}
		r.Evict(sel)
		return r.HR(scan) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestGraphUnificationProperty: any two structurally identical random plans
// match to the same graph nodes; structurally different ones do not.
func TestGraphUnificationProperty(t *testing.T) {
	cat := testCatalog()
	build := func(seed int64) *plan.Node {
		rng := rand.New(rand.NewSource(seed))
		var n *plan.Node = plan.NewScan("t", "a", "b")
		depth := 1 + rng.Intn(3)
		for i := 0; i < depth; i++ {
			switch rng.Intn(3) {
			case 0:
				n = plan.NewSelect(n, expr.Lt(expr.C("a"), expr.Int(int64(rng.Intn(10)))))
			case 1:
				n = plan.NewProject(n,
					plan.P(expr.C("a"), "a"),
					plan.P(expr.Mul(expr.C("b"), expr.Flt(float64(rng.Intn(5)))), "b"))
			case 2:
				return plan.NewAggregate(n, []string{"a"},
					plan.A(plan.Sum, expr.C("b"), "s"))
			}
		}
		return n
	}
	f := func(seed int64) bool {
		r := New(DefaultConfig())
		p1 := build(seed)
		p2 := build(seed)
		if err := p1.Resolve(cat); err != nil {
			return false
		}
		if err := p2.Resolve(cat); err != nil {
			return false
		}
		m1 := r.MatchInsert(p1)
		m2 := r.MatchInsert(p2)
		if m2.Inserted != 0 {
			return false // identical plan must fully match
		}
		return m1.ByNode[p1].G == m2.ByNode[p2].G
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestBenefitMonotonicity: benefit grows with cost and shrinks with size.
func TestBenefitMonotonicity(t *testing.T) {
	f := func(c1, c2 uint32, s1, s2 uint32) bool {
		hr := 2.0
		costA := time.Duration(c1%1e6+1) * time.Microsecond
		costB := time.Duration(c2%1e6+1) * time.Microsecond
		sizeA := int64(s1%1e6 + 1)
		sizeB := int64(s2%1e6 + 1)
		if costA >= costB && sizeA <= sizeB {
			return BenefitValue(costA, hr, sizeA) >= BenefitValue(costB, hr, sizeB)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSizeGroupProperty: entries land in the group of their size's log2, and
// nearby sizes share groups.
func TestSizeGroupProperty(t *testing.T) {
	f := func(sz uint32) bool {
		s := int64(sz%1e7 + 1)
		g := sizeGroup(s)
		// Doubling the size moves up at most one group (plus rounding).
		g2 := sizeGroup(2 * s)
		return g2 == g+1 || g2 == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if sizeGroup(0) != 0 || sizeGroup(-5) != 0 {
		t.Fatal("non-positive sizes must map to group 0")
	}
}

// TestAgingNeverIncreasesHR: folding age can only shrink hr.
func TestAgingNeverIncreasesHR(t *testing.T) {
	f := func(h uint16, gap uint8) bool {
		n := &Node{hr: float64(h), ageSeq: 0}
		before := n.hr
		n.mu.Lock()
		foldAgeLocked(n, uint64(gap), 0.9)
		n.mu.Unlock()
		return n.hr <= before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTrueCostNeverNegative: the DMD discount is clamped.
func TestTrueCostNeverNegative(t *testing.T) {
	cat := testCatalog()
	cfg := DefaultConfig()
	cfg.Alpha = 1
	r := New(cfg)
	p := selPlan(t, cat, 5)
	r.BeginQuery()
	m := r.MatchInsert(p)
	sel := m.ByNode[p].G
	scan := m.ByNode[p.Children[0]].G
	// Pathological stats: the child "costs more" than the parent.
	r.UpdateStats(scan, 10*time.Second, 10, 80)
	r.UpdateStats(sel, time.Millisecond, 5, 40)
	r.Admit(scan, mkBatch(4), 10, 80, 10*time.Second, 1)
	if tc := r.TrueCost(sel); tc < 0 {
		t.Fatalf("true cost went negative: %v", tc)
	}
}

// TestConcurrentCacheAccounting hammers the sharded cache from many
// goroutines with admissions, evictions, flushes, pins, and reference
// traffic while a monitor continuously observes the global byte accounting.
// The invariants: used bytes never exceed CacheBytes, never go negative,
// and once the storm quiesces the counters reconcile exactly — used equals
// the sum of entry sizes, the entry count matches, and admissions minus
// evictions equals the live entry count.
func TestConcurrentCacheAccounting(t *testing.T) {
	cat := testCatalog()
	cfg := DefaultConfig()
	cfg.Alpha = 1
	cfg.CacheBytes = 1 << 14
	cfg.CacheShards = 4
	r := New(cfg)

	var nodes []*Node
	for i := 0; i < 48; i++ {
		p := selPlan(t, cat, int64(i))
		r.BeginQuery()
		m := r.MatchInsert(p)
		r.AddRefs(p, m)
		g := m.ByNode[p].G
		r.UpdateStats(g, time.Duration(1+i)*time.Millisecond, 10, int64(100+40*i))
		nodes = append(nodes, g)
	}

	const workers = 8
	iters := 2500
	if testing.Short() {
		iters = 500
	}
	var badUsed atomic.Int64 // snapshot of a violating used value, 0 = none
	stop := make(chan struct{})
	var monWg sync.WaitGroup
	monWg.Add(1)
	go func() {
		defer monWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			used := r.cache.Used()
			if used < 0 || used > cfg.CacheBytes {
				badUsed.Store(used)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 13))
			var pinned []*Entry
			for i := 0; i < iters; i++ {
				n := nodes[rng.Intn(len(nodes))]
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // admit
					size := int64(50 + rng.Intn(2000))
					r.Admit(n, mkBatch(4), 4, size, time.Duration(1+rng.Intn(5))*time.Millisecond, -1)
				case 4, 5: // evict
					r.Evict(n)
				case 6: // pin, sometimes holding across iterations
					if e := r.Cached(n); e != nil {
						if rng.Intn(2) == 0 && len(pinned) < 4 {
							pinned = append(pinned, e)
						} else {
							r.Release(e)
						}
					}
				case 7: // release a held pin
					if len(pinned) > 0 {
						r.Release(pinned[len(pinned)-1])
						pinned = pinned[:len(pinned)-1]
					}
				case 8: // flush
					if rng.Intn(8) == 0 {
						r.FlushCache()
					}
				case 9: // reference traffic (aging + hR churn)
					p := selPlan(t, cat, int64(rng.Intn(len(nodes))))
					r.BeginQuery()
					m := r.MatchInsert(p)
					r.AddRefs(p, m)
				}
			}
			for _, e := range pinned {
				r.Release(e)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	monWg.Wait()

	if v := badUsed.Load(); v != 0 {
		t.Fatalf("byte accounting out of bounds during run: used=%d capacity=%d", v, cfg.CacheBytes)
	}
	// Quiesced reconciliation.
	var sum int64
	entries := r.cache.entries()
	for _, e := range entries {
		sum += e.Size
		if e.Node.cached.Load() != e {
			t.Fatalf("entry for %s linked in cache but not published on its node", e.Node.Describe())
		}
	}
	if got := r.cache.Used(); got != sum {
		t.Fatalf("used %d != sum of entry sizes %d", got, sum)
	}
	if got := r.cache.Count(); got != len(entries) {
		t.Fatalf("count %d != entries %d", got, len(entries))
	}
	st := r.Stats()
	if st.CacheBytes < 0 || st.CacheBytes > cfg.CacheBytes {
		t.Fatalf("final cache bytes %d outside [0, %d]", st.CacheBytes, cfg.CacheBytes)
	}
	if st.Admissions-st.Evictions != int64(st.CacheEntries) {
		t.Fatalf("admissions %d - evictions %d != entries %d",
			st.Admissions, st.Evictions, st.CacheEntries)
	}
	if st.Admissions < 0 || st.Evictions < 0 || st.Rejected < 0 {
		t.Fatalf("negative counters: %+v", st)
	}
	// Importance factors survived the churn without going negative.
	for _, n := range nodes {
		if hr := r.HR(n); hr < 0 {
			t.Fatalf("negative hr %v on %s", hr, n.Describe())
		}
	}
}

// TestConcurrentInflightHandoff checks the K-identical-queries contract at
// the recycler level: one producer registers, K-1 waiters stall, and the
// stalled waiters obtain the producer's batches even when the cache refuses
// the result (direct handoff), with no waiter left hanging. A waiter that
// is scheduled too late to observe the registration legitimately falls back
// to recomputation, so the test requires sharing rather than unanimity.
func TestConcurrentInflightHandoff(t *testing.T) {
	cat := testCatalog()
	cfg := DefaultConfig()
	cfg.CacheBytes = 1 // nothing fits: forces the handoff path
	r := New(cfg)
	p := selPlan(t, cat, 5)
	r.BeginQuery()
	g := r.MatchInsert(p).ByNode[p].G

	if !r.BeginInflight(g) {
		t.Fatal("producer registration failed")
	}
	const waiters = 8
	got := make(chan int64, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, ok := r.WaitInflight(g, 5*time.Second)
			if !ok || e == nil {
				got <- -1
				return
			}
			got <- e.Rows
			r.Release(e)
		}()
	}
	// Give the waiters time to observe the registration before producing
	// (the handoff only reaches queries that stalled while the producer
	// ran; latecomers recompute, which is the correct fallback).
	time.Sleep(200 * time.Millisecond)
	// Produce: admission will reject (capacity 1), but the batches are
	// published to the waiters anyway.
	batches := mkBatch(4)
	if r.Admit(g, batches, 4, 999, time.Millisecond, -1) {
		t.Fatal("admission should fail with capacity 1")
	}
	r.FinishInflightShared(g, batches, 4, 999, nil)
	wg.Wait()
	close(got)
	handoffs := int64(0)
	for rows := range got {
		switch rows {
		case 4:
			handoffs++
		case -1: // latecomer fallback: recompute
		default:
			t.Fatalf("waiter got rows=%d, want 4 (handoff) or -1 (fallback)", rows)
		}
	}
	if handoffs == 0 {
		t.Fatal("no waiter received the direct handoff")
	}
	if got := r.Stats().InflightShared; got != handoffs {
		t.Fatalf("InflightShared = %d, want %d", got, handoffs)
	}
}
