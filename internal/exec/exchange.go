package exec

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// pipeWorker is one cloned pipeline of a parallel fragment.
type pipeWorker struct {
	root Operator
	scan *MorselScan
	wctx Ctx // copy of the statement Ctx; maps shared read-only
	// copyNanos measures the exchange transfer copies (fold overhead).
	copyNanos int64
	// lastCost is the worker's root cost already published to the
	// exchange's atomic accumulator (worker-goroutine-local).
	lastCost time.Duration
}

// Exchange runs N cloned pipeline workers over the morsel source and
// merges their outputs back into one stream in morsel order — the
// fragment's deterministic merge point. Workers claim morsels in index
// order (bounded ahead of the merge cursor by the source window), buffer
// each morsel's output batches as compacted pool copies, and publish the
// finished morsel to its slot; the consumer walks slots in order, so the
// merged stream is the exact batch sequence the serial pipeline produces.
type Exchange struct {
	base
	workers []*pipeWorker
	src     *morselSource
	builds  []*sharedBuild
	types   []vector.Type

	started  bool
	closed   bool
	stopping atomic.Bool
	wg       sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond
	slots    []exSlot
	mergeIdx int
	cursor   int
	err      error

	cur        *vector.Batch // batch handed out by the previous Next
	mergeNanos int64
	// costNanos accumulates worker pipeline + copy time at morsel
	// granularity, so Cost() is safe to read mid-stream (speculative
	// stores above the exchange poll it per batch).
	costNanos atomic.Int64
}

type exSlot struct {
	batches []*vector.Batch
	done    bool
}

func newExchange(workers []*pipeWorker, src *morselSource, builds []*sharedBuild, schema []vector.Type) *Exchange {
	x := &Exchange{workers: workers, src: src, builds: builds, types: schema}
	x.cond = sync.NewCond(&x.mu)
	return x
}

// buildExchange assembles the exchange for a pipeline fragment.
func (fb *fragBuilder) buildExchange(n *plan.Node, nW int) (Operator, bool, error) {
	workers := make([]*pipeWorker, nW)
	for w := 0; w < nW; w++ {
		root, scan, err := fb.clonePipeline(n)
		if err != nil {
			return nil, false, err
		}
		workers[w] = &pipeWorker{root: root, scan: scan}
	}
	x := newExchange(workers, fb.src, buildList(fb.builds), n.Schema().Types())
	x.schema = n.Schema()
	x.slots = make([]exSlot, fb.src.count())
	return x, true, nil
}

func buildList(m map[*plan.Node]*sharedBuild) []*sharedBuild {
	out := make([]*sharedBuild, 0, len(m))
	//recycledb:nondet-ok — builds open/drain independently; order unobservable
	for _, b := range m {
		out = append(out, b)
	}
	return out
}

// Open implements Operator: worker pipelines and shared build subplans
// open here, on the consumer goroutine; workers spawn lazily at the first
// Next so an abandoned stream never starts them.
func (x *Exchange) Open(ctx *Ctx) error {
	for _, b := range x.builds {
		if err := b.child.Open(ctx); err != nil {
			return err
		}
	}
	for _, w := range x.workers {
		w.wctx = *ctx
		if err := w.root.Open(&w.wctx); err != nil {
			return err
		}
	}
	return nil
}

func (x *Exchange) start(ctx *Ctx) {
	x.started = true
	for _, w := range x.workers {
		// Refresh the cancellation context: the consumer may have swapped
		// it between Open and the first pull.
		w.wctx.Context = ctx.Context
		x.wg.Add(1)
		go x.runWorker(w)
	}
}

// runWorker claims morsels, drives the worker's pipeline to end-of-morsel,
// and publishes each finished morsel's (copied) batches to its slot.
func (x *Exchange) runWorker(w *pipeWorker) {
	defer x.wg.Done()
	for {
		m, ok := x.src.claim()
		if !ok {
			return
		}
		w.scan.StartMorsel(m)
		var local []*vector.Batch
		for {
			if x.stopping.Load() {
				releaseBatches(&w.wctx, local)
				return
			}
			b, err := w.root.Next(&w.wctx)
			if err != nil {
				releaseBatches(&w.wctx, local)
				x.fail(err)
				return
			}
			if b == nil {
				break
			}
			if b.Len() == 0 {
				continue
			}
			// Hand off an owned, compacted copy: the producing operators
			// reuse their scratch on the next pull.
			cs := time.Now()
			t := w.wctx.pool().GetBatch(x.types, b.Len())
			t.CopyFrom(b)
			w.copyNanos += time.Since(cs).Nanoseconds()
			local = append(local, t)
		}
		// Publish this morsel's work to the mid-stream-readable
		// accumulator (root.Cost is safe here: only this goroutine
		// drives the clone).
		cost := w.root.Cost()
		x.costNanos.Add(int64(cost-w.lastCost) + w.copyNanos)
		w.lastCost = cost
		w.copyNanos = 0
		x.mu.Lock()
		x.slots[m].batches = local
		x.slots[m].done = true
		x.mu.Unlock()
		x.cond.Broadcast()
	}
}

func releaseBatches(ctx *Ctx, bs []*vector.Batch) {
	for _, b := range bs {
		if b != nil {
			ctx.pool().PutBatch(b)
		}
	}
}

func (x *Exchange) fail(err error) {
	x.mu.Lock()
	if x.err == nil {
		x.err = err
	}
	x.mu.Unlock()
	x.src.stop()
	x.cond.Broadcast()
}

// Next implements Operator: the in-order merge. The returned batch is
// owned by the exchange and valid until the following Next (it returns to
// the pool there), per the operator contract.
func (x *Exchange) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	start := time.Now()
	defer func() { x.mergeNanos += time.Since(start).Nanoseconds() }()
	if !x.started {
		x.start(ctx)
	}
	if x.cur != nil {
		ctx.pool().PutBatch(x.cur)
		x.cur = nil
	}
	x.mu.Lock()
	for {
		if x.err != nil {
			err := x.err
			x.mu.Unlock()
			return nil, err
		}
		if x.mergeIdx >= len(x.slots) {
			x.mu.Unlock()
			return nil, nil
		}
		s := &x.slots[x.mergeIdx]
		if x.cursor < len(s.batches) {
			b := s.batches[x.cursor]
			s.batches[x.cursor] = nil
			x.cursor++
			x.mu.Unlock()
			x.cur = b
			x.rows += int64(b.Len())
			return b, nil
		}
		if s.done {
			done := x.mergeIdx
			x.mergeIdx++
			x.cursor = 0
			x.mu.Unlock()
			x.src.advance(done) // release window credit outside x.mu
			x.mu.Lock()
			continue
		}
		x.cond.Wait()
	}
}

// Close implements Operator: stops the morsel source, joins the workers,
// releases buffered batches, and closes worker pipelines and shared build
// subplans (store cancellation callbacks inside them fire here).
func (x *Exchange) Close(ctx *Ctx) error {
	if x.closed {
		return nil
	}
	x.closed = true
	x.stopping.Store(true)
	x.src.stop()
	x.cond.Broadcast()
	if x.started {
		x.wg.Wait()
	}
	if x.cur != nil {
		ctx.pool().PutBatch(x.cur)
		x.cur = nil
	}
	for i := range x.slots {
		releaseBatches(ctx, x.slots[i].batches)
		x.slots[i].batches = nil
	}
	var first error
	for _, w := range x.workers {
		if err := w.root.Close(&w.wctx); err != nil && first == nil {
			first = err
		}
	}
	for _, b := range x.builds {
		if err := b.close(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Progress implements Operator: merged morsels over total.
func (x *Exchange) Progress() float64 {
	if len(x.slots) == 0 {
		return 1
	}
	x.mu.Lock()
	done := x.mergeIdx
	x.mu.Unlock()
	return float64(done) / float64(len(x.slots))
}

// Cost implements Operator: the fragment's total work — worker pipeline
// time (inclusive of their children) plus shared builds, transfer copies,
// and merge bookkeeping — matching the serial operator's inclusive subtree
// cost, so recycler statistics are parallelism-independent. It reads only
// morsel-granular atomics and is safe mid-stream (speculative store
// decisions above the exchange consult it while workers run).
func (x *Exchange) Cost() time.Duration {
	c := time.Duration(x.costNanos.Load())
	for _, b := range x.builds {
		c += b.cost()
	}
	return c + time.Duration(x.mergeNanos)
}

// aggWorker is one partial-aggregation worker: a cloned input pipeline
// plus a worker-local group table.
type aggWorker struct {
	root Operator
	scan *MorselScan
	wctx Ctx
	st   aggState
	// absorbNanos measures accumulation time only; pipeline time is the
	// clone's own Cost. (Wall time would also count blocking on a shared
	// join build's Once — work that is folded exactly once elsewhere.)
	absorbNanos int64
}

// ParallelAgg executes an aggregation fragment: each worker drains
// morsel-ordered input through its own pipeline clone into a partial
// aggState, and end-of-input merges the partials into one final state. The
// merged groups are emitted sorted by first occurrence in the
// morsel-ordered stream — precisely the order the serial HashAgg discovers
// (and therefore emits) them — so parallel aggregation is
// order-deterministic and serial-identical (float sums modulo
// re-association).
type ParallelAgg struct {
	base
	GroupCols []int
	Aggs      []AggExpr

	workers []*aggWorker
	src     *morselSource
	builds  []*sharedBuild

	opened  bool
	closed  bool
	built   bool
	final   aggState
	order   []int32
	emit    int
	out     *vector.Batch
	failErr error
	failMu  sync.Mutex

	mergeNanos int64
}

// buildParallelAgg assembles the parallel aggregation for fragment root n
// (an Aggregate node).
func (fb *fragBuilder) buildParallelAgg(n *plan.Node, nW int) (Operator, bool, error) {
	child := n.Children[0]
	groupCols := make([]int, len(n.GroupBy))
	for i, g := range n.GroupBy {
		groupCols[i] = child.Schema().ColIndex(g)
		if groupCols[i] < 0 {
			return nil, false, nil // serial path reports the error
		}
	}
	pa := &ParallelAgg{
		base:      base{schema: n.Schema()},
		GroupCols: groupCols,
		src:       fb.src,
	}
	for w := 0; w < nW; w++ {
		root, scan, err := fb.clonePipeline(child)
		if err != nil {
			return nil, false, err
		}
		aggs := make([]AggExpr, len(n.Aggs))
		for i, a := range n.Aggs {
			aggs[i] = AggExpr{
				Func: a.Func,
				Typ:  n.Schema()[len(n.GroupBy)+i].Typ,
			}
			if a.Arg != nil {
				aggs[i].Arg = a.Arg.Clone() // per-worker evaluation scratch
			}
		}
		if w == 0 {
			pa.Aggs = aggs
		}
		aw := &aggWorker{root: root, scan: scan}
		aw.st.groupCols = groupCols
		aw.st.aggs = aggs
		aw.st.trackOrd = true
		pa.workers = append(pa.workers, aw)
	}
	pa.builds = buildList(fb.builds)
	return pa, true, nil
}

// Open implements Operator.
func (p *ParallelAgg) Open(ctx *Ctx) error {
	for _, b := range p.builds {
		if err := b.child.Open(ctx); err != nil {
			return err
		}
	}
	for _, w := range p.workers {
		w.wctx = *ctx
		if err := w.root.Open(&w.wctx); err != nil {
			return err
		}
		w.st.open(&w.wctx, w.root.Schema())
	}
	p.final.groupCols = p.GroupCols
	p.final.aggs = p.Aggs
	p.final.trackOrd = true
	p.final.open(ctx, p.workers[0].root.Schema())
	p.out = ctx.pool().GetBatch(p.schema.Types(), ctx.vecSize())
	p.opened = true
	p.built = false
	p.emit = 0
	return nil
}

func (p *ParallelAgg) fail(err error) {
	p.failMu.Lock()
	if p.failErr == nil {
		p.failErr = err
	}
	p.failMu.Unlock()
	p.src.stop()
}

// run executes the fan-out/merge: workers aggregate morsels in parallel,
// then the consumer folds the partials and fixes the emission order.
func (p *ParallelAgg) run(ctx *Ctx) error {
	var wg sync.WaitGroup
	for _, w := range p.workers {
		w.wctx.Context = ctx.Context
		wg.Add(1)
		go func(w *aggWorker) {
			defer wg.Done()
			for {
				m, ok := p.src.claim()
				if !ok {
					return
				}
				w.scan.StartMorsel(m)
				w.st.startMorsel(m)
				for {
					b, err := w.root.Next(&w.wctx)
					if err != nil {
						p.fail(err)
						return
					}
					if b == nil {
						break
					}
					as := time.Now()
					err = w.st.absorb(b)
					w.absorbNanos += time.Since(as).Nanoseconds()
					if err != nil {
						p.fail(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	p.failMu.Lock()
	err := p.failErr
	p.failMu.Unlock()
	if err != nil {
		return err
	}
	start := time.Now()
	for _, w := range p.workers {
		p.final.mergeFrom(&w.st)
	}
	if p.final.scalar {
		p.final.ensureScalarGroup()
	}
	// Emission order: ascending first occurrence == serial discovery order.
	p.order = make([]int32, p.final.nGroups)
	for i := range p.order {
		p.order[i] = int32(i)
	}
	sort.Slice(p.order, func(a, b int) bool {
		return p.final.ord[p.order[a]].less(p.final.ord[p.order[b]])
	})
	p.mergeNanos += time.Since(start).Nanoseconds()
	p.built = true
	return nil
}

// Next implements Operator.
func (p *ParallelAgg) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	if !p.built {
		if err := p.run(ctx); err != nil {
			return nil, err
		}
	}
	if p.emit >= p.final.nGroups {
		return nil, nil
	}
	start := time.Now()
	p.out.Reset()
	lo := p.emit
	hi := lo + ctx.vecSize()
	if hi > p.final.nGroups {
		hi = p.final.nGroups
	}
	p.final.emitIndex(p.out, p.order[lo:hi])
	p.emit = hi
	p.rows += int64(hi - lo)
	p.mergeNanos += time.Since(start).Nanoseconds()
	return p.out, nil
}

// Close implements Operator.
func (p *ParallelAgg) Close(ctx *Ctx) error {
	if p.closed {
		return nil
	}
	p.closed = true
	p.src.stop()
	var first error
	for _, w := range p.workers {
		if err := w.root.Close(&w.wctx); err != nil && first == nil {
			first = err
		}
		if p.opened {
			w.st.close(&w.wctx)
		}
	}
	for _, b := range p.builds {
		if err := b.close(ctx); err != nil && first == nil {
			first = err
		}
	}
	if p.opened {
		p.final.close(ctx)
	}
	if p.out != nil {
		ctx.pool().PutBatch(p.out)
		p.out = nil
	}
	return first
}

// Progress implements Operator: like HashAgg, 0 until built, then the
// emitted-group fraction.
func (p *ParallelAgg) Progress() float64 {
	if !p.built {
		return 0
	}
	if p.final.nGroups == 0 {
		return 1
	}
	return float64(p.emit) / float64(p.final.nGroups)
}

// Cost implements Operator: total work across workers (pipeline +
// accumulation) plus shared builds and the merge, matching the serial
// HashAgg's inclusive subtree cost. Safe to read once the first batch is
// out (run() has completed; worker fields are quiescent behind the join).
func (p *ParallelAgg) Cost() time.Duration {
	var c time.Duration
	for _, w := range p.workers {
		c += w.root.Cost() + time.Duration(w.absorbNanos)
	}
	for _, b := range p.builds {
		c += b.cost()
	}
	return c + time.Duration(p.mergeNanos)
}
