package exec

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"recycledb/internal/catalog"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// pipeWorker is one pipeline of a parallel fragment: either a cloned
// operator chain (root/scan) or a fused push chain (fused), per
// Ctx.DisableFusion at build time.
type pipeWorker struct {
	root  Operator
	scan  *MorselScan
	fused *fusedPipe
	wctx  Ctx // copy of the statement Ctx; maps shared read-only
	// local buffers the current morsel's copied output batches (fused
	// path: the sink appends here).
	local []*vector.Batch
	// copyNanos measures the exchange transfer copies (fold overhead).
	// The fused pipe times its sink internally instead.
	copyNanos int64
	// lastCost is the worker's root cost already published to the
	// exchange's atomic accumulator (worker-goroutine-local).
	lastCost time.Duration
}

// cost returns the worker's total pipeline time so far (fused loops
// include their sink copies; unfused roots exclude copyNanos, which the
// caller adds). Worker-goroutine-local.
func (w *pipeWorker) cost() time.Duration {
	if w.fused != nil {
		return w.fused.cost()
	}
	return w.root.Cost()
}

// Exchange runs N cloned pipeline workers over the morsel source and
// merges their outputs back into one stream in morsel order — the
// fragment's deterministic merge point. Workers claim morsels in index
// order (bounded ahead of the merge cursor by the source window), buffer
// each morsel's output batches as compacted pool copies, and publish the
// finished morsel to its slot; the consumer walks slots in order, so the
// merged stream is the exact batch sequence the serial pipeline produces.
type Exchange struct {
	base
	workers []*pipeWorker
	src     *morselSource
	builds  []*sharedBuild
	types   []vector.Type

	started  bool
	closed   bool
	stopping atomic.Bool
	wg       sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond
	slots    []exSlot
	mergeIdx int
	cursor   int
	err      error

	cur        *vector.Batch // batch handed out by the previous Next
	mergeNanos int64
	// costNanos accumulates worker pipeline + copy time at morsel
	// granularity, so Cost() is safe to read mid-stream (speculative
	// stores above the exchange poll it per batch).
	costNanos atomic.Int64
}

type exSlot struct {
	batches []*vector.Batch
	done    bool
}

func newExchange(workers []*pipeWorker, src *morselSource, builds []*sharedBuild, schema []vector.Type) *Exchange {
	x := &Exchange{workers: workers, src: src, builds: builds, types: schema}
	x.cond = sync.NewCond(&x.mu)
	return x
}

// buildExchange assembles the exchange for a pipeline fragment. fuse picks
// the worker interior: fused push chains or cloned operator pipelines.
func (fb *fragBuilder) buildExchange(n *plan.Node, nW int, fuse bool) (Operator, bool, error) {
	workers := make([]*pipeWorker, nW)
	for w := 0; w < nW; w++ {
		if fuse {
			pipe, err := fb.newFusedPipe(n)
			if err != nil {
				return nil, false, err
			}
			workers[w] = &pipeWorker{fused: pipe}
		} else {
			root, scan, err := fb.clonePipeline(n)
			if err != nil {
				return nil, false, err
			}
			workers[w] = &pipeWorker{root: root, scan: scan}
		}
	}
	x := newExchange(workers, fb.src, buildList(fb.builds), n.Schema().Types())
	x.schema = n.Schema()
	x.slots = make([]exSlot, fb.src.count())
	for _, w := range x.workers {
		if w.fused != nil {
			// The sink copies each chain batch into an owned, compacted
			// pool batch for the slot buffer, checking teardown per batch
			// like the unfused pull loop. Bound once here so the steady
			// state drive allocates nothing.
			w := w
			w.fused.sink = func(b *vector.Batch) error {
				if x.stopping.Load() {
					return errFusedStopped
				}
				t := w.wctx.pool().GetBatch(x.types, b.Len())
				t.CopyFrom(b)
				w.local = append(w.local, t)
				return nil
			}
		}
	}
	return x, true, nil
}

func buildList(m map[*plan.Node]*sharedBuild) []*sharedBuild {
	out := make([]*sharedBuild, 0, len(m))
	//recycledb:nondet-ok — builds open/drain independently; order unobservable
	for _, b := range m {
		out = append(out, b)
	}
	return out
}

// Open implements Operator: worker pipelines and shared build subplans
// open here, on the consumer goroutine; workers spawn lazily at the first
// Next so an abandoned stream never starts them.
func (x *Exchange) Open(ctx *Ctx) error {
	for _, b := range x.builds {
		if err := b.child.Open(ctx); err != nil {
			return err
		}
	}
	for _, w := range x.workers {
		w.wctx = *ctx
		if w.fused != nil {
			if err := w.fused.open(&w.wctx); err != nil {
				return err
			}
		} else if err := w.root.Open(&w.wctx); err != nil {
			return err
		}
	}
	return nil
}

func (x *Exchange) start(ctx *Ctx) {
	x.started = true
	for _, w := range x.workers {
		// Refresh the cancellation context: the consumer may have swapped
		// it between Open and the first pull.
		w.wctx.Context = ctx.Context
		x.wg.Add(1)
		go x.runWorker(w)
	}
}

// runWorker claims morsels, drives the worker's pipeline to end-of-morsel
// (one fused drive call, or the pull loop over the cloned chain), and
// publishes each finished morsel's (copied) batches to its slot.
func (x *Exchange) runWorker(w *pipeWorker) {
	defer x.wg.Done()
	for {
		m, ok := x.src.claim()
		if !ok {
			return
		}
		w.local = nil
		if w.fused != nil {
			if err := w.fused.driveMorsel(&w.wctx, m); err != nil {
				releaseBatches(&w.wctx, w.local)
				w.local = nil
				if err != errFusedStopped {
					x.fail(err)
				}
				return
			}
		} else {
			w.scan.StartMorsel(m)
			for {
				if x.stopping.Load() {
					releaseBatches(&w.wctx, w.local)
					w.local = nil
					return
				}
				b, err := w.root.Next(&w.wctx)
				if err != nil {
					releaseBatches(&w.wctx, w.local)
					w.local = nil
					x.fail(err)
					return
				}
				if b == nil {
					break
				}
				if b.Len() == 0 {
					continue
				}
				// Hand off an owned, compacted copy: the producing operators
				// reuse their scratch on the next pull.
				cs := time.Now()
				t := w.wctx.pool().GetBatch(x.types, b.Len())
				t.CopyFrom(b)
				w.copyNanos += time.Since(cs).Nanoseconds()
				w.local = append(w.local, t)
			}
		}
		// Publish this morsel's work to the mid-stream-readable
		// accumulator (w.cost() is safe here: only this goroutine drives
		// the pipeline; the fused loop's copy time is inside its cost,
		// the unfused root's is copyNanos).
		cost := w.cost()
		x.costNanos.Add(int64(cost-w.lastCost) + w.copyNanos)
		w.lastCost = cost
		w.copyNanos = 0
		x.mu.Lock()
		x.slots[m].batches = w.local
		x.slots[m].done = true
		x.mu.Unlock()
		w.local = nil
		x.cond.Broadcast()
	}
}

func releaseBatches(ctx *Ctx, bs []*vector.Batch) {
	for _, b := range bs {
		if b != nil {
			ctx.pool().PutBatch(b)
		}
	}
}

func (x *Exchange) fail(err error) {
	x.mu.Lock()
	if x.err == nil {
		x.err = err
	}
	x.mu.Unlock()
	x.src.stop()
	x.cond.Broadcast()
}

// Next implements Operator: the in-order merge. The returned batch is
// owned by the exchange and valid until the following Next (it returns to
// the pool there), per the operator contract.
func (x *Exchange) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	start := time.Now()
	defer func() { x.mergeNanos += time.Since(start).Nanoseconds() }()
	if !x.started {
		x.start(ctx)
	}
	if x.cur != nil {
		ctx.pool().PutBatch(x.cur)
		x.cur = nil
	}
	x.mu.Lock()
	for {
		if x.err != nil {
			err := x.err
			x.mu.Unlock()
			return nil, err
		}
		if x.mergeIdx >= len(x.slots) {
			x.mu.Unlock()
			return nil, nil
		}
		s := &x.slots[x.mergeIdx]
		if x.cursor < len(s.batches) {
			b := s.batches[x.cursor]
			s.batches[x.cursor] = nil
			x.cursor++
			x.mu.Unlock()
			x.cur = b
			x.rows += int64(b.Len())
			return b, nil
		}
		if s.done {
			done := x.mergeIdx
			x.mergeIdx++
			x.cursor = 0
			x.mu.Unlock()
			x.src.advance(done) // release window credit outside x.mu
			x.mu.Lock()
			continue
		}
		x.cond.Wait()
	}
}

// Close implements Operator: stops the morsel source, joins the workers,
// releases buffered batches, and closes worker pipelines and shared build
// subplans (store cancellation callbacks inside them fire here).
func (x *Exchange) Close(ctx *Ctx) error {
	if x.closed {
		return nil
	}
	x.closed = true
	x.stopping.Store(true)
	x.src.stop()
	x.cond.Broadcast()
	if x.started {
		x.wg.Wait()
	}
	if x.cur != nil {
		ctx.pool().PutBatch(x.cur)
		x.cur = nil
	}
	for i := range x.slots {
		releaseBatches(ctx, x.slots[i].batches)
		x.slots[i].batches = nil
	}
	var first error
	for _, w := range x.workers {
		var err error
		if w.fused != nil {
			err = w.fused.close(&w.wctx)
		} else {
			err = w.root.Close(&w.wctx)
		}
		if err != nil && first == nil {
			first = err
		}
	}
	for _, b := range x.builds {
		if err := b.close(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Progress implements Operator: merged morsels over total.
func (x *Exchange) Progress() float64 {
	if len(x.slots) == 0 {
		return 1
	}
	x.mu.Lock()
	done := x.mergeIdx
	x.mu.Unlock()
	return float64(done) / float64(len(x.slots))
}

// Cost implements Operator: the fragment's total work — worker pipeline
// time (inclusive of their children) plus shared builds, transfer copies,
// and merge bookkeeping — matching the serial operator's inclusive subtree
// cost, so recycler statistics are parallelism-independent. It reads only
// morsel-granular atomics and is safe mid-stream (speculative store
// decisions above the exchange consult it while workers run).
func (x *Exchange) Cost() time.Duration {
	c := time.Duration(x.costNanos.Load())
	for _, b := range x.builds {
		c += b.cost()
	}
	return c + time.Duration(x.mergeNanos)
}

// aggWorker is one partial-aggregation worker: a cloned (or fused) input
// pipeline plus a worker-local group table.
type aggWorker struct {
	root  Operator
	scan  *MorselScan
	fused *fusedPipe
	wctx  Ctx
	st    aggState
	// absorbNanos measures accumulation time only; pipeline time is the
	// clone's own Cost. (Wall time would also count blocking on a shared
	// join build's Once — work that is folded exactly once elsewhere.)
	// Fused pipes absorb through their sink and time it as sinkNanos.
	absorbNanos int64
}

// inSchema returns the aggregation input schema (the pipeline's output).
func (w *aggWorker) inSchema() catalog.Schema {
	if w.fused != nil {
		return w.fused.schema
	}
	return w.root.Schema()
}

// cost returns the worker's pipeline + accumulation time.
// Worker-goroutine-local until the fragment quiesces.
func (w *aggWorker) cost() time.Duration {
	if w.fused != nil {
		return w.fused.cost() // absorb time included via the sink
	}
	return w.root.Cost() + time.Duration(w.absorbNanos)
}

// ParallelAgg executes an aggregation fragment: each worker drains
// morsel-ordered input through its own pipeline clone into a partial
// aggState, and end-of-input merges the partials into one final state. The
// merged groups are emitted sorted by first occurrence in the
// morsel-ordered stream — precisely the order the serial HashAgg discovers
// (and therefore emits) them — so parallel aggregation is
// order-deterministic and serial-identical (float sums modulo
// re-association).
type ParallelAgg struct {
	base
	GroupCols []int
	Aggs      []AggExpr

	workers []*aggWorker
	src     *morselSource
	builds  []*sharedBuild

	opened  bool
	closed  bool
	built   bool
	final   aggState
	order   []int32
	emit    int
	out     *vector.Batch
	failErr error
	failMu  sync.Mutex

	mergeNanos int64
}

// buildParallelAgg assembles the parallel aggregation for fragment root n
// (an Aggregate node). With fuse set, each worker drives a fused push loop
// whose sink absorbs directly into the worker's partial aggState; otherwise
// workers pull from cloned operator pipelines.
func (fb *fragBuilder) buildParallelAgg(n *plan.Node, nW int, fuse bool) (Operator, bool, error) {
	child := n.Children[0]
	groupCols := make([]int, len(n.GroupBy))
	for i, g := range n.GroupBy {
		groupCols[i] = child.Schema().ColIndex(g)
		if groupCols[i] < 0 {
			return nil, false, nil // serial path reports the error
		}
	}
	pa := &ParallelAgg{
		base:      base{schema: n.Schema()},
		GroupCols: groupCols,
		src:       fb.src,
	}
	for w := 0; w < nW; w++ {
		aw := &aggWorker{}
		if fuse {
			pipe, err := fb.newFusedPipe(child)
			if err != nil {
				return nil, false, err
			}
			aw.fused = pipe
			// Absorption happens inside the drive loop; push() times it as
			// the pipe's sinkNanos, so spine-node attribution excludes it.
			pipe.sink = func(b *vector.Batch) error { return aw.st.absorb(b) }
		} else {
			root, scan, err := fb.clonePipeline(child)
			if err != nil {
				return nil, false, err
			}
			aw.root, aw.scan = root, scan
		}
		aggs := make([]AggExpr, len(n.Aggs))
		for i, a := range n.Aggs {
			aggs[i] = AggExpr{
				Func: a.Func,
				Typ:  n.Schema()[len(n.GroupBy)+i].Typ,
			}
			if a.Arg != nil {
				aggs[i].Arg = a.Arg.Clone() // per-worker evaluation scratch
			}
		}
		if w == 0 {
			pa.Aggs = aggs
		}
		aw.st.groupCols = groupCols
		aw.st.aggs = aggs
		aw.st.trackOrd = true
		pa.workers = append(pa.workers, aw)
	}
	pa.builds = buildList(fb.builds)
	return pa, true, nil
}

// Open implements Operator.
func (p *ParallelAgg) Open(ctx *Ctx) error {
	for _, b := range p.builds {
		if err := b.child.Open(ctx); err != nil {
			return err
		}
	}
	for _, w := range p.workers {
		w.wctx = *ctx
		if w.fused != nil {
			if err := w.fused.open(&w.wctx); err != nil {
				return err
			}
		} else if err := w.root.Open(&w.wctx); err != nil {
			return err
		}
		w.st.open(&w.wctx, w.inSchema())
	}
	p.final.groupCols = p.GroupCols
	p.final.aggs = p.Aggs
	p.final.trackOrd = true
	p.final.open(ctx, p.workers[0].inSchema())
	p.out = ctx.pool().GetBatch(p.schema.Types(), ctx.vecSize())
	p.opened = true
	p.built = false
	p.emit = 0
	return nil
}

func (p *ParallelAgg) fail(err error) {
	p.failMu.Lock()
	if p.failErr == nil {
		p.failErr = err
	}
	p.failMu.Unlock()
	p.src.stop()
}

// run executes the fan-out/merge: workers aggregate morsels in parallel,
// then the consumer folds the partials and fixes the emission order.
func (p *ParallelAgg) run(ctx *Ctx) error {
	var wg sync.WaitGroup
	for _, w := range p.workers {
		w.wctx.Context = ctx.Context
		wg.Add(1)
		go func(w *aggWorker) {
			defer wg.Done()
			for {
				m, ok := p.src.claim()
				if !ok {
					return
				}
				if w.fused != nil {
					w.st.startMorsel(m)
					if err := w.fused.driveMorsel(&w.wctx, m); err != nil {
						p.fail(err)
						return
					}
					continue
				}
				w.scan.StartMorsel(m)
				w.st.startMorsel(m)
				for {
					b, err := w.root.Next(&w.wctx)
					if err != nil {
						p.fail(err)
						return
					}
					if b == nil {
						break
					}
					as := time.Now()
					err = w.st.absorb(b)
					w.absorbNanos += time.Since(as).Nanoseconds()
					if err != nil {
						p.fail(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	p.failMu.Lock()
	err := p.failErr
	p.failMu.Unlock()
	if err != nil {
		return err
	}
	start := time.Now()
	for _, w := range p.workers {
		p.final.mergeFrom(&w.st)
	}
	if p.final.scalar {
		p.final.ensureScalarGroup()
	}
	// Emission order: ascending first occurrence == serial discovery order.
	p.order = make([]int32, p.final.nGroups)
	for i := range p.order {
		p.order[i] = int32(i)
	}
	sort.Slice(p.order, func(a, b int) bool {
		return p.final.ord[p.order[a]].less(p.final.ord[p.order[b]])
	})
	p.mergeNanos += time.Since(start).Nanoseconds()
	p.built = true
	return nil
}

// Next implements Operator.
func (p *ParallelAgg) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	if !p.built {
		if err := p.run(ctx); err != nil {
			return nil, err
		}
	}
	if p.emit >= p.final.nGroups {
		return nil, nil
	}
	start := time.Now()
	p.out.Reset()
	lo := p.emit
	hi := lo + ctx.vecSize()
	if hi > p.final.nGroups {
		hi = p.final.nGroups
	}
	p.final.emitIndex(p.out, p.order[lo:hi])
	p.emit = hi
	p.rows += int64(hi - lo)
	p.mergeNanos += time.Since(start).Nanoseconds()
	return p.out, nil
}

// Close implements Operator.
func (p *ParallelAgg) Close(ctx *Ctx) error {
	if p.closed {
		return nil
	}
	p.closed = true
	p.src.stop()
	var first error
	for _, w := range p.workers {
		if w.fused != nil {
			if err := w.fused.close(&w.wctx); err != nil && first == nil {
				first = err
			}
		} else if err := w.root.Close(&w.wctx); err != nil && first == nil {
			first = err
		}
		if p.opened {
			w.st.close(&w.wctx)
		}
	}
	for _, b := range p.builds {
		if err := b.close(ctx); err != nil && first == nil {
			first = err
		}
	}
	if p.opened {
		p.final.close(ctx)
	}
	if p.out != nil {
		ctx.pool().PutBatch(p.out)
		p.out = nil
	}
	return first
}

// Progress implements Operator: like HashAgg, 0 until built, then the
// emitted-group fraction.
func (p *ParallelAgg) Progress() float64 {
	if !p.built {
		return 0
	}
	if p.final.nGroups == 0 {
		return 1
	}
	return float64(p.emit) / float64(p.final.nGroups)
}

// Cost implements Operator: total work across workers (pipeline +
// accumulation) plus shared builds and the merge, matching the serial
// HashAgg's inclusive subtree cost. Safe to read once the first batch is
// out (run() has completed; worker fields are quiescent behind the join).
func (p *ParallelAgg) Cost() time.Duration {
	var c time.Duration
	for _, w := range p.workers {
		c += w.cost()
	}
	for _, b := range p.builds {
		c += b.cost()
	}
	return c + time.Duration(p.mergeNanos)
}
