package exec

import (
	"sync"
	"time"

	"recycledb/internal/catalog"
	"recycledb/internal/vector"
)

// morselSource splits one base-table scan range into fixed-size row-range
// morsels claimed by pipeline workers. Morsels are claimed strictly in
// index order; when a merge window is configured (ordered exchanges bound
// their reorder buffer with it), a claim blocks while the claimant would
// run more than window morsels ahead of the merge cursor, which bounds the
// batches buffered for in-order emission.
//
// All morsels slice the same statement snapshot, so every worker reads the
// one committed epoch the statement captured, and the per-morsel delete
// bitmap ranges partition the serial scan's exactly.
type morselSource struct {
	snap   *catalog.Snapshot
	lo, hi int // scan bounds (lo nonzero for delta runs)
	rows   int // rows per morsel

	mu        sync.Mutex
	cond      *sync.Cond
	next      int // next morsel index to claim
	mergeBase int // first morsel not yet consumed by the merger
	window    int // max morsels claimed ahead of mergeBase (0 = unbounded)
	stopped   bool
}

// newMorselSource builds a source over snapshot rows [lo, hi).
func newMorselSource(snap *catalog.Snapshot, lo, hi, rows, window int) *morselSource {
	s := &morselSource{snap: snap, lo: lo, hi: hi, rows: rows, window: window}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// count returns the total number of morsels.
func (s *morselSource) count() int {
	n := s.hi - s.lo
	if n <= 0 {
		return 0
	}
	return (n + s.rows - 1) / s.rows
}

// bounds returns the row range of morsel m.
func (s *morselSource) bounds(m int) (lo, hi int) {
	lo = s.lo + m*s.rows
	hi = lo + s.rows
	if hi > s.hi {
		hi = s.hi
	}
	return lo, hi
}

// claim hands out the next morsel index, blocking while the window is
// exhausted. ok is false once all morsels are claimed or the source is
// stopped.
func (s *morselSource) claim() (m int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped || s.next >= s.count() {
			return 0, false
		}
		if s.window <= 0 || s.next < s.mergeBase+s.window {
			m = s.next
			s.next++
			return m, true
		}
		s.cond.Wait()
	}
}

// advance moves the merge cursor past morsel m, releasing window credit.
func (s *morselSource) advance(m int) {
	s.mu.Lock()
	if m+1 > s.mergeBase {
		s.mergeBase = m + 1
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// stop wakes all blocked claimants and refuses further claims.
func (s *morselSource) stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// MorselScan is the worker-side leaf of a parallel pipeline: a TableScan
// restricted to one morsel at a time. The owning worker claims a morsel,
// points the scan at it with StartMorsel, and drains its pipeline to
// end-of-stream; the next StartMorsel rearms the scan. Batches alias
// snapshot storage exactly like TableScan's, and ranges with deletions
// carry a selection vector.
type MorselScan struct {
	base
	src  *morselSource
	cols []int

	pos, end int
	out      *vector.Batch
	sel      []int32
}

// newMorselScan builds a worker scan over src.
func newMorselScan(src *morselSource, cols []int, schema catalog.Schema) *MorselScan {
	return &MorselScan{base: base{schema: schema}, src: src, cols: cols}
}

// StartMorsel points the scan at morsel m (claimed by the caller).
func (s *MorselScan) StartMorsel(m int) {
	s.pos, s.end = s.src.bounds(m)
}

// Open implements Operator.
func (s *MorselScan) Open(ctx *Ctx) error {
	defer s.addCost(time.Now())
	s.pos, s.end = 0, 0 // empty until the first StartMorsel
	if s.out == nil {
		s.out = &vector.Batch{Vecs: make([]*vector.Vector, len(s.cols))}
		for i, c := range s.cols {
			s.out.Vecs[i] = &vector.Vector{Typ: s.src.snap.Col(c).Typ}
		}
	}
	return nil
}

// Next implements Operator: batches of the current morsel, then (nil, nil)
// until the next StartMorsel.
func (s *MorselScan) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	defer s.addCost(time.Now())
	snap := s.src.snap
	for {
		if s.pos >= s.end {
			return nil, nil
		}
		hi := s.pos + ctx.vecSize()
		if hi > s.end {
			hi = s.end
		}
		lo := s.pos
		s.pos = hi
		for i, c := range s.cols {
			col := snap.Col(c)
			v := s.out.Vecs[i]
			switch col.Typ {
			case vector.Int64, vector.Date:
				v.I64 = col.I64[lo:hi]
			case vector.Float64:
				v.F64 = col.F64[lo:hi]
			case vector.String:
				v.Str = col.Str[lo:hi]
			case vector.Bool:
				v.B = col.B[lo:hi]
			}
		}
		if snap.Del.AnyIn(lo, hi) {
			if s.sel == nil {
				s.sel = make([]int32, 0, ctx.vecSize())
			}
			sel := s.sel[:0]
			for r := lo; r < hi; r++ {
				if !snap.Del.Has(r) {
					sel = append(sel, int32(r-lo))
				}
			}
			s.sel = sel
			if len(sel) == 0 {
				continue
			}
			s.out.Sel = sel
		} else {
			s.out.Sel = nil
		}
		s.rows += int64(s.out.Len())
		return s.out, nil
	}
}

// Close implements Operator.
func (s *MorselScan) Close(ctx *Ctx) error { return nil }

// Progress implements Operator: the worker's share is not meaningful on its
// own; the exchange reports merged-morsel progress for the whole fragment.
func (s *MorselScan) Progress() float64 {
	total := s.src.count()
	if total == 0 {
		return 1
	}
	s.src.mu.Lock()
	done := s.src.mergeBase
	s.src.mu.Unlock()
	return float64(done) / float64(total)
}
