package exec

// Steady-state allocation contract: once an operator pipeline is warmed up
// (scratch batches drawn from the pool, capacities grown), Next must not
// touch the heap. testing.AllocsPerRun holds the pooled paths to exactly
// zero; regressions here are what the batch pool and the selection-vector
// design exist to prevent.

import (
	"testing"

	"recycledb/internal/catalog"
	"recycledb/internal/expr"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// assertZeroAllocs pulls `warm` batches from op, then asserts the next
// `runs` Next calls allocate nothing.
func assertZeroAllocs(t *testing.T, ctx *Ctx, op Operator, warm, runs int) {
	t.Helper()
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	defer op.Close(ctx)
	for i := 0; i < warm; i++ {
		if _, err := op.Next(ctx); err != nil {
			t.Fatal(err)
		}
	}
	var err error
	avg := testing.AllocsPerRun(runs, func() {
		var b *vector.Batch
		b, err = op.Next(ctx)
		if err != nil {
			return
		}
		if b == nil {
			t.Fatal("stream ended during the measured window; grow the input")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("steady-state Next allocates %.1f objects/call, want 0", avg)
	}
}

func TestFilterNextZeroAlloc(t *testing.T) {
	tab := benchTable(benchRows)
	scan, _ := benchScan(tab)
	// Selective predicate with an arithmetic comparison, exercising the
	// expression scratch reuse as well as the selection build.
	pred := expr.Lt(expr.C("id"), expr.Int(benchRows/2))
	f := NewFilter(scan, pred)
	if _, err := pred.Bind(f.Schema()); err != nil {
		t.Fatal(err)
	}
	assertZeroAllocs(t, NewCtx(catalog.New()), f, 4, 100)
}

func TestJoinProbeNextZeroAlloc(t *testing.T) {
	tab := benchTable(benchRows)
	left, lschema := benchScan(tab)
	right, rschema := benchScan(tab)
	out := append(append(catalog.Schema{}, lschema...), rschema...)
	// Self-join on the unique id: every probe row matches exactly once,
	// so each Next emits a full output batch from the probe loop.
	j := NewHashJoin(plan.Inner, left, right, []int{0}, []int{0}, out)
	assertZeroAllocs(t, NewCtx(catalog.New()), j, 8, 100)
}

func TestHashAggEmitNextZeroAlloc(t *testing.T) {
	tab := benchTable(benchRows)
	scan, _ := benchScan(tab)
	// One group per row: emission spans hundreds of batches.
	h := NewHashAgg(scan, []int{0}, []AggExpr{
		{Func: plan.Count, Typ: vector.Int64},
	}, catalog.Schema{
		{Name: "id", Typ: vector.Int64},
		{Name: "n", Typ: vector.Int64},
	})
	assertZeroAllocs(t, NewCtx(catalog.New()), h, 4, 100)
}

func TestSortEmitNextZeroAlloc(t *testing.T) {
	tab := benchTable(benchRows)
	scan, _ := benchScan(tab)
	s := NewSort(scan, []plan.SortKey{{Col: "v"}})
	assertZeroAllocs(t, NewCtx(catalog.New()), s, 4, 100)
}

func TestProjectNextZeroAlloc(t *testing.T) {
	tab := benchTable(benchRows)
	scan, schema := benchScan(tab)
	exprs := []expr.Expr{expr.C("id"), expr.Mul(expr.C("v"), expr.Flt(2))}
	outSchema := catalog.Schema{
		{Name: "id", Typ: vector.Int64},
		{Name: "v2", Typ: vector.Float64},
	}
	for _, e := range exprs {
		if _, err := e.Bind(schema); err != nil {
			t.Fatal(err)
		}
	}
	p := NewProject(scan, exprs, outSchema)
	assertZeroAllocs(t, NewCtx(catalog.New()), p, 4, 100)
}

// The selective pipeline scan -> filter -> project must stay allocation-free
// too: the projection gathers through the selection vector.
func TestFilterProjectPipelineZeroAlloc(t *testing.T) {
	tab := benchTable(benchRows)
	scan, schema := benchScan(tab)
	pred := expr.Lt(expr.C("k"), expr.Int(32)) // ~50% selectivity
	f := NewFilter(scan, pred)
	if _, err := pred.Bind(schema); err != nil {
		t.Fatal(err)
	}
	exprs := []expr.Expr{expr.C("id"), expr.C("s")}
	outSchema := catalog.Schema{
		{Name: "id", Typ: vector.Int64},
		{Name: "s", Typ: vector.String},
	}
	for _, e := range exprs {
		if _, err := e.Bind(schema); err != nil {
			t.Fatal(err)
		}
	}
	p := NewProject(f, exprs, outSchema)
	assertZeroAllocs(t, NewCtx(catalog.New()), p, 4, 100)
}

// TestMorselPipelineNextZeroAlloc holds the per-worker scratch path to the
// same contract as the serial operators: inside one morsel, a worker's
// steady-state Next (morsel scan feeding a selective filter) must not
// touch the heap. Cross-morsel work (slot publication, transfer copies)
// is pooled and amortized but not covered by this assertion.
func TestMorselPipelineNextZeroAlloc(t *testing.T) {
	tab := benchTable(benchRows)
	snap := tab.Snapshot()
	src := newMorselSource(snap, 0, snap.Rows, snap.Rows, 0) // one giant morsel
	scan := newMorselScan(src, []int{0, 1, 2, 3}, tab.Schema)
	pred := expr.Lt(expr.C("id"), expr.Int(benchRows/2))
	f := NewFilter(scan, pred)
	if _, err := pred.Bind(f.Schema()); err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(catalog.New())
	if err := f.Open(ctx); err != nil {
		t.Fatal(err)
	}
	defer f.Close(ctx)
	scan.StartMorsel(0)
	for i := 0; i < 4; i++ {
		if _, err := f.Next(ctx); err != nil {
			t.Fatal(err)
		}
	}
	var err error
	avg := testing.AllocsPerRun(100, func() {
		var b *vector.Batch
		b, err = f.Next(ctx)
		if err != nil || b == nil {
			t.Fatal("stream ended during the measured window")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("worker steady-state Next allocates %.1f objects/call, want 0", avg)
	}
}
