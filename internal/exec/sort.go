package exec

import (
	"container/heap"
	"sort"
	"time"

	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// rowLess compares rows a and b of batch rows under keys; returns true if
// a orders before b. Comparison is typed per column — no Datum boxing in
// the sort's O(M log M) comparator.
func rowLess(rows *vector.Batch, keys []plan.SortKey, keyIdx []int, a, b int) bool {
	for k, idx := range keyIdx {
		c := colCompare(rows.Vecs[idx], a, b)
		if c == 0 {
			continue
		}
		if keys[k].Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

// colCompare orders physical rows a and b of one column vector.
func colCompare(v *vector.Vector, a, b int) int {
	switch v.Typ {
	case vector.Int64, vector.Date:
		x, y := v.I64[a], v.I64[b]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case vector.Float64:
		x, y := v.F64[a], v.F64[b]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case vector.String:
		x, y := v.Str[a], v.Str[b]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case vector.Bool:
		x, y := v.B[a], v.B[b]
		switch {
		case !x && y:
			return -1
		case x && !y:
			return 1
		}
	}
	return 0
}

// SortOp fully sorts its input (blocking).
type SortOp struct {
	base
	Child  Operator
	Keys   []plan.SortKey
	keyIdx []int
	built  bool
	rowsIn *vector.Batch
	order  []int
	emit   int
	out    *vector.Batch
}

// NewSort builds a full sort over child.
func NewSort(child Operator, keys []plan.SortKey) *SortOp {
	s := &SortOp{base: base{schema: child.Schema()}, Child: child, Keys: keys}
	s.keyIdx = make([]int, len(keys))
	for i, k := range keys {
		s.keyIdx[i] = child.Schema().ColIndex(k.Col)
	}
	return s
}

// Open implements Operator.
func (s *SortOp) Open(ctx *Ctx) error {
	defer s.addCost(time.Now())
	s.built = false
	s.emit = 0
	s.out = ctx.pool().GetBatch(s.schema.Types(), ctx.vecSize())
	return s.Child.Open(ctx)
}

func (s *SortOp) build(ctx *Ctx) error {
	s.rowsIn = ctx.pool().GetBatch(s.schema.Types(), ctx.vecSize())
	for {
		b, err := s.Child.Next(ctx)
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		// Columnar, selection-aware bulk append into the sort arena.
		s.rowsIn.AppendBatch(b)
	}
	s.order = make([]int, s.rowsIn.Len())
	for i := range s.order {
		s.order[i] = i
	}
	sort.SliceStable(s.order, func(a, b int) bool {
		return rowLess(s.rowsIn, s.Keys, s.keyIdx, s.order[a], s.order[b])
	})
	s.built = true
	return nil
}

// Next implements Operator.
func (s *SortOp) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	defer s.addCost(time.Now())
	if !s.built {
		if err := s.build(ctx); err != nil {
			return nil, err
		}
	}
	if s.emit >= len(s.order) {
		return nil, nil
	}
	s.out.Reset()
	hi := s.emit + ctx.vecSize()
	if hi > len(s.order) {
		hi = len(s.order)
	}
	s.out.AppendBatchIndex(s.rowsIn, s.order[s.emit:hi])
	s.rows += int64(hi - s.emit)
	s.emit = hi
	return s.out, nil
}

// Close implements Operator.
func (s *SortOp) Close(ctx *Ctx) error {
	pool := ctx.pool()
	if s.out != nil {
		pool.PutBatch(s.out)
		s.out = nil
	}
	if s.rowsIn != nil {
		pool.PutBatch(s.rowsIn)
		s.rowsIn = nil
	}
	s.order = nil
	return s.Child.Close(ctx)
}

// Progress implements Operator.
func (s *SortOp) Progress() float64 {
	if !s.built {
		return 0
	}
	if len(s.order) == 0 {
		return 1
	}
	return float64(s.emit) / float64(len(s.order))
}

// TopNOp keeps the N first rows under the sort order using a bounded heap
// of size N, at O(M log N) as the paper describes for Vectorwise's topN
// (§IV-B). It never sorts its whole input.
type TopNOp struct {
	base
	Child  Operator
	Keys   []plan.SortKey
	N      int
	keyIdx []int
	built  bool
	rowsIn *vector.Batch // retained candidate rows (heap arena)
	h      *topHeap
	order  []int
	emit   int
	out    *vector.Batch
}

// NewTopN builds a heap-based top-N over child.
func NewTopN(child Operator, keys []plan.SortKey, n int) *TopNOp {
	t := &TopNOp{base: base{schema: child.Schema()}, Child: child, Keys: keys, N: n}
	t.keyIdx = make([]int, len(keys))
	for i, k := range keys {
		t.keyIdx[i] = child.Schema().ColIndex(k.Col)
	}
	return t
}

// topHeap is a max-heap of row indexes: the root is the *worst* retained
// row, so a better incoming row replaces it in O(log N).
type topHeap struct {
	rows   *vector.Batch
	keys   []plan.SortKey
	keyIdx []int
	idx    []int
}

func (h *topHeap) Len() int { return len(h.idx) }
func (h *topHeap) Less(a, b int) bool {
	// Inverted: the heap keeps the largest (worst) at the root.
	return rowLess(h.rows, h.keys, h.keyIdx, h.idx[b], h.idx[a])
}
func (h *topHeap) Swap(a, b int)      { h.idx[a], h.idx[b] = h.idx[b], h.idx[a] }
func (h *topHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int)) }
func (h *topHeap) Pop() interface{} {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}

// Open implements Operator.
func (t *TopNOp) Open(ctx *Ctx) error {
	defer t.addCost(time.Now())
	t.built = false
	t.emit = 0
	t.out = ctx.pool().GetBatch(t.schema.Types(), ctx.vecSize())
	return t.Child.Open(ctx)
}

func (t *TopNOp) build(ctx *Ctx) error {
	t.rowsIn = vector.NewBatch(t.schema.Types(), ctx.vecSize())
	t.h = &topHeap{rows: t.rowsIn, keys: t.Keys, keyIdx: t.keyIdx}
	for {
		b, err := t.Child.Next(ctx)
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		n := b.Len()
		for i := 0; i < n; i++ {
			if t.h.Len() < t.N {
				r := t.rowsIn.Len()
				t.rowsIn.AppendRow(b, i)
				heap.Push(t.h, r)
				continue
			}
			worst := t.h.idx[0]
			// Compare incoming row (in b) against the worst retained row
			// by materializing it temporarily at the arena tail.
			r := t.rowsIn.Len()
			t.rowsIn.AppendRow(b, i)
			if rowLess(t.rowsIn, t.Keys, t.keyIdx, r, worst) {
				t.h.idx[0] = r
				heap.Fix(t.h, 0)
			} else {
				truncateBatch(t.rowsIn, r)
			}
		}
		// Compact the arena periodically so it stays O(N).
		if t.rowsIn.Len() > 4*t.N+ctx.vecSize() {
			t.compact()
		}
	}
	t.order = append([]int(nil), t.h.idx...)
	sort.SliceStable(t.order, func(a, b int) bool {
		return rowLess(t.rowsIn, t.Keys, t.keyIdx, t.order[a], t.order[b])
	})
	t.built = true
	return nil
}

// compact rewrites the arena to contain only retained rows.
func (t *TopNOp) compact() {
	fresh := vector.NewBatch(t.schema.Types(), t.h.Len())
	for i, r := range t.h.idx {
		fresh.AppendRow(t.rowsIn, r)
		t.h.idx[i] = i
	}
	*t.rowsIn = *fresh
	t.h.rows = t.rowsIn
}

// truncateBatch drops rows from position r onward.
func truncateBatch(b *vector.Batch, r int) {
	for _, v := range b.Vecs {
		switch v.Typ {
		case vector.Int64, vector.Date:
			v.I64 = v.I64[:r]
		case vector.Float64:
			v.F64 = v.F64[:r]
		case vector.String:
			v.Str = v.Str[:r]
		case vector.Bool:
			v.B = v.B[:r]
		}
	}
}

// Next implements Operator.
func (t *TopNOp) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	defer t.addCost(time.Now())
	if !t.built {
		if err := t.build(ctx); err != nil {
			return nil, err
		}
	}
	if t.emit >= len(t.order) {
		return nil, nil
	}
	t.out.Reset()
	hi := t.emit + ctx.vecSize()
	if hi > len(t.order) {
		hi = len(t.order)
	}
	t.out.AppendBatchIndex(t.rowsIn, t.order[t.emit:hi])
	t.rows += int64(hi - t.emit)
	t.emit = hi
	return t.out, nil
}

// Close implements Operator.
func (t *TopNOp) Close(ctx *Ctx) error {
	if t.out != nil {
		ctx.pool().PutBatch(t.out)
		t.out = nil
	}
	t.rowsIn = nil
	t.h = nil
	t.order = nil
	return t.Child.Close(ctx)
}

// Progress implements Operator.
func (t *TopNOp) Progress() float64 {
	if !t.built {
		return 0
	}
	if len(t.order) == 0 {
		return 1
	}
	return float64(t.emit) / float64(len(t.order))
}
