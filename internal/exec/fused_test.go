package exec

// Fused push-loop contract tests: steady-state allocation freedom of the
// serial fused drivers, spine cost attribution (inclusive, monotone toward
// the root — what keeps recycler benefit ordering intact), and stat parity
// between fused and unfused execution of the same plan.

import (
	"testing"
	"time"

	"recycledb/internal/catalog"
	"recycledb/internal/expr"
	"recycledb/internal/plan"
)

// fusedCatalog wraps the shared bench table in a catalog for plan-driven
// builds of fused pipelines.
func fusedCatalog() *catalog.Catalog {
	cat := catalog.New()
	cat.AddTable(benchTable(benchRows))
	return cat
}

// fusedBenchPlan is scan -> filter -> project over the bench table: the
// canonical fused spine (one conjunct pair, one selection-aware projection).
func fusedBenchPlan() *plan.Node {
	return plan.NewProject(
		plan.NewSelect(plan.NewScan("bench", "id", "k", "v", "s"),
			expr.AndOf(
				expr.Lt(expr.C("k"), expr.Int(48)),
				expr.Lt(expr.C("id"), expr.Int(benchRows-1)))),
		plan.P(expr.C("id"), "id"),
		plan.P(expr.Mul(expr.C("v"), expr.Flt(2)), "v2"),
	)
}

func buildFused(t *testing.T, cat *catalog.Catalog, n *plan.Node, par int, opmap map[*plan.Node]Operator) (*Ctx, Operator) {
	t.Helper()
	if err := n.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(cat)
	ctx.Parallelism = par
	op, err := Build(ctx, n, nil, opmap)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, op
}

// TestFusedPipelineNextZeroAlloc holds the serial fused driver to the same
// steady-state contract as the chained operators it replaced: once stage
// scratch is pooled and capacities have grown, a FusedPipeline.Next — one
// scan batch pushed through filter conjuncts and a projection into the sink
// slot — must not touch the heap.
func TestFusedPipelineNextZeroAlloc(t *testing.T) {
	n := fusedBenchPlan()
	ctx, op := buildFused(t, fusedCatalog(), n, 1, nil)
	if _, ok := op.(*FusedPipeline); !ok {
		t.Fatalf("op = %T, want *FusedPipeline", op)
	}
	assertZeroAllocs(t, ctx, op, 8, 100)
}

// TestFusedAggStepZeroAlloc drives the fused aggregation loop (scan ->
// filter -> absorb) over a low-cardinality group column: after the group
// table stops growing, the per-batch absorb path must be allocation-free.
// FusedAgg.Next runs the whole input inside one call, so the assertion
// measures the drive loop directly rather than through assertZeroAllocs.
func TestFusedAggStepZeroAlloc(t *testing.T) {
	n := plan.NewAggregate(
		plan.NewSelect(plan.NewScan("bench", "id", "k", "v", "s"),
			expr.Lt(expr.C("id"), expr.Int(benchRows/2))),
		[]string{"k"},
		plan.A(plan.Count, nil, "n"),
		plan.A(plan.Sum, expr.C("v"), "sv"))
	ctx, op := buildFused(t, fusedCatalog(), n, 1, nil)
	fa, ok := op.(*FusedAgg)
	if !ok {
		t.Fatalf("op = %T, want *FusedAgg", op)
	}
	if err := fa.Open(ctx); err != nil {
		t.Fatal(err)
	}
	defer fa.Close(ctx)
	pipe := fa.pipe
	// Warm: claim morsels and absorb until capacities are grown.
	for i := 0; i < 8; i++ {
		if done, err := pipe.step(ctx); err != nil || done {
			t.Fatalf("warmup ended early (done=%v err=%v)", done, err)
		}
	}
	var stepErr error
	avg := testing.AllocsPerRun(100, func() {
		done, err := pipe.step(ctx)
		if err != nil {
			stepErr = err
			return
		}
		if done {
			t.Fatal("stream ended during the measured window; grow the input")
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if avg != 0 {
		t.Fatalf("steady-state fused agg step allocates %.1f objects/call, want 0", avg)
	}
}

// TestFusedCostAttributionOrdering pins the documented attribution rule:
// per-spine-node inclusive costs reported through the opmap folds are
// monotone non-decreasing from the scan toward the fragment root, exactly
// like chained operators' inclusive subtree costs — the property the
// recycler's benefit ordering (cost/size ranking of candidate nodes)
// depends on. Emitted row counts must not depend on fusion at all.
func TestFusedCostAttributionOrdering(t *testing.T) {
	spineOf := func(n *plan.Node) []*plan.Node {
		spine, ok := plan.SpineNodes(n, nil)
		if !ok {
			t.Fatal("plan is not a pipeline spine")
		}
		return spine
	}
	run := func(disableFusion bool) (map[*plan.Node]Operator, []*plan.Node) {
		n := fusedBenchPlan()
		if err := n.Resolve(fusedCatalog()); err != nil {
			t.Fatal(err)
		}
		ctx := NewCtx(fusedCatalog())
		// Rebind against the same resolved tree's catalog tables.
		ctx.Cat = fusedCatalog()
		ctx.Parallelism = 1
		ctx.DisableFusion = disableFusion
		opmap := make(map[*plan.Node]Operator)
		op, err := Build(ctx, n, nil, opmap)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Drain(ctx, op); err != nil {
			t.Fatal(err)
		}
		return opmap, spineOf(n)
	}
	fusedMap, fusedSpine := run(false)
	unfusedMap, unfusedSpine := run(true)

	var last time.Duration = -1
	for _, pn := range fusedSpine {
		f := fusedMap[pn]
		if f == nil {
			t.Fatalf("no opmap fold for fused spine node %v", pn.Op)
		}
		if c := f.Cost(); c < last {
			t.Fatalf("fused inclusive cost not monotone toward root: node %v cost %v < child %v",
				pn.Op, c, last)
		} else {
			last = c
		}
	}
	// Row counts per spine position are execution-strategy-independent.
	for i, pn := range fusedSpine {
		fr := fusedMap[pn].RowsOut()
		ur := unfusedMap[unfusedSpine[i]].RowsOut()
		if fr != ur {
			t.Fatalf("spine node %v rows diverge: fused %d vs unfused %d", pn.Op, fr, ur)
		}
		if fr == 0 {
			t.Fatalf("spine node %v emitted no rows; attribution test is vacuous", pn.Op)
		}
	}
}

// TestFusedJoinProbeMatchesUnfused runs a probe join through both strategies
// at parallelism 1 and 4 and compares every emitted row (canonical order is
// part of the engine's determinism contract, so plain batch-order equality
// is the correct check).
func TestFusedJoinProbeMatchesUnfused(t *testing.T) {
	cat := fusedCatalog()
	mkJoin := func() *plan.Node {
		dim := plan.NewProject(
			plan.NewSelect(plan.NewScan("bench", "id", "s"),
				expr.Lt(expr.C("id"), expr.Int(4096))),
			plan.P(expr.C("id"), "did"),
			plan.P(expr.C("s"), "ds"))
		fact := plan.NewSelect(plan.NewScan("bench", "id", "k", "v"),
			expr.Lt(expr.C("k"), expr.Int(32)))
		return plan.NewJoin(plan.Inner, fact, dim, []string{"id"}, []string{"did"})
	}
	collect := func(par int, disableFusion bool) *catalog.Result {
		n := mkJoin()
		if err := n.Resolve(cat); err != nil {
			t.Fatal(err)
		}
		ctx := NewCtx(cat)
		ctx.Parallelism = par
		ctx.DisableFusion = disableFusion
		op, err := Build(ctx, n, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(ctx, op)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := collect(1, true)
	for _, par := range []int{1, 4} {
		got := collect(par, false)
		sameRows(t, "fused join", want, got)
	}
}

// TestFusedFragmentsCounter asserts the engagement counter moves when a
// fusable plan builds with fusion enabled and stays put when disabled.
func TestFusedFragmentsCounter(t *testing.T) {
	cat := fusedCatalog()
	build := func(disable bool) {
		n := fusedBenchPlan()
		if err := n.Resolve(cat); err != nil {
			t.Fatal(err)
		}
		ctx := NewCtx(cat)
		ctx.Parallelism = 1
		ctx.DisableFusion = disable
		if _, err := Build(ctx, n, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	before := FusedFragmentsBuilt()
	build(false)
	if got := FusedFragmentsBuilt() - before; got != 1 {
		t.Fatalf("fused fragment counter moved by %d, want 1", got)
	}
	before = FusedFragmentsBuilt()
	build(true)
	if got := FusedFragmentsBuilt() - before; got != 0 {
		t.Fatalf("fused fragment counter moved by %d with fusion disabled, want 0", got)
	}
}
