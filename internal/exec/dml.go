package exec

import (
	"fmt"

	"recycledb/internal/catalog"
	"recycledb/internal/expr"
	"recycledb/internal/vector"
)

// MatchingRows evaluates pred over the statement snapshot of t and returns
// the physical row positions of live rows satisfying it, in ascending
// order. A nil pred matches every live row. The DELETE executor feeds the
// result to Writer.Delete.
//
// pred is bound here against the table schema; callers pass a private clone
// (binding mutates column references in place).
func MatchingRows(ctx *Ctx, t *catalog.Table, pred expr.Expr) ([]int, error) {
	snap := ctx.SnapFor(t)
	if pred != nil {
		typ, err := pred.Bind(t.Schema)
		if err != nil {
			return nil, err
		}
		if typ != vector.Bool {
			return nil, fmt.Errorf("exec: delete predicate has type %v, want bool", typ)
		}
	}
	var out []int
	flags := vector.New(vector.Bool, ctx.vecSize())
	view := &vector.Batch{Vecs: make([]*vector.Vector, len(t.Schema))}
	cols := make([]vector.Vector, len(t.Schema))
	for i := range cols {
		view.Vecs[i] = &cols[i]
		cols[i].Typ = t.Schema[i].Typ
	}
	for lo := 0; lo < snap.Rows; lo += ctx.vecSize() {
		if err := ctx.Interrupted(); err != nil {
			return nil, err
		}
		hi := lo + ctx.vecSize()
		if hi > snap.Rows {
			hi = snap.Rows
		}
		for i := range cols {
			src := snap.Col(i)
			switch src.Typ {
			case vector.Int64, vector.Date:
				cols[i].I64 = src.I64[lo:hi]
			case vector.Float64:
				cols[i].F64 = src.F64[lo:hi]
			case vector.String:
				cols[i].Str = src.Str[lo:hi]
			case vector.Bool:
				cols[i].B = src.B[lo:hi]
			}
		}
		if pred == nil {
			for r := lo; r < hi; r++ {
				if !snap.Del.Has(r) {
					out = append(out, r)
				}
			}
			continue
		}
		flags.Reset()
		if err := pred.Eval(view, flags); err != nil {
			return nil, err
		}
		for i, ok := range flags.B[:hi-lo] {
			if ok && !snap.Del.Has(lo+i) {
				out = append(out, lo+i)
			}
		}
	}
	return out, nil
}
