package exec

import (
	"encoding/binary"
	"math"

	"recycledb/internal/vector"
)

// Byte-string key encoding. This is the reference slow path for group/join
// keys: the hot paths hash key columns vectorized (hash.go) and verify with
// typed comparators, but the byte encoding remains the executable
// specification of key equality — the property tests in key_test.go hold
// the two in lockstep — and the fallback for any future mixed-type
// coercion the columnar kernels do not cover.

// appendKey appends a type-tagged encoding of physical row i of v to buf,
// so that multi-column group/join keys can be compared as byte strings.
//
// Mixed-type (coerce=true) numeric keys encode through an
// exactness-preserving canonical form: any value exactly representable as
// int64 — every int64, and every float64 that is integral and in range —
// encodes as tag 'i' plus its int64 bits; every other float64 encodes as
// tag 'f' plus its IEEE bits. 1 and 1.0 still collide (intended for
// coerced joins), but an int64 above 2^53 is never narrowed through
// float64, so e.g. 2^53 and 2^53+1 stay distinct keys (they used to
// collapse onto the same float encoding).
func appendKey(buf []byte, v *vector.Vector, i int, coerce bool) []byte {
	switch v.Typ {
	case vector.Int64, vector.Date:
		buf = append(buf, 'i')
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.I64[i]))
	case vector.Float64:
		f := v.F64[i]
		if coerce && f == math.Trunc(f) && f >= minExactI64 && f < maxExactI64 {
			buf = append(buf, 'i')
			buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(f)))
		} else {
			buf = append(buf, 'f')
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
	case vector.String:
		buf = append(buf, 's')
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Str[i])))
		buf = append(buf, v.Str[i]...)
	case vector.Bool:
		buf = append(buf, 'b')
		if v.B[i] {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// encodeRowKey encodes the given columns of physical row i as a
// byte-string key.
func encodeRowKey(buf []byte, b *vector.Batch, cols []int, coerce []bool, i int) []byte {
	buf = buf[:0]
	for k, c := range cols {
		buf = appendKey(buf, b.Vecs[c], i, coerce[k])
	}
	return buf
}
