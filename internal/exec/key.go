package exec

import (
	"encoding/binary"
	"math"

	"recycledb/internal/vector"
)

// appendKey appends a type-tagged encoding of row i of v to buf, so that
// multi-column group/join keys can be compared as byte strings. Numeric
// columns (int64/date/float64) are encoded as float64 bits when mixed-type
// joins require it (coerce=true), keeping 1 = 1.0.
func appendKey(buf []byte, v *vector.Vector, i int, coerce bool) []byte {
	switch v.Typ {
	case vector.Int64, vector.Date:
		if coerce {
			buf = append(buf, 'f')
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(float64(v.I64[i])))
		} else {
			buf = append(buf, 'i')
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.I64[i]))
		}
	case vector.Float64:
		buf = append(buf, 'f')
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F64[i]))
	case vector.String:
		buf = append(buf, 's')
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Str[i])))
		buf = append(buf, v.Str[i]...)
	case vector.Bool:
		buf = append(buf, 'b')
		if v.B[i] {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// encodeRowKey encodes the given columns of row i as a byte-string key.
func encodeRowKey(buf []byte, b *vector.Batch, cols []int, coerce []bool, i int) []byte {
	buf = buf[:0]
	for k, c := range cols {
		buf = appendKey(buf, b.Vecs[c], i, coerce[k])
	}
	return buf
}
