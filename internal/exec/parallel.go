package exec

import (
	"sync"
	"sync/atomic"
	"time"

	"recycledb/internal/catalog"
	"recycledb/internal/expr"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// parallelFragments counts fragments built process-wide; tests use it to
// assert the parallel path actually engaged rather than silently falling
// back to serial operators.
var parallelFragments atomic.Int64

// ParallelFragmentsBuilt returns the number of morsel-parallel fragments
// constructed since process start (introspection/testing).
func ParallelFragmentsBuilt() int64 { return parallelFragments.Load() }

// Morsel-driven parallel pipelines.
//
// When Ctx.Parallelism > 1, Build recognizes pipeline-shaped plan
// fragments (plan.ClassifyFragment) and executes them on a worker pool:
// the driving TableScan is split into row-range morsels over the
// statement's snapshot, each worker runs its own clone of the
// filter/project/join-probe pipeline (cloned expressions, so per-node
// evaluation scratch stays worker-local), and the results merge back into
// a single stream at the fragment root.
//
// Two properties make the parallel engine observationally identical to the
// serial one, which is what keeps the recycler correct without changes:
//
//   - Determinism. The exchange emits morsel outputs in morsel order
//     (workers race, the merge reorders), join builds preserve arrival
//     order within each hash partition, and parallel aggregation sorts
//     merged groups by first occurrence in the morsel-ordered stream — so
//     a parallel pipeline produces the same batches in the same order the
//     serial pipeline would (float aggregates modulo re-association).
//     Materialized (cached) results are therefore independent of the
//     parallelism degree that produced them.
//
//   - Merge-point materialization. Recycler decorations act as fragment
//     barriers: a node carrying a reuse, wait, or store decoration is
//     never cloned into workers, so store operators always observe the
//     merged stream (one admission per plan signature, deep-owned batches,
//     exactly as in serial execution), and cached replays feed pipelines
//     from the consumer side.
//
// Per-node statistics fold across workers: each plan node inside a
// fragment maps to a foldOp summing its clones' measured wall time and
// emitted rows, so the recycler graph sees subtree base costs equivalent
// to the serial engine's (total work, not elapsed wall time) and the
// hR/benefit math is unchanged.

// buildParallel attempts to build a morsel-parallel and/or fused operator
// for the subtree rooted at n. It reports handled=false when the subtree
// should take the serial unfused path (not pipeline-shaped, fusion disabled
// with no parallelism budget, or a delta run). Fragments large enough to
// split run on a worker pool (with fused or cloned worker interiors per
// Ctx.DisableFusion); smaller or serial fragments still fuse on the calling
// goroutine through FusedPipeline/FusedAgg unless fusion is disabled.
func buildParallel(ctx *Ctx, n *plan.Node, dec Decorations, opmap map[*plan.Node]Operator) (Operator, bool, error) {
	if len(ctx.ScanFrom) > 0 {
		return nil, false, nil
	}
	fuse := !ctx.DisableFusion
	par := ctx.Parallelism > 1
	if !par && !fuse {
		return nil, false, nil
	}
	barrier := func(x *plan.Node) bool { return dec != nil && dec[x] != nil }
	kind, scanNode := plan.ClassifyFragment(n, barrier)
	if kind == plan.FragNone {
		return nil, false, nil
	}
	tbl, err := ctx.Cat.Table(scanNode.Table)
	if err != nil {
		return nil, false, nil // let the serial path surface the error
	}
	snap := ctx.SnapFor(tbl)
	msz := ctx.morselRows()
	if par && snap.Rows < 2*msz {
		par = false // too small: splitting costs more than it buys
	}
	if !par && !fuse {
		return nil, false, nil
	}
	cols := make([]int, len(scanNode.Cols))
	for i, c := range scanNode.Cols {
		cols[i] = tbl.Schema.ColIndex(c)
		if cols[i] < 0 {
			return nil, false, nil
		}
	}
	nW, window := 1, 0
	if par {
		nMorsels := (snap.Rows + msz - 1) / msz
		nW = ctx.Parallelism
		if nW > nMorsels {
			nW = nMorsels
		}
		if kind == plan.FragPipeline {
			// Ordered merges buffer out-of-order morsel outputs; the claim
			// window bounds that buffer. Aggregating fragments keep nothing,
			// and the serial drivers consume morsels in claim order.
			window = 2 * nW
		}
	}
	src := newMorselSource(snap, 0, snap.Rows, msz, window)
	fb := &fragBuilder{
		ctx: ctx, dec: dec, opmap: opmap,
		src: src, scanNode: scanNode, scanCols: cols,
		builds: make(map[*plan.Node]*sharedBuild),
		folds:  make(map[*plan.Node]*foldOp),
	}
	var op Operator
	var handled bool
	switch {
	case kind == plan.FragPipeline && par:
		op, handled, err = fb.buildExchange(n, nW, fuse)
	case kind == plan.FragAggregate && par:
		op, handled, err = fb.buildParallelAgg(n, nW, fuse)
	case kind == plan.FragPipeline:
		op, handled, err = fb.buildFusedPipeline(n)
	case kind == plan.FragAggregate:
		op, handled, err = fb.buildFusedAgg(n)
	}
	if handled {
		if par {
			parallelFragments.Add(1)
		}
		if fuse {
			fusedFragments.Add(1)
		}
	}
	return op, handled, err
}

// fragBuilder clones one pipeline fragment per worker, wiring shared state
// (the morsel source, per-join shared builds) and per-node stats folding.
type fragBuilder struct {
	ctx      *Ctx
	dec      Decorations
	opmap    map[*plan.Node]Operator
	src      *morselSource
	scanNode *plan.Node
	scanCols []int
	builds   map[*plan.Node]*sharedBuild
	folds    map[*plan.Node]*foldOp
}

// clonePipeline builds one worker's operator chain for the pipeline rooted
// at pn, returning its MorselScan leaf. Expressions are cloned so each
// worker owns its evaluation scratch; join build sides are built once
// (first worker) through the normal Build path and shared.
func (fb *fragBuilder) clonePipeline(pn *plan.Node) (Operator, *MorselScan, error) {
	var op Operator
	var scan *MorselScan
	var err error
	switch pn.Op {
	case plan.Scan:
		scan = newMorselScan(fb.src, fb.scanCols, pn.Schema())
		op = scan
	case plan.Select:
		var child Operator
		child, scan, err = fb.clonePipeline(pn.Children[0])
		if err != nil {
			return nil, nil, err
		}
		op = NewFilter(child, pn.Pred.Clone())
	case plan.Project:
		var child Operator
		child, scan, err = fb.clonePipeline(pn.Children[0])
		if err != nil {
			return nil, nil, err
		}
		exprs := make([]expr.Expr, len(pn.Projs))
		for i, p := range pn.Projs {
			exprs[i] = p.E.Clone()
		}
		op = NewProject(child, exprs, pn.Schema())
	case plan.Join:
		var child Operator
		child, scan, err = fb.clonePipeline(pn.Children[0])
		if err != nil {
			return nil, nil, err
		}
		sb := fb.builds[pn]
		if sb == nil {
			sb, err = fb.newSharedBuild(pn)
			if err != nil {
				return nil, nil, err
			}
			fb.builds[pn] = sb
		}
		lcols := make([]int, len(pn.LeftKeys))
		for i := range pn.LeftKeys {
			lcols[i] = pn.Children[0].Schema().ColIndex(pn.LeftKeys[i])
			if lcols[i] < 0 {
				return nil, nil, errJoinKey(pn, i)
			}
		}
		op = newProbeJoin(pn.JT, child, sb, lcols, pn.Schema())
	default:
		return nil, nil, errNotPipeline(pn)
	}
	f := fb.folds[pn]
	if f == nil {
		f = &foldOp{schema: pn.Schema()}
		if pn.Op == plan.Join {
			sb := fb.builds[pn]
			f.extraCost = func() time.Duration { return sb.cost() }
		}
		fb.folds[pn] = f
		if fb.opmap != nil {
			fb.opmap[pn] = f
		}
	}
	f.clones = append(f.clones, op)
	return op, scan, nil
}

// newSharedBuild constructs the shared build state for join node pn,
// building its right (build-side) subplan through the normal Build path —
// so recycler decorations inside the build side (cache replays, stores)
// keep working, and large build subtrees parallelize on their own.
func (fb *fragBuilder) newSharedBuild(pn *plan.Node) (*sharedBuild, error) {
	child, err := Build(fb.ctx, pn.Children[1], fb.dec, fb.opmap)
	if err != nil {
		return nil, err
	}
	rcols := make([]int, len(pn.RightKeys))
	for i := range pn.RightKeys {
		rcols[i] = pn.Children[1].Schema().ColIndex(pn.RightKeys[i])
		if rcols[i] < 0 {
			return nil, errJoinKey(pn, i)
		}
	}
	sb := &sharedBuild{child: child, rightCols: rcols}
	// The single-column int64 hash fast path is a per-join decision (build
	// and probe hashes must use one scheme), made here where both sides'
	// key types are known. Probes read it from the shared build.
	if !fb.ctx.DisableKernels && len(pn.LeftKeys) == 1 && len(rcols) == 1 {
		lc := pn.Children[0].Schema().ColIndex(pn.LeftKeys[0])
		if lc >= 0 &&
			fastHashType(pn.Children[0].Schema()[lc].Typ) &&
			fastHashType(pn.Children[1].Schema()[rcols[0]].Typ) {
			sb.fastHash = true
			fastHashEngaged.Add(1)
		}
	}
	return sb, nil
}

func errJoinKey(pn *plan.Node, i int) error {
	return &buildErr{msg: "exec: join key " + pn.LeftKeys[i] + "/" + pn.RightKeys[i] + " missing"}
}

func errNotPipeline(pn *plan.Node) error {
	return &buildErr{msg: "exec: internal: node " + pn.Op.String() + " is not pipeline-clonable"}
}

type buildErr struct{ msg string }

func (e *buildErr) Error() string { return e.msg }

// statSource is what foldOp folds: measured cost, emitted rows, and
// progress for one worker's execution of a plan node. Unfused worker
// clones satisfy it as Operators; fused pipes contribute fusedNodeStat
// attribution views (see fused.go).
type statSource interface {
	Cost() time.Duration
	RowsOut() int64
	Progress() float64
}

// foldOp is the stats-only stand-in registered in the engine's opmap for
// plan nodes compiled into pipeline workers: Cost and RowsOut fold the
// worker clones' measurements (sums — total work, matching the serial
// engine's inclusive subtree cost), so recycler-graph annotation is
// oblivious to how many workers executed the node, and to whether they ran
// fused or as chained operators. It is never driven as an operator.
type foldOp struct {
	schema    catalog.Schema
	clones    []statSource
	extraCost func() time.Duration // e.g. a join's shared build
}

func (f *foldOp) Schema() catalog.Schema { return f.schema }
func (f *foldOp) Open(*Ctx) error        { return nil }

//recycledb:ctx-ok — stats-only stand-in; Next fails immediately, never loops
func (f *foldOp) Next(*Ctx) (*vector.Batch, error) {
	return nil, &buildErr{msg: "exec: foldOp is not executable"}
}
func (f *foldOp) Close(*Ctx) error { return nil }
func (f *foldOp) Progress() float64 {
	if len(f.clones) == 0 {
		return 0
	}
	var p float64
	for _, c := range f.clones {
		p += c.Progress()
	}
	return p / float64(len(f.clones))
}

func (f *foldOp) Cost() time.Duration {
	var c time.Duration
	for _, op := range f.clones {
		c += op.Cost()
	}
	if f.extraCost != nil {
		c += f.extraCost()
	}
	return c
}

func (f *foldOp) RowsOut() int64 {
	var r int64
	for _, op := range f.clones {
		r += op.RowsOut()
	}
	return r
}

// sharedBuild is a hash-join build table shared by all probe workers of a
// fragment: one dense arena in build-input arrival order plus a
// hash-partitioned chain directory. The build-side subplan is drained once
// (by whichever worker probes first); chain construction then runs one
// goroutine per partition — partitions own disjoint row sets, so the
// shared next array is written race-free. Partitioning preserves arrival
// order within each chain, so probes see matches in exactly the order the
// serial HashJoin emits them.
type sharedBuild struct {
	child     Operator
	rightCols []int
	fastHash  bool // single-column int64 key hashing (set at construction)

	once    sync.Once
	err     error
	arena   *vector.Batch // global arrival order; aliased by all workers
	hash    []uint64
	next    []int32
	parts   []oaTable
	shift   uint
	nanos   atomic.Int64 // build wall time (atomic: folded mid-stream)
	closeMu sync.Mutex
	closed  bool
}

func (b *sharedBuild) cost() time.Duration { return time.Duration(b.nanos.Load()) }

// ensure runs the build exactly once (first prober wins; the rest observe
// the completed table through the Once barrier).
func (b *sharedBuild) ensure(ctx *Ctx, parallelism int) error {
	b.once.Do(func() { b.err = b.run(ctx, parallelism) })
	return b.err
}

func (b *sharedBuild) run(ctx *Ctx, parallelism int) error {
	start := time.Now()
	defer func() { b.nanos.Store(time.Since(start).Nanoseconds()) }()
	b.arena = ctx.pool().GetBatch(b.child.Schema().Types(), ctx.vecSize())
	var hs []uint64
	for {
		batch, err := b.child.Next(ctx)
		if err != nil {
			return err
		}
		if batch == nil {
			break
		}
		n := batch.Len()
		if n == 0 {
			continue
		}
		b.arena.AppendBatch(batch)
		if cap(hs) < n {
			hs = make([]uint64, n)
		}
		hs = hs[:n]
		if b.fastHash {
			hashI64Fast(batch.Vecs[b.rightCols[0]], batch.Sel, hs)
		} else {
			hashColumns(batch, b.rightCols, hs)
		}
		b.hash = append(b.hash, hs...)
	}
	rows := len(b.hash)
	b.next = make([]int32, rows)

	// Partition count: enough for the chain builders to run concurrently,
	// power of two so the partition is the hash's top bits (independent of
	// the bucket index, which uses the low bits).
	nParts := 1
	for nParts < parallelism {
		nParts <<= 1
	}
	b.shift = uint(64 - log2(nParts))
	b.parts = make([]oaTable, nParts)
	counts := make([]int, nParts)
	for _, h := range b.hash {
		counts[h>>b.shift]++
	}
	var wg sync.WaitGroup
	for p := 0; p < nParts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			t := &b.parts[p]
			t.init(counts[p])
			ph := uint64(p)
			// Insert in reverse arrival order so each chain lists build
			// rows oldest-first (the serial HashJoin's emission order).
			for r := rows - 1; r >= 0; r-- {
				h := b.hash[r]
				if h>>b.shift != ph {
					continue
				}
				s := t.slot(h)
				b.next[r] = t.buckets[s]
				t.buckets[s] = int32(r)
			}
		}(p)
	}
	wg.Wait()
	return nil
}

// log2 of a power of two.
func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// close releases the build-side subplan and the arena. Safe to call from
// the exchange teardown whether or not the build ever ran.
func (b *sharedBuild) close(ctx *Ctx) error {
	b.closeMu.Lock()
	defer b.closeMu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	if b.arena != nil {
		ctx.pool().PutBatch(b.arena)
		b.arena = nil
	}
	b.parts = nil
	b.next = nil
	b.hash = nil
	return b.child.Close(ctx)
}

// ProbeJoin is the worker-side probe of a shared hash-join build: the
// serial HashJoin's probe loop against the sharedBuild's partitioned
// chains. One instance runs per worker; each drains its own probe pipeline
// morsel by morsel (after the probe child returns nil the operator is
// rearmed by the next StartMorsel upstream).
type ProbeJoin struct {
	base
	Left     Operator
	JT       plan.JoinType
	LeftCols []int
	sb       *sharedBuild

	built bool
	out   *vector.Batch // pooled output batch

	probeH []uint64
	lIdx   []int32
	rIdx   []int32

	cur       *vector.Batch
	curRow    int
	rowActive bool
	cand      int32
	matched   bool

	leftWidth, rightVecs int
	parallelism          int
}

func newProbeJoin(jt plan.JoinType, left Operator, sb *sharedBuild, leftCols []int, schema catalog.Schema) *ProbeJoin {
	return &ProbeJoin{
		base: base{schema: schema}, JT: jt, Left: left, sb: sb, LeftCols: leftCols,
	}
}

// Open implements Operator.
func (j *ProbeJoin) Open(ctx *Ctx) error {
	defer j.addCost(time.Now())
	j.built = false
	j.cur = nil
	j.curRow = 0
	j.rowActive = false
	j.leftWidth = len(j.Left.Schema())
	j.rightVecs = len(j.sb.child.Schema())
	j.parallelism = ctx.Parallelism
	j.out = ctx.pool().GetBatch(j.schema.Types(), ctx.vecSize())
	if j.lIdx == nil {
		j.lIdx = make([]int32, 0, ctx.vecSize())
		j.rIdx = make([]int32, 0, ctx.vecSize())
	}
	return j.Left.Open(ctx)
}

func (j *ProbeJoin) emitsRight() bool {
	return j.JT == plan.Inner || j.JT == plan.LeftOuter
}

func (j *ProbeJoin) pending() int { return j.out.Len() + len(j.lIdx) }

func (j *ProbeJoin) emit(probePhys int, buildRow int32) {
	j.lIdx = append(j.lIdx, int32(probePhys))
	j.rIdx = append(j.rIdx, buildRow)
}

func (j *ProbeJoin) flushPairs() {
	flushJoinPairs(j.out, j.cur, j.sb.arena, j.lIdx, j.rIdx, j.leftWidth, j.rightVecs, j.JT)
	j.lIdx = j.lIdx[:0]
	j.rIdx = j.rIdx[:0]
}

func (j *ProbeJoin) yield() *vector.Batch {
	j.flushPairs()
	j.rows += int64(j.out.Len())
	return j.out
}

// Next implements Operator: identical probe semantics to HashJoin.Next,
// with candidates drawn from the shared partitioned table. At probe-input
// end it returns (nil, nil) without latching done, so the next morsel
// restarts it.
func (j *ProbeJoin) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	if !j.built {
		// Before the probe cost timer: the shared build's wall time is
		// owned by the fragment (folded exactly once via sharedBuild.cost),
		// and every clone but the builder merely blocks here on the Once.
		if err := j.sb.ensure(ctx, j.parallelism); err != nil {
			return nil, err
		}
		j.built = true
	}
	defer j.addCost(time.Now())
	sb := j.sb
	j.out.Reset()
	limit := ctx.vecSize()
	for {
		if j.cur == nil {
			b, err := j.Left.Next(ctx)
			if err != nil {
				return nil, err
			}
			if b == nil {
				if j.pending() > 0 {
					return j.yield(), nil
				}
				return nil, nil
			}
			n := b.Len()
			if n == 0 {
				continue
			}
			j.cur = b
			j.curRow = 0
			j.rowActive = false
			if cap(j.probeH) < n {
				j.probeH = make([]uint64, n)
			}
			j.probeH = j.probeH[:n]
			if j.sb.fastHash {
				hashI64Fast(b.Vecs[j.LeftCols[0]], b.Sel, j.probeH)
			} else {
				hashColumns(b, j.LeftCols, j.probeH)
			}
		}
		n := j.cur.Len()
		for j.curRow < n {
			r := j.cur.RowIdx(j.curRow)
			h := j.probeH[j.curRow]
			if !j.rowActive {
				t := &sb.parts[h>>sb.shift]
				j.cand = t.buckets[t.slot(h)]
				j.matched = false
				j.rowActive = true
			}
			for j.cand >= 0 {
				c := j.cand
				j.cand = sb.next[c]
				if sb.hash[c] != h ||
					!keyRowsEqual(j.cur, r, j.LeftCols, sb.arena, int(c), sb.rightCols) {
					continue
				}
				switch j.JT {
				case plan.Inner, plan.LeftOuter:
					j.matched = true
					j.emit(r, c)
					if j.pending() >= limit && j.cand >= 0 {
						return j.yield(), nil
					}
				case plan.LeftSemi, plan.LeftAnti:
					j.matched = true
					j.cand = -1
				}
			}
			switch j.JT {
			case plan.LeftSemi:
				if j.matched {
					j.emit(r, -1)
				}
			case plan.LeftAnti:
				if !j.matched {
					j.emit(r, -1)
				}
			case plan.LeftOuter:
				if !j.matched {
					j.emit(r, -1)
				}
			}
			j.rowActive = false
			j.curRow++
			if j.pending() >= limit {
				if j.curRow >= n {
					j.flushPairs()
					j.cur = nil
				}
				return j.yield(), nil
			}
		}
		j.flushPairs()
		j.cur = nil
	}
}

// Close implements Operator. The shared build is owned and closed by the
// fragment operator, not by its per-worker probes.
func (j *ProbeJoin) Close(ctx *Ctx) error {
	if j.out != nil {
		ctx.pool().PutBatch(j.out)
		j.out = nil
	}
	j.cur = nil
	return j.Left.Close(ctx)
}

// Progress implements Operator.
func (j *ProbeJoin) Progress() float64 {
	if !j.built {
		return 0
	}
	return j.Left.Progress()
}
