package exec

// Lockstep quick-checks for the type-specialized kernel layer: every
// compiled predicate kernel is exercised against the generic expr.Eval
// path on randomized batches salted with the adversarial values the
// kernels' tricks must survive — NaN and ±Inf, int64 magnitudes beyond
// 2^53, MinInt64/MaxInt64 range edges — across dense inputs, full, sparse
// and empty selection vectors. The operator-level tests then prove
// kernels-on and kernels-off engines produce identical streams through
// Filter, HashAgg and HashJoin, and that the zero-allocation steady-state
// contract holds on the kernel paths.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"recycledb/internal/catalog"
	"recycledb/internal/expr"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// adversarialI64 returns n int64s mixing small values around the typical
// constants with exact-range edges and beyond-2^53 magnitudes.
func adversarialI64(rng *rand.Rand, n int) []int64 {
	specials := []int64{
		math.MinInt64, math.MinInt64 + 1, math.MaxInt64, math.MaxInt64 - 1,
		0, 1, -1, 1 << 53, (1 << 53) + 1, -(1 << 53) - 1, 42,
	}
	out := make([]int64, n)
	for i := range out {
		switch rng.Intn(4) {
		case 0:
			out[i] = specials[rng.Intn(len(specials))]
		case 1:
			out[i] = rng.Int63n(100) - 50
		default:
			out[i] = int64(rng.Uint64())
		}
	}
	return out
}

// adversarialF64 returns n float64s salted with NaN, ±Inf and signed zeros.
func adversarialF64(rng *rand.Rand, n int) []float64 {
	specials := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1),
		math.MaxFloat64, -math.MaxFloat64, 42.5,
	}
	out := make([]float64, n)
	for i := range out {
		switch rng.Intn(4) {
		case 0:
			out[i] = specials[rng.Intn(len(specials))]
		case 1:
			out[i] = float64(rng.Intn(100) - 50)
		default:
			out[i] = rng.NormFloat64() * 1e6
		}
	}
	return out
}

// kernelTestVec builds a one-column batch of the given type and length.
func kernelTestVec(rng *rand.Rand, t vector.Type, n int) *vector.Vector {
	v := vector.New(t, n)
	switch t {
	case vector.Int64, vector.Date:
		v.I64 = adversarialI64(rng, n)
	case vector.Float64:
		v.F64 = adversarialF64(rng, n)
	case vector.String:
		for i := 0; i < n; i++ {
			v.Str = append(v.Str, fmt.Sprintf("tag-%d", rng.Intn(5)))
		}
	}
	return v
}

// genericSel evaluates pred over the batch with the generic tree walk and
// returns the surviving physical rows, exactly as the unkerneled Filter
// builds its selection.
func genericSel(t *testing.T, pred expr.Expr, b *vector.Batch) []int32 {
	t.Helper()
	flags := vector.New(vector.Bool, b.Len())
	if err := pred.Eval(b, flags); err != nil {
		t.Fatalf("generic eval: %v", err)
	}
	sel := []int32{}
	for i, ok := range flags.B[:b.Len()] {
		if ok {
			sel = append(sel, int32(b.RowIdx(i)))
		}
	}
	return sel
}

func selEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkKernelLockstep compiles pred to a kernel and checks dense, full-,
// sparse- and empty-selection evaluation against the generic path.
func checkKernelLockstep(t *testing.T, schema catalog.Schema, pred expr.Expr, v *vector.Vector) {
	t.Helper()
	if _, err := pred.Bind(schema); err != nil {
		t.Fatalf("bind: %v", err)
	}
	k := compilePred(pred)
	if k == nil {
		t.Fatalf("predicate %s did not compile to a kernel", pred.Canon(expr.Ident))
	}
	n := v.Len()
	dense := &vector.Batch{Vecs: []*vector.Vector{v}}

	want := genericSel(t, pred, dense)
	if got := k.dense(k, v, n, nil); !selEqual(got, want) {
		t.Fatalf("%s dense: kernel %d rows vs generic %d rows", pred.Canon(expr.Ident), len(got), len(want))
	}

	full := make([]int32, n)
	for i := range full {
		full[i] = int32(i)
	}
	if got := k.refine(k, v, full); !selEqual(got, want) {
		t.Fatalf("%s full-sel refine diverged from generic", pred.Canon(expr.Ident))
	}

	sparse := make([]int32, 0, n/3+1)
	for i := 0; i < n; i += 3 {
		sparse = append(sparse, int32(i))
	}
	view := &vector.Batch{Vecs: []*vector.Vector{v}, Sel: append([]int32(nil), sparse...)}
	wantSparse := genericSel(t, pred, view)
	if got := k.refine(k, v, sparse); !selEqual(got, wantSparse) {
		t.Fatalf("%s sparse-sel refine diverged from generic", pred.Canon(expr.Ident))
	}

	if got := k.refine(k, v, []int32{}); len(got) != 0 {
		t.Fatalf("%s empty-sel refine produced %d rows", pred.Canon(expr.Ident), len(got))
	}
}

func TestPredKernelLockstep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 257 // odd, above one unroll block
	ops := []struct {
		name string
		mk   func(l, r expr.Expr) expr.Expr
	}{
		{"eq", func(l, r expr.Expr) expr.Expr { return expr.Eq(l, r) }},
		{"ne", func(l, r expr.Expr) expr.Expr { return expr.Ne(l, r) }},
		{"lt", func(l, r expr.Expr) expr.Expr { return expr.Lt(l, r) }},
		{"le", func(l, r expr.Expr) expr.Expr { return expr.Le(l, r) }},
		{"gt", func(l, r expr.Expr) expr.Expr { return expr.Gt(l, r) }},
		{"ge", func(l, r expr.Expr) expr.Expr { return expr.Ge(l, r) }},
	}

	t.Run("int64-int-const", func(t *testing.T) {
		schema := catalog.Schema{{Name: "x", Typ: vector.Int64}}
		consts := []int64{0, 42, -50, math.MinInt64, math.MinInt64 + 1,
			math.MaxInt64, math.MaxInt64 - 1, 1 << 53, (1 << 53) + 1}
		for _, op := range ops {
			for _, c := range consts {
				v := kernelTestVec(rng, vector.Int64, n)
				checkKernelLockstep(t, schema, op.mk(expr.C("x"), expr.Int(c)), v)
				// Mirrored literal-first form normalizes to the same kernel.
				checkKernelLockstep(t, schema, op.mk(expr.Int(c), expr.C("x")), v)
			}
		}
	})

	t.Run("int64-float-const", func(t *testing.T) {
		// Int column promoted to float by the literal: the kernel must use
		// the same lossy float64(x) conversion as the generic coercion, so
		// beyond-2^53 columns agree on which side of the constant they fall.
		schema := catalog.Schema{{Name: "x", Typ: vector.Int64}}
		consts := []float64{0.5, -3, 42, 1e18, -1e18, math.NaN(), math.Inf(1), math.Inf(-1), float64(1 << 53)}
		for _, op := range ops {
			for _, c := range consts {
				v := kernelTestVec(rng, vector.Int64, n)
				checkKernelLockstep(t, schema, op.mk(expr.C("x"), expr.Flt(c)), v)
			}
		}
	})

	t.Run("float64", func(t *testing.T) {
		schema := catalog.Schema{{Name: "x", Typ: vector.Float64}}
		consts := []float64{0, -0.0, 42.5, -1e6, math.NaN(), math.Inf(1), math.Inf(-1)}
		for _, op := range ops {
			for _, c := range consts {
				v := kernelTestVec(rng, vector.Float64, n)
				checkKernelLockstep(t, schema, op.mk(expr.C("x"), expr.Flt(c)), v)
			}
		}
		// Integer literal against a float column promotes the literal.
		for _, op := range ops {
			v := kernelTestVec(rng, vector.Float64, n)
			checkKernelLockstep(t, schema, op.mk(expr.C("x"), expr.Int(7)), v)
		}
	})

	t.Run("date", func(t *testing.T) {
		schema := catalog.Schema{{Name: "x", Typ: vector.Date}}
		for _, op := range ops {
			v := kernelTestVec(rng, vector.Date, n)
			checkKernelLockstep(t, schema, op.mk(expr.C("x"), expr.DateDays(10957)), v)
		}
	})

	t.Run("string", func(t *testing.T) {
		schema := catalog.Schema{{Name: "x", Typ: vector.String}}
		for _, c := range []string{"tag-2", "missing", ""} {
			v := kernelTestVec(rng, vector.String, n)
			checkKernelLockstep(t, schema, expr.Eq(expr.C("x"), expr.Str(c)), v)
			checkKernelLockstep(t, schema, expr.Ne(expr.C("x"), expr.Str(c)), v)
		}
	})
}

// TestKernelPairFusion checks the adjacent-conjunct fusion: a BETWEEN-style
// GE/LE pair (integer and float) must compile to one width-2 kernel whose
// survivors match evaluating both conjuncts generically, including empty
// ranges, which become constant-false kernels.
func TestKernelPairFusion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 300
	cases := []struct {
		name   string
		typ    vector.Type
		lo, hi expr.Expr
	}{
		{"int-range", vector.Int64, expr.Int(-10), expr.Int(1 << 54)},
		{"int-empty", vector.Int64, expr.Int(10), expr.Int(5)},
		{"int-edges", vector.Int64, expr.Int(math.MinInt64), expr.Int(math.MaxInt64)},
		{"float-range", vector.Float64, expr.Flt(-100), expr.Flt(1e6)},
		{"float-empty", vector.Float64, expr.Flt(5), expr.Flt(-5)},
		{"int-float-range", vector.Int64, expr.Flt(-0.5), expr.Flt(1e17)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			schema := catalog.Schema{{Name: "x", Typ: tc.typ}}
			pred := expr.Between(expr.C("x"), tc.lo, tc.hi)
			if _, err := pred.Bind(schema); err != nil {
				t.Fatal(err)
			}
			conj := expr.Conjuncts(pred)
			if len(conj) != 2 {
				t.Fatalf("Between expanded to %d conjuncts, want 2", len(conj))
			}
			steps, nk := compileSteps(conj, false, true)
			if nk != 2 || len(steps) != 1 || steps[0].kern == nil {
				t.Fatalf("pair did not fuse: %d kernels, %d steps", nk, len(steps))
			}
			k := steps[0].kern
			if k.width != 2 {
				t.Fatalf("fused kernel width = %d, want 2 (cost attribution)", k.width)
			}
			v := kernelTestVec(rng, tc.typ, n)
			b := &vector.Batch{Vecs: []*vector.Vector{v}}
			want := genericSel(t, pred, b)
			if got := k.dense(k, v, n, nil); !selEqual(got, want) {
				t.Fatalf("fused dense: kernel %d rows vs generic %d", len(got), len(want))
			}
			full := make([]int32, n)
			for i := range full {
				full[i] = int32(i)
			}
			if got := k.refine(k, v, full); !selEqual(got, want) {
				t.Fatal("fused refine diverged from generic")
			}
		})
	}
}

// TestCompileStepsDisabled checks the bisection hatch at the compilation
// layer: with enable=false every conjunct stays generic.
func TestCompileStepsDisabled(t *testing.T) {
	schema := catalog.Schema{{Name: "x", Typ: vector.Int64}}
	pred := expr.Lt(expr.C("x"), expr.Int(5))
	if _, err := pred.Bind(schema); err != nil {
		t.Fatal(err)
	}
	steps, nk := compileSteps(expr.Conjuncts(pred), false, false)
	if nk != 0 || len(steps) != 1 || steps[0].kern != nil || steps[0].pred == nil {
		t.Fatalf("disabled compile produced kernels: nk=%d steps=%+v", nk, steps)
	}
}

// runFilterRows collects the logical row ids surviving a filter, compacting
// any selection view, under the given kernel setting.
func runFilterRows(t *testing.T, tab *catalog.Table, pred expr.Expr, disable bool) []int64 {
	t.Helper()
	scan, schema := benchScan(tab)
	p := pred.Clone()
	if _, err := p.Bind(schema); err != nil {
		t.Fatal(err)
	}
	f := NewFilter(scan, p)
	ctx := NewCtx(catalog.New())
	ctx.DisableKernels = disable
	res, err := Run(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	return collectI64(res, 0)
}

// TestFilterKernelsMatchGeneric proves the pull Filter emits identical row
// streams with kernels on and off, across single kernels, fused BETWEEN
// pairs, and mixed kernel/generic conjunct chains.
func TestFilterKernelsMatchGeneric(t *testing.T) {
	tab := benchTable(benchRows)
	preds := []expr.Expr{
		expr.Lt(expr.C("id"), expr.Int(1000)),
		expr.Eq(expr.C("k"), expr.Int(7)),
		expr.Ne(expr.C("s"), expr.Str("tag-3")),
		expr.Ge(expr.C("v"), expr.Flt(500)),
		expr.Between(expr.C("v"), expr.Flt(100), expr.Flt(200)),
		expr.Between(expr.C("id"), expr.Int(100), expr.Int(5000)),
		expr.AndOf(expr.Lt(expr.C("k"), expr.Int(32)), expr.Gt(expr.C("v"), expr.Flt(250))),
		// Mixed chain: the arithmetic conjunct stays generic.
		expr.AndOf(expr.Lt(expr.C("k"), expr.Int(32)),
			expr.Gt(expr.Mul(expr.C("v"), expr.Flt(2)), expr.Flt(900))),
	}
	for i, pred := range preds {
		on := runFilterRows(t, tab, pred, false)
		off := runFilterRows(t, tab, pred, true)
		if len(on) != len(off) {
			t.Fatalf("pred %d: kernels on %d rows vs off %d rows", i, len(on), len(off))
		}
		for j := range on {
			if on[j] != off[j] {
				t.Fatalf("pred %d row %d: kernels on id=%d vs off id=%d", i, j, on[j], off[j])
			}
		}
		if len(on) == 0 || len(on) == benchRows {
			t.Fatalf("pred %d is degenerate (%d of %d rows); pick a selective one", i, len(on), benchRows)
		}
	}
}

// aggResultRows formats an aggregation result row-wise for comparison,
// preserving emission order.
func aggResultRows(res *catalog.Result) []string {
	var out []string
	for _, b := range res.Batches {
		for i := 0; i < b.Len(); i++ {
			r := b.RowIdx(i)
			s := ""
			for _, v := range b.Vecs {
				switch v.Typ {
				case vector.Int64, vector.Date:
					s += fmt.Sprintf("%d|", v.I64[r])
				case vector.Float64:
					s += fmt.Sprintf("%x|", math.Float64bits(v.F64[r]))
				case vector.String:
					s += v.Str[r] + "|"
				case vector.Bool:
					s += fmt.Sprintf("%t|", v.B[r])
				}
			}
			out = append(out, s)
		}
	}
	return out
}

// TestHashAggEmissionKernelsMatchGeneric proves the typed emission kernels
// reproduce the row-at-a-time emitAcc path bit-for-bit — float sums
// compared by bit pattern — in first-occurrence group order, for every
// accumulator class.
func TestHashAggEmissionKernelsMatchGeneric(t *testing.T) {
	tab := benchTable(benchRows)
	mkAgg := func() ([]int, []AggExpr, catalog.Schema) {
		aggs := []AggExpr{
			{Func: plan.Count, Typ: vector.Int64},
			{Func: plan.Sum, Arg: expr.C("id"), Typ: vector.Int64},
			{Func: plan.Sum, Arg: expr.C("v"), Typ: vector.Float64},
			{Func: plan.Avg, Arg: expr.C("v"), Typ: vector.Float64},
			{Func: plan.Min, Arg: expr.C("v"), Typ: vector.Float64},
			{Func: plan.Max, Arg: expr.C("id"), Typ: vector.Int64},
			{Func: plan.Min, Arg: expr.C("s"), Typ: vector.String},
		}
		schema := catalog.Schema{
			{Name: "k", Typ: vector.Int64},
			{Name: "n", Typ: vector.Int64},
			{Name: "sid", Typ: vector.Int64},
			{Name: "sv", Typ: vector.Float64},
			{Name: "av", Typ: vector.Float64},
			{Name: "mv", Typ: vector.Float64},
			{Name: "mid", Typ: vector.Int64},
			{Name: "ms", Typ: vector.String},
		}
		return []int{1}, aggs, schema
	}
	run := func(disable bool) []string {
		scan, sschema := benchScan(tab)
		groups, aggs, schema := mkAgg()
		for _, ag := range aggs {
			if ag.Arg != nil {
				if _, err := ag.Arg.Bind(sschema); err != nil {
					t.Fatal(err)
				}
			}
		}
		h := NewHashAgg(scan, groups, aggs, schema)
		ctx := NewCtx(catalog.New())
		ctx.DisableKernels = disable
		res, err := Run(ctx, h)
		if err != nil {
			t.Fatal(err)
		}
		return aggResultRows(res)
	}
	before := AggEmitKernelRuns()
	on := run(false)
	if AggEmitKernelRuns() == before {
		t.Fatal("kernels-on aggregation did not take the typed emission path")
	}
	off := run(true)
	if len(on) != len(off) {
		t.Fatalf("kernels on %d groups vs off %d groups", len(on), len(off))
	}
	for i := range on {
		if on[i] != off[i] {
			t.Fatalf("group %d: kernels on %q vs off %q (emission order or value diverged)", i, on[i], off[i])
		}
	}
}

// TestHashJoinFastHashMatchesGeneric proves the single-int64-key hash fast
// path produces the same joined stream as the canonical-form hash,
// including keys beyond 2^53 where int/float hash unification matters.
func TestHashJoinFastHashMatchesGeneric(t *testing.T) {
	// A dedicated table whose key column carries adversarial magnitudes.
	tb := catalog.NewTable("jt", catalog.Schema{
		{Name: "key", Typ: vector.Int64},
		{Name: "pay", Typ: vector.Int64},
	})
	rng := rand.New(rand.NewSource(3))
	keys := adversarialI64(rng, 4096)
	w := tb.BeginWrite()
	app := w.Appender()
	for i, k := range keys {
		if i%7 == 0 {
			app.Int64(0, k) // raw adversarial magnitudes
		} else {
			app.Int64(0, k%257) // force collisions and repeats
		}
		app.Int64(1, int64(i))
		app.FinishRow()
	}
	w.Commit()
	run := func(disable bool) ([]string, int64) {
		mk := func() (Operator, catalog.Schema) {
			schema := tb.Schema
			return NewTableScan(tb, []int{0, 1}, schema), schema
		}
		left, ls := mk()
		right, rs := mk()
		out := append(append(catalog.Schema{}, ls...), rs...)
		j := NewHashJoin(plan.Inner, left, right, []int{0}, []int{0}, out)
		ctx := NewCtx(catalog.New())
		ctx.DisableKernels = disable
		before := FastHashEngaged()
		res, err := Run(ctx, j)
		if err != nil {
			t.Fatal(err)
		}
		return aggResultRows(res), FastHashEngaged() - before
	}
	on, engagedOn := run(false)
	if engagedOn == 0 {
		t.Fatal("fast hash did not engage on a single-int64-key join with kernels on")
	}
	off, engagedOff := run(true)
	if engagedOff != 0 {
		t.Fatal("fast hash engaged with kernels disabled")
	}
	if len(on) != len(off) {
		t.Fatalf("fast hash %d rows vs generic %d rows", len(on), len(off))
	}
	for i := range on {
		if on[i] != off[i] {
			t.Fatalf("row %d: fast hash %q vs generic %q", i, on[i], off[i])
		}
	}
}

// --- Zero-allocation contracts on the kernel paths ----------------------

// TestFilterKernelNextZeroAlloc holds the compiled-kernel Filter path to
// the steady-state zero-allocation contract (the generic path is covered
// by TestFilterNextZeroAlloc with kernels disabled below).
func TestFilterKernelNextZeroAlloc(t *testing.T) {
	tab := benchTable(benchRows)
	scan, schema := benchScan(tab)
	pred := expr.Between(expr.C("id"), expr.Int(0), expr.Int(benchRows/2))
	f := NewFilter(scan, pred)
	if _, err := pred.Bind(schema); err != nil {
		t.Fatal(err)
	}
	before := PredKernelsCompiled()
	assertZeroAllocs(t, NewCtx(catalog.New()), f, 4, 100)
	if PredKernelsCompiled() == before {
		t.Fatal("filter did not compile its predicate to kernels")
	}
}

// TestFilterGenericNextZeroAlloc pins the kernels-off fallback to the same
// contract, so the bisection hatch does not trade correctness bisection for
// an allocation regression.
func TestFilterGenericNextZeroAlloc(t *testing.T) {
	tab := benchTable(benchRows)
	scan, schema := benchScan(tab)
	pred := expr.Lt(expr.C("id"), expr.Int(benchRows/2))
	f := NewFilter(scan, pred)
	if _, err := pred.Bind(schema); err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(catalog.New())
	ctx.DisableKernels = true
	assertZeroAllocs(t, ctx, f, 4, 100)
}

// TestHashAggEmitKernelZeroAlloc holds the typed emission path to zero
// steady-state allocations while emission spans many batches.
func TestHashAggEmitKernelZeroAlloc(t *testing.T) {
	tab := benchTable(benchRows)
	scan, schema := benchScan(tab)
	sum := expr.C("v")
	if _, err := sum.Bind(schema); err != nil {
		t.Fatal(err)
	}
	h := NewHashAgg(scan, []int{0}, []AggExpr{
		{Func: plan.Count, Typ: vector.Int64},
		{Func: plan.Sum, Arg: sum, Typ: vector.Float64},
	}, catalog.Schema{
		{Name: "id", Typ: vector.Int64},
		{Name: "n", Typ: vector.Int64},
		{Name: "sv", Typ: vector.Float64},
	})
	before := AggEmitKernelRuns()
	assertZeroAllocs(t, NewCtx(catalog.New()), h, 4, 100)
	if AggEmitKernelRuns() == before {
		t.Fatal("aggregation emission did not take the typed kernel path")
	}
}
