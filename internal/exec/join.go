package exec

import (
	"time"

	"recycledb/internal/catalog"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// HashJoin builds a hash table on its right input and streams its left
// (probe) input, supporting inner, left-semi, left-anti and left-outer
// semantics. The engine has no NULLs: left-outer zero-fills unmatched right
// columns and appends a 0/1 match column (plan.MatchCol).
//
// The build side is a dense columnar arena plus a chained open-addressing
// table: bucket heads index build rows, a parallel next array links rows
// with the same home bucket. Both sides are hashed whole-column-at-a-time
// (hashColumns); probing walks the chain comparing stored hashes first and
// verifying with typed column comparators — no per-row key encoding or
// allocation anywhere on the probe path. Matches accumulate as
// (probe, build) index pairs and are materialized column-wise with gather
// kernels once per output batch.
type HashJoin struct {
	base
	Left, Right         Operator
	JT                  plan.JoinType
	LeftCols, RightCols []int

	built     bool
	rightRows *vector.Batch // dense build arena (pooled)
	buildHash []uint64      // per build row
	next      []int32       // chain links per build row
	table     oaTable

	out    *vector.Batch // pooled output batch
	probeH []uint64      // per-probe-batch hashes (logical rows)
	lIdx   []int32       // pending probe-side physical rows
	rIdx   []int32       // pending build-side rows (-1 = zero-fill)

	cur       *vector.Batch // current probe batch
	curRow    int           // logical position in cur
	rowActive bool          // mid-chain state for resumption
	cand      int32         // next chain candidate
	matched   bool          // current probe row matched anything

	leftWidth, rightVecs int

	// fastHash selects the single-column int64 key hash (hash.go). Decided
	// once in Open for both sides together — build and probe hashes must
	// come from the same scheme — and only when both key columns are
	// statically Int64/Date, so the canonical mixed-numeric form is never
	// needed for equality.
	fastHash bool
}

// NewHashJoin builds a hash join; schema is the resolved output schema.
func NewHashJoin(jt plan.JoinType, left, right Operator, leftCols, rightCols []int, schema catalog.Schema) *HashJoin {
	return &HashJoin{
		base: base{schema: schema}, JT: jt, Left: left, Right: right,
		LeftCols: leftCols, RightCols: rightCols,
	}
}

// Open implements Operator.
func (j *HashJoin) Open(ctx *Ctx) error {
	defer j.addCost(time.Now())
	j.built = false
	j.cur = nil
	j.curRow = 0
	j.rowActive = false
	j.leftWidth = len(j.Left.Schema())
	j.rightVecs = len(j.Right.Schema())
	j.fastHash = !ctx.DisableKernels && len(j.LeftCols) == 1 && len(j.RightCols) == 1 &&
		fastHashType(j.Left.Schema()[j.LeftCols[0]].Typ) &&
		fastHashType(j.Right.Schema()[j.RightCols[0]].Typ)
	if j.fastHash {
		fastHashEngaged.Add(1)
	}
	j.out = ctx.pool().GetBatch(j.schema.Types(), ctx.vecSize())
	if j.lIdx == nil {
		j.lIdx = make([]int32, 0, ctx.vecSize())
		j.rIdx = make([]int32, 0, ctx.vecSize())
	}
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	return j.Right.Open(ctx)
}

// build drains the right input into the arena and chains the rows.
func (j *HashJoin) build(ctx *Ctx) error {
	j.rightRows = ctx.pool().GetBatch(j.Right.Schema().Types(), ctx.vecSize())
	j.buildHash = j.buildHash[:0]
	var hs []uint64
	for {
		b, err := j.Right.Next(ctx)
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		n := b.Len()
		if n == 0 {
			continue
		}
		j.rightRows.AppendBatch(b)
		if cap(hs) < n {
			hs = make([]uint64, n)
		}
		hs = hs[:n]
		if j.fastHash {
			hashI64Fast(b.Vecs[j.RightCols[0]], b.Sel, hs)
		} else {
			hashColumns(b, j.RightCols, hs)
		}
		j.buildHash = append(j.buildHash, hs...)
	}
	rows := len(j.buildHash)
	j.table.init(rows)
	if cap(j.next) < rows {
		j.next = make([]int32, rows)
	}
	j.next = j.next[:rows]
	// Insert in reverse so each chain lists build rows in arrival order,
	// preserving the match emission order of the map-based implementation.
	for r := rows - 1; r >= 0; r-- {
		s := j.table.slot(j.buildHash[r])
		j.next[r] = j.table.buckets[s]
		j.table.buckets[s] = int32(r)
	}
	j.built = true
	return nil
}

// emitsRight reports whether output rows include right-side columns.
func (j *HashJoin) emitsRight() bool {
	return j.JT == plan.Inner || j.JT == plan.LeftOuter
}

// flushPairs materializes the pending match pairs into the output batch,
// column-wise. All pending probe indexes refer to j.cur, so it must run
// before the probe batch advances.
func (j *HashJoin) flushPairs() {
	flushJoinPairs(j.out, j.cur, j.rightRows, j.lIdx, j.rIdx, j.leftWidth, j.rightVecs, j.JT)
	j.lIdx = j.lIdx[:0]
	j.rIdx = j.rIdx[:0]
}

// flushJoinPairs materializes (probe, build) index pairs into out with the
// columnar gather kernels: probe columns from probe rows lIdx, build
// columns from arena rows rIdx (-1 = zero-fill for outer joins). Shared by
// the serial HashJoin and the morsel-parallel ProbeJoin.
func flushJoinPairs(out, probe, arena *vector.Batch, lIdx, rIdx []int32, leftWidth, rightVecs int, jt plan.JoinType) {
	if len(lIdx) == 0 {
		return
	}
	for c := 0; c < leftWidth; c++ {
		out.Vecs[c].AppendGather(probe.Vecs[c], lIdx)
	}
	if jt == plan.Inner || jt == plan.LeftOuter {
		for c := 0; c < rightVecs; c++ {
			if jt == plan.Inner {
				// Inner joins never queue unmatched rows: take the
				// branch-free gather kernel.
				out.Vecs[leftWidth+c].AppendGather(arena.Vecs[c], rIdx)
			} else {
				appendGatherOrZero(out.Vecs[leftWidth+c], arena.Vecs[c], rIdx)
			}
		}
		if jt == plan.LeftOuter {
			mv := out.Vecs[len(out.Vecs)-1]
			for _, r := range rIdx {
				if r >= 0 {
					mv.AppendInt64(1)
				} else {
					mv.AppendInt64(0)
				}
			}
		}
	}
}

// appendGatherOrZero gathers src rows by index, zero-filling where the
// index is negative (unmatched outer rows).
func appendGatherOrZero(v, src *vector.Vector, idx []int32) {
	switch v.Typ {
	case vector.Int64, vector.Date:
		out := v.I64
		for _, r := range idx {
			if r >= 0 {
				out = append(out, src.I64[r])
			} else {
				out = append(out, 0)
			}
		}
		v.I64 = out
	case vector.Float64:
		out := v.F64
		for _, r := range idx {
			if r >= 0 {
				out = append(out, src.F64[r])
			} else {
				out = append(out, 0)
			}
		}
		v.F64 = out
	case vector.String:
		out := v.Str
		for _, r := range idx {
			if r >= 0 {
				out = append(out, src.Str[r])
			} else {
				out = append(out, "")
			}
		}
		v.Str = out
	case vector.Bool:
		out := v.B
		for _, r := range idx {
			if r >= 0 {
				out = append(out, src.B[r])
			} else {
				out = append(out, false)
			}
		}
		v.B = out
	}
}

// pending returns the output rows produced so far for this batch.
func (j *HashJoin) pending() int { return j.out.Len() + len(j.lIdx) }

// emit queues one output pair; build row -1 means left-only/zero-fill.
func (j *HashJoin) emit(probePhys int, buildRow int32) {
	j.lIdx = append(j.lIdx, int32(probePhys))
	j.rIdx = append(j.rIdx, buildRow)
}

// yield finalizes and returns the current output batch.
func (j *HashJoin) yield() *vector.Batch {
	j.flushPairs()
	j.rows += int64(j.out.Len())
	return j.out
}

// Next implements Operator.
func (j *HashJoin) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	defer j.addCost(time.Now())
	if !j.built {
		if err := j.build(ctx); err != nil {
			return nil, err
		}
	}
	j.out.Reset()
	limit := ctx.vecSize()
	for {
		// Fetch a probe batch if needed.
		if j.cur == nil {
			b, err := j.Left.Next(ctx)
			if err != nil {
				return nil, err
			}
			if b == nil {
				if j.pending() > 0 {
					return j.yield(), nil
				}
				return nil, nil
			}
			n := b.Len()
			if n == 0 {
				continue
			}
			j.cur = b
			j.curRow = 0
			j.rowActive = false
			if cap(j.probeH) < n {
				j.probeH = make([]uint64, n)
			}
			j.probeH = j.probeH[:n]
			if j.fastHash {
				hashI64Fast(b.Vecs[j.LeftCols[0]], b.Sel, j.probeH)
			} else {
				hashColumns(b, j.LeftCols, j.probeH)
			}
		}
		n := j.cur.Len()
		for j.curRow < n {
			r := j.cur.RowIdx(j.curRow)
			h := j.probeH[j.curRow]
			if !j.rowActive {
				j.cand = j.table.buckets[j.table.slot(h)]
				j.matched = false
				j.rowActive = true
			}
			for j.cand >= 0 {
				c := j.cand
				j.cand = j.next[c]
				if j.buildHash[c] != h ||
					!keyRowsEqual(j.cur, r, j.LeftCols, j.rightRows, int(c), j.RightCols) {
					continue
				}
				switch j.JT {
				case plan.Inner, plan.LeftOuter:
					j.matched = true
					j.emit(r, c)
					if j.pending() >= limit && j.cand >= 0 {
						// Batch full mid-chain: resume here next call.
						return j.yield(), nil
					}
				case plan.LeftSemi, plan.LeftAnti:
					j.matched = true
					j.cand = -1 // one match decides; skip the rest
				}
			}
			// Chain exhausted: settle the row.
			switch j.JT {
			case plan.LeftSemi:
				if j.matched {
					j.emit(r, -1)
				}
			case plan.LeftAnti:
				if !j.matched {
					j.emit(r, -1)
				}
			case plan.LeftOuter:
				if !j.matched {
					j.emit(r, -1)
				}
			}
			j.rowActive = false
			j.curRow++
			if j.pending() >= limit {
				if j.curRow >= n {
					j.flushPairs()
					j.cur = nil
				}
				return j.yield(), nil
			}
		}
		j.flushPairs()
		j.cur = nil
	}
}

// Close implements Operator.
func (j *HashJoin) Close(ctx *Ctx) error {
	if j.out != nil {
		ctx.pool().PutBatch(j.out)
		j.out = nil
	}
	if j.rightRows != nil {
		ctx.pool().PutBatch(j.rightRows)
		j.rightRows = nil
	}
	j.table.buckets = nil
	j.next = nil
	j.buildHash = nil
	j.cur = nil
	err1 := j.Left.Close(ctx)
	err2 := j.Right.Close(ctx)
	if err1 != nil {
		return err1
	}
	return err2
}

// Progress implements Operator: the probe (left) side drives progress, per
// the paper's left-deep progress-meter rule.
func (j *HashJoin) Progress() float64 {
	if !j.built {
		return 0
	}
	return j.Left.Progress()
}
