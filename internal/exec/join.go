package exec

import (
	"recycledb/internal/catalog"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// HashJoin builds a hash table on its right input and streams its left
// (probe) input, supporting inner, left-semi, left-anti and left-outer
// semantics. The engine has no NULLs: left-outer zero-fills unmatched right
// columns and appends a 0/1 match column (plan.MatchCol).
type HashJoin struct {
	base
	Left, Right          Operator
	JT                   plan.JoinType
	LeftCols, RightCols  []int // key column indexes
	built                bool
	table                map[string][]int32
	rightRows            *vector.Batch
	coerce               []bool
	out                  *vector.Batch
	cur                  *vector.Batch // current probe batch
	curRow               int
	curMatches           []int32
	curMatchIdx          int
	key                  []byte
	leftWidth, rightVecs int
}

// NewHashJoin builds a hash join; schema is the resolved output schema.
func NewHashJoin(jt plan.JoinType, left, right Operator, leftCols, rightCols []int, schema catalog.Schema) *HashJoin {
	return &HashJoin{
		base: base{schema: schema}, JT: jt, Left: left, Right: right,
		LeftCols: leftCols, RightCols: rightCols,
	}
}

// Open implements Operator.
func (j *HashJoin) Open(ctx *Ctx) error {
	defer j.timed()()
	j.built = false
	j.cur = nil
	j.curRow = 0
	j.curMatches = nil
	j.table = make(map[string][]int32)
	j.leftWidth = len(j.Left.Schema())
	j.rightVecs = len(j.Right.Schema())
	j.coerce = make([]bool, len(j.LeftCols))
	for k := range j.LeftCols {
		lt := j.Left.Schema()[j.LeftCols[k]].Typ
		rt := j.Right.Schema()[j.RightCols[k]].Typ
		j.coerce[k] = lt == vector.Float64 || rt == vector.Float64
	}
	j.out = vector.NewBatch(j.schema.Types(), ctx.vecSize())
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	return j.Right.Open(ctx)
}

func (j *HashJoin) build(ctx *Ctx) error {
	j.rightRows = vector.NewBatch(j.Right.Schema().Types(), ctx.vecSize())
	var key []byte
	for {
		b, err := j.Right.Next(ctx)
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		n := b.Len()
		for i := 0; i < n; i++ {
			key = encodeRowKey(key, b, j.RightCols, j.coerce, i)
			row := int32(j.rightRows.Len())
			j.rightRows.AppendRow(b, i)
			j.table[string(key)] = append(j.table[string(key)], row)
		}
	}
	j.built = true
	return nil
}

// emitsRight reports whether output rows include right-side columns.
func (j *HashJoin) emitsRight() bool {
	return j.JT == plan.Inner || j.JT == plan.LeftOuter
}

// appendJoined appends the combination of left row (b,i) and right row r
// (r < 0 means unmatched outer row).
func (j *HashJoin) appendJoined(b *vector.Batch, i int, r int32) {
	for c := 0; c < j.leftWidth; c++ {
		j.out.Vecs[c].AppendFrom(b.Vecs[c], i)
	}
	if !j.emitsRight() {
		return
	}
	for c := 0; c < j.rightVecs; c++ {
		out := j.out.Vecs[j.leftWidth+c]
		if r >= 0 {
			out.AppendFrom(j.rightRows.Vecs[c], int(r))
			continue
		}
		// Zero-fill unmatched outer rows.
		switch out.Typ {
		case vector.Int64, vector.Date:
			out.AppendInt64(0)
		case vector.Float64:
			out.AppendFloat64(0)
		case vector.String:
			out.AppendString("")
		case vector.Bool:
			out.AppendBool(false)
		}
	}
	if j.JT == plan.LeftOuter {
		m := int64(1)
		if r < 0 {
			m = 0
		}
		j.out.Vecs[len(j.out.Vecs)-1].AppendInt64(m)
	}
}

// Next implements Operator.
func (j *HashJoin) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	defer j.timed()()
	if !j.built {
		if err := j.build(ctx); err != nil {
			return nil, err
		}
	}
	j.out.Reset()
	limit := ctx.vecSize()
	for {
		// Continue emitting pending matches for the current probe row.
		for j.curMatches != nil && j.curMatchIdx < len(j.curMatches) {
			j.appendJoined(j.cur, j.curRow, j.curMatches[j.curMatchIdx])
			j.curMatchIdx++
			if j.out.Len() >= limit {
				j.advanceIfDone()
				j.rows += int64(j.out.Len())
				return j.out, nil
			}
		}
		j.advanceIfDone()
		// Fetch a probe batch if needed.
		if j.cur == nil {
			b, err := j.Left.Next(ctx)
			if err != nil {
				return nil, err
			}
			if b == nil {
				if j.out.Len() > 0 {
					j.rows += int64(j.out.Len())
					return j.out, nil
				}
				return nil, nil
			}
			j.cur = b
			j.curRow = 0
		}
		// Probe rows until the output batch fills.
		n := j.cur.Len()
		for j.curRow < n {
			j.key = encodeRowKey(j.key, j.cur, j.LeftCols, j.coerce, j.curRow)
			matches := j.table[string(j.key)]
			switch j.JT {
			case plan.LeftSemi:
				if len(matches) > 0 {
					j.appendJoined(j.cur, j.curRow, -1)
				}
			case plan.LeftAnti:
				if len(matches) == 0 {
					j.appendJoined(j.cur, j.curRow, -1)
				}
			case plan.LeftOuter:
				if len(matches) == 0 {
					j.appendJoined(j.cur, j.curRow, -1)
				} else {
					j.curMatches = matches
					j.curMatchIdx = 0
				}
			case plan.Inner:
				if len(matches) > 0 {
					j.curMatches = matches
					j.curMatchIdx = 0
				}
			}
			if j.curMatches != nil {
				// Emit matches via the loop top (may span batches).
				for j.curMatchIdx < len(j.curMatches) && j.out.Len() < limit {
					j.appendJoined(j.cur, j.curRow, j.curMatches[j.curMatchIdx])
					j.curMatchIdx++
				}
				if j.curMatchIdx < len(j.curMatches) {
					j.rows += int64(j.out.Len())
					return j.out, nil
				}
				j.curMatches = nil
				j.curRow++
			} else {
				j.curRow++
			}
			if j.out.Len() >= limit {
				if j.curRow >= n {
					j.cur = nil
				}
				j.rows += int64(j.out.Len())
				return j.out, nil
			}
		}
		j.cur = nil
	}
}

// advanceIfDone moves to the next probe row once its match list is drained.
func (j *HashJoin) advanceIfDone() {
	if j.curMatches != nil && j.curMatchIdx >= len(j.curMatches) {
		j.curMatches = nil
		j.curRow++
		if j.cur != nil && j.curRow >= j.cur.Len() {
			j.cur = nil
		}
	}
}

// Close implements Operator.
func (j *HashJoin) Close(ctx *Ctx) error {
	j.table = nil
	j.rightRows = nil
	err1 := j.Left.Close(ctx)
	err2 := j.Right.Close(ctx)
	if err1 != nil {
		return err1
	}
	return err2
}

// Progress implements Operator: the probe (left) side drives progress, per
// the paper's left-deep progress-meter rule.
func (j *HashJoin) Progress() float64 {
	if !j.built {
		return 0
	}
	return j.Left.Progress()
}
