package exec

// Selection-vector semantics: every consumer of a filtered batch — chained
// filters, projections, joins (both sides, all join types), aggregation,
// sort, top-N, limit, store materialization — must see exactly the selected
// rows. These tests force selective batches through each operator and
// compare against row-level expectations, with a tiny vector size to
// exercise mid-chain batch boundaries and resumption.

import (
	"fmt"
	"testing"
	"time"

	"recycledb/internal/catalog"
	"recycledb/internal/expr"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// selTable builds a small table: n rows of (id int64, grp int64 mod g,
// v float64, s string).
func selTable(t *testing.T, n, g int) *catalog.Table {
	t.Helper()
	tab := catalog.NewTable("t", catalog.Schema{
		{Name: "id", Typ: vector.Int64},
		{Name: "grp", Typ: vector.Int64},
		{Name: "v", Typ: vector.Float64},
		{Name: "s", Typ: vector.String},
	})
	w := tab.BeginWrite()
	app := w.Appender()
	for i := 0; i < n; i++ {
		app.Int64(0, int64(i))
		app.Int64(1, int64(i%g))
		app.Float64(2, float64(i)/2)
		app.String(3, fmt.Sprintf("s%d", i%7))
		app.FinishRow()
	}
	w.Commit()
	return tab
}

func scanAll(tab *catalog.Table) Operator {
	cols := make([]int, len(tab.Schema))
	for i := range cols {
		cols[i] = i
	}
	return NewTableScan(tab, cols, tab.Schema)
}

// evenFilter keeps rows with even id.
func evenFilter(t *testing.T, child Operator) Operator {
	t.Helper()
	pred := expr.Eq(expr.BinBy(expr.C("id"), 2), expr.BinBy(expr.Add(expr.C("id"), expr.Int(0)), 2))
	// Simpler: id % 2 == 0 via bin: bin(id,2)*2 == id
	pred = expr.Eq(expr.Mul(expr.BinBy(expr.C("id"), 2), expr.Int(2)), expr.C("id"))
	if _, err := pred.Bind(child.Schema()); err != nil {
		t.Fatal(err)
	}
	return NewFilter(child, pred)
}

// ltFilter keeps rows with id < cutoff.
func ltFilter(t *testing.T, child Operator, cutoff int64) Operator {
	t.Helper()
	pred := expr.Lt(expr.C("id"), expr.Int(cutoff))
	if _, err := pred.Bind(child.Schema()); err != nil {
		t.Fatal(err)
	}
	return NewFilter(child, pred)
}

// runRows drains op and returns all rows as datum slices.
func runRows(t *testing.T, ctx *Ctx, op Operator) [][]vector.Datum {
	t.Helper()
	res, err := Run(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]vector.Datum
	for _, b := range res.Batches {
		for i := 0; i < b.Len(); i++ {
			rows = append(rows, b.Row(i))
		}
	}
	return rows
}

func TestSelectionChainedFilters(t *testing.T) {
	tab := selTable(t, 1000, 10)
	ctx := NewCtx(catalog.New())
	ctx.VectorSize = 64
	// even ids, then id < 100 -> ids 0,2,...,98.
	op := ltFilter(t, evenFilter(t, scanAll(tab)), 100)
	rows := runRows(t, ctx, op)
	if len(rows) != 50 {
		t.Fatalf("got %d rows, want 50", len(rows))
	}
	for i, r := range rows {
		if r[0].I64 != int64(2*i) {
			t.Fatalf("row %d: id=%d, want %d", i, r[0].I64, 2*i)
		}
	}
}

func TestSelectionProjectGathersStrings(t *testing.T) {
	tab := selTable(t, 500, 10)
	ctx := NewCtx(catalog.New())
	ctx.VectorSize = 64
	f := evenFilter(t, scanAll(tab))
	exprs := []expr.Expr{expr.C("s"), expr.Add(expr.C("id"), expr.Int(1))}
	for _, e := range exprs {
		if _, err := e.Bind(tab.Schema); err != nil {
			t.Fatal(err)
		}
	}
	p := NewProject(f, exprs, catalog.Schema{
		{Name: "s", Typ: vector.String},
		{Name: "id1", Typ: vector.Int64},
	})
	rows := runRows(t, ctx, p)
	if len(rows) != 250 {
		t.Fatalf("got %d rows, want 250", len(rows))
	}
	for i, r := range rows {
		id := int64(2 * i)
		if r[1].I64 != id+1 {
			t.Fatalf("row %d: id+1=%d, want %d", i, r[1].I64, id+1)
		}
		if want := fmt.Sprintf("s%d", id%7); r[0].Str != want {
			t.Fatalf("row %d: s=%q, want %q", i, r[0].Str, want)
		}
	}
}

func TestSelectionJoinBothSides(t *testing.T) {
	tab := selTable(t, 400, 10)
	ctx := NewCtx(catalog.New())
	ctx.VectorSize = 32
	for _, jt := range []plan.JoinType{plan.Inner, plan.LeftSemi, plan.LeftAnti, plan.LeftOuter} {
		t.Run(fmt.Sprintf("%v", jt), func(t *testing.T) {
			// Probe: even ids < 200 (ids 0,2,..,198). Build: ids < 50.
			left := ltFilter(t, evenFilter(t, scanAll(tab)), 200)
			right := ltFilter(t, scanAll(tab), 50)
			schema := append(append(catalog.Schema{}, tab.Schema...), tab.Schema...)
			switch jt {
			case plan.LeftSemi, plan.LeftAnti:
				schema = append(catalog.Schema{}, tab.Schema...)
			case plan.LeftOuter:
				schema = append(schema, catalog.Column{Name: plan.MatchCol, Typ: vector.Int64})
			}
			j := NewHashJoin(jt, left, right, []int{0}, []int{0}, schema)
			rows := runRows(t, ctx, j)
			switch jt {
			case plan.Inner, plan.LeftSemi:
				// Even ids below 50: 0,2,...,48.
				if len(rows) != 25 {
					t.Fatalf("got %d rows, want 25", len(rows))
				}
			case plan.LeftAnti:
				if len(rows) != 75 {
					t.Fatalf("got %d rows, want 75", len(rows))
				}
			case plan.LeftOuter:
				if len(rows) != 100 {
					t.Fatalf("got %d rows, want 100", len(rows))
				}
				matched := 0
				for _, r := range rows {
					m := r[len(r)-1].I64
					if m == 1 {
						matched++
						if r[0].I64 != r[4].I64 {
							t.Fatalf("outer matched row keys differ: %v", r)
						}
					} else if r[4].I64 != 0 {
						t.Fatalf("unmatched outer row not zero-filled: %v", r)
					}
				}
				if matched != 25 {
					t.Fatalf("outer join matched %d, want 25", matched)
				}
			}
		})
	}
}

func TestSelectionJoinDuplicateChainsAcrossBatches(t *testing.T) {
	// Build side has 8 rows per key; vector size 4 forces every probe
	// row's match chain to span output batches (mid-chain resumption).
	tab := selTable(t, 80, 10) // grp = id%10: 8 rows per group
	ctx := NewCtx(catalog.New())
	ctx.VectorSize = 4
	left := ltFilter(t, scanAll(tab), 10) // probe ids 0..9, key grp=id
	right := scanAll(tab)
	schema := append(append(catalog.Schema{}, tab.Schema...), tab.Schema...)
	j := NewHashJoin(plan.Inner, left, right, []int{0}, []int{1}, schema)
	rows := runRows(t, ctx, j)
	if len(rows) != 80 {
		t.Fatalf("got %d rows, want 80 (10 probe x 8 matches)", len(rows))
	}
	for _, r := range rows {
		if r[0].I64 != r[5].I64 {
			t.Fatalf("join key mismatch: probe id %d vs build grp %d", r[0].I64, r[5].I64)
		}
	}
}

func TestSelectionAggregation(t *testing.T) {
	tab := selTable(t, 1000, 10)
	ctx := NewCtx(catalog.New())
	ctx.VectorSize = 64
	f := evenFilter(t, scanAll(tab))
	h := NewHashAgg(f, []int{1}, []AggExpr{
		{Func: plan.Count, Typ: vector.Int64},
		{Func: plan.Sum, Arg: expr.C("id"), Typ: vector.Int64},
	}, catalog.Schema{
		{Name: "grp", Typ: vector.Int64},
		{Name: "n", Typ: vector.Int64},
		{Name: "sum_id", Typ: vector.Int64},
	})
	if _, err := expr.C("id").Bind(tab.Schema); err != nil {
		t.Fatal(err)
	}
	// Bind the agg arg against the child schema (builders normally do it).
	if _, err := h.Aggs[1].Arg.Bind(tab.Schema); err != nil {
		t.Fatal(err)
	}
	rows := runRows(t, ctx, h)
	// Even ids have grp = id%10 in {0,2,4,6,8}: 5 groups of 100 rows.
	if len(rows) != 5 {
		t.Fatalf("got %d groups, want 5", len(rows))
	}
	for _, r := range rows {
		grp := r[0].I64
		if grp%2 != 0 {
			t.Fatalf("odd group %d leaked through the filter", grp)
		}
		if r[1].I64 != 100 {
			t.Fatalf("group %d count=%d, want 100", grp, r[1].I64)
		}
		// ids grp, grp+10, ..., grp+990 -> 100*grp + 10*(0+..+99).
		want := 100*grp + 10*4950
		if r[2].I64 != want {
			t.Fatalf("group %d sum=%d, want %d", grp, r[2].I64, want)
		}
	}
}

func TestSelectionSortAndTopN(t *testing.T) {
	tab := selTable(t, 300, 10)
	ctx := NewCtx(catalog.New())
	ctx.VectorSize = 16
	s := NewSort(evenFilter(t, scanAll(tab)), []plan.SortKey{{Col: "id", Desc: true}})
	rows := runRows(t, ctx, s)
	if len(rows) != 150 {
		t.Fatalf("sort: got %d rows, want 150", len(rows))
	}
	for i, r := range rows {
		if want := int64(298 - 2*i); r[0].I64 != want {
			t.Fatalf("sort row %d: id=%d, want %d", i, r[0].I64, want)
		}
	}
	tn := NewTopN(evenFilter(t, scanAll(tab)), []plan.SortKey{{Col: "id", Desc: true}}, 5)
	rows = runRows(t, ctx, tn)
	if len(rows) != 5 {
		t.Fatalf("topN: got %d rows, want 5", len(rows))
	}
	for i, r := range rows {
		if want := int64(298 - 2*i); r[0].I64 != want {
			t.Fatalf("topN row %d: id=%d, want %d", i, r[0].I64, want)
		}
	}
}

func TestSelectionLimitPartialBatch(t *testing.T) {
	tab := selTable(t, 300, 10)
	ctx := NewCtx(catalog.New())
	ctx.VectorSize = 64
	l := NewLimit(evenFilter(t, scanAll(tab)), 21)
	rows := runRows(t, ctx, l)
	if len(rows) != 21 {
		t.Fatalf("got %d rows, want 21", len(rows))
	}
	for i, r := range rows {
		if r[0].I64 != int64(2*i) {
			t.Fatalf("row %d: id=%d, want %d", i, r[0].I64, 2*i)
		}
	}
}

func TestSelectionStoreMaterializesDense(t *testing.T) {
	tab := selTable(t, 200, 10)
	ctx := NewCtx(catalog.New())
	ctx.VectorSize = 32
	var stored []*vector.Batch
	var storedRows, storedBytes int64
	st := NewStore(evenFilter(t, scanAll(tab)), StoreSpec{
		OnComplete: func(batches []*vector.Batch, rows, bytes int64, _ time.Duration) {
			stored = batches
			storedRows = rows
			storedBytes = bytes
		},
	})
	if _, err := Drain(ctx, st); err != nil {
		t.Fatal(err)
	}
	if storedRows != 100 {
		t.Fatalf("stored %d rows, want 100", storedRows)
	}
	var total, bytes int64
	for _, b := range stored {
		if b.Sel != nil {
			t.Fatal("materialized batch still carries a selection; the recycler must own dense copies")
		}
		total += int64(b.Len())
		bytes += b.Bytes()
		for i := 0; i < b.Len(); i++ {
			if b.Row(i)[0].I64%2 != 0 {
				t.Fatalf("odd id %d in materialized batch", b.Row(i)[0].I64)
			}
		}
	}
	if total != 100 {
		t.Fatalf("materialized %d rows, want 100", total)
	}
	// The store's byte accounting must describe what was actually kept:
	// the compacted clone, not the aliased input.
	if bytes != storedBytes {
		t.Fatalf("accounted %d bytes, clones hold %d", storedBytes, bytes)
	}
}
