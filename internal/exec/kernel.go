package exec

import (
	"math"
	"sync/atomic"

	"recycledb/internal/expr"
	"recycledb/internal/vector"
)

// Type-specialized predicate kernels.
//
// At plan-bind time the filter paths (the fused stageFilter chain and the
// pull Filter) recognize hot conjunct shapes — `col <op> const` and
// `col BETWEEN lo AND hi` over int64/float64/date plus string equality — and
// compile them to direct column loops that refine the shared selection
// vector branch-free (unconditional index store, conditional advance), with
// bounds checks hoisted out of the inner loop. Everything else falls back to
// the generic expr.Eval tree walk, so kernels change *how* rows are judged,
// never *which* rows survive:
//
//   - int64/date columns compared against integer constants compile to one
//     unsigned range-containment test `uint64(x-lo) <= uint64(hi-lo)`, which
//     is two's-complement exact for every CmpOp (EQ is the [c,c] range, LT
//     is [MinInt64, c-1], and so on; empty ranges compile to a constant-false
//     kernel rather than a wrapped subtraction);
//   - float comparisons (float columns, or int columns promoted to float by
//     a float literal) reproduce the generic evaluator's NaN semantics
//     exactly: cmpMatch(op, compareF64(x, c)) decomposes into the three
//     outcomes x<c, x>c, and "neither" (which includes NaN on either side),
//     so each kernel is a precompiled (onLT, onEQ, onGT) outcome mask over
//     those two comparisons — EQ against NaN is true, exactly like the
//     generic path. An int column against a float literal converts each
//     element with float64(x), the same (lossy beyond 2^53) conversion the
//     generic coercion performs;
//   - string equality/inequality compares against the constant directly.
//
// Kernels are selected through kernelRegistry, keyed by (column type,
// comparison type, op), once per plan bind — fused filter stages dispatch
// through a precompiled function pointer per stage, not a type switch per
// batch. Adjacent compiled conjuncts over the same column fuse further:
// integer ranges intersect, and a GE/LE float pair becomes one
// BETWEEN-style two-comparison kernel (expr.Between expands to exactly that
// conjunct pair).
//
// The kernel layer is invisible to the recycler: plan signatures never see
// kernels (they attach at bind time under the same plan nodes), rowsOut and
// the per-stage work weights that drive fused cost attribution are computed
// identically (a fused pair attributes width×rows, matching the two generic
// passes it replaced), and survivors are bit-identical by construction.
// Config.DisableKernels / RECYCLEDB_DISABLE_KERNELS is the bisection hatch.

// Engagement counters (process-wide, for tests and introspection).
var (
	predKernelsCompiled atomic.Int64
	aggEmitKernelRuns   atomic.Int64
	fastHashEngaged     atomic.Int64
)

// PredKernelsCompiled returns the number of predicate kernels compiled since
// process start.
func PredKernelsCompiled() int64 { return predKernelsCompiled.Load() }

// AggEmitKernelRuns returns the number of typed aggregate-emission kernel
// invocations since process start.
func AggEmitKernelRuns() int64 { return aggEmitKernelRuns.Load() }

// FastHashEngaged returns the number of operator opens that selected the
// single-column int64 hash fast path since process start.
func FastHashEngaged() int64 { return fastHashEngaged.Load() }

// kernelKind discriminates the compiled inner loops.
type kernelKind uint8

const (
	kFalse       kernelKind = iota // empty range: nothing survives
	kI64Range                      // uint64(x-lo) <= uint64(hi-lo)
	kI64NE                         // x != lo
	kF64Cmp                        // float outcome mask vs f1
	kF64Between                    // !(x<f1) && !(x>f2)
	kI64FCmp                       // float64(x) outcome mask vs f1
	kI64FBetween                   // !(float64(x)<f1) && !(float64(x)>f2)
	kStrCmp                        // (x == s) == eq
)

// predKernel is one compiled predicate: the column slot, the constants, and
// the refine/dense loops chosen from the registry at bind time.
type predKernel struct {
	col  int
	kind kernelKind

	lo, hi int64   // integer range
	f1, f2 float64 // float constants (f2: between upper bound)
	s      string  // string constant

	// Float outcome mask: the predicate holds when x<c and onLT, when x>c
	// and onGT, or when neither (equal, or NaN involved) and onEQ. This is
	// exactly cmpMatch(op, compareF64(x, c)).
	onLT, onEQ, onGT bool

	eq bool // string: true for =, false for <>

	// width is the number of generic conjunct passes this kernel replaces
	// (2 for a fused BETWEEN pair); fused-loop work accounting multiplies
	// by it so cost attribution matches the unkerneled stage.
	width int64

	refine func(k *predKernel, v *vector.Vector, sel []int32) []int32
	dense  func(k *predKernel, v *vector.Vector, n int, buf []int32) []int32
}

// kernelKey identifies a registry entry: the physical column type, the
// promoted comparison type the generic evaluator would coerce to, and the
// normalized operator (column on the left).
type kernelKey struct {
	Col vector.Type
	Cmp vector.Type
	Op  expr.CmpOp
}

// kernelEntry compiles a shape's constant into a ready predKernel.
type kernelEntry struct {
	compile func(k *predKernel, c vector.Datum)
}

// kernelRegistry maps (type, op) to the specialized implementation. Shapes
// without an entry (bool columns, non-constant comparisons) stay generic.
var kernelRegistry = map[kernelKey]kernelEntry{}

func init() {
	ints := []vector.Type{vector.Int64, vector.Date}
	orderOps := []expr.CmpOp{expr.EQ, expr.LT, expr.LE, expr.GT, expr.GE}
	for _, ct := range ints {
		for _, kt := range ints {
			for _, op := range orderOps {
				op := op
				kernelRegistry[kernelKey{ct, kt, op}] = kernelEntry{
					compile: func(k *predKernel, c vector.Datum) { compileI64Range(k, op, c.I64) },
				}
			}
			kernelRegistry[kernelKey{ct, kt, expr.NE}] = kernelEntry{
				compile: func(k *predKernel, c vector.Datum) {
					k.kind, k.lo = kI64NE, c.I64
					k.refine, k.dense = refineI64NE, denseI64NE
				},
			}
		}
		for _, op := range []expr.CmpOp{expr.EQ, expr.NE, expr.LT, expr.LE, expr.GT, expr.GE} {
			op := op
			kernelRegistry[kernelKey{ct, vector.Float64, op}] = kernelEntry{
				compile: func(k *predKernel, c vector.Datum) {
					k.kind, k.f1 = kI64FCmp, datumF64(c)
					k.onLT, k.onEQ, k.onGT = outcomeMask(op)
					k.refine, k.dense = refineI64FCmp, denseI64FCmp
				},
			}
		}
	}
	for _, op := range []expr.CmpOp{expr.EQ, expr.NE, expr.LT, expr.LE, expr.GT, expr.GE} {
		op := op
		kernelRegistry[kernelKey{vector.Float64, vector.Float64, op}] = kernelEntry{
			compile: func(k *predKernel, c vector.Datum) {
				k.kind, k.f1 = kF64Cmp, datumF64(c)
				k.onLT, k.onEQ, k.onGT = outcomeMask(op)
				k.refine, k.dense = refineF64Cmp, denseF64Cmp
			},
		}
	}
	kernelRegistry[kernelKey{vector.String, vector.String, expr.EQ}] = kernelEntry{
		compile: func(k *predKernel, c vector.Datum) {
			k.kind, k.s, k.eq = kStrCmp, c.Str, true
			k.refine, k.dense = refineStrCmp, denseStrCmp
		},
	}
	kernelRegistry[kernelKey{vector.String, vector.String, expr.NE}] = kernelEntry{
		compile: func(k *predKernel, c vector.Datum) {
			k.kind, k.s, k.eq = kStrCmp, c.Str, false
			k.refine, k.dense = refineStrCmp, denseStrCmp
		},
	}
}

// datumF64 converts a numeric literal to the float the generic coercion
// would compare against (float64(i) for int/date literals — intentionally
// the same lossy conversion beyond 2^53).
func datumF64(d vector.Datum) float64 {
	if d.Typ == vector.Float64 {
		return d.F64
	}
	return float64(d.I64)
}

// outcomeMask decomposes a CmpOp into which of the three compareF64 outcomes
// (less, equal-or-unordered, greater) satisfy it.
func outcomeMask(op expr.CmpOp) (onLT, onEQ, onGT bool) {
	switch op {
	case expr.EQ:
		return false, true, false
	case expr.NE:
		return true, false, true
	case expr.LT:
		return true, false, false
	case expr.LE:
		return true, true, false
	case expr.GT:
		return false, false, true
	case expr.GE:
		return false, true, true
	}
	return false, false, false
}

// compileI64Range lowers an integer order comparison to range containment.
// Empty ranges (x < MinInt64, x > MaxInt64) become constant-false kernels
// instead of wrapping the subtraction.
func compileI64Range(k *predKernel, op expr.CmpOp, c int64) {
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	switch op {
	case expr.EQ:
		lo, hi = c, c
	case expr.LT:
		if c == math.MinInt64 {
			setFalseKernel(k)
			return
		}
		hi = c - 1
	case expr.LE:
		hi = c
	case expr.GT:
		if c == math.MaxInt64 {
			setFalseKernel(k)
			return
		}
		lo = c + 1
	case expr.GE:
		lo = c
	}
	k.kind, k.lo, k.hi = kI64Range, lo, hi
	k.refine, k.dense = refineI64Range, denseI64Range
}

func setFalseKernel(k *predKernel) {
	k.kind = kFalse
	k.refine = refineFalse
	k.dense = denseFalse
}

// compilePred compiles one bound conjunct to a kernel, or nil when its shape
// is not specialized.
func compilePred(e expr.Expr) *predKernel {
	sh, ok := expr.Shape(e)
	if !ok {
		return nil
	}
	ent, ok := kernelRegistry[kernelKey{sh.ColTyp, sh.CmpTyp, sh.Op}]
	if !ok {
		return nil
	}
	k := &predKernel{col: sh.ColIdx, width: 1}
	ent.compile(k, sh.Const)
	predKernelsCompiled.Add(1)
	return k
}

// fuseKernelPair merges two adjacent compiled kernels over the same column
// into one pass when their conjunction is itself a kernel shape: integer
// ranges intersect, and a float GE/LE pair (the expr.Between expansion)
// becomes a two-comparison between kernel. Returns nil when the pair cannot
// fuse.
func fuseKernelPair(a, b *predKernel) *predKernel {
	if a.col != b.col {
		return nil
	}
	switch {
	case a.kind == kI64Range && b.kind == kI64Range:
		f := &predKernel{col: a.col, width: a.width + b.width}
		lo, hi := a.lo, a.hi
		if b.lo > lo {
			lo = b.lo
		}
		if b.hi < hi {
			hi = b.hi
		}
		if lo > hi {
			setFalseKernel(f)
			return f
		}
		f.kind, f.lo, f.hi = kI64Range, lo, hi
		f.refine, f.dense = refineI64Range, denseI64Range
		return f
	case a.kind == kF64Cmp && b.kind == kF64Cmp:
		if lo, hi, ok := betweenBounds(a, b); ok {
			f := &predKernel{col: a.col, width: a.width + b.width}
			f.kind, f.f1, f.f2 = kF64Between, lo, hi
			f.refine, f.dense = refineF64Between, denseF64Between
			return f
		}
	case a.kind == kI64FCmp && b.kind == kI64FCmp:
		if lo, hi, ok := betweenBounds(a, b); ok {
			f := &predKernel{col: a.col, width: a.width + b.width}
			f.kind, f.f1, f.f2 = kI64FBetween, lo, hi
			f.refine, f.dense = refineI64FBetween, denseI64FBetween
			return f
		}
	}
	return nil
}

// betweenBounds recognizes a GE/LE float pair in either order. GE is the
// mask (onEQ, onGT), LE is (onLT, onEQ); the fused test !(x<lo) && !(x>hi)
// is exactly the conjunction of the two masked comparisons, NaN included.
func betweenBounds(a, b *predKernel) (lo, hi float64, ok bool) {
	isGE := func(k *predKernel) bool { return !k.onLT && k.onEQ && k.onGT }
	isLE := func(k *predKernel) bool { return k.onLT && k.onEQ && !k.onGT }
	switch {
	case isGE(a) && isLE(b):
		return a.f1, b.f1, true
	case isLE(a) && isGE(b):
		return b.f1, a.f1, true
	}
	return 0, 0, false
}

// filterStep is one unit of a compiled filter chain: either a predicate
// kernel or a generic conjunct (exactly one of the fields is set).
type filterStep struct {
	kern *predKernel
	pred expr.Expr
}

// allKernelSteps reports whether every step of a compiled chain is a
// kernel (no generic fallbacks).
func allKernelSteps(steps []filterStep) bool {
	for i := range steps {
		if steps[i].kern == nil {
			return false
		}
	}
	return true
}

// compileSteps lowers bound conjuncts into a filter chain, fusing adjacent
// kernel pairs. clone controls whether generic fallback conjuncts are
// cloned (fused pipes own their evaluation scratch; the serial Filter
// evaluates the plan's own expression instances like it always has);
// enable=false skips kernel compilation entirely, producing an all-generic
// chain (the Ctx.DisableKernels path). Returns the chain and the number of
// conjuncts that compiled to kernels.
func compileSteps(conjuncts []expr.Expr, clone, enable bool) ([]filterStep, int) {
	steps := make([]filterStep, 0, len(conjuncts))
	nk := 0
	for _, c := range conjuncts {
		var k *predKernel
		if enable {
			k = compilePred(c)
		}
		if k == nil {
			if clone {
				c = c.Clone()
			}
			steps = append(steps, filterStep{pred: c})
			continue
		}
		nk++
		if n := len(steps); n > 0 && steps[n-1].kern != nil {
			if f := fuseKernelPair(steps[n-1].kern, k); f != nil {
				steps[n-1].kern = f
				continue
			}
		}
		steps = append(steps, filterStep{kern: k})
	}
	return steps, nk
}

// --- Refine kernels (selective input) ----------------------------------
//
// All refine loops compact the selection in place with the branch-free
// store-then-advance idiom of vector.RefineSel: the write index never passes
// the read index, and the loop body has no data-dependent branch besides the
// conditional increment.

func refineFalse(k *predKernel, v *vector.Vector, sel []int32) []int32 { return sel[:0] }

func refineI64Range(k *predKernel, v *vector.Vector, sel []int32) []int32 {
	xs := v.I64
	lo, rng := k.lo, uint64(k.hi-k.lo)
	out := 0
	for _, r := range sel {
		x := xs[r]
		sel[out] = r
		if uint64(x-lo) <= rng {
			out++
		}
	}
	return sel[:out]
}

func refineI64NE(k *predKernel, v *vector.Vector, sel []int32) []int32 {
	xs := v.I64
	c := k.lo
	out := 0
	for _, r := range sel {
		x := xs[r]
		sel[out] = r
		if x != c {
			out++
		}
	}
	return sel[:out]
}

func refineF64Cmp(k *predKernel, v *vector.Vector, sel []int32) []int32 {
	xs := v.F64
	c := k.f1
	onLT, onEQ, onGT := k.onLT, k.onEQ, k.onGT
	out := 0
	for _, r := range sel {
		x := xs[r]
		lt, gt := x < c, x > c
		sel[out] = r
		if (lt && onLT) || (gt && onGT) || (!lt && !gt && onEQ) {
			out++
		}
	}
	return sel[:out]
}

func refineF64Between(k *predKernel, v *vector.Vector, sel []int32) []int32 {
	xs := v.F64
	lo, hi := k.f1, k.f2
	out := 0
	for _, r := range sel {
		x := xs[r]
		sel[out] = r
		if !(x < lo) && !(x > hi) {
			out++
		}
	}
	return sel[:out]
}

func refineI64FCmp(k *predKernel, v *vector.Vector, sel []int32) []int32 {
	xs := v.I64
	c := k.f1
	onLT, onEQ, onGT := k.onLT, k.onEQ, k.onGT
	out := 0
	for _, r := range sel {
		x := float64(xs[r])
		lt, gt := x < c, x > c
		sel[out] = r
		if (lt && onLT) || (gt && onGT) || (!lt && !gt && onEQ) {
			out++
		}
	}
	return sel[:out]
}

func refineI64FBetween(k *predKernel, v *vector.Vector, sel []int32) []int32 {
	xs := v.I64
	lo, hi := k.f1, k.f2
	out := 0
	for _, r := range sel {
		x := float64(xs[r])
		sel[out] = r
		if !(x < lo) && !(x > hi) {
			out++
		}
	}
	return sel[:out]
}

func refineStrCmp(k *predKernel, v *vector.Vector, sel []int32) []int32 {
	xs := v.Str
	c, eq := k.s, k.eq
	out := 0
	for _, r := range sel {
		m := xs[r] == c
		sel[out] = r
		if m == eq {
			out++
		}
	}
	return sel[:out]
}

// --- Dense kernels (no incoming selection) ------------------------------
//
// Dense loops build the selection from scratch into buf (grown once up
// front, so the loop is an indexed store over a slice of known length). The
// caller attaches the result only when rows were dropped, preserving the
// dense flow-through behavior of the generic path.

func kernelSelBuf(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

func denseFalse(k *predKernel, v *vector.Vector, n int, buf []int32) []int32 {
	return kernelSelBuf(buf, n)[:0]
}

func denseI64Range(k *predKernel, v *vector.Vector, n int, buf []int32) []int32 {
	xs := v.I64[:n]
	buf = kernelSelBuf(buf, n)
	lo, rng := k.lo, uint64(k.hi-k.lo)
	out := 0
	for i, x := range xs {
		buf[out] = int32(i)
		if uint64(x-lo) <= rng {
			out++
		}
	}
	return buf[:out]
}

func denseI64NE(k *predKernel, v *vector.Vector, n int, buf []int32) []int32 {
	xs := v.I64[:n]
	buf = kernelSelBuf(buf, n)
	c := k.lo
	out := 0
	for i, x := range xs {
		buf[out] = int32(i)
		if x != c {
			out++
		}
	}
	return buf[:out]
}

func denseF64Cmp(k *predKernel, v *vector.Vector, n int, buf []int32) []int32 {
	xs := v.F64[:n]
	buf = kernelSelBuf(buf, n)
	c := k.f1
	onLT, onEQ, onGT := k.onLT, k.onEQ, k.onGT
	out := 0
	for i, x := range xs {
		lt, gt := x < c, x > c
		buf[out] = int32(i)
		if (lt && onLT) || (gt && onGT) || (!lt && !gt && onEQ) {
			out++
		}
	}
	return buf[:out]
}

func denseF64Between(k *predKernel, v *vector.Vector, n int, buf []int32) []int32 {
	xs := v.F64[:n]
	buf = kernelSelBuf(buf, n)
	lo, hi := k.f1, k.f2
	out := 0
	for i, x := range xs {
		buf[out] = int32(i)
		if !(x < lo) && !(x > hi) {
			out++
		}
	}
	return buf[:out]
}

func denseI64FCmp(k *predKernel, v *vector.Vector, n int, buf []int32) []int32 {
	xs := v.I64[:n]
	buf = kernelSelBuf(buf, n)
	c := k.f1
	onLT, onEQ, onGT := k.onLT, k.onEQ, k.onGT
	out := 0
	for i, ix := range xs {
		x := float64(ix)
		lt, gt := x < c, x > c
		buf[out] = int32(i)
		if (lt && onLT) || (gt && onGT) || (!lt && !gt && onEQ) {
			out++
		}
	}
	return buf[:out]
}

func denseI64FBetween(k *predKernel, v *vector.Vector, n int, buf []int32) []int32 {
	xs := v.I64[:n]
	buf = kernelSelBuf(buf, n)
	lo, hi := k.f1, k.f2
	out := 0
	for i, ix := range xs {
		x := float64(ix)
		buf[out] = int32(i)
		if !(x < lo) && !(x > hi) {
			out++
		}
	}
	return buf[:out]
}

func denseStrCmp(k *predKernel, v *vector.Vector, n int, buf []int32) []int32 {
	xs := v.Str[:n]
	buf = kernelSelBuf(buf, n)
	c, eq := k.s, k.eq
	out := 0
	for i := range xs {
		m := xs[i] == c
		buf[out] = int32(i)
		if m == eq {
			out++
		}
	}
	return buf[:out]
}
