package exec

import (
	"errors"
	"sync/atomic"
	"time"

	"recycledb/internal/catalog"
	"recycledb/internal/expr"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// Fused push-loop execution of pipeline-fragment interiors.
//
// A pipeline fragment (plan.ClassifyFragment) used to run as a chain of
// pull operators even inside one morsel worker: every batch crossed a
// virtual Next boundary per operator, each with its own cancellation check,
// cost timer, and selection handoff. fusedPipe collapses that interior into
// one compiled consumer chain driven by a single loop, per "Push vs.
// Pull-Based Loop Fusion in Query Engines" (PAPERS.md):
//
//   - the scan pushes each morsel batch straight through a flat []fusedStage
//     array (a tagged union — no interface dispatch between stages);
//   - filter stages refine ONE shared selection vector in place
//     (vector.RefineSel) instead of emitting a fresh selection per operator,
//     and a conjunctive predicate is split (expr.Conjuncts) so each conjunct
//     evaluates only over the previous conjuncts' survivors;
//   - project stages evaluate selection-aware into stage-owned pooled
//     scratch, producing dense batches;
//   - probe stages run the shared-build hash-join probe loop and gather-emit
//     matched pairs once per input batch.
//
// The pull Next interface survives only at fragment roots — Exchange and
// ParallelAgg when the fragment parallelizes, FusedPipeline and FusedAgg
// when it runs serially — which is where the recycler decorates, stores,
// and replays. Row content and order are identical to the unfused engine
// (probes emit in probe-row × chain-arrival order exactly like HashJoin);
// only batch *boundaries* may differ, because a fused probe flushes at each
// input-batch end rather than accumulating pairs to the vector size.
//
// Selection-vector ownership: a selection attached by a fused filter lives
// either in the scan's own per-batch sel (refined in place — the scan
// rebuilds it every Next, never reading old contents) or in the filter
// stage's selBuf when the input was dense. Probe and project stages always
// emit dense batches, so a selection never crosses a materializing stage
// and no stage ever aliases another stage's live selection storage.
//
// Cost attribution (the fused interior has no per-operator Next boundaries
// to time): one timer wraps the whole drive loop per worker, sink time
// (exchange copy-out / agg absorb) is measured separately and subtracted,
// and the remainder is attributed to spine nodes in proportion to work
// weights — rows scanned for the scan, rows evaluated per conjunct pass for
// filters, rows emitted for projects, rows in + rows out for probes. A
// node's inclusive cost is the prefix sum of attributed shares from the
// scan up to and including that node, which is monotone toward the root —
// exactly the shape of the unfused engine's inclusive subtree costs, so the
// recycler's hR/benefit ordering over spine nodes is preserved. Shared join
// builds fold in through foldOp.extraCost exactly as before. The views fold
// across workers through the same foldOp used for unfused clones, so
// recycler-graph annotation stays parallelism- and fusion-oblivious.

// fusedFragments counts fused fragments built process-wide; tests use it to
// assert the fused path engaged rather than silently falling back.
var fusedFragments atomic.Int64

// FusedFragmentsBuilt returns the number of fused pipeline fragments
// compiled since process start (introspection/testing).
func FusedFragmentsBuilt() int64 { return fusedFragments.Load() }

// errFusedStopped aborts a fused drive from the sink when the fragment root
// is tearing down; it never escapes the fragment operator.
var errFusedStopped = errors.New("exec: fused pipeline stopped")

// stageKind discriminates fused consumer-chain stages.
type stageKind uint8

const (
	stageFilter stageKind = iota
	stageProject
	stageProbe
)

// fusedStage is one interior spine node compiled into the consumer chain.
type fusedStage struct {
	kind stageKind

	// filter: the compiled conjunct chain refining the shared selection.
	// Each step is either a typed predicate kernel (dispatching through a
	// function pointer bound at plan time) or a generic cloned conjunct
	// evaluated through expr.Eval (see kernel.go).
	steps  []filterStep
	flags  *vector.Vector // pooled bool scratch: generic predicate output
	selBuf []int32        // selection storage when the input is dense

	// project: selection-aware evaluation into stage scratch.
	exprs []expr.Expr
	out   *vector.Batch // pooled dense output

	// probe: shared-build hash-join probe.
	probe *fusedProbe

	types []vector.Type // output schema types (project/probe scratch shape)

	// stats: rows emitted and the cost-attribution work weight.
	rowsOut int64
	work    int64
}

// fusedProbe is the probe-stage core: the serial HashJoin probe loop
// against a sharedBuild, emitting pairs gathered once per input batch.
type fusedProbe struct {
	sb          *sharedBuild
	jt          plan.JoinType
	leftCols    []int
	leftWidth   int
	rightVecs   int
	parallelism int

	built  bool
	out    *vector.Batch // pooled output batch
	probeH []uint64
	lIdx   []int32
	rIdx   []int32
}

// fusedPipe is one worker's compiled pipeline: a morsel scan plus the flat
// stage chain and the terminal sink. All fields are worker-goroutine-local
// while driving; stats are read only after the fragment quiesces (or, for
// the root's mid-stream cost, by the driving goroutine itself).
type fusedPipe struct {
	schema catalog.Schema // chain output schema (the spine root's)
	scan   *MorselScan
	src    *morselSource
	stages []fusedStage
	sink   func(*vector.Batch) error

	lastMorsel int // serial step state: morsel being drained (-1 = none)

	loopNanos int64 // whole drive loop, sink included
	sinkNanos int64 // sink calls only (copy-out / absorb)
}

func (p *fusedPipe) addLoop(start time.Time) { p.loopNanos += time.Since(start).Nanoseconds() }

// cost returns the pipe's total drive time (sink included) — the fused
// equivalent of the unfused worker's root.Cost()+copyNanos.
func (p *fusedPipe) cost() time.Duration { return time.Duration(p.loopNanos) }

// open acquires stage scratch from the pool; close releases it.
func (p *fusedPipe) open(ctx *Ctx) error {
	p.lastMorsel = -1
	if err := p.scan.Open(ctx); err != nil {
		return err
	}
	for i := range p.stages {
		s := &p.stages[i]
		switch s.kind {
		case stageFilter:
			s.flags = ctx.pool().Get(vector.Bool, ctx.vecSize())
			if s.selBuf == nil {
				s.selBuf = make([]int32, 0, ctx.vecSize())
			}
		case stageProject:
			s.out = ctx.pool().GetBatch(s.types, ctx.vecSize())
		case stageProbe:
			j := s.probe
			j.built = false
			j.parallelism = ctx.Parallelism
			if j.parallelism < 1 {
				j.parallelism = 1
			}
			j.out = ctx.pool().GetBatch(s.types, ctx.vecSize())
			if j.lIdx == nil {
				j.lIdx = make([]int32, 0, ctx.vecSize())
				j.rIdx = make([]int32, 0, ctx.vecSize())
			}
		}
	}
	return nil
}

// close returns stage scratch to the pool. Shared builds are owned and
// closed by the fragment operator, not per pipe.
func (p *fusedPipe) close(ctx *Ctx) error {
	for i := range p.stages {
		s := &p.stages[i]
		if s.flags != nil {
			ctx.pool().Put(s.flags)
			s.flags = nil
		}
		if s.out != nil {
			ctx.pool().PutBatch(s.out)
			s.out = nil
		}
		if s.probe != nil && s.probe.out != nil {
			j := s.probe
			ctx.pool().PutBatch(j.out)
			j.out = nil
		}
	}
	return p.scan.Close(ctx)
}

// driveMorsel points the scan at morsel m and pushes every batch through
// the chain to the sink. Cancellation is observed at the morsel boundary
// here and at batch granularity inside the scan.
func (p *fusedPipe) driveMorsel(ctx *Ctx, m int) error {
	if err := ctx.Interrupted(); err != nil {
		return err
	}
	defer p.addLoop(time.Now())
	p.scan.StartMorsel(m)
	for {
		b, err := p.scan.Next(ctx)
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		if b.Len() == 0 {
			continue
		}
		if err := p.push(ctx, b); err != nil {
			return err
		}
	}
}

// step is the serial driver: it claims morsels itself and processes exactly
// one scan batch per call, so a pausing sink (the pull adapter in
// FusedPipeline) holds at most one emitted batch. done reports end of the
// final morsel. Cancellation is observed at morsel boundaries; the scan
// checks it per batch.
func (p *fusedPipe) step(ctx *Ctx) (done bool, err error) {
	defer p.addLoop(time.Now())
	for {
		b, err := p.scan.Next(ctx)
		if err != nil {
			return false, err
		}
		if b == nil {
			if p.lastMorsel >= 0 {
				p.src.advance(p.lastMorsel)
			}
			m, ok := p.src.claim()
			if !ok {
				return true, nil
			}
			if err := ctx.Interrupted(); err != nil {
				return false, err
			}
			p.scan.StartMorsel(m)
			p.lastMorsel = m
			continue
		}
		if b.Len() == 0 {
			continue
		}
		if err := p.push(ctx, b); err != nil {
			return false, err
		}
		return false, nil
	}
}

// push drives one scan batch through every stage and into the sink. The
// chain is linear: a probe emits at most one (possibly oversized) batch per
// input batch, so no stage ever has more than one batch in flight and no
// per-operator handoff or resumption state exists.
func (p *fusedPipe) push(ctx *Ctx, b *vector.Batch) error {
	for i := range p.stages {
		s := &p.stages[i]
		switch s.kind {
		case stageFilter:
			n := b.Len()
			for si := range s.steps {
				if n == 0 {
					break
				}
				step := &s.steps[si]
				if k := step.kern; k != nil {
					// Compiled kernel: one typed column loop refines the
					// shared selection directly — no flags vector, no
					// expression walk. A fused pair (width > 1) judges its
					// conjuncts in the same pass; the work weight counts
					// every generic pass it replaces so fused cost
					// attribution is independent of the kernel toggle.
					s.work += int64(n) * k.width
					v := b.Vecs[k.col]
					if b.Sel != nil {
						b.Sel = k.refine(k, v, b.Sel)
					} else {
						sel := k.dense(k, v, n, s.selBuf)
						s.selBuf = sel[:0]
						if len(sel) < n {
							b.Sel = sel
						}
					}
					n = b.Len()
					continue
				}
				pred := step.pred
				s.work += int64(n)
				s.flags.Reset()
				if err := pred.Eval(b, s.flags); err != nil {
					return err
				}
				if b.Sel != nil {
					b.Sel = vector.RefineSel(b.Sel, s.flags.B[:n])
				} else {
					sel := s.selBuf[:0]
					for r, ok := range s.flags.B[:n] {
						if ok {
							sel = append(sel, int32(r))
						}
					}
					s.selBuf = sel
					if len(sel) < n {
						b.Sel = sel
					}
				}
				n = b.Len()
			}
			if n == 0 {
				return nil
			}
			s.rowsOut += int64(n)
		case stageProject:
			out := s.out
			out.Reset()
			for c, e := range s.exprs {
				if err := e.Eval(b, out.Vecs[c]); err != nil {
					return err
				}
			}
			n := int64(out.Len())
			s.rowsOut += n
			s.work += n
			b = out
		case stageProbe:
			nb, err := s.pushProbe(ctx, b)
			if err != nil {
				return err
			}
			if nb == nil {
				return nil
			}
			b = nb
		}
	}
	ss := time.Now()
	err := p.sink(b)
	p.sinkNanos += time.Since(ss).Nanoseconds()
	return err
}

// pushProbe probes one input batch against the shared build and returns the
// gathered output batch (nil when no rows matched). Identical match
// semantics and emission order to HashJoin/ProbeJoin; pairs are flushed
// once per input batch, before the scan overwrites the probe rows.
func (s *fusedStage) pushProbe(ctx *Ctx, b *vector.Batch) (*vector.Batch, error) {
	j := s.probe
	sb := j.sb
	if !j.built {
		// Outside the per-stage weights: the shared build's wall time is
		// folded exactly once via sharedBuild.cost, and every pipe but the
		// builder merely blocks here on the Once.
		if err := sb.ensure(ctx, j.parallelism); err != nil {
			return nil, err
		}
		j.built = true
	}
	n := b.Len()
	s.work += int64(n)
	if cap(j.probeH) < n {
		j.probeH = make([]uint64, n)
	}
	j.probeH = j.probeH[:n]
	if sb.fastHash {
		hashI64Fast(b.Vecs[j.leftCols[0]], b.Sel, j.probeH)
	} else {
		hashColumns(b, j.leftCols, j.probeH)
	}
	out := j.out
	out.Reset()
	for row := 0; row < n; row++ {
		r := b.RowIdx(row)
		h := j.probeH[row]
		t := &sb.parts[h>>sb.shift]
		cand := t.buckets[t.slot(h)]
		matched := false
		for cand >= 0 {
			c := cand
			cand = sb.next[c]
			if sb.hash[c] != h ||
				!keyRowsEqual(b, r, j.leftCols, sb.arena, int(c), sb.rightCols) {
				continue
			}
			switch j.jt {
			case plan.Inner, plan.LeftOuter:
				matched = true
				j.lIdx = append(j.lIdx, int32(r))
				j.rIdx = append(j.rIdx, c)
			case plan.LeftSemi, plan.LeftAnti:
				matched = true
				cand = -1
			}
		}
		switch j.jt {
		case plan.LeftSemi:
			if matched {
				j.lIdx = append(j.lIdx, int32(r))
				j.rIdx = append(j.rIdx, -1)
			}
		case plan.LeftAnti:
			if !matched {
				j.lIdx = append(j.lIdx, int32(r))
				j.rIdx = append(j.rIdx, -1)
			}
		case plan.LeftOuter:
			if !matched {
				j.lIdx = append(j.lIdx, int32(r))
				j.rIdx = append(j.rIdx, -1)
			}
		}
	}
	flushJoinPairs(out, b, sb.arena, j.lIdx, j.rIdx, j.leftWidth, j.rightVecs, j.jt)
	j.lIdx = j.lIdx[:0]
	j.rIdx = j.rIdx[:0]
	no := int64(out.Len())
	s.rowsOut += no
	s.work += no
	if no == 0 {
		return nil, nil
	}
	return out, nil
}

// fusedNodeStat is the per-(pipe, spine node) stats view folded by foldOp:
// proportional cost attribution (see the package comment's rule), actual
// emitted rows, and morsel-merge progress. Read only after the pipe's
// driving goroutine quiesces.
type fusedNodeStat struct {
	p   *fusedPipe
	idx int // spine index: 0 = scan, k>=1 = stages[k-1]
}

func (v *fusedNodeStat) Cost() time.Duration {
	p := v.p
	interior := p.loopNanos - p.sinkNanos
	if interior <= 0 {
		return 0
	}
	total := p.scan.RowsOut()
	for i := range p.stages {
		total += p.stages[i].work
	}
	if total <= 0 {
		return 0
	}
	prefix := p.scan.RowsOut()
	for i := 0; i < v.idx; i++ {
		prefix += p.stages[i].work
	}
	return time.Duration(float64(interior) * float64(prefix) / float64(total))
}

func (v *fusedNodeStat) RowsOut() int64 {
	if v.idx == 0 {
		return v.p.scan.RowsOut()
	}
	return v.p.stages[v.idx-1].rowsOut
}

func (v *fusedNodeStat) Progress() float64 { return v.p.scan.Progress() }

// newFusedPipe compiles the pipeline spine rooted at root into one fused
// chain, registering a fusedNodeStat view per spine node in the builder's
// fold map (so recycler-graph annotation folds fused pipes and unfused
// clones identically). Expressions are cloned so each pipe owns its
// evaluation scratch; join builds are shared across pipes like clonePipeline.
func (fb *fragBuilder) newFusedPipe(root *plan.Node) (*fusedPipe, error) {
	barrier := func(x *plan.Node) bool { return fb.dec != nil && fb.dec[x] != nil }
	spine, ok := plan.SpineNodes(root, barrier)
	if !ok {
		return nil, errNotPipeline(root)
	}
	p := &fusedPipe{
		schema: root.Schema(),
		scan:   newMorselScan(fb.src, fb.scanCols, spine[0].Schema()),
		src:    fb.src,
	}
	for _, pn := range spine[1:] {
		var s fusedStage
		switch pn.Op {
		case plan.Select:
			s.kind = stageFilter
			s.steps, _ = compileSteps(expr.Conjuncts(pn.Pred), true, !fb.ctx.DisableKernels)
		case plan.Project:
			s.kind = stageProject
			s.exprs = make([]expr.Expr, len(pn.Projs))
			for i, pr := range pn.Projs {
				s.exprs[i] = pr.E.Clone()
			}
			s.types = pn.Schema().Types()
		case plan.Join:
			sb := fb.builds[pn]
			if sb == nil {
				var err error
				sb, err = fb.newSharedBuild(pn)
				if err != nil {
					return nil, err
				}
				fb.builds[pn] = sb
			}
			lcols := make([]int, len(pn.LeftKeys))
			for i := range pn.LeftKeys {
				lcols[i] = pn.Children[0].Schema().ColIndex(pn.LeftKeys[i])
				if lcols[i] < 0 {
					return nil, errJoinKey(pn, i)
				}
			}
			s.kind = stageProbe
			s.types = pn.Schema().Types()
			s.probe = &fusedProbe{
				sb: sb, jt: pn.JT, leftCols: lcols,
				leftWidth: len(pn.Children[0].Schema()),
				rightVecs: len(sb.child.Schema()),
			}
		default:
			return nil, errNotPipeline(pn)
		}
		p.stages = append(p.stages, s)
	}
	for i, pn := range spine {
		f := fb.folds[pn]
		if f == nil {
			f = &foldOp{schema: pn.Schema()}
			if pn.Op == plan.Join {
				sb := fb.builds[pn]
				f.extraCost = func() time.Duration { return sb.cost() }
			}
			fb.folds[pn] = f
			if fb.opmap != nil {
				fb.opmap[pn] = f
			}
		}
		f.clones = append(f.clones, &fusedNodeStat{p: p, idx: i})
	}
	return p, nil
}

// FusedPipeline is the serial fragment root for a fused pipeline: the
// push-to-pull adapter. Its sink holds the single batch each step emits
// (the chain is linear, so a step produces at most one), and Next hands it
// up — valid until the following Next, per the operator contract, because
// the chain does not advance until then. This is what makes loop fusion pay
// at Parallelism 1: no exchange, no copies, one goroutine.
type FusedPipeline struct {
	base
	pipe    *fusedPipe
	src     *morselSource
	builds  []*sharedBuild
	emitted *vector.Batch
	closed  bool
}

// buildFusedPipeline assembles the serial fused root for fragment root n.
func (fb *fragBuilder) buildFusedPipeline(n *plan.Node) (Operator, bool, error) {
	pipe, err := fb.newFusedPipe(n)
	if err != nil {
		return nil, false, err
	}
	f := &FusedPipeline{base: base{schema: n.Schema()}, pipe: pipe, src: fb.src}
	f.builds = buildList(fb.builds)
	pipe.sink = func(b *vector.Batch) error {
		f.emitted = b
		return nil
	}
	return f, true, nil
}

// Open implements Operator.
func (f *FusedPipeline) Open(ctx *Ctx) error {
	f.closed = false
	f.emitted = nil
	for _, b := range f.builds {
		if err := b.child.Open(ctx); err != nil {
			return err
		}
	}
	return f.pipe.open(ctx)
}

// Next implements Operator.
func (f *FusedPipeline) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	for {
		if f.emitted != nil {
			b := f.emitted
			f.emitted = nil
			f.rows += int64(b.Len())
			return b, nil
		}
		done, err := f.pipe.step(ctx)
		if err != nil {
			return nil, err
		}
		if done && f.emitted == nil {
			return nil, nil
		}
	}
}

// Close implements Operator.
func (f *FusedPipeline) Close(ctx *Ctx) error {
	if f.closed {
		return nil
	}
	f.closed = true
	f.src.stop()
	f.emitted = nil
	first := f.pipe.close(ctx)
	for _, b := range f.builds {
		if err := b.close(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Progress implements Operator: drained morsels over total.
func (f *FusedPipeline) Progress() float64 { return f.pipe.scan.Progress() }

// Cost implements Operator: the fused loop (scan through sink) plus shared
// builds — the serial pipeline's inclusive subtree cost. Driving-goroutine
// local, so safe for mid-stream speculation reads from the same stream.
func (f *FusedPipeline) Cost() time.Duration {
	c := f.pipe.cost()
	for _, b := range f.builds {
		c += b.cost()
	}
	return c
}

// FusedAgg is the serial fragment root for a fused aggregation: the chain's
// sink absorbs straight into one aggState (no partials, no merge — single
// consumer discovery order is already the serial HashAgg's), and Next emits
// groups exactly like HashAgg.
type FusedAgg struct {
	base
	pipe      *fusedPipe
	src       *morselSource
	builds    []*sharedBuild
	GroupCols []int
	Aggs      []AggExpr

	st     aggState
	opened bool
	closed bool
	built  bool
	emit   int
	out    *vector.Batch // pooled

	emitNanos int64
}

// buildFusedAgg assembles the serial fused aggregation for root n.
func (fb *fragBuilder) buildFusedAgg(n *plan.Node) (Operator, bool, error) {
	child := n.Children[0]
	groupCols := make([]int, len(n.GroupBy))
	for i, g := range n.GroupBy {
		groupCols[i] = child.Schema().ColIndex(g)
		if groupCols[i] < 0 {
			return nil, false, nil // serial path reports the error
		}
	}
	pipe, err := fb.newFusedPipe(child)
	if err != nil {
		return nil, false, err
	}
	aggs := make([]AggExpr, len(n.Aggs))
	for i, a := range n.Aggs {
		aggs[i] = AggExpr{
			Func: a.Func,
			Arg:  a.Arg,
			Typ:  n.Schema()[len(n.GroupBy)+i].Typ,
		}
	}
	fa := &FusedAgg{
		base: base{schema: n.Schema()}, pipe: pipe, src: fb.src,
		GroupCols: groupCols, Aggs: aggs,
	}
	fa.builds = buildList(fb.builds)
	pipe.sink = func(b *vector.Batch) error { return fa.st.absorb(b) }
	return fa, true, nil
}

// Open implements Operator.
func (a *FusedAgg) Open(ctx *Ctx) error {
	a.closed = false
	a.built = false
	a.emit = 0
	for _, b := range a.builds {
		if err := b.child.Open(ctx); err != nil {
			return err
		}
	}
	if err := a.pipe.open(ctx); err != nil {
		return err
	}
	a.st.groupCols = a.GroupCols
	a.st.aggs = a.Aggs
	a.st.open(ctx, a.pipe.schema)
	a.out = ctx.pool().GetBatch(a.schema.Types(), ctx.vecSize())
	a.opened = true
	return nil
}

// Next implements Operator.
func (a *FusedAgg) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	if !a.built {
		for {
			done, err := a.pipe.step(ctx)
			if err != nil {
				return nil, err
			}
			if done {
				break
			}
		}
		if a.st.scalar {
			a.st.ensureScalarGroup()
		}
		a.built = true
	}
	if a.emit >= a.st.nGroups {
		return nil, nil
	}
	start := time.Now()
	a.out.Reset()
	lo := a.emit
	hi := lo + ctx.vecSize()
	if hi > a.st.nGroups {
		hi = a.st.nGroups
	}
	a.st.emitRange(a.out, lo, hi)
	a.emit = hi
	a.rows += int64(hi - lo)
	a.emitNanos += time.Since(start).Nanoseconds()
	return a.out, nil
}

// Close implements Operator.
func (a *FusedAgg) Close(ctx *Ctx) error {
	if a.closed {
		return nil
	}
	a.closed = true
	a.src.stop()
	first := a.pipe.close(ctx)
	for _, b := range a.builds {
		if err := b.close(ctx); err != nil && first == nil {
			first = err
		}
	}
	if a.opened {
		a.st.close(ctx)
	}
	if a.out != nil {
		ctx.pool().PutBatch(a.out)
		a.out = nil
	}
	return first
}

// Progress implements Operator: like HashAgg, 0 until built, then the
// emitted-group fraction.
func (a *FusedAgg) Progress() float64 {
	if !a.built {
		return 0
	}
	if a.st.nGroups == 0 {
		return 1
	}
	return float64(a.emit) / float64(a.st.nGroups)
}

// Cost implements Operator: the fused loop (absorb included via the sink)
// plus shared builds and group emission — the serial HashAgg's inclusive
// subtree cost.
func (a *FusedAgg) Cost() time.Duration {
	c := a.pipe.cost() + time.Duration(a.emitNanos)
	for _, b := range a.builds {
		c += b.cost()
	}
	return c
}
