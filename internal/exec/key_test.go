package exec

import (
	"math"
	"testing"
	"testing/quick"

	"recycledb/internal/catalog"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// Regression: with coerce=true the old encoding narrowed every int64
// through float64, so distinct keys above 2^53 collapsed onto the same
// byte string (2^53 and 2^53+1 both encoded as float64(2^53)).
func TestKeyEncodingLargeInt64NotCollapsed(t *testing.T) {
	const big = int64(1) << 53
	iv := vector.New(vector.Int64, 2)
	iv.AppendInt64(big)
	iv.AppendInt64(big + 1)
	k0 := string(appendKey(nil, iv, 0, true))
	k1 := string(appendKey(nil, iv, 1, true))
	if k0 == k1 {
		t.Fatalf("coerced keys for %d and %d collide", big, big+1)
	}
	// The float64 nearest to big+1 is big itself: it must keep matching
	// the int64 it exactly equals, and only that one.
	fv := vector.New(vector.Float64, 1)
	fv.AppendFloat64(float64(big))
	kf := string(appendKey(nil, fv, 0, true))
	if kf != k0 {
		t.Fatalf("float64(2^53) must encode like int64(2^53)")
	}
	if kf == k1 {
		t.Fatalf("float64(2^53) must not encode like int64(2^53+1)")
	}
}

// Property: the vectorized comparator (valueEqual) agrees with the
// byte-string reference encoding for every int64/float64 pair under
// coercion, and hash equality is implied by key equality.
func TestKeyHashComparatorLockstep(t *testing.T) {
	check := func(x int64, f float64) bool {
		iv := vector.New(vector.Int64, 1)
		iv.AppendInt64(x)
		fv := vector.New(vector.Float64, 1)
		fv.AppendFloat64(f)
		byteEq := string(appendKey(nil, iv, 0, true)) == string(appendKey(nil, fv, 0, true))
		cmpEq := valueEqual(iv, 0, fv, 0)
		if byteEq != cmpEq {
			return false
		}
		if cmpEq {
			// Equal keys must hash identically.
			var hi, hf [1]uint64
			bi := &vector.Batch{Vecs: []*vector.Vector{iv}}
			bf := &vector.Batch{Vecs: []*vector.Vector{fv}}
			hashColumns(bi, []int{0}, hi[:])
			hashColumns(bf, []int{0}, hf[:])
			if hi[0] != hf[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// Directed cases the generator is unlikely to hit.
	cases := []struct {
		x int64
		f float64
	}{
		{1 << 53, float64(1 << 53)},
		{1<<53 + 1, float64(1 << 53)},
		{math.MaxInt64, float64(math.MaxInt64)},
		{math.MinInt64, float64(math.MinInt64)},
		{0, 0.0},
		{0, math.Copysign(0, -1)},
		{7, 7.5},
		{-3, -3.0},
	}
	for _, c := range cases {
		if !check(c.x, c.f) {
			t.Fatalf("lockstep violated for int64(%d) vs float64(%g)", c.x, c.f)
		}
	}
}

// End-to-end regression: a coerced int64/float64 join above 2^53 must not
// produce phantom matches.
func TestJoinLargeInt64FloatCoercion(t *testing.T) {
	const big = int64(1) << 53
	bt := catalog.NewTable("build", catalog.Schema{{Name: "k", Typ: vector.Int64}})
	for _, v := range []int64{big, big + 1, big + 2} {
		if err := bt.AppendRows([]vector.Datum{vector.NewInt64Datum(v)}); err != nil {
			t.Fatal(err)
		}
	}
	pt := catalog.NewTable("probe", catalog.Schema{{Name: "f", Typ: vector.Float64}})
	// float64(big+1) rounds to big: exactly one build row (big) may match.
	if err := pt.AppendRows([]vector.Datum{vector.NewFloat64Datum(float64(big))}); err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(catalog.New())
	left := NewTableScan(pt, []int{0}, pt.Schema)
	right := NewTableScan(bt, []int{0}, bt.Schema)
	out := append(append(catalog.Schema{}, pt.Schema...), bt.Schema...)
	j := NewHashJoin(plan.Inner, left, right, []int{0}, []int{0}, out)
	res, err := Run(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows(); got != 1 {
		t.Fatalf("coerced join above 2^53 produced %d rows, want 1", got)
	}
	if d := res.Batches[0].Row(0)[1]; d.I64 != big {
		t.Fatalf("joined against int64(%d), want %d", d.I64, big)
	}
}
