package exec

import (
	"context"
	"time"

	"recycledb/internal/vector"
)

// StoreSpec tells a Store operator what to do with the tuple flow. The
// recycler supplies the callbacks; exec stays independent of recycler
// internals.
type StoreSpec struct {
	// Speculative indicates the store has not been pre-decided: it
	// buffers while OnBatch estimates benefit, and may cancel. A
	// non-speculative store was selected for materialization during
	// rewriting (history mode) and always commits.
	Speculative bool
	// OnBatch is consulted after each buffered batch in speculative mode
	// with the producer's progress, the subtree cost so far, and the
	// buffered bytes; returning false cancels buffering (the store
	// reverts to passthrough, §II).
	OnBatch func(progress float64, elapsed time.Duration, bufferedBytes int64) bool
	// OnComplete receives the fully buffered result at end-of-stream and
	// takes ownership of the batches (cache admission happens there).
	OnComplete func(batches []*vector.Batch, rows int64, bytes int64, elapsed time.Duration)
	// OnCancel is invoked when speculation cancels buffering.
	OnCancel func()
}

// Store tees its child's tuple flow: batches pass through unchanged while
// (deep copies) accumulate in a buffer destined for the recycler cache. It
// implements the paper's store operator with its three behaviours: pass
// along, buffer (speculation), or materialize (§II, §III-D).
type Store struct {
	base
	Child Operator
	Spec  StoreSpec

	buffering bool
	buf       []*vector.Batch
	bufBytes  int64
	bufRows   int64
	completed bool
	cancelled bool
}

// NewStore wraps child with a store operator.
func NewStore(child Operator, spec StoreSpec) *Store {
	return &Store{base: base{schema: child.Schema()}, Child: child, Spec: spec}
}

// Open implements Operator.
func (s *Store) Open(ctx *Ctx) error {
	defer s.addCost(time.Now())
	s.buffering = true
	s.buf = nil
	s.bufBytes = 0
	s.bufRows = 0
	s.completed = false
	s.cancelled = false
	return s.Child.Open(ctx)
}

// Next implements Operator.
func (s *Store) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	defer s.addCost(time.Now())
	b, err := s.Child.Next(ctx)
	if err != nil {
		return nil, err
	}
	if b == nil {
		if s.buffering && !s.completed {
			s.completed = true
			if s.Spec.OnComplete != nil {
				s.Spec.OnComplete(s.buf, s.bufRows, s.bufBytes, s.Child.Cost())
			}
			s.buf = nil
		}
		return nil, nil
	}
	if s.buffering {
		s.buf = append(s.buf, b.Clone())
		s.bufBytes += b.Bytes()
		s.bufRows += int64(b.Len())
		if s.Spec.Speculative && s.Spec.OnBatch != nil {
			if !s.Spec.OnBatch(s.Child.Progress(), s.Child.Cost(), s.bufBytes) {
				// Not beneficial: stop buffering, drop copies, pass
				// tuples along untouched from now on.
				s.buffering = false
				s.buf = nil
				s.cancelled = true
				if s.Spec.OnCancel != nil {
					s.Spec.OnCancel()
				}
			}
		}
	}
	s.rows += int64(b.Len())
	return b, nil
}

// Close implements Operator. If the store never completed (the query above
// stopped early, failed, or never opened this pipeline), the buffered prefix
// is discarded and the cancellation callback fires so the recycler can
// release the in-flight registration.
func (s *Store) Close(ctx *Ctx) error {
	if !s.completed && !s.cancelled {
		s.buf = nil
		s.cancelled = true
		if s.Spec.OnCancel != nil {
			s.Spec.OnCancel()
		}
	}
	return s.Child.Close(ctx)
}

// Progress implements Operator.
func (s *Store) Progress() float64 { return s.Child.Progress() }

// WaitSpec configures a WaitReuse operator: another in-flight query is
// currently materializing this node's result; stall until it finishes and
// reuse it, or fall back to recomputation after Timeout (bounded stalling
// prevents cross-query deadlock; see DESIGN.md).
type WaitSpec struct {
	// Wait blocks until the in-flight materialization completes, the
	// timeout elapses, or ctx is canceled. It returns replay batches and a
	// column mapping on success, or ok=false to trigger the fallback.
	Wait func(ctx context.Context, timeout time.Duration) (batches []*vector.Batch, outIdx []int, release func(), ok bool)
	// Timeout bounds the stall.
	Timeout time.Duration
	// OnOutcome, if set, observes whether the wait ended in reuse.
	OnOutcome func(reused bool, stalled time.Duration)
}

// WaitReuse stalls on an in-flight materialization of the same subtree
// (the paper: "the recycler stalls all but one", §V) and then replays the
// cached result, or executes its fallback child if the wait fails.
//
// The stall is deferred to the first Next call rather than Open: Open
// cascades through the whole operator tree before execution starts, and
// blocking there would prevent this query's own store operators from ever
// producing, turning crossed in-flight registrations between two queries
// into guaranteed timeout deadlocks.
type WaitReuse struct {
	base
	Fallback Operator
	Spec     WaitSpec

	inner Operator
}

// NewWaitReuse builds a wait-then-reuse operator with the given fallback.
func NewWaitReuse(fallback Operator, spec WaitSpec) *WaitReuse {
	return &WaitReuse{base: base{schema: fallback.Schema()}, Fallback: fallback, Spec: spec}
}

// Open implements Operator: a no-op; the wait and the inner Open happen
// lazily at the first Next.
func (w *WaitReuse) Open(ctx *Ctx) error {
	w.inner = nil
	return nil
}

// resolve performs the stall and opens the chosen input. Stall time is
// excluded from Cost(): it is waiting, not computing, and would otherwise
// pollute the base-cost statistics in the recycler graph.
func (w *WaitReuse) resolve(ctx *Ctx) error {
	start := time.Now()
	batches, outIdx, release, ok := w.Spec.Wait(ctx.goCtx(), w.Spec.Timeout)
	stalled := time.Since(start)
	if ok {
		w.inner = NewCacheScan(w.schema, batches, outIdx, release)
	} else {
		w.inner = w.Fallback
	}
	if w.Spec.OnOutcome != nil {
		w.Spec.OnOutcome(ok, stalled)
	}
	defer w.addCost(time.Now())
	return w.inner.Open(ctx)
}

// Next implements Operator.
func (w *WaitReuse) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	if w.inner == nil {
		if err := w.resolve(ctx); err != nil {
			return nil, err
		}
	}
	defer w.addCost(time.Now())
	b, err := w.inner.Next(ctx)
	if b != nil {
		w.rows += int64(b.Len())
	}
	return b, err
}

// Close implements Operator. The fallback subtree is closed even when the
// wait succeeded and it never opened: store operators inside it must get
// their cancellation callbacks so in-flight registrations are released.
func (w *WaitReuse) Close(ctx *Ctx) error {
	var err error
	if w.inner != nil {
		err = w.inner.Close(ctx)
	}
	if w.inner != w.Fallback {
		if e2 := w.Fallback.Close(ctx); err == nil {
			err = e2
		}
	}
	return err
}

// Progress implements Operator.
func (w *WaitReuse) Progress() float64 {
	if w.inner == nil {
		return 0
	}
	return w.inner.Progress()
}
