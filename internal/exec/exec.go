// Package exec implements the vector-at-a-time pipelined execution engine:
// pull-based operators exchanging column-vector batches, per-operator cost
// and cardinality measurement, progress meters (after Luo et al., as used by
// the paper's speculation mechanism, §III-D), and the store operator that
// tees the tuple flow into the recycler cache (§II).
package exec

import (
	"context"
	"time"

	"recycledb/internal/catalog"
	"recycledb/internal/vector"
)

// DefaultVectorSize is the number of rows per batch, following the
// X100/Vectorwise convention.
const DefaultVectorSize = 1024

// Ctx carries per-query execution state.
type Ctx struct {
	Cat        *catalog.Catalog
	VectorSize int
	// Context carries the query's cancellation signal and deadline. Every
	// operator checks it at batch boundaries, so a canceled query stops
	// within one vector of work. Nil means no cancellation (background).
	Context context.Context
	// Pool recycles operator scratch batches across queries. Operators
	// draw batches in Open (or lazily in Next) and return them in Close.
	// Nil falls back to a process-wide shared pool.
	Pool *vector.Pool
	// Snaps holds the per-statement table snapshots. The engine
	// pre-captures one snapshot per base table in the plan's lineage
	// before execution, so every scan of a table — however many times it
	// appears in the plan — reads the same committed epoch. Scans of
	// tables not pre-captured snapshot lazily here.
	Snaps map[string]*catalog.Snapshot
	// ScanFrom gives per-table scan start offsets for delta runs: the
	// recycler's append extension executes a cached subplan over only the
	// newly appended rows [ScanFrom[t], watermark).
	ScanFrom map[string]int
	// Parallelism is the worker budget for morsel-driven parallel
	// pipelines (see parallel.go). Values <= 1 execute the plan on the
	// calling goroutine exactly as before; the engine divides its
	// configured budget across concurrently executing statements.
	Parallelism int
	// MorselRows overrides the scan rows per morsel (0 uses
	// 16 x the vector size). Exposed for tests; morsel granularity does
	// not affect results, only scheduling.
	MorselRows int
	// DisableFusion forces pipeline-fragment interiors back onto chained
	// operator Next calls instead of the fused push loop (see fused.go).
	// An escape hatch for bisecting regressions and for benchmarking the
	// two paths against each other; results are identical either way.
	DisableFusion bool
	// DisableKernels turns off the type-specialized compute kernels
	// (compiled predicate kernels, typed aggregate emission, and the
	// single-column int64 hash fast path; see kernel.go) and falls back to
	// the generic evaluation paths everywhere. Another bisection hatch;
	// survivors, emitted rows, and hashes-observable behavior are
	// identical either way.
	DisableKernels bool
}

// morselRows returns the scan range claimed per worker dispatch.
func (c *Ctx) morselRows() int {
	if c.MorselRows > 0 {
		return c.MorselRows
	}
	return 16 * c.vecSize()
}

// SnapFor returns the statement's snapshot of t, capturing (and memoizing)
// a fresh one if the engine did not pre-capture it.
func (c *Ctx) SnapFor(t *catalog.Table) *catalog.Snapshot {
	if s, ok := c.Snaps[t.Name]; ok {
		return s
	}
	s := t.Snapshot()
	if c.Snaps == nil {
		c.Snaps = make(map[string]*catalog.Snapshot)
	}
	c.Snaps[t.Name] = s
	return s
}

// sharedPool serves executions whose Ctx carries no engine pool (tests,
// direct operator use).
var sharedPool vector.Pool

// pool returns the batch pool for this execution, never nil.
func (c *Ctx) pool() *vector.Pool {
	if c.Pool != nil {
		return c.Pool
	}
	return &sharedPool
}

// NewCtx returns an execution context with the default vector size.
func NewCtx(cat *catalog.Catalog) *Ctx {
	return &Ctx{Cat: cat, VectorSize: DefaultVectorSize}
}

func (c *Ctx) vecSize() int {
	if c.VectorSize <= 0 {
		return DefaultVectorSize
	}
	return c.VectorSize
}

// Interrupted returns the context's error once the query is canceled or
// past its deadline, nil otherwise. Operators call it on entry to Next, so
// pipelines — including the drain loops inside blocking operators, which
// pull batches through child Next calls — abort at batch granularity.
func (c *Ctx) Interrupted() error {
	if c.Context == nil {
		return nil
	}
	return c.Context.Err()
}

// goCtx returns the query's context, never nil.
func (c *Ctx) goCtx() context.Context {
	if c.Context == nil {
		return context.Background() //recycledb:ctx-ok — documented nil-ctx fallback
	}
	return c.Context
}

// Operator is a pipelined physical operator. The contract is:
// Open, then Next until it returns (nil, nil) for end-of-stream, then Close.
// A returned batch is only valid until the following Next call; operators
// that retain batches (Store, blocking operators) must clone them.
type Operator interface {
	// Schema returns the output schema.
	Schema() catalog.Schema
	// Open prepares the operator.
	Open(ctx *Ctx) error
	// Next returns the next batch, or (nil, nil) at end of stream.
	Next(ctx *Ctx) (*vector.Batch, error)
	// Close releases resources. Close is idempotent.
	Close(ctx *Ctx) error
	// Progress estimates the fraction of output produced in [0, 1].
	// Pipelined operators report the progress of their closest scan or
	// blocking left-deep descendant (§III-D).
	Progress() float64
	// Cost returns the cumulative wall time spent inside this operator's
	// Open/Next calls, children included (the subtree's base cost).
	Cost() time.Duration
	// RowsOut returns the number of rows emitted so far.
	RowsOut() int64
}

// base provides the bookkeeping shared by operators.
type base struct {
	schema catalog.Schema
	cost   time.Duration
	rows   int64
}

func (b *base) Schema() catalog.Schema { return b.schema }
func (b *base) Cost() time.Duration    { return b.cost }
func (b *base) RowsOut() int64         { return b.rows }

// addCost accumulates one Open/Next invocation's wall time; use as:
//
//	defer b.addCost(time.Now())
//
// The argument is evaluated when the defer statement runs, so start is the
// entry timestamp. Unlike deferring a returned closure, this open-codes and
// performs no heap allocation — a requirement for the zero-allocs-per-Next
// contract of the pooled operator paths.
func (b *base) addCost(start time.Time) { b.cost += time.Since(start) }

// Run opens op, drains it into a materialized result, and closes it.
func Run(ctx *Ctx, op Operator) (*catalog.Result, error) {
	if err := op.Open(ctx); err != nil {
		// A failed Open may have acquired scratch (its own, or an already
		// opened child's) before erroring; Close is nil-guarded everywhere,
		// so closing the partially opened tree returns it to the pool.
		op.Close(ctx)
		return nil, err
	}
	res := &catalog.Result{Schema: op.Schema()}
	for {
		b, err := op.Next(ctx)
		if err != nil {
			op.Close(ctx)
			return nil, err
		}
		if b == nil {
			break
		}
		if b.Len() > 0 {
			res.Batches = append(res.Batches, b.Clone())
		}
	}
	if err := op.Close(ctx); err != nil {
		return nil, err
	}
	return res, nil
}

// Drain opens op and discards its output (used when only side effects --
// store materializations -- matter, or for timing runs).
func Drain(ctx *Ctx, op Operator) (rows int64, err error) {
	if err := op.Open(ctx); err != nil {
		op.Close(ctx) // release scratch a partially opened tree acquired
		return 0, err
	}
	for {
		b, err := op.Next(ctx)
		if err != nil {
			op.Close(ctx)
			return rows, err
		}
		if b == nil {
			break
		}
		rows += int64(b.Len())
	}
	return rows, op.Close(ctx)
}
