package exec

// Per-operator microbenchmarks for the execution hot paths: selective
// filtering, hash-join build+probe, grouped hash aggregation, and full sort.
// Each iteration runs one operator pipeline over a pre-generated table, so
// ns/op tracks per-tuple interpretation overhead and -benchmem tracks the
// steady-state allocation behaviour the pooled paths are required to keep at
// zero. Compare runs with benchstat (see README "Performance").

import (
	"fmt"
	"math/rand"
	"testing"

	"recycledb/internal/catalog"
	"recycledb/internal/expr"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// benchRows is the per-iteration input size for the pipelined operators.
const benchRows = 1 << 18 // 256Ki

var benchTables = map[int]*catalog.Table{}

// benchTable returns a cached table with columns
// id int64 (0..rows), k int64 (64 distinct), v float64, s string (8 distinct).
func benchTable(rows int) *catalog.Table {
	if t, ok := benchTables[rows]; ok {
		return t
	}
	t := catalog.NewTable("bench", catalog.Schema{
		{Name: "id", Typ: vector.Int64},
		{Name: "k", Typ: vector.Int64},
		{Name: "v", Typ: vector.Float64},
		{Name: "s", Typ: vector.String},
	})
	rng := rand.New(rand.NewSource(42))
	w := t.BeginWrite()
	app := w.Appender()
	for i := 0; i < rows; i++ {
		app.Int64(0, int64(i))
		app.Int64(1, rng.Int63n(64))
		app.Float64(2, rng.Float64()*1000)
		app.String(3, fmt.Sprintf("tag-%d", rng.Int63n(8)))
		app.FinishRow()
	}
	w.Commit()
	benchTables[rows] = t
	return t
}

// benchScan builds a fresh scan of all columns of t.
func benchScan(t *catalog.Table) (*TableScan, catalog.Schema) {
	schema := t.Schema
	cols := make([]int, len(schema))
	for i := range cols {
		cols[i] = i
	}
	return NewTableScan(t, cols, schema), schema
}

// drain pulls op to completion and returns the row count.
func drain(b *testing.B, ctx *Ctx, op Operator) int64 {
	if err := op.Open(ctx); err != nil {
		b.Fatal(err)
	}
	var rows int64
	for {
		batch, err := op.Next(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if batch == nil {
			break
		}
		rows += int64(batch.Len())
	}
	if err := op.Close(ctx); err != nil {
		b.Fatal(err)
	}
	return rows
}

// BenchmarkFilter measures scan -> filter at two selectivities. The
// selective case is where selection vectors pay: almost every input row is
// dropped, so per-survivor copying must not dominate.
func BenchmarkFilter(b *testing.B) {
	t := benchTable(benchRows)
	for _, tc := range []struct {
		name string
		pct  int64
	}{
		{"2pct", 2},
		{"50pct", 50},
	} {
		b.Run(tc.name, func(b *testing.B) {
			ctx := NewCtx(catalog.New())
			cutoff := int64(benchRows) * tc.pct / 100
			b.SetBytes(int64(benchRows) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scan, _ := benchScan(t)
				pred := expr.Lt(expr.C("id"), expr.Int(cutoff))
				f := NewFilter(scan, pred)
				if _, err := pred.Bind(f.Schema()); err != nil {
					b.Fatal(err)
				}
				rows := drain(b, ctx, f)
				if rows != cutoff {
					b.Fatalf("got %d rows, want %d", rows, cutoff)
				}
			}
			b.ReportMetric(float64(benchRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
		})
	}
}

// BenchmarkJoin measures an inner hash join: 16Ki-row build side, 256Ki-row
// probe side, int64 key, ~1 match per probe row.
func BenchmarkJoin(b *testing.B) {
	probe := benchTable(benchRows)
	build := benchTable(1 << 14)
	ctx := NewCtx(catalog.New())
	b.SetBytes(int64(benchRows) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		left, lschema := benchScan(probe)
		right, rschema := benchScan(build)
		out := append(append(catalog.Schema{}, lschema...), rschema...)
		// Probe ids 0..256Ki against build ids 0..16Ki: every probe row is
		// hashed and probed, the first 16Ki match exactly once.
		j := NewHashJoin(plan.Inner, left, right, []int{0}, []int{0}, out)
		rows := drain(b, ctx, j)
		if rows != 1<<14 {
			b.Fatalf("got %d rows, want %d", rows, 1<<14)
		}
	}
	b.ReportMetric(float64(benchRows)*float64(b.N)/b.Elapsed().Seconds(), "probe-rows/sec")
}

// BenchmarkHashAgg measures grouped aggregation: 64 groups, sum+count over
// 256Ki rows.
func BenchmarkHashAgg(b *testing.B) {
	t := benchTable(benchRows)
	ctx := NewCtx(catalog.New())
	b.SetBytes(int64(benchRows) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scan, _ := benchScan(t)
		agg := expr.C("v")
		outSchema := catalog.Schema{
			{Name: "k", Typ: vector.Int64},
			{Name: "sum_v", Typ: vector.Float64},
			{Name: "n", Typ: vector.Int64},
		}
		h := NewHashAgg(scan, []int{1}, []AggExpr{
			{Func: plan.Sum, Arg: agg, Typ: vector.Float64},
			{Func: plan.Count, Typ: vector.Int64},
		}, outSchema)
		if _, err := agg.Bind(t.Schema); err != nil {
			b.Fatal(err)
		}
		rows := drain(b, ctx, h)
		if rows != 64 {
			b.Fatalf("got %d groups, want 64", rows)
		}
	}
	b.ReportMetric(float64(benchRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
}

// BenchmarkHashAggManyGroups stresses the table itself: ~64Ki groups.
func BenchmarkHashAggManyGroups(b *testing.B) {
	t := benchTable(benchRows)
	ctx := NewCtx(catalog.New())
	b.SetBytes(int64(benchRows) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scan, _ := benchScan(t)
		outSchema := catalog.Schema{
			{Name: "id", Typ: vector.Int64},
			{Name: "n", Typ: vector.Int64},
		}
		h := NewHashAgg(scan, []int{0}, []AggExpr{
			{Func: plan.Count, Typ: vector.Int64},
		}, outSchema)
		rows := drain(b, ctx, h)
		if rows != benchRows {
			b.Fatalf("got %d groups, want %d", rows, benchRows)
		}
	}
	b.ReportMetric(float64(benchRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
}

// BenchmarkSort measures a full blocking sort of 256Ki rows by float64 key.
func BenchmarkSort(b *testing.B) {
	t := benchTable(benchRows)
	ctx := NewCtx(catalog.New())
	b.SetBytes(int64(benchRows) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scan, _ := benchScan(t)
		s := NewSort(scan, []plan.SortKey{{Col: "v"}})
		rows := drain(b, ctx, s)
		if rows != benchRows {
			b.Fatalf("got %d rows, want %d", rows, benchRows)
		}
	}
	b.ReportMetric(float64(benchRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
}
