package exec

import (
	"time"

	"recycledb/internal/catalog"
	"recycledb/internal/expr"
	"recycledb/internal/vector"
)

// Filter emits the input rows satisfying a boolean predicate. Instead of
// compacting survivors row by row it attaches an X100-style selection
// vector to the child's batch: the output aliases the input's column
// vectors and carries the surviving physical row indexes, so filtering is
// near-zero-copy regardless of selectivity. Consumers either iterate the
// selection or compact it away with the columnar gather kernels.
type Filter struct {
	base
	Child Operator
	Pred  expr.Expr

	flags  *vector.Vector // pooled bool scratch: predicate output
	selBuf []int32        // selection build buffer
	view   vector.Batch   // output: aliases input vectors + selection

	// steps is the compiled all-kernel conjunct chain, or nil when any
	// conjunct failed to compile (then Next evaluates Pred generically as
	// one expression, exactly as before). The pull Filter takes the kernel
	// path only when every conjunct compiled: a mixed chain would need
	// intermediate selection views for the generic conjuncts, which is the
	// fused executor's job — this operator keeps one code path per batch.
	steps []filterStep
}

// NewFilter builds a filter over child.
func NewFilter(child Operator, pred expr.Expr) *Filter {
	return &Filter{base: base{schema: child.Schema()}, Child: child, Pred: pred}
}

// Open implements Operator.
func (f *Filter) Open(ctx *Ctx) error {
	defer f.addCost(time.Now())
	f.flags = ctx.pool().Get(vector.Bool, ctx.vecSize())
	if f.selBuf == nil {
		f.selBuf = make([]int32, 0, ctx.vecSize())
	}
	f.steps = nil
	if !ctx.DisableKernels {
		if steps, nk := compileSteps(expr.Conjuncts(f.Pred), false, true); nk > 0 && allKernelSteps(steps) {
			f.steps = steps
		}
	}
	return f.Child.Open(ctx)
}

// Next implements Operator.
func (f *Filter) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	defer f.addCost(time.Now())
	for {
		in, err := f.Child.Next(ctx)
		if err != nil || in == nil {
			return nil, err
		}
		if f.steps != nil {
			n := in.Len()
			var sel []int32
			if in.Sel != nil {
				// Copy the child's selection before refining: the kernels
				// compact in place, and the input batch is not ours to
				// mutate on the pull path.
				sel = kernelSelBuf(f.selBuf, n)
				copy(sel, in.Sel[:n])
				for si := range f.steps {
					if len(sel) == 0 {
						break
					}
					k := f.steps[si].kern
					sel = k.refine(k, in.Vecs[k.col], sel)
				}
			} else if n > 0 {
				k0 := f.steps[0].kern
				sel = k0.dense(k0, in.Vecs[k0.col], n, f.selBuf)
				for si := 1; si < len(f.steps); si++ {
					if len(sel) == 0 {
						break
					}
					k := f.steps[si].kern
					sel = k.refine(k, in.Vecs[k.col], sel)
				}
			}
			if sel != nil {
				f.selBuf = sel[:0] // retain (possibly regrown) backing storage
			}
			if len(sel) == 0 {
				continue
			}
			f.rows += int64(len(sel))
			if len(sel) == n && in.Sel == nil {
				return in, nil
			}
			f.view.Vecs = in.Vecs
			f.view.Sel = sel
			return &f.view, nil
		}
		f.flags.Reset()
		if err := f.Pred.Eval(in, f.flags); err != nil {
			return nil, err
		}
		n := in.Len()
		sel := f.selBuf[:0]
		if in.Sel != nil {
			// Refine the incoming selection: flags[i] judges logical row i.
			for i, ok := range f.flags.B[:n] {
				if ok {
					sel = append(sel, in.Sel[i])
				}
			}
		} else {
			for i, ok := range f.flags.B[:n] {
				if ok {
					sel = append(sel, int32(i))
				}
			}
		}
		f.selBuf = sel
		if len(sel) == 0 {
			continue // all rows filtered out; pull the next input batch
		}
		f.rows += int64(len(sel))
		if len(sel) == n && in.Sel == nil {
			return in, nil // everything passed: input flows through untouched
		}
		f.view.Vecs = in.Vecs
		f.view.Sel = sel
		return &f.view, nil
	}
}

// Close implements Operator.
func (f *Filter) Close(ctx *Ctx) error {
	if f.flags != nil {
		ctx.pool().Put(f.flags)
		f.flags = nil
	}
	f.view.Vecs = nil
	f.view.Sel = nil
	return f.Child.Close(ctx)
}

// Progress implements Operator.
func (f *Filter) Progress() float64 { return f.Child.Progress() }

// Project computes one output column per expression. Expression evaluation
// is selection-aware (column references gather through the input's
// selection vector), so a filtered batch is compacted at most once, column
// by column, on its way through the projection.
type Project struct {
	base
	Child Operator
	Exprs []expr.Expr
	out   *vector.Batch // pooled
}

// NewProject builds a projection over child. schema gives the output
// column names and types (already resolved by the planner).
func NewProject(child Operator, exprs []expr.Expr, schema catalog.Schema) *Project {
	return &Project{base: base{schema: schema}, Child: child, Exprs: exprs}
}

// Open implements Operator.
func (p *Project) Open(ctx *Ctx) error {
	defer p.addCost(time.Now())
	if p.out == nil {
		p.out = ctx.pool().GetBatch(p.schema.Types(), ctx.vecSize())
	}
	return p.Child.Open(ctx)
}

// Next implements Operator.
func (p *Project) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	defer p.addCost(time.Now())
	in, err := p.Child.Next(ctx)
	if err != nil || in == nil {
		return nil, err
	}
	p.out.Reset()
	for i, e := range p.Exprs {
		if err := e.Eval(in, p.out.Vecs[i]); err != nil {
			return nil, err
		}
	}
	p.rows += int64(p.out.Len())
	return p.out, nil
}

// Close implements Operator.
func (p *Project) Close(ctx *Ctx) error {
	if p.out != nil {
		ctx.pool().PutBatch(p.out)
		p.out = nil
	}
	return p.Child.Close(ctx)
}

// Progress implements Operator.
func (p *Project) Progress() float64 { return p.Child.Progress() }

// LimitOp passes through the first N rows and then stops pulling.
type LimitOp struct {
	base
	Child Operator
	N     int
	seen  int
	done  bool
	out   *vector.Batch // pooled; used only for the final partial batch
}

// NewLimit builds a limit over child.
func NewLimit(child Operator, n int) *LimitOp {
	return &LimitOp{base: base{schema: child.Schema()}, Child: child, N: n}
}

// Open implements Operator.
func (l *LimitOp) Open(ctx *Ctx) error {
	defer l.addCost(time.Now())
	l.seen = 0
	l.done = false
	if l.out == nil {
		l.out = ctx.pool().GetBatch(l.Schema().Types(), ctx.vecSize())
	}
	return l.Child.Open(ctx)
}

// Next implements Operator.
func (l *LimitOp) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	defer l.addCost(time.Now())
	if l.done || l.seen >= l.N {
		return nil, nil
	}
	in, err := l.Child.Next(ctx)
	if err != nil || in == nil {
		l.done = true
		return nil, err
	}
	if l.seen+in.Len() <= l.N {
		l.seen += in.Len()
		l.rows += int64(in.Len())
		return in, nil
	}
	l.out.Reset()
	l.out.AppendBatchRange(in, 0, l.N-l.seen)
	l.seen = l.N
	l.rows += int64(l.out.Len())
	return l.out, nil
}

// Close implements Operator.
func (l *LimitOp) Close(ctx *Ctx) error {
	if l.out != nil {
		ctx.pool().PutBatch(l.out)
		l.out = nil
	}
	return l.Child.Close(ctx)
}

// Progress implements Operator.
func (l *LimitOp) Progress() float64 {
	if l.N == 0 {
		return 1
	}
	p := float64(l.seen) / float64(l.N)
	if cp := l.Child.Progress(); cp > p {
		return cp
	}
	return p
}

// UnionOp concatenates two same-schema inputs (bag union).
type UnionOp struct {
	base
	Left, Right Operator
	onRight     bool
}

// NewUnion builds a bag union.
func NewUnion(left, right Operator) *UnionOp {
	return &UnionOp{base: base{schema: left.Schema()}, Left: left, Right: right}
}

// Open implements Operator.
func (u *UnionOp) Open(ctx *Ctx) error {
	defer u.addCost(time.Now())
	u.onRight = false
	if err := u.Left.Open(ctx); err != nil {
		return err
	}
	return u.Right.Open(ctx)
}

// Next implements Operator.
func (u *UnionOp) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	defer u.addCost(time.Now())
	if !u.onRight {
		b, err := u.Left.Next(ctx)
		if err != nil {
			return nil, err
		}
		if b != nil {
			u.rows += int64(b.Len())
			return b, nil
		}
		u.onRight = true
	}
	b, err := u.Right.Next(ctx)
	if err != nil || b == nil {
		return nil, err
	}
	u.rows += int64(b.Len())
	return b, nil
}

// Close implements Operator.
func (u *UnionOp) Close(ctx *Ctx) error {
	err1 := u.Left.Close(ctx)
	err2 := u.Right.Close(ctx)
	if err1 != nil {
		return err1
	}
	return err2
}

// Progress implements Operator.
func (u *UnionOp) Progress() float64 {
	return (u.Left.Progress() + u.Right.Progress()) / 2
}
