package exec

import (
	"recycledb/internal/catalog"
	"recycledb/internal/expr"
	"recycledb/internal/vector"
)

// Filter emits the input rows satisfying a boolean predicate, compacting
// survivors into dense output batches.
type Filter struct {
	base
	Child Operator
	Pred  expr.Expr
	sel   *vector.Vector
	out   *vector.Batch
}

// NewFilter builds a filter over child.
func NewFilter(child Operator, pred expr.Expr) *Filter {
	return &Filter{base: base{schema: child.Schema()}, Child: child, Pred: pred}
}

// Open implements Operator.
func (f *Filter) Open(ctx *Ctx) error {
	defer f.timed()()
	f.sel = vector.New(vector.Bool, ctx.vecSize())
	f.out = vector.NewBatch(f.schema.Types(), ctx.vecSize())
	return f.Child.Open(ctx)
}

// Next implements Operator.
func (f *Filter) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	defer f.timed()()
	for {
		in, err := f.Child.Next(ctx)
		if err != nil || in == nil {
			return nil, err
		}
		f.sel.Reset()
		if err := f.Pred.Eval(in, f.sel); err != nil {
			return nil, err
		}
		f.out.Reset()
		n := in.Len()
		for i := 0; i < n; i++ {
			if f.sel.B[i] {
				f.out.AppendRow(in, i)
			}
		}
		if f.out.Len() > 0 {
			f.rows += int64(f.out.Len())
			return f.out, nil
		}
		// All rows filtered out; pull the next input batch.
	}
}

// Close implements Operator.
func (f *Filter) Close(ctx *Ctx) error { return f.Child.Close(ctx) }

// Progress implements Operator.
func (f *Filter) Progress() float64 { return f.Child.Progress() }

// Project computes one output column per expression.
type Project struct {
	base
	Child Operator
	Exprs []expr.Expr
	out   *vector.Batch
}

// NewProject builds a projection over child. schema gives the output
// column names and types (already resolved by the planner).
func NewProject(child Operator, exprs []expr.Expr, schema catalog.Schema) *Project {
	return &Project{base: base{schema: schema}, Child: child, Exprs: exprs}
}

// Open implements Operator.
func (p *Project) Open(ctx *Ctx) error {
	defer p.timed()()
	p.out = vector.NewBatch(p.schema.Types(), ctx.vecSize())
	return p.Child.Open(ctx)
}

// Next implements Operator.
func (p *Project) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	defer p.timed()()
	in, err := p.Child.Next(ctx)
	if err != nil || in == nil {
		return nil, err
	}
	p.out.Reset()
	for i, e := range p.Exprs {
		if err := e.Eval(in, p.out.Vecs[i]); err != nil {
			return nil, err
		}
	}
	p.rows += int64(p.out.Len())
	return p.out, nil
}

// Close implements Operator.
func (p *Project) Close(ctx *Ctx) error { return p.Child.Close(ctx) }

// Progress implements Operator.
func (p *Project) Progress() float64 { return p.Child.Progress() }

// LimitOp passes through the first N rows and then stops pulling.
type LimitOp struct {
	base
	Child Operator
	N     int
	seen  int
	done  bool
	out   *vector.Batch
}

// NewLimit builds a limit over child.
func NewLimit(child Operator, n int) *LimitOp {
	return &LimitOp{base: base{schema: child.Schema()}, Child: child, N: n}
}

// Open implements Operator.
func (l *LimitOp) Open(ctx *Ctx) error {
	defer l.timed()()
	l.seen = 0
	l.done = false
	l.out = vector.NewBatch(l.Schema().Types(), ctx.vecSize())
	return l.Child.Open(ctx)
}

// Next implements Operator.
func (l *LimitOp) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	defer l.timed()()
	if l.done || l.seen >= l.N {
		return nil, nil
	}
	in, err := l.Child.Next(ctx)
	if err != nil || in == nil {
		l.done = true
		return nil, err
	}
	if l.seen+in.Len() <= l.N {
		l.seen += in.Len()
		l.rows += int64(in.Len())
		return in, nil
	}
	l.out.Reset()
	for i := 0; l.seen < l.N; i++ {
		l.out.AppendRow(in, i)
		l.seen++
	}
	l.rows += int64(l.out.Len())
	return l.out, nil
}

// Close implements Operator.
func (l *LimitOp) Close(ctx *Ctx) error { return l.Child.Close(ctx) }

// Progress implements Operator.
func (l *LimitOp) Progress() float64 {
	if l.N == 0 {
		return 1
	}
	p := float64(l.seen) / float64(l.N)
	if cp := l.Child.Progress(); cp > p {
		return cp
	}
	return p
}

// UnionOp concatenates two same-schema inputs (bag union).
type UnionOp struct {
	base
	Left, Right Operator
	onRight     bool
}

// NewUnion builds a bag union.
func NewUnion(left, right Operator) *UnionOp {
	return &UnionOp{base: base{schema: left.Schema()}, Left: left, Right: right}
}

// Open implements Operator.
func (u *UnionOp) Open(ctx *Ctx) error {
	defer u.timed()()
	u.onRight = false
	if err := u.Left.Open(ctx); err != nil {
		return err
	}
	return u.Right.Open(ctx)
}

// Next implements Operator.
func (u *UnionOp) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	defer u.timed()()
	if !u.onRight {
		b, err := u.Left.Next(ctx)
		if err != nil {
			return nil, err
		}
		if b != nil {
			u.rows += int64(b.Len())
			return b, nil
		}
		u.onRight = true
	}
	b, err := u.Right.Next(ctx)
	if err != nil || b == nil {
		return nil, err
	}
	u.rows += int64(b.Len())
	return b, nil
}

// Close implements Operator.
func (u *UnionOp) Close(ctx *Ctx) error {
	err1 := u.Left.Close(ctx)
	err2 := u.Right.Close(ctx)
	if err1 != nil {
		return err1
	}
	return err2
}

// Progress implements Operator.
func (u *UnionOp) Progress() float64 {
	return (u.Left.Progress() + u.Right.Progress()) / 2
}
