package exec

import (
	"context"
	"testing"
	"time"

	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

func TestStoreMaterializesAndPassesThrough(t *testing.T) {
	cat := testCatalog()
	n := plan.NewScan("emp", "id", "salary")
	if err := n.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(cat)
	child, _ := Build(ctx, n, nil, nil)

	var got []*vector.Batch
	var gotRows, gotBytes int64
	st := NewStore(child, StoreSpec{
		OnComplete: func(bs []*vector.Batch, rows, bytes int64, elapsed time.Duration) {
			got = bs
			gotRows = rows
			gotBytes = bytes
		},
	})
	res, err := Run(ctx, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 1000 {
		t.Fatalf("passthrough rows = %d", res.Rows())
	}
	if gotRows != 1000 || len(got) == 0 {
		t.Fatalf("materialized rows = %d batches = %d", gotRows, len(got))
	}
	if gotBytes <= 0 {
		t.Fatal("materialized bytes not accounted")
	}
	total := 0
	for _, b := range got {
		total += b.Len()
	}
	if total != 1000 {
		t.Fatalf("buffered total = %d", total)
	}
}

func TestStoreBuffersAreDeepCopies(t *testing.T) {
	cat := testCatalog()
	n := plan.NewScan("emp", "id")
	if err := n.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(cat)
	child, _ := Build(ctx, n, nil, nil)
	var got []*vector.Batch
	st := NewStore(child, StoreSpec{
		OnComplete: func(bs []*vector.Batch, rows, bytes int64, elapsed time.Duration) { got = bs },
	})
	if _, err := Run(ctx, st); err != nil {
		t.Fatal(err)
	}
	// Mutate the table storage; buffered copies must be unaffected.
	emp, _ := cat.Table("emp")
	stor := emp.Snapshot().Col(0) // aliases table storage
	saved := stor.I64[0]
	stor.I64[0] = -999
	if got[0].Vecs[0].I64[0] != saved {
		t.Fatal("store buffered an alias of table storage")
	}
	stor.I64[0] = saved
}

func TestStoreSpeculativeCancel(t *testing.T) {
	cat := testCatalog()
	n := plan.NewScan("emp", "id")
	if err := n.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	ctx := &Ctx{Cat: cat, VectorSize: 100}
	child, _ := Build(ctx, n, nil, nil)
	calls := 0
	cancelled := false
	completed := false
	st := NewStore(child, StoreSpec{
		Speculative: true,
		OnBatch: func(progress float64, elapsed time.Duration, buffered int64) bool {
			calls++
			return calls < 3 // cancel on third batch
		},
		OnComplete: func([]*vector.Batch, int64, int64, time.Duration) { completed = true },
		OnCancel:   func() { cancelled = true },
	})
	res, err := Run(ctx, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 1000 {
		t.Fatalf("passthrough rows = %d after cancel", res.Rows())
	}
	if !cancelled || completed {
		t.Fatalf("cancelled=%v completed=%v", cancelled, completed)
	}
	if calls != 3 {
		t.Fatalf("OnBatch calls = %d", calls)
	}
}

func TestStoreSpeculativeCommit(t *testing.T) {
	cat := testCatalog()
	n := plan.NewScan("dept", "name")
	if err := n.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(cat)
	child, _ := Build(ctx, n, nil, nil)
	completed := false
	st := NewStore(child, StoreSpec{
		Speculative: true,
		OnBatch:     func(float64, time.Duration, int64) bool { return true },
		OnComplete: func(bs []*vector.Batch, rows, bytes int64, elapsed time.Duration) {
			completed = true
			if rows != 4 {
				t.Errorf("rows = %d", rows)
			}
		},
	})
	if _, err := Run(ctx, st); err != nil {
		t.Fatal(err)
	}
	if !completed {
		t.Fatal("speculative store did not commit at EOF")
	}
}

func TestStoreEarlyCloseCancels(t *testing.T) {
	cat := testCatalog()
	n := plan.NewScan("emp", "id")
	if err := n.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	ctx := &Ctx{Cat: cat, VectorSize: 100}
	child, _ := Build(ctx, n, nil, nil)
	cancelled, completed := false, false
	st := NewStore(child, StoreSpec{
		OnComplete: func([]*vector.Batch, int64, int64, time.Duration) { completed = true },
		OnCancel:   func() { cancelled = true },
	})
	// Pull only one batch, then close (as a LIMIT above would).
	if err := st.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if completed || !cancelled {
		t.Fatalf("early close: completed=%v cancelled=%v", completed, cancelled)
	}
}

func TestCacheScanProjectsColumns(t *testing.T) {
	// Cached result has 3 columns; scan replays columns 2 and 0.
	b := vector.NewBatch([]vector.Type{vector.Int64, vector.String, vector.Float64}, 2)
	b.Vecs[0].AppendInt64(1)
	b.Vecs[0].AppendInt64(2)
	b.Vecs[1].AppendString("x")
	b.Vecs[1].AppendString("y")
	b.Vecs[2].AppendFloat64(1.5)
	b.Vecs[2].AppendFloat64(2.5)
	released := false
	cs := NewCacheScan(nil, []*vector.Batch{b}, []int{2, 0}, func() { released = true })
	ctx := NewCtx(nil)
	if err := cs.Open(ctx); err != nil {
		t.Fatal(err)
	}
	out, err := cs.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Vecs[0].F64[1] != 2.5 || out.Vecs[1].I64[0] != 1 {
		t.Fatalf("projected wrong: %+v", out)
	}
	if nxt, _ := cs.Next(ctx); nxt != nil {
		t.Fatal("expected EOF")
	}
	cs.Close(ctx)
	if !released {
		t.Fatal("release not called")
	}
}

func TestWaitReuseSuccess(t *testing.T) {
	b := vector.NewBatch([]vector.Type{vector.Int64}, 1)
	b.Vecs[0].AppendInt64(7)
	spec := WaitSpec{
		Timeout: time.Second,
		Wait: func(ctx context.Context, timeout time.Duration) ([]*vector.Batch, []int, func(), bool) {
			return []*vector.Batch{b}, []int{0}, nil, true
		},
	}
	fallback := &failingOp{}
	w := NewWaitReuse(fallback, spec)
	ctx := NewCtx(nil)
	if err := w.Open(ctx); err != nil {
		t.Fatal(err)
	}
	out, err := w.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Vecs[0].I64[0] != 7 {
		t.Fatalf("reused value = %v", out.Vecs[0].I64)
	}
	w.Close(ctx)
}

func TestWaitReuseFallback(t *testing.T) {
	cat := testCatalog()
	n := plan.NewScan("dept", "name")
	if err := n.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(cat)
	fb, _ := Build(ctx, n, nil, nil)
	var sawReuse *bool
	spec := WaitSpec{
		Timeout: time.Millisecond,
		Wait: func(ctx context.Context, timeout time.Duration) ([]*vector.Batch, []int, func(), bool) {
			return nil, nil, nil, false
		},
		OnOutcome: func(reused bool, stalled time.Duration) { sawReuse = &reused },
	}
	w := NewWaitReuse(fb, spec)
	res, err := Run(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 4 {
		t.Fatalf("fallback rows = %d", res.Rows())
	}
	if sawReuse == nil || *sawReuse {
		t.Fatal("outcome should report fallback")
	}
}

// failingOp errors if it is ever opened.
type failingOp struct{ base }

func (f *failingOp) Open(ctx *Ctx) error                  { panic("fallback must not open") }
func (f *failingOp) Next(ctx *Ctx) (*vector.Batch, error) { return nil, nil }
func (f *failingOp) Close(ctx *Ctx) error                 { return nil }
func (f *failingOp) Progress() float64                    { return 0 }
