package exec

import (
	"math"

	"recycledb/internal/vector"
)

// Columnar hashing and typed key comparison for the vectorized hash join
// and hash aggregation. Keys are hashed whole-column-at-a-time into a
// per-row uint64, then probed through open-addressing tables; equality is
// verified with typed column comparators. Nothing is encoded per row, so
// the per-tuple alloc/dispatch cost of the old byte-string keys
// (encodeRowKey, kept as the reference slow path in key.go) is gone.
//
// Numeric values hash through an exactness-preserving canonical form so
// mixed int64/float64 keys (coerced joins, numeric IN) agree: any value
// exactly representable as int64 — every int64, and every float64 that is
// integral and in range — hashes as class "int" with its int64 bits; any
// other float64 hashes as class "float" with its IEEE bits. 1 and 1.0
// collide (intended); 2^53 and 2^53+1 do not (the appendKey regression).

const (
	hashSeed  uint64 = 0x9e3779b97f4a7c15
	hashPrime uint64 = 0xc6a4a7935bd1e995 // Murmur64 multiplier

	// Class tags keep canonical ints, non-integral floats, strings and
	// bools from colliding structurally.
	classInt   uint64 = 0xd6e8feb86659fd93
	classFloat uint64 = 0xa5a5a5a5a5a5a5a5
	classBool  uint64 = 0x94d049bb133111eb
)

// float64 bounds of the int64-exact window: integral floats in
// [-2^63, 2^63) convert to int64 losslessly.
const (
	minExactI64 = -9223372036854775808.0 // -2^63
	maxExactI64 = 9223372036854775808.0  // 2^63
)

// mix64 folds one 64-bit word into a running hash (Murmur-style).
func mix64(h, x uint64) uint64 {
	x *= hashPrime
	x ^= x >> 47
	x *= hashPrime
	h ^= x
	h *= hashPrime
	return h
}

// canonF64 returns the canonical hash word of a float64.
func canonF64(f float64) uint64 {
	if f == math.Trunc(f) && f >= minExactI64 && f < maxExactI64 {
		return uint64(int64(f)) ^ classInt
	}
	return math.Float64bits(f) ^ classFloat
}

// hashColumns computes one hash per logical row of b over the given key
// columns into hs (len(hs) must equal b.Len()). It is selection-aware.
func hashColumns(b *vector.Batch, cols []int, hs []uint64) {
	for i := range hs {
		hs[i] = hashSeed
	}
	for _, c := range cols {
		hashCol(b.Vecs[c], b.Sel, hs)
	}
}

// fastHashType reports whether a key column type qualifies for the
// single-column fast path below.
func fastHashType(t vector.Type) bool { return t == vector.Int64 || t == vector.Date }

// hashI64Fast is the single-column int64/date key fast path: the seed-init
// pass and the canonical class tag both fold away, leaving one fused loop
// of independent mix64 chains — unrolled 4-wide in the dense case so the
// multiply chains overlap instead of serializing behind one accumulator.
//
// The produced hashes differ from hashColumns' (no classInt XOR), which is
// why the path is an all-or-nothing choice per hash table: every producer
// of a directory's hashes — both sides of a join, all worker partials of a
// parallel aggregation — must qualify and agree, which the callers ensure
// by gating on the statically known key column types (and mixed
// int64/float64 keys, where the canonical form is load-bearing, never
// qualify). Equality verification is untouched, so the >2^53 exactness
// rule of keyRowsEqual holds on this path too.
func hashI64Fast(v *vector.Vector, sel []int32, hs []uint64) {
	xs := v.I64
	if sel != nil {
		sel = sel[:len(hs)]
		for i, r := range sel {
			hs[i] = mix64(hashSeed, uint64(xs[r]))
		}
		return
	}
	n := len(hs)
	xs = xs[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		hs[i] = mix64(hashSeed, uint64(xs[i]))
		hs[i+1] = mix64(hashSeed, uint64(xs[i+1]))
		hs[i+2] = mix64(hashSeed, uint64(xs[i+2]))
		hs[i+3] = mix64(hashSeed, uint64(xs[i+3]))
	}
	for ; i < n; i++ {
		hs[i] = mix64(hashSeed, uint64(xs[i]))
	}
}

// hashCol folds one column into the per-row hashes, one tight typed loop
// per (type, selection) combination.
func hashCol(v *vector.Vector, sel []int32, hs []uint64) {
	switch v.Typ {
	case vector.Int64, vector.Date:
		if sel != nil {
			xs := v.I64
			for i, r := range sel {
				hs[i] = mix64(hs[i], uint64(xs[r])^classInt)
			}
		} else {
			// Block-unrolled: each row's mix chain is independent, so a
			// 4-wide body keeps several multiply chains in flight. Hash
			// values are identical to the rolled loop's.
			n := len(hs)
			xs := v.I64[:n]
			i := 0
			for ; i+4 <= n; i += 4 {
				hs[i] = mix64(hs[i], uint64(xs[i])^classInt)
				hs[i+1] = mix64(hs[i+1], uint64(xs[i+1])^classInt)
				hs[i+2] = mix64(hs[i+2], uint64(xs[i+2])^classInt)
				hs[i+3] = mix64(hs[i+3], uint64(xs[i+3])^classInt)
			}
			for ; i < n; i++ {
				hs[i] = mix64(hs[i], uint64(xs[i])^classInt)
			}
		}
	case vector.Float64:
		if sel != nil {
			xs := v.F64
			for i, r := range sel {
				hs[i] = mix64(hs[i], canonF64(xs[r]))
			}
		} else {
			n := len(hs)
			xs := v.F64[:n]
			i := 0
			for ; i+4 <= n; i += 4 {
				hs[i] = mix64(hs[i], canonF64(xs[i]))
				hs[i+1] = mix64(hs[i+1], canonF64(xs[i+1]))
				hs[i+2] = mix64(hs[i+2], canonF64(xs[i+2]))
				hs[i+3] = mix64(hs[i+3], canonF64(xs[i+3]))
			}
			for ; i < n; i++ {
				hs[i] = mix64(hs[i], canonF64(xs[i]))
			}
		}
	case vector.String:
		if sel != nil {
			for i, r := range sel {
				hs[i] = mix64(hs[i], hashString(v.Str[r]))
			}
		} else {
			for i, s := range v.Str {
				hs[i] = mix64(hs[i], hashString(s))
			}
		}
	case vector.Bool:
		if sel != nil {
			for i, r := range sel {
				x := classBool
				if v.B[r] {
					x++
				}
				hs[i] = mix64(hs[i], x)
			}
		} else {
			for i, x := range v.B {
				w := classBool
				if x {
					w++
				}
				hs[i] = mix64(hs[i], w)
			}
		}
	}
}

// hashString is FNV-1a over the string bytes.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// valueEqual compares physical row ai of av with physical row bi of bv.
// Same-type columns compare directly (floats by bit pattern, matching the
// byte-string key semantics for NaN and signed zero); mixed int64/float64
// columns compare exactly through the canonical form, never narrowing an
// int64 through float64.
func valueEqual(av *vector.Vector, ai int, bv *vector.Vector, bi int) bool {
	switch av.Typ {
	case vector.Int64, vector.Date:
		switch bv.Typ {
		case vector.Int64, vector.Date:
			return av.I64[ai] == bv.I64[bi]
		case vector.Float64:
			return intFloatEq(av.I64[ai], bv.F64[bi])
		}
	case vector.Float64:
		switch bv.Typ {
		case vector.Float64:
			return math.Float64bits(av.F64[ai]) == math.Float64bits(bv.F64[bi])
		case vector.Int64, vector.Date:
			return intFloatEq(bv.I64[bi], av.F64[ai])
		}
	case vector.String:
		return av.Str[ai] == bv.Str[bi]
	case vector.Bool:
		return av.B[ai] == bv.B[bi]
	}
	return false
}

// intFloatEq reports whether float64 f equals int64 x exactly.
func intFloatEq(x int64, f float64) bool {
	return f == math.Trunc(f) && f >= minExactI64 && f < maxExactI64 && int64(f) == x
}

// keyRowsEqual compares the key columns of physical row ar of a against
// physical row br of b.
func keyRowsEqual(a *vector.Batch, ar int, acols []int, b *vector.Batch, br int, bcols []int) bool {
	for k, ac := range acols {
		if !valueEqual(a.Vecs[ac], ar, b.Vecs[bcols[k]], br) {
			return false
		}
	}
	return true
}

// oaTable is the shared open-addressing directory: a power-of-two bucket
// array of int32 heads (-1 = empty). The join chains rows through a
// parallel next array; the aggregate stores group ids and linear-probes.
type oaTable struct {
	buckets []int32
	mask    uint64
}

// initTable sizes the directory for n entries at load factor <= 1/2.
func (t *oaTable) init(n int) {
	size := 16
	for size < n*2 {
		size <<= 1
	}
	if cap(t.buckets) >= size {
		t.buckets = t.buckets[:size]
	} else {
		t.buckets = make([]int32, size)
	}
	for i := range t.buckets {
		t.buckets[i] = -1
	}
	t.mask = uint64(size - 1)
}

// slot returns the home bucket index for hash h.
func (t *oaTable) slot(h uint64) uint64 { return h & t.mask }
