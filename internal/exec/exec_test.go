package exec

import (
	"testing"

	"recycledb/internal/catalog"
	"recycledb/internal/expr"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// testCatalog returns a catalog with:
//
//	emp(id int, dept string, salary float, hired date) - 1000 rows
//	dept(name string, region string)                   - 4 rows
func testCatalog() *catalog.Catalog {
	cat := catalog.New()
	emp := catalog.NewTable("emp", catalog.Schema{
		{Name: "id", Typ: vector.Int64},
		{Name: "dept", Typ: vector.String},
		{Name: "salary", Typ: vector.Float64},
		{Name: "hired", Typ: vector.Date},
	})
	depts := []string{"eng", "sales", "hr", "ops"}
	w := emp.BeginWrite()
	ap := w.Appender()
	base := vector.MustParseDate("2000-01-01")
	for i := 0; i < 1000; i++ {
		ap.Int64(0, int64(i))
		ap.String(1, depts[i%4])
		ap.Float64(2, float64(1000+i%500))
		ap.Int64(3, base+int64(i))
		ap.FinishRow()
	}
	w.Commit()
	cat.AddTable(emp)

	dept := catalog.NewTable("dept", catalog.Schema{
		{Name: "name", Typ: vector.String},
		{Name: "region", Typ: vector.String},
	})
	for i, d := range depts {
		region := "emea"
		if i%2 == 0 {
			region = "amer"
		}
		dept.AppendRows([]vector.Datum{vector.NewStringDatum(d), vector.NewStringDatum(region)})
	}
	cat.AddTable(dept)
	return cat
}

// runPlan resolves and executes a plan, returning the result.
func runPlan(t *testing.T, cat *catalog.Catalog, n *plan.Node) *catalog.Result {
	t.Helper()
	if err := n.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(cat)
	op, err := Build(ctx, n, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTableScan(t *testing.T) {
	cat := testCatalog()
	res := runPlan(t, cat, plan.NewScan("emp", "id", "salary"))
	if res.Rows() != 1000 {
		t.Fatalf("rows = %d", res.Rows())
	}
	if len(res.Schema) != 2 {
		t.Fatalf("schema = %v", res.Schema)
	}
}

func TestScanUsesVectorSize(t *testing.T) {
	cat := testCatalog()
	n := plan.NewScan("emp", "id")
	if err := n.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	ctx := &Ctx{Cat: cat, VectorSize: 128}
	op, err := Build(ctx, n, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	b, err := op.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 128 {
		t.Fatalf("batch len = %d, want 128", b.Len())
	}
	op.Close(ctx)
}

func TestFilter(t *testing.T) {
	cat := testCatalog()
	n := plan.NewSelect(plan.NewScan("emp", "id", "dept"),
		expr.Eq(expr.C("dept"), expr.Str("eng")))
	res := runPlan(t, cat, n)
	if res.Rows() != 250 {
		t.Fatalf("rows = %d, want 250", res.Rows())
	}
}

func TestFilterAllOut(t *testing.T) {
	cat := testCatalog()
	n := plan.NewSelect(plan.NewScan("emp", "id"),
		expr.Lt(expr.C("id"), expr.Int(0)))
	res := runPlan(t, cat, n)
	if res.Rows() != 0 {
		t.Fatalf("rows = %d, want 0", res.Rows())
	}
}

func TestProject(t *testing.T) {
	cat := testCatalog()
	n := plan.NewProject(plan.NewScan("emp", "id", "salary"),
		plan.P(expr.Mul(expr.C("salary"), expr.Flt(2)), "dbl"),
		plan.P(expr.C("id"), "id"),
	)
	res := runPlan(t, cat, n)
	if res.Rows() != 1000 {
		t.Fatalf("rows = %d", res.Rows())
	}
	if res.Schema[0].Name != "dbl" {
		t.Fatalf("schema = %v", res.Schema)
	}
	if res.Batches[0].Vecs[0].F64[0] != 2000 {
		t.Fatalf("dbl[0] = %v", res.Batches[0].Vecs[0].F64[0])
	}
}

func TestHashAggGrouped(t *testing.T) {
	cat := testCatalog()
	n := plan.NewAggregate(plan.NewScan("emp", "dept", "salary"),
		[]string{"dept"},
		plan.A(plan.Count, nil, "cnt"),
		plan.A(plan.Sum, expr.C("salary"), "total"),
		plan.A(plan.Avg, expr.C("salary"), "mean"),
		plan.A(plan.Min, expr.C("salary"), "lo"),
		plan.A(plan.Max, expr.C("salary"), "hi"),
	)
	res := runPlan(t, cat, n)
	if res.Rows() != 4 {
		t.Fatalf("groups = %d, want 4", res.Rows())
	}
	b := res.Batches[0]
	for i := 0; i < b.Len(); i++ {
		cnt := b.Vecs[1].I64[i]
		total := b.Vecs[2].F64[i]
		mean := b.Vecs[3].F64[i]
		lo := b.Vecs[4].F64[i]
		hi := b.Vecs[5].F64[i]
		if cnt != 250 {
			t.Fatalf("group %d count = %d", i, cnt)
		}
		if mean < lo || mean > hi {
			t.Fatalf("mean %v outside [%v,%v]", mean, lo, hi)
		}
		if total <= 0 {
			t.Fatalf("total = %v", total)
		}
	}
}

func TestHashAggScalarOverEmptyInput(t *testing.T) {
	cat := testCatalog()
	n := plan.NewAggregate(
		plan.NewSelect(plan.NewScan("emp", "id", "salary"),
			expr.Lt(expr.C("id"), expr.Int(0))),
		nil,
		plan.A(plan.Count, nil, "cnt"),
		plan.A(plan.Sum, expr.C("salary"), "total"),
	)
	res := runPlan(t, cat, n)
	if res.Rows() != 1 {
		t.Fatalf("scalar agg rows = %d, want 1", res.Rows())
	}
	if res.Batches[0].Vecs[0].I64[0] != 0 {
		t.Fatalf("count = %d, want 0", res.Batches[0].Vecs[0].I64[0])
	}
}

func TestHashAggCountStar(t *testing.T) {
	cat := testCatalog()
	n := plan.NewAggregate(plan.NewScan("emp", "id"), nil, plan.A(plan.Count, nil, "c"))
	res := runPlan(t, cat, n)
	if res.Batches[0].Vecs[0].I64[0] != 1000 {
		t.Fatalf("count(*) = %d", res.Batches[0].Vecs[0].I64[0])
	}
}

func TestHashAggIntSum(t *testing.T) {
	cat := testCatalog()
	n := plan.NewAggregate(plan.NewScan("emp", "id"), nil,
		plan.A(plan.Sum, expr.C("id"), "s"))
	res := runPlan(t, cat, n)
	if got := res.Batches[0].Vecs[0].I64[0]; got != 999*1000/2 {
		t.Fatalf("sum(id) = %d", got)
	}
}

func TestHashJoinInner(t *testing.T) {
	cat := testCatalog()
	n := plan.NewJoin(plan.Inner,
		plan.NewScan("emp", "id", "dept"),
		plan.NewScan("dept", "name", "region"),
		[]string{"dept"}, []string{"name"})
	res := runPlan(t, cat, n)
	if res.Rows() != 1000 {
		t.Fatalf("rows = %d, want 1000", res.Rows())
	}
	if len(res.Schema) != 4 {
		t.Fatalf("schema = %v", res.Schema)
	}
}

func TestHashJoinSemiAnti(t *testing.T) {
	cat := testCatalog()
	semi := plan.NewJoin(plan.LeftSemi,
		plan.NewScan("emp", "id", "dept"),
		plan.NewSelect(plan.NewScan("dept", "name", "region"),
			expr.Eq(expr.C("region"), expr.Str("amer"))),
		[]string{"dept"}, []string{"name"})
	res := runPlan(t, cat, semi)
	if res.Rows() != 500 { // eng + hr
		t.Fatalf("semi rows = %d, want 500", res.Rows())
	}
	anti := plan.NewJoin(plan.LeftAnti,
		plan.NewScan("emp", "id", "dept"),
		plan.NewSelect(plan.NewScan("dept", "name", "region"),
			expr.Eq(expr.C("region"), expr.Str("amer"))),
		[]string{"dept"}, []string{"name"})
	res = runPlan(t, cat, anti)
	if res.Rows() != 500 {
		t.Fatalf("anti rows = %d, want 500", res.Rows())
	}
}

func TestHashJoinLeftOuter(t *testing.T) {
	cat := testCatalog()
	// Join emp against only the "eng" dept: 250 matched, 750 unmatched.
	n := plan.NewJoin(plan.LeftOuter,
		plan.NewScan("emp", "id", "dept"),
		plan.NewSelect(plan.NewScan("dept", "name"),
			expr.Eq(expr.C("name"), expr.Str("eng"))),
		[]string{"dept"}, []string{"name"})
	res := runPlan(t, cat, n)
	if res.Rows() != 1000 {
		t.Fatalf("louter rows = %d, want 1000", res.Rows())
	}
	matched := int64(0)
	mcol := len(res.Schema) - 1
	for _, b := range res.Batches {
		for _, m := range b.Vecs[mcol].I64 {
			matched += m
		}
	}
	if matched != 250 {
		t.Fatalf("matched = %d, want 250", matched)
	}
}

func TestHashJoinDuplicateMatches(t *testing.T) {
	cat := catalog.New()
	l := catalog.NewTable("l", catalog.Schema{{Name: "k", Typ: vector.Int64}})
	r := catalog.NewTable("r", catalog.Schema{{Name: "rk", Typ: vector.Int64}, {Name: "v", Typ: vector.Int64}})
	for i := 0; i < 10; i++ {
		l.AppendRows([]vector.Datum{vector.NewInt64Datum(int64(i % 2))})
	}
	for i := 0; i < 6; i++ {
		r.AppendRows([]vector.Datum{vector.NewInt64Datum(int64(i % 2)), vector.NewInt64Datum(int64(i))})
	}
	cat.AddTable(l)
	cat.AddTable(r)
	n := plan.NewJoin(plan.Inner, plan.NewScan("l"), plan.NewScan("r"),
		[]string{"k"}, []string{"rk"})
	res := runPlan(t, cat, n)
	// Each of 10 left rows matches 3 right rows.
	if res.Rows() != 30 {
		t.Fatalf("rows = %d, want 30", res.Rows())
	}
}

func TestHashJoinManyMatchesSpanBatches(t *testing.T) {
	cat := catalog.New()
	l := catalog.NewTable("l", catalog.Schema{{Name: "k", Typ: vector.Int64}})
	r := catalog.NewTable("r", catalog.Schema{{Name: "rk", Typ: vector.Int64}})
	l.AppendRows([]vector.Datum{vector.NewInt64Datum(7)})
	for i := 0; i < 5000; i++ {
		r.AppendRows([]vector.Datum{vector.NewInt64Datum(7)})
	}
	cat.AddTable(l)
	cat.AddTable(r)
	n := plan.NewJoin(plan.Inner, plan.NewScan("l"), plan.NewScan("r"),
		[]string{"k"}, []string{"rk"})
	res := runPlan(t, cat, n)
	if res.Rows() != 5000 {
		t.Fatalf("rows = %d, want 5000", res.Rows())
	}
}

func TestSortAscDesc(t *testing.T) {
	cat := testCatalog()
	n := plan.NewSort(plan.NewScan("emp", "id", "salary"),
		plan.SortKey{Col: "salary", Desc: true}, plan.SortKey{Col: "id"})
	res := runPlan(t, cat, n)
	if res.Rows() != 1000 {
		t.Fatalf("rows = %d", res.Rows())
	}
	var prev float64 = 1e18
	for _, b := range res.Batches {
		for i := 0; i < b.Len(); i++ {
			s := b.Vecs[1].F64[i]
			if s > prev {
				t.Fatalf("not sorted desc: %v after %v", s, prev)
			}
			prev = s
		}
	}
}

func TestTopN(t *testing.T) {
	cat := testCatalog()
	n := plan.NewTopN(plan.NewScan("emp", "id"),
		[]plan.SortKey{{Col: "id", Desc: true}}, 7)
	res := runPlan(t, cat, n)
	if res.Rows() != 7 {
		t.Fatalf("rows = %d, want 7", res.Rows())
	}
	want := int64(999)
	for _, b := range res.Batches {
		for i := 0; i < b.Len(); i++ {
			if b.Vecs[0].I64[i] != want {
				t.Fatalf("top id = %d, want %d", b.Vecs[0].I64[i], want)
			}
			want--
		}
	}
}

func TestTopNEqualsSortLimit(t *testing.T) {
	cat := testCatalog()
	top := plan.NewTopN(plan.NewScan("emp", "id", "salary"),
		[]plan.SortKey{{Col: "salary"}, {Col: "id"}}, 25)
	sl := plan.NewLimit(plan.NewSort(plan.NewScan("emp", "id", "salary"),
		plan.SortKey{Col: "salary"}, plan.SortKey{Col: "id"}), 25)
	r1 := runPlan(t, cat, top)
	r2 := runPlan(t, cat, sl)
	ids1 := collectI64(r1, 0)
	ids2 := collectI64(r2, 0)
	if len(ids1) != 25 || len(ids2) != 25 {
		t.Fatalf("lens %d %d", len(ids1), len(ids2))
	}
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("row %d: topn %d vs sort+limit %d", i, ids1[i], ids2[i])
		}
	}
}

func collectI64(r *catalog.Result, col int) []int64 {
	var out []int64
	for _, b := range r.Batches {
		out = append(out, b.Vecs[col].I64...)
	}
	return out
}

func TestTopNLargerThanInput(t *testing.T) {
	cat := testCatalog()
	n := plan.NewTopN(plan.NewScan("dept", "name"),
		[]plan.SortKey{{Col: "name"}}, 100)
	res := runPlan(t, cat, n)
	if res.Rows() != 4 {
		t.Fatalf("rows = %d, want 4", res.Rows())
	}
}

func TestLimit(t *testing.T) {
	cat := testCatalog()
	res := runPlan(t, cat, plan.NewLimit(plan.NewScan("emp", "id"), 10))
	if res.Rows() != 10 {
		t.Fatalf("rows = %d, want 10", res.Rows())
	}
	res = runPlan(t, cat, plan.NewLimit(plan.NewScan("dept", "name"), 100))
	if res.Rows() != 4 {
		t.Fatalf("rows = %d, want 4", res.Rows())
	}
	res = runPlan(t, cat, plan.NewLimit(plan.NewScan("emp", "id"), 0))
	if res.Rows() != 0 {
		t.Fatalf("rows = %d, want 0", res.Rows())
	}
}

func TestUnion(t *testing.T) {
	cat := testCatalog()
	n := plan.NewUnion(
		plan.NewSelect(plan.NewScan("emp", "id"), expr.Lt(expr.C("id"), expr.Int(10))),
		plan.NewSelect(plan.NewScan("emp", "id"), expr.Ge(expr.C("id"), expr.Int(990))),
	)
	res := runPlan(t, cat, n)
	if res.Rows() != 20 {
		t.Fatalf("rows = %d, want 20", res.Rows())
	}
}

func TestTableFnScan(t *testing.T) {
	cat := testCatalog()
	cat.AddFunc(&catalog.TableFunc{
		Name:   "seq",
		Schema: catalog.Schema{{Name: "n", Typ: vector.Int64}},
		Invoke: func(c *catalog.Catalog, args []vector.Datum) (*catalog.Result, error) {
			k := args[0].I64
			b := vector.NewBatch([]vector.Type{vector.Int64}, int(k))
			for i := int64(0); i < k; i++ {
				b.Vecs[0].AppendInt64(i)
			}
			return &catalog.Result{
				Schema:  catalog.Schema{{Name: "n", Typ: vector.Int64}},
				Batches: []*vector.Batch{b},
			}, nil
		},
	})
	n := plan.NewTableFn("seq", vector.NewInt64Datum(42))
	res := runPlan(t, cat, n)
	if res.Rows() != 42 {
		t.Fatalf("rows = %d, want 42", res.Rows())
	}
}

func TestCostAndRowsTracked(t *testing.T) {
	cat := testCatalog()
	n := plan.NewAggregate(plan.NewScan("emp", "dept", "salary"),
		[]string{"dept"}, plan.A(plan.Count, nil, "c"))
	if err := n.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(cat)
	op, err := Build(ctx, n, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ctx, op); err != nil {
		t.Fatal(err)
	}
	if op.Cost() <= 0 {
		t.Fatal("aggregate cost not measured")
	}
	if op.RowsOut() != 4 {
		t.Fatalf("rows out = %d", op.RowsOut())
	}
	// Fusion is on by default, so the fragment root is the fused agg.
	if _, ok := op.(*FusedAgg); !ok {
		t.Fatalf("op = %T, want *FusedAgg", op)
	}

	// Unfused chain: inclusive parent cost >= child cost.
	uctx := NewCtx(cat)
	uctx.DisableFusion = true
	uop, err := Build(uctx, n, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(uctx, uop); err != nil {
		t.Fatal(err)
	}
	agg := uop.(*HashAgg)
	if agg.Cost() < agg.Child.Cost() {
		t.Fatal("inclusive cost must dominate child cost")
	}
}

func TestProgressMonotonicOnScan(t *testing.T) {
	cat := testCatalog()
	n := plan.NewScan("emp", "id")
	if err := n.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	ctx := &Ctx{Cat: cat, VectorSize: 100}
	op, _ := Build(ctx, n, nil, nil)
	op.Open(ctx)
	last := 0.0
	for {
		b, err := op.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		p := op.Progress()
		if p < last || p > 1 {
			t.Fatalf("progress %v after %v", p, last)
		}
		last = p
	}
	if last != 1 {
		t.Fatalf("final progress = %v", last)
	}
	op.Close(ctx)
}

func TestDrain(t *testing.T) {
	cat := testCatalog()
	n := plan.NewScan("emp", "id")
	if err := n.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(cat)
	op, _ := Build(ctx, n, nil, nil)
	rows, err := Drain(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	if rows != 1000 {
		t.Fatalf("drained %d rows", rows)
	}
}
