package exec

import (
	"testing"
	"testing/quick"

	"recycledb/internal/catalog"
	"recycledb/internal/expr"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// emptyCatalog returns a catalog with an empty table.
func emptyCatalog() *catalog.Catalog {
	cat := catalog.New()
	cat.AddTable(catalog.NewTable("e", catalog.Schema{
		{Name: "x", Typ: vector.Int64},
		{Name: "s", Typ: vector.String},
	}))
	return cat
}

func TestOperatorsOverEmptyTable(t *testing.T) {
	cat := emptyCatalog()
	plans := []*plan.Node{
		plan.NewScan("e"),
		plan.NewSelect(plan.NewScan("e"), expr.Gt(expr.C("x"), expr.Int(0))),
		plan.NewProject(plan.NewScan("e"), plan.P(expr.C("x"), "y")),
		plan.NewAggregate(plan.NewScan("e"), []string{"s"}, plan.A(plan.Count, nil, "c")),
		plan.NewSort(plan.NewScan("e"), plan.SortKey{Col: "x"}),
		plan.NewTopN(plan.NewScan("e"), []plan.SortKey{{Col: "x"}}, 5),
		plan.NewLimit(plan.NewScan("e"), 10),
		plan.NewUnion(plan.NewScan("e", "x"), plan.NewScan("e", "x")),
		plan.NewJoin(plan.Inner, plan.NewScan("e"), plan.NewScan("e", "x").Clone(),
			nil, nil),
	}
	// The self-join needs distinct column names; patch it.
	plans[8] = plan.NewJoin(plan.Inner,
		plan.NewScan("e", "x"),
		plan.NewProject(plan.NewScan("e", "x"), plan.P(expr.C("x"), "x2")),
		[]string{"x"}, []string{"x2"})
	for i, p := range plans {
		if err := p.Resolve(cat); err != nil {
			t.Fatalf("plan %d resolve: %v", i, err)
		}
		ctx := NewCtx(cat)
		op, err := Build(ctx, p, nil, nil)
		if err != nil {
			t.Fatalf("plan %d build: %v", i, err)
		}
		res, err := Run(ctx, op)
		if err != nil {
			t.Fatalf("plan %d run: %v", i, err)
		}
		if res.Rows() != 0 {
			t.Fatalf("plan %d: %d rows over empty input", i, res.Rows())
		}
	}
}

func TestJoinEmptyBuildSideStillDrainsProbe(t *testing.T) {
	cat := testCatalog()
	n := plan.NewJoin(plan.Inner,
		plan.NewScan("emp", "id", "dept"),
		plan.NewSelect(plan.NewScan("dept", "name"),
			expr.Eq(expr.C("name"), expr.Str("nonexistent"))),
		[]string{"dept"}, []string{"name"})
	res := runPlan(t, cat, n)
	if res.Rows() != 0 {
		t.Fatalf("rows = %d", res.Rows())
	}
	// Anti join against an empty right side keeps everything.
	anti := plan.NewJoin(plan.LeftAnti,
		plan.NewScan("emp", "id", "dept"),
		plan.NewSelect(plan.NewScan("dept", "name"),
			expr.Eq(expr.C("name"), expr.Str("nonexistent"))),
		[]string{"dept"}, []string{"name"})
	res = runPlan(t, cat, anti)
	if res.Rows() != 1000 {
		t.Fatalf("anti rows = %d", res.Rows())
	}
}

func TestCrossJoinViaEmptyKeys(t *testing.T) {
	cat := testCatalog()
	n := plan.NewJoin(plan.Inner,
		plan.NewScan("dept", "name"),
		plan.NewProject(plan.NewScan("dept", "region"), plan.P(expr.C("region"), "r2")),
		nil, nil)
	res := runPlan(t, cat, n)
	if res.Rows() != 16 {
		t.Fatalf("cross join rows = %d, want 16", res.Rows())
	}
}

func TestTopNArenaCompaction(t *testing.T) {
	// A descending input stresses the heap: every early row is soon
	// replaced, forcing arena growth and periodic compaction.
	cat := catalog.New()
	tb := catalog.NewTable("big", catalog.Schema{{Name: "v", Typ: vector.Int64}})
	w := tb.BeginWrite()
	ap := w.Appender()
	for i := 0; i < 50000; i++ {
		ap.Int64(0, int64(50000-i))
		ap.FinishRow()
	}
	w.Commit()
	cat.AddTable(tb)
	n := plan.NewTopN(plan.NewScan("big"), []plan.SortKey{{Col: "v"}}, 3)
	res := runPlan(t, cat, n)
	got := collectI64(res, 0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("top3 = %v", got)
	}
}

func TestGroupCountExceedsVectorSize(t *testing.T) {
	cat := catalog.New()
	tb := catalog.NewTable("g", catalog.Schema{{Name: "k", Typ: vector.Int64}})
	w := tb.BeginWrite()
	ap := w.Appender()
	for i := 0; i < 5000; i++ {
		ap.Int64(0, int64(i)) // 5000 distinct groups
		ap.FinishRow()
	}
	w.Commit()
	cat.AddTable(tb)
	n := plan.NewAggregate(plan.NewScan("g"), []string{"k"}, plan.A(plan.Count, nil, "c"))
	res := runPlan(t, cat, n)
	if res.Rows() != 5000 {
		t.Fatalf("groups = %d", res.Rows())
	}
	// Emitted across multiple batches.
	if len(res.Batches) < 2 {
		t.Fatalf("expected multiple output batches, got %d", len(res.Batches))
	}
}

func TestKeyEncodingDistinguishesTypes(t *testing.T) {
	// int64(1) must not collide with the string "\x01" or bool true.
	iv := vector.New(vector.Int64, 1)
	iv.AppendInt64(1)
	sv := vector.New(vector.String, 1)
	sv.AppendString("\x01")
	bv := vector.New(vector.Bool, 1)
	bv.AppendBool(true)
	ki := string(appendKey(nil, iv, 0, false))
	ks := string(appendKey(nil, sv, 0, false))
	kb := string(appendKey(nil, bv, 0, false))
	if ki == ks || ki == kb || ks == kb {
		t.Fatalf("key collision: %q %q %q", ki, ks, kb)
	}
}

func TestKeyEncodingCoercesNumerics(t *testing.T) {
	iv := vector.New(vector.Int64, 1)
	iv.AppendInt64(7)
	fv := vector.New(vector.Float64, 1)
	fv.AppendFloat64(7.0)
	ki := string(appendKey(nil, iv, 0, true))
	kf := string(appendKey(nil, fv, 0, true))
	if ki != kf {
		t.Fatal("coerced int and float keys must match")
	}
	// Without coercion a float keeps its IEEE encoding: 7.0 is a float
	// key, distinct from the int64 key 7.
	if string(appendKey(nil, fv, 0, false)) == ki {
		t.Fatal("uncoerced float key must differ from int key")
	}
	// Non-integral floats never canonicalize onto ints, coerced or not.
	fv2 := vector.New(vector.Float64, 1)
	fv2.AppendFloat64(7.5)
	if string(appendKey(nil, fv2, 0, true)) == ki {
		t.Fatal("non-integral float key must differ from int key")
	}
}

// Property: multi-column string keys are injective for printable inputs
// (the length prefix prevents concatenation ambiguity).
func TestKeyEncodingInjectiveProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 string) bool {
		mk := func(x, y string) string {
			v1 := vector.New(vector.String, 1)
			v1.AppendString(x)
			v2 := vector.New(vector.String, 1)
			v2.AppendString(y)
			k := appendKey(nil, v1, 0, false)
			k = appendKey(k, v2, 0, false)
			return string(k)
		}
		same := a1 == b1 && a2 == b2
		return (mk(a1, a2) == mk(b1, b2)) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: filter then count equals counting matching rows directly.
func TestFilterCountProperty(t *testing.T) {
	cat := testCatalog()
	f := func(threshold uint16) bool {
		th := int64(threshold) % 1000
		n := plan.NewAggregate(
			plan.NewSelect(plan.NewScan("emp", "id"),
				expr.Lt(expr.C("id"), expr.Int(th))),
			nil, plan.A(plan.Count, nil, "c"))
		if err := n.Resolve(cat); err != nil {
			return false
		}
		ctx := NewCtx(cat)
		op, err := Build(ctx, n, nil, nil)
		if err != nil {
			return false
		}
		res, err := Run(ctx, op)
		if err != nil {
			return false
		}
		return res.Batches[0].Vecs[0].I64[0] == th
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: sort output is a permutation (count preserved) and ordered.
func TestSortProperty(t *testing.T) {
	cat := testCatalog()
	n := plan.NewSort(plan.NewScan("emp", "salary", "id"),
		plan.SortKey{Col: "salary"}, plan.SortKey{Col: "id", Desc: true})
	res := runPlan(t, cat, n)
	if res.Rows() != 1000 {
		t.Fatalf("rows = %d", res.Rows())
	}
	var prevS float64 = -1
	var prevID int64 = 1 << 62
	for _, b := range res.Batches {
		for i := 0; i < b.Len(); i++ {
			s, id := b.Vecs[0].F64[i], b.Vecs[1].I64[i]
			if s < prevS {
				t.Fatal("primary key order violated")
			}
			if s == prevS && id > prevID {
				t.Fatal("secondary key order violated")
			}
			if s != prevS {
				prevID = 1 << 62
			}
			prevS, prevID = s, id
		}
	}
}

func TestUnionPreservesAllRows(t *testing.T) {
	cat := testCatalog()
	n := plan.NewAggregate(
		plan.NewUnion(plan.NewScan("emp", "id"), plan.NewScan("emp", "id")),
		nil, plan.A(plan.Count, nil, "c"))
	res := runPlan(t, cat, n)
	if res.Batches[0].Vecs[0].I64[0] != 2000 {
		t.Fatalf("union count = %d", res.Batches[0].Vecs[0].I64[0])
	}
}

func TestScalarAggOverJoin(t *testing.T) {
	cat := testCatalog()
	// sum over a cross join: 1000 emp rows x 1 filtered dept row.
	n := plan.NewAggregate(
		plan.NewJoin(plan.Inner,
			plan.NewScan("emp", "id", "dept"),
			plan.NewSelect(plan.NewScan("dept", "name"),
				expr.Eq(expr.C("name"), expr.Str("eng"))),
			nil, nil),
		nil, plan.A(plan.Count, nil, "c"))
	res := runPlan(t, cat, n)
	if res.Batches[0].Vecs[0].I64[0] != 1000 {
		t.Fatalf("count = %d", res.Batches[0].Vecs[0].I64[0])
	}
}
