package exec

import (
	"errors"
	"testing"
	"time"

	"recycledb/internal/catalog"
	"recycledb/internal/vector"
)

// scratchChild acquires pooled scratch in Open and releases it in Close,
// like every real operator.
type scratchChild struct {
	buf    *vector.Batch
	closed bool
}

func (c *scratchChild) Schema() catalog.Schema {
	return catalog.Schema{{Name: "x", Typ: vector.Int64}}
}

func (c *scratchChild) Open(ctx *Ctx) error {
	c.buf = ctx.pool().GetBatch([]vector.Type{vector.Int64}, 16)
	return nil
}

func (c *scratchChild) Next(ctx *Ctx) (*vector.Batch, error) { return nil, nil }

func (c *scratchChild) Close(ctx *Ctx) error {
	if c.buf != nil {
		ctx.pool().PutBatch(c.buf)
		c.buf = nil
	}
	c.closed = true
	return nil
}

func (c *scratchChild) Progress() float64   { return 1 }
func (c *scratchChild) Cost() time.Duration { return 0 }
func (c *scratchChild) RowsOut() int64      { return 0 }

// failOpenOp opens its child successfully, then fails its own Open — the
// shape that used to leak the child's scratch out of Run and Drain.
type failOpenOp struct {
	child  *scratchChild
	closed bool
}

func (f *failOpenOp) Schema() catalog.Schema { return f.child.Schema() }

func (f *failOpenOp) Open(ctx *Ctx) error {
	if err := f.child.Open(ctx); err != nil {
		return err
	}
	return errors.New("boom")
}

func (f *failOpenOp) Next(ctx *Ctx) (*vector.Batch, error) { return nil, nil }

func (f *failOpenOp) Close(ctx *Ctx) error {
	f.closed = true
	return f.child.Close(ctx)
}

func (f *failOpenOp) Progress() float64   { return 0 }
func (f *failOpenOp) Cost() time.Duration { return 0 }
func (f *failOpenOp) RowsOut() int64      { return 0 }

// TestRunClosesOnOpenError: when Open fails partway through a tree, Run
// must still Close the tree so scratch already drawn from the pool is
// returned (the zero-steady-state-allocation contract).
func TestRunClosesOnOpenError(t *testing.T) {
	op := &failOpenOp{child: &scratchChild{}}
	ctx := &Ctx{Cat: catalog.New(), VectorSize: 16, Pool: new(vector.Pool)}
	if _, err := Run(ctx, op); err == nil {
		t.Fatal("Run: expected error from failing Open")
	}
	if !op.closed || !op.child.closed {
		t.Fatalf("Run left the tree open after an Open error: op.closed=%v child.closed=%v",
			op.closed, op.child.closed)
	}
	if op.child.buf != nil {
		t.Fatal("child scratch not returned to the pool")
	}
}

func TestDrainClosesOnOpenError(t *testing.T) {
	op := &failOpenOp{child: &scratchChild{}}
	ctx := &Ctx{Cat: catalog.New(), VectorSize: 16, Pool: new(vector.Pool)}
	if _, err := Drain(ctx, op); err == nil {
		t.Fatal("Drain: expected error from failing Open")
	}
	if !op.closed || !op.child.closed {
		t.Fatalf("Drain left the tree open after an Open error: op.closed=%v child.closed=%v",
			op.closed, op.child.closed)
	}
}
