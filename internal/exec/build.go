package exec

import (
	"fmt"

	"recycledb/internal/expr"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// ReuseSpec replaces a plan subtree with a replay of a cached result.
type ReuseSpec struct {
	Batches []*vector.Batch
	// OutIdx maps output position -> cached column index (the physical
	// form of the recycler's name mapping).
	OutIdx []int
	// Release unpins the cache entry when the scan closes.
	Release func()
}

// Decor attaches recycler decisions to a plan node. At most one of Reuse
// and Wait is set; Store may combine with neither on the same node.
type Decor struct {
	Reuse *ReuseSpec
	Wait  *WaitSpec
	Store *StoreSpec
}

// Decorations maps plan nodes to recycler decisions made by the rewriter.
type Decorations map[*plan.Node]*Decor

// Build turns a resolved plan tree plus recycler decorations into an
// executable operator tree. If opmap is non-nil it is filled with the
// operator built for each plan node (the outermost operator when a node is
// wrapped by Wait/Store), which the engine uses to annotate the recycler
// graph with measured costs and cardinalities after execution.
func Build(ctx *Ctx, n *plan.Node, dec Decorations, opmap map[*plan.Node]Operator) (Operator, error) {
	var d Decor
	if dec != nil {
		if dd := dec[n]; dd != nil {
			d = *dd
		}
	}
	if d.Reuse != nil {
		var op Operator = NewCacheScan(n.Schema(), d.Reuse.Batches, d.Reuse.OutIdx, d.Reuse.Release)
		if d.Store != nil {
			op = NewStore(op, *d.Store)
		}
		if opmap != nil {
			opmap[n] = op
		}
		return op, nil
	}
	op, err := buildRaw(ctx, n, dec, opmap)
	if err != nil {
		return nil, err
	}
	if d.Wait != nil {
		op = NewWaitReuse(op, *d.Wait)
	}
	if d.Store != nil {
		op = NewStore(op, *d.Store)
	}
	if opmap != nil {
		opmap[n] = op
	}
	return op, nil
}

func buildRaw(ctx *Ctx, n *plan.Node, dec Decorations, opmap map[*plan.Node]Operator) (Operator, error) {
	// Morsel-driven parallel fragments (see parallel.go): pipeline-shaped
	// subtrees large enough to split execute on a worker pool and merge
	// deterministically at this node; everything else falls through to the
	// serial operators below. Nodes carrying recycler decorations are
	// never cloned into workers — Build wraps whatever is returned here,
	// so stores and reuse replays always sit on the merged stream.
	if op, handled, err := buildParallel(ctx, n, dec, opmap); handled || err != nil {
		return op, err
	}
	switch n.Op {
	case plan.Scan:
		t, err := ctx.Cat.Table(n.Table)
		if err != nil {
			return nil, err
		}
		cols := make([]int, len(n.Cols))
		for i, c := range n.Cols {
			cols[i] = t.Schema.ColIndex(c)
			if cols[i] < 0 {
				return nil, fmt.Errorf("exec: table %s has no column %q", n.Table, c)
			}
		}
		return NewTableScan(t, cols, n.Schema()), nil
	case plan.TableFn:
		f, err := ctx.Cat.Func(n.Fn)
		if err != nil {
			return nil, err
		}
		return NewTableFnScan(f, n.Args), nil
	case plan.Select:
		child, err := Build(ctx, n.Children[0], dec, opmap)
		if err != nil {
			return nil, err
		}
		return NewFilter(child, n.Pred), nil
	case plan.Project:
		child, err := Build(ctx, n.Children[0], dec, opmap)
		if err != nil {
			return nil, err
		}
		exprs := make([]expr.Expr, len(n.Projs))
		for i, p := range n.Projs {
			exprs[i] = p.E
		}
		return NewProject(child, exprs, n.Schema()), nil
	case plan.Aggregate:
		child, err := Build(ctx, n.Children[0], dec, opmap)
		if err != nil {
			return nil, err
		}
		groupCols := make([]int, len(n.GroupBy))
		for i, g := range n.GroupBy {
			groupCols[i] = n.Children[0].Schema().ColIndex(g)
			if groupCols[i] < 0 {
				return nil, fmt.Errorf("exec: group-by column %q missing", g)
			}
		}
		aggs := make([]AggExpr, len(n.Aggs))
		for i, a := range n.Aggs {
			aggs[i] = AggExpr{
				Func: a.Func,
				Arg:  a.Arg,
				Typ:  n.Schema()[len(n.GroupBy)+i].Typ,
			}
		}
		return NewHashAgg(child, groupCols, aggs, n.Schema()), nil
	case plan.Join:
		left, err := Build(ctx, n.Children[0], dec, opmap)
		if err != nil {
			return nil, err
		}
		right, err := Build(ctx, n.Children[1], dec, opmap)
		if err != nil {
			return nil, err
		}
		lcols := make([]int, len(n.LeftKeys))
		rcols := make([]int, len(n.RightKeys))
		for i := range n.LeftKeys {
			lcols[i] = n.Children[0].Schema().ColIndex(n.LeftKeys[i])
			rcols[i] = n.Children[1].Schema().ColIndex(n.RightKeys[i])
			if lcols[i] < 0 || rcols[i] < 0 {
				return nil, fmt.Errorf("exec: join key %q/%q missing",
					n.LeftKeys[i], n.RightKeys[i])
			}
		}
		return NewHashJoin(n.JT, left, right, lcols, rcols, n.Schema()), nil
	case plan.TopN:
		child, err := Build(ctx, n.Children[0], dec, opmap)
		if err != nil {
			return nil, err
		}
		return NewTopN(child, n.Keys, n.N), nil
	case plan.Sort:
		child, err := Build(ctx, n.Children[0], dec, opmap)
		if err != nil {
			return nil, err
		}
		return NewSort(child, n.Keys), nil
	case plan.Limit:
		child, err := Build(ctx, n.Children[0], dec, opmap)
		if err != nil {
			return nil, err
		}
		return NewLimit(child, n.N), nil
	case plan.Union:
		left, err := Build(ctx, n.Children[0], dec, opmap)
		if err != nil {
			return nil, err
		}
		right, err := Build(ctx, n.Children[1], dec, opmap)
		if err != nil {
			return nil, err
		}
		return NewUnion(left, right), nil
	}
	return nil, fmt.Errorf("exec: cannot build operator for %v", n.Op)
}
