package exec

import (
	"fmt"
	"time"

	"recycledb/internal/catalog"
	"recycledb/internal/vector"
)

// TableScan reads a projection of a base table, slicing column storage into
// batches without copying (batches alias table storage; consumers never
// mutate input batches).
//
// The scan reads a per-statement snapshot (Ctx.SnapFor): a consistent
// (watermark, delete-bitmap) epoch captured at Open. Writers committing new
// epochs concurrently never disturb it — the snapshot's column slices are
// bounded to its watermark and the rows below a watermark are immutable.
// Deleted rows are skipped by attaching a selection vector to the output
// batch; ranges without deletions flow through dense.
type TableScan struct {
	base
	Table *catalog.Table
	Cols  []int // column indexes into the table schema
	snap  *catalog.Snapshot
	lo    int // scan start (nonzero for delta runs)
	pos   int
	out   *vector.Batch
	sel   []int32
}

// NewTableScan builds a scan of the given column indexes of t.
func NewTableScan(t *catalog.Table, cols []int, schema catalog.Schema) *TableScan {
	return &TableScan{base: base{schema: schema}, Table: t, Cols: cols}
}

// Open implements Operator.
func (s *TableScan) Open(ctx *Ctx) error {
	defer s.addCost(time.Now())
	s.snap = ctx.SnapFor(s.Table)
	s.lo = 0
	if from, ok := ctx.ScanFrom[s.Table.Name]; ok {
		s.lo = from
		if s.lo > s.snap.Rows {
			s.lo = s.snap.Rows
		}
	}
	s.pos = s.lo
	if s.out == nil {
		// The vector structs are allocated once and re-sliced over table
		// storage every Next, so the steady-state scan never allocates.
		s.out = &vector.Batch{Vecs: make([]*vector.Vector, len(s.Cols))}
		for i, c := range s.Cols {
			s.out.Vecs[i] = &vector.Vector{Typ: s.snap.Col(c).Typ}
		}
	}
	return nil
}

// Next implements Operator.
func (s *TableScan) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	defer s.addCost(time.Now())
	n := s.snap.Rows
	for {
		if s.pos >= n {
			return nil, nil
		}
		hi := s.pos + ctx.vecSize()
		if hi > n {
			hi = n
		}
		lo := s.pos
		s.pos = hi
		for i, c := range s.Cols {
			col := s.snap.Col(c)
			v := s.out.Vecs[i]
			switch col.Typ {
			case vector.Int64, vector.Date:
				v.I64 = col.I64[lo:hi]
			case vector.Float64:
				v.F64 = col.F64[lo:hi]
			case vector.String:
				v.Str = col.Str[lo:hi]
			case vector.Bool:
				v.B = col.B[lo:hi]
			}
		}
		if s.snap.Del.AnyIn(lo, hi) {
			if s.sel == nil {
				s.sel = make([]int32, 0, ctx.vecSize())
			}
			sel := s.sel[:0]
			for r := lo; r < hi; r++ {
				if !s.snap.Del.Has(r) {
					sel = append(sel, int32(r-lo))
				}
			}
			s.sel = sel
			if len(sel) == 0 {
				continue // every row in the range is deleted
			}
			s.out.Sel = sel
		} else {
			s.out.Sel = nil
		}
		s.rows += int64(s.out.Len())
		return s.out, nil
	}
}

// Close implements Operator.
func (s *TableScan) Close(ctx *Ctx) error { return nil }

// Progress implements Operator: scans know their total row count.
func (s *TableScan) Progress() float64 {
	if s.snap == nil {
		return 0
	}
	n := s.snap.Rows - s.lo
	if n <= 0 {
		return 1
	}
	return float64(s.pos-s.lo) / float64(n)
}

// TableFnScan invokes a table function at Open and replays its result.
type TableFnScan struct {
	base
	Fn   *catalog.TableFunc
	Args []vector.Datum
	res  *catalog.Result
	idx  int
}

// NewTableFnScan builds a table-function leaf.
func NewTableFnScan(fn *catalog.TableFunc, args []vector.Datum) *TableFnScan {
	return &TableFnScan{base: base{schema: fn.Schema}, Fn: fn, Args: args}
}

// Open implements Operator; the function is evaluated here so its cost is
// attributed to this leaf.
func (s *TableFnScan) Open(ctx *Ctx) error {
	defer s.addCost(time.Now())
	res, err := s.Fn.Invoke(ctx.Cat, s.Args)
	if err != nil {
		return fmt.Errorf("exec: table function %s: %w", s.Fn.Name, err)
	}
	s.res = res
	s.idx = 0
	return nil
}

// Next implements Operator.
func (s *TableFnScan) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	defer s.addCost(time.Now())
	if s.res == nil || s.idx >= len(s.res.Batches) {
		return nil, nil
	}
	b := s.res.Batches[s.idx]
	s.idx++
	s.rows += int64(b.Len())
	return b, nil
}

// Close implements Operator.
func (s *TableFnScan) Close(ctx *Ctx) error {
	s.res = nil
	return nil
}

// Progress implements Operator.
func (s *TableFnScan) Progress() float64 {
	if s.res == nil {
		return 0
	}
	if len(s.res.Batches) == 0 {
		return 1
	}
	return float64(s.idx) / float64(len(s.res.Batches))
}

// CacheScan replays a materialized result from the recycler cache,
// projecting and reordering columns through outIdx (the name-mapping applied
// physically: output column i is cached column outIdx[i]).
type CacheScan struct {
	base
	Batches []*vector.Batch
	OutIdx  []int
	idx     int
	// Release is called once at Close (unpins the cache entry).
	Release func()
	out     *vector.Batch
}

// NewCacheScan builds a replay of cached batches.
func NewCacheScan(schema catalog.Schema, batches []*vector.Batch, outIdx []int, release func()) *CacheScan {
	return &CacheScan{base: base{schema: schema}, Batches: batches, OutIdx: outIdx, Release: release}
}

// Open implements Operator.
func (s *CacheScan) Open(ctx *Ctx) error {
	s.idx = 0
	s.out = &vector.Batch{Vecs: make([]*vector.Vector, len(s.OutIdx))}
	return nil
}

// Next implements Operator.
func (s *CacheScan) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	defer s.addCost(time.Now())
	if s.idx >= len(s.Batches) {
		return nil, nil
	}
	src := s.Batches[s.idx]
	s.idx++
	for i, c := range s.OutIdx {
		s.out.Vecs[i] = src.Vecs[c]
	}
	s.rows += int64(src.Len())
	return s.out, nil
}

// Close implements Operator.
func (s *CacheScan) Close(ctx *Ctx) error {
	if s.Release != nil {
		s.Release()
		s.Release = nil
	}
	return nil
}

// Progress implements Operator.
func (s *CacheScan) Progress() float64 {
	if len(s.Batches) == 0 {
		return 1
	}
	return float64(s.idx) / float64(len(s.Batches))
}
