package exec

// Parallel-executor contract tests: a morsel-parallel fragment must
// produce exactly what the serial pipeline produces — same rows, same
// order (float aggregates within re-association tolerance) — at every
// parallelism degree, including over delete bitmaps, and must tear down
// cleanly when the consumer stops early or cancels.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"recycledb/internal/catalog"
	"recycledb/internal/expr"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// parCatalog builds fact(id int, k int, v float, s string) with rows rows
// (and optionally a deleted stripe), plus dim(k int, name string) with 64
// keys — small enough that the join build side stays serial.
func parCatalog(rows int, deleteEvery int) *catalog.Catalog {
	cat := catalog.New()
	fact := catalog.NewTable("fact", catalog.Schema{
		{Name: "id", Typ: vector.Int64},
		{Name: "k", Typ: vector.Int64},
		{Name: "v", Typ: vector.Float64},
		{Name: "s", Typ: vector.String},
	})
	rng := rand.New(rand.NewSource(7))
	w := fact.BeginWrite()
	ap := w.Appender()
	for i := 0; i < rows; i++ {
		ap.Int64(0, int64(i))
		ap.Int64(1, rng.Int63n(64))
		ap.Float64(2, rng.Float64()*100)
		ap.String(3, fmt.Sprintf("tag-%d", i%7))
		ap.FinishRow()
	}
	w.Commit()
	if deleteEvery > 0 {
		w := fact.BeginWrite()
		for i := 0; i < rows; i += deleteEvery {
			w.Delete(i)
		}
		w.Commit()
	}
	cat.AddTable(fact)

	dim := catalog.NewTable("dim", catalog.Schema{
		{Name: "dk", Typ: vector.Int64},
		{Name: "name", Typ: vector.String},
	})
	for k := 0; k < 64; k += 2 { // half the keys match
		dim.AppendRows([]vector.Datum{
			vector.NewInt64Datum(int64(k)),
			vector.NewStringDatum(fmt.Sprintf("key-%d", k)),
		})
	}
	cat.AddTable(dim)
	return cat
}

// runPlanPar resolves and executes a clone of q with the given parallelism
// and morsel size.
func runPlanPar(t *testing.T, cat *catalog.Catalog, q *plan.Node, par, morsel int) *catalog.Result {
	t.Helper()
	n := q.Clone()
	if err := n.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(cat)
	ctx.Parallelism = par
	ctx.MorselRows = morsel
	op, err := Build(ctx, n, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// flatten materializes a result as one row list.
func flatten(res *catalog.Result) [][]vector.Datum {
	var out [][]vector.Datum
	for _, b := range res.Batches {
		for i := 0; i < b.Len(); i++ {
			out = append(out, b.Row(i))
		}
	}
	return out
}

// sameRows asserts got matches want row-for-row in order, with float
// tolerance for parallel aggregation re-association.
func sameRows(t *testing.T, label string, want, got *catalog.Result) {
	t.Helper()
	w, g := flatten(want), flatten(got)
	if len(w) != len(g) {
		t.Fatalf("%s: row count: want %d, got %d", label, len(w), len(g))
	}
	for i := range w {
		for c := range w[i] {
			a, b := w[i][c], g[i][c]
			if a.Typ == vector.Float64 && b.Typ == vector.Float64 {
				d := math.Abs(a.F64 - b.F64)
				if d > 1e-6 && d > 1e-9*math.Abs(a.F64) {
					t.Fatalf("%s: row %d col %d: %v vs %v", label, i, c, a.F64, b.F64)
				}
				continue
			}
			if !a.Equal(b) {
				t.Fatalf("%s: row %d col %d: %v vs %v", label, i, c, a, b)
			}
		}
	}
}

// parPlans is the fragment-shape matrix: filter, project chains, joins on
// the probe side, grouped/scalar aggregation above each.
func parPlans() map[string]*plan.Node {
	filtered := func() *plan.Node {
		return plan.NewSelect(plan.NewScan("fact", "id", "k", "v", "s"),
			expr.Lt(expr.C("k"), expr.Int(40)))
	}
	join := func() *plan.Node {
		return plan.NewJoin(plan.Inner, filtered(), plan.NewScan("dim", "dk", "name"),
			[]string{"k"}, []string{"dk"})
	}
	return map[string]*plan.Node{
		"filter": filtered(),
		"project": plan.NewProject(filtered(),
			plan.P(expr.C("id"), "id"),
			plan.P(expr.Mul(expr.C("v"), expr.Flt(2)), "v2")),
		"join":     join(),
		"semijoin": plan.NewJoin(plan.LeftSemi, filtered(), plan.NewScan("dim", "dk", "name"), []string{"k"}, []string{"dk"}),
		"antijoin": plan.NewJoin(plan.LeftAnti, filtered(), plan.NewScan("dim", "dk", "name"), []string{"k"}, []string{"dk"}),
		"outerjoin": plan.NewJoin(plan.LeftOuter, filtered(), plan.NewScan("dim", "dk", "name"),
			[]string{"k"}, []string{"dk"}),
		"agg": plan.NewAggregate(filtered(), []string{"s"},
			plan.A(plan.Count, nil, "n"),
			plan.A(plan.Sum, expr.C("v"), "sv"),
			plan.A(plan.Min, expr.C("id"), "mn"),
			plan.A(plan.Max, expr.C("v"), "mx"),
			plan.A(plan.Avg, expr.C("v"), "av")),
		"agg-scalar": plan.NewAggregate(filtered(), nil,
			plan.A(plan.Count, nil, "n"),
			plan.A(plan.Sum, expr.C("v"), "sv")),
		"agg-over-join": plan.NewAggregate(join(), []string{"name"},
			plan.A(plan.Count, nil, "n"),
			plan.A(plan.Sum, expr.C("v"), "sv")),
		"topn-over-exchange": plan.NewTopN(filtered(),
			[]plan.SortKey{{Col: "id", Desc: true}}, 100),
		"limit-over-exchange": plan.NewLimit(filtered(), 1234),
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	for _, del := range []int{0, 37} {
		cat := parCatalog(40000, del)
		for name, q := range parPlans() {
			serial := runPlanPar(t, cat, q, 1, 1024)
			for _, par := range []int{2, 4, 8} {
				got := runPlanPar(t, cat, q, par, 1024)
				sameRows(t, fmt.Sprintf("%s/del=%d/par=%d", name, del, par), serial, got)
			}
		}
	}
}

// TestParallelUsesExchange asserts the parallel build actually installs a
// parallel fragment (guarding against silent fallback to serial).
func TestParallelUsesExchange(t *testing.T) {
	cat := parCatalog(40000, 0)
	mk := func(q *plan.Node, par int, disableFusion bool) Operator {
		n := q.Clone()
		if err := n.Resolve(cat); err != nil {
			t.Fatal(err)
		}
		ctx := NewCtx(cat)
		ctx.Parallelism = par
		ctx.MorselRows = 1024
		ctx.DisableFusion = disableFusion
		op, err := Build(ctx, n, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return op
	}
	filter := plan.NewSelect(plan.NewScan("fact", "id"), expr.Lt(expr.C("id"), expr.Int(10)))
	if _, ok := mk(filter, 4, false).(*Exchange); !ok {
		t.Fatalf("expected *Exchange for a large filter at parallelism 4")
	}
	// Fusion is on by default, so serial pipelines become fused push loops.
	if _, ok := mk(filter, 1, false).(*FusedPipeline); !ok {
		t.Fatalf("expected *FusedPipeline at parallelism 1 with fusion on")
	}
	if _, ok := mk(filter, 1, true).(*Filter); !ok {
		t.Fatalf("expected serial *Filter at parallelism 1 with fusion disabled")
	}
	agg := plan.NewAggregate(filter.Clone(), []string{"id"}, plan.A(plan.Count, nil, "n"))
	if _, ok := mk(agg, 4, false).(*ParallelAgg); !ok {
		t.Fatalf("expected *ParallelAgg for a large aggregation at parallelism 4")
	}
	if _, ok := mk(agg, 1, false).(*FusedAgg); !ok {
		t.Fatalf("expected *FusedAgg at parallelism 1 with fusion on")
	}
	if _, ok := mk(agg, 1, true).(*HashAgg); !ok {
		t.Fatalf("expected serial *HashAgg at parallelism 1 with fusion disabled")
	}
	// A bare scan gains nothing from a merge copy or a fused loop: stays serial.
	if _, ok := mk(plan.NewScan("fact", "id"), 4, false).(*TableScan); !ok {
		t.Fatalf("expected serial *TableScan for a bare scan")
	}
	if _, ok := mk(plan.NewScan("fact", "id"), 1, false).(*TableScan); !ok {
		t.Fatalf("expected serial *TableScan for a bare scan at parallelism 1")
	}
}

// TestParallelEarlyClose closes a parallel stream after one batch: workers
// must drain and shut down without leaking or deadlocking.
func TestParallelEarlyClose(t *testing.T) {
	cat := parCatalog(40000, 0)
	n := parPlans()["join"].Clone()
	if err := n.Resolve(cat); err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(cat)
	ctx.Parallelism = 4
	ctx.MorselRows = 1024
	op, err := Build(ctx, n, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := op.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if err := op.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := op.Close(ctx); err != nil { // Close is idempotent
		t.Fatal(err)
	}
}

// TestParallelCancellation cancels mid-stream; the error must surface and
// teardown must complete.
func TestParallelCancellation(t *testing.T) {
	cat := parCatalog(40000, 0)
	for _, name := range []string{"filter", "agg"} {
		n := parPlans()[name].Clone()
		if err := n.Resolve(cat); err != nil {
			t.Fatal(err)
		}
		cctx, cancel := context.WithCancel(context.Background())
		ctx := NewCtx(cat)
		ctx.Context = cctx
		ctx.Parallelism = 4
		ctx.MorselRows = 1024
		op, err := Build(ctx, n, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := op.Open(ctx); err != nil {
			t.Fatal(err)
		}
		cancel()
		var lastErr error
		for i := 0; i < 1000; i++ {
			b, err := op.Next(ctx)
			if err != nil {
				lastErr = err
				break
			}
			if b == nil {
				break
			}
		}
		if lastErr == nil {
			t.Fatalf("%s: canceled query finished without error", name)
		}
		op.Close(ctx)
	}
}

// TestMorselSourceWindow exercises claim-order and window blocking.
func TestMorselSourceWindow(t *testing.T) {
	snap := &catalog.Snapshot{Rows: 100}
	s := newMorselSource(snap, 0, 100, 10, 2)
	if s.count() != 10 {
		t.Fatalf("count = %d, want 10", s.count())
	}
	m0, _ := s.claim()
	m1, _ := s.claim()
	if m0 != 0 || m1 != 1 {
		t.Fatalf("claims out of order: %d, %d", m0, m1)
	}
	claimed := make(chan int, 1)
	go func() {
		m, _ := s.claim() // blocks: window 2, merge cursor at 0
		claimed <- m
	}()
	select {
	case m := <-claimed:
		t.Fatalf("claim %d succeeded past the window", m)
	default:
	}
	s.advance(0)
	if m := <-claimed; m != 2 {
		t.Fatalf("unblocked claim = %d, want 2", m)
	}
	lo, hi := s.bounds(9)
	if lo != 90 || hi != 100 {
		t.Fatalf("bounds(9) = [%d,%d)", lo, hi)
	}
	s.stop()
	if _, ok := s.claim(); ok {
		t.Fatal("claim succeeded after stop")
	}
}
