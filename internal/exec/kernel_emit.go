package exec

import (
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// Typed aggregate-emission kernels.
//
// The generic emission path (emitAcc) finalizes one accumulator at a time:
// per group it re-enters a (Func, Typ) switch and appends through the
// Vector's per-value Append methods, each with its own slice-growth check.
// The kernels below hoist that dispatch out of the loop: emitRange and
// emitIndex classify each aggregate once, grow the output column once, and
// then run a straight typed store loop over the accumulator array — the
// same loop shape as the column-gather kernels in internal/vector. Group
// order is whatever the caller hands in (ascending ids for emitRange, the
// caller's explicit index order for emitIndex), so first-occurrence
// emission order is untouched.
//
// The produced values are bit-identical to emitAcc's: the per-class loops
// below are emitAcc's switch arms, verbatim, applied element-wise.

// emitClass is one hoisted (Func, Typ) dispatch outcome.
type emitClass uint8

const (
	emitOther emitClass = iota // not specialized: fall back to emitAcc
	emitCnt                    // int64 column <- acc.cnt
	emitI64                    // int64 column <- acc.i
	emitF64                    // float64 column <- acc.f
	emitAvg                    // float64 column <- acc.f / acc.cnt (0 when empty)
	emitStr                    // string column <- acc.s
)

// emitClassOf classifies one aggregate's finalization. The mapping mirrors
// emitAcc exactly; shapes emitAcc would silently skip (min/max over bool —
// unreachable through the planner) classify as emitOther and keep the
// generic row loop.
func emitClassOf(ag AggExpr) emitClass {
	switch ag.Func {
	case plan.Count:
		return emitCnt
	case plan.Sum:
		if ag.Typ == vector.Float64 {
			return emitF64
		}
		return emitI64
	case plan.Avg:
		return emitAvg
	case plan.Min, plan.Max:
		switch ag.Typ {
		case vector.Int64, vector.Date:
			return emitI64
		case vector.Float64:
			return emitF64
		case vector.String:
			return emitStr
		}
	}
	return emitOther
}

// growTailI64 extends v by n rows and returns the writable tail.
func growTailI64(v *vector.Vector, n int) []int64 {
	v.I64 = vector.GrowI64(v.I64, n)
	return v.I64[len(v.I64)-n:]
}

// growTailF64 extends v by n rows and returns the writable tail.
func growTailF64(v *vector.Vector, n int) []float64 {
	v.F64 = vector.GrowF64(v.F64, n)
	return v.F64[len(v.F64)-n:]
}

// growTailStr extends v by n rows and returns the writable tail.
func growTailStr(v *vector.Vector, n int) []string {
	v.Str = vector.GrowStr(v.Str, n)
	return v.Str[len(v.Str)-n:]
}

// emitAccsRange appends the finalization of every accumulator in accs to
// out as one typed column loop. It reports false (appending nothing) when
// the aggregate's shape is not specialized.
func emitAccsRange(out *vector.Vector, accs []acc, ag AggExpr) bool {
	n := len(accs)
	switch emitClassOf(ag) {
	case emitCnt:
		dst := growTailI64(out, n)
		for i := range accs {
			dst[i] = accs[i].cnt
		}
	case emitI64:
		dst := growTailI64(out, n)
		for i := range accs {
			dst[i] = accs[i].i
		}
	case emitF64:
		dst := growTailF64(out, n)
		for i := range accs {
			dst[i] = accs[i].f
		}
	case emitAvg:
		dst := growTailF64(out, n)
		for i := range accs {
			a := &accs[i]
			if a.cnt == 0 {
				dst[i] = 0
			} else {
				dst[i] = a.f / float64(a.cnt)
			}
		}
	case emitStr:
		dst := growTailStr(out, n)
		for i := range accs {
			dst[i] = accs[i].s
		}
	default:
		return false
	}
	return true
}

// emitAccsIndex appends the finalization of accs[idx[0]], accs[idx[1]], ...
// to out in idx order (the gather twin of emitAccsRange). It reports false
// (appending nothing) when the aggregate's shape is not specialized.
func emitAccsIndex(out *vector.Vector, accs []acc, idx []int32, ag AggExpr) bool {
	n := len(idx)
	switch emitClassOf(ag) {
	case emitCnt:
		dst := growTailI64(out, n)
		for i, g := range idx {
			dst[i] = accs[g].cnt
		}
	case emitI64:
		dst := growTailI64(out, n)
		for i, g := range idx {
			dst[i] = accs[g].i
		}
	case emitF64:
		dst := growTailF64(out, n)
		for i, g := range idx {
			dst[i] = accs[g].f
		}
	case emitAvg:
		dst := growTailF64(out, n)
		for i, g := range idx {
			a := &accs[g]
			if a.cnt == 0 {
				dst[i] = 0
			} else {
				dst[i] = a.f / float64(a.cnt)
			}
		}
	case emitStr:
		dst := growTailStr(out, n)
		for i, g := range idx {
			dst[i] = accs[g].s
		}
	default:
		return false
	}
	return true
}
