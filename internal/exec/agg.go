package exec

import (
	"time"

	"recycledb/internal/catalog"
	"recycledb/internal/expr"
	"recycledb/internal/plan"
	"recycledb/internal/vector"
)

// AggExpr is one aggregate computation evaluated by HashAgg.
type AggExpr struct {
	Func plan.AggFunc
	Arg  expr.Expr   // nil for count(*)
	Typ  vector.Type // output type (resolved by the planner)
}

// HashAgg is a blocking grouped aggregation. With no group columns it
// produces exactly one row (the scalar-aggregate convention used by the
// decorrelated TPC-H plans).
//
// Grouping is vectorized: each input batch's group columns are hashed
// whole-column-at-a-time, then every row resolves to a group id through a
// linear-probing open-addressing table (slot -> group id, verified against
// the stored per-group hash and the group's key row with typed column
// comparators). No per-row key bytes are encoded or allocated; the old
// byte-string path survives only as the reference slow path in key.go.
type HashAgg struct {
	base
	Child     Operator
	GroupCols []int // group-by column indexes in the child schema
	Aggs      []AggExpr

	built     bool
	table     oaTable
	groupHash []uint64      // per group
	keyRows   *vector.Batch // one row per group: the group-by column values
	keyCols   []int         // 0..len(GroupCols)-1, the keyRows columns
	accs      [][]acc       // accs[agg][group]
	emit      int           // next group to emit
	nGroups   int
	out       *vector.Batch // pooled

	rowH   []uint64         // per-batch scratch: group hashes
	argVec []*vector.Vector // per-batch scratch: evaluated aggregate args
	argTmp *vector.Vector   // coercion scratch for EvalAsScratch
}

// acc is a single aggregate accumulator.
type acc struct {
	i   int64
	f   float64
	s   string
	cnt int64
	set bool
}

// NewHashAgg builds a grouped aggregation over child.
func NewHashAgg(child Operator, groupCols []int, aggs []AggExpr, schema catalog.Schema) *HashAgg {
	return &HashAgg{base: base{schema: schema}, Child: child, GroupCols: groupCols, Aggs: aggs}
}

// Open implements Operator.
func (h *HashAgg) Open(ctx *Ctx) error {
	defer h.addCost(time.Now())
	h.built = false
	h.emit = 0
	h.nGroups = 0
	h.groupHash = h.groupHash[:0]
	h.accs = make([][]acc, len(h.Aggs))
	keyTypes := make([]vector.Type, len(h.GroupCols))
	h.keyCols = make([]int, len(h.GroupCols))
	for i, c := range h.GroupCols {
		keyTypes[i] = h.Child.Schema()[c].Typ
		h.keyCols[i] = i
	}
	h.keyRows = ctx.pool().GetBatch(keyTypes, 64)
	h.out = ctx.pool().GetBatch(h.schema.Types(), ctx.vecSize())
	h.table.init(64)
	if h.argVec == nil {
		h.argVec = make([]*vector.Vector, len(h.Aggs))
	}
	for a, ag := range h.Aggs {
		if ag.Arg != nil {
			h.argVec[a] = ctx.pool().Get(argType(ag), ctx.vecSize())
		}
	}
	h.argTmp = ctx.pool().Get(vector.Float64, ctx.vecSize())
	return h.Child.Open(ctx)
}

// lookupGroup resolves the group id for physical row r of in (whose group
// hash is gh), inserting a new group if needed.
func (h *HashAgg) lookupGroup(gh uint64, in *vector.Batch, r int) int {
	s := h.table.slot(gh)
	for {
		g := h.table.buckets[s]
		if g < 0 {
			break
		}
		if h.groupHash[g] == gh &&
			keyRowsEqual(h.keyRows, int(g), h.keyCols, in, r, h.GroupCols) {
			return int(g)
		}
		s = (s + 1) & h.table.mask
	}
	// New group: record its key row, hash, and fresh accumulators.
	g := h.nGroups
	h.nGroups++
	h.groupHash = append(h.groupHash, gh)
	for k, c := range h.GroupCols {
		h.keyRows.Vecs[k].AppendFrom(in.Vecs[c], r)
	}
	for a := range h.Aggs {
		h.accs[a] = append(h.accs[a], acc{})
	}
	h.table.buckets[s] = int32(g)
	if h.nGroups*4 >= len(h.table.buckets)*3 {
		h.grow()
	}
	return g
}

// grow doubles the directory and reinserts every group by its stored hash.
func (h *HashAgg) grow() {
	h.table.init(len(h.table.buckets)) // init sizes to 2x entries
	for g, gh := range h.groupHash {
		s := h.table.slot(gh)
		for h.table.buckets[s] >= 0 {
			s = (s + 1) & h.table.mask
		}
		h.table.buckets[s] = int32(g)
	}
}

func (h *HashAgg) build(ctx *Ctx) error {
	scalar := len(h.GroupCols) == 0
	for {
		in, err := h.Child.Next(ctx)
		if err != nil {
			return err
		}
		if in == nil {
			break
		}
		n := in.Len()
		if n == 0 {
			continue
		}
		// Evaluate aggregate arguments once per batch (selection-aware),
		// coercing to the accumulator's type (avg over an int column
		// accumulates floats).
		for a, ag := range h.Aggs {
			if ag.Arg == nil {
				continue
			}
			h.argVec[a].Reset()
			if err := expr.EvalAsScratch(ag.Arg, in, h.argVec[a], argType(ag), h.argTmp); err != nil {
				return err
			}
		}
		if scalar {
			if h.nGroups == 0 {
				h.nGroups = 1
				for a := range h.Aggs {
					h.accs[a] = append(h.accs[a], acc{})
				}
			}
			for a, ag := range h.Aggs {
				accs := h.accs[a]
				for i := 0; i < n; i++ {
					update(&accs[0], ag, h.argVec[a], i)
				}
			}
			continue
		}
		if cap(h.rowH) < n {
			h.rowH = make([]uint64, n)
		}
		h.rowH = h.rowH[:n]
		hashColumns(in, h.GroupCols, h.rowH)
		sel := in.Sel
		for i := 0; i < n; i++ {
			r := i
			if sel != nil {
				r = int(sel[i])
			}
			g := h.lookupGroup(h.rowH[i], in, r)
			for a, ag := range h.Aggs {
				update(&h.accs[a][g], ag, h.argVec[a], i)
			}
		}
	}
	// Scalar aggregation over empty input still yields one row.
	if scalar && h.nGroups == 0 {
		h.nGroups = 1
		for a := range h.Aggs {
			h.accs[a] = append(h.accs[a], acc{})
		}
	}
	h.built = true
	return nil
}

// argType returns the vector type the aggregate argument evaluates to.
func argType(ag AggExpr) vector.Type {
	switch ag.Func {
	case plan.Avg:
		return vector.Float64
	case plan.Count:
		return ag.Typ // unused payload; count only counts rows
	case plan.Sum:
		if ag.Typ == vector.Float64 {
			return vector.Float64
		}
		return vector.Int64
	default: // Min, Max: output type equals argument type
		return ag.Typ
	}
}

func update(a *acc, ag AggExpr, arg *vector.Vector, i int) {
	switch ag.Func {
	case plan.Count:
		a.cnt++
	case plan.Sum:
		if arg.Typ == vector.Float64 {
			a.f += arg.F64[i]
		} else {
			a.i += arg.I64[i]
		}
	case plan.Avg:
		a.f += arg.F64[i]
		a.cnt++
	case plan.Min:
		updateMinMax(a, arg, i, true)
	case plan.Max:
		updateMinMax(a, arg, i, false)
	}
}

func updateMinMax(a *acc, arg *vector.Vector, i int, min bool) {
	switch arg.Typ {
	case vector.Int64, vector.Date:
		x := arg.I64[i]
		if !a.set || (min && x < a.i) || (!min && x > a.i) {
			a.i = x
		}
	case vector.Float64:
		x := arg.F64[i]
		if !a.set || (min && x < a.f) || (!min && x > a.f) {
			a.f = x
		}
	case vector.String:
		x := arg.Str[i]
		if !a.set || (min && x < a.s) || (!min && x > a.s) {
			a.s = x
		}
	}
	a.set = true
}

// Next implements Operator.
func (h *HashAgg) Next(ctx *Ctx) (*vector.Batch, error) {
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	defer h.addCost(time.Now())
	if !h.built {
		if err := h.build(ctx); err != nil {
			return nil, err
		}
	}
	if h.emit >= h.nGroups {
		return nil, nil
	}
	h.out.Reset()
	lo := h.emit
	hi := lo + ctx.vecSize()
	if hi > h.nGroups {
		hi = h.nGroups
	}
	nk := len(h.GroupCols)
	// Group keys copy out column-wise; accumulators finalize row-wise.
	for k := 0; k < nk; k++ {
		h.out.Vecs[k].AppendRange(h.keyRows.Vecs[k], lo, hi)
	}
	for a, ag := range h.Aggs {
		outV := h.out.Vecs[nk+a]
		accs := h.accs[a]
		for g := lo; g < hi; g++ {
			emitAcc(outV, &accs[g], ag)
		}
	}
	h.emit = hi
	h.rows += int64(hi - lo)
	return h.out, nil
}

func emitAcc(out *vector.Vector, a *acc, ag AggExpr) {
	switch ag.Func {
	case plan.Count:
		out.AppendInt64(a.cnt)
	case plan.Sum:
		if ag.Typ == vector.Float64 {
			out.AppendFloat64(a.f)
		} else {
			out.AppendInt64(a.i)
		}
	case plan.Avg:
		if a.cnt == 0 {
			out.AppendFloat64(0)
		} else {
			out.AppendFloat64(a.f / float64(a.cnt))
		}
	case plan.Min, plan.Max:
		switch ag.Typ {
		case vector.Int64, vector.Date:
			out.AppendInt64(a.i)
		case vector.Float64:
			out.AppendFloat64(a.f)
		case vector.String:
			out.AppendString(a.s)
		}
	}
}

// Close implements Operator.
func (h *HashAgg) Close(ctx *Ctx) error {
	pool := ctx.pool()
	if h.out != nil {
		pool.PutBatch(h.out)
		h.out = nil
	}
	if h.keyRows != nil {
		pool.PutBatch(h.keyRows)
		h.keyRows = nil
	}
	for a, v := range h.argVec {
		if v != nil {
			pool.Put(v)
			h.argVec[a] = nil
		}
	}
	if h.argTmp != nil {
		pool.Put(h.argTmp)
		h.argTmp = nil
	}
	h.accs = nil
	h.table.buckets = nil
	h.groupHash = nil
	return h.Child.Close(ctx)
}

// Progress implements Operator: a blocking operator knows its output total
// once built (§III-D); before that it reports 0 so the store above it does
// not extrapolate from an empty prefix.
func (h *HashAgg) Progress() float64 {
	if !h.built {
		return 0
	}
	if h.nGroups == 0 {
		return 1
	}
	return float64(h.emit) / float64(h.nGroups)
}
